package baseline

import (
	"testing"

	"repro/internal/expr"
	"repro/internal/logic"
	"repro/internal/semiring"
	"repro/internal/structure"
	"repro/internal/workload"
)

func TestTriangleBaselinesAgree(t *testing.T) {
	// The naive evaluator is cubic in n, so the full size takes over a
	// minute; -short shrinks it while still planting triangles.
	n := 300
	if testing.Short() {
		n = 100
	}
	db := workload.BoundedDegree(n, 3, 5)
	w := db.Weights()
	q := expr.Agg([]string{"x", "y", "z"}, expr.Times(
		expr.Guard(logic.Conj(logic.R("E", "x", "y"), logic.R("E", "y", "z"), logic.R("E", "z", "x"))),
		expr.W("w", "x", "y"), expr.W("w", "y", "z"), expr.W("w", "z", "x"),
	))
	naive := EvalExpression[int64](semiring.Nat, db.A, w, q)
	fast := TriangleCountEdgeIterate[int64](semiring.Nat, db.A, w)
	if naive != fast {
		t.Fatalf("naive %d and edge-iterate %d disagree", naive, fast)
	}
	if naive == 0 {
		t.Fatalf("expected the generator to plant triangles")
	}
	// Min-plus variant.
	mp := TriangleCountEdgeIterate[semiring.Ext](semiring.MinPlus, db.A, db.MinPlusWeights())
	mpNaive := EvalExpression[semiring.Ext](semiring.MinPlus, db.A, db.MinPlusWeights(), q)
	if !semiring.MinPlus.Equal(mp, mpNaive) {
		t.Fatalf("min-plus baselines disagree: %v vs %v", mp, mpNaive)
	}
}

func TestMaterializeAnswers(t *testing.T) {
	db := workload.Grid(6, 6, 1)
	phi := logic.Conj(logic.R("E", "x", "y"), logic.R("E", "y", "z"))
	answers := MaterializeAnswers(phi, db.A, []string{"x", "y", "z"})
	for _, a := range answers {
		if !db.A.HasTuple("E", a[0], a[1]) || !db.A.HasTuple("E", a[1], a[2]) {
			t.Fatalf("non-answer %v materialised", a)
		}
	}
	if len(answers) == 0 {
		t.Fatalf("expected some 2-paths in a grid")
	}
}

func TestAverageNeighborWeightMax(t *testing.T) {
	sig := structure.MustSignature([]structure.RelSymbol{{Name: "E", Arity: 2}}, nil)
	a := structure.NewStructure(sig, 4)
	a.MustAddTuple("E", 0, 1)
	a.MustAddTuple("E", 0, 2)
	a.MustAddTuple("E", 3, 2)
	weights := []int64{0, 10, 4, 0}
	// Vertex 0: avg(10,4) = 7; vertex 3: avg(4) = 4.
	if got := AverageNeighborWeightMax(a, weights); got != 7 {
		t.Fatalf("AverageNeighborWeightMax = %d, want 7", got)
	}
}
