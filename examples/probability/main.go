// Probability aggregation (Example 4 of the paper): given three probability
// distributions p1, p2, p3 on the vertices of a sparse graph, compute the
// probability that an independently sampled triple (x, y, z) forms a
// directed triangle.  The weighted query
//
//	f = Σ_{x,y,z} [E(x,y) ∧ E(y,z) ∧ E(z,x)] · p1(x) · p2(y) · p3(z)
//
// is compiled once (Theorem 6) and evaluated in the field of rationals; the
// same circuit also yields the triangle count (ℕ) and the most likely
// triangle (Viterbi semiring) without recompilation.
//
//	go run ./examples/probability
package main

import (
	"fmt"
	"math/big"
	"math/rand"

	"repro/internal/compile"
	"repro/internal/expr"
	"repro/internal/logic"
	"repro/internal/semiring"
	"repro/internal/structure"
	"repro/internal/workload"
)

func main() {
	db := workload.BoundedDegree(3000, 3, 11)
	a := db.A
	fmt.Printf("database: %d vertices, %d tuples\n", a.N, a.TupleCount())

	// Extend the signature with the three unary weight symbols p1, p2, p3.
	sig, err := a.Sig.WithWeights(
		structure.WeightSymbol{Name: "p1", Arity: 1},
		structure.WeightSymbol{Name: "p2", Arity: 1},
		structure.WeightSymbol{Name: "p3", Arity: 1},
	)
	if err != nil {
		panic(err)
	}
	b := structure.NewStructure(sig, a.N)
	for _, rel := range a.Sig.Relations {
		for _, t := range a.Tuples(rel.Name) {
			b.MustAddTuple(rel.Name, t...)
		}
	}

	// Three random probability distributions over the vertices, represented
	// exactly as rationals with a common denominator.
	r := rand.New(rand.NewSource(5))
	rat := structure.NewWeights[*big.Rat]()
	for i, name := range []string{"p1", "p2", "p3"} {
		masses := make([]int64, b.N)
		var total int64
		for v := range masses {
			masses[v] = int64(r.Intn(3) + 1)
			total += masses[v]
		}
		for v := range masses {
			rat.Set(name, structure.Tuple{v}, big.NewRat(masses[v], total))
		}
		_ = i
	}

	triangleProb := expr.Agg([]string{"x", "y", "z"}, expr.Times(
		expr.Guard(logic.Conj(logic.R("E", "x", "y"), logic.R("E", "y", "z"), logic.R("E", "z", "x"))),
		expr.W("p1", "x"), expr.W("p2", "y"), expr.W("p3", "z"),
	))

	res, err := compile.Compile(b, triangleProb, compile.Options{})
	if err != nil {
		panic(err)
	}
	st := res.Circuit.Statistics()
	fmt.Printf("circuit: %d gates, depth %d, %d permanent gates\n", st.Gates, st.Depth, st.PermGates)

	// Probability in exact rational arithmetic.
	p := compile.Evaluate[*big.Rat](res, semiring.Rat, rat)
	approx, _ := p.Float64()
	fmt.Printf("P[random triple is a directed triangle] = %s ≈ %.3g\n", p.RatString(), approx)

	// The same circuit counts triangles when every weight is 1 ...
	ones := structure.NewWeights[int64]()
	rat.ForEach(func(k structure.WeightKey, _ *big.Rat) {
		ones.Set(k.Weight, structure.ParseTupleKey(k.Tuple), 1)
	})
	count := compile.Evaluate[int64](res, semiring.Nat, ones)
	fmt.Printf("number of directed triangle triples          = %d\n", count)

	// ... and finds the probability of the most likely triple in the
	// Viterbi semiring ([0,1], max, ·).
	viterbi := structure.NewWeights[float64]()
	rat.ForEach(func(k structure.WeightKey, v *big.Rat) {
		f, _ := v.Float64()
		viterbi.Set(k.Weight, structure.ParseTupleKey(k.Tuple), f)
	})
	best := compile.Evaluate[float64](res, semiring.MaxTimes, viterbi)
	fmt.Printf("probability of the most likely triangle      = %.3g\n", best)
}
