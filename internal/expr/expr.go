// Package expr implements weighted expressions: the query language of
// Section 3 of the paper.  A weighted expression is built from semiring
// constants, weight symbols applied to variables, Iverson brackets [ϕ] of
// first-order formulas, addition, multiplication and aggregation Σ_x.
//
// The package provides the abstract syntax, a reference evaluator with
// exponential data complexity (used as ground truth in tests and as the
// naive baseline in benchmarks), and the normalisation into prenex
// sum-of-monomials form consumed by the compiler.  The normalisation is the
// implementation of Lemma 28 ("every expression is equivalent to a simple
// expression") combined with the exclusive-disjunction rewriting of
// Iverson brackets.
package expr

import (
	"fmt"
	"sort"

	"repro/internal/logic"
	"repro/internal/semiring"
	"repro/internal/structure"
)

// Expr is a weighted expression.
type Expr interface {
	// String renders the expression.
	String() string
	freeVars(bound map[string]bool, out map[string]bool)
}

// Const is the integer constant n, interpreted as the n-fold sum 1 + ... + 1
// of the semiring unit.  Restricting constants to naturals keeps compiled
// circuits semiring-agnostic; ring-specific constants may still be injected
// as weights of arity 0.
type Const struct {
	N int64
}

// Weight is a weight symbol applied to variables: w(x1, ..., xk).
type Weight struct {
	W    string
	Args []string
}

// Bracket is the Iverson bracket [ϕ] of a first-order formula, evaluating to
// the semiring 1 when ϕ holds and to 0 otherwise.
type Bracket struct {
	F logic.Formula
}

// Add is a sum of expressions (0 when empty).
type Add struct {
	Args []Expr
}

// Mul is a product of expressions (1 when empty).
type Mul struct {
	Args []Expr
}

// Sum is aggregation: Σ over the listed variables of the body.
type Sum struct {
	Vars []string
	Arg  Expr
}

// Convenience constructors.

// N returns the constant expression n.
func N(n int64) Expr { return Const{N: n} }

// W returns the weight expression w(args...).
func W(w string, args ...string) Expr { return Weight{W: w, Args: args} }

// Guard returns the Iverson bracket [ϕ].
func Guard(f logic.Formula) Expr { return Bracket{F: f} }

// Plus returns the sum of the given expressions.
func Plus(es ...Expr) Expr { return Add{Args: es} }

// Times returns the product of the given expressions.
func Times(es ...Expr) Expr { return Mul{Args: es} }

// Agg returns Σ over vars of e.
func Agg(vars []string, e Expr) Expr { return Sum{Vars: vars, Arg: e} }

func (c Const) String() string { return fmt.Sprintf("%d", c.N) }
func (w Weight) String() string {
	s := w.W + "("
	for i, a := range w.Args {
		if i > 0 {
			s += ","
		}
		s += a
	}
	return s + ")"
}
func (b Bracket) String() string { return "[" + b.F.String() + "]" }
func (a Add) String() string     { return joinExprs(a.Args, " + ", "0") }
func (m Mul) String() string     { return joinExprs(m.Args, " · ", "1") }
func (s Sum) String() string {
	vs := ""
	for i, v := range s.Vars {
		if i > 0 {
			vs += ","
		}
		vs += v
	}
	return "Σ_{" + vs + "} (" + s.Arg.String() + ")"
}

func joinExprs(es []Expr, sep, empty string) string {
	if len(es) == 0 {
		return empty
	}
	out := ""
	for i, e := range es {
		if i > 0 {
			out += sep
		}
		out += "(" + e.String() + ")"
	}
	return out
}

func (c Const) freeVars(_, _ map[string]bool) {}
func (w Weight) freeVars(bound, out map[string]bool) {
	for _, a := range w.Args {
		if !bound[a] {
			out[a] = true
		}
	}
}
func (b Bracket) freeVars(bound, out map[string]bool) {
	for _, v := range logic.FreeVars(b.F) {
		if !bound[v] {
			out[v] = true
		}
	}
}
func (a Add) freeVars(bound, out map[string]bool) {
	for _, e := range a.Args {
		e.freeVars(bound, out)
	}
}
func (m Mul) freeVars(bound, out map[string]bool) {
	for _, e := range m.Args {
		e.freeVars(bound, out)
	}
}
func (s Sum) freeVars(bound, out map[string]bool) {
	inner := make(map[string]bool, len(bound)+len(s.Vars))
	for k, v := range bound {
		inner[k] = v
	}
	for _, v := range s.Vars {
		inner[v] = true
	}
	s.Arg.freeVars(inner, out)
}

// FreeVars returns the sorted free variables of e.
func FreeVars(e Expr) []string {
	out := map[string]bool{}
	e.freeVars(map[string]bool{}, out)
	vars := make([]string, 0, len(out))
	for v := range out {
		vars = append(vars, v)
	}
	sort.Strings(vars)
	return vars
}

// ---------------------------------------------------------------------------
// Reference evaluation (naive, exponential data complexity)
// ---------------------------------------------------------------------------

// Eval evaluates e on the structure a with weight assignment w in the
// semiring s, under the environment env binding every free variable of e.
// Its data complexity is O(N^aggregation-depth); it serves as the ground
// truth for the compiled evaluators and as the naive baseline in the
// benchmark harness.
func Eval[T any](s semiring.Semiring[T], a *structure.Structure, w *structure.Weights[T], e Expr, env map[string]structure.Element) T {
	switch x := e.(type) {
	case Const:
		return semiring.ScalarMul(s, x.N, s.One())
	case Weight:
		tuple := make(structure.Tuple, len(x.Args))
		for i, v := range x.Args {
			el, ok := env[v]
			if !ok {
				panic(fmt.Sprintf("expr: unbound variable %q in weight %s", v, x))
			}
			tuple[i] = el
		}
		if v, ok := w.Get(x.W, tuple); ok {
			return v
		}
		return s.Zero()
	case Bracket:
		return semiring.Iverson(s, logic.Eval(x.F, a, env))
	case Add:
		acc := s.Zero()
		for _, arg := range x.Args {
			acc = s.Add(acc, Eval(s, a, w, arg, env))
		}
		return acc
	case Mul:
		acc := s.One()
		for _, arg := range x.Args {
			acc = s.Mul(acc, Eval(s, a, w, arg, env))
		}
		return acc
	case Sum:
		return evalSum(s, a, w, x.Vars, x.Arg, env)
	default:
		panic(fmt.Sprintf("expr: unknown expression type %T", e))
	}
}

func evalSum[T any](s semiring.Semiring[T], a *structure.Structure, w *structure.Weights[T], vars []string, body Expr, env map[string]structure.Element) T {
	if len(vars) == 0 {
		return Eval(s, a, w, body, env)
	}
	v := vars[0]
	saved, had := env[v]
	acc := s.Zero()
	for x := 0; x < a.N; x++ {
		env[v] = x
		acc = s.Add(acc, evalSum(s, a, w, vars[1:], body, env))
	}
	if had {
		env[v] = saved
	} else {
		delete(env, v)
	}
	return acc
}

// Validate checks that e is well formed with respect to the signature:
// weight symbols and relation symbols exist and are applied with the correct
// arity.
func Validate(e Expr, sig *structure.Signature) error {
	switch x := e.(type) {
	case Const:
		if x.N < 0 {
			return fmt.Errorf("expr: negative constant %d (constants denote n-fold sums of 1)", x.N)
		}
		return nil
	case Weight:
		decl, ok := sig.Weight(x.W)
		if !ok {
			return fmt.Errorf("expr: unknown weight symbol %q", x.W)
		}
		if decl.Arity != len(x.Args) {
			return fmt.Errorf("expr: weight %q has arity %d, applied to %d arguments", x.W, decl.Arity, len(x.Args))
		}
		return nil
	case Bracket:
		return validateFormula(x.F, sig)
	case Add:
		for _, arg := range x.Args {
			if err := Validate(arg, sig); err != nil {
				return err
			}
		}
		return nil
	case Mul:
		for _, arg := range x.Args {
			if err := Validate(arg, sig); err != nil {
				return err
			}
		}
		return nil
	case Sum:
		return Validate(x.Arg, sig)
	default:
		return fmt.Errorf("expr: unknown expression type %T", e)
	}
}

func validateFormula(f logic.Formula, sig *structure.Signature) error {
	switch g := f.(type) {
	case logic.Atom:
		decl, ok := sig.Relation(g.Rel)
		if !ok {
			return fmt.Errorf("expr: unknown relation symbol %q", g.Rel)
		}
		if decl.Arity != len(g.Args) {
			return fmt.Errorf("expr: relation %q has arity %d, applied to %d arguments", g.Rel, decl.Arity, len(g.Args))
		}
		return nil
	case logic.Eq, logic.Truth:
		return nil
	case logic.Not:
		return validateFormula(g.Arg, sig)
	case logic.And:
		for _, x := range g.Args {
			if err := validateFormula(x, sig); err != nil {
				return err
			}
		}
		return nil
	case logic.Or:
		for _, x := range g.Args {
			if err := validateFormula(x, sig); err != nil {
				return err
			}
		}
		return nil
	case logic.Exists:
		return validateFormula(g.Arg, sig)
	case logic.Forall:
		return validateFormula(g.Arg, sig)
	default:
		return fmt.Errorf("expr: unknown formula type %T", f)
	}
}
