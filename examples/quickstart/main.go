// Quickstart: compile one weighted query over a small sparse database and
// evaluate the same circuit in several semirings.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"repro/internal/compile"
	"repro/internal/expr"
	"repro/internal/logic"
	"repro/internal/semiring"
	"repro/internal/structure"
	"repro/internal/workload"
)

func main() {
	// A bounded-degree random directed graph with edge weights w and vertex
	// weights u (a canonical bounded-expansion database).
	db := workload.BoundedDegree(2000, 3, 1)
	fmt.Printf("database: %d elements, %d tuples\n", db.A.N, db.A.TupleCount())

	// The paper's running example: the weighted count of directed triangles,
	//   f = Σ_{x,y,z} [E(x,y) ∧ E(y,z) ∧ E(z,x)] · w(x,y) · w(y,z) · w(z,x).
	f := expr.Agg([]string{"x", "y", "z"}, expr.Times(
		expr.Guard(logic.Conj(logic.R("E", "x", "y"), logic.R("E", "y", "z"), logic.R("E", "z", "x"))),
		expr.W("w", "x", "y"), expr.W("w", "y", "z"), expr.W("w", "z", "x"),
	))
	fmt.Printf("query: %s\n\n", f)

	// Compile once (Theorem 6): the circuit is independent of the semiring.
	res, err := compile.Compile(db.A, f, compile.Options{})
	if err != nil {
		panic(err)
	}
	st := res.Circuit.Statistics()
	fmt.Printf("compiled circuit: %d gates, depth %d, %d permanent gates (≤%d rows)\n\n",
		st.Gates, st.Depth, st.PermGates, st.MaxPermRows)

	// Evaluate in (ℕ, +, ·): the bag-semantics triangle weight.  The circuit
	// is shallow and wide, so evaluation spreads each topological level over
	// all cores (the level schedule was precomputed by Compile; pass a
	// positive worker count to pin the pool size).
	count := compile.EvaluateParallel[int64](res, semiring.Nat, db.Weights(), 0)
	fmt.Printf("Σ over triangles of w(x,y)·w(y,z)·w(z,x) in (N,+,·):  %d\n", count)

	// Evaluate the SAME circuit in (ℕ∪{∞}, min, +): the cheapest triangle.
	cheapest := compile.Evaluate[semiring.Ext](res, semiring.MinPlus, db.MinPlusWeights())
	fmt.Printf("minimum triangle cost in (N∪{∞},min,+):              %s\n", semiring.MinPlus.Format(cheapest))

	// And in the boolean semiring: does any triangle exist at all?
	boolW := workload.WeightsIn(db, func(v int64) bool { return v != 0 })
	exists := compile.Evaluate[bool](res, semiring.Bool, boolW)
	fmt.Printf("does a directed triangle exist (B,∨,∧)?               %v\n", exists)

	// Point queries: the number of triangles through a given vertex, via a
	// query with a free variable (Theorem 8).
	g := expr.Agg([]string{"y", "z"}, expr.Guard(logic.Conj(
		logic.R("E", "x", "y"), logic.R("E", "y", "z"), logic.R("E", "z", "x"))))
	_ = g
	_ = structure.Tuple{}
	fmt.Println("\nsee examples/pagerank and examples/enumeration for dynamic queries and enumeration")
}
