package dynamicq

import (
	"math/big"
	"math/rand"
	"testing"

	"repro/internal/compile"
	"repro/internal/expr"
	"repro/internal/logic"
	"repro/internal/semiring"
	"repro/internal/structure"
)

func testDB(n, m int, seed int64) (*structure.Structure, *structure.Weights[int64]) {
	sig := structure.MustSignature(
		[]structure.RelSymbol{{Name: "E", Arity: 2}, {Name: "U", Arity: 1}},
		[]structure.WeightSymbol{{Name: "w", Arity: 2}, {Name: "u", Arity: 1}},
	)
	r := rand.New(rand.NewSource(seed))
	a := structure.NewStructure(sig, n)
	w := structure.NewWeights[int64]()
	for len(a.Tuples("E")) < m {
		x, y := r.Intn(n), r.Intn(n)
		if x == y {
			continue
		}
		a.MustAddTuple("E", x, y)
		w.Set("w", structure.Tuple{x, y}, int64(r.Intn(5)+1))
	}
	for v := 0; v < n; v++ {
		if r.Intn(2) == 0 {
			a.MustAddTuple("U", v)
		}
		w.Set("u", structure.Tuple{v}, int64(r.Intn(4)))
	}
	return a, w
}

// naive evaluates a query with free variables by brute force.
func naive(a *structure.Structure, w *structure.Weights[int64], e expr.Expr, env map[string]structure.Element) int64 {
	return expr.Eval[int64](semiring.Nat, a, w, e, env)
}

func TestClosedQueryWithWeightUpdates(t *testing.T) {
	// Total weighted out-degree sum: Σ_{x,y} [E(x,y)]·w(x,y)·u(x).
	q := expr.Agg([]string{"x", "y"}, expr.Times(
		expr.Guard(logic.R("E", "x", "y")), expr.W("w", "x", "y"), expr.W("u", "x"),
	))
	a, w := testDB(10, 25, 1)
	query, err := CompileQuery[int64](semiring.Nat, a, w, q, compile.Options{})
	if err != nil {
		t.Fatalf("CompileQuery: %v", err)
	}
	got, err := query.ValueClosed()
	if err != nil {
		t.Fatalf("ValueClosed: %v", err)
	}
	if want := naive(a, w, q, map[string]structure.Element{}); got != want {
		t.Fatalf("initial value %d, want %d", got, want)
	}
	// Random weight updates, cross-checked against naive evaluation.
	r := rand.New(rand.NewSource(2))
	for step := 0; step < 30; step++ {
		if r.Intn(2) == 0 && len(a.Tuples("E")) > 0 {
			tpl := a.Tuples("E")[r.Intn(len(a.Tuples("E")))]
			v := int64(r.Intn(6))
			if err := query.SetWeight("w", tpl, v); err != nil {
				t.Fatalf("SetWeight: %v", err)
			}
			w.Set("w", tpl, v)
		} else {
			el := structure.Tuple{r.Intn(a.N)}
			v := int64(r.Intn(4))
			if err := query.SetWeight("u", el, v); err != nil {
				t.Fatalf("SetWeight: %v", err)
			}
			w.Set("u", el, v)
		}
		got, _ := query.ValueClosed()
		if want := naive(a, w, q, map[string]structure.Element{}); got != want {
			t.Fatalf("step %d: value %d, want %d", step, got, want)
		}
	}
	// Invalid updates are rejected.
	if err := query.SetWeight("nope", structure.Tuple{0}, 1); err == nil {
		t.Errorf("unknown weight symbol accepted")
	}
	if err := query.SetWeight("u", structure.Tuple{0, 1}, 1); err == nil {
		t.Errorf("weight arity mismatch accepted")
	}
	if _, err := query.Value(3); err == nil {
		t.Errorf("Value with arguments on a closed query should fail")
	}
}

func TestFreeVariableQueries(t *testing.T) {
	// Weighted out-neighbourhood: f(x) = Σ_y [E(x,y)]·w(x,y).
	q := expr.Agg([]string{"y"}, expr.Times(expr.Guard(logic.R("E", "x", "y")), expr.W("w", "x", "y")))
	a, w := testDB(9, 20, 3)
	query, err := CompileQuery[int64](semiring.Nat, a, w, q, compile.Options{})
	if err != nil {
		t.Fatalf("CompileQuery: %v", err)
	}
	if fv := query.FreeVars(); len(fv) != 1 || fv[0] != "x" {
		t.Fatalf("FreeVars = %v", fv)
	}
	for x := 0; x < a.N; x++ {
		got, err := query.Value(x)
		if err != nil {
			t.Fatalf("Value(%d): %v", x, err)
		}
		want := naive(a, w, q, map[string]structure.Element{"x": x})
		if got != want {
			t.Fatalf("f(%d) = %d, want %d", x, got, want)
		}
	}
	// Repeated queries must not corrupt state (the temporary updates are
	// rolled back each time).
	for trial := 0; trial < 3; trial++ {
		got, _ := query.Value(0)
		want := naive(a, w, q, map[string]structure.Element{"x": 0})
		if got != want {
			t.Fatalf("repeated query drifted: %d vs %d", got, want)
		}
	}
	if _, err := query.Value(); err == nil {
		t.Errorf("missing arguments should be rejected")
	}
	if _, err := query.ValueClosed(); err == nil {
		t.Errorf("ValueClosed on a query with free variables should fail")
	}
}

func TestTwoFreeVariables(t *testing.T) {
	// f(x,z) = Σ_y [E(x,y) ∧ E(y,z)] · u(y): weighted 2-paths between x and z.
	q := expr.Agg([]string{"y"}, expr.Times(
		expr.Guard(logic.Conj(logic.R("E", "x", "y"), logic.R("E", "y", "z"))),
		expr.W("u", "y"),
	))
	a, w := testDB(8, 18, 5)
	query, err := CompileQuery[int64](semiring.Nat, a, w, q, compile.Options{})
	if err != nil {
		t.Fatalf("CompileQuery: %v", err)
	}
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		x, z := r.Intn(a.N), r.Intn(a.N)
		got, err := query.Value(x, z)
		if err != nil {
			t.Fatalf("Value(%d,%d): %v", x, z, err)
		}
		want := naive(a, w, q, map[string]structure.Element{"x": x, "z": z})
		if got != want {
			t.Fatalf("f(%d,%d) = %d, want %d", x, z, got, want)
		}
	}
}

func TestDynamicRelationUpdates(t *testing.T) {
	// Count edges whose reverse is absent, with dynamic E.
	q := expr.Agg([]string{"x", "y"}, expr.Times(
		expr.Guard(logic.Conj(logic.R("E", "x", "y"), logic.Neg(logic.R("E", "y", "x")))),
		expr.W("u", "x"),
	))
	a, w := testDB(8, 16, 11)
	query, err := CompileQuery[int64](semiring.Nat, a, w, q, compile.Options{DynamicRelations: []string{"E"}})
	if err != nil {
		t.Fatalf("CompileQuery: %v", err)
	}
	// Mirror structure for the naive reference.
	mirror := a.Clone()
	check := func(step int) {
		t.Helper()
		got, _ := query.ValueClosed()
		want := naive(mirror, w, q, map[string]structure.Element{})
		if got != want {
			t.Fatalf("step %d: value %d, want %d", step, got, want)
		}
	}
	check(-1)
	r := rand.New(rand.NewSource(13))
	edges := append([]structure.Tuple(nil), a.Tuples("E")...)
	for step := 0; step < 30; step++ {
		tpl := edges[r.Intn(len(edges))]
		// Toggle either the edge itself or its reverse (the reverse pair is
		// also a Gaifman clique, so the update is permitted).
		target := tpl
		if r.Intn(2) == 0 {
			target = structure.Tuple{tpl[1], tpl[0]}
		}
		present := r.Intn(2) == 0
		if err := query.SetTuple("E", target, present); err != nil {
			t.Fatalf("SetTuple: %v", err)
		}
		// Apply to the mirror.
		rebuildWith(mirror, "E", target, present)
		if query.HasTuple("E", target) != present {
			t.Fatalf("HasTuple does not reflect the update")
		}
		check(step)
	}
	// Non-Gaifman-preserving insertions are rejected.
	var u, v structure.Element = -1, -1
	g := a.Gaifman()
outer:
	for i := 0; i < a.N; i++ {
		for j := 0; j < a.N; j++ {
			if i != j && !g.HasEdge(i, j) {
				u, v = i, j
				break outer
			}
		}
	}
	if u >= 0 {
		if err := query.SetTuple("E", structure.Tuple{u, v}, true); err == nil {
			t.Errorf("Gaifman-changing insertion accepted")
		}
	}
	// Updating a non-dynamic relation is rejected.
	if err := query.SetTuple("U", structure.Tuple{0}, true); err == nil {
		t.Errorf("update of a non-dynamic relation accepted")
	}
}

// rebuildWith sets membership of a tuple in a relation of the mirror
// structure (Structure has no deletion, so rebuild).
func rebuildWith(a *structure.Structure, rel string, tuple structure.Tuple, present bool) {
	old := a.Tuples(rel)
	keep := make([]structure.Tuple, 0, len(old)+1)
	for _, t := range old {
		if !t.Equal(tuple) {
			keep = append(keep, t)
		}
	}
	if present {
		keep = append(keep, tuple)
	}
	// Rebuild in place: copy everything else.
	fresh := structure.NewStructure(a.Sig, a.N)
	for _, r := range a.Sig.Relations {
		if r.Name == rel {
			for _, t := range keep {
				fresh.MustAddTuple(rel, t...)
			}
			continue
		}
		for _, t := range a.Tuples(r.Name) {
			fresh.MustAddTuple(r.Name, t...)
		}
	}
	*a = *fresh
}

// TestApplyBatchMixedChanges drives random mixed batches (weight updates and
// dynamic-relation toggles) through ApplyBatch and a twin query applying the
// same changes one at a time, interleaved with point queries, and checks
// both against naive evaluation.
func TestApplyBatchMixedChanges(t *testing.T) {
	// f(x) = Σ_y [E(x,y)]·w(x,y)·u(y) with dynamic E.
	q := expr.Agg([]string{"y"}, expr.Times(
		expr.Guard(logic.R("E", "x", "y")), expr.W("w", "x", "y"), expr.W("u", "y"),
	))
	a, w := testDB(9, 20, 41)
	opts := compile.Options{DynamicRelations: []string{"E"}}
	batched, err := CompileQuery[int64](semiring.Nat, a, w.Clone(), q, opts)
	if err != nil {
		t.Fatalf("CompileQuery: %v", err)
	}
	sequential, err := CompileQuery[int64](semiring.Nat, a, w.Clone(), q, opts)
	if err != nil {
		t.Fatalf("CompileQuery: %v", err)
	}
	mirror := a.Clone()
	mirrorW := w.Clone()

	r := rand.New(rand.NewSource(43))
	edges := append([]structure.Tuple(nil), a.Tuples("E")...)
	for step := 0; step < 25; step++ {
		batch := make([]Change[int64], r.Intn(6)+1)
		for i := range batch {
			tpl := edges[r.Intn(len(edges))]
			switch r.Intn(3) {
			case 0:
				batch[i] = WeightChange("w", tpl, int64(r.Intn(6)))
			case 1:
				batch[i] = WeightChange("u", structure.Tuple{tpl[1]}, int64(r.Intn(4)))
			default:
				batch[i] = TupleChange[int64]("E", tpl, r.Intn(2) == 0)
			}
		}
		if err := batched.ApplyBatch(batch); err != nil {
			t.Fatalf("step %d: ApplyBatch: %v", step, err)
		}
		for _, ch := range batch {
			if ch.Weight != "" {
				if err := sequential.SetWeight(ch.Weight, ch.Tuple, ch.Value); err != nil {
					t.Fatalf("step %d: SetWeight: %v", step, err)
				}
				mirrorW.Set(ch.Weight, ch.Tuple, ch.Value)
			} else {
				if err := sequential.SetTuple(ch.Rel, ch.Tuple, ch.Present); err != nil {
					t.Fatalf("step %d: SetTuple: %v", step, err)
				}
				rebuildWith(mirror, ch.Rel, ch.Tuple, ch.Present)
			}
		}
		for trial := 0; trial < 3; trial++ {
			x := r.Intn(a.N)
			got, err := batched.Value(x)
			if err != nil {
				t.Fatalf("step %d: Value(%d): %v", step, x, err)
			}
			seq, _ := sequential.Value(x)
			if got != seq {
				t.Fatalf("step %d: batched f(%d)=%d, sequential %d", step, x, got, seq)
			}
			want := naive(mirror, mirrorW, q, map[string]structure.Element{"x": x})
			if got != want {
				t.Fatalf("step %d: f(%d)=%d, naive %d", step, x, got, want)
			}
		}
	}
}

// TestApplyBatchAllOrNothing checks that a batch containing any invalid
// change is rejected without applying the valid prefix.
func TestApplyBatchAllOrNothing(t *testing.T) {
	q := expr.Agg([]string{"x", "y"}, expr.Times(
		expr.Guard(logic.R("E", "x", "y")), expr.W("w", "x", "y"),
	))
	a, w := testDB(8, 16, 47)
	query, err := CompileQuery[int64](semiring.Nat, a, w, q, compile.Options{DynamicRelations: []string{"E"}})
	if err != nil {
		t.Fatalf("CompileQuery: %v", err)
	}
	before, _ := query.ValueClosed()
	tpl := a.Tuples("E")[0]
	bad := [][]Change[int64]{
		{WeightChange("w", tpl, int64(99)), WeightChange[int64]("nope", tpl, 1)},
		{WeightChange("w", tpl, int64(99)), TupleChange[int64]("U", structure.Tuple{0}, true)},
		{WeightChange("w", tpl, int64(99)), {Weight: "w", Rel: "E", Tuple: tpl}},
		{WeightChange("w", tpl, int64(99)), {}},
		{WeightChange("w", tpl, int64(99)), WeightChange("w", structure.Tuple{0}, int64(1))},
	}
	for i, batch := range bad {
		if err := query.ApplyBatch(batch); err == nil {
			t.Fatalf("invalid batch %d accepted", i)
		}
		if got, _ := query.ValueClosed(); got != before {
			t.Fatalf("invalid batch %d partially applied: value %d, want %d", i, got, before)
		}
	}
	// The empty batch is a no-op.
	if err := query.ApplyBatch(nil); err != nil {
		t.Fatalf("empty batch rejected: %v", err)
	}
}

func TestRingAndFiniteSemiringPaths(t *testing.T) {
	// The same query compiled over ℤ (ring fast path) and ℤ/5 (finite fast
	// path) must agree with naive evaluation after updates.
	q := expr.Agg([]string{"x", "y"}, expr.Times(
		expr.Guard(logic.R("E", "x", "y")), expr.W("w", "x", "y"), expr.W("u", "y"),
	))
	a, w := testDB(9, 22, 17)

	intQuery, err := CompileQuery[int64](semiring.Int, a, w, q, compile.Options{})
	if err != nil {
		t.Fatalf("CompileQuery(Int): %v", err)
	}
	mod := semiring.NewModular(5)
	modQuery, err := CompileQuery[int64](mod, a, w, q, compile.Options{})
	if err != nil {
		t.Fatalf("CompileQuery(Mod5): %v", err)
	}
	ratWeights := structure.NewWeights[*big.Rat]()
	w.ForEach(func(k structure.WeightKey, v int64) {
		ratWeights.Set(k.Weight, structure.ParseTupleKey(k.Tuple), big.NewRat(v, 1))
	})
	ratQuery, err := CompileQuery[*big.Rat](semiring.Rat, a, ratWeights, q, compile.Options{})
	if err != nil {
		t.Fatalf("CompileQuery(Rat): %v", err)
	}

	r := rand.New(rand.NewSource(23))
	for step := 0; step < 20; step++ {
		tpl := a.Tuples("E")[r.Intn(len(a.Tuples("E")))]
		v := int64(r.Intn(9) - 3)
		if err := intQuery.SetWeight("w", tpl, v); err != nil {
			t.Fatal(err)
		}
		if err := modQuery.SetWeight("w", tpl, mod.Add(v, 0)); err != nil {
			t.Fatal(err)
		}
		if err := ratQuery.SetWeight("w", tpl, big.NewRat(v, 1)); err != nil {
			t.Fatal(err)
		}
		w.Set("w", tpl, v)

		want := int64(0)
		for _, e := range a.Tuples("E") {
			we, _ := w.Get("w", e)
			ue, _ := w.Get("u", structure.Tuple{e[1]})
			want += we * ue
		}
		if got, _ := intQuery.ValueClosed(); got != want {
			t.Fatalf("Int path: %d, want %d", got, want)
		}
		if got, _ := modQuery.ValueClosed(); !mod.Equal(got, want) {
			t.Fatalf("Mod5 path: %d, want %d", got, mod.Add(want, 0))
		}
		if got, _ := ratQuery.ValueClosed(); got.Cmp(big.NewRat(want, 1)) != 0 {
			t.Fatalf("Rat path: %s, want %d", got.RatString(), want)
		}
	}
}

func TestPageRankExample(t *testing.T) {
	// Example 9 of the paper: one PageRank round,
	// f(x) = (1-d)/N + d · Σ_y [E(y,x)] · w(y) · invdeg(y).
	sig := structure.MustSignature(
		[]structure.RelSymbol{{Name: "E", Arity: 2}},
		[]structure.WeightSymbol{
			{Name: "w", Arity: 1},
			{Name: "invdeg", Arity: 1},
			{Name: "base", Arity: 0},
		},
	)
	r := rand.New(rand.NewSource(31))
	n := 12
	a := structure.NewStructure(sig, n)
	for len(a.Tuples("E")) < 30 {
		x, y := r.Intn(n), r.Intn(n)
		if x != y {
			a.MustAddTuple("E", x, y)
		}
	}
	outdeg := make([]int64, n)
	for _, t := range a.Tuples("E") {
		outdeg[t[0]]++
	}
	damping := big.NewRat(85, 100)
	w := structure.NewWeights[*big.Rat]()
	for v := 0; v < n; v++ {
		w.Set("w", structure.Tuple{v}, big.NewRat(1, int64(n)))
		if outdeg[v] > 0 {
			w.Set("invdeg", structure.Tuple{v}, big.NewRat(1, outdeg[v]))
		}
	}
	w.Set("base", structure.Tuple{}, new(big.Rat).Quo(new(big.Rat).Sub(big.NewRat(1, 1), damping), big.NewRat(int64(n), 1)))

	// f(x) = base + Σ_y [E(y,x)]·w(y)·invdeg(y)·d; the damping factor d is
	// folded into invdeg to keep the expression within natural constants.
	for v := 0; v < n; v++ {
		if outdeg[v] > 0 {
			cur, _ := w.Get("invdeg", structure.Tuple{v})
			w.Set("invdeg", structure.Tuple{v}, new(big.Rat).Mul(cur, damping))
		}
	}
	f := expr.Plus(
		expr.W("base"),
		expr.Agg([]string{"y"}, expr.Times(expr.Guard(logic.R("E", "y", "x")), expr.W("w", "y"), expr.W("invdeg", "y"))),
	)
	query, err := CompileQuery[*big.Rat](semiring.Rat, a, w, f, compile.Options{})
	if err != nil {
		t.Fatalf("CompileQuery: %v", err)
	}
	// The new PageRank vector must sum to (1-d) + d·(mass of nodes with
	// outgoing edges); with every node having out-degree ≥ 1 it sums to 1.
	total := new(big.Rat)
	for x := 0; x < n; x++ {
		v, err := query.Value(x)
		if err != nil {
			t.Fatalf("Value(%d): %v", x, err)
		}
		want := expr.Eval[*big.Rat](semiring.Rat, a, w, f, map[string]structure.Element{"x": x})
		if v.Cmp(want) != 0 {
			t.Fatalf("pagerank(%d) = %s, want %s", x, v.RatString(), want.RatString())
		}
		total.Add(total, v)
	}
	if total.Sign() <= 0 {
		t.Fatalf("total PageRank mass should be positive, got %s", total.RatString())
	}
	// A weight update (a node's previous-round weight changes) is reflected
	// in constant time; cross-check one query point.
	w.Set("w", structure.Tuple{0}, big.NewRat(1, 2))
	if err := query.SetWeight("w", structure.Tuple{0}, big.NewRat(1, 2)); err != nil {
		t.Fatal(err)
	}
	for x := 0; x < n; x++ {
		v, _ := query.Value(x)
		want := expr.Eval[*big.Rat](semiring.Rat, a, w, f, map[string]structure.Element{"x": x})
		if v.Cmp(want) != 0 {
			t.Fatalf("after update pagerank(%d) = %s, want %s", x, v.RatString(), want.RatString())
		}
	}
}
