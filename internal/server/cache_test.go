package server

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestCacheEvictionSkipsBuildingSlots is the regression test for the
// eviction-during-build race: with a cache bound of 1, a slow build must not
// be evicted by an unrelated insertion, or a concurrent request for the same
// key would start a duplicate compilation.
func TestCacheEvictionSkipsBuildingSlots(t *testing.T) {
	c := newLRUCache(1)
	started := make(chan struct{})
	release := make(chan struct{})
	var aBuilds atomic.Int32

	firstDone := make(chan struct{})
	go func() {
		defer close(firstDone)
		_, _, err := c.getOrCreate("A", func() (any, error) {
			close(started)
			<-release
			aBuilds.Add(1)
			return "a", nil
		})
		if err != nil {
			t.Errorf("building A: %v", err)
		}
	}()
	<-started

	// Overflow the cache while A is still building: eviction must pick a
	// completed slot (or none), never the in-flight one.
	if _, _, err := c.getOrCreate("B", func() (any, error) { return "b", nil }); err != nil {
		t.Fatalf("building B: %v", err)
	}

	// A second request for A must join the in-flight build, not start a new
	// one.
	secondDone := make(chan struct{})
	var secondHit bool
	go func() {
		defer close(secondDone)
		v, hit, err := c.getOrCreate("A", func() (any, error) {
			aBuilds.Add(1)
			return "duplicate", nil
		})
		if err != nil {
			t.Errorf("joining A: %v", err)
		}
		if v != "a" {
			t.Errorf("joined build returned %v, want the original value", v)
		}
		secondHit = hit
	}()

	close(release)
	<-firstDone
	<-secondDone
	if got := aBuilds.Load(); got != 1 {
		t.Errorf("key A was built %d times, want 1", got)
	}
	if !secondHit {
		t.Errorf("request joining a successful in-flight build should count as a hit")
	}
}

// TestCacheFailedBuildIsNotAHit checks that every request sharing a failed
// build — the winner and all waiters — reports hit=false, and that the slot
// is removed so the next request retries.
func TestCacheFailedBuildIsNotAHit(t *testing.T) {
	c := newLRUCache(4)
	boom := errors.New("boom")
	started := make(chan struct{})
	release := make(chan struct{})

	type result struct {
		hit bool
		err error
	}
	results := make(chan result, 5)
	go func() {
		_, hit, err := c.getOrCreate("k", func() (any, error) {
			close(started)
			<-release
			return nil, boom
		})
		results <- result{hit, err}
	}()
	<-started
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, hit, err := c.getOrCreate("k", func() (any, error) { return nil, boom })
			results <- result{hit, err}
		}()
	}
	// Give the waiters time to attach to the in-flight slot before it fails.
	time.Sleep(20 * time.Millisecond)
	close(release)
	wg.Wait()
	for i := 0; i < 5; i++ {
		r := <-results
		if r.err == nil {
			t.Errorf("request sharing a failed build reported no error")
		}
		if r.hit {
			t.Errorf("request sharing a failed build reported hit=true")
		}
	}

	// The failed slot is gone: the next request rebuilds and succeeds.
	v, hit, err := c.getOrCreate("k", func() (any, error) { return 42, nil })
	if err != nil || v != 42 {
		t.Fatalf("retry after failed build: value %v, err %v", v, err)
	}
	if hit {
		t.Errorf("retry after failed build reported hit=true, want false")
	}
	if _, hit, _ := c.getOrCreate("k", func() (any, error) { return 0, nil }); !hit {
		t.Errorf("request after successful rebuild should be a hit")
	}
}
