package circuit

import (
	"fmt"
	"sort"

	"repro/internal/perm"
	"repro/internal/semiring"
	"repro/internal/structure"
)

// Dynamic is an incrementally maintained evaluation of a circuit: after a
// linear-time initialisation, the value of the output gate is kept up to
// date while individual weight inputs change.
//
// The per-update cost realises Theorem 8 of the paper:
//
//   - for arbitrary semirings, permanent gates are maintained by the
//     segment-tree structure of perm.Dynamic and wide addition gates by a
//     balanced aggregation tree, giving O(log n) semiring operations per
//     update;
//   - when the semiring is a ring, permanent gates use inclusion–exclusion
//     (perm.RingDynamic) and addition gates use difference updates, giving
//     O(1) operations per update;
//   - when the semiring is finite, permanent gates use column-type counting
//     (perm.FiniteDynamic) and addition gates use value counting, again
//     giving O(1) operations per update.
//
// The strategy is chosen automatically from the semiring's capabilities.
type Dynamic[T any] struct {
	c *Circuit
	s semiring.Semiring[T]

	ring   semiring.Ring[T]   // nil unless the semiring is a ring
	finite semiring.Finite[T] // nil unless the semiring is finite
	elems  []T                // carrier, when finite

	vals    []T
	parents [][]int

	adders []*adderState[T]
	perms  []permState[T]
}

type adderState[T any] struct {
	children []int
	// occurrences[child] lists the positions of that child within children,
	// so that an update touches only the changed child's occurrences.
	occurrences map[int][]int
	// ring path: nothing extra (difference updates on vals).
	// finite path: counts[i] = number of children currently equal to elems[i].
	counts []int64
	// generic path: a complete binary aggregation tree over the children.
	tree []T
	size int
}

type permState[T any] struct {
	maintainer perm.Maintainer[T]
	// positions[child] lists the wired (row, col) positions of that child.
	positions map[int][][2]int
}

// NewDynamic initialises the dynamic evaluator under the given valuation.
func NewDynamic[T any](c *Circuit, s semiring.Semiring[T], v Valuation[T]) *Dynamic[T] {
	if c.Output < 0 {
		panic("circuit: no output gate set")
	}
	d := &Dynamic[T]{c: c, s: s}
	if r, ok := s.(semiring.Ring[T]); ok {
		d.ring = r
	}
	if f, ok := s.(semiring.Finite[T]); ok {
		d.finite = f
		d.elems = f.Elements()
	}
	d.vals = EvaluateAll(c, s, v)
	d.parents = make([][]int, len(c.Gates))
	d.adders = make([]*adderState[T], len(c.Gates))
	d.perms = make([]permState[T], len(c.Gates))
	for id, g := range c.Gates {
		for _, ch := range c.children(id) {
			d.parents[ch] = append(d.parents[ch], id)
		}
		switch g.Kind {
		case KindAdd:
			d.adders[id] = d.newAdderState(g.Children)
		case KindPerm:
			d.perms[id] = d.newPermState(g)
		}
	}
	// Deduplicate parent lists (a child may be wired several times).
	for ch := range d.parents {
		d.parents[ch] = dedupInts(d.parents[ch])
	}
	return d
}

func dedupInts(xs []int) []int {
	if len(xs) < 2 {
		return xs
	}
	sort.Ints(xs)
	out := xs[:1]
	for _, x := range xs[1:] {
		if x != out[len(out)-1] {
			out = append(out, x)
		}
	}
	return out
}

func (d *Dynamic[T]) newAdderState(children []int) *adderState[T] {
	st := &adderState[T]{children: children, occurrences: map[int][]int{}}
	for pos, ch := range children {
		st.occurrences[ch] = append(st.occurrences[ch], pos)
	}
	switch {
	case d.ring != nil:
		// Difference updates need no auxiliary state.
	case d.finite != nil:
		st.counts = make([]int64, len(d.elems))
		for _, ch := range children {
			st.counts[d.elemIndex(d.vals[ch])]++
		}
	default:
		// Balanced aggregation tree over the children values.
		st.size = 1
		for st.size < len(children) {
			st.size *= 2
		}
		st.tree = make([]T, 2*st.size)
		for i := range st.tree {
			st.tree[i] = d.s.Zero()
		}
		for i, ch := range children {
			st.tree[st.size+i] = d.vals[ch]
		}
		for i := st.size - 1; i >= 1; i-- {
			st.tree[i] = d.s.Add(st.tree[2*i], st.tree[2*i+1])
		}
	}
	return st
}

func (d *Dynamic[T]) elemIndex(v T) int {
	for i, e := range d.elems {
		if d.s.Equal(e, v) {
			return i
		}
	}
	panic("circuit: value outside the finite semiring carrier")
}

func (d *Dynamic[T]) newPermState(g Gate) permState[T] {
	m := perm.NewMatrix[T](d.s, g.Rows, g.Cols)
	positions := make(map[int][][2]int)
	for _, e := range g.Entries {
		m.Set(e.Row, e.Col, d.vals[e.Gate])
		positions[e.Gate] = append(positions[e.Gate], [2]int{e.Row, e.Col})
	}
	var maint perm.Maintainer[T]
	switch {
	case d.ring != nil:
		maint = perm.NewRingDynamic(d.ring, m)
	case d.finite != nil:
		maint = perm.NewFiniteDynamic(d.finite, m)
	default:
		maint = perm.NewDynamic(d.s, m)
	}
	return permState[T]{maintainer: maint, positions: positions}
}

// Value returns the current value of the output gate.
func (d *Dynamic[T]) Value() T { return d.vals[d.c.Output] }

// GateValue returns the current value of an arbitrary gate.
func (d *Dynamic[T]) GateValue(id int) T { return d.vals[id] }

// SetInput updates one weight input to the given value and propagates the
// change.  Unknown keys (keys the circuit does not reference) are ignored,
// matching the convention that weights outside the circuit cannot influence
// the query value.
func (d *Dynamic[T]) SetInput(key structure.WeightKey, value T) {
	id := d.c.InputGate(key)
	if id < 0 {
		return
	}
	d.setGateValue(id, value)
}

// setGateValue changes the value of gate id and propagates upwards.  For
// every affected parent, only the positions of the children that actually
// changed are touched, so the per-update cost depends on the circuit's
// fan-out and depth but never on the fan-in of wide gates.
func (d *Dynamic[T]) setGateValue(id int, value T) {
	old := d.vals[id]
	if d.s.Equal(old, value) {
		return
	}
	d.vals[id] = value
	dirty := map[int]bool{}
	var queue []int
	push := func(g int) {
		if !dirty[g] {
			dirty[g] = true
			queue = append(queue, g)
		}
	}
	// pending[p] records, per parent, the changed children and their values
	// right before the change.
	pending := map[int]map[int]T{}
	record := func(parent, child int, oldVal T) {
		m, ok := pending[parent]
		if !ok {
			m = map[int]T{}
			pending[parent] = m
		}
		if _, seen := m[child]; !seen {
			m[child] = oldVal
		}
	}
	for _, p := range d.parents[id] {
		record(p, id, old)
		push(p)
	}
	for len(queue) > 0 {
		// Pop the smallest id to respect topological order.
		sort.Ints(queue)
		g := queue[0]
		queue = queue[1:]
		dirty[g] = false
		oldValues := pending[g]
		delete(pending, g)
		newVal := d.recomputeGate(g, oldValues)
		if d.s.Equal(newVal, d.vals[g]) {
			continue
		}
		oldG := d.vals[g]
		d.vals[g] = newVal
		for _, p := range d.parents[g] {
			record(p, g, oldG)
			push(p)
		}
	}
}

// recomputeGate refreshes the auxiliary structures of gate g given that some
// of its children changed (their previous values are in oldValues), and
// returns the new value of g.
func (d *Dynamic[T]) recomputeGate(g int, oldValues map[int]T) T {
	gate := d.c.Gates[g]
	switch gate.Kind {
	case KindAdd:
		return d.recomputeAdd(g, gate, oldValues)
	case KindMul:
		acc := d.s.One()
		for _, ch := range gate.Children {
			acc = d.s.Mul(acc, d.vals[ch])
		}
		return acc
	case KindPerm:
		st := d.perms[g]
		for child, oldVal := range oldValues {
			if d.s.Equal(oldVal, d.vals[child]) {
				continue
			}
			for _, pos := range st.positions[child] {
				st.maintainer.Update(pos[0], pos[1], d.vals[child])
			}
		}
		return st.maintainer.Value()
	default:
		panic(fmt.Sprintf("circuit: gate %d of kind %v cannot be recomputed dynamically", g, gate.Kind))
	}
}

func (d *Dynamic[T]) recomputeAdd(g int, gate Gate, oldValues map[int]T) T {
	st := d.adders[g]
	_ = gate
	switch {
	case d.ring != nil:
		acc := d.vals[g]
		for ch, oldVal := range oldValues {
			occ := int64(len(st.occurrences[ch]))
			if occ == 0 {
				continue
			}
			delta := d.ring.Add(d.vals[ch], d.ring.Neg(oldVal))
			acc = d.ring.Add(acc, semiring.ScalarMul[T](d.ring, occ, delta))
		}
		return acc
	case d.finite != nil:
		for ch, oldVal := range oldValues {
			if d.s.Equal(oldVal, d.vals[ch]) {
				continue
			}
			occ := int64(len(st.occurrences[ch]))
			st.counts[d.elemIndex(oldVal)] -= occ
			st.counts[d.elemIndex(d.vals[ch])] += occ
		}
		acc := d.s.Zero()
		for i, cnt := range st.counts {
			if cnt > 0 {
				acc = d.s.Add(acc, semiring.ScalarMul(d.s, cnt, d.elems[i]))
			}
		}
		return acc
	default:
		for ch, oldVal := range oldValues {
			if d.s.Equal(oldVal, d.vals[ch]) {
				continue
			}
			for _, i := range st.occurrences[ch] {
				pos := st.size + i
				st.tree[pos] = d.vals[ch]
				for pos >= 2 {
					pos /= 2
					st.tree[pos] = d.s.Add(st.tree[2*pos], st.tree[2*pos+1])
				}
			}
		}
		return st.tree[1]
	}
}

// There is a subtlety in the ring fast path of recomputeAdd: a child that
// changed several times between recomputations of the same parent would make
// the recorded "old value" stale.  The propagation above recomputes a parent
// immediately after each child change (parents are processed in topological
// order within a single SetInput call and oldValues records the value right
// before the present change), so each delta is applied exactly once.
var _ = struct{}{}
