package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/structure"
)

// errConflict marks errors that should surface as 409 rather than 400.
var errConflict = errors.New("conflict")

// Handler returns the HTTP handler serving the aggserve API:
//
//	POST /query      evaluate a closed expression in a named semiring
//	POST /session    create a named dynamic-update session
//	POST /point      point query at a tuple of free variables
//	POST /update     apply weight/tuple updates to a session one at a time
//	POST /batch      apply a batch atomically with one propagation wave
//	GET  /enumerate  stream query answers as NDJSON with constant delay
//	GET  /stats      serving counters
//	GET  /healthz    liveness probe
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /query", s.wrap(s.handleQuery))
	mux.HandleFunc("POST /session", s.wrap(s.handleSession))
	mux.HandleFunc("DELETE /session", s.wrap(s.handleDeleteSession))
	mux.HandleFunc("POST /point", s.wrap(s.handlePoint))
	mux.HandleFunc("POST /update", s.wrap(s.handleUpdate))
	mux.HandleFunc("POST /batch", s.wrap(s.handleBatch))
	mux.HandleFunc("GET /enumerate", s.wrap(s.handleEnumerate))
	mux.HandleFunc("GET /stats", s.wrap(s.handleStats))
	mux.HandleFunc("GET /healthz", s.wrap(func(w http.ResponseWriter, r *http.Request) {
		s.writeJSON(w, map[string]bool{"ok": true})
	}))
	return mux
}

func (s *Server) wrap(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		s.stats.InFlight.Add(1)
		defer s.stats.InFlight.Add(-1)
		h(w, r)
	}
}

func (s *Server) writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func (s *Server) writeError(w http.ResponseWriter, err error) {
	s.stats.Errors.Add(1)
	status := http.StatusBadRequest
	if errors.Is(err, errConflict) {
		status = http.StatusConflict
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

func decode(r *http.Request, v any) error {
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		return fmt.Errorf("decoding request body: %w", err)
	}
	return nil
}

// ---------------------------------------------------------------------------
// POST /query
// ---------------------------------------------------------------------------

type queryRequest struct {
	DB       string `json:"db"`
	Expr     string `json:"expr"`
	Semiring string `json:"semiring"`
	// Workers overrides the server's evaluation worker pool for this request
	// (0 keeps the server default).
	Workers int `json:"workers"`
	// Dynamic lists relations compiled as dynamic inputs; it participates in
	// the cache key.
	Dynamic []string `json:"dynamic"`
}

type circuitInfo struct {
	Gates int `json:"gates"`
	Edges int `json:"edges"`
	Depth int `json:"depth"`
}

type queryResponse struct {
	Semiring   string      `json:"semiring"`
	Value      string      `json:"value"`
	Cached     bool        `json:"cached"`
	EvalMillis float64     `json:"evalMillis"`
	Circuit    circuitInfo `json:"circuit"`
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req queryRequest
	if err := decode(r, &req); err != nil {
		s.writeError(w, err)
		return
	}
	cq, hit, err := s.compiled(req.DB, req.Expr, req.Semiring, req.Dynamic)
	if err != nil {
		s.writeError(w, err)
		return
	}
	if free := cq.sh.FreeVars(); len(free) > 0 {
		s.writeError(w, fmt.Errorf("expression has free variables %v; use /point for point queries", free))
		return
	}
	var value string
	d := timed(&s.stats.EvalNanos, func() {
		value = cq.sem.Evaluate(cq.sh.Result(), cq.cw, s.workers(req.Workers))
	})
	s.stats.Queries.Add(1)
	st := cq.sh.Result().Circuit.Statistics()
	s.writeJSON(w, queryResponse{
		Semiring:   cq.sem.Name(),
		Value:      value,
		Cached:     hit,
		EvalMillis: float64(d.Nanoseconds()) / 1e6,
		Circuit:    circuitInfo{Gates: st.Gates, Edges: st.Edges, Depth: st.Depth},
	})
}

// ---------------------------------------------------------------------------
// POST /session
// ---------------------------------------------------------------------------

type sessionRequest struct {
	Name     string   `json:"name"`
	DB       string   `json:"db"`
	Expr     string   `json:"expr"`
	Semiring string   `json:"semiring"`
	Dynamic  []string `json:"dynamic"`
}

type sessionResponse struct {
	Session  string   `json:"session"`
	FreeVars []string `json:"freeVars"`
	Cached   bool     `json:"cached"`
}

func (s *Server) handleSession(w http.ResponseWriter, r *http.Request) {
	var req sessionRequest
	if err := decode(r, &req); err != nil {
		s.writeError(w, err)
		return
	}
	h, hit, err := s.CreateSession(req.Name, req.DB, req.Expr, req.Semiring, req.Dynamic)
	if err != nil {
		s.writeError(w, err)
		return
	}
	s.writeJSON(w, sessionResponse{Session: h.name, FreeVars: h.sess.FreeVars(), Cached: hit})
}

// handleDeleteSession serves DELETE /session?name=...; without it, a
// long-lived daemon whose clients create sessions per task would accumulate
// evaluator state without bound (compiled queries live in the bounded LRU,
// sessions do not).
func (s *Server) handleDeleteSession(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("name")
	if name == "" {
		s.writeError(w, fmt.Errorf("missing session name"))
		return
	}
	if err := s.DeleteSession(name); err != nil {
		s.writeError(w, err)
		return
	}
	s.writeJSON(w, map[string]string{"deleted": name})
}

// ---------------------------------------------------------------------------
// POST /point
// ---------------------------------------------------------------------------

type pointRequest struct {
	// Session targets a named session; alternatively db/expr/semiring use
	// the compiled-query cache's implicit session.
	Session  string              `json:"session"`
	DB       string              `json:"db"`
	Expr     string              `json:"expr"`
	Semiring string              `json:"semiring"`
	Args     []structure.Element `json:"args"`
}

type pointResponse struct {
	Value string `json:"value"`
}

func (s *Server) handlePoint(w http.ResponseWriter, r *http.Request) {
	var req pointRequest
	if err := decode(r, &req); err != nil {
		s.writeError(w, err)
		return
	}
	var value string
	if req.Session != "" {
		h, err := s.session(req.Session)
		if err != nil {
			s.writeError(w, err)
			return
		}
		h.mu.Lock()
		value, err = h.sess.Point(req.Args)
		h.mu.Unlock()
		if err != nil {
			s.writeError(w, err)
			return
		}
	} else {
		cq, _, err := s.compiled(req.DB, req.Expr, req.Semiring, nil)
		if err != nil {
			s.writeError(w, err)
			return
		}
		cq.mu.Lock()
		value, err = cq.session().Point(req.Args)
		cq.mu.Unlock()
		if err != nil {
			s.writeError(w, err)
			return
		}
	}
	s.stats.Points.Add(1)
	s.writeJSON(w, pointResponse{Value: value})
}

// ---------------------------------------------------------------------------
// POST /update
// ---------------------------------------------------------------------------

// updateSpec is one update of a batch.  A weight update sets Weight/Tuple/
// Value; a tuple update sets Rel/Tuple and optionally Present (default
// true, i.e. insert).
type updateSpec struct {
	Weight  string          `json:"weight"`
	Rel     string          `json:"rel"`
	Tuple   structure.Tuple `json:"tuple"`
	Value   int64           `json:"value"`
	Present *bool           `json:"present"`
}

type updateRequest struct {
	Session string       `json:"session"`
	Updates []updateSpec `json:"updates"`
}

type updateResponse struct {
	Applied int `json:"applied"`
}

func (s *Server) handleUpdate(w http.ResponseWriter, r *http.Request) {
	var req updateRequest
	if err := decode(r, &req); err != nil {
		s.writeError(w, err)
		return
	}
	h, err := s.session(req.Session)
	if err != nil {
		s.writeError(w, err)
		return
	}
	applied := 0
	h.mu.Lock()
	for i, u := range req.Updates {
		switch {
		case u.Weight != "" && u.Rel != "":
			err = fmt.Errorf("update %d names both a weight and a relation", i)
		case u.Weight != "":
			err = h.sess.SetWeight(u.Weight, u.Tuple, u.Value)
		case u.Rel != "":
			present := u.Present == nil || *u.Present
			err = h.sess.SetTuple(u.Rel, u.Tuple, present)
		default:
			err = fmt.Errorf("update %d names neither a weight nor a relation", i)
		}
		if err != nil {
			err = fmt.Errorf("update %d: %v (%d of %d applied)", i, err, applied, len(req.Updates))
			break
		}
		applied++
	}
	h.mu.Unlock()
	s.stats.Updates.Add(int64(applied))
	s.stats.UpdateBatches.Add(1)
	if err != nil {
		s.writeError(w, err)
		return
	}
	s.writeJSON(w, updateResponse{Applied: applied})
}

// ---------------------------------------------------------------------------
// POST /batch
// ---------------------------------------------------------------------------

type batchResponse struct {
	Applied int `json:"applied"`
}

// handleBatch applies a batch of updates atomically: every update is
// validated before anything is applied (all-or-nothing, unlike /update's
// stop-at-first-error semantics) and the session's evaluator then runs a
// single propagation wave for the whole batch, so updates sharing circuit
// gates — or repeatedly hitting the same hot keys — cost far less than the
// equivalent sequence of individual updates.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req updateRequest
	if err := decode(r, &req); err != nil {
		s.writeError(w, err)
		return
	}
	changes := make([]SessionChange, len(req.Updates))
	for i, u := range req.Updates {
		if u.Weight != "" && u.Rel != "" {
			s.writeError(w, fmt.Errorf("update %d names both a weight and a relation", i))
			return
		}
		if u.Weight == "" && u.Rel == "" {
			s.writeError(w, fmt.Errorf("update %d names neither a weight nor a relation", i))
			return
		}
		changes[i] = SessionChange{
			Weight:  u.Weight,
			Rel:     u.Rel,
			Tuple:   u.Tuple,
			Value:   u.Value,
			Present: u.Present == nil || *u.Present,
		}
	}
	h, err := s.session(req.Session)
	if err != nil {
		s.writeError(w, err)
		return
	}
	h.mu.Lock()
	err = h.sess.ApplyBatch(changes)
	h.mu.Unlock()
	if err != nil {
		s.writeError(w, err)
		return
	}
	s.stats.Batches.Add(1)
	s.stats.BatchedUpdates.Add(int64(len(changes)))
	s.writeJSON(w, batchResponse{Applied: len(changes)})
}

// ---------------------------------------------------------------------------
// GET /enumerate
// ---------------------------------------------------------------------------

// enumerateLine is one NDJSON line of the /enumerate stream: every answer
// tuple on its own line, then a final summary line with Done set.
type enumerateLine struct {
	Answer   structure.Tuple `json:"answer,omitempty"`
	Done     bool            `json:"done,omitempty"`
	Streamed int             `json:"streamed,omitempty"`
	Total    int64           `json:"total,omitempty"`
	Cached   bool            `json:"cached,omitempty"`
}

func (s *Server) handleEnumerate(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	vars := splitList(q.Get("vars"))
	limit := 100
	if raw := q.Get("limit"); raw != "" {
		n, err := strconv.Atoi(raw)
		if err != nil {
			s.writeError(w, fmt.Errorf("invalid limit %q", raw))
			return
		}
		limit = n
	}
	ce, hit, err := s.compiledEnumerator(q.Get("db"), q.Get("phi"), vars)
	if err != nil {
		s.writeError(w, err)
		return
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	flusher, _ := w.(http.Flusher)

	// Cached enumerators never receive updates, so concurrent cursors are
	// independent and safe; each request drives its own.
	cur := ce.ans.Cursor()
	streamed := 0
	for limit <= 0 || streamed < limit {
		t, ok := cur.Next()
		if !ok {
			break
		}
		if err := enc.Encode(enumerateLine{Answer: t}); err != nil {
			return // client went away
		}
		streamed++
		if flusher != nil {
			flusher.Flush()
		}
	}
	_ = enc.Encode(enumerateLine{Done: true, Streamed: streamed, Total: ce.total, Cached: hit})
	s.stats.Enumerations.Add(1)
}

// ---------------------------------------------------------------------------
// GET /stats
// ---------------------------------------------------------------------------

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	snap := s.stats.snapshot()
	snap.CachedQueries = s.cache.len()
	snap.CacheEntryBytes, snap.CacheBytes = s.cache.entryBytes()
	s.mu.RLock()
	snap.Databases = len(s.dbs)
	s.mu.RUnlock()
	snap.UptimeSeconds = time.Since(s.start).Seconds()
	s.writeJSON(w, snap)
}

func splitList(s string) []string {
	var out []string
	for _, v := range strings.Split(s, ",") {
		if v = strings.TrimSpace(v); v != "" {
			out = append(out, v)
		}
	}
	return out
}
