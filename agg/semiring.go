package agg

import (
	"context"
	"sort"
	"sync"

	"repro/internal/compile"
	"repro/internal/dynamicq"
	"repro/internal/nested"
	"repro/internal/obs"
	"repro/internal/provenance"
	"repro/internal/semiring"
	"repro/internal/structure"
)

// Arithmetic is the contract a carrier type must satisfy to be registered as
// a semiring: a commutative semiring (S, +, ·, 0, 1) with equality and a
// formatter.  Implementations must be cheap to copy and free of side effects
// on their arguments; all methods may be called from many goroutines at
// once.
type Arithmetic[T any] interface {
	// Zero returns the additive identity.
	Zero() T
	// One returns the multiplicative identity.
	One() T
	// Add returns a + b.
	Add(a, b T) T
	// Mul returns a · b.
	Mul(a, b T) T
	// Equal reports whether two elements are equal.
	Equal(a, b T) bool
	// Format renders an element as the string surfaced by Eval.
	Format(a T) string
}

// Semiring is one named carrier queries can be evaluated in.  Values are
// opaque to callers: obtain instances from the registry (LookupSemiring) or
// construct new ones with NewSemiring, and select them per query with
// WithSemiring.  The interface is sealed; user-defined carriers plug in
// through NewSemiring's Arithmetic and embedding function.
type Semiring interface {
	// Name returns the registry name of the carrier.
	Name() string

	// convert embeds the database's integer weights into the carrier once;
	// the result is immutable and shared by any number of evaluations.
	convert(w *structure.Weights[int64]) any
	// evaluate runs the compiled circuit under previously converted weights
	// across workers goroutines, honouring ctx, and formats the output.
	evaluate(ctx context.Context, res *compile.Result, cw any, workers int) (string, error)
	// newSession instantiates per-session dynamic state (Theorem 8) on a
	// shared compilation, with a private copy of the weights.  A non-nil
	// tracer receives the session's propagation-wave timings; nil leaves the
	// update path uninstrumented (no clock reads).
	newSession(sh *dynamicq.Shared, w *structure.Weights[int64], tr *obs.Tracer) erasedSession
	// boxed returns the dynamically typed view of the carrier used by nested
	// (FOG[C]) formulas; bool carriers map onto the canonical boolean box so
	// nested's boolean positions recognise them.
	boxed() nested.Semiring
	// embedAny embeds one int64 database weight into the carrier, with the
	// type erased for nested S-relation stores.
	embedAny(key structure.WeightKey, v int64) any
}

// erasedSession is a dynamic-update session with the carrier type erased;
// the public Session type wraps it with locking and lifecycle state.
type erasedSession interface {
	FreeVars() []string
	Point(args []int) (string, error)
	SetWeight(weight string, tuple []int, value int64) error
	SetTuple(rel string, tuple []int, present bool) error
	ApplyBatch(changes []Change) error
	// Snapshot pins the current committed epoch for concurrent reads; engines
	// without MVCC support (the nested evaluator) return an error.
	Snapshot() (erasedSnapshot, error)
	// Epoch is the number of committed mutations so far.
	Epoch() uint64
	// RetainedUndoBytes is the undo-history memory pinned by open snapshots.
	RetainedUndoBytes() int64
}

// erasedSnapshot is a pinned read handle on an erasedSession: point queries
// answer as of the pinned epoch while the writer keeps committing.
type erasedSnapshot interface {
	Point(args []int) (string, error)
	Epoch() uint64
	Release()
}

// NewSemiring builds a registrable semiring from an arithmetic and an
// embedding that maps a database weight — identified by its weight symbol,
// tuple, and serialised int64 value — into the carrier.  The embedding sees
// the full key so carriers like the provenance semiring can mint a distinct
// generator per tuple.
func NewSemiring[T any](name string, ops Arithmetic[T], embed func(weight string, tuple []int, value int64) T) Semiring {
	return &typedSemiring[T]{
		name: name,
		s:    semiring.Semiring[T](ops),
		embed: func(k structure.WeightKey, v int64) T {
			return embed(k.Weight, []int(structure.ParseTupleKey(k.Tuple)), v)
		},
	}
}

// typedSemiring adapts one semiring.Semiring[T] to the erased interface.
type typedSemiring[T any] struct {
	name  string
	s     semiring.Semiring[T]
	embed func(key structure.WeightKey, v int64) T
}

func (ts *typedSemiring[T]) Name() string { return ts.name }

func (ts *typedSemiring[T]) convertTyped(w *structure.Weights[int64]) *structure.Weights[T] {
	out := structure.NewWeights[T]()
	if w == nil {
		return out
	}
	w.ForEach(func(k structure.WeightKey, v int64) {
		out.Set(k.Weight, structure.ParseTupleKey(k.Tuple), ts.embed(k, v))
	})
	return out
}

func (ts *typedSemiring[T]) convert(w *structure.Weights[int64]) any {
	return ts.convertTyped(w)
}

func (ts *typedSemiring[T]) evaluate(ctx context.Context, res *compile.Result, cw any, workers int) (string, error) {
	v, err := compile.EvaluateParallelCtx(ctx, res, ts.s, cw.(*structure.Weights[T]), workers)
	if err != nil {
		return "", err
	}
	return ts.s.Format(v), nil
}

func (ts *typedSemiring[T]) newSession(sh *dynamicq.Shared, w *structure.Weights[int64], tr *obs.Tracer) erasedSession {
	q := dynamicq.NewQuery(ts.s, sh, ts.convertTyped(w))
	if hook := tr.WaveHook(); hook != nil {
		q.SetWaveHook(hook)
	}
	return &typedSession[T]{ts: ts, q: q}
}

func (ts *typedSemiring[T]) boxed() nested.Semiring {
	if _, ok := any(ts.s).(semiring.Semiring[bool]); ok {
		return nested.BoolSemiring
	}
	return nested.Box(ts.name, ts.s)
}

func (ts *typedSemiring[T]) embedAny(key structure.WeightKey, v int64) any {
	return ts.embed(key, v)
}

// typedSession adapts a dynamicq.Query to the erased session interface.
type typedSession[T any] struct {
	ts *typedSemiring[T]
	q  *dynamicq.Query[T]
}

func (s *typedSession[T]) FreeVars() []string { return s.q.FreeVars() }

func (s *typedSession[T]) Point(args []int) (string, error) {
	v, err := s.q.Value(args...)
	if err != nil {
		return "", err
	}
	return s.ts.s.Format(v), nil
}

func (s *typedSession[T]) SetWeight(weight string, tuple []int, value int64) error {
	t := structure.Tuple(tuple)
	return s.q.SetWeight(weight, t, s.ts.embed(structure.MakeWeightKey(weight, t), value))
}

func (s *typedSession[T]) SetTuple(rel string, tuple []int, present bool) error {
	return s.q.SetTuple(rel, structure.Tuple(tuple), present)
}

func (s *typedSession[T]) Snapshot() (erasedSnapshot, error) {
	return &typedSnapshot[T]{ts: s.ts, snap: s.q.Snapshot()}, nil
}

func (s *typedSession[T]) Epoch() uint64 { return s.q.Epoch() }

func (s *typedSession[T]) RetainedUndoBytes() int64 { return s.q.RetainedUndoBytes() }

// typedSnapshot adapts a dynamicq.Snapshot to the erased snapshot interface.
type typedSnapshot[T any] struct {
	ts   *typedSemiring[T]
	snap *dynamicq.Snapshot[T]
}

func (s *typedSnapshot[T]) Point(args []int) (string, error) {
	v, err := s.snap.Value(args...)
	if err != nil {
		return "", err
	}
	return s.ts.s.Format(v), nil
}

func (s *typedSnapshot[T]) Epoch() uint64 { return s.snap.Epoch() }

func (s *typedSnapshot[T]) Release() { s.snap.Release() }

func (s *typedSession[T]) ApplyBatch(changes []Change) error {
	typed := make([]dynamicq.Change[T], len(changes))
	for i, ch := range changes {
		t := structure.Tuple(ch.Tuple)
		typed[i] = dynamicq.Change[T]{Rel: ch.Rel, Tuple: t, Present: ch.Present, Weight: ch.Weight}
		if ch.Weight != "" {
			typed[i].Value = s.ts.embed(structure.MakeWeightKey(ch.Weight, t), ch.Value)
		}
	}
	return s.q.ApplyBatch(typed)
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

var registry = struct {
	sync.RWMutex
	m map[string]Semiring
}{m: map[string]Semiring{}}

// Register adds a semiring to the process-wide registry, making it available
// to WithSemiring and to frontends such as aggserve.  Registering an empty
// name or a name that is already taken fails.
func Register(s Semiring) error {
	if s == nil || s.Name() == "" {
		return errorf(ErrArgument, "", "agg: Register needs a named semiring")
	}
	registry.Lock()
	defer registry.Unlock()
	if _, dup := registry.m[s.Name()]; dup {
		return errorf(ErrArgument, "", "agg: semiring %q is already registered", s.Name())
	}
	registry.m[s.Name()] = s
	return nil
}

// MustRegister is Register, panicking on error; intended for package init
// blocks.
func MustRegister(s Semiring) {
	if err := Register(s); err != nil {
		panic(err)
	}
}

// LookupSemiring resolves a registered semiring by name.  The empty name
// selects "natural".
func LookupSemiring(name string) (Semiring, error) {
	if name == "" {
		name = "natural"
	}
	registry.RLock()
	s, ok := registry.m[name]
	registry.RUnlock()
	if !ok {
		return nil, errorf(ErrUnknownSemiring, "", "unknown semiring %q (available: %v)", name, SemiringNames())
	}
	return s, nil
}

// SemiringNames lists the registered semirings in sorted order.
func SemiringNames() []string {
	registry.RLock()
	names := make([]string, 0, len(registry.m))
	for name := range registry.m {
		names = append(names, name)
	}
	registry.RUnlock()
	sort.Strings(names)
	return names
}

// The built-in carriers: counting, tropical shortest-path, boolean
// satisfiability, and why-provenance.  The provenance entry maps every
// non-zero weight to a fresh generator named after its tuple, so query
// values come back as provenance polynomials.
func init() {
	MustRegister(NewSemiring[int64]("natural", semiring.Nat,
		func(_ string, _ []int, v int64) int64 { return v }))
	MustRegister(NewSemiring[semiring.Ext]("minplus", semiring.MinPlus,
		func(_ string, _ []int, v int64) semiring.Ext { return semiring.Fin(v) }))
	MustRegister(NewSemiring[semiring.Ext]("maxplus", semiring.MaxPlus,
		func(_ string, _ []int, v int64) semiring.Ext { return semiring.Fin(v) }))
	MustRegister(NewSemiring[bool]("boolean", semiring.Bool,
		func(_ string, _ []int, v int64) bool { return v != 0 }))
	MustRegister(NewSemiring[*provenance.Poly]("provenance", provenance.Free,
		func(weight string, tuple []int, v int64) *provenance.Poly {
			if v == 0 {
				return provenance.NewPoly()
			}
			// Tuple.Key renders "0,1", keeping generator names identical to
			// the ones minted everywhere else in the codebase.
			return provenance.Var(provenance.Generator(weight + "(" + structure.Tuple(tuple).Key() + ")"))
		}))
}
