// Constant-delay enumeration (Theorem 24) through the repro/agg facade:
// preprocess a sparse database in linear time, stream the answers of a
// first-order query one by one, and maintain the answer count under
// Gaifman-preserving updates with a dynamic session.
//
//	go run ./examples/enumeration
package main

import (
	"context"
	"fmt"

	"repro/agg"
)

func main() {
	ctx := context.Background()
	eng, err := agg.OpenSource(agg.Source{Kind: "grid", N: 3600, Seed: 5})
	if err != nil {
		panic(err)
	}
	db := eng.Database()
	fmt.Printf("grid database: %d elements, %d tuples\n", db.Elements(), db.TupleCount())

	// ϕ(x,y,z) = E(x,y) ∧ E(y,z) ∧ x ≠ z: directed 2-paths with distinct
	// endpoints.  A formula prepares in formula mode: the linear-time
	// preprocessing is paid here, answers then stream with constant delay.
	p, err := eng.Prepare(ctx, "E(x,y) & E(y,z) & !(x = z)")
	if err != nil {
		panic(err)
	}
	total, err := p.AnswerCount(ctx)
	if err != nil {
		panic(err)
	}
	fmt.Printf("answers over %v: %d\n", p.AnswerVars(), total)

	fmt.Println("first 5 answers (streamed with constant delay):")
	var first agg.Answer
	printed := 0
	for ans, err := range p.Enumerate(ctx) {
		if err != nil {
			panic(err)
		}
		if first == nil {
			first = ans
		}
		fmt.Printf("  (%d, %d, %d)\n", ans[0], ans[1], ans[2])
		if printed++; printed == 5 {
			break
		}
	}

	// Updates go through a session on the counting form of the same query,
	// with E declared dynamic.  Deleting one edge of the first answer is a
	// Gaifman-preserving update maintained in constant time per affected
	// gate.
	counter, err := eng.Prepare(ctx, "sum x, y, z . [E(x,y) & E(y,z) & !(x = z)]",
		agg.WithDynamic("E"))
	if err != nil {
		panic(err)
	}
	s, err := counter.Session()
	if err != nil {
		panic(err)
	}
	defer s.Close()

	victim := []int{first[0], first[1]}
	if err := s.Set(agg.SetTuple("E", victim, false)); err != nil {
		panic(err)
	}
	after, err := s.Eval(ctx)
	if err != nil {
		panic(err)
	}
	fmt.Printf("\nafter deleting the edge (%d,%d): answers = %s\n", victim[0], victim[1], after)

	if err := s.Set(agg.SetTuple("E", victim, true)); err != nil {
		panic(err)
	}
	restored, err := s.Eval(ctx)
	if err != nil {
		panic(err)
	}
	fmt.Printf("after re-inserting it:          answers = %s\n", restored)
}
