package workload_test

import (
	"bytes"
	"context"
	"encoding/json"
	"reflect"
	"testing"

	"repro/agg"
	"repro/internal/structure"
	"repro/internal/workload"
)

// cdcMirror replays a change stream against an explicit state machine so
// tests can check every invariant the generator promises.
type cdcMirror struct {
	d       *workload.Database
	edges   []structure.Tuple
	edgeIdx map[string]int
	present []bool
	inS     []bool
	wVal    []int64
	uVal    []int64
}

func newCDCMirror(d *workload.Database) *cdcMirror {
	m := &cdcMirror{
		d:       d,
		edges:   d.A.Tuples("E"),
		edgeIdx: map[string]int{},
		inS:     make([]bool, d.A.N),
		uVal:    make([]int64, d.A.N),
	}
	m.present = make([]bool, len(m.edges))
	m.wVal = make([]int64, len(m.edges))
	for i, e := range m.edges {
		m.edgeIdx[e.Key()] = i
		m.present[i] = true
		m.wVal[i] = d.EdgeWeight[e.Key()]
	}
	for v := 0; v < d.A.N; v++ {
		m.inS[v] = d.A.HasTuple("S", v)
		m.uVal[v] = d.VertexWeight[v]
	}
	return m
}

// apply validates one change against the mirror state and folds it in.
func (m *cdcMirror) apply(t *testing.T, i int, c workload.Change) {
	t.Helper()
	ins := c.Present == nil || *c.Present
	switch {
	case c.Weight == "w":
		e, ok := m.edgeIdx[structure.Tuple(c.Tuple).Key()]
		if !ok || !m.present[e] {
			t.Fatalf("change %d: w update on absent edge %v", i, c.Tuple)
		}
		m.wVal[e] = c.Value
	case c.Weight == "u":
		m.uVal[c.Tuple[0]] = c.Value
	case c.Rel == "E":
		e, ok := m.edgeIdx[structure.Tuple(c.Tuple).Key()]
		if !ok {
			t.Fatalf("change %d: E change on non-original edge %v (Gaifman-unsafe)", i, c.Tuple)
		}
		if m.present[e] == ins {
			t.Fatalf("change %d: redundant E change %v (present=%v twice)", i, c.Tuple, ins)
		}
		m.present[e] = ins
	case c.Rel == "S":
		v := c.Tuple[0]
		if m.inS[v] == ins {
			t.Fatalf("change %d: redundant S change on %d", i, v)
		}
		m.inS[v] = ins
	default:
		t.Fatalf("change %d: unclassifiable change %+v", i, c)
	}
}

// TestChangeStreamMillionScale: a ≥10⁶-change CDC stream is exactly n
// changes long, deterministic, self-consistent (no redundant toggles, no
// weight updates on absent edges) and Gaifman-safe by construction (E
// changes only ever toggle original edges); the NDJSON encoding holds one
// valid /ingest line per change.
func TestChangeStreamMillionScale(t *testing.T) {
	if testing.Short() {
		t.Skip("million-change generation is skipped in -short mode")
	}
	d := workload.Grid(40, 40, 11)
	const n = 1_000_000

	m := newCDCMirror(d)
	count := 0
	for c := range workload.ChangeStream(d, n, 5) {
		m.apply(t, count, c)
		count++
	}
	if count != n {
		t.Fatalf("stream yielded %d changes, want %d", count, n)
	}

	// Determinism: a second run replays the identical prefix.
	var first, second []workload.Change
	for c := range workload.ChangeStream(d, 500, 5) {
		first = append(first, c)
	}
	for c := range workload.ChangeStream(d, 500, 5) {
		second = append(second, c)
	}
	if !reflect.DeepEqual(first, second) {
		t.Fatal("same (d, n, seed) produced different streams")
	}

	// NDJSON encoding: one line per change, each a valid /ingest line that
	// decodes back to the change it encodes (spot-checked).
	var buf bytes.Buffer
	if err := workload.WriteChanges(&buf, d, n, 5); err != nil {
		t.Fatal(err)
	}
	lines := bytes.Split(bytes.TrimRight(buf.Bytes(), "\n"), []byte("\n"))
	if len(lines) != n {
		t.Fatalf("WriteChanges emitted %d lines, want %d", len(lines), n)
	}
	i := 0
	for c := range workload.ChangeStream(d, n, 5) {
		if i%97 == 0 {
			var got workload.Change
			if err := json.Unmarshal(lines[i], &got); err != nil {
				t.Fatalf("line %d %q: %v", i, lines[i], err)
			}
			want := c
			want.Tuple = append([]int(nil), c.Tuple...)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("line %d decoded to %+v, want %+v", i, got, want)
			}
		}
		i++
	}
}

// TestChangeStreamAppliesCleanly: replaying a CDC stream through a real
// session succeeds change-by-change, and the final aggregate equals the
// value computed from scratch on the stream's end state — the generator's
// claim of being "suitable for POST /ingest" holds at the engine level.
func TestChangeStreamAppliesCleanly(t *testing.T) {
	ctx := context.Background()
	d := workload.Grid(12, 12, 3)
	const expr = "sum x, y . [E(x,y)] * w(x,y) + sum x . [S(x)] * u(x)"

	p, err := agg.Open(agg.FromStructure(d.A, d.Weights())).Prepare(ctx, expr, agg.WithDynamic("E", "S"))
	if err != nil {
		t.Fatal(err)
	}
	sess, err := p.Session()
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()

	m := newCDCMirror(d)
	var wave []agg.Change
	i := 0
	for c := range workload.ChangeStream(d, 3000, 9) {
		m.apply(t, i, c)
		i++
		wave = append(wave, agg.Change{
			Weight:  c.Weight,
			Rel:     c.Rel,
			Tuple:   c.Tuple,
			Value:   c.Value,
			Present: c.Present == nil || *c.Present,
		})
		if len(wave) == 256 {
			if err := sess.ApplyBatch(wave); err != nil {
				t.Fatalf("wave ending at change %d: %v", i, err)
			}
			wave = wave[:0]
		}
	}
	if err := sess.ApplyBatch(wave); err != nil {
		t.Fatal(err)
	}
	got, err := sess.Eval(ctx)
	if err != nil {
		t.Fatal(err)
	}

	// Oracle: evaluate the same query from scratch on the mirrored end
	// state.
	a2 := structure.NewStructure(workload.GraphSignature(), d.A.N)
	w2 := structure.NewWeights[int64]()
	for e, tup := range m.edges {
		if m.present[e] {
			a2.MustAddTuple("E", tup...)
			w2.Set("w", tup, m.wVal[e])
		}
	}
	for v := 0; v < d.A.N; v++ {
		if m.inS[v] {
			a2.MustAddTuple("S", v)
		}
		w2.Set("u", structure.Tuple{v}, m.uVal[v])
	}
	p2, err := agg.Open(agg.FromStructure(a2, w2)).Prepare(ctx, expr)
	if err != nil {
		t.Fatal(err)
	}
	sess2, err := p2.Session()
	if err != nil {
		t.Fatal(err)
	}
	defer sess2.Close()
	want, err := sess2.Eval(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("session value after replay = %s, oracle on end state = %s", got, want)
	}
}
