package agg

import (
	"context"
	"errors"
	"sync"

	"repro/internal/circuit"
	"repro/internal/compile"
	"repro/internal/dynamicq"
	"repro/internal/enumerate"
	"repro/internal/expr"
	"repro/internal/logic"
	"repro/internal/obs"
	"repro/internal/parser"
)

// Prepared is a compiled query bound to one engine and one semiring: the
// facade's analogue of a prepared statement.  A Prepared wraps one frozen
// circuit program shared by every evaluation, session and enumeration drawn
// from it, and is safe for concurrent use.
//
// A Prepared is in one of two modes, decided by what the query text parses
// as:
//
//   - expression mode (a weighted expression): Eval computes the circuit
//     value — closed queries take no arguments, queries with free variables
//     take one element per free variable (a point query, Theorem 8) — and
//     Session opens dynamic-update state.  Enumerate fails with
//     ErrNotEnumerable.
//   - formula mode (a first-order formula): Enumerate streams the answer
//     set with constant delay and AnswerCount counts it (Theorem 24);
//     Eval(args...) decides membership of one answer tuple, and Session
//     tracks membership under updates.
type Prepared struct {
	eng       *Engine
	text      string
	canonical string
	cfg       config
	sem       Semiring

	// Formula mode: phi and the answer variables; nil phi means expression
	// mode.
	phi  logic.Formula
	vars []string

	// Expression backend: the Theorem 8 compilation, converted weights and
	// the lazily built implicit point-query session.  In formula mode the
	// backend itself is built lazily from Guard(phi).
	evalMu   sync.Mutex
	ex       expr.Expr
	sh       *dynamicq.Shared
	cw       any
	implicit erasedSession

	// Enumeration backend (formula and boolean nested mode): built eagerly
	// at Prepare, shared by all cursors and by every Workers rebind (it
	// never receives updates).
	enum *enumState

	// Nested mode (WithNested): the resolved FOG[C] formula and its
	// multi-semiring database view; nil otherwise.
	nst *nestedState

	// tr is the stage tracer captured from the Prepare context (nil when the
	// caller attached none); sessions spawned from this Prepared report their
	// propagation-wave timings into it, and context-free entry points fall
	// back to it.  All obs methods are nil-safe, so no call site guards it.
	tr *obs.Tracer
}

// enumState is the shared enumeration backend of a formula-mode query: the
// constant-delay enumerator plus the memoised answer total (the enumerator
// is static, so the total is a constant computed at most once).
type enumState struct {
	ans       *enumerate.Answers
	countOnce sync.Once
	count     int64
}

// Prepare parses and compiles a query over the engine's database.  The query
// is either a weighted expression ("sum x, y . [E(x,y)] * w(x,y)") or a
// first-order formula ("E(x,y) & S(x)"); see Prepared for how the two modes
// behave.  Compilation — the expensive, linear-time preprocessing of the
// paper — happens here, once; the context bounds it and cancels the
// parallel preprocessing waves.
func (e *Engine) Prepare(ctx context.Context, query string, opts ...Option) (*Prepared, error) {
	ctx = ensureCtx(ctx)
	cfg := config{semiring: "natural"}
	for _, opt := range opts {
		opt(&cfg)
	}
	sem, err := LookupSemiring(cfg.semiring)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	tr := obs.FromContext(ctx)
	p := &Prepared{eng: e, text: query, cfg: cfg, sem: sem, tr: tr}

	// Nested mode: the formula is the WithNested tree, not the query text.
	if cfg.nested != nil {
		return e.prepareNested(ctx, p)
	}

	// Decide the mode.  WithAnswerVars forces formula mode; otherwise a
	// query that parses and validates as a weighted expression is one, and
	// anything else is tried as a formula.
	parseSpan := tr.StartSpan(obs.StageParse)
	var ex expr.Expr
	var exprParseErr, exprValidateErr error
	if len(cfg.answerVars) == 0 {
		ex, exprParseErr = parser.ParseExpr(query)
		if exprParseErr == nil {
			if verr := expr.Validate(ex, e.db.a.Sig); verr != nil {
				ex, exprValidateErr = nil, verr
			}
		}
	}

	if ex != nil {
		parseSpan.End()
		p.ex = ex
		if err := p.compileEval(ctx); err != nil {
			return nil, err
		}
		p.canonical = parser.FormatExpr(ex)
		return p, nil
	}

	phi, ferr := parser.ParseFormula(query)
	parseSpan.End()
	if ferr != nil {
		if len(cfg.answerVars) > 0 {
			return nil, newError(ErrParse, query, ferr)
		}
		if exprValidateErr != nil {
			// The expression parsed but failed signature validation, and the
			// formula parse failed outright: the validation error is the
			// story.
			return nil, newError(ErrCompile, query, exprValidateErr)
		}
		// Neither shape parsed; report whichever diagnosis got further.
		return nil, newError(ErrParse, query, betterParseError(exprParseErr, ferr))
	}
	p.phi = phi
	p.vars = cfg.answerVars
	if len(p.vars) == 0 {
		p.vars = logic.FreeVars(phi)
	}
	if len(p.vars) == 0 {
		return nil, errorf(ErrArgument, query, "formula has no free variables to enumerate over; evaluate it as the expression [%s] instead", query)
	}
	compileSpan := tr.StartSpan(obs.StageCompile)
	ans, err := enumerate.EnumerateAnswersCtx(ctx, e.db.a, phi, p.vars, p.compileOptions(), cfg.workers)
	if err != nil {
		if ctxErr(err) != nil {
			return nil, err
		}
		return nil, newError(ErrCompile, query, err)
	}
	compileSpan.End()
	tr.Observe(obs.StageFreeze, ans.Result().Program.FreezeDuration())
	p.enum = &enumState{ans: ans}
	p.canonical = parser.FormatFormula(phi)
	return p, nil
}

// betterParseError picks, of two parse failures for the same input, the one
// whose parser got further before failing.
func betterParseError(exprErr, formulaErr error) error {
	var ep, fp *parser.Error
	eOK := errors.As(exprErr, &ep)
	fOK := errors.As(formulaErr, &fp)
	switch {
	case eOK && fOK:
		if fp.Pos > ep.Pos {
			return formulaErr
		}
		return exprErr
	case fOK:
		return formulaErr
	default:
		return exprErr
	}
}

// ctxErr returns err when it is a context cancellation error, nil otherwise.
func ctxErr(err error) error {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	return nil
}

func (p *Prepared) compileOptions() compile.Options {
	return compile.Options{DynamicRelations: p.cfg.dynamic, MaxVars: p.cfg.maxVars}
}

// compileEval builds the expression backend; the caller must not hold
// p.evalMu (Prepare) or must hold it (lazy path) — it locks internally only
// through evalBackend.
func (p *Prepared) compileEval(ctx context.Context) error {
	tr := obs.FromContext(ctx)
	compileSpan := tr.StartSpan(obs.StageCompile)
	sh, err := dynamicq.CompileShared(p.eng.db.a, p.ex, p.compileOptions())
	if err != nil {
		if cerr := ctxErr(err); cerr != nil {
			return cerr
		}
		return newError(ErrCompile, p.text, err)
	}
	compileSpan.End()
	tr.Observe(obs.StageFreeze, sh.Result().Program.FreezeDuration())
	if err := ctx.Err(); err != nil {
		return err
	}
	p.sh = sh
	p.cw = p.sem.convert(p.eng.db.w)
	return nil
}

// evalBackend returns the (lazily built) expression backend.
func (p *Prepared) evalBackend(ctx context.Context) (*dynamicq.Shared, any, error) {
	p.evalMu.Lock()
	defer p.evalMu.Unlock()
	if p.sh == nil {
		// Formula mode: compile the membership query [phi] on demand.
		p.ex = expr.Guard(p.phi)
		if err := p.compileEval(ctx); err != nil {
			p.ex = nil
			return nil, nil, err
		}
	}
	if p.cw == nil {
		p.cw = p.sem.convert(p.eng.db.w)
	}
	return p.sh, p.cw, nil
}

// workers resolves the configured worker-pool size (0 = GOMAXPROCS).
func (p *Prepared) workers() int { return p.cfg.workers }

// Query returns the original query text.
func (p *Prepared) Query() string { return p.text }

// Canonical returns the canonical printed form of the query (the circuit
// cache key used by aggserve).
func (p *Prepared) Canonical() string { return p.canonical }

// SemiringName returns the name of the semiring the query evaluates in.
func (p *Prepared) SemiringName() string { return p.sem.Name() }

// Enumerable reports whether Enumerate and AnswerCount are available: the
// query was prepared in formula mode, or as a boolean nested formula with
// free variables.
func (p *Prepared) Enumerable() bool { return p.enum != nil }

// FreeVars returns the query's free variables: the point-query parameters of
// an expression or nested formula, or the answer variables of a formula.
func (p *Prepared) FreeVars() []string {
	switch {
	case p.nst != nil:
		return append([]string(nil), p.nst.vars...)
	case p.phi != nil:
		return append([]string(nil), p.vars...)
	}
	return p.sh.FreeVars()
}

// CircuitStats summarises the frozen circuit program behind a Prepared.
type CircuitStats struct {
	Gates       int
	Edges       int
	Depth       int
	PermGates   int
	MaxPermRows int
	Inputs      int
}

// result returns the compilation backing this Prepared: the enumeration
// compilation in formula (or boolean nested) mode, the expression
// compilation otherwise, or nil for a nested query whose stages are compiled
// per evaluation.
func (p *Prepared) result() *compile.Result {
	if p.enum != nil {
		return p.enum.ans.Result()
	}
	if p.sh != nil {
		return p.sh.Result()
	}
	return nil
}

// Stats returns the structural statistics of the frozen circuit program,
// computed from its CSR arrays (zero for nested queries without enumeration
// state, whose stages are compiled per evaluation).
func (p *Prepared) Stats() CircuitStats {
	res := p.result()
	if res == nil {
		return CircuitStats{}
	}
	prog := res.Program
	st := CircuitStats{
		Gates:  prog.NumGates(),
		Depth:  prog.Depth(),
		Inputs: prog.NumInputs(),
	}
	for id := 0; id < prog.NumGates(); id++ {
		st.Edges += len(prog.ChildIDs(id))
		if prog.GateKind(id) == circuit.KindPerm {
			st.PermGates++
			if rows, _ := prog.PermShape(id); rows > st.MaxPermRows {
				st.MaxPermRows = rows
			}
		}
	}
	return st
}

// Footprint returns the resident size in bytes of the frozen circuit
// program — the artefact all evaluations, sessions and enumerations of this
// Prepared share (zero for nested queries without enumeration state).
func (p *Prepared) Footprint() int64 {
	res := p.result()
	if res == nil {
		return 0
	}
	return res.Program.Footprint()
}

// In returns a Prepared over the same compilation bound to another
// registered semiring: the circuit is shared, only the weight embedding and
// session state differ, so rebinding costs one weight conversion instead of
// a recompilation.
func (p *Prepared) In(name string) (*Prepared, error) {
	if p.nst != nil {
		return nil, errorf(ErrArgument, p.text, "nested queries fix their carriers at Prepare; prepare again with WithSemiring(%q)", name)
	}
	sem, err := LookupSemiring(name)
	if err != nil {
		return nil, err
	}
	clone := &Prepared{
		eng:       p.eng,
		text:      p.text,
		canonical: p.canonical,
		cfg:       p.cfg,
		sem:       sem,
		phi:       p.phi,
		vars:      p.vars,
		enum:      p.enum,
		tr:        p.tr,
	}
	clone.cfg.semiring = name
	p.evalMu.Lock()
	clone.ex, clone.sh = p.ex, p.sh
	p.evalMu.Unlock()
	// cw is rebuilt lazily in the new carrier.
	return clone, nil
}

// Workers returns a view of this Prepared whose evaluations spread circuit
// levels over an n-goroutine pool (≤ 0 selects GOMAXPROCS).  The
// compilation, enumeration state and converted weights are shared with the
// receiver; only the pool size differs.
func (p *Prepared) Workers(n int) *Prepared {
	if n == p.cfg.workers {
		return p
	}
	clone := &Prepared{
		eng:       p.eng,
		text:      p.text,
		canonical: p.canonical,
		cfg:       p.cfg,
		sem:       p.sem,
		phi:       p.phi,
		vars:      p.vars,
		enum:      p.enum,
		nst:       p.nst,
		tr:        p.tr,
	}
	clone.cfg.workers = n
	p.evalMu.Lock()
	clone.ex, clone.sh, clone.cw = p.ex, p.sh, p.cw
	p.evalMu.Unlock()
	return clone
}

// Eval evaluates the prepared query under the context.  A closed query takes
// no arguments and runs the level-parallel engine over the shared circuit; a
// query with k free variables takes exactly k elements and answers the point
// query f(args) in logarithmic time through the Prepared's internal session.
// Cancelling the context stops a running parallel evaluation in bounded
// time.
func (p *Prepared) Eval(ctx context.Context, args ...int) (Value, error) {
	ctx = ensureCtx(ctx)
	if p.nst != nil {
		return p.nst.eval(ctx, p, args...)
	}
	sh, cw, err := p.evalBackend(ctx)
	if err != nil {
		return "", err
	}
	tr := obs.FromContext(ctx)
	if len(args) == 0 {
		if free := sh.FreeVars(); len(free) > 0 {
			return "", errorf(ErrArgument, p.text, "query has free variables %v; pass one argument per variable", free)
		}
		evalSpan := tr.StartSpan(obs.StageEval)
		out, err := p.sem.evaluate(ctx, sh.Result(), cw, p.workers())
		if err != nil {
			return "", err
		}
		evalSpan.End()
		return Value(out), nil
	}
	if err := ctx.Err(); err != nil {
		return "", err
	}
	p.evalMu.Lock()
	defer p.evalMu.Unlock()
	if p.implicit == nil {
		p.implicit = p.sem.newSession(sh, p.eng.db.w, p.tr)
	}
	evalSpan := tr.StartSpan(obs.StageEval)
	out, err := p.implicit.Point(args)
	if err != nil {
		return "", newError(ErrArgument, p.text, err)
	}
	evalSpan.End()
	return Value(out), nil
}

// Session opens a dynamic-update session on the shared compilation: point
// queries plus weight and tuple updates with logarithmic cost (Theorem 8).
// Each call returns independent session state; the expensive compilation is
// shared.  Updates fail fast with ErrSessionBusy when they race each other,
// but reads never do: Eval falls back to an epoch snapshot under a
// concurrent writer, and Session.Snapshot pins a Reader for sustained
// concurrent reading (see the Session and Reader docs for the full
// concurrency contract).
//
// For enumerable queries with dynamic relations the session also carries a
// private copy of the enumeration structure, kept in lockstep with tuple
// updates, so Readers can enumerate the answer set at their pinned epoch.
func (p *Prepared) Session() (*Session, error) {
	if p.nst != nil {
		return &Session{p: p, sess: p.nst.newSession(p)}, nil
	}
	sh, _, err := p.evalBackend(context.Background())
	if err != nil {
		return nil, err
	}
	s := &Session{p: p, sess: p.sem.newSession(sh, p.eng.db.w, p.tr)}
	if p.enum != nil && len(p.cfg.dynamic) > 0 {
		s.ans = p.enum.ans.Clone()
	}
	return s, nil
}
