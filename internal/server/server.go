// Package server implements aggserve, the long-lived query-serving
// subsystem: databases are loaded once at startup, queries are prepared on
// demand through the public repro/agg facade and kept in an LRU cache of
// compiled circuits, and many concurrent clients then share each
// compilation — linear-time semiring evaluation over the level-parallel
// engine (/query), logarithmic-time point queries and weight/tuple updates
// on named dynamic sessions (/point, /update, Theorem 8), and constant-delay
// enumeration streamed as NDJSON (/enumerate, Theorem 24).
//
// The cache is keyed by (database, canonical query, semiring, options), so
// repeated queries skip compilation entirely; concurrent cold requests for
// the same key share a single compile.  Request contexts are honoured end to
// end: a client that disconnects mid-evaluation or mid-stream stops the
// work it was waiting for.
package server

import (
	"context"
	"fmt"
	"io"
	"iter"
	"log/slog"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/agg"
	"repro/internal/obs"
)

// Options configures a Server.
type Options struct {
	// CacheSize bounds the number of cached compiled queries (≤ 0 selects
	// the default of 128).
	CacheSize int
	// Workers is the default worker-pool size per circuit evaluation and
	// enumeration preprocessing pass (≤ 0 selects GOMAXPROCS).
	Workers int
	// MaxVars is forwarded to the compiler (0 keeps the compiler default).
	MaxVars int
	// Logger receives the server's structured logs: access logs at Debug,
	// slow queries at Warn, lifecycle events at Info.  Nil discards them.
	Logger *slog.Logger
	// SlowQuery is the threshold above which a completed request is logged
	// at Warn with its full annotations; 0 disables the slow-query log.
	SlowQuery time.Duration
}

// endpoints names every serving route with its own request-latency
// histogram, in the order /metrics emits them.
var endpoints = []string{"query", "session", "point", "update", "batch", "enumerate", "subscribe", "ingest", "analyze", "stats"}

// Server serves compiled queries over one or more mounted databases.  All
// methods and the HTTP handler are safe for concurrent use.
type Server struct {
	opts  Options
	cache *lruCache
	stats Stats
	start time.Time

	// tr records the pipeline stage timings (parse, cache lookup, compile,
	// freeze, eval, update waves) of every request served; reqHist holds one
	// end-to-end latency histogram per endpoint.  Both are exposition state
	// for GET /metrics.
	tr      *obs.Tracer
	reqHist map[string]*obs.Histogram
	// pushHist records commit-to-client push latency on /subscribe streams.
	pushHist *obs.Histogram

	log   *slog.Logger
	reqID atomic.Int64

	mu       sync.RWMutex
	dbs      map[string]*agg.Engine
	sessions map[string]*SessionHandle
}

// New creates a server with no databases mounted.
func New(opts Options) *Server {
	log := opts.Logger
	if log == nil {
		log = slog.New(slog.DiscardHandler)
	}
	reqHist := make(map[string]*obs.Histogram, len(endpoints))
	for _, ep := range endpoints {
		reqHist[ep] = obs.NewHistogram()
	}
	return &Server{
		opts:     opts,
		cache:    newLRUCache(opts.CacheSize),
		start:    time.Now(),
		tr:       obs.NewTracer(),
		reqHist:  reqHist,
		pushHist: obs.NewHistogram(),
		log:      log,
		dbs:      map[string]*agg.Engine{},
		sessions: map[string]*SessionHandle{},
	}
}

// Tracer exposes the server's stage tracer (for tests and benchmarks).
func (s *Server) Tracer() *obs.Tracer { return s.tr }

// Stats exposes the server's counters (primarily for tests and benchmarks;
// HTTP clients use GET /stats).
func (s *Server) Stats() *Stats { return &s.stats }

// MountDatabase parses a database from r in the dbio text format and mounts
// it under the given name.
func (s *Server) MountDatabase(name string, r io.Reader) error {
	db, err := agg.ReadDatabase(r)
	if err != nil {
		return err
	}
	s.MountDatabaseValue(name, db)
	return nil
}

// MountDatabaseValue mounts an already-loaded database.  Remounting an
// existing name replaces it for new compilations; cached circuits and live
// sessions keep serving the snapshot they were compiled against.
func (s *Server) MountDatabaseValue(name string, db *agg.Database) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.dbs[name] = agg.Open(db)
}

// engine resolves a database by name; an empty name selects "default" or,
// failing that, the only mounted database.
func (s *Server) engine(name string) (string, *agg.Engine, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if name == "" {
		if eng, ok := s.dbs["default"]; ok {
			return "default", eng, nil
		}
		if len(s.dbs) == 1 {
			for n, eng := range s.dbs {
				return n, eng, nil
			}
		}
		return "", nil, fmt.Errorf("no database named in the request and no unambiguous default among %v: %w", s.databaseNames(), agg.ErrUnknownDatabase)
	}
	if eng, ok := s.dbs[name]; ok {
		return name, eng, nil
	}
	return "", nil, fmt.Errorf("unknown database %q (mounted: %v): %w", name, s.databaseNames(), agg.ErrUnknownDatabase)
}

// databaseNames must be called with s.mu held.
func (s *Server) databaseNames() []string {
	names := make([]string, 0, len(s.dbs))
	for n := range s.dbs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// optionsKey canonically encodes the compile options that are part of the
// cache key.
func (s *Server) optionsKey(dynamic []string) string {
	dyn := append([]string(nil), dynamic...)
	sort.Strings(dyn)
	return fmt.Sprintf("dyn=%s;maxvars=%d", strings.Join(dyn, ","), s.opts.MaxVars)
}

// prepareOptions assembles the facade options shared by every compilation.
func (s *Server) prepareOptions(semName string, dynamic []string) []agg.Option {
	return []agg.Option{
		agg.WithSemiring(semName),
		agg.WithDynamic(dynamic...),
		agg.WithWorkers(s.opts.Workers),
		agg.WithMaxVars(s.opts.MaxVars),
	}
}

// compiled resolves (database, expression, semiring, options) through the
// LRU cache, preparing at most once per key.  The bool reports a cache hit.
// Compilation runs under the background context: it is a shared artefact
// that outlives the request that happened to trigger it.
func (s *Server) compiled(dbName, exprText, semName string, dynamic []string) (*agg.Prepared, bool, error) {
	dbName, eng, err := s.engine(dbName)
	if err != nil {
		return nil, false, err
	}
	if strings.TrimSpace(exprText) == "" {
		return nil, false, fmt.Errorf("missing expression: %w", agg.ErrArgument)
	}
	canonical, err := agg.Canonicalize(exprText)
	if err != nil {
		return nil, false, err
	}
	if semName == "" {
		semName = "natural"
	}
	key := strings.Join([]string{"query", dbName, canonical, semName, s.optionsKey(dynamic)}, "\x00")

	lookupStart := time.Now()
	v, hit, err := s.cache.getOrCreate(key, func() (any, error) {
		s.stats.Compiles.Add(1)
		var p *agg.Prepared
		var cerr error
		timed(&s.stats.CompileNanos, func() {
			// Background context: the compilation is a shared artefact that
			// outlives the triggering request.  The server tracer rides along
			// so parse/compile/freeze stages and later session waves record.
			p, cerr = eng.Prepare(obs.NewContext(context.Background(), s.tr), exprText, s.prepareOptions(semName, dynamic)...)
		})
		if cerr != nil {
			return nil, cerr
		}
		return p, nil
	})
	if err != nil {
		return nil, false, err
	}
	if hit {
		s.stats.CacheHits.Add(1)
		s.tr.Observe(obs.StageCacheLookup, time.Since(lookupStart))
	} else {
		s.stats.CacheMisses.Add(1)
	}
	return v.(*agg.Prepared), hit, nil
}

// compiledEnumerator resolves (database, formula, vars) through the cache to
// a formula-mode Prepared whose enumeration preprocessing has been paid.
func (s *Server) compiledEnumerator(dbName, phiText string, vars []string) (*agg.Prepared, bool, error) {
	dbName, eng, err := s.engine(dbName)
	if err != nil {
		return nil, false, err
	}
	if strings.TrimSpace(phiText) == "" {
		return nil, false, fmt.Errorf("missing formula: %w", agg.ErrArgument)
	}
	if len(vars) == 0 {
		return nil, false, fmt.Errorf("missing answer variables: %w", agg.ErrArgument)
	}
	canonical, err := agg.CanonicalizeFormula(phiText)
	if err != nil {
		return nil, false, err
	}
	key := strings.Join([]string{"enum", dbName, canonical, strings.Join(vars, ","), s.optionsKey(nil)}, "\x00")

	lookupStart := time.Now()
	v, hit, err := s.cache.getOrCreate(key, func() (any, error) {
		s.stats.Compiles.Add(1)
		var p *agg.Prepared
		var cerr error
		timed(&s.stats.CompileNanos, func() {
			p, cerr = eng.Prepare(obs.NewContext(context.Background(), s.tr), phiText,
				agg.WithAnswerVars(vars...),
				agg.WithWorkers(s.opts.Workers),
				agg.WithMaxVars(s.opts.MaxVars))
		})
		if cerr != nil {
			return nil, cerr
		}
		return p, nil
	})
	if err != nil {
		return nil, false, err
	}
	if hit {
		s.stats.CacheHits.Add(1)
		s.tr.Observe(obs.StageCacheLookup, time.Since(lookupStart))
	} else {
		s.stats.CacheMisses.Add(1)
	}
	return v.(*agg.Prepared), hit, nil
}

// SessionHandle is a named dynamic-update session registered with the
// server.  The handle serialises *updates* with its own lock, so update
// batches on one session queue while distinct sessions proceed in parallel
// and the underlying agg.Session never reports a writer–writer conflict
// through this path.  Point queries take no lock at all: agg.Session.Eval
// reads through an MVCC snapshot of the last committed epoch, so /point
// keeps answering — without queueing and without 409s — while a /batch is
// mid-flight on the same session.
type SessionHandle struct {
	name     string
	db       string
	expr     string
	semiring string

	mu   sync.Mutex
	sess *agg.Session
}

// Name returns the session's registered name.
func (h *SessionHandle) Name() string { return h.name }

// Database returns the name of the database the session was compiled over.
func (h *SessionHandle) Database() string { return h.db }

// Query returns the session's query text.
func (h *SessionHandle) Query() string { return h.expr }

// Semiring returns the name of the session's semiring.
func (h *SessionHandle) Semiring() string { return h.semiring }

// FreeVars returns the free variables of the session's query.
func (h *SessionHandle) FreeVars() []string { return h.sess.FreeVars() }

// Eval reads the session's query value at a tuple of its free variables (no
// arguments for a closed query).  It does not take the handle's update lock:
// the read pins a snapshot of the last committed epoch, so it proceeds
// concurrently with updates on the same session.
func (h *SessionHandle) Eval(ctx context.Context, args ...int) (agg.Value, error) {
	return h.sess.Eval(ctx, args...)
}

// Epoch reports the number of updates committed on the session so far.
func (h *SessionHandle) Epoch() uint64 { return h.sess.Epoch() }

// RetainedUndoBytes reports the undo-history memory currently pinned by
// open snapshot readers of the session.
func (h *SessionHandle) RetainedUndoBytes() int64 { return h.sess.RetainedUndoBytes() }

// Set applies one update, queueing behind other operations.
func (h *SessionHandle) Set(change agg.Change) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sess.Set(change)
}

// SetAll applies the changes one at a time under a single hold of the
// handle, stopping at the first failure (unlike ApplyBatch it is not
// all-or-nothing).  Holding the lock across the loop keeps the whole batch
// serialised against concurrent points and updates on the same session, so
// no other request observes a half-applied prefix.
func (h *SessionHandle) SetAll(changes []agg.Change) (applied int, err error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for i, ch := range changes {
		if err := h.sess.Set(ch); err != nil {
			return applied, fmt.Errorf("update %d: %w (%d of %d applied)", i, err, applied, len(changes))
		}
		applied++
	}
	return applied, nil
}

// ApplyBatch applies a batch atomically, queueing behind other operations.
func (h *SessionHandle) ApplyBatch(changes []agg.Change) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sess.ApplyBatch(changes)
}

// Subscribe streams live re-evaluations of the session's query; it takes no
// handle lock — each pushed update reads through an MVCC snapshot of the
// committed epoch, like Eval, so subscriptions never slow down writers.
func (h *SessionHandle) Subscribe(ctx context.Context, opts ...agg.SubscribeOption) iter.Seq2[agg.Update, error] {
	return h.sess.Subscribe(ctx, opts...)
}

// CreateSession compiles (through the cache) and registers a named session.
func (s *Server) CreateSession(name, dbName, exprText, semName string, dynamic []string) (*SessionHandle, bool, error) {
	if name == "" {
		return nil, false, fmt.Errorf("missing session name: %w", agg.ErrArgument)
	}
	p, hit, err := s.compiled(dbName, exprText, semName, dynamic)
	if err != nil {
		return nil, hit, err
	}
	sess, err := p.Session()
	if err != nil {
		return nil, hit, err
	}
	h := &SessionHandle{name: name, db: dbName, expr: exprText, semiring: p.SemiringName(), sess: sess}

	s.mu.Lock()
	defer s.mu.Unlock()
	if _, exists := s.sessions[name]; exists {
		return nil, hit, fmt.Errorf("session %q: %w", name, agg.ErrSessionExists)
	}
	s.sessions[name] = h
	s.stats.Sessions.Add(1)
	return h, hit, nil
}

// DeleteSession unregisters a named session, releasing its evaluator state.
// In-flight requests holding the handle finish normally; later requests see
// an unknown session.
func (s *Server) DeleteSession(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.sessions[name]; !ok {
		return fmt.Errorf("session %q: %w", name, agg.ErrUnknownSession)
	}
	delete(s.sessions, name)
	return nil
}

// Session resolves a registered session handle by name.
func (s *Server) Session(name string) (*SessionHandle, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if h, ok := s.sessions[name]; ok {
		return h, nil
	}
	return nil, fmt.Errorf("session %q: %w", name, agg.ErrUnknownSession)
}

// sessionGauge is one row of the per-session MVCC gauges exported on /stats
// and /metrics: the session's committed epoch and the undo-history bytes its
// open snapshot readers currently retain.
type sessionGauge struct {
	name     string
	epoch    uint64
	retained int64
}

// sessionGauges samples every registered session, sorted by name for stable
// exposition.  The registry lock is dropped before the sessions are probed:
// Epoch and RetainedUndoBytes only touch per-session state.
func (s *Server) sessionGauges() []sessionGauge {
	s.mu.RLock()
	hs := make([]*SessionHandle, 0, len(s.sessions))
	for _, h := range s.sessions {
		hs = append(hs, h)
	}
	s.mu.RUnlock()
	out := make([]sessionGauge, len(hs))
	for i, h := range hs {
		out[i] = sessionGauge{name: h.name, epoch: h.Epoch(), retained: h.RetainedUndoBytes()}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// workers resolves a per-request worker count against the server default.
func (s *Server) workers(requested int) int {
	if requested > 0 {
		return requested
	}
	return s.opts.Workers
}
