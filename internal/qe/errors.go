package qe

// Error is the typed failure of an elimination run.  Every rejection of a
// formula by the guarded-existential fragment is reported through this type,
// so callers (in particular the repro/agg facade, which folds these into its
// ErrCompile taxonomy with position metadata) can branch on structured
// fields instead of message substrings.
type Error struct {
	// Var is the quantified variable whose elimination failed ("" when the
	// failure is not tied to one quantifier).
	Var string
	// Formula is the printed subformula the failure refers to ("" when not
	// applicable).
	Formula string
	// Detail is the human-readable reason.
	Detail string
	// Err is the underlying cause (may be nil).
	Err error
}

func (e *Error) Error() string {
	msg := "qe: " + e.Detail
	if e.Err != nil {
		msg += ": " + e.Err.Error()
	}
	return msg
}

// Unwrap exposes the underlying cause.
func (e *Error) Unwrap() error { return e.Err }

// failf builds a fragment-rejection error for the quantifier on v over the
// printed subformula.
func failf(v, formula, detail string) *Error {
	return &Error{Var: v, Formula: formula, Detail: detail}
}
