// Textual queries on a database file: generate a sparse database, store it
// in the dbio text format, read it back through the repro/agg facade, and
// evaluate queries written in the surface syntax — the same pipeline the
// cmd/agggen and cmd/aggquery tools expose, driven as a library.
//
// The example also registers two "exotic" carriers with the public semiring
// registry: the counting tropical semiring (cheapest answer and how many
// answers attain it) and the k-best semiring (the costs of the k cheapest
// answers).  Once registered they are selectable with agg.WithSemiring and
// would equally be available to every aggserve endpoint.
//
//	go run ./examples/textquery
package main

import (
	"context"
	"fmt"
	"os"
	"path/filepath"

	"repro/agg"
	"repro/internal/semiring"
)

func main() {
	ctx := context.Background()

	// Exotic carriers become first-class citizens through the registry: the
	// Arithmetic contract plus an embedding of the serialised weights.
	k3 := semiring.NewKBest(3)
	if err := agg.Register(agg.NewSemiring[semiring.CostCount]("counting-tropical", semiring.CountingTropical,
		func(_ string, _ []int, v int64) semiring.CostCount { return semiring.CC(v, 1) })); err != nil {
		panic(err)
	}
	if err := agg.Register(agg.NewSemiring[[]int64]("3-best", k3,
		func(_ string, _ []int, v int64) []int64 { return k3.Costs(v) })); err != nil {
		panic(err)
	}

	// 1. Generate and persist a database.
	db, err := agg.Load(agg.Source{Kind: "grid", N: 3600, Seed: 9})
	if err != nil {
		panic(err)
	}
	path := filepath.Join(os.TempDir(), "textquery-grid.db")
	f, err := os.Create(path)
	if err != nil {
		panic(err)
	}
	if err := db.Write(f); err != nil {
		panic(err)
	}
	f.Close()
	fmt.Printf("wrote %s (%d vertices, %d tuples)\n", path, db.Elements(), db.TupleCount())

	// 2. Read it back and open an engine over it.
	eng, err := agg.OpenFile(path)
	if err != nil {
		panic(err)
	}

	// 3. Prepare queries from text and evaluate each compilation in three
	// carriers.
	queries := map[string]string{
		"weighted triangles": "sum x, y, z . [E(x,y) & E(y,z) & E(z,x)] * w(x,y) * w(y,z) * w(z,x)",
		"marked out-degree":  "sum x, y . [E(x,y) & S(x)] * u(y)",
		"non-edges of marks": "sum x, y . [S(x) & S(y) & x != y & !E(x,y)]",
	}

	for name, src := range queries {
		p, err := eng.Prepare(ctx, src)
		if err != nil {
			panic(err)
		}
		nat, err := p.Eval(ctx)
		if err != nil {
			panic(err)
		}
		cc, err := p.In("counting-tropical")
		if err != nil {
			panic(err)
		}
		ccVal, err := cc.Eval(ctx)
		if err != nil {
			panic(err)
		}
		best, err := p.In("3-best")
		if err != nil {
			panic(err)
		}
		bestVal, err := best.Eval(ctx)
		if err != nil {
			panic(err)
		}

		fmt.Printf("\nquery %q\n  %s\n", name, p.Canonical())
		fmt.Printf("  value in (N,+,·):          %s\n", nat)
		fmt.Printf("  cheapest answer (min,+):   %s\n", ccVal)
		fmt.Printf("  3 cheapest answer costs:   %s\n", bestVal)
	}
}
