package agg

import (
	"context"
	"sync"

	"repro/internal/obs"
)

// Session is a dynamic-update handle on a prepared query (Theorem 8): the
// query value can be read at any point of its free variables, and both
// weights and the tuples of relations declared with WithDynamic can be
// updated, with logarithmic cost per update.
//
// A Session serialises its operations and fails fast: an operation attempted
// while another one holds the session returns ErrSessionBusy instead of
// queueing (frontends that want queueing, like aggserve, wrap sessions in
// their own lock).  After Close every operation returns ErrSessionClosed.
type Session struct {
	p    *Prepared
	mu   sync.Mutex
	once sync.Once

	closed bool
	sess   erasedSession
}

// Change is one update of a Session: a weight update (Weight non-empty:
// Weight(Tuple) takes Value) or a dynamic-relation update (Rel non-empty:
// membership of Tuple becomes Present).  Exactly one of Weight and Rel must
// be set.
type Change struct {
	Weight  string
	Rel     string
	Tuple   []int
	Value   int64
	Present bool
}

// SetWeight builds a weight update.
func SetWeight(weight string, tuple []int, value int64) Change {
	return Change{Weight: weight, Tuple: tuple, Value: value}
}

// SetTuple builds a dynamic-relation membership update.
func SetTuple(rel string, tuple []int, present bool) Change {
	return Change{Rel: rel, Tuple: tuple, Present: present}
}

// acquire takes the session for one operation, failing fast when it is busy
// or closed.  The caller must release() on success.
func (s *Session) acquire() error {
	if !s.mu.TryLock() {
		return errorf(ErrSessionBusy, s.p.text, "session is processing another operation")
	}
	if s.closed {
		s.mu.Unlock()
		return errorf(ErrSessionClosed, s.p.text, "session was closed")
	}
	return nil
}

func (s *Session) release() { s.mu.Unlock() }

// FreeVars returns the free variables of the underlying query, in the order
// Eval expects its arguments.
func (s *Session) FreeVars() []string { return s.p.FreeVars() }

// Eval reads the query value under the updates applied so far: no arguments
// for a closed query, one element per free variable for a point query.
func (s *Session) Eval(ctx context.Context, args ...int) (Value, error) {
	if err := ensureCtx(ctx).Err(); err != nil {
		return "", err
	}
	if err := s.acquire(); err != nil {
		return "", err
	}
	defer s.release()
	evalSpan := obs.FromContext(ctx).StartSpan(obs.StageEval)
	out, err := s.sess.Point(args)
	if err != nil {
		return "", newError(ErrArgument, s.p.text, err)
	}
	evalSpan.End()
	return Value(out), nil
}

// Set applies one change: a weight update or a dynamic-relation membership
// update.  Tuple insertions must preserve the Gaifman graph of the compiled
// structure (Theorem 24's update model); violations fail with ErrUpdate and
// leave the session untouched.
func (s *Session) Set(change Change) error {
	if err := s.acquire(); err != nil {
		return err
	}
	defer s.release()
	return s.apply(change)
}

// apply performs one change; the caller holds the session.
func (s *Session) apply(change Change) error {
	var err error
	switch {
	case change.Weight != "" && change.Rel != "":
		return errorf(ErrUpdate, s.p.text, "change names both weight %q and relation %q", change.Weight, change.Rel)
	case change.Weight != "":
		err = s.sess.SetWeight(change.Weight, change.Tuple, change.Value)
	case change.Rel != "":
		err = s.sess.SetTuple(change.Rel, change.Tuple, change.Present)
	default:
		return errorf(ErrUpdate, s.p.text, "change names neither a weight nor a relation")
	}
	if err != nil {
		return newError(ErrUpdate, s.p.text, err)
	}
	return nil
}

// ApplyBatch applies a mixed batch of changes atomically: every change is
// validated before anything is applied (all-or-nothing), and the evaluator
// then runs a single propagation wave for the whole batch, so gates shared
// by several changes are recomputed once and repeated changes to one key
// coalesce with the last value winning.
func (s *Session) ApplyBatch(changes []Change) error {
	if err := s.acquire(); err != nil {
		return err
	}
	defer s.release()
	for i, ch := range changes {
		if ch.Weight != "" && ch.Rel != "" {
			return errorf(ErrUpdate, s.p.text, "change %d names both a weight and a relation", i)
		}
		if ch.Weight == "" && ch.Rel == "" {
			return errorf(ErrUpdate, s.p.text, "change %d names neither a weight nor a relation", i)
		}
	}
	if err := s.sess.ApplyBatch(changes); err != nil {
		return newError(ErrUpdate, s.p.text, err)
	}
	return nil
}

// Close releases the session's evaluator state; subsequent operations fail
// with ErrSessionClosed.  Close blocks until an in-flight operation
// finishes and is idempotent.
func (s *Session) Close() error {
	s.once.Do(func() {
		s.mu.Lock()
		s.closed = true
		s.sess = nil
		s.mu.Unlock()
	})
	return nil
}
