package bench

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/agg"
	"repro/internal/server"
	"repro/internal/workload"
)

// e20Expr is the closed aggregate the push subsystem materialises: the same
// edge-weight sum the serving experiments use, extended with a unary term so
// CDC streams that toggle S membership move the value too.
const e20Expr = "sum x, y . [E(x,y)] * w(x,y) + sum x . [S(x)] * u(x)"

// e20Measurements holds one E20 run: the commit→client push latency under 8
// keeping-up subscribers, the coalescing behaviour of a deliberately slow
// client, the writer's update rate with zero subscribers versus one paced
// subscriber, and streaming-ingest versus batched-POST throughput over HTTP.
type e20Measurements struct {
	n, updates, changes int

	p50, p99 time.Duration // push lag across 8 subscribers

	delivered int     // slow client: updates actually delivered
	coalesce  float64 // (delivered + folded evaluations) / delivered
	epochSkip float64 // committed epochs spanned / delivered

	soloRate  float64 // writer upd/s, no subscribers (hub never created)
	pacedRate float64 // writer upd/s, 1 paced subscriber attached

	ingestRate float64 // changes/s through one streamed POST /ingest
	batchRate  float64 // changes/s through equivalent sequential /batch calls
}

// e20Session compiles the workload behind the facade and returns a fresh
// session plus a hot-edge weight-update stream.
func e20Session(db *workload.Database, updates int, seed int64) (*agg.Session, []agg.Change) {
	eng := agg.Open(agg.FromStructure(db.A, db.Weights()))
	p, err := eng.Prepare(context.Background(), e20Expr)
	if err != nil {
		panic(fmt.Sprintf("E20: prepare: %v", err))
	}
	s, err := p.Session()
	if err != nil {
		panic(fmt.Sprintf("E20: session: %v", err))
	}
	edges := db.A.Tuples("E")
	r := rand.New(rand.NewSource(seed))
	hot := edges[:min(64, len(edges))]
	// Every change must differ from the edge's current weight: a same-value
	// set is a no-op that commits no epoch, which would break the exact
	// epoch accounting below ((cur % 9) + 1 never equals cur for 1 ≤ cur ≤ 9).
	cur := make(map[string]int64, len(hot))
	for _, e := range hot {
		cur[e.Key()] = db.EdgeWeight[e.Key()]
	}
	stream := make([]agg.Change, updates)
	for i := range stream {
		e := hot[r.Intn(len(hot))]
		v := cur[e.Key()]%9 + 1
		cur[e.Key()] = v
		stream[i] = agg.SetWeight("w", e, v)
	}
	return s, stream
}

// e20PushLatency runs `subs` keeping-up subscribers while the writer applies
// the stream with a small pace (modelling request arrival), and pools every
// Update.Lag sample: the time from a commit to its update becoming
// deliverable to the client.
func e20PushLatency(s *agg.Session, stream []agg.Change, subs int, pace time.Duration) (p50, p99 time.Duration) {
	ctx := context.Background()
	target := s.Epoch() + uint64(len(stream))
	lat := make([][]time.Duration, subs)
	var ready, done sync.WaitGroup
	for i := 0; i < subs; i++ {
		ready.Add(1)
		done.Add(1)
		go func(i int) {
			defer done.Done()
			first := true
			var mine []time.Duration
			for u, err := range s.Subscribe(ctx) {
				if err != nil {
					panic(fmt.Sprintf("E20: subscriber: %v", err))
				}
				if first {
					first = false
					ready.Done()
				}
				if u.Lag > 0 {
					mine = append(mine, u.Lag)
				}
				if u.Epoch >= target {
					break
				}
			}
			lat[i] = mine
		}(i)
	}
	ready.Wait()
	for _, ch := range stream {
		if err := s.Set(ch); err != nil {
			panic(fmt.Sprintf("E20: write under subscribers: %v", err))
		}
		if pace > 0 {
			time.Sleep(pace)
		}
	}
	done.Wait()

	var all []time.Duration
	for _, l := range lat {
		all = append(all, l...)
	}
	if len(all) == 0 {
		return 0, 0
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	pick := func(q int) time.Duration {
		idx := len(all) * q / 100
		if idx >= len(all) {
			idx = len(all) - 1
		}
		return all[idx]
	}
	return pick(50), pick(99)
}

// e20SlowClient attaches one deliberately slow subscriber (sleeping per
// delivery) under a paced write stream and reports how many updates it
// actually received, the coalescing ratio (evaluated results folded per
// delivered update) and the epoch-skip ratio (committed epochs spanned per
// delivered update).  Both ratios exceed 1 exactly when the one-slot mailbox
// is doing its job.  The writer must be paced: an instantaneous burst is
// absorbed by the evaluator's own latest-epoch-wins loop in one round, which
// skips epochs but gives the mailbox nothing to fold.
func e20SlowClient(s *agg.Session, stream []agg.Change, pace, sleep time.Duration) (delivered int, coalesce, epochSkip float64) {
	ctx := context.Background()
	start := s.Epoch()
	target := start + uint64(len(stream))
	var folded uint64
	var done sync.WaitGroup
	var ready sync.WaitGroup
	ready.Add(1)
	done.Add(1)
	go func() {
		defer done.Done()
		first := true
		for u, err := range s.Subscribe(ctx) {
			if err != nil {
				panic(fmt.Sprintf("E20: slow subscriber: %v", err))
			}
			if first {
				first = false
				ready.Done()
				continue // the initial snapshot is not a pushed commit
			}
			delivered++
			folded += u.Coalesced
			if u.Epoch >= target {
				break
			}
			time.Sleep(sleep)
		}
	}()
	ready.Wait()
	for _, ch := range stream {
		if err := s.Set(ch); err != nil {
			panic(fmt.Sprintf("E20: write past slow client: %v", err))
		}
		if pace > 0 {
			time.Sleep(pace)
		}
	}
	done.Wait()
	if delivered == 0 {
		return 0, 0, 0
	}
	return delivered,
		float64(uint64(delivered)+folded) / float64(delivered),
		float64(len(stream)) / float64(delivered)
}

// e20WriterRate times the identical update loop twice — once on a session no
// subscriber ever touched (the hub is never created, so Notify is a single
// nil atomic load) and once with one paced subscriber attached — and
// returns both sustained rates.
func e20WriterRate(db *workload.Database, stream []agg.Change, pace time.Duration) (solo, paced float64) {
	apply := func(s *agg.Session) time.Duration {
		return timeIt(func() {
			for _, ch := range stream {
				if err := s.Set(ch); err != nil {
					panic(fmt.Sprintf("E20: writer: %v", err))
				}
				runtime.Gosched()
			}
		})
	}

	s0, _ := e20Session(db, 0, 1)
	d0 := apply(s0)
	s0.Close()

	s1, _ := e20Session(db, 0, 1)
	defer s1.Close()
	target := s1.Epoch() + uint64(len(stream))
	ctx := context.Background()
	var ready, done sync.WaitGroup
	ready.Add(1)
	done.Add(1)
	go func() {
		defer done.Done()
		first := true
		for u, err := range s1.Subscribe(ctx) {
			if err != nil {
				panic(fmt.Sprintf("E20: paced subscriber: %v", err))
			}
			if first {
				first = false
				ready.Done()
			}
			if u.Epoch >= target {
				break
			}
			time.Sleep(pace)
		}
	}()
	ready.Wait()
	d1 := apply(s1)
	done.Wait()

	n := float64(len(stream))
	return n / d0.Seconds(), n / d1.Seconds()
}

// e20HTTP measures CDC ingest over the wire: the same `changes`-line NDJSON
// stream is pushed through one streamed POST /ingest and through equivalent
// sequential POST /batch calls (same wave size), against two sessions of the
// same server.  Both paths must land on the identical final value.
func e20HTTP(db *workload.Database, changes, wave int) (ingestRate, batchRate float64) {
	srv := server.New(server.Options{})
	srv.MountDatabaseValue("default", agg.FromStructure(db.A, db.Weights()))
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	mkSession := func(name string) {
		body, _ := json.Marshal(map[string]any{
			"name": name, "expr": e20Expr, "dynamic": []string{"E", "S"},
		})
		resp, err := http.Post(ts.URL+"/session", "application/json", bytes.NewReader(body))
		if err != nil || resp.StatusCode != http.StatusOK {
			panic(fmt.Sprintf("E20: create session %s: %v (status %v)", name, err, resp))
		}
		resp.Body.Close()
	}
	mkSession("ingest")
	mkSession("batch")

	all := make([]workload.Change, 0, changes)
	for c := range workload.ChangeStream(db, changes, 17) {
		all = append(all, c)
	}

	// One streamed POST /ingest carrying every change as NDJSON lines.
	var ndjson bytes.Buffer
	enc := json.NewEncoder(&ndjson)
	for _, c := range all {
		if err := enc.Encode(c); err != nil {
			panic(fmt.Sprintf("E20: encode: %v", err))
		}
	}
	ingestDur := timeIt(func() {
		resp, err := http.Post(
			fmt.Sprintf("%s/ingest?session=ingest&wave=%d&ack=16", ts.URL, wave),
			"application/x-ndjson", bytes.NewReader(ndjson.Bytes()))
		if err != nil {
			panic(fmt.Sprintf("E20: ingest: %v", err))
		}
		defer resp.Body.Close()
		var last map[string]any
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			if err := json.Unmarshal(sc.Bytes(), &last); err != nil {
				panic(fmt.Sprintf("E20: ingest ack %q: %v", sc.Text(), err))
			}
		}
		if last["done"] != true || last["applied"] != float64(changes) {
			panic(fmt.Sprintf("E20: ingest finished with %v, want done applied=%d", last, changes))
		}
	})

	// The same stream as sequential /batch calls of one wave each.
	bodies := make([][]byte, 0, (changes+wave-1)/wave)
	for i := 0; i < len(all); i += wave {
		b, _ := json.Marshal(map[string]any{"session": "batch", "updates": all[i:min(i+wave, len(all))]})
		bodies = append(bodies, b)
	}
	batchDur := timeIt(func() {
		for _, b := range bodies {
			resp, err := http.Post(ts.URL+"/batch", "application/json", bytes.NewReader(b))
			if err != nil {
				panic(fmt.Sprintf("E20: batch: %v", err))
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				panic(fmt.Sprintf("E20: batch status %d", resp.StatusCode))
			}
		}
	})

	point := func(name string) string {
		body, _ := json.Marshal(map[string]any{"session": name})
		resp, err := http.Post(ts.URL+"/point", "application/json", bytes.NewReader(body))
		if err != nil {
			panic(fmt.Sprintf("E20: point %s: %v", name, err))
		}
		defer resp.Body.Close()
		var out struct {
			Value string `json:"value"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			panic(fmt.Sprintf("E20: point %s: %v", name, err))
		}
		return out.Value
	}
	if vi, vb := point("ingest"), point("batch"); vi != vb {
		panic(fmt.Sprintf("E20: ingest and batch landed on different values %s vs %s", vi, vb))
	}

	return float64(changes) / ingestDur.Seconds(), float64(changes) / batchDur.Seconds()
}

// e20Measure runs the full E20 suite at one size.
func e20Measure(n, updates, changes int) e20Measurements {
	db := workload.Grid(isqrt(n), isqrt(n), 11)

	s, stream := e20Session(db, updates, 7)
	p50, p99 := e20PushLatency(s, stream, 8, 200*time.Microsecond)
	s.Close()

	s, stream = e20Session(db, updates, 8)
	delivered, coalesce, epochSkip := e20SlowClient(s, stream, 100*time.Microsecond, 2*time.Millisecond)
	s.Close()

	_, stream = e20Session(db, updates, 9)
	solo, paced := e20WriterRate(db, stream, 2*time.Millisecond)

	ingestRate, batchRate := e20HTTP(db, changes, 512)

	return e20Measurements{
		n: n, updates: updates, changes: changes,
		p50: p50, p99: p99,
		delivered: delivered, coalesce: coalesce, epochSkip: epochSkip,
		soloRate: solo, pacedRate: paced,
		ingestRate: ingestRate, batchRate: batchRate,
	}
}

func isqrt(n int) int {
	side := 1
	for side*side < n {
		side++
	}
	return side
}

// E20LivePush measures the live push subsystem end to end: commit→client
// push latency under 8 subscribers, the coalescing a slow client gets from
// the one-slot mailbox, the writer's throughput with and without a paced
// subscriber attached, and CDC /ingest throughput against equivalent /batch
// calls.
func E20LivePush(sizes []int, updates, changes int) *Table {
	t := &Table{
		ID:    "E20",
		Title: "Live push: subscription latency, coalescing and streaming ingest",
		Claim: "committed epochs reach subscribers with low commit→push latency, slow clients coalesce (ratio > 1) instead of stalling the writer — a paced subscriber costs the writer at most 10% — and NDJSON /ingest sustains at least batched-POST throughput",
		Header: []string{
			"n", "push p50", "push p99", "slow-client coalesce", "epochs/delivery",
			"upd/s 0 subs", "upd/s +1 paced", "Δwriter",
			"ingest chg/s", "batch chg/s",
		},
	}
	for _, n := range sizes {
		m := e20Measure(n, updates, changes)
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(m.n),
			dur(m.p50), dur(m.p99),
			fmt.Sprintf("%.1fx", m.coalesce), fmt.Sprintf("%.1fx", m.epochSkip),
			fmt.Sprintf("%.0f", m.soloRate), fmt.Sprintf("%.0f", m.pacedRate),
			fmt.Sprintf("%+.1f%%", 100*(m.pacedRate-m.soloRate)/m.soloRate),
			fmt.Sprintf("%.0f", m.ingestRate), fmt.Sprintf("%.0f", m.batchRate),
		})
	}
	t.Notes = append(t.Notes,
		"push latency is Update.Lag: time from a commit to its re-evaluated update becoming deliverable, pooled over 8 subscribers under a paced write stream",
		"the slow client sleeps per delivery under a paced writer; coalesce counts evaluations folded per delivered update, epochs/delivery the committed epochs it spanned — both are > 1 exactly when the latest-epoch-wins mailbox is absorbing the lag",
		"upd/s compares the identical Set loop on a session whose hub was never created (0 subs) against one with a paced subscriber attached",
		"ingest streams one NDJSON POST /ingest in 512-change waves against sequential 512-change /batch POSTs over loopback HTTP; both paths must land on the identical final value")
	return t
}

// E20Check runs E20 as a pass/fail smoke check (used by CI): the slow
// client's coalescing ratio must exceed 1, a paced subscriber may cost the
// writer at most 10% of its zero-subscriber rate, the push p99 must be
// measured and sane, and streamed ingest must not fall behind batched POSTs
// by more than 2x (it is usually ahead).  Timing attempts are re-measured up
// to two more times so co-tenant noise cannot red-light an unrelated change.
func E20Check() error {
	const (
		writerKeep = 0.90
		p99Limit   = 250 * time.Millisecond
		ingestKeep = 0.5
	)
	var m e20Measurements
	var err error
	for attempt := 0; attempt < 3; attempt++ {
		m = e20Measure(900, 2000, 10000)
		err = nil
		switch {
		case m.p99 <= 0:
			err = fmt.Errorf("E20: no push latency was measured (p99 = %v)", m.p99)
		case m.p99 > p99Limit:
			err = fmt.Errorf("E20: push p99 %v exceeds %v", m.p99, p99Limit)
		case m.coalesce <= 1:
			err = fmt.Errorf("E20: slow client coalescing ratio %.2f, want > 1", m.coalesce)
		case m.pacedRate < writerKeep*m.soloRate:
			err = fmt.Errorf("E20: writer at %.0f upd/s with a paced subscriber is below %.0f%% of its %.0f upd/s solo rate",
				m.pacedRate, 100*writerKeep, m.soloRate)
		case m.ingestRate < ingestKeep*m.batchRate:
			err = fmt.Errorf("E20: streamed ingest %.0f chg/s fell below %.0f%% of batched %.0f chg/s",
				m.ingestRate, 100*ingestKeep, m.batchRate)
		}
		if err == nil {
			break
		}
	}
	if err != nil {
		return err
	}
	fmt.Printf("E20 ok: n=%d, push p50/p99 %v/%v under 8 subs, slow client coalesce %.1fx (%.1fx epochs/delivery, %d delivered), writer %.0f upd/s solo vs %.0f with a paced sub (%+.1f%%), ingest %.0f chg/s vs batch %.0f\n",
		m.n, m.p50, m.p99, m.coalesce, m.epochSkip, m.delivered,
		m.soloRate, m.pacedRate, 100*(m.pacedRate-m.soloRate)/m.soloRate,
		m.ingestRate, m.batchRate)
	return nil
}
