package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"

	"repro/agg"
	"repro/internal/fleet"
	"repro/internal/server"
	"repro/internal/workload"
)

// E19 measures what sharding aggserve buys: aggregate compiled-query cache
// capacity.  The workload is a working set of `distinct` queries — the same
// aggregate with different constant factors, so each has its own cache key
// and its own Theorem 6 compilation — cycled by concurrent clients against a
// per-replica LRU smaller than the set.  One replica cycles a set larger
// than its cache and recompiles on almost every request (E12 puts a
// compilation at 40–50× a cached evaluation); a fleet consistent-hashes the
// keys so each replica's shard fits its cache, and after one warm pass the
// whole set serves at cached speed.

// e19Exprs builds the distinct-query working set: constants are part of the
// canonical text, so each factor is a distinct (database, query, semiring)
// cache key compiled and cached independently.
func e19Exprs(distinct int) [][]byte {
	bodies := make([][]byte, distinct)
	for i := range bodies {
		expr := fmt.Sprintf("sum x, y . [E(x,y)] * w(x,y) * %d", i+1)
		b, err := json.Marshal(map[string]any{"expr": expr, "semiring": "natural"})
		if err != nil {
			panic(fmt.Sprintf("E19: marshal: %v", err))
		}
		bodies[i] = b
	}
	return bodies
}

// e19Post issues one /query and returns its round-trip latency.
func e19Post(client *http.Client, url string, body []byte) time.Duration {
	start := time.Now()
	resp, err := client.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		panic(fmt.Sprintf("E19: POST: %v", err))
	}
	defer resp.Body.Close()
	var out struct {
		Error string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		panic(fmt.Sprintf("E19: decoding response: %v", err))
	}
	if resp.StatusCode != http.StatusOK {
		panic(fmt.Sprintf("E19: status %d: %s", resp.StatusCode, out.Error))
	}
	return time.Since(start)
}

func e19Percentile(lats []time.Duration, p int) time.Duration {
	if len(lats) == 0 {
		return 0
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	idx := len(lats) * p / 100
	if idx >= len(lats) {
		idx = len(lats) - 1
	}
	return lats[idx]
}

// e19Result is one fleet-size measurement.
type e19Result struct {
	replicas  int
	reqPerSec float64
	p50, p99  time.Duration
	hits      int64 // cache hits during the measured phase (warm-up excluded)
	misses    int64
}

// e19Run drives the working set through a fleet of the given size: one
// sequential warm pass (each owner compiles its shard once), then `clients`
// concurrent clients cycling the set from staggered offsets.
func e19Run(db *workload.Database, replicas, distinct, cacheSize, clients, perClient int) e19Result {
	f, err := fleet.StartLocal(replicas, fleet.LocalOptions{
		Server: server.Options{CacheSize: cacheSize},
		Configure: func(i int, s *server.Server) {
			s.MountDatabaseValue("default", agg.FromStructure(db.A, db.Weights()))
		},
	})
	if err != nil {
		panic(fmt.Sprintf("E19: starting fleet: %v", err))
	}
	defer f.Close()

	client := &http.Client{}
	bodies := e19Exprs(distinct)
	for _, b := range bodies {
		e19Post(client, f.URL()+"/query", b)
	}

	var hits0, misses0 int64
	for i := 0; i < replicas; i++ {
		hits0 += f.Replica(i).Stats().CacheHits.Load()
		misses0 += f.Replica(i).Stats().CacheMisses.Load()
	}

	lats := make([][]time.Duration, clients)
	var wg sync.WaitGroup
	elapsed := timeIt(func() {
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				for i := 0; i < perClient; i++ {
					// Staggered offsets desynchronise the cyclic scans, so
					// clients do not ride each other's in-flight compiles.
					b := bodies[(c*5+i)%len(bodies)]
					lats[c] = append(lats[c], e19Post(client, f.URL()+"/query", b))
				}
			}(c)
		}
		wg.Wait()
	})

	res := e19Result{
		replicas:  replicas,
		reqPerSec: float64(clients*perClient) / elapsed.Seconds(),
	}
	var all []time.Duration
	for _, l := range lats {
		all = append(all, l...)
	}
	res.p50 = e19Percentile(all, 50)
	res.p99 = e19Percentile(all, 99)
	for i := 0; i < replicas; i++ {
		res.hits += f.Replica(i).Stats().CacheHits.Load()
		res.misses += f.Replica(i).Stats().CacheMisses.Load()
	}
	res.hits -= hits0
	res.misses -= misses0
	return res
}

// e19Overhead measures what the proxy hop itself costs: the p50 of a cached
// /query through router + replica minus the p50 of the same request direct
// to the replica.
func e19Overhead(db *workload.Database, reps int) (routed, direct time.Duration) {
	f, err := fleet.StartLocal(1, fleet.LocalOptions{
		Server: server.Options{CacheSize: 8},
		Configure: func(i int, s *server.Server) {
			s.MountDatabaseValue("default", agg.FromStructure(db.A, db.Weights()))
		},
	})
	if err != nil {
		panic(fmt.Sprintf("E19: starting fleet: %v", err))
	}
	defer f.Close()

	client := &http.Client{}
	body := e19Exprs(1)[0]
	// Warm the compiled entry and both connection pools.
	for i := 0; i < 3; i++ {
		e19Post(client, f.URL()+"/query", body)
		e19Post(client, f.ReplicaURL(0)+"/query", body)
	}
	var viaRouter, viaReplica []time.Duration
	for i := 0; i < reps; i++ {
		viaRouter = append(viaRouter, e19Post(client, f.URL()+"/query", body))
		viaReplica = append(viaReplica, e19Post(client, f.ReplicaURL(0)+"/query", body))
	}
	return e19Percentile(viaRouter, 50), e19Percentile(viaReplica, 50)
}

// E19FleetScaling measures aggregate throughput and tail latency of the
// distinct-query working set across fleet sizes, plus the router's own hop
// overhead on a cached query.
func E19FleetScaling(n, distinct, cacheSize, clients, perClient int) *Table {
	t := &Table{
		ID:    "E19",
		Title: "Fleet scale-out: consistent-hash sharding of the compiled-query cache",
		Claim: "sharding the cache key space across replicas multiplies effective cache capacity: a working set that thrashes one replica's LRU fits a fleet's, so aggregate req/s scales superlinearly and p99 collapses from compile to eval latency",
		Header: []string{
			"replicas", fmt.Sprintf("req/s (%d clients)", clients), "speedup",
			"p50", "p99", "hit rate",
		},
	}
	db := workload.BoundedDegree(n, 3, 7)
	var base float64
	for _, replicas := range []int{1, 2, 4} {
		r := e19Run(db, replicas, distinct, cacheSize, clients, perClient)
		if replicas == 1 {
			base = r.reqPerSec
		}
		hitRate := float64(r.hits) / float64(r.hits+r.misses)
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(replicas),
			fmt.Sprintf("%.0f", r.reqPerSec),
			fmt.Sprintf("%.1fx", r.reqPerSec/base),
			dur(r.p50), dur(r.p99),
			fmt.Sprintf("%.0f%%", 100*hitRate),
		})
	}
	routed, direct := e19Overhead(db, 60)
	t.Notes = append(t.Notes,
		fmt.Sprintf("working set: %d distinct queries (constant factors are distinct cache keys) against a per-replica LRU of %d on bounded-degree n=%d; one warm pass precedes the measured phase", distinct, cacheSize, n),
		"replicas run in-process behind the router (fleet.StartLocal), so they share the machine's cores: the speedup is cache capacity, not added hardware — misses recompile (E12: 40-50x a cached eval) while hits only evaluate",
		fmt.Sprintf("router hop overhead on a cached query: p50 %v routed vs %v direct (+%v)", routed, direct, routed-direct),
	)
	return t
}

// E19Check runs the scale-out comparison as a pass/fail smoke check (used
// by CI): 4 replicas must deliver ≥2.5× the aggregate req/s of 1 replica on
// the cache-thrashing working set with p99 no worse, and the router hop
// must add ≤1ms to the p50 of a cached query.  Timing attempts are
// re-measured up to two more times so co-tenant noise cannot red-light an
// unrelated change.
func E19Check() error {
	const (
		n, distinct, cacheSize = 500, 24, 12
		clients, perClient     = 8, 36
		wantSpeedup            = 2.5
		maxOverhead            = time.Millisecond
	)
	db := workload.BoundedDegree(n, 3, 7)
	var r1, r4 e19Result
	var overhead time.Duration
	var err error
	for attempt := 0; attempt < 3; attempt++ {
		r1 = e19Run(db, 1, distinct, cacheSize, clients, perClient)
		r4 = e19Run(db, 4, distinct, cacheSize, clients, perClient)
		routed, direct := e19Overhead(db, 60)
		overhead = routed - direct
		err = nil
		switch {
		case r4.reqPerSec < wantSpeedup*r1.reqPerSec:
			err = fmt.Errorf("E19: 4 replicas deliver %.0f req/s vs %.0f for 1 — %.2fx, want ≥ %.1fx",
				r4.reqPerSec, r1.reqPerSec, r4.reqPerSec/r1.reqPerSec, wantSpeedup)
		case r4.p99 > r1.p99:
			err = fmt.Errorf("E19: p99 %v at 4 replicas is worse than %v at 1", r4.p99, r1.p99)
		case overhead > maxOverhead:
			err = fmt.Errorf("E19: router hop adds %v to a cached query's p50 (%v routed vs %v direct), want ≤ %v",
				overhead, routed, direct, maxOverhead)
		}
		if err == nil {
			break
		}
	}
	if err != nil {
		return err
	}
	fmt.Printf("E19 ok: %.0f req/s at 1 replica vs %.0f at 4 (%.1fx), p99 %v vs %v, router hop +%v p50\n",
		r1.reqPerSec, r4.reqPerSec, r4.reqPerSec/r1.reqPerSec, r1.p99, r4.p99, overhead)
	return nil
}
