package agg

import (
	"context"
	"iter"

	"repro/internal/enumerate"
	"repro/internal/obs"
)

// Reader is a consistent read handle on a Session, pinned at one committed
// epoch: Eval, Enumerate and AnswerCount all answer as of that commit no
// matter how many updates the session's writer applies afterwards, and none
// of them can return ErrSessionBusy.
//
// A Reader is meant for one goroutine (its snapshot digests are
// unsynchronised); take one Reader per reading goroutine.  Any number of
// Readers may be used concurrently with each other and with the session's
// writer.  Close each Reader when done — an open Reader pins undo history
// whose memory grows with every subsequent update (RetainedUndoBytes shows
// how much).
type Reader struct {
	p      *Prepared
	snap   erasedSnapshot
	ans    *enumerate.AnswersSnapshot // nil unless enumerable with dynamic relations
	closed bool
}

// Snapshot pins the session's current committed epoch and returns a Reader
// for it.  Taking a snapshot is cheap (no copy of the evaluator state) and
// does not block the writer beyond a brief pin.  Nested sessions cannot
// snapshot and fail with ErrArgument.
//
// For enumerable queries the value snapshot and the answer-set snapshot are
// pinned in two steps, so a batch committed exactly between them may be
// visible to Enumerate but not to Eval (or vice versa); take the snapshot
// while no update is in flight to rule even that out.
func (s *Session) Snapshot() (*Reader, error) {
	s.stateMu.RLock()
	closed, sess, ans := s.closed, s.sess, s.ans
	s.stateMu.RUnlock()
	if closed {
		return nil, errorf(ErrSessionClosed, s.p.text, "session was closed")
	}
	snap, err := sess.Snapshot()
	if err != nil {
		return nil, newError(ErrArgument, s.p.text, err)
	}
	r := &Reader{p: s.p, snap: snap}
	if ans != nil {
		r.ans = ans.Snapshot()
	}
	return r, nil
}

// FreeVars returns the free variables of the underlying query, in the order
// Eval expects its arguments.
func (r *Reader) FreeVars() []string { return r.p.FreeVars() }

// Epoch returns the committed session epoch this Reader is pinned at.
func (r *Reader) Epoch() uint64 { return r.snap.Epoch() }

// Eval reads the query value at the pinned epoch: no arguments for a closed
// query, one element per free variable for a point query.
func (r *Reader) Eval(ctx context.Context, args ...int) (Value, error) {
	if err := ensureCtx(ctx).Err(); err != nil {
		return "", err
	}
	if r.closed {
		return "", errorf(ErrSessionClosed, r.p.text, "reader was closed")
	}
	evalSpan := obs.FromContext(ctx).StartSpan(obs.StageEval)
	out, err := r.snap.Point(args)
	if err != nil {
		return "", newError(ErrArgument, r.p.text, err)
	}
	evalSpan.End()
	return Value(out), nil
}

// Enumerate streams the answer set as of the pinned epoch with constant
// delay between answers, in the same iterator shape as Prepared.Enumerate.
// Unlike live session cursors, the stream is not invalidated by updates the
// writer commits while it runs.  Non-enumerable queries yield
// ErrNotEnumerable.
func (r *Reader) Enumerate(ctx context.Context) iter.Seq2[Answer, error] {
	ctx = ensureCtx(ctx)
	return func(yield func(Answer, error) bool) {
		if r.p.enum == nil {
			yield(nil, errorf(ErrNotEnumerable, r.p.text, "Enumerate needs a first-order formula or a boolean nested query with free variables"))
			return
		}
		if r.closed {
			yield(nil, errorf(ErrSessionClosed, r.p.text, "reader was closed"))
			return
		}
		if err := ctx.Err(); err != nil {
			yield(nil, err)
			return
		}
		evalSpan := obs.FromContext(ctx).StartSpan(obs.StageEval)
		defer evalSpan.End()
		cur := r.cursor()
		done := ctx.Done()
		for {
			t, ok := cur.Next()
			if !ok {
				return
			}
			if !yield(Answer(t), nil) {
				return
			}
			select {
			case <-done:
				yield(nil, ctx.Err())
				return
			default:
			}
		}
	}
}

// cursor draws a fresh answer cursor at the pinned epoch: the answer-set
// snapshot when the session maintains one, else the prepared query's static
// enumeration structure (whose answers never change without dynamic
// relations).
func (r *Reader) cursor() *enumerate.TupleCursor {
	if r.ans != nil {
		return r.ans.Cursor()
	}
	return r.p.enum.ans.Cursor()
}

// AnswerCount returns the number of answers as of the pinned epoch, computed
// from the circuit without enumerating them.  Non-enumerable queries fail
// with ErrNotEnumerable.
func (r *Reader) AnswerCount(ctx context.Context) (int64, error) {
	if r.p.enum == nil {
		return 0, errorf(ErrNotEnumerable, r.p.text, "AnswerCount needs a first-order formula or a boolean nested query with free variables")
	}
	if r.closed {
		return 0, errorf(ErrSessionClosed, r.p.text, "reader was closed")
	}
	if err := ensureCtx(ctx).Err(); err != nil {
		return 0, err
	}
	evalSpan := obs.FromContext(ctx).StartSpan(obs.StageEval)
	defer evalSpan.End()
	if r.ans != nil {
		return r.ans.Count(), nil
	}
	return r.p.AnswerCount(ctx)
}

// Close releases the Reader's pinned snapshots, letting the session reclaim
// undo history.  Close is idempotent; operations after it fail with
// ErrSessionClosed.
func (r *Reader) Close() error {
	if r.closed {
		return nil
	}
	r.closed = true
	r.snap.Release()
	if r.ans != nil {
		r.ans.Release()
	}
	return nil
}
