package fleet

import (
	"fmt"
	"testing"
)

func ringIDs(n int) []string {
	ids := make([]string, n)
	for i := range ids {
		ids[i] = fmt.Sprintf("http://10.0.0.%d:8080", i+1)
	}
	return ids
}

// TestRingBalance checks that the virtual nodes spread a large key
// population roughly evenly: no replica of an 8-replica ring owns less than
// a third or more than triple its fair share.
func TestRingBalance(t *testing.T) {
	const replicas, keys = 8, 20000
	r, err := NewRing(ringIDs(replicas), 0)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, replicas)
	for i := 0; i < keys; i++ {
		counts[r.Lookup(fmt.Sprintf("key-%d", i))]++
	}
	fair := keys / replicas
	for i, c := range counts {
		if c < fair/3 || c > 3*fair {
			t.Errorf("replica %d owns %d of %d keys (fair share %d): imbalance beyond 3x", i, c, keys, fair)
		}
	}
}

// TestRingStability is the consistent-hashing property: taking one replica
// down moves only the keys it owned — every key owned by a surviving
// replica keeps its owner — and recovery restores the original assignment
// exactly.
func TestRingStability(t *testing.T) {
	const replicas, keys = 5, 4000
	const down = 2
	r, err := NewRing(ringIDs(replicas), 0)
	if err != nil {
		t.Fatal(err)
	}
	live := func(i int) bool { return i != down }

	moved := 0
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("key-%d", i)
		before := r.Lookup(key)
		after, ok := r.LookupLive(key, live)
		if !ok {
			t.Fatalf("key %q: no live replica with %d of %d up", key, replicas-1, replicas)
		}
		if before != down {
			if after != before {
				t.Fatalf("key %q owned by live replica %d moved to %d when replica %d went down", key, before, after, down)
			}
			continue
		}
		if after == down {
			t.Fatalf("key %q still routed to the down replica", key)
		}
		moved++
		// Recovery: with every replica live again the key returns home.
		if again := r.Lookup(key); again != down {
			t.Fatalf("key %q: owner %d after recovery, want %d", key, again, down)
		}
	}
	if moved == 0 {
		t.Fatal("no key was owned by the downed replica; balance test should have caught this")
	}
}

// TestRingDeterminism: two rings over the same identifiers agree on every
// lookup (routing must be reproducible across router restarts).
func TestRingDeterminism(t *testing.T) {
	a, err := NewRing(ringIDs(6), 64)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRing(ringIDs(6), 64)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		key := fmt.Sprintf("q-%d", i)
		if a.Lookup(key) != b.Lookup(key) {
			t.Fatalf("rings disagree on %q", key)
		}
	}
}

// TestRingRejectsDuplicates: duplicate replica ids would silently halve the
// fleet, so construction must fail.
func TestRingRejectsDuplicates(t *testing.T) {
	if _, err := NewRing([]string{"a", "b", "a"}, 8); err == nil {
		t.Fatal("duplicate replica ids accepted")
	}
	if _, err := NewRing(nil, 8); err == nil {
		t.Fatal("empty replica set accepted")
	}
}
