// Live materialized aggregates through the repro/agg facade: a session's
// value can be watched instead of polled.  Session.Subscribe yields an
// Update after every committed epoch, re-evaluated from an MVCC snapshot, so
// subscribers always see a consistent value — and a slow subscriber never
// stalls the writer or other subscribers, because each subscription is a
// one-slot mailbox where the latest epoch wins: lagging clients skip
// intermediate epochs (Update.Coalesced counts the evaluations folded
// together) instead of applying backpressure.
//
// The write side here is a CDC-style change stream from the workload
// generator (the same shape `agggen -kind cdc` emits and `POST /ingest`
// consumes), applied as coalesced ApplyBatch waves — one commit, one push,
// per wave.
//
//	go run ./examples/livefeed
package main

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/agg"
	"repro/internal/workload"
)

func main() {
	ctx := context.Background()
	d := workload.Grid(24, 24, 3)
	eng := agg.Open(agg.FromStructure(d.A, d.Weights()))

	p, err := eng.Prepare(ctx,
		"sum x, y . [E(x,y)] * w(x,y) + sum x . [S(x)] * u(x)",
		agg.WithDynamic("E", "S"))
	if err != nil {
		panic(err)
	}
	s, err := p.Session()
	if err != nil {
		panic(err)
	}
	defer s.Close()

	// A CDC change stream in ApplyBatch waves: every change is guaranteed
	// effective (the generator never emits redundant toggles or no-op weight
	// writes), so each wave commits exactly one epoch.
	const changes, wave = 4096, 128
	target := s.Epoch() + changes/wave

	// Two subscribers watch the same session: one keeps up, one sleeps per
	// delivery.  Both terminate at the final epoch — a lagging subscriber is
	// still guaranteed to observe the session's last committed state.
	var wg sync.WaitGroup
	watch := func(name string, sleep time.Duration) {
		defer wg.Done()
		delivered, folded := 0, uint64(0)
		var last agg.Update
		for u, err := range s.Subscribe(ctx) {
			if err != nil {
				panic(err)
			}
			delivered++
			folded += u.Coalesced
			last = u
			if u.Epoch >= target {
				break
			}
			time.Sleep(sleep)
		}
		fmt.Printf("%-4s subscriber: %3d deliveries, %2d evaluations coalesced, final epoch %d value %s\n",
			name, delivered, folded, last.Epoch, last.Value)
	}
	wg.Add(2)
	go watch("fast", 0)
	go watch("slow", 5*time.Millisecond)

	var batch []agg.Change
	for c := range workload.ChangeStream(d, changes, 7) {
		batch = append(batch, agg.Change{
			Weight:  c.Weight,
			Rel:     c.Rel,
			Tuple:   c.Tuple,
			Value:   c.Value,
			Present: c.Present == nil || *c.Present,
		})
		if len(batch) == wave {
			if err := s.ApplyBatch(batch); err != nil {
				panic(err)
			}
			batch = batch[:0]
			time.Sleep(time.Millisecond) // pace like a request stream
		}
	}
	wg.Wait()

	// Resume: a client that reports the epoch it has already seen skips the
	// initial snapshot and is woken only by fresh commits.
	resumed := make(chan agg.Update, 1)
	go func() {
		for u, err := range s.Subscribe(ctx, agg.SubscribeFrom(s.Epoch())) {
			if err != nil {
				panic(err)
			}
			resumed <- u
			return
		}
	}()
	time.Sleep(10 * time.Millisecond) // let it register before the commit
	if err := s.Set(agg.SetWeight("u", []int{0}, 999)); err != nil {
		panic(err)
	}
	u := <-resumed
	fmt.Printf("resumed subscriber: first delivery is the fresh commit (epoch %d, value %s)\n", u.Epoch, u.Value)
}
