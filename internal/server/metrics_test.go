package server

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/agg"
)

// metricLine matches one Prometheus text-format sample:
// name{labels} value — labels optional, value a float or integer.
var metricLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? ` +
	`([-+]?[0-9]*\.?[0-9]+([eE][-+]?[0-9]+)?|\+Inf|NaN)$`)

// fetchMetrics scrapes /metrics and returns the raw body plus a map of
// sample line → value for exact-match assertions.
func fetchMetrics(t *testing.T, base string) (string, map[string]float64) {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("GET /metrics: content type %q", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading /metrics: %v", err)
	}
	body := string(raw)
	samples := map[string]float64{}
	for _, line := range strings.Split(strings.TrimSpace(body), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if !metricLine.MatchString(line) {
			t.Fatalf("malformed exposition line: %q", line)
		}
		i := strings.LastIndexByte(line, ' ')
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			t.Fatalf("unparsable value in %q: %v", line, err)
		}
		samples[line[:i]] = v
	}
	return body, samples
}

// TestMetricsEndpoint drives every serving endpoint once, then asserts the
// Prometheus exposition parses, carries latency histograms for all of them,
// and agrees with the JSON /stats counters.
func TestMetricsEndpoint(t *testing.T) {
	srv, ts, _ := newTestServer(t, 6)

	// One request per serving endpoint.
	if _, code := postJSON(t, ts.URL+"/query", map[string]any{"expr": edgeSum}); code != http.StatusOK {
		t.Fatalf("/query failed: %d", code)
	}
	if _, code := postJSON(t, ts.URL+"/point", map[string]any{"expr": "sum y . [E(x,y)] * w(x,y)", "args": []int{0}}); code != http.StatusOK {
		t.Fatalf("/point failed: %d", code)
	}
	if _, code := postJSON(t, ts.URL+"/session", map[string]any{
		"name": "m1", "expr": "sum x, y . [E(x,y)] * w(x,y)", "dynamic": []string{"E"},
	}); code != http.StatusOK {
		t.Fatalf("/session failed: %d", code)
	}
	if _, code := postJSON(t, ts.URL+"/batch", map[string]any{
		"session": "m1",
		"updates": []map[string]any{{"weight": "w", "tuple": []int{0, 1}, "value": 5}},
	}); code != http.StatusOK {
		t.Fatalf("/batch failed: %d", code)
	}
	resp, err := http.Get(ts.URL + "/enumerate?phi=E(x,y)&vars=x,y&limit=3")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("/enumerate failed: %v %v", err, resp)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	resp, err = http.Get(ts.URL + "/analyze?expr=" + url.QueryEscape(edgeSum))
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("/analyze failed: %v %v", err, resp)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	body, samples := fetchMetrics(t, ts.URL)

	// Request latency histograms for the five serving endpoints (plus the
	// rest of the route table): at least a _count sample with count ≥ 1 and
	// a +Inf bucket agreeing with it.
	for _, ep := range []string{"query", "point", "batch", "enumerate", "analyze", "session"} {
		count, ok := samples[`aggserve_request_duration_seconds_count{endpoint="`+ep+`"}`]
		if !ok || count < 1 {
			t.Errorf("endpoint %q: missing or zero request histogram count (got %v, ok=%v)", ep, count, ok)
		}
		inf := samples[`aggserve_request_duration_seconds_bucket{endpoint="`+ep+`",le="+Inf"}`]
		if inf != count {
			t.Errorf("endpoint %q: +Inf bucket %v != count %v", ep, inf, count)
		}
	}

	// Stage histograms: the exercised pipeline stages all saw at least one
	// observation (cache_lookup needs a repeated query).
	if _, code := postJSON(t, ts.URL+"/query", map[string]any{"expr": edgeSum}); code != http.StatusOK {
		t.Fatalf("repeat /query failed: %d", code)
	}
	_, samples = fetchMetrics(t, ts.URL)
	for _, stage := range []string{"parse", "cache_lookup", "compile", "freeze", "eval", "wave"} {
		if c := samples[`aggserve_stage_duration_seconds_count{stage="`+stage+`"}`]; c < 1 {
			t.Errorf("stage %q: histogram count %v, want ≥ 1", stage, c)
		}
	}

	// Counter agreement with /stats.
	st := srv.Stats()
	for line, want := range map[string]int64{
		`aggserve_requests_total{endpoint="query"}`:     st.Queries.Load(),
		`aggserve_requests_total{endpoint="point"}`:     st.Points.Load(),
		`aggserve_requests_total{endpoint="batch"}`:     st.Batches.Load(),
		`aggserve_requests_total{endpoint="enumerate"}`: st.Enumerations.Load(),
		`aggserve_requests_total{endpoint="analyze"}`:   st.Analyzes.Load(),
		`aggserve_requests_total{endpoint="session"}`:   st.Sessions.Load(),
		`aggserve_cache_hits_total`:                     st.CacheHits.Load(),
		`aggserve_cache_misses_total`:                   st.CacheMisses.Load(),
		`aggserve_compiles_total`:                       st.Compiles.Load(),
		`aggserve_busy_total`:                           st.Busy.Load(),
	} {
		if got, ok := samples[line]; !ok || int64(got) != want {
			t.Errorf("%s = %v (present=%v), want %d", line, got, ok, want)
		}
	}

	// Quantiles are derivable: the per-endpoint histogram snapshot exposes
	// p50/p95/p99 through the obs API the exposition is generated from.
	snap := srv.reqHist["query"].Snapshot()
	if snap.Count < 2 {
		t.Fatalf("query histogram count %d, want ≥ 2", snap.Count)
	}
	p50, p99 := snap.Quantile(0.50), snap.Quantile(0.99)
	if p50 <= 0 || p99 < p50 {
		t.Errorf("implausible quantiles: p50=%v p99=%v", p50, p99)
	}

	// Gauges and build info present.
	for _, want := range []string{
		"aggserve_cache_bytes", "aggserve_sessions_active", "aggserve_uptime_seconds",
		"go_goroutines", "aggserve_build_info",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	if v := samples["aggserve_sessions_active"]; v != 1 {
		t.Errorf("aggserve_sessions_active = %v, want 1", v)
	}
}

// TestBusyCounter asserts the fail-fast 409 path increments the dedicated
// busy counter (satellite: contention must not vanish into errors).
func TestBusyCounter(t *testing.T) {
	srv, ts, _ := newTestServer(t, 4)
	if got := srv.Stats().Busy.Load(); got != 0 {
		t.Fatalf("busy = %d before any traffic", got)
	}
	// The HTTP surface serialises sessions behind SessionHandle locks, so
	// drive writeError directly with a session-busy error shaped like the
	// facade's: the counter, status mapping and /stats plumbing are what the
	// server owns.
	rec := httptest.NewRecorder()
	srv.writeError(rec, errBusy{})
	if rec.Code != http.StatusConflict {
		t.Fatalf("busy error mapped to %d, want 409", rec.Code)
	}
	if got := srv.Stats().Busy.Load(); got != 1 {
		t.Errorf("busy = %d after one 409, want 1", got)
	}
	if got := srv.Stats().Errors.Load(); got != 1 {
		t.Errorf("errors = %d after one 409, want 1", got)
	}
	// /stats surfaces it.
	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap StatsSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.Busy != 1 {
		t.Errorf("/stats busy = %d, want 1", snap.Busy)
	}
	if snap.GoVersion == "" {
		t.Error("/stats goVersion empty")
	}
	if snap.StartTime == "" {
		t.Error("/stats startTime empty")
	}
}

// errBusy is an error wrapping agg.ErrSessionBusy without going through a
// real contended session.
type errBusy struct{}

func (errBusy) Error() string { return "session is processing another operation" }
func (errBusy) Unwrap() error { return agg.ErrSessionBusy }
