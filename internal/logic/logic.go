// Package logic implements first-order logic over relational signatures:
// formulas, free variables, and a reference (naive) evaluator.
//
// Terms are plain variables: the public query language is purely relational
// (function symbols are introduced only internally by the compilation
// pipeline, which never round-trips through this package).
package logic

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/structure"
)

// Formula is a first-order formula.  The concrete node types are Atom, Eq,
// Truth, Not, And, Or and Exists/Forall.
type Formula interface {
	// FreeVars adds the free variables of the formula to the given set.
	freeVars(bound map[string]bool, out map[string]bool)
	// String renders the formula.
	String() string
	// eval evaluates the formula under the assignment env.
	eval(a *structure.Structure, env map[string]structure.Element) bool
	// rename applies a variable renaming to free variables.
	rename(sub map[string]string) Formula
}

// Atom is a relational atom R(x1, ..., xk).
type Atom struct {
	Rel  string
	Args []string
}

// Eq is an equality atom x = y.
type Eq struct {
	Left, Right string
}

// Truth is the boolean constant true or false.
type Truth struct {
	Value bool
}

// Not is negation.
type Not struct {
	Arg Formula
}

// And is conjunction of any number of formulas (true when empty).
type And struct {
	Args []Formula
}

// Or is disjunction of any number of formulas (false when empty).
type Or struct {
	Args []Formula
}

// Exists is existential quantification over a single variable.
type Exists struct {
	Var string
	Arg Formula
}

// Forall is universal quantification over a single variable.
type Forall struct {
	Var string
	Arg Formula
}

// Convenience constructors.

// R builds a relational atom.
func R(rel string, args ...string) Formula { return Atom{Rel: rel, Args: args} }

// Equal builds an equality atom.
func Equal(x, y string) Formula { return Eq{Left: x, Right: y} }

// True is the constant true formula.
func True() Formula { return Truth{Value: true} }

// False is the constant false formula.
func False() Formula { return Truth{Value: false} }

// Neg negates a formula.
func Neg(f Formula) Formula { return Not{Arg: f} }

// Conj builds a conjunction.
func Conj(fs ...Formula) Formula { return And{Args: fs} }

// Disj builds a disjunction.
func Disj(fs ...Formula) Formula { return Or{Args: fs} }

// Ex builds an existential quantification over one or more variables.
func Ex(vars []string, f Formula) Formula {
	for i := len(vars) - 1; i >= 0; i-- {
		f = Exists{Var: vars[i], Arg: f}
	}
	return f
}

// All builds a universal quantification over one or more variables.
func All(vars []string, f Formula) Formula {
	for i := len(vars) - 1; i >= 0; i-- {
		f = Forall{Var: vars[i], Arg: f}
	}
	return f
}

// FreeVars returns the sorted free variables of a formula.
func FreeVars(f Formula) []string {
	out := map[string]bool{}
	f.freeVars(map[string]bool{}, out)
	vars := make([]string, 0, len(out))
	for v := range out {
		vars = append(vars, v)
	}
	sort.Strings(vars)
	return vars
}

// Eval evaluates the formula on structure a under the variable assignment
// env (which must bind every free variable).
func Eval(f Formula, a *structure.Structure, env map[string]structure.Element) bool {
	return f.eval(a, env)
}

// Rename applies the variable substitution sub to the free variables of f.
// Bound variables are untouched; callers must ensure no capture occurs
// (internally, bound variables are always fresh).
func Rename(f Formula, sub map[string]string) Formula { return f.rename(sub) }

// IsQuantifierFree reports whether f contains no quantifiers.
func IsQuantifierFree(f Formula) bool {
	switch g := f.(type) {
	case Atom, Eq, Truth:
		return true
	case Not:
		return IsQuantifierFree(g.Arg)
	case And:
		for _, x := range g.Args {
			if !IsQuantifierFree(x) {
				return false
			}
		}
		return true
	case Or:
		for _, x := range g.Args {
			if !IsQuantifierFree(x) {
				return false
			}
		}
		return true
	case Exists, Forall:
		return false
	default:
		panic(fmt.Sprintf("logic: unknown formula type %T", f))
	}
}

// ---------------------------------------------------------------------------
// Atom
// ---------------------------------------------------------------------------

func (a Atom) freeVars(bound, out map[string]bool) {
	for _, v := range a.Args {
		if !bound[v] {
			out[v] = true
		}
	}
}

func (a Atom) String() string {
	return fmt.Sprintf("%s(%s)", a.Rel, strings.Join(a.Args, ","))
}

func (a Atom) eval(st *structure.Structure, env map[string]structure.Element) bool {
	tuple := make([]structure.Element, len(a.Args))
	for i, v := range a.Args {
		e, ok := env[v]
		if !ok {
			panic(fmt.Sprintf("logic: unbound variable %q in atom %s", v, a))
		}
		tuple[i] = e
	}
	return st.HasTuple(a.Rel, tuple...)
}

func (a Atom) rename(sub map[string]string) Formula {
	args := make([]string, len(a.Args))
	for i, v := range a.Args {
		if w, ok := sub[v]; ok {
			args[i] = w
		} else {
			args[i] = v
		}
	}
	return Atom{Rel: a.Rel, Args: args}
}

// ---------------------------------------------------------------------------
// Eq
// ---------------------------------------------------------------------------

func (e Eq) freeVars(bound, out map[string]bool) {
	if !bound[e.Left] {
		out[e.Left] = true
	}
	if !bound[e.Right] {
		out[e.Right] = true
	}
}

func (e Eq) String() string { return fmt.Sprintf("%s=%s", e.Left, e.Right) }

func (e Eq) eval(_ *structure.Structure, env map[string]structure.Element) bool {
	l, ok := env[e.Left]
	if !ok {
		panic(fmt.Sprintf("logic: unbound variable %q", e.Left))
	}
	r, ok := env[e.Right]
	if !ok {
		panic(fmt.Sprintf("logic: unbound variable %q", e.Right))
	}
	return l == r
}

func (e Eq) rename(sub map[string]string) Formula {
	l, r := e.Left, e.Right
	if w, ok := sub[l]; ok {
		l = w
	}
	if w, ok := sub[r]; ok {
		r = w
	}
	return Eq{Left: l, Right: r}
}

// ---------------------------------------------------------------------------
// Truth
// ---------------------------------------------------------------------------

func (t Truth) freeVars(_, _ map[string]bool) {}
func (t Truth) String() string {
	if t.Value {
		return "true"
	}
	return "false"
}
func (t Truth) eval(_ *structure.Structure, _ map[string]structure.Element) bool { return t.Value }
func (t Truth) rename(_ map[string]string) Formula                               { return t }

// ---------------------------------------------------------------------------
// Not
// ---------------------------------------------------------------------------

func (n Not) freeVars(bound, out map[string]bool) { n.Arg.freeVars(bound, out) }
func (n Not) String() string                      { return fmt.Sprintf("¬(%s)", n.Arg) }
func (n Not) eval(a *structure.Structure, env map[string]structure.Element) bool {
	return !n.Arg.eval(a, env)
}
func (n Not) rename(sub map[string]string) Formula { return Not{Arg: n.Arg.rename(sub)} }

// ---------------------------------------------------------------------------
// And / Or
// ---------------------------------------------------------------------------

func (c And) freeVars(bound, out map[string]bool) {
	for _, f := range c.Args {
		f.freeVars(bound, out)
	}
}
func (c And) String() string { return joinFormulas(c.Args, " ∧ ", "true") }
func (c And) eval(a *structure.Structure, env map[string]structure.Element) bool {
	for _, f := range c.Args {
		if !f.eval(a, env) {
			return false
		}
	}
	return true
}
func (c And) rename(sub map[string]string) Formula {
	args := make([]Formula, len(c.Args))
	for i, f := range c.Args {
		args[i] = f.rename(sub)
	}
	return And{Args: args}
}

func (d Or) freeVars(bound, out map[string]bool) {
	for _, f := range d.Args {
		f.freeVars(bound, out)
	}
}
func (d Or) String() string { return joinFormulas(d.Args, " ∨ ", "false") }
func (d Or) eval(a *structure.Structure, env map[string]structure.Element) bool {
	for _, f := range d.Args {
		if f.eval(a, env) {
			return true
		}
	}
	return false
}
func (d Or) rename(sub map[string]string) Formula {
	args := make([]Formula, len(d.Args))
	for i, f := range d.Args {
		args[i] = f.rename(sub)
	}
	return Or{Args: args}
}

func joinFormulas(fs []Formula, sep, empty string) string {
	if len(fs) == 0 {
		return empty
	}
	parts := make([]string, len(fs))
	for i, f := range fs {
		parts[i] = "(" + f.String() + ")"
	}
	return strings.Join(parts, sep)
}

// ---------------------------------------------------------------------------
// Quantifiers
// ---------------------------------------------------------------------------

func (e Exists) freeVars(bound, out map[string]bool) {
	inner := copyBound(bound)
	inner[e.Var] = true
	e.Arg.freeVars(inner, out)
}
func (e Exists) String() string { return fmt.Sprintf("∃%s.(%s)", e.Var, e.Arg) }
func (e Exists) eval(a *structure.Structure, env map[string]structure.Element) bool {
	saved, had := env[e.Var]
	defer restore(env, e.Var, saved, had)
	for x := 0; x < a.N; x++ {
		env[e.Var] = x
		if e.Arg.eval(a, env) {
			return true
		}
	}
	return false
}
func (e Exists) rename(sub map[string]string) Formula {
	inner := copySubWithout(sub, e.Var)
	return Exists{Var: e.Var, Arg: e.Arg.rename(inner)}
}

func (u Forall) freeVars(bound, out map[string]bool) {
	inner := copyBound(bound)
	inner[u.Var] = true
	u.Arg.freeVars(inner, out)
}
func (u Forall) String() string { return fmt.Sprintf("∀%s.(%s)", u.Var, u.Arg) }
func (u Forall) eval(a *structure.Structure, env map[string]structure.Element) bool {
	saved, had := env[u.Var]
	defer restore(env, u.Var, saved, had)
	for x := 0; x < a.N; x++ {
		env[u.Var] = x
		if !u.Arg.eval(a, env) {
			return false
		}
	}
	return true
}
func (u Forall) rename(sub map[string]string) Formula {
	inner := copySubWithout(sub, u.Var)
	return Forall{Var: u.Var, Arg: u.Arg.rename(inner)}
}

func copyBound(bound map[string]bool) map[string]bool {
	out := make(map[string]bool, len(bound)+1)
	for k, v := range bound {
		out[k] = v
	}
	return out
}

func copySubWithout(sub map[string]string, v string) map[string]string {
	out := make(map[string]string, len(sub))
	for k, w := range sub {
		if k != v {
			out[k] = w
		}
	}
	return out
}

func restore(env map[string]structure.Element, v string, saved structure.Element, had bool) {
	if had {
		env[v] = saved
	} else {
		delete(env, v)
	}
}

// ---------------------------------------------------------------------------
// Naive model checking / answer enumeration (reference baseline)
// ---------------------------------------------------------------------------

// Answers materialises all answers of ϕ(vars) on a by brute force, in the
// order of increasing tuples.  It is the reference implementation used to
// validate the compiled evaluators and enumerators; its complexity is
// O(N^|vars| · |ϕ| · N^quantifier-depth).
func Answers(f Formula, a *structure.Structure, vars []string) []structure.Tuple {
	env := map[string]structure.Element{}
	var out []structure.Tuple
	var rec func(i int)
	rec = func(i int) {
		if i == len(vars) {
			if f.eval(a, env) {
				t := make(structure.Tuple, len(vars))
				for j, v := range vars {
					t[j] = env[v]
				}
				out = append(out, t)
			}
			return
		}
		for x := 0; x < a.N; x++ {
			env[vars[i]] = x
			rec(i + 1)
		}
		delete(env, vars[i])
	}
	rec(0)
	return out
}

// CollectAtoms returns every relational or equality atom occurring in f, in
// a deterministic order (left-to-right, duplicates removed).
func CollectAtoms(f Formula) []Formula {
	var atoms []Formula
	seen := map[string]bool{}
	var rec func(g Formula)
	rec = func(g Formula) {
		switch h := g.(type) {
		case Atom, Eq:
			key := g.String()
			if !seen[key] {
				seen[key] = true
				atoms = append(atoms, g)
			}
		case Truth:
		case Not:
			rec(h.Arg)
		case And:
			for _, x := range h.Args {
				rec(x)
			}
		case Or:
			for _, x := range h.Args {
				rec(x)
			}
		case Exists:
			rec(h.Arg)
		case Forall:
			rec(h.Arg)
		default:
			panic(fmt.Sprintf("logic: unknown formula type %T", g))
		}
	}
	rec(f)
	return atoms
}

// EvalUnderAtoms evaluates a quantifier-free formula given truth values for
// its atoms (keyed by Formula.String()).  It is used by the exclusive-DNF
// expansion of the expression normaliser.
func EvalUnderAtoms(f Formula, truth map[string]bool) bool {
	switch g := f.(type) {
	case Atom, Eq:
		return truth[f.String()]
	case Truth:
		return g.Value
	case Not:
		return !EvalUnderAtoms(g.Arg, truth)
	case And:
		for _, x := range g.Args {
			if !EvalUnderAtoms(x, truth) {
				return false
			}
		}
		return true
	case Or:
		for _, x := range g.Args {
			if EvalUnderAtoms(x, truth) {
				return true
			}
		}
		return false
	default:
		panic(fmt.Sprintf("logic: EvalUnderAtoms on quantified or unknown formula %T", f))
	}
}
