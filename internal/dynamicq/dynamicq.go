// Package dynamicq provides the user-facing dynamic query evaluation of
// Theorem 8 (and the update side of Theorem 24): after linear-time
// preprocessing of a sparse database, the value of a weighted query can be
// read at any tuple of the free variables, and both the weights and the
// tuples of designated dynamic relations can be updated, with logarithmic
// cost in general and constant cost over rings and finite semirings.
package dynamicq

import (
	"fmt"
	"time"

	"repro/internal/circuit"
	"repro/internal/compile"
	"repro/internal/expr"
	"repro/internal/semiring"
	"repro/internal/structure"
)

// freeVarWeightPrefix names the fresh unary weight symbols v_1, ..., v_k
// introduced by the free-variable reduction in the proof of Theorem 8.
const freeVarWeightPrefix = ".fv:"

// Query is a compiled weighted query f(x̄) over a structure, ready for
// evaluation, point queries and updates in a fixed semiring.
//
// # Goroutine safety
//
// A Query is a single-writer object: Value, SetWeight, SetTuple and
// ApplyBatch mutate the underlying dynamic evaluator and must be serialised
// by the caller (the agg layer does this with a fail-fast writer lock).
// Concurrent *reads* go through Snapshot, which pins the current committed
// epoch: any number of snapshots may evaluate point queries concurrently
// with each other and with the single writer, without ever blocking it.
type Query[T any] struct {
	s       semiring.Semiring[T]
	res     *compile.Result
	dyn     *circuit.Dynamic[T]
	weights *structure.Weights[T]
	free    []string
	// fvKeys[i][a] is the precomputed weight key of the fresh unary symbol
	// v_i at element a, so point queries never rebuild keys with Sprintf.
	fvKeys [][]structure.WeightKey
	// relation membership shadowing the dynamic relations of the circuit.
	relState map[string]map[string]bool
	// scratch is the reusable leaf-change buffer behind ApplyBatch.
	scratch []circuit.InputChange[T]
	// point is the reusable override buffer behind Value's point queries.
	point []circuit.InputChange[T]
}

// Shared is the semiring-agnostic half of a compiled query: the circuit of
// the closed expression (Theorem 6) plus the free-variable bookkeeping of
// the Theorem 8 reduction.  One Shared may back any number of Query
// instances, possibly in different semirings; instantiating a Query through
// NewQuery costs only the dynamic-evaluator state, not a recompilation.
// A Shared itself is immutable after CompileShared and safe for concurrent
// use by multiple goroutines.
type Shared struct {
	res  *compile.Result
	free []string
}

// FreeVars returns the query's free variables in the order expected by
// Query.Value.
func (sh *Shared) FreeVars() []string { return append([]string(nil), sh.free...) }

// Result exposes the underlying compilation result.
func (sh *Shared) Result() *compile.Result { return sh.res }

// CompileShared performs the expensive, semiring-independent part of
// CompileQuery: closing the expression over its free variables and compiling
// it into a circuit.
func CompileShared(a *structure.Structure, e expr.Expr, opts compile.Options) (*Shared, error) {
	free := expr.FreeVars(e)

	// Close the expression: f' = Σ_x̄ f(x̄) · v_1(x_1) ··· v_k(x_k), where the
	// v_i are fresh unary weight symbols that default to 0 (Theorem 8).
	closed := e
	sig := a.Sig
	if len(free) > 0 {
		var extra []structure.WeightSymbol
		factors := []expr.Expr{e}
		for i, v := range free {
			name := fmt.Sprintf("%s%d", freeVarWeightPrefix, i)
			extra = append(extra, structure.WeightSymbol{Name: name, Arity: 1})
			factors = append(factors, expr.W(name, v))
		}
		var err error
		sig, err = a.Sig.WithWeights(extra...)
		if err != nil {
			return nil, fmt.Errorf("dynamicq: extending signature: %w", err)
		}
		closed = expr.Agg(free, expr.Times(factors...))
	}

	// Re-home the structure onto the extended signature if needed.
	base := a
	if sig != a.Sig {
		base = structure.NewStructure(sig, a.N)
		for _, r := range a.Sig.Relations {
			for _, t := range a.Tuples(r.Name) {
				base.MustAddTuple(r.Name, t...)
			}
		}
	}

	res, err := compile.Compile(base, closed, opts)
	if err != nil {
		return nil, err
	}
	// Pre-build the lazily cached Gaifman graph so that concurrent sessions
	// sharing this compilation can run Gaifman-preservation checks without
	// racing on the first construction.
	res.Structure.Gaifman()
	return &Shared{res: res, free: free}, nil
}

// NewQuery instantiates a compiled query in the semiring s under the initial
// weight assignment w.  The query keeps a reference to w and records
// SetWeight updates into it; pass a fresh copy when the caller's assignment
// must stay untouched.  Many queries may be built from one Shared; each gets
// independent update state.
func NewQuery[T any](s semiring.Semiring[T], sh *Shared, w *structure.Weights[T]) *Query[T] {
	if w == nil {
		w = structure.NewWeights[T]()
	}
	res := sh.res
	q := &Query[T]{
		s:        s,
		res:      res,
		weights:  w,
		free:     sh.FreeVars(),
		relState: map[string]map[string]bool{},
	}
	for rel := range res.DynamicRelations {
		state := map[string]bool{}
		for _, t := range res.Structure.Tuples(rel) {
			state[t.Key()] = true
		}
		q.relState[rel] = state
	}
	// Precompute the point-query keys for every (free variable, element)
	// pair: this linear-time pass removes the 2k Sprintf allocations that a
	// point query would otherwise pay on its hot path.
	q.fvKeys = make([][]structure.WeightKey, len(q.free))
	for i := range q.free {
		name := fmt.Sprintf("%s%d", freeVarWeightPrefix, i)
		keys := make([]structure.WeightKey, res.Structure.N)
		for a := 0; a < res.Structure.N; a++ {
			keys[a] = structure.MakeWeightKey(name, structure.Tuple{a})
		}
		q.fvKeys[i] = keys
	}
	// Every session instantiated from this Shared borrows the same frozen
	// Program: the ranks, parents CSR and children arena are shared, only the
	// per-session values and maintenance state below are private.
	q.dyn = circuit.NewDynamicProgram(res.Program, s, compile.NewValuation(res, s, w))
	return q
}

// fvKey returns the weight key of the fresh unary symbol v_i at element a,
// from the precomputed table when a is a structure element and built on the
// fly otherwise (out-of-universe arguments address no input gate and are
// ignored by the evaluator either way).
func (q *Query[T]) fvKey(i int, a structure.Element) structure.WeightKey {
	if keys := q.fvKeys[i]; a >= 0 && a < len(keys) {
		return keys[a]
	}
	return structure.MakeWeightKey(fmt.Sprintf("%s%d", freeVarWeightPrefix, i), structure.Tuple{a})
}

// CompileQuery compiles the weighted expression e, whose free variables
// (if any) become query parameters, over the structure a.  The weights w
// provide the initial valuation.  Equivalent to CompileShared followed by
// NewQuery.
func CompileQuery[T any](s semiring.Semiring[T], a *structure.Structure, w *structure.Weights[T], e expr.Expr, opts compile.Options) (*Query[T], error) {
	sh, err := CompileShared(a, e, opts)
	if err != nil {
		return nil, err
	}
	return NewQuery(s, sh, w), nil
}

// SetWaveHook installs (or, with nil, removes) a listener receiving the
// duration of each propagation wave of this session's dynamic evaluator;
// see circuit.Dynamic.SetWaveHook.  With no hook installed the update path
// performs no clock reads.
func (q *Query[T]) SetWaveHook(f func(time.Duration)) { q.dyn.SetWaveHook(f) }

// FreeVars returns the query's free variables in the order expected by
// Value.
func (q *Query[T]) FreeVars() []string { return append([]string(nil), q.free...) }

// Result exposes the underlying compilation result (circuit statistics,
// colouring, normalised polynomial).
func (q *Query[T]) Result() *compile.Result { return q.res }

// ValueClosed returns the value of a closed query (no free variables).
func (q *Query[T]) ValueClosed() (T, error) {
	var zero T
	if len(q.free) != 0 {
		return zero, fmt.Errorf("dynamicq: query has free variables %v; use Value", q.free)
	}
	return q.dyn.Value(), nil
}

// Value returns the value of the query at the given tuple of the free
// variables.  Following the proof of Theorem 8, the point query is simulated
// by k temporary weight updates: the fresh weights v_i are raised to 1 at
// the queried elements, the output is read, and the weights are reset — all
// under one exclusive critical section of the evaluator, so concurrent
// snapshots never observe the transient toggles.
func (q *Query[T]) Value(args ...structure.Element) (T, error) {
	var zero T
	if len(args) != len(q.free) {
		return zero, fmt.Errorf("dynamicq: query has %d free variables, got %d arguments", len(q.free), len(args))
	}
	if len(args) == 0 {
		return q.dyn.Value(), nil
	}
	q.point = q.point[:0]
	for i, a := range args {
		q.point = append(q.point, circuit.InputChange[T]{Key: q.fvKey(i, a), Value: q.s.One()})
	}
	return q.dyn.EvalWith(q.point), nil
}

// validateWeight checks that a weight symbol exists with the tuple's arity.
func (q *Query[T]) validateWeight(weight string, tuple structure.Tuple) error {
	decl, ok := q.res.Structure.Sig.Weight(weight)
	if !ok {
		return fmt.Errorf("unknown weight symbol %q", weight)
	}
	if decl.Arity != len(tuple) {
		return fmt.Errorf("weight %q has arity %d, got tuple of length %d", weight, decl.Arity, len(tuple))
	}
	return nil
}

// validateTuple checks that a relation update targets a declared dynamic
// relation with the right arity and, for insertions, preserves the Gaifman
// graph of the compiled structure (Theorem 24's update model).
func (q *Query[T]) validateTuple(rel string, tuple structure.Tuple, present bool) error {
	if !q.res.DynamicRelations[rel] {
		return fmt.Errorf("relation %q was not declared dynamic at compile time", rel)
	}
	decl, _ := q.res.Structure.Sig.Relation(rel)
	if decl.Arity != len(tuple) {
		return fmt.Errorf("relation %q has arity %d, got tuple of length %d", rel, decl.Arity, len(tuple))
	}
	if present {
		g := q.res.Structure.Gaifman()
		for i := 0; i < len(tuple); i++ {
			for j := i + 1; j < len(tuple); j++ {
				if tuple[i] != tuple[j] && !g.HasEdge(tuple[i], tuple[j]) {
					return fmt.Errorf("inserting %s%v would change the Gaifman graph (elements %d and %d are not adjacent); only Gaifman-preserving updates are supported", rel, tuple, tuple[i], tuple[j])
				}
			}
		}
	}
	return nil
}

// SetWeight updates the weight w(tuple) to the given value.
func (q *Query[T]) SetWeight(weight string, tuple structure.Tuple, value T) error {
	if err := q.validateWeight(weight, tuple); err != nil {
		return fmt.Errorf("dynamicq: %w", err)
	}
	q.weights.Set(weight, tuple, value)
	q.dyn.SetInput(structure.MakeWeightKey(weight, tuple), value)
	return nil
}

// SetTuple inserts (present=true) or removes (present=false) a tuple of a
// dynamic relation.  The update must preserve the Gaifman graph: the
// elements of the tuple must already form a clique in the Gaifman graph of
// the compiled structure (Theorem 24's update model).
func (q *Query[T]) SetTuple(rel string, tuple structure.Tuple, present bool) error {
	if err := q.validateTuple(rel, tuple, present); err != nil {
		return fmt.Errorf("dynamicq: %w", err)
	}
	q.applyTuple(rel, tuple, present)
	return nil
}

func (q *Query[T]) applyTuple(rel string, tuple structure.Tuple, present bool) {
	q.relState[rel][tuple.Key()] = present
	pos, neg := compile.RelationInputKeys(rel, tuple)
	// Both membership inputs land in one batch so the epoch commits once per
	// tuple update and a snapshot can never pin a half-toggled tuple.
	leaf := append(q.scratch[:0],
		circuit.InputChange[T]{Key: pos, Value: semiring.Iverson(q.s, present)},
		circuit.InputChange[T]{Key: neg, Value: semiring.Iverson(q.s, !present)})
	q.dyn.ApplyBatch(leaf)
	clear(leaf)
	q.scratch = leaf[:0]
}

// Change is one element of an ApplyBatch batch: a weight update (Weight
// non-empty: Weight(Tuple) takes Value) or a dynamic-relation update (Rel
// non-empty: membership of Tuple becomes Present).  Exactly one of Weight
// and Rel must be set.
type Change[T any] struct {
	Weight  string
	Rel     string
	Tuple   structure.Tuple
	Value   T
	Present bool
}

// WeightChange builds a weight update for ApplyBatch.
func WeightChange[T any](weight string, tuple structure.Tuple, value T) Change[T] {
	return Change[T]{Weight: weight, Tuple: tuple, Value: value}
}

// TupleChange builds a dynamic-relation update for ApplyBatch.
func TupleChange[T any](rel string, tuple structure.Tuple, present bool) Change[T] {
	return Change[T]{Rel: rel, Tuple: tuple, Present: present}
}

// ApplyBatch applies a mixed batch of weight and tuple changes atomically:
// every change is validated up front and either the whole batch is applied
// or none of it is.  All leaf inputs are written first and a single
// propagation wave then refreshes the circuit in rank order (see
// circuit.Dynamic.ApplyBatch), so gates shared by several changes are
// recomputed once per batch and repeated changes to the same key coalesce
// with the last value winning.  The result is observationally identical to
// applying the changes one at a time through SetWeight/SetTuple.
func (q *Query[T]) ApplyBatch(changes []Change[T]) error {
	// Validation pass: the batch is all-or-nothing.
	for i, ch := range changes {
		switch {
		case ch.Weight != "" && ch.Rel != "":
			return fmt.Errorf("dynamicq: batch change %d names both weight %q and relation %q", i, ch.Weight, ch.Rel)
		case ch.Weight != "":
			if err := q.validateWeight(ch.Weight, ch.Tuple); err != nil {
				return fmt.Errorf("dynamicq: batch change %d: %w", i, err)
			}
		case ch.Rel != "":
			if err := q.validateTuple(ch.Rel, ch.Tuple, ch.Present); err != nil {
				return fmt.Errorf("dynamicq: batch change %d: %w", i, err)
			}
		default:
			return fmt.Errorf("dynamicq: batch change %d names neither a weight nor a relation", i)
		}
	}
	// Record the updates and translate them into leaf changes for one wave.
	leaf := q.scratch[:0]
	for _, ch := range changes {
		if ch.Weight != "" {
			q.weights.Set(ch.Weight, ch.Tuple, ch.Value)
			leaf = append(leaf, circuit.InputChange[T]{Key: structure.MakeWeightKey(ch.Weight, ch.Tuple), Value: ch.Value})
			continue
		}
		q.relState[ch.Rel][ch.Tuple.Key()] = ch.Present
		pos, neg := compile.RelationInputKeys(ch.Rel, ch.Tuple)
		leaf = append(leaf,
			circuit.InputChange[T]{Key: pos, Value: semiring.Iverson(q.s, ch.Present)},
			circuit.InputChange[T]{Key: neg, Value: semiring.Iverson(q.s, !ch.Present)})
	}
	q.dyn.ApplyBatch(leaf)
	// Zero the elements before truncating so the retained backing array does
	// not pin the batch's keys and semiring values (e.g. provenance
	// polynomials) until the next large batch.
	clear(leaf)
	q.scratch = leaf[:0]
	return nil
}

// HasTuple reports the current membership of a tuple in a dynamic relation
// (tracking the updates applied so far).
func (q *Query[T]) HasTuple(rel string, tuple structure.Tuple) bool {
	if state, ok := q.relState[rel]; ok {
		if v, ok := state[tuple.Key()]; ok {
			return v
		}
		return false
	}
	return q.res.Structure.HasTuple(rel, tuple...)
}
