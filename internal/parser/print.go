package parser

import (
	"fmt"
	"strings"

	"repro/internal/expr"
	"repro/internal/logic"
)

// FormatExpr renders a weighted expression in the plain ASCII surface syntax
// accepted by ParseExpr.  The output round-trips: parsing it yields an
// expression with the same semantics (and the same structure up to
// flattening of nested sums of sums and products of products).
func FormatExpr(e expr.Expr) string {
	var b strings.Builder
	writeExpr(&b, e, precAdd)
	return b.String()
}

// FormatFormula renders a first-order formula in the plain ASCII surface
// syntax accepted by ParseFormula.
func FormatFormula(f logic.Formula) string {
	var b strings.Builder
	writeFormula(&b, f, precOr)
	return b.String()
}

// Operator precedence levels, loosest first.
const (
	precAdd = iota
	precMul
	precUnary
)

const (
	precOr = iota
	precAnd
	precNot
)

func writeExpr(b *strings.Builder, e expr.Expr, ctx int) {
	switch t := e.(type) {
	case expr.Const:
		fmt.Fprintf(b, "%d", t.N)
	case expr.Weight:
		b.WriteString(t.W)
		b.WriteString("(")
		b.WriteString(strings.Join(t.Args, ", "))
		b.WriteString(")")
	case expr.Bracket:
		b.WriteString("[")
		writeFormula(b, t.F, precOr)
		b.WriteString("]")
	case expr.Add:
		if len(t.Args) == 0 {
			b.WriteString("0")
			return
		}
		parens := ctx > precAdd
		if parens {
			b.WriteString("(")
		}
		for i, a := range t.Args {
			if i > 0 {
				b.WriteString(" + ")
			}
			writeExpr(b, a, precMul)
		}
		if parens {
			b.WriteString(")")
		}
	case expr.Mul:
		if len(t.Args) == 0 {
			b.WriteString("1")
			return
		}
		parens := ctx > precMul
		if parens {
			b.WriteString("(")
		}
		for i, a := range t.Args {
			if i > 0 {
				b.WriteString(" * ")
			}
			writeExpr(b, a, precUnary)
		}
		if parens {
			b.WriteString(")")
		}
	case expr.Sum:
		// Aggregation extends maximally to the right, so parenthesise the
		// whole construct whenever it appears inside another operator.
		parens := ctx > precAdd
		if parens {
			b.WriteString("(")
		}
		b.WriteString("sum ")
		b.WriteString(strings.Join(t.Vars, ", "))
		b.WriteString(" . ")
		writeExpr(b, t.Arg, precAdd)
		if parens {
			b.WriteString(")")
		}
	default:
		// Fall back to the expression's own notation; it is also accepted by
		// the parser.
		b.WriteString(fmt.Sprintf("%v", e))
	}
}

func writeFormula(b *strings.Builder, f logic.Formula, ctx int) {
	switch t := f.(type) {
	case logic.Truth:
		if t.Value {
			b.WriteString("true")
		} else {
			b.WriteString("false")
		}
	case logic.Atom:
		b.WriteString(t.Rel)
		b.WriteString("(")
		b.WriteString(strings.Join(t.Args, ", "))
		b.WriteString(")")
	case logic.Eq:
		b.WriteString(t.Left)
		b.WriteString(" = ")
		b.WriteString(t.Right)
	case logic.Not:
		// Render ¬(x = y) as the more idiomatic x != y.
		if eq, ok := t.Arg.(logic.Eq); ok {
			b.WriteString(eq.Left)
			b.WriteString(" != ")
			b.WriteString(eq.Right)
			return
		}
		b.WriteString("!")
		writeFormula(b, t.Arg, precNot)
	case logic.And:
		if len(t.Args) == 0 {
			b.WriteString("true")
			return
		}
		parens := ctx > precAnd
		if parens {
			b.WriteString("(")
		}
		for i, a := range t.Args {
			if i > 0 {
				b.WriteString(" & ")
			}
			writeFormula(b, a, precNot)
		}
		if parens {
			b.WriteString(")")
		}
	case logic.Or:
		if len(t.Args) == 0 {
			b.WriteString("false")
			return
		}
		parens := ctx > precOr
		if parens {
			b.WriteString("(")
		}
		for i, a := range t.Args {
			if i > 0 {
				b.WriteString(" | ")
			}
			writeFormula(b, a, precAnd)
		}
		if parens {
			b.WriteString(")")
		}
	case logic.Exists:
		parens := ctx > precOr
		if parens {
			b.WriteString("(")
		}
		b.WriteString("exists ")
		b.WriteString(t.Var)
		b.WriteString(" . ")
		writeFormula(b, t.Arg, precOr)
		if parens {
			b.WriteString(")")
		}
	case logic.Forall:
		parens := ctx > precOr
		if parens {
			b.WriteString("(")
		}
		b.WriteString("forall ")
		b.WriteString(t.Var)
		b.WriteString(" . ")
		writeFormula(b, t.Arg, precOr)
		if parens {
			b.WriteString(")")
		}
	default:
		b.WriteString(fmt.Sprintf("%v", f))
	}
}
