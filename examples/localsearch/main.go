// Local search via dynamic enumeration (Example 25 of the paper), driven
// entirely through the public facade: prepare an improvement query with
// dynamic solution predicates, then repeatedly ask Prepared.Search for a
// local improvement and commit each round's updates as one batched wave.
// Each round costs constant time, so the whole search is linear.
//
//	go run ./examples/localsearch
package main

import (
	"context"
	"fmt"
	"time"

	"repro/agg"
)

func main() {
	ctx := context.Background()
	// The "search" workload is an undirected bounded-degree graph with the
	// initially-empty solution predicates S (selected), B (blocked) and D
	// (dominated).
	db, err := agg.Generate("search", 6400, 3)
	must(err)
	eng := agg.Open(db)

	// Undirected adjacency for the update steps.
	neighbors := map[int][]int{}
	edges := 0
	for _, e := range db.Tuples("E") {
		neighbors[e[0]] = append(neighbors[e[0]], e[1])
		edges++
	}
	fmt.Printf("graph: %d vertices, %d edges\n", db.Elements(), edges/2)

	// Maximal independent set: a vertex that is neither selected nor blocked
	// can be added; adding it blocks its whole neighbourhood.
	runSearch(ctx, eng, "maximal independent set", "!S(x) & !B(x)",
		[]string{"S", "B"}, func(v int) []agg.Change {
			changes := []agg.Change{
				{Rel: "S", Tuple: []int{v}, Present: true},
				{Rel: "B", Tuple: []int{v}, Present: true},
			}
			for _, u := range neighbors[v] {
				changes = append(changes, agg.Change{Rel: "B", Tuple: []int{u}, Present: true})
			}
			return changes
		}, func(solution map[int]bool) {
			for v, in := range solution {
				for _, u := range neighbors[v] {
					if in && solution[u] {
						panic("not an independent set")
					}
				}
			}
		})

	// Dominating set: an undominated vertex joins the solution and dominates
	// its closed neighbourhood.
	runSearch(ctx, eng, "dominating set", "!D(x)",
		[]string{"S", "D"}, func(v int) []agg.Change {
			changes := []agg.Change{
				{Rel: "S", Tuple: []int{v}, Present: true},
				{Rel: "D", Tuple: []int{v}, Present: true},
			}
			for _, u := range neighbors[v] {
				changes = append(changes, agg.Change{Rel: "D", Tuple: []int{u}, Present: true})
			}
			return changes
		}, func(solution map[int]bool) {
			for v := range neighbors {
				dominated := solution[v]
				for _, u := range neighbors[v] {
					dominated = dominated || solution[u]
				}
				if !dominated {
					panic("not a dominating set")
				}
			}
		})
}

// runSearch prepares the improvement query, loops it to a local optimum with
// one batched update wave per round, verifies the solution and reports cost.
func runSearch(ctx context.Context, eng *agg.Engine, name, phi string,
	dynamic []string, step func(v int) []agg.Change, verify func(map[int]bool)) {
	start := time.Now()
	p, err := eng.Prepare(ctx, phi, agg.WithDynamic(dynamic...))
	must(err)
	preprocess := time.Since(start)

	s, err := p.Search()
	must(err)
	solution := map[int]bool{}
	start = time.Now()
	rounds, err := s.Run(ctx, func(ans agg.Answer) []agg.Change {
		solution[ans[0]] = true
		return step(ans[0])
	})
	must(err)
	search := time.Since(start)
	verify(solution)

	perRound := 0.0
	if rounds > 0 {
		perRound = float64(search.Microseconds()) / float64(rounds)
	}
	fmt.Printf("%s:\n", name)
	fmt.Printf("  preprocessing: %v\n", preprocess)
	fmt.Printf("  search:        %v for %d rounds (%.1fµs per round)\n", search, rounds, perRound)
	fmt.Printf("  solution size: %d (remaining improvements: %d)\n", len(solution), s.Remaining())
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}
