package circuit

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"testing"

	"repro/internal/semiring"
	"repro/internal/structure"
)

// TestSnapshotResolvesPinnedEpoch pins snapshots at several points of an
// update stream and checks that each keeps answering with the values of its
// own epoch — output and interior gates alike — no matter how far the writer
// has moved on.  All three maintenance strategies are exercised.
func TestSnapshotResolvesPinnedEpoch(t *testing.T) {
	n := 4
	c := buildTriangleLike(n)
	r := rand.New(rand.NewSource(41))

	type pinned struct {
		snap  *DynSnapshot[int64]
		value int64
		gates map[int]int64
	}

	for _, tc := range []struct {
		name string
		s    semiring.Semiring[int64]
		draw func() int64
	}{
		{"Nat-generic", semiring.Nat, func() int64 { return int64(r.Intn(5)) }},
		{"Int-ring", semiring.Int, func() int64 { return int64(r.Intn(9) - 4) }},
		{"Mod7-finite", semiring.NewModular(7), func() int64 { return int64(r.Intn(7)) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			vals := map[structure.WeightKey]int64{}
			val := func(k structure.WeightKey) (int64, bool) { v, ok := vals[k]; return v, ok }
			d := NewDynamic[int64](c, tc.s, val)
			prog := d.p

			var pins []pinned
			record := func() {
				sn := d.Snapshot()
				p := pinned{snap: sn, value: d.Value(), gates: map[int]int64{}}
				for g := 0; g < prog.NumGates(); g += 3 {
					p.gates[g] = d.GateValue(g)
				}
				pins = append(pins, p)
			}

			record() // initial state
			for step := 0; step < 60; step++ {
				k := key([]string{"u", "v", "w"}[r.Intn(3)], r.Intn(n))
				vals[k] = tc.draw()
				d.SetInput(k, vals[k])
				if step%17 == 0 {
					record()
				}
			}

			for i, p := range pins {
				if got := p.snap.Value(); !tc.s.Equal(got, p.value) {
					t.Errorf("pin %d (epoch %d): Value = %d, want %d", i, p.snap.Epoch(), got, p.value)
				}
				for g, want := range p.gates {
					if got := p.snap.GateValue(g); !tc.s.Equal(got, want) {
						t.Errorf("pin %d gate %d: %d, want %d", i, g, got, want)
					}
				}
			}
			// Release in a scrambled order; later snapshots must survive the
			// truncation that follows each release.
			for _, i := range r.Perm(len(pins)) {
				pins[i].snap.Release()
				for j, p := range pins {
					if p.snap.released {
						continue
					}
					if got := p.snap.Value(); !tc.s.Equal(got, p.value) {
						t.Errorf("after releasing pin %d, pin %d resolves %d, want %d", i, j, got, p.value)
					}
				}
			}
			if got := d.RetainedUndoBytes(); got != 0 {
				t.Errorf("retained undo bytes %d after all snapshots released, want 0", got)
			}
		})
	}
}

// TestSnapshotEvalWithMatchesReference runs point-query style overrides on a
// pinned snapshot while the writer keeps mutating, checking the overlay wave
// against a from-scratch evaluation of the pinned state + overrides.
func TestSnapshotEvalWithMatchesReference(t *testing.T) {
	n := 4
	c := buildTriangleLike(n)
	r := rand.New(rand.NewSource(43))

	for _, tc := range []struct {
		name string
		s    semiring.Semiring[int64]
		draw func() int64
	}{
		{"Nat-generic", semiring.Nat, func() int64 { return int64(r.Intn(5)) }},
		{"Int-ring", semiring.Int, func() int64 { return int64(r.Intn(9) - 4) }},
		{"Mod7-finite", semiring.NewModular(7), func() int64 { return int64(r.Intn(7)) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			vals := map[structure.WeightKey]int64{}
			for a := 0; a < n; a++ {
				for _, w := range []string{"u", "v", "w"} {
					vals[key(w, a)] = tc.draw()
				}
			}
			val := func(k structure.WeightKey) (int64, bool) { v, ok := vals[k]; return v, ok }
			d := NewDynamic[int64](c, tc.s, val)

			// Pin, remember the pinned assignment, then let the writer move on.
			snap := d.Snapshot()
			defer snap.Release()
			pinnedVals := map[structure.WeightKey]int64{}
			for k, v := range vals {
				pinnedVals[k] = v
			}
			for step := 0; step < 25; step++ {
				k := key([]string{"u", "v", "w"}[r.Intn(3)], r.Intn(n))
				vals[k] = tc.draw()
				d.SetInput(k, vals[k])
			}

			for trial := 0; trial < 20; trial++ {
				over := map[structure.WeightKey]int64{}
				var changes []InputChange[int64]
				for i := 0; i < 1+r.Intn(3); i++ {
					k := key([]string{"u", "v", "w"}[r.Intn(3)], r.Intn(n))
					v := tc.draw()
					over[k] = v
					changes = append(changes, InputChange[int64]{Key: k, Value: v})
				}
				refVal := func(k structure.WeightKey) (int64, bool) {
					if v, ok := over[k]; ok {
						return v, true
					}
					v, ok := pinnedVals[k]
					return v, ok
				}
				want := Evaluate[int64](c, tc.s, refVal)
				if got := snap.EvalWith(changes); !tc.s.Equal(got, want) {
					t.Fatalf("trial %d: snapshot EvalWith = %d, reference = %d", trial, got, want)
				}
				// Repeated use of one handle must not leak overlay state.
				if got := snap.Value(); !tc.s.Equal(got, Evaluate[int64](c, tc.s, func(k structure.WeightKey) (int64, bool) {
					v, ok := pinnedVals[k]
					return v, ok
				})) {
					t.Fatalf("trial %d: snapshot Value drifted after EvalWith", trial)
				}
			}
		})
	}
}

// TestSnapshotConcurrentReadersObserveCommittedEpochs is the race-enabled
// stress test of the MVCC contract at the circuit layer: one writer streams
// single-input commits while several reader goroutines pin snapshots and
// check the resolved output against the sequential oracle recorded for their
// pinned epoch.
func TestSnapshotConcurrentReadersObserveCommittedEpochs(t *testing.T) {
	n := 4
	c := buildTriangleLike(n)
	vals := map[structure.WeightKey]int64{}
	val := func(k structure.WeightKey) (int64, bool) { v, ok := vals[k]; return v, ok }
	d := NewDynamic[int64](c, semiring.Nat, val)

	const (
		updates = 150
		readers = 4
	)
	var oracle sync.Map // epoch → expected output value
	oracle.Store(d.Epoch(), d.Value())

	var wg sync.WaitGroup
	done := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(done)
		r := rand.New(rand.NewSource(7))
		for i := 0; i < updates; i++ {
			k := key([]string{"u", "v", "w"}[r.Intn(3)], r.Intn(n))
			vals2 := int64(r.Intn(5))
			d.SetInput(k, vals2)
			// The oracle entry lands after the commit; readers that pinned
			// this epoch first spin until it appears.
			oracle.Store(d.Epoch(), d.Value())
		}
	}()

	errs := make(chan error, readers)
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-done:
					return
				default:
				}
				snap := d.Snapshot()
				got := snap.Value()
				var want any
				for {
					var ok bool
					if want, ok = oracle.Load(snap.Epoch()); ok {
						break
					}
					runtime.Gosched()
				}
				if got != want.(int64) {
					errs <- errf("reader %d at epoch %d: snapshot value %d, oracle %d", seed, snap.Epoch(), got, want)
					snap.Release()
					return
				}
				if r.Intn(2) == 0 {
					// Point-style overlay read must not disturb the pin.
					_ = snap.EvalWith([]InputChange[int64]{{Key: key("u", r.Intn(n)), Value: int64(r.Intn(5))}})
					if again := snap.Value(); again != got {
						errs <- errf("reader %d: Value changed %d → %d after EvalWith", seed, got, again)
						snap.Release()
						return
					}
				}
				snap.Release()
			}
		}(int64(i))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if got := d.RetainedUndoBytes(); got != 0 {
		t.Errorf("retained undo bytes %d after all readers done, want 0", got)
	}
}

// TestSnapshotReclamationBoundsUndoMemory checks the truncation contract:
// history grows only while a pin needs it and is dropped as soon as the
// oldest pin releases.
func TestSnapshotReclamationBoundsUndoMemory(t *testing.T) {
	n := 4
	c := buildTriangleLike(n)
	vals := map[structure.WeightKey]int64{}
	val := func(k structure.WeightKey) (int64, bool) { v, ok := vals[k]; return v, ok }
	d := NewDynamic[int64](c, semiring.Nat, val)
	r := rand.New(rand.NewSource(5))
	update := func() {
		k := key([]string{"u", "v", "w"}[r.Intn(3)], r.Intn(n))
		vals[k]++
		d.SetInput(k, vals[k])
	}

	// No pins: a long stream retains nothing.
	for i := 0; i < 50; i++ {
		update()
	}
	if got := d.RetainedUndoBytes(); got != 0 {
		t.Fatalf("retained %d bytes with no snapshots, want 0", got)
	}

	old := d.Snapshot()
	for i := 0; i < 10; i++ {
		update()
	}
	grew := d.RetainedUndoBytes()
	if grew == 0 {
		t.Fatal("no undo history retained while a snapshot is pinned")
	}
	recent := d.Snapshot()
	for i := 0; i < 10; i++ {
		update()
	}
	// Releasing the old pin must shrink history to what the recent pin needs.
	beforeRelease := d.RetainedUndoBytes()
	old.Release()
	afterOld := d.RetainedUndoBytes()
	if afterOld == 0 {
		t.Fatal("history for the recent pin was dropped with the old one")
	}
	if afterOld >= beforeRelease {
		t.Fatalf("history did not shrink after releasing the oldest pin (%d → %d bytes)", beforeRelease, afterOld)
	}
	recent.Release()
	if got := d.RetainedUndoBytes(); got != 0 {
		t.Fatalf("retained %d bytes after all pins released, want 0", got)
	}
	for i := 0; i < 20; i++ {
		update()
	}
	if got := d.RetainedUndoBytes(); got != 0 {
		t.Fatalf("retained %d bytes on the pin-free path, want 0", got)
	}
}

func errf(format string, args ...any) error { return fmt.Errorf(format, args...) }
