// Package qe provides the quantifier-elimination substrate used before
// compilation (the role played by Theorem 3 of the paper, due to
// Dvořák–Král–Thomas).
//
// The paper uses full first-order quantifier elimination on classes of
// bounded expansion as a black box.  This implementation covers the guarded
// existential fragment, which suffices for every concrete query appearing in
// the paper (triangles, PageRank, provenance, local search, nested
// aggregates): an existential quantifier ∃y ψ is eliminated when ψ is
// quantifier-free (after recursive elimination) and every atom of ψ
// containing y contains at most one other variable x (the same x for all
// such atoms), so that ∃y ψ defines a unary property of x computable in
// linear time by a scan over the tuples incident to each element.  The
// derived property is materialised as a fresh unary relation on a copy of
// the structure, keeping the Gaifman graph unchanged.
//
// Formulas outside the fragment are rejected with a descriptive error
// rather than silently mis-evaluated; see DESIGN.md §3 for the substitution
// rationale.
package qe

import (
	"fmt"
	"sort"

	"repro/internal/logic"
	"repro/internal/parser"
	"repro/internal/structure"
)

// Result is the outcome of eliminating quantifiers from a formula: an
// equivalent quantifier-free formula over an extended signature, the
// extended structure interpreting the derived predicates, and bookkeeping
// about what was added.
type Result struct {
	// Formula is the quantifier-free rewriting.
	Formula logic.Formula
	// Structure interprets the derived predicates; it shares the domain and
	// the Gaifman graph of the input structure.
	Structure *structure.Structure
	// Derived lists the names of the derived unary predicates, in the order
	// they were introduced.
	Derived []string
}

// eliminator carries the mutable state of one elimination run.
type eliminator struct {
	// work is the working structure: the input structure progressively
	// extended with the derived unary predicates, so that inner derived
	// predicates are visible when eliminating outer quantifiers.
	work    *structure.Structure
	sig     *structure.Signature
	derived []string
	// adjacency index: for every element, the tuples (relation, tuple)
	// containing it; built lazily.
	incident map[structure.Element][]incidence
	built    bool
	// typeCount caches the number of elements of each diagonal type.
	typeCount map[string]int
	counter   int
	// forbidden relations (e.g. dynamic relations) may not be folded into
	// derived predicates.
	forbidden map[string]bool
}

type incidence struct {
	rel   string
	tuple structure.Tuple
}

// Eliminate rewrites every quantifier in f that falls into the guarded
// existential fragment, materialising derived unary predicates on a copy of
// a.  Relations listed in forbidden (typically the dynamic relations of
// Theorem 24) must not occur under an eliminated quantifier.
func Eliminate(a *structure.Structure, f logic.Formula, forbidden []string) (*Result, error) {
	e := &eliminator{
		work:      a,
		sig:       a.Sig,
		forbidden: map[string]bool{},
	}
	for _, r := range forbidden {
		e.forbidden[r] = true
	}
	out, err := e.rewrite(f)
	if err != nil {
		return nil, err
	}
	return &Result{Formula: out, Derived: e.derived, Structure: e.work}, nil
}

// extend rebuilds the working structure with an additional unary relation
// holding the given members, and invalidates the eliminator's caches.
func (e *eliminator) extend(name string, members map[structure.Element]bool) error {
	rels := append(append([]structure.RelSymbol(nil), e.sig.Relations...), structure.RelSymbol{Name: name, Arity: 1})
	sig, err := structure.NewSignature(rels, e.sig.Weights)
	if err != nil {
		return &Error{Detail: fmt.Sprintf("extending signature with %s", name), Err: err}
	}
	ext := structure.NewStructure(sig, e.work.N)
	for _, r := range e.sig.Relations {
		for _, t := range e.work.Tuples(r.Name) {
			ext.MustAddTuple(r.Name, t...)
		}
	}
	elems := make([]structure.Element, 0, len(members))
	for el := range members {
		elems = append(elems, el)
	}
	sort.Ints(elems)
	for _, el := range elems {
		ext.MustAddTuple(name, el)
	}
	e.work = ext
	e.sig = sig
	e.built = false
	e.incident = nil
	e.typeCount = nil
	return nil
}

// rewrite eliminates quantifiers bottom-up.
func (e *eliminator) rewrite(f logic.Formula) (logic.Formula, error) {
	switch g := f.(type) {
	case logic.Atom, logic.Eq, logic.Truth:
		return f, nil
	case logic.Not:
		arg, err := e.rewrite(g.Arg)
		if err != nil {
			return nil, err
		}
		return logic.Neg(arg), nil
	case logic.And:
		args := make([]logic.Formula, len(g.Args))
		for i, x := range g.Args {
			a, err := e.rewrite(x)
			if err != nil {
				return nil, err
			}
			args[i] = a
		}
		return logic.Conj(args...), nil
	case logic.Or:
		args := make([]logic.Formula, len(g.Args))
		for i, x := range g.Args {
			a, err := e.rewrite(x)
			if err != nil {
				return nil, err
			}
			args[i] = a
		}
		return logic.Disj(args...), nil
	case logic.Forall:
		// ∀y ψ ≡ ¬∃y ¬ψ.
		inner, err := e.rewrite(logic.Neg(logic.Exists{Var: g.Var, Arg: logic.Neg(g.Arg)}))
		if err != nil {
			return nil, err
		}
		return inner, nil
	case logic.Exists:
		arg, err := e.rewrite(g.Arg)
		if err != nil {
			return nil, err
		}
		return e.eliminateExists(g.Var, arg)
	default:
		return nil, &Error{Detail: fmt.Sprintf("unknown formula type %T", f)}
	}
}

// eliminateExists handles ∃y ψ for quantifier-free ψ.
func (e *eliminator) eliminateExists(y string, psi logic.Formula) (logic.Formula, error) {
	if !logic.IsQuantifierFree(psi) {
		return nil, failf(y, parser.FormatFormula(psi),
			fmt.Sprintf("nested quantifier under ∃%s could not be eliminated", y))
	}
	free := logic.FreeVars(psi)
	hasY := false
	var others []string
	for _, v := range free {
		if v == y {
			hasY = true
		} else {
			others = append(others, v)
		}
	}
	if !hasY {
		// ∃y ψ with y not free: equivalent to ψ when the domain is
		// non-empty (checked at evaluation sites; domains here are always
		// non-empty in practice), but to stay exact keep the existential
		// only if the domain could be empty.  We simply return ψ and note
		// that empty domains make every aggregation trivial anyway.
		return psi, nil
	}
	// Check guardedness: every atom containing y mentions at most one other
	// variable, and that variable is the same across all such atoms.
	guard := ""
	for _, atom := range logic.CollectAtoms(psi) {
		vars := logic.FreeVars(atom)
		containsY := false
		for _, v := range vars {
			if v == y {
				containsY = true
			}
		}
		if !containsY {
			continue
		}
		if a, ok := atom.(logic.Atom); ok && e.forbidden[a.Rel] {
			return nil, failf(y, parser.FormatFormula(psi),
				fmt.Sprintf("quantified variable %s occurs in dynamic relation %s; dynamic relations cannot appear under quantifiers", y, a.Rel))
		}
		for _, v := range vars {
			if v == y {
				continue
			}
			if guard == "" {
				guard = v
			} else if guard != v {
				return nil, failf(y, parser.FormatFormula(psi),
					fmt.Sprintf("∃%s is not guarded: atoms link %s to both %s and %s (outside the supported fragment, see DESIGN.md §3)", y, y, guard, v))
			}
		}
	}
	if guard == "" {
		// Every atom involving y is unary in y.  If ψ has no other free
		// variables, ∃y ψ is a sentence that can be evaluated right now.
		if len(others) != 0 {
			return nil, failf(y, parser.FormatFormula(psi),
				fmt.Sprintf("∃%s mixes atoms on %s with free variables %v without a common guard (outside the supported fragment)", y, y, others))
		}
		holds := logic.Eval(logic.Exists{Var: y, Arg: psi}, e.work, map[string]structure.Element{})
		if holds {
			return logic.True(), nil
		}
		return logic.False(), nil
	}
	// The derived predicate is unary in the guard, so ψ may not have further
	// free variables.
	for _, v := range others {
		if v != guard {
			return nil, failf(y, parser.FormatFormula(psi),
				fmt.Sprintf("∃%s ψ has free variables %v besides the guard %s (outside the supported fragment, see DESIGN.md §3)", y, others, guard))
		}
	}
	// Materialise the derived predicate P(guard) ≡ ∃y ψ(guard, y) by
	// scanning, for every element a, the candidate witnesses y: either
	// elements incident to a through some tuple, or, when ψ is satisfiable
	// with y non-adjacent to the guard, every element (the scan is still
	// linear for each incident pair; the non-adjacent case is detected and
	// handled by evaluating ψ with a "far" witness pattern).
	e.counter++
	name := fmt.Sprintf(".qe%d", e.counter)
	e.derived = append(e.derived, name)
	members := map[structure.Element]bool{}
	e.buildIncidence()
	env := map[string]structure.Element{}
	// A witness y is useful only if it makes ψ true; atoms linking y to the
	// guard are false unless y is incident to the guard or y equals the
	// guard, so it suffices to test incident elements, the guard itself,
	// and one representative "non-adjacent" element per guard value.
	for a := 0; a < e.work.N; a++ {
		env[guard] = a
		found := false
		tryWitness := func(w structure.Element) {
			if found {
				return
			}
			env[y] = w
			if logic.Eval(psi, e.work, env) {
				found = true
			}
		}
		tryWitness(a)
		for _, inc := range e.incident[a] {
			for _, el := range inc.tuple {
				if el != a {
					tryWitness(el)
				}
			}
			if found {
				break
			}
		}
		if !found {
			// No incident witness: a witness not adjacent to the guard can
			// still satisfy ψ.  For such a witness every atom linking it to
			// the guard is false, so its behaviour is determined by its
			// diagonal type (membership of the constant tuples (w,...,w)).
			// Check, for every diagonal type that still has a non-adjacent
			// element available, whether a virtual witness of that type
			// satisfies ψ.
			adjacentByType := map[string]int{}
			adjacentByType[e.diagonalType(a)]++
			seenAdj := map[structure.Element]bool{a: true}
			for _, inc := range e.incident[a] {
				for _, el := range inc.tuple {
					if !seenAdj[el] {
						seenAdj[el] = true
						adjacentByType[e.diagonalType(el)]++
					}
				}
			}
			for typ, total := range e.typeCounts() {
				if total <= adjacentByType[typ] {
					continue
				}
				if e.evalVirtualWitness(psi, y, guard, a, typ) {
					found = true
					break
				}
			}
		}
		if found {
			members[a] = true
		}
		delete(env, y)
	}
	delete(env, guard)
	if err := e.extend(name, members); err != nil {
		return nil, err
	}
	return logic.R(name, guard), nil
}

// buildIncidence indexes, for each element, the tuples containing it.
func (e *eliminator) buildIncidence() {
	if e.built {
		return
	}
	e.built = true
	e.incident = map[structure.Element][]incidence{}
	for _, r := range e.sig.Relations {
		for _, t := range e.work.Tuples(r.Name) {
			seen := map[structure.Element]bool{}
			for _, el := range t {
				if !seen[el] {
					seen[el] = true
					e.incident[el] = append(e.incident[el], incidence{rel: r.Name, tuple: t})
				}
			}
		}
	}
}

// diagonalType describes an element by its membership in the "diagonal" of
// every relation: whether the constant tuple (w, ..., w) belongs to R, for
// every relation symbol R.  Two elements of the same diagonal type are
// interchangeable as witnesses once all atoms linking the witness to the
// guard are known to be false.
func (e *eliminator) diagonalType(w structure.Element) string {
	key := make([]byte, len(e.sig.Relations))
	for i, r := range e.sig.Relations {
		t := make([]structure.Element, r.Arity)
		for j := range t {
			t[j] = w
		}
		if e.work.HasTuple(r.Name, t...) {
			key[i] = '1'
		} else {
			key[i] = '0'
		}
	}
	return string(key)
}

// typeCounts returns how many elements have each diagonal type (cached).
func (e *eliminator) typeCounts() map[string]int {
	if e.typeCount != nil {
		return e.typeCount
	}
	e.typeCount = map[string]int{}
	for a := 0; a < e.work.N; a++ {
		e.typeCount[e.diagonalType(a)]++
	}
	return e.typeCount
}

// evalVirtualWitness evaluates quantifier-free ψ under the assignment
// guard ↦ guardElem, y ↦ a virtual element of the given diagonal type that
// is distinct from and not adjacent to the guard.
func (e *eliminator) evalVirtualWitness(psi logic.Formula, y, guard string, guardElem structure.Element, typ string) bool {
	relIndex := map[string]int{}
	for i, r := range e.sig.Relations {
		relIndex[r.Name] = i
	}
	var eval func(f logic.Formula) bool
	eval = func(f logic.Formula) bool {
		switch g := f.(type) {
		case logic.Truth:
			return g.Value
		case logic.Eq:
			l, r := g.Left, g.Right
			switch {
			case l == y && r == y:
				return true
			case l == y || r == y:
				return false // the virtual witness differs from every named element
			default:
				return e.evalGroundEq(l, r, guard, guardElem)
			}
		case logic.Atom:
			mentionsY := false
			onlyY := true
			for _, v := range g.Args {
				if v == y {
					mentionsY = true
				} else {
					onlyY = false
				}
			}
			if !mentionsY {
				env := map[string]structure.Element{guard: guardElem}
				return logic.Eval(g, e.work, env)
			}
			if onlyY {
				return typ[relIndex[g.Rel]] == '1'
			}
			// Atom links the virtual witness to the guard: false because the
			// witness is not adjacent to the guard.
			return false
		case logic.Not:
			return !eval(g.Arg)
		case logic.And:
			for _, x := range g.Args {
				if !eval(x) {
					return false
				}
			}
			return true
		case logic.Or:
			for _, x := range g.Args {
				if eval(x) {
					return true
				}
			}
			return false
		default:
			panic(fmt.Sprintf("qe: unexpected formula %T under virtual-witness evaluation", f))
		}
	}
	return eval(psi)
}

func (e *eliminator) evalGroundEq(l, r, guard string, guardElem structure.Element) bool {
	// Both sides are the guard variable (the only other free variable in a
	// guarded formula).
	if l == guard && r == guard {
		return true
	}
	// Any other variable would be unbound; guardedness prevents this.
	return l == r
}
