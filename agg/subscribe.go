package agg

import (
	"context"
	"errors"
	"iter"
	"strconv"
	"strings"
	"time"

	"repro/internal/live"
)

// Update is one push delivered by Session.Subscribe: the subscribed quantity
// re-evaluated at a committed epoch.  Because slow subscribers coalesce,
// consecutive Updates may skip epochs; each one is self-consistent at its
// Epoch.
type Update struct {
	// Epoch is the committed session epoch the update reflects.
	Epoch uint64
	// Kind is "value", "point", "count" or "delta", per the subscription.
	Kind string
	// Value is the query value for "value" and "point" subscriptions.
	Value Value
	// Count is the answer count for "count" subscriptions.
	Count int64
	// Reset marks a "delta" update that replaces any previously known
	// answer set: Answers is the complete set at Epoch.  Subscribers get a
	// Reset first (unless resuming from the current epoch) and must accept
	// one at any later point.
	Reset bool
	// Answers is the full answer set of a Reset.
	Answers []Answer
	// Added and Removed are the net answer-set change since the previous
	// delivered update, for non-Reset "delta" updates.
	Added   []Answer
	Removed []Answer
	// Coalesced counts evaluated results that were folded into this one
	// because the subscriber lagged; 0 means it kept up.
	Coalesced uint64
	// Lag is the approximate time from the commit that produced Epoch to
	// this update becoming deliverable; 0 when the update was not driven by
	// a fresh commit (initial snapshots).
	Lag time.Duration
}

// SubscribeOption configures one Session.Subscribe call.
type SubscribeOption func(*subscribeConfig)

type subscribeConfig struct {
	kind    live.Kind
	kindSet bool
	args    []int
	from    uint64
	hasFrom bool
	err     error
}

func (c *subscribeConfig) setKind(k live.Kind) {
	if c.kindSet && c.kind != k {
		c.err = errors.New("conflicting subscription kinds: " + c.kind.String() + " and " + k.String())
		return
	}
	c.kind, c.kindSet = k, true
}

// SubscribePoint subscribes to the query value at one fixed argument tuple
// (one element per free variable) instead of the closed query value.
func SubscribePoint(args ...int) SubscribeOption {
	return func(c *subscribeConfig) {
		c.setKind(live.KindPoint)
		c.args = args
	}
}

// SubscribeCount subscribes to the answer count of an enumerable query.
func SubscribeCount() SubscribeOption {
	return func(c *subscribeConfig) { c.setKind(live.KindCount) }
}

// SubscribeDelta subscribes to the answer set of an enumerable query as a
// stream of added/removed tuples, starting from a full Reset snapshot.
func SubscribeDelta() SubscribeOption {
	return func(c *subscribeConfig) { c.setKind(live.KindDelta) }
}

// SubscribeFrom resumes a subscription: epoch is the last committed epoch
// the client has already seen.  At or above the session's current epoch the
// initial snapshot is skipped and delivery starts with the next commit;
// below it the subscription starts with a fresh snapshot (a Reset for
// "delta") because skipped epochs cannot be replayed.
func SubscribeFrom(epoch uint64) SubscribeOption {
	return func(c *subscribeConfig) { c.from, c.hasFrom = epoch, true }
}

// Subscribe registers live interest in the session: it yields an Update
// after every committed batch or point write (the current state first,
// unless resuming via SubscribeFrom), re-evaluated from an MVCC snapshot of
// the committed epoch.  By default the closed query value is watched;
// SubscribePoint, SubscribeCount and SubscribeDelta watch a point value, the
// answer count, or the answer set as deltas.
//
// Slow consumers never stall the session's writer or other subscribers:
// each subscription holds a one-slot mailbox where the latest epoch wins, so
// a lagging client skips intermediate epochs (Update.Coalesced reports how
// many evaluations were folded together).  Every subscriber still observes
// a monotone subsequence of committed epochs ending at the session's final
// epoch.
//
// The stream ends when ctx is cancelled (the iterator yields the context
// error), when the session is closed (ErrSessionClosed, after any pending
// update is delivered), or when the consumer breaks out of the loop.
// Nested sessions, which cannot snapshot, fail with ErrArgument.
func (s *Session) Subscribe(ctx context.Context, opts ...SubscribeOption) iter.Seq2[Update, error] {
	ctx = ensureCtx(ctx)
	return func(yield func(Update, error) bool) {
		var cfg subscribeConfig
		for _, o := range opts {
			o(&cfg)
		}
		if cfg.err != nil {
			yield(Update{}, newError(ErrArgument, s.p.text, cfg.err))
			return
		}
		switch cfg.kind {
		case live.KindValue:
			if n := len(s.p.FreeVars()); n > 0 {
				yield(Update{}, errorf(ErrArgument, s.p.text, "query has %d free variables; subscribe with SubscribePoint", n))
				return
			}
		case live.KindPoint:
			if got, want := len(cfg.args), len(s.p.FreeVars()); got != want {
				yield(Update{}, errorf(ErrArgument, s.p.text, "SubscribePoint got %d args, query has %d free variables", got, want))
				return
			}
		case live.KindCount, live.KindDelta:
			if s.p.enum == nil {
				yield(Update{}, errorf(ErrNotEnumerable, s.p.text, "%s subscriptions need a first-order formula or a boolean nested query with free variables", cfg.kind))
				return
			}
		}
		// The probe snapshot rejects nested and closed sessions up front and
		// anchors resume semantics at the current committed epoch.
		probe, err := s.Snapshot()
		if err != nil {
			yield(Update{}, err)
			return
		}
		epoch := probe.Epoch()
		probe.Close()
		hub, err := s.ensureHub()
		if err != nil {
			yield(Update{}, err)
			return
		}
		resume := cfg.from
		if resume > epoch {
			resume = epoch
		}
		initial := !cfg.hasFrom || cfg.from < epoch
		key := live.Key{Kind: cfg.kind, Args: live.EncodeArgs(cfg.args)}
		sub, err := hub.Subscribe(key, resume, initial)
		if err != nil {
			yield(Update{}, errorf(ErrSessionClosed, s.p.text, "session was closed"))
			return
		}
		defer sub.Close()
		kind := cfg.kind.String()
		for {
			res, err := sub.Next(ctx)
			if err != nil {
				if errors.Is(err, live.ErrClosed) {
					err = errorf(ErrSessionClosed, s.p.text, "session was closed")
				}
				yield(Update{}, err)
				return
			}
			u := Update{Epoch: res.Epoch, Kind: kind, Coalesced: res.Coalesced}
			if res.Stamp > 0 {
				if lag := time.Since(time.Unix(0, res.Stamp)); lag > 0 {
					u.Lag = lag
				}
			}
			switch cfg.kind {
			case live.KindValue, live.KindPoint:
				u.Value = Value(res.Value)
			case live.KindCount:
				u.Count = res.Count
			case live.KindDelta:
				if res.Full {
					u.Reset = true
					u.Answers = toAnswers(res.Answers)
				} else {
					u.Added = toAnswers(res.Added)
					u.Removed = toAnswers(res.Removed)
				}
			}
			if !yield(u, nil) {
				return
			}
		}
	}
}

func toAnswers(ts [][]int) []Answer {
	if len(ts) == 0 {
		return nil
	}
	out := make([]Answer, len(ts))
	for i, t := range ts {
		out[i] = Answer(t)
	}
	return out
}

// ensureHub lazily creates the session's live hub; the writer path stays
// hub-free (one atomic load) until the first subscriber arrives.
func (s *Session) ensureHub() (*live.Hub, error) {
	if h := s.hub.Load(); h != nil {
		return h, nil
	}
	s.stateMu.Lock()
	defer s.stateMu.Unlock()
	if s.closed {
		return nil, errorf(ErrSessionClosed, s.p.text, "session was closed")
	}
	if h := s.hub.Load(); h != nil {
		return h, nil
	}
	h := live.NewHub(s.liveEval)
	s.hub.Store(h)
	return h, nil
}

// liveEval is the hub's EvalFunc: it pins one snapshot of the latest
// committed epoch and evaluates every subscribed key from it, so one commit
// costs one evaluation per distinct key no matter how many subscribers
// share it.  It runs only on the hub's evaluator goroutine.
func (s *Session) liveEval(reqs []live.Request) (uint64, []live.Result, error) {
	ctx := context.Background()
	r, err := s.Snapshot()
	if err != nil {
		return 0, nil, err
	}
	defer r.Close()
	epoch := r.Epoch()
	out := make([]live.Result, len(reqs))
	for i, rq := range reqs {
		res := live.Result{Epoch: epoch}
		switch rq.Key.Kind {
		case live.KindValue:
			v, verr := r.Eval(ctx)
			res.Value, res.Err = string(v), verr
		case live.KindPoint:
			args, aerr := decodeSubscribeArgs(rq.Key.Args)
			if aerr != nil {
				res.Err = aerr
				break
			}
			v, verr := r.Eval(ctx, args...)
			res.Value, res.Err = string(v), verr
		case live.KindCount:
			n, cerr := r.AnswerCount(ctx)
			res.Count, res.Err = n, cerr
		case live.KindDelta:
			res = s.liveDeltaEval(ctx, r, rq, epoch)
		}
		out[i] = res
	}
	return epoch, out, nil
}

// liveDeltaEval enumerates the answer set at the pinned epoch and diffs it
// against the state of the previous evaluation of the same key.
func (s *Session) liveDeltaEval(ctx context.Context, r *Reader, rq live.Request, epoch uint64) live.Result {
	res := live.Result{Epoch: epoch}
	cur := make(map[string][]int)
	for a, err := range r.Enumerate(ctx) {
		if err != nil {
			res.Err = err
			return res
		}
		t := append([]int(nil), a...)
		cur[live.EncodeArgs(t)] = t
	}
	if s.liveDelta == nil {
		s.liveDelta = make(map[live.Key]map[string][]int)
	}
	prev, ok := s.liveDelta[rq.Key]
	if ok {
		res.Increments = true
		for k, t := range cur {
			if _, in := prev[k]; !in {
				res.Added = append(res.Added, t)
			}
		}
		for k, t := range prev {
			if _, in := cur[k]; !in {
				res.Removed = append(res.Removed, t)
			}
		}
	}
	if rq.Full || !ok {
		res.Full = true
		res.Answers = make([][]int, 0, len(cur))
		for _, t := range cur {
			res.Answers = append(res.Answers, t)
		}
	}
	s.liveDelta[rq.Key] = cur
	return res
}

func decodeSubscribeArgs(enc string) ([]int, error) {
	if enc == "" {
		return nil, nil
	}
	parts := strings.Split(enc, ",")
	out := make([]int, len(parts))
	for i, p := range parts {
		v, err := strconv.Atoi(p)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}
