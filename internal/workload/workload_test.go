package workload

import (
	"testing"

	"repro/internal/semiring"
)

func TestGenerators(t *testing.T) {
	cases := []struct {
		name string
		db   *Database
	}{
		{"bounded-degree", BoundedDegree(500, 3, 1)},
		{"grid", Grid(20, 25, 1)},
		{"forest", Forest(400, 3, 1)},
		{"pref-attach", PreferentialAttachment(500, 2, 1)},
		{"road", RoadNetwork(20, 20, 40, 1)},
		{"nested", NestedAgg(500, 3, 1)},
		{"search", Search(500, 3, 1)},
	}
	for _, c := range cases {
		a := c.db.A
		if a.N == 0 || len(a.Tuples("E")) == 0 {
			t.Errorf("%s: empty database", c.name)
		}
		// Weights cover every edge and every vertex.
		for _, tup := range a.Tuples("E") {
			if c.db.EdgeWeight[tup.Key()] <= 0 {
				t.Errorf("%s: missing edge weight for %v", c.name, tup)
			}
		}
		if len(c.db.VertexWeight) != a.N {
			t.Errorf("%s: vertex weights have wrong length", c.name)
		}
		// Degeneracy stays small: these are bounded-expansion classes.
		_, d := a.Gaifman().DegeneracyOrder()
		if d > 12 {
			t.Errorf("%s: degeneracy %d unexpectedly large", c.name, d)
		}
		// Weight conversions.
		w := c.db.Weights()
		if w.Len() == 0 {
			t.Errorf("%s: empty weight assignment", c.name)
		}
		mp := c.db.MinPlusWeights()
		if mp.Len() != w.Len() {
			t.Errorf("%s: min-plus weights have different cardinality", c.name)
		}
		bw := WeightsIn(c.db, func(v int64) bool { return v != 0 })
		if bw.Len() != w.Len() {
			t.Errorf("%s: boolean weights have different cardinality", c.name)
		}
		if err := w.Validate(a, func(v int64) bool { return v == 0 }); err != nil {
			t.Errorf("%s: weights violate the Gaifman discipline: %v", c.name, err)
		}
	}
}

func TestDeterminism(t *testing.T) {
	a := BoundedDegree(300, 3, 42)
	b := BoundedDegree(300, 3, 42)
	if a.A.TupleCount() != b.A.TupleCount() {
		t.Errorf("same seed produced different databases")
	}
	c := BoundedDegree(300, 3, 43)
	if a.A.TupleCount() == c.A.TupleCount() && len(a.EdgeWeight) == len(c.EdgeWeight) {
		// Tuple counts may coincide, but the edge sets should differ.
		same := true
		for k := range a.EdgeWeight {
			if _, ok := c.EdgeWeight[k]; !ok {
				same = false
				break
			}
		}
		if same {
			t.Errorf("different seeds produced identical edge sets")
		}
	}
}

func TestGridHasTriangles(t *testing.T) {
	db := Grid(10, 10, 1)
	a := db.A
	found := false
	for _, e := range a.Tuples("E") {
		x, y := e[0], e[1]
		for _, f := range a.Tuples("E") {
			if f[0] == y && a.HasTuple("E", f[1], x) {
				found = true
			}
		}
	}
	if !found {
		t.Errorf("grid generator should plant directed triangles")
	}
	_ = semiring.Nat
}

func TestNestedAggGuardCoversDomain(t *testing.T) {
	db := NestedAgg(300, 3, 2)
	for v := 0; v < db.A.N; v++ {
		if !db.A.HasTuple("V", v) {
			t.Fatalf("guard relation V misses vertex %d", v)
		}
	}
	if len(db.A.Tuples("S")) == 0 {
		t.Error("no vertices marked S")
	}
}

func TestSearchWorkloadShape(t *testing.T) {
	db := Search(300, 3, 2)
	for _, e := range db.A.Tuples("E") {
		if !db.A.HasTuple("E", e[1], e[0]) {
			t.Fatalf("edge %v is not symmetric", e)
		}
	}
	for _, rel := range []string{"S", "B", "D"} {
		if n := len(db.A.Tuples(rel)); n != 0 {
			t.Errorf("solution predicate %s starts with %d tuples, want 0", rel, n)
		}
	}
}

// TestMillionTupleScale documents the satellite requirement that the nested
// and search workloads generate at ≥ 10⁶ tuples; skipped under -short.
func TestMillionTupleScale(t *testing.T) {
	if testing.Short() {
		t.Skip("million-tuple generation is skipped in -short mode")
	}
	if n := NestedAgg(400_000, 3, 1).A.TupleCount(); n < 1_000_000 {
		t.Errorf("nested workload has %d tuples, want ≥ 10⁶", n)
	}
	if n := Search(350_000, 3, 1).A.TupleCount(); n < 1_000_000 {
		t.Errorf("search workload has %d tuples, want ≥ 10⁶", n)
	}
}
