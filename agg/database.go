package agg

import (
	"io"

	"repro/internal/dbio"
	"repro/internal/structure"
)

// Database is a loaded sparse database: a relational structure over the
// domain {0, ..., n-1} plus integer-valued weight functions, the unit every
// Engine serves queries against.  A Database is immutable once loaded
// (dynamic updates live in sessions, never in the Database) and safe to
// share between engines and goroutines.
type Database struct {
	a *structure.Structure
	w *structure.Weights[int64]
}

// Source describes where a database comes from: an explicit reader, stdin, a
// file in the dbio text format, or a generated synthetic workload.  Exactly
// the backing of the -stdin/-file/-kind/-n flags of the command-line tools.
type Source struct {
	// Reader, when non-nil, takes precedence over every other field; the
	// database is parsed from it in the dbio text format.
	Reader io.Reader
	// Stdin reads the database from standard input.
	Stdin bool
	// Path reads the database from the named file.
	Path string

	// Kind selects a generated workload (bounded-degree, grid, forest,
	// pref-attach, road, nested, search) when no reader, stdin or path is
	// given.
	Kind string
	// N is the approximate number of elements of the generated database.
	N int
	// Degree is the degree / branching / attachment parameter; 0 selects the
	// per-kind default.
	Degree int
	// Seed is the random seed of the generator.
	Seed int64
}

// Load loads a database from the described source.
func Load(src Source) (*Database, error) {
	db, err := dbio.LoadSource(dbio.Source{
		Reader: src.Reader,
		Stdin:  src.Stdin,
		Path:   src.Path,
		Kind:   src.Kind,
		N:      src.N,
		Degree: src.Degree,
		Seed:   src.Seed,
	})
	if err != nil {
		return nil, err
	}
	return &Database{a: db.A, w: db.W}, nil
}

// ReadDatabase parses a database from r in the dbio text format (see the
// package documentation of internal/dbio for the line grammar).
func ReadDatabase(r io.Reader) (*Database, error) {
	return Load(Source{Reader: r})
}

// ReadDatabaseFile reads a database from a file in the dbio text format.
func ReadDatabaseFile(path string) (*Database, error) {
	return Load(Source{Path: path})
}

// Generate builds a synthetic workload database (see Source.Kind for the
// available kinds).
func Generate(kind string, n int, seed int64) (*Database, error) {
	return Load(Source{Kind: kind, N: n, Seed: seed})
}

// FromStructure wraps an already-built structure and weight assignment as a
// Database.  It is in-module plumbing for code that constructs structures
// directly (internal/workload, tests, benchmarks); external embedders load
// databases through Load, ReadDatabase or Generate instead — the parameter
// types live under internal/ and cannot be named outside this module.
func FromStructure(a *structure.Structure, w *structure.Weights[int64]) *Database {
	return &Database{a: a, w: w}
}

// Elements returns the domain size n (elements are 0..n-1).
func (d *Database) Elements() int { return d.a.N }

// TupleCount returns the total number of relation tuples.
func (d *Database) TupleCount() int { return d.a.TupleCount() }

// Relations lists the relation symbols of the database's signature as
// name/arity pairs, in declaration order.
func (d *Database) Relations() []SymbolInfo {
	out := make([]SymbolInfo, len(d.a.Sig.Relations))
	for i, r := range d.a.Sig.Relations {
		out[i] = SymbolInfo{Name: r.Name, Arity: r.Arity}
	}
	return out
}

// WeightSymbols lists the weight symbols of the database's signature.
func (d *Database) WeightSymbols() []SymbolInfo {
	out := make([]SymbolInfo, len(d.a.Sig.Weights))
	for i, w := range d.a.Sig.Weights {
		out[i] = SymbolInfo{Name: w.Name, Arity: w.Arity}
	}
	return out
}

// SymbolInfo describes one relation or weight symbol of a signature.
type SymbolInfo struct {
	Name  string
	Arity int
}

// Tuples returns the tuples of one relation as fresh slices (nil for an
// unknown relation).
func (d *Database) Tuples(rel string) [][]int {
	ts := d.a.Tuples(rel)
	out := make([][]int, len(ts))
	for i, t := range ts {
		out[i] = append([]int(nil), t...)
	}
	return out
}

// HasTuple reports membership of a tuple in a relation of the loaded
// database (sessions track their own dynamic updates separately).
func (d *Database) HasTuple(rel string, tuple ...int) bool {
	return d.a.HasTuple(rel, tuple...)
}

// Write serialises the database to w in the dbio text format; the output is
// deterministic and round-trips through ReadDatabase.
func (d *Database) Write(w io.Writer) error {
	return dbio.Write(w, d.a, d.w)
}
