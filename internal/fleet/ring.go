// Package fleet shards aggserve horizontally: a router consistent-hashes
// requests across N replicas so that each compiled-query cache key — the
// (database, canonical query, semiring, options) tuple aggserve already
// caches on — lives on exactly one replica, and a named session's MVCC state
// is sticky to the replica that created it.  Aggregate cache capacity and
// hit rate then grow with the fleet instead of being capped by one process.
//
// The package has three layers: Ring (the hash ring), Router (the HTTP
// proxy with health checks and fleet-wide /stats and /metrics aggregation),
// and StartLocal (an in-process harness that runs N replicas behind a
// router inside one test binary, so the whole fleet runs under -race).
package fleet

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
)

// defaultVNodes is the number of virtual nodes per replica.  128 points per
// replica keeps the expected load imbalance of an 8-replica fleet within a
// few percent while the ring stays small enough to rebuild instantly.
const defaultVNodes = 128

// ringPoint is one virtual node: a position on the 64-bit hash circle owned
// by a replica.
type ringPoint struct {
	hash    uint64
	replica int
}

// Ring is a consistent-hash ring over a fixed replica set.  Positions
// depend only on each replica's identifier, never on the membership, so a
// replica going down moves only the keys it owned (to the next live point
// clockwise) and leaves every other assignment untouched — exactly the
// property that keeps per-replica compiled-Program caches warm across
// fail-over and recovery.  A Ring is immutable and safe for concurrent use.
type Ring struct {
	points []ringPoint
	n      int
}

// NewRing builds a ring with vnodes virtual nodes (≤ 0 selects the default
// of 128) for each of the given replica identifiers.
func NewRing(ids []string, vnodes int) (*Ring, error) {
	if len(ids) == 0 {
		return nil, fmt.Errorf("fleet: ring needs at least one replica")
	}
	if vnodes <= 0 {
		vnodes = defaultVNodes
	}
	seen := make(map[string]bool, len(ids))
	r := &Ring{points: make([]ringPoint, 0, len(ids)*vnodes), n: len(ids)}
	for i, id := range ids {
		if seen[id] {
			return nil, fmt.Errorf("fleet: duplicate replica id %q", id)
		}
		seen[id] = true
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{
				hash:    hashKey(id + "#" + strconv.Itoa(v)),
				replica: i,
			})
		}
	}
	sort.Slice(r.points, func(a, b int) bool { return r.points[a].hash < r.points[b].hash })
	return r, nil
}

// Replicas returns the number of replicas on the ring.
func (r *Ring) Replicas() int { return r.n }

// hashKey is FNV-1a over the key bytes followed by a 64-bit avalanche
// finalizer (murmur3's fmix64).  Raw FNV clusters badly on the
// near-identical strings vnode positions are derived from ("url#0",
// "url#1", ...), which skews ring balance; the finalizer spreads every
// input bit across the whole word.  Both steps are fixed arithmetic —
// stable across processes and restarts, so routing decisions agree between
// a router and any future router restarted beside it.
func hashKey(key string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(key))
	x := h.Sum64()
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// Lookup returns the replica owning key when every replica is live.
func (r *Ring) Lookup(key string) int {
	owner, _ := r.LookupLive(key, nil)
	return owner
}

// LookupLive returns the first replica at or clockwise of key's position for
// which live returns true (nil means every replica is live).  The walk
// visits each distinct replica at most once; false reports that no live
// replica exists.  Keys owned by a down replica fall to the next live point
// clockwise, so its hash ranges are spread over the survivors rather than
// dumped onto a single neighbour.
func (r *Ring) LookupLive(key string, live func(int) bool) (int, bool) {
	h := hashKey(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	tried := 0
	var visited [64]bool // replica fleets are small; fall back to a map beyond
	var visitedMap map[int]bool
	if r.n > len(visited) {
		visitedMap = make(map[int]bool, r.n)
	}
	for i := 0; i < len(r.points) && tried < r.n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if visitedMap != nil {
			if visitedMap[p.replica] {
				continue
			}
			visitedMap[p.replica] = true
		} else {
			if visited[p.replica] {
				continue
			}
			visited[p.replica] = true
		}
		tried++
		if live == nil || live(p.replica) {
			return p.replica, true
		}
	}
	return 0, false
}
