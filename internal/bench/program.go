package bench

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/circuit"
	"repro/internal/semiring"
	"repro/internal/structure"
)

// e14Circuit builds the deterministic ≥10k-gate benchmark circuit for E14:
// the wide-and-shallow shape the compiler emits (input leaves, constant
// factors, small permanent gates, wide adders, a product layer), large
// enough that the memory layout of the gates dominates evaluation cost.
func e14Circuit() (*circuit.Circuit, circuit.Valuation[int64], []structure.WeightKey) {
	c := circuit.NewBuilder()
	rng := rand.New(rand.NewSource(14))
	const nInputs = 4000
	inputs := make([]int, nInputs)
	keys := make([]structure.WeightKey, nInputs)
	for i := range inputs {
		keys[i] = structure.MakeWeightKey("w", structure.Tuple{i})
		inputs[i] = c.Input(keys[i])
	}
	var muls []int
	for i := 0; i+1 < nInputs; i++ {
		muls = append(muls, c.Mul(inputs[i], inputs[i+1], c.ConstInt(int64(i%7+2))))
	}
	var perms []int
	for i := 0; i < 2000; i++ {
		const rows, cols = 2, 4
		var entries []circuit.PermEntry
		for r := 0; r < rows; r++ {
			for col := 0; col < cols; col++ {
				entries = append(entries, circuit.PermEntry{Row: r, Col: col, Gate: inputs[rng.Intn(nInputs)]})
			}
		}
		perms = append(perms, c.Perm(rows, cols, entries))
	}
	pool := append(append([]int{}, muls...), perms...)
	var adds []int
	for i := 0; i+20 <= len(pool); i += 20 {
		adds = append(adds, c.Add(pool[i:i+20]...))
	}
	var top []int
	for i := 0; i+2 <= len(adds); i += 2 {
		top = append(top, c.Mul(adds[i], adds[i+1]))
	}
	c.SetOutput(c.Add(top...))
	if c.NumGates() < 10000 {
		panic(fmt.Sprintf("E14: benchmark circuit has only %d gates, want ≥ 10000", c.NumGates()))
	}
	val := func(key structure.WeightKey) (int64, bool) { return int64(len(key.Tuple)%4) + 1, true }
	return c, val, keys
}

// bestOf runs f reps times and returns the fastest wall time, damping
// scheduler noise for the layout comparison.
func bestOf(reps int, f func()) time.Duration {
	best := time.Duration(0)
	for i := 0; i < reps; i++ {
		if d := timeIt(f); i == 0 || d < best {
			best = d
		}
	}
	return best
}

// e14Measurements holds one run of the E14 comparison.
type e14Measurements struct {
	gates         int
	legacyEval    time.Duration
	programEval   time.Duration
	updatesPerSec float64
	legacyBytes   int64
	programBytes  int64
}

func e14Measure(reps int) e14Measurements {
	c, val, keys := e14Circuit()
	p := c.Program()
	m := e14Measurements{gates: c.NumGates()}

	m.legacyEval = bestOf(reps, func() { circuit.LegacyEvaluateAll[int64](c, semiring.Nat, val) })
	m.programEval = bestOf(reps, func() { circuit.EvaluateAllProgram[int64](p, semiring.Nat, val) })

	dyn := circuit.NewDynamicProgram[int64](p, semiring.Nat, val)
	hot := keys[:256]
	// Warm-up: grow the wave scratch to steady-state capacity.
	for round := 0; round < 3; round++ {
		for i, k := range hot {
			dyn.SetInput(k, int64(round+i%4+1))
		}
	}
	const updates = 4096
	upd := timeIt(func() {
		for i := 0; i < updates; i++ {
			dyn.SetInput(hot[i%len(hot)], int64(i%5+1))
		}
	})
	m.updatesPerSec = float64(updates) / upd.Seconds()

	m.legacyBytes = c.LegacyFootprint()
	m.programBytes = p.Footprint()
	return m
}

// E14ProgramLayout compares the frozen Program (CSR/struct-of-arrays) layout
// against the legacy array-of-structs gate walk on the ≥10k-gate benchmark
// circuit: full-circuit evaluation throughput, dynamic updates per second on
// the Program engine, and resident bytes per gate of each layout.
func E14ProgramLayout(quick bool) *Table {
	reps := 5
	if quick {
		reps = 3
	}
	m := e14Measure(reps)
	t := &Table{
		ID:     "E14",
		Title:  "Program vs legacy circuit layout",
		Claim:  "freezing the circuit into one CSR program (shared children arena, interned small-int constants, baked ranks and levels) evaluates at least as fast as the pointer-chasing gate structs and stores the circuit in fewer bytes per gate",
		Header: []string{"layout", "gates", fmt.Sprintf("eval (best of %d)", reps), "evals/s", "upd/s", "bytes/gate"},
	}
	evalsPerSec := func(d time.Duration) string { return fmt.Sprintf("%.1f", 1/d.Seconds()) }
	bytesPerGate := func(b int64) string { return fmt.Sprintf("%.1f", float64(b)/float64(m.gates)) }
	t.Rows = append(t.Rows,
		[]string{"legacy", fmt.Sprint(m.gates), dur(m.legacyEval), evalsPerSec(m.legacyEval), "—", bytesPerGate(m.legacyBytes)},
		[]string{"program", fmt.Sprint(m.gates), dur(m.programEval), evalsPerSec(m.programEval), fmt.Sprintf("%.0f", m.updatesPerSec), bytesPerGate(m.programBytes)},
	)
	t.Notes = append(t.Notes,
		fmt.Sprintf("program eval speedup %.2fx, program layout uses %.1f%% of the legacy bytes", float64(m.legacyEval)/float64(m.programEval), 100*float64(m.programBytes)/float64(m.legacyBytes)),
		"the dynamic engine runs only on the Program layout (it borrows the frozen ranks and parents CSR), so the legacy row has no upd/s",
	)
	return t
}

// E14Check runs the E14 comparison as a pass/fail smoke check (used by CI):
// Program evaluation must not be slower than the legacy layout and must use
// fewer bytes per gate.  The timing gate allows a 10% margin so that
// co-tenant noise on shared CI runners cannot red-light an unrelated change;
// the steady-state advantage it guards is ≥1.3x.
func E14Check() error {
	m := e14Measure(5)
	if float64(m.programEval) > 1.1*float64(m.legacyEval) {
		return fmt.Errorf("E14: program eval %v is slower than legacy eval %v on the %d-gate circuit",
			m.programEval, m.legacyEval, m.gates)
	}
	if m.programBytes >= m.legacyBytes {
		return fmt.Errorf("E14: program layout (%d bytes) is not smaller than the legacy layout (%d bytes)",
			m.programBytes, m.legacyBytes)
	}
	fmt.Printf("E14 ok: %d gates, eval legacy %v vs program %v (%.2fx), %d vs %d bytes (%.1f%%), %.0f upd/s\n",
		m.gates, m.legacyEval, m.programEval,
		float64(m.legacyEval)/float64(m.programEval),
		m.legacyBytes, m.programBytes, 100*float64(m.programBytes)/float64(m.legacyBytes),
		m.updatesPerSec)
	return nil
}
