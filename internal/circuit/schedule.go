// Level scheduling and parallel evaluation.
//
// The circuits produced by internal/compile are wide and shallow: Theorem 6
// bounds their depth by a constant depending only on the query, while the
// number of gates grows linearly with the database.  That shape is ideal for
// level-parallel evaluation: group gates by depth (the length of the longest
// path from a leaf), then evaluate each level's gates concurrently — every
// child of a depth-d gate has depth < d, so within a level gates are
// independent.  Permanent gates, with their O(2^rows·rows·cols) column
// dynamic program, dominate evaluation time and parallelise across the pool.
//
// The schedule depends only on the circuit topology, never on the semiring
// or the valuation, so it is computed once (internal/compile does so at
// circuit-build time) and reused across evaluations.
package circuit

import (
	"runtime"
	"sync"

	"repro/internal/semiring"
)

// Schedule is a level decomposition of a circuit: Levels[d] lists the ids of
// all gates whose depth is exactly d, in increasing id order.  A schedule is
// immutable once built and is safe for concurrent use by any number of
// evaluations.
type Schedule struct {
	// Levels groups gate ids by depth; level 0 holds the leaves (inputs and
	// constants).
	Levels [][]int

	gates int
}

// NewSchedule computes the level decomposition of the circuit in one pass
// over the gates (they are stored in topological order).
func NewSchedule(c *Circuit) *Schedule {
	depth := make([]int, len(c.Gates))
	maxDepth := 0
	for id := range c.Gates {
		d := 0
		g := &c.Gates[id]
		for _, ch := range g.Children {
			if depth[ch]+1 > d {
				d = depth[ch] + 1
			}
		}
		for _, e := range g.Entries {
			if depth[e.Gate]+1 > d {
				d = depth[e.Gate] + 1
			}
		}
		depth[id] = d
		if d > maxDepth {
			maxDepth = d
		}
	}
	levels := make([][]int, maxDepth+1)
	counts := make([]int, maxDepth+1)
	for _, d := range depth {
		counts[d]++
	}
	for d := range levels {
		levels[d] = make([]int, 0, counts[d])
	}
	for id, d := range depth {
		levels[d] = append(levels[d], id)
	}
	return &Schedule{Levels: levels, gates: len(c.Gates)}
}

// Depth returns the number of levels minus one, i.e. the circuit depth.
func (sc *Schedule) Depth() int { return len(sc.Levels) - 1 }

// NumGates returns the number of gates the schedule covers.
func (sc *Schedule) NumGates() int { return sc.gates }

// MaxWidth returns the size of the largest level, an upper bound on the
// useful degree of parallelism.
func (sc *Schedule) MaxWidth() int {
	w := 0
	for _, lvl := range sc.Levels {
		if len(lvl) > w {
			w = len(lvl)
		}
	}
	return w
}

// EvalOptions configures parallel evaluation.
type EvalOptions struct {
	// Workers is the size of the worker pool; values ≤ 0 select
	// runtime.GOMAXPROCS(0).
	Workers int

	// Schedule is an optional precomputed level schedule for the circuit
	// being evaluated.  When nil, a schedule is computed on the fly.  A
	// schedule built for a different circuit (or a stale prefix of this one)
	// must not be passed.
	Schedule *Schedule
}

// minGatesPerWorker is the smallest slice of a level worth handing to a
// separate goroutine; levels narrower than 2·minGatesPerWorker run on the
// calling goroutine.  Cheap gates (add/mul over a few children) cost tens of
// nanoseconds, so very fine-grained fan-out would be pure overhead.
const minGatesPerWorker = 32

// ParallelEvaluate computes the value of the output gate like Evaluate, but
// evaluates each topological level's gates across a worker pool.
func ParallelEvaluate[T any](c *Circuit, s semiring.Semiring[T], v Valuation[T], opts EvalOptions) T {
	if c.Output < 0 {
		panic("circuit: no output gate set")
	}
	vals := ParallelEvaluateAll(c, s, v, opts)
	return vals[c.Output]
}

// ParallelEvaluateAll computes the value of every gate, like EvaluateAll,
// using opts.Workers goroutines per level.  The result is identical to
// EvaluateAll for any semiring: levels are processed in increasing depth
// order and gates within a level are independent, so the evaluation order
// difference is invisible (each gate folds its own children sequentially).
//
// The valuation v and the semiring s are called from multiple goroutines
// concurrently; both must be safe for concurrent use.  All the semirings in
// internal/semiring and the valuations built by compile.NewValuation are
// read-only and qualify.
func ParallelEvaluateAll[T any](c *Circuit, s semiring.Semiring[T], v Valuation[T], opts EvalOptions) []T {
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	sched := opts.Schedule
	if sched == nil {
		sched = NewSchedule(c)
	} else if sched.gates != len(c.Gates) {
		panic("circuit: schedule does not match circuit (was the circuit extended after scheduling?)")
	}

	vals := make([]T, len(c.Gates))
	if workers == 1 {
		for _, level := range sched.Levels {
			for _, id := range level {
				evaluateGate(c, s, v, id, vals)
			}
		}
		return vals
	}

	var wg sync.WaitGroup
	for _, level := range sched.Levels {
		n := len(level)
		chunks := workers
		if max := n / minGatesPerWorker; chunks > max {
			chunks = max
		}
		if chunks <= 1 {
			for _, id := range level {
				evaluateGate(c, s, v, id, vals)
			}
			continue
		}
		// Contiguous chunks: gates within a level touch disjoint vals slots,
		// so no synchronisation beyond the per-level barrier is needed.
		chunkSize := (n + chunks - 1) / chunks
		wg.Add(chunks)
		for w := 0; w < chunks; w++ {
			lo := w * chunkSize
			hi := lo + chunkSize
			if hi > n {
				hi = n
			}
			go func(ids []int) {
				defer wg.Done()
				for _, id := range ids {
					evaluateGate(c, s, v, id, vals)
				}
			}(level[lo:hi])
		}
		wg.Wait()
	}
	return vals
}
