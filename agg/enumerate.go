package agg

import (
	"context"
	"iter"

	"repro/internal/obs"
)

// Answer is one answer tuple of a formula query: one database element per
// answer variable, in AnswerVars order.
type Answer []int

// AnswerVars returns the answer variables of an enumerable query, in the
// order Answer tuples are laid out (nil for non-enumerable queries).
func (p *Prepared) AnswerVars() []string {
	if p.enum == nil {
		return nil
	}
	return append([]string(nil), p.vars...)
}

// Enumerate streams the answer set of a formula query with constant delay
// between answers (Theorem 24), as a range-over iterator:
//
//	for ans, err := range p.Enumerate(ctx) {
//	    if err != nil { ... }        // at most one, always the last pair
//	    use(ans)
//	}
//
// The preprocessing was paid at Prepare; each Enumerate draws an independent
// cursor over the shared enumeration structure, so any number of streams may
// run concurrently.  When ctx is cancelled the stream stops between answers
// and yields the context's error as its final pair.  Expression-mode queries
// yield ErrNotEnumerable.
func (p *Prepared) Enumerate(ctx context.Context) iter.Seq2[Answer, error] {
	ctx = ensureCtx(ctx)
	return func(yield func(Answer, error) bool) {
		if p.enum == nil {
			yield(nil, errorf(ErrNotEnumerable, p.text, "Enumerate needs a first-order formula or a boolean nested query with free variables"))
			return
		}
		if err := ctx.Err(); err != nil {
			yield(nil, err)
			return
		}
		// One eval span covers the whole stream: the time from the first to
		// the last answer drawn, however the consumer paces the iteration.
		evalSpan := obs.FromContext(ctx).StartSpan(obs.StageEval)
		defer evalSpan.End()
		cur := p.enum.ans.Cursor()
		done := ctx.Done()
		for {
			t, ok := cur.Next()
			if !ok {
				return
			}
			if !yield(Answer(t), nil) {
				return
			}
			select {
			case <-done:
				yield(nil, ctx.Err())
				return
			default:
			}
		}
	}
}

// AnswerCount returns the number of answers of a formula query, computed
// from the circuit without enumerating them.  The enumeration state never
// receives updates, so the total is a constant: the linear-time pass runs
// at most once per Prepare and is memoised across In/Workers rebinds.
func (p *Prepared) AnswerCount(ctx context.Context) (int64, error) {
	if p.enum == nil {
		return 0, errorf(ErrNotEnumerable, p.text, "AnswerCount needs a first-order formula or a boolean nested query with free variables")
	}
	if err := ensureCtx(ctx).Err(); err != nil {
		return 0, err
	}
	evalSpan := obs.FromContext(ctx).StartSpan(obs.StageEval)
	p.enum.countOnce.Do(func() { p.enum.count = p.enum.ans.Count() })
	evalSpan.End()
	return p.enum.count, nil
}
