// Command aggserve is the long-lived query-serving daemon: it loads one or
// more databases at startup, compiles queries on demand through the public
// repro/agg facade into an LRU cache of compiled circuits, and serves
// concurrent clients over HTTP/JSON — semiring evaluation, point queries,
// dynamic-update sessions and constant-delay enumeration all amortise one
// compilation (Theorem 6) across many requests.  Sessions also push:
// GET /subscribe streams live re-evaluated updates (SSE or NDJSON, resumable
// via Last-Event-ID, slow clients coalesce instead of stalling the writer)
// and POST /ingest applies an NDJSON change stream as coalesced batch waves
// with epoch acks on the same connection.  Client disconnects cancel the
// work they were waiting for.
//
// With -route, aggserve instead runs as a fleet router: it loads no
// database and consistent-hashes every request across the given replicas —
// compiled-query cache keys for /query, /enumerate and /analyze, session
// names (sticky) for /session, /point, /update, /batch, /subscribe and
// /ingest, streamed through with per-chunk flushing — with health probes,
// fail-over, and fleet-wide /stats and /metrics aggregation.
//
// Usage:
//
//	aggserve -kind grid -n 4096 -listen :8080
//	aggserve -db traffic=roads.txt -db social=graph.txt
//	agggen -kind bounded-degree -n 10000 | aggserve -stdin
//	aggserve -log-format json -log-level debug -slow-query 100ms -pprof-addr localhost:6060
//	aggserve -listen :8080 -route http://10.0.0.1:8081,http://10.0.0.2:8081
//
//	curl -X POST localhost:8080/query \
//	  -d '{"expr":"sum x, y . [E(x,y)] * w(x,y)","semiring":"natural"}'
//	curl -X POST localhost:8080/batch \
//	  -d '{"session":"s","updates":[{"weight":"w","tuple":[0,1],"value":7}]}'
//	curl localhost:8080/stats
//	curl localhost:8080/metrics
//
// See the README for the full endpoint reference and metrics catalogue.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/agg"
	"repro/internal/fleet"
	"repro/internal/server"
)

// dbFlags collects repeated -db name=path mounts.
type dbFlags []string

func (d *dbFlags) String() string { return strings.Join(*d, ",") }

func (d *dbFlags) Set(v string) error {
	if !strings.Contains(v, "=") {
		return fmt.Errorf("-db expects name=path, got %q", v)
	}
	*d = append(*d, v)
	return nil
}

// newLogger builds the process logger from the -log-format/-log-level flags.
// Operator output and per-request access logs share this one format.
func newLogger(format, level string) (*slog.Logger, error) {
	var lvl slog.Level
	if err := lvl.UnmarshalText([]byte(level)); err != nil {
		return nil, fmt.Errorf("-log-level %q: %w", level, err)
	}
	opts := &slog.HandlerOptions{Level: lvl}
	switch format {
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, opts)), nil
	}
	return nil, fmt.Errorf("-log-format %q: want text or json", format)
}

func main() {
	var dbs dbFlags
	listen := flag.String("listen", ":8080", "address to serve HTTP on")
	flag.Var(&dbs, "db", "mount a database: name=path (dbio format, repeatable)")
	stdin := flag.Bool("stdin", false, "mount the database read from stdin as \"default\"")
	kind := flag.String("kind", "grid", "generated workload kind for the default database (used when no -db/-stdin)")
	n := flag.Int("n", 2000, "generated database size")
	seed := flag.Int64("seed", 1, "random seed for the generated database")
	workers := flag.Int("workers", 0, "worker goroutines per circuit evaluation (0 = GOMAXPROCS)")
	cacheSize := flag.Int("cache", 128, "maximum number of cached compiled queries")
	maxVars := flag.Int("maxvars", 0, "compiler MaxVars bound (0 = default)")
	logFormat := flag.String("log-format", "text", "log output format: text or json")
	logLevel := flag.String("log-level", "info", "minimum log level: debug, info, warn, error (debug enables per-request access logs)")
	slowQuery := flag.Duration("slow-query", 0, "log requests slower than this threshold at warn level (0 disables)")
	pprofAddr := flag.String("pprof-addr", "", "serve net/http/pprof on this address (e.g. localhost:6060; empty disables)")
	route := flag.String("route", "", "run as a fleet router over these comma-separated replica base URLs (no database is loaded)")
	healthInterval := flag.Duration("health-interval", time.Second, "router mode: period of the replica /healthz probe loop")
	vnodes := flag.Int("vnodes", 0, "router mode: virtual nodes per replica on the hash ring (0 = default)")
	flag.Parse()

	log, err := newLogger(*logFormat, *logLevel)
	if err != nil {
		fmt.Fprintf(os.Stderr, "aggserve: %v\n", err)
		os.Exit(2)
	}

	if *route != "" {
		runRouter(log, *listen, *route, *healthInterval, *vnodes)
		return
	}

	srv := server.New(server.Options{
		CacheSize: *cacheSize,
		Workers:   *workers,
		MaxVars:   *maxVars,
		Logger:    log,
		SlowQuery: *slowQuery,
	})

	if len(dbs) > 0 && *stdin {
		log.Error("-db and -stdin are mutually exclusive")
		os.Exit(2)
	}
	switch {
	case len(dbs) > 0:
		for _, spec := range dbs {
			name, path, _ := strings.Cut(spec, "=")
			db, err := agg.ReadDatabaseFile(path)
			if err != nil {
				log.Error("loading database", "spec", spec, "err", err)
				os.Exit(1)
			}
			srv.MountDatabaseValue(name, db)
			log.Info("mounted database", "name", name, "n", db.Elements(), "tuples", db.TupleCount())
		}
	default:
		db, err := agg.Load(agg.Source{Stdin: *stdin, Kind: *kind, N: *n, Seed: *seed})
		if err != nil {
			log.Error("loading database", "err", err)
			os.Exit(1)
		}
		srv.MountDatabaseValue("default", db)
		log.Info("mounted database", "name", "default", "n", db.Elements(), "tuples", db.TupleCount())
	}

	// Opt-in pprof on its own listener, so profiling stays off the serving
	// address (and off the open internet) unless explicitly bound.
	if *pprofAddr != "" {
		pprofMux := http.NewServeMux()
		pprofMux.HandleFunc("/debug/pprof/", pprof.Index)
		pprofMux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		pprofMux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		pprofMux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		pprofMux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		pprofSrv := newHTTPServer(*pprofAddr, pprofMux)
		go func() {
			if err := pprofSrv.ListenAndServe(); err != nil {
				log.Error("pprof listener", "addr", *pprofAddr, "err", err)
			}
		}()
		log.Info("pprof listening", "addr", *pprofAddr)
	}

	httpSrv := newHTTPServer(*listen, srv.Handler())
	goVersion, revision := server.BuildInfo()
	log.Info("aggserve listening",
		"addr", *listen,
		"semirings", agg.SemiringNames(),
		"goVersion", goVersion,
		"revision", revision)
	serve(log, httpSrv)
}

// newHTTPServer builds a listener with the slow-client timeouts every
// aggserve frontend sets: a client must deliver its request headers within
// ReadHeaderTimeout and keep-alive connections are reaped after IdleTimeout,
// so one slowloris peer cannot hold a connection slot forever.  Request
// bodies and responses stay un-deadlined: /enumerate legitimately streams
// for as long as the client reads.
func newHTTPServer(addr string, h http.Handler) *http.Server {
	return &http.Server{
		Addr:              addr,
		Handler:           h,
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       120 * time.Second,
	}
}

// serve runs the server until it fails or a SIGINT/SIGTERM triggers a
// graceful shutdown.
func serve(log *slog.Logger, httpSrv *http.Server) {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()

	select {
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Error("serve", "err", err)
			os.Exit(1)
		}
	case <-ctx.Done():
		log.Info("shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(shutdownCtx); err != nil {
			log.Error("shutdown", "err", err)
			os.Exit(1)
		}
	}
}

// runRouter is the -route mode: a consistent-hash router over an aggserve
// replica fleet.
func runRouter(log *slog.Logger, listen, route string, healthInterval time.Duration, vnodes int) {
	var replicas []string
	for _, u := range strings.Split(route, ",") {
		if u = strings.TrimSpace(u); u != "" {
			replicas = append(replicas, u)
		}
	}
	rt, err := fleet.New(fleet.Options{
		Replicas:       replicas,
		VNodes:         vnodes,
		HealthInterval: healthInterval,
		Logger:         log,
	})
	if err != nil {
		log.Error("router", "err", err)
		os.Exit(1)
	}
	defer rt.Close()
	log.Info("aggserve routing", "addr", listen, "replicas", replicas)
	serve(log, newHTTPServer(listen, rt.Handler()))
}
