package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/server"
)

// fanResult is one replica's answer to a fleet-wide fan-out.
type fanResult[T any] struct {
	rep *replica
	val T
	err error
}

// fanOut queries every replica concurrently — the by-id registry / async
// fan-out / await-all shape — bounding each replica by FanoutTimeout so a
// dead or slow replica delays the merged answer by at most one timeout and
// is reported as an error instead of being waited on.
func fanOut[T any](rt *Router, f func(ctx context.Context, rep *replica) (T, error)) []fanResult[T] {
	results := make([]fanResult[T], len(rt.replicas))
	var wg sync.WaitGroup
	for i, rep := range rt.replicas {
		wg.Add(1)
		go func(i int, rep *replica) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), rt.opts.FanoutTimeout)
			defer cancel()
			v, err := f(ctx, rep)
			results[i] = fanResult[T]{rep: rep, val: v, err: err}
		}(i, rep)
	}
	wg.Wait()
	return results
}

// getJSON fetches path from one replica into v over the shared client.
func (rt *Router) getJSON(ctx context.Context, rep *replica, path string, v any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, rep.id+path, nil)
	if err != nil {
		return err
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: status %d", path, resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

// RouterStats is the router's own serving state, nested under "router" in
// the fleet /stats document.
type RouterStats struct {
	Replicas      int            `json:"replicas"`
	Live          int            `json:"live"`
	Proxied       int64          `json:"proxied"`
	Reroutes      int64          `json:"reroutes"`
	Unavailable   int64          `json:"unavailable"`
	GatewayErrors int64          `json:"gatewayErrors"`
	UptimeSeconds float64        `json:"uptimeSeconds"`
	ReplicaStates []ReplicaState `json:"replicaStates"`
}

// FleetStats is the JSON document of the fleet-wide GET /stats: the merged
// counters under "fleet", each replica's own /stats under "replicas" (keyed
// by replica URL), scrape failures under "replicaErrors", and the router's
// proxy/health state under "router".
type FleetStats struct {
	Fleet         server.StatsSnapshot            `json:"fleet"`
	Replicas      map[string]server.StatsSnapshot `json:"replicas"`
	ReplicaErrors map[string]string               `json:"replicaErrors,omitempty"`
	Router        RouterStats                     `json:"router"`
}

func (rt *Router) routerStats() RouterStats {
	states := rt.ReplicaStates()
	rs := RouterStats{
		Replicas:      len(rt.replicas),
		Reroutes:      rt.reroutes.Load(),
		Unavailable:   rt.unavailable.Load(),
		GatewayErrors: rt.gateway.Load(),
		UptimeSeconds: time.Since(rt.start).Seconds(),
		ReplicaStates: states,
	}
	for _, st := range states {
		rs.Proxied += st.Proxied
		if st.Up {
			rs.Live++
		}
	}
	return rs
}

// FleetStatsSnapshot fans out to every replica's /stats and merges.
func (rt *Router) FleetStatsSnapshot() FleetStats {
	out := FleetStats{
		Replicas: make(map[string]server.StatsSnapshot, len(rt.replicas)),
		Router:   rt.routerStats(),
	}
	results := fanOut(rt, func(ctx context.Context, rep *replica) (server.StatsSnapshot, error) {
		var snap server.StatsSnapshot
		err := rt.getJSON(ctx, rep, "/stats", &snap)
		return snap, err
	})
	for _, res := range results {
		if res.err != nil {
			if out.ReplicaErrors == nil {
				out.ReplicaErrors = map[string]string{}
			}
			out.ReplicaErrors[res.rep.id] = res.err.Error()
			continue
		}
		out.Replicas[res.rep.id] = res.val
		mergeStats(&out.Fleet, &res.val)
	}
	return out
}

func (rt *Router) handleStats(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(rt.FleetStatsSnapshot())
}

// mergeStats folds one replica's snapshot into the fleet view: counters and
// byte totals sum, session epoch maps union (sticky routing keeps session
// names disjoint across replicas), uptime takes the oldest replica, and the
// build identity carries over from the first replica reporting one.
func mergeStats(dst, src *server.StatsSnapshot) {
	dst.Queries += src.Queries
	dst.Points += src.Points
	dst.Updates += src.Updates
	dst.UpdateBatches += src.UpdateBatches
	dst.Batches += src.Batches
	dst.BatchedUpdates += src.BatchedUpdates
	dst.Enumerations += src.Enumerations
	dst.Analyzes += src.Analyzes
	dst.Sessions += src.Sessions
	dst.Subscriptions += src.Subscriptions
	dst.Subscribers += src.Subscribers
	dst.Pushes += src.Pushes
	dst.PushCoalesced += src.PushCoalesced
	dst.Ingests += src.Ingests
	dst.IngestWaves += src.IngestWaves
	dst.IngestedChanges += src.IngestedChanges
	dst.Compiles += src.Compiles
	dst.CacheHits += src.CacheHits
	dst.CacheMisses += src.CacheMisses
	dst.CompileMillis += src.CompileMillis
	dst.EvalMillis += src.EvalMillis
	dst.InFlight += src.InFlight
	dst.Errors += src.Errors
	dst.Canceled += src.Canceled
	dst.Busy += src.Busy
	dst.CachedQueries += src.CachedQueries
	dst.Databases += src.Databases
	dst.CacheBytes += src.CacheBytes
	dst.CacheEntryBytes = append(dst.CacheEntryBytes, src.CacheEntryBytes...)
	dst.SessionRetainedUndoBytes += src.SessionRetainedUndoBytes
	if len(src.SessionEpochs) > 0 && dst.SessionEpochs == nil {
		dst.SessionEpochs = map[string]uint64{}
	}
	for name, epoch := range src.SessionEpochs {
		dst.SessionEpochs[name] = epoch
	}
	if src.UptimeSeconds > dst.UptimeSeconds {
		dst.UptimeSeconds = src.UptimeSeconds
		dst.StartTime = src.StartTime
	}
	if dst.GoVersion == "" {
		dst.GoVersion = src.GoVersion
	}
	if dst.Revision == "" {
		dst.Revision = src.Revision
	}
}

// ---------------------------------------------------------------------------
// Fleet-wide /metrics
// ---------------------------------------------------------------------------

// FleetMetricsSnapshot fans out to every replica's raw /metrics.json and
// merges: counters sum and histograms merge bucket-by-bucket, so a fleet
// histogram's every bucket count equals the sum of the corresponding
// per-replica buckets.  The int result counts replicas that failed to
// report.
func (rt *Router) FleetMetricsSnapshot() (*server.MetricsSnapshot, int) {
	merged := &server.MetricsSnapshot{
		Requests: map[string]obs.Snapshot{},
		Stages:   map[string]obs.Snapshot{},
	}
	failed := 0
	results := fanOut(rt, func(ctx context.Context, rep *replica) (*server.MetricsSnapshot, error) {
		var snap server.MetricsSnapshot
		err := rt.getJSON(ctx, rep, "/metrics.json", &snap)
		return &snap, err
	})
	for _, res := range results {
		if res.err != nil {
			res.rep.setErr(res.err)
			failed++
			continue
		}
		mergeStats(&merged.Stats, &res.val.Stats)
		merged.Push.Merge(&res.val.Push)
		for ep, snap := range res.val.Requests {
			have := merged.Requests[ep]
			have.Merge(&snap)
			merged.Requests[ep] = have
		}
		for st, snap := range res.val.Stages {
			have := merged.Stages[st]
			have.Merge(&snap)
			merged.Stages[st] = have
		}
	}
	return merged, failed
}

// handleMetrics serves the fleet-wide Prometheus exposition: the aggserve_*
// families re-emitted from the merged replica snapshots (histograms are the
// exact bucket sums), plus aggfleet_* families describing the router itself
// — per-replica liveness and gauges, reroute and error counters, and the
// router-side request latency per endpoint.
func (rt *Router) handleMetrics(w http.ResponseWriter, r *http.Request) {
	merged, failed := rt.FleetMetricsSnapshot()
	var buf bytes.Buffer
	pw := obs.NewWriter(&buf)

	st := &merged.Stats
	pw.Header("aggserve_requests_total", "Requests completed successfully, by endpoint (fleet-wide).", "counter")
	for _, c := range []struct {
		endpoint string
		v        int64
	}{
		{"query", st.Queries},
		{"session", st.Sessions},
		{"point", st.Points},
		{"update", st.UpdateBatches},
		{"batch", st.Batches},
		{"enumerate", st.Enumerations},
		{"subscribe", st.Subscriptions},
		{"ingest", st.Ingests},
		{"analyze", st.Analyzes},
	} {
		pw.Counter("aggserve_requests_total", obs.Labels{"endpoint": c.endpoint}, uint64(c.v))
	}

	pw.Header("aggserve_updates_applied_total", "Individual updates applied, by path (fleet-wide).", "counter")
	pw.Counter("aggserve_updates_applied_total", obs.Labels{"path": "single"}, uint64(st.Updates))
	pw.Counter("aggserve_updates_applied_total", obs.Labels{"path": "batched"}, uint64(st.BatchedUpdates))
	pw.Counter("aggserve_updates_applied_total", obs.Labels{"path": "ingested"}, uint64(st.IngestedChanges))

	for _, c := range []struct {
		name, help string
		v          int64
	}{
		{"aggserve_compiles_total", "Queries compiled across the fleet.", st.Compiles},
		{"aggserve_cache_hits_total", "Compiled-query cache hits across the fleet.", st.CacheHits},
		{"aggserve_cache_misses_total", "Compiled-query cache misses across the fleet.", st.CacheMisses},
		{"aggserve_errors_total", "Requests answered with a non-2xx status across the fleet.", st.Errors},
		{"aggserve_canceled_total", "Requests abandoned by their client across the fleet.", st.Canceled},
		{"aggserve_busy_total", "Fail-fast session-busy rejections (409) across the fleet.", st.Busy},
		{"aggserve_pushes_total", "Updates pushed to /subscribe clients across the fleet.", st.Pushes},
		{"aggserve_push_coalesced_total", "Evaluated results folded into pushed updates across the fleet.", st.PushCoalesced},
		{"aggserve_ingest_waves_total", "Batch waves committed by /ingest across the fleet.", st.IngestWaves},
	} {
		pw.Header(c.name, c.help, "counter")
		pw.Counter(c.name, nil, uint64(c.v))
	}

	pw.Header("aggserve_request_duration_seconds", "End-to-end replica request latency by endpoint, summed over replicas.", "histogram")
	for _, ep := range sortedKeys(merged.Requests) {
		snap := merged.Requests[ep]
		pw.Histogram("aggserve_request_duration_seconds", obs.Labels{"endpoint": ep}, &snap)
	}
	pw.Header("aggserve_stage_duration_seconds", "Internal pipeline stage latency, summed over replicas.", "histogram")
	for _, stage := range sortedKeys(merged.Stages) {
		snap := merged.Stages[stage]
		pw.Histogram("aggserve_stage_duration_seconds", obs.Labels{"stage": stage}, &snap)
	}
	pw.Header("aggserve_push_latency_seconds", "Commit-to-client push latency of /subscribe streams, summed over replicas.", "histogram")
	pw.Histogram("aggserve_push_latency_seconds", nil, &merged.Push)

	sessionsActive := len(st.SessionEpochs)
	for _, g := range []struct {
		name, help string
		v          float64
	}{
		{"aggserve_in_flight_requests", "Requests currently being served across the fleet.", float64(st.InFlight)},
		{"aggserve_cache_entries", "Compiled queries resident across all replica caches.", float64(st.CachedQueries)},
		{"aggserve_cache_bytes", "Total bytes of frozen circuit programs across all replica caches.", float64(st.CacheBytes)},
		{"aggserve_sessions_active", "Named sessions registered across the fleet.", float64(sessionsActive)},
		{"aggserve_subscribers_active", "Live /subscribe streams open across the fleet.", float64(st.Subscribers)},
		{"aggserve_databases", "Database mounts summed over replicas.", float64(st.Databases)},
		{"aggserve_session_retained_undo_bytes_total", "MVCC undo bytes pinned by open snapshot readers, fleet-wide.", float64(st.SessionRetainedUndoBytes)},
	} {
		pw.Header(g.name, g.help, "gauge")
		pw.Gauge(g.name, nil, g.v)
	}
	if sessionsActive > 0 {
		pw.Header("aggserve_session_epoch", "Updates committed per session (each session lives on exactly one replica).", "gauge")
		for _, name := range sortedKeys(st.SessionEpochs) {
			pw.Gauge("aggserve_session_epoch", obs.Labels{"session": name}, float64(st.SessionEpochs[name]))
		}
	}

	// Router-side families.
	rs := rt.routerStats()
	for _, g := range []struct {
		name, help string
		v          float64
	}{
		{"aggfleet_replicas", "Replicas configured on the ring.", float64(rs.Replicas)},
		{"aggfleet_replicas_live", "Replicas currently marked up.", float64(rs.Live)},
		{"aggfleet_uptime_seconds", "Seconds since the router started.", rs.UptimeSeconds},
		{"aggfleet_scrape_failures", "Replicas that failed to report to this scrape.", float64(failed)},
	} {
		pw.Header(g.name, g.help, "gauge")
		pw.Gauge(g.name, nil, g.v)
	}
	for _, c := range []struct {
		name, help string
		v          int64
	}{
		{"aggfleet_reroutes_total", "Requests rerouted to another replica after a dial failure.", rs.Reroutes},
		{"aggfleet_unavailable_total", "Requests answered 503: no live replica for the key.", rs.Unavailable},
		{"aggfleet_gateway_errors_total", "Requests answered 502: replica unreachable mid-exchange.", rs.GatewayErrors},
	} {
		pw.Header(c.name, c.help, "counter")
		pw.Counter(c.name, nil, uint64(c.v))
	}

	pw.Header("aggfleet_replica_up", "Replica liveness as seen by the router (1 up, 0 down).", "gauge")
	for _, s := range rs.ReplicaStates {
		up := 0.0
		if s.Up {
			up = 1
		}
		pw.Gauge("aggfleet_replica_up", obs.Labels{"replica": s.ID}, up)
	}
	pw.Header("aggfleet_replica_proxied_total", "Requests proxied to each replica.", "counter")
	for _, s := range rs.ReplicaStates {
		pw.Counter("aggfleet_replica_proxied_total", obs.Labels{"replica": s.ID}, uint64(s.Proxied))
	}
	pw.Header("aggfleet_replica_probe_failures_total", "Failed health probes per replica.", "counter")
	for _, s := range rs.ReplicaStates {
		pw.Counter("aggfleet_replica_probe_failures_total", obs.Labels{"replica": s.ID}, uint64(s.ProbeFailures))
	}
	pw.Header("aggfleet_replica_sessions", "Sessions registered on each replica (last readiness probe).", "gauge")
	for _, s := range rs.ReplicaStates {
		pw.Gauge("aggfleet_replica_sessions", obs.Labels{"replica": s.ID}, float64(s.Sessions))
	}
	pw.Header("aggfleet_replica_cache_entries", "Compiled queries cached on each replica (last readiness probe).", "gauge")
	for _, s := range rs.ReplicaStates {
		pw.Gauge("aggfleet_replica_cache_entries", obs.Labels{"replica": s.ID}, float64(s.CacheEntries))
	}

	pw.Header("aggfleet_request_duration_seconds", "Router-side end-to-end latency by endpoint (includes the proxy hop).", "histogram")
	for _, ep := range routerEndpoints {
		snap := rt.hist[ep].Snapshot()
		pw.Histogram("aggfleet_request_duration_seconds", obs.Labels{"endpoint": ep}, &snap)
	}

	if err := pw.Err(); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, _ = w.Write(buf.Bytes())
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
