package circuit

import (
	"math/big"
	"math/rand"
	"testing"

	"repro/internal/provenance"
	"repro/internal/semiring"
	"repro/internal/structure"
)

// TestApplyBatchMatchesSequentialUpdates checks, on random circuits, that
// applying a batch of input changes is observationally identical to applying
// the same changes one at a time through SetInput.
func TestApplyBatchMatchesSequentialUpdates(t *testing.T) {
	r := rand.New(rand.NewSource(91))
	for round := 0; round < 30; round++ {
		nInputs := r.Intn(6) + 2
		c := randomCircuit(r, nInputs, r.Intn(10)+4)
		vals := randomValues(r, nInputs)
		batched := NewDynamic[int64](c, semiring.Nat, valuationFor(vals))
		single := NewDynamic[int64](c, semiring.Nat, valuationFor(vals))
		for step := 0; step < 8; step++ {
			batch := make([]InputChange[int64], r.Intn(6)+1)
			for i := range batch {
				// Duplicate keys within a batch are deliberate: the last
				// value must win, as it does for sequential SetInput.
				batch[i] = InputChange[int64]{Key: key("w", r.Intn(nInputs)), Value: int64(r.Intn(5))}
			}
			batched.ApplyBatch(batch)
			for _, ch := range batch {
				single.SetInput(ch.Key, ch.Value)
			}
			for id := range c.Gates {
				if batched.GateValue(id) != single.GateValue(id) {
					t.Fatalf("round %d step %d: gate %d batched %d, sequential %d",
						round, step, id, batched.GateValue(id), single.GateValue(id))
				}
			}
		}
	}
}

// TestDynamicOracleRandomized interleaves single updates and batches across
// the natural, min-plus and provenance semirings (plus the ring and finite
// fast paths) and checks every result against full re-evaluation.
func TestDynamicOracleRandomized(t *testing.T) {
	r := rand.New(rand.NewSource(137))
	mod := semiring.NewModular(7)
	trunc := semiring.NewTruncated(4)
	for round := 0; round < 12; round++ {
		nInputs := r.Intn(6) + 2
		c := randomCircuit(r, nInputs, r.Intn(10)+4)
		vals := randomValues(r, nInputs)

		// One dynamic evaluator per semiring, all driven by the same updates.
		nat := NewDynamic[int64](c, semiring.Nat, valuationFor(vals))
		ring := NewDynamic[int64](c, semiring.Int, valuationFor(vals))
		fin := NewDynamic[int64](c, trunc, func(k structure.WeightKey) (int64, bool) {
			v, ok := valuationFor(vals)(k)
			return trunc.Add(v, 0), ok
		})
		finMod := NewDynamic[int64](c, mod, func(k structure.WeightKey) (int64, bool) {
			v, ok := valuationFor(vals)(k)
			return mod.Add(v, 0), ok
		})
		toExt := func(v int64) semiring.Ext {
			if v == 0 {
				return semiring.Infinite
			}
			return semiring.Fin(v)
		}
		mp := NewDynamic[semiring.Ext](c, semiring.MinPlus, func(k structure.WeightKey) (semiring.Ext, bool) {
			v, ok := valuationFor(vals)(k)
			return toExt(v), ok
		})
		toPoly := func(i int, v int64) *provenance.Poly {
			if v == 0 {
				return provenance.NewPoly()
			}
			p := provenance.NewPoly()
			m := provenance.NewMonomial(provenance.Generator(structure.Tuple{i}.Key()))
			p.AddMonomial(m, v)
			return p
		}
		provVal := func(k structure.WeightKey) (*provenance.Poly, bool) {
			tp := structure.ParseTupleKey(k.Tuple)
			if k.Weight != "w" || len(tp) != 1 || tp[0] < 0 || tp[0] >= len(vals) {
				return nil, false
			}
			return toPoly(tp[0], vals[tp[0]]), true
		}
		prov := NewDynamic[*provenance.Poly](c, provenance.Free, provVal)

		check := func(step int) {
			t.Helper()
			if got, want := nat.Value(), Evaluate[int64](c, semiring.Nat, valuationFor(vals)); got != want {
				t.Fatalf("round %d step %d: ℕ dynamic %d, oracle %d", round, step, got, want)
			}
			if got, want := ring.Value(), Evaluate[int64](c, semiring.Int, valuationFor(vals)); got != want {
				t.Fatalf("round %d step %d: ℤ dynamic %d, oracle %d", round, step, got, want)
			}
			wantFin := Evaluate[int64](c, trunc, func(k structure.WeightKey) (int64, bool) {
				v, ok := valuationFor(vals)(k)
				return trunc.Add(v, 0), ok
			})
			if got := fin.Value(); !trunc.Equal(got, wantFin) {
				t.Fatalf("round %d step %d: truncated dynamic %d, oracle %d", round, step, got, wantFin)
			}
			wantMod := Evaluate[int64](c, mod, func(k structure.WeightKey) (int64, bool) {
				v, ok := valuationFor(vals)(k)
				return mod.Add(v, 0), ok
			})
			if got := finMod.Value(); !mod.Equal(got, wantMod) {
				t.Fatalf("round %d step %d: mod-7 dynamic %d, oracle %d", round, step, got, wantMod)
			}
			wantMP := Evaluate[semiring.Ext](c, semiring.MinPlus, func(k structure.WeightKey) (semiring.Ext, bool) {
				v, ok := valuationFor(vals)(k)
				return toExt(v), ok
			})
			if got := mp.Value(); !semiring.MinPlus.Equal(got, wantMP) {
				t.Fatalf("round %d step %d: min-plus dynamic %v, oracle %v", round, step, got, wantMP)
			}
			wantProv := Evaluate[*provenance.Poly](c, provenance.Free, provVal)
			if got := prov.Value(); !provenance.Free.Equal(got, wantProv) {
				t.Fatalf("round %d step %d: provenance dynamic %s, oracle %s",
					round, step, provenance.Free.Format(got), provenance.Free.Format(wantProv))
			}
		}
		check(-1)
		for step := 0; step < 12; step++ {
			if r.Intn(2) == 0 {
				// Single update.
				i := r.Intn(nInputs)
				vals[i] = int64(r.Intn(5))
				nat.SetInput(key("w", i), vals[i])
				ring.SetInput(key("w", i), vals[i])
				fin.SetInput(key("w", i), trunc.Add(vals[i], 0))
				finMod.SetInput(key("w", i), mod.Add(vals[i], 0))
				mp.SetInput(key("w", i), toExt(vals[i]))
				prov.SetInput(key("w", i), toPoly(i, vals[i]))
			} else {
				// Batch of updates, possibly with repeated keys.
				size := r.Intn(2*nInputs) + 1
				idx := make([]int, size)
				val := make([]int64, size)
				for j := range idx {
					idx[j] = r.Intn(nInputs)
					val[j] = int64(r.Intn(5))
					vals[idx[j]] = val[j]
				}
				mkBatch := func(f func(i int, v int64) InputChange[int64]) []InputChange[int64] {
					out := make([]InputChange[int64], size)
					for j := range out {
						out[j] = f(idx[j], val[j])
					}
					return out
				}
				nat.ApplyBatch(mkBatch(func(i int, v int64) InputChange[int64] {
					return InputChange[int64]{Key: key("w", i), Value: v}
				}))
				ring.ApplyBatch(mkBatch(func(i int, v int64) InputChange[int64] {
					return InputChange[int64]{Key: key("w", i), Value: v}
				}))
				fin.ApplyBatch(mkBatch(func(i int, v int64) InputChange[int64] {
					return InputChange[int64]{Key: key("w", i), Value: trunc.Add(v, 0)}
				}))
				finMod.ApplyBatch(mkBatch(func(i int, v int64) InputChange[int64] {
					return InputChange[int64]{Key: key("w", i), Value: mod.Add(v, 0)}
				}))
				mpBatch := make([]InputChange[semiring.Ext], size)
				for j := range mpBatch {
					mpBatch[j] = InputChange[semiring.Ext]{Key: key("w", idx[j]), Value: toExt(val[j])}
				}
				mp.ApplyBatch(mpBatch)
				provBatch := make([]InputChange[*provenance.Poly], size)
				for j := range provBatch {
					provBatch[j] = InputChange[*provenance.Poly]{Key: key("w", idx[j]), Value: toPoly(idx[j], val[j])}
				}
				prov.ApplyBatch(provBatch)
			}
			check(step)
		}
	}
}

// TestApplyBatchRevertIsNoOp checks that a batch setting a key away from and
// back to its current value leaves every gate untouched.
func TestApplyBatchRevertIsNoOp(t *testing.T) {
	c := buildTriangleLike(4)
	vals := map[structure.WeightKey]int64{}
	r := rand.New(rand.NewSource(5))
	for a := 0; a < 4; a++ {
		for _, w := range []string{"u", "v", "w"} {
			vals[key(w, a)] = int64(r.Intn(4) + 1)
		}
	}
	val := func(k structure.WeightKey) (int64, bool) { v, ok := vals[k]; return v, ok }
	d := NewDynamic[int64](c, semiring.Nat, val)
	before := make([]int64, c.NumGates())
	for id := range c.Gates {
		before[id] = d.GateValue(id)
	}
	cur := vals[key("u", 0)]
	d.ApplyBatch([]InputChange[int64]{
		{Key: key("u", 0), Value: cur + 10},
		{Key: key("u", 0), Value: cur},
	})
	for id := range c.Gates {
		if d.GateValue(id) != before[id] {
			t.Fatalf("gate %d changed from %d to %d after a revert batch", id, before[id], d.GateValue(id))
		}
	}
	// Unknown keys in a batch are ignored.
	d.ApplyBatch([]InputChange[int64]{{Key: key("unrelated", 9), Value: 99}})
	if d.Value() != before[c.Output] {
		t.Fatalf("unknown batched key changed the output value")
	}
}

// TestNewDynamicRejectsNonTopologicalCircuits is the property test for the
// topological-order precondition: NewDynamic must panic on any circuit whose
// gate ids are not topologically ordered, since propagation (and EvaluateAll)
// processes gates in rank order derived from that invariant.
func TestNewDynamicRejectsNonTopologicalCircuits(t *testing.T) {
	r := rand.New(rand.NewSource(53))
	mustPanic := func(name string, c *Circuit) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: NewDynamic accepted a non-topological circuit", name)
			}
		}()
		NewDynamic[int64](c, semiring.Nat, func(structure.WeightKey) (int64, bool) { return 1, true })
	}
	for round := 0; round < 20; round++ {
		// Start from a valid random circuit, then rewire one gate to point at
		// a later (or equal) gate id, breaking the topological order.
		nInputs := r.Intn(4) + 2
		c := randomCircuit(r, nInputs, r.Intn(8)+4)
		var candidates []int
		for id, g := range c.Gates {
			if (g.Kind == KindAdd || g.Kind == KindMul) && id < len(c.Gates)-1 {
				candidates = append(candidates, id)
			}
		}
		if len(candidates) == 0 {
			continue
		}
		id := candidates[r.Intn(len(candidates))]
		bad := id + r.Intn(len(c.Gates)-id) // some gate with id ≥ the parent's
		c.Gates[id].Children[r.Intn(len(c.Gates[id].Children))] = bad
		mustPanic("rewired", c)
	}
	// A hand-built forward reference panics too.
	c := &Circuit{
		Gates: []Gate{
			{Kind: KindAdd, Children: []int{1}},
			{Kind: KindConst, N: big.NewInt(2)},
		},
		Output: 0,
	}
	mustPanic("forward reference", c)
	// Valid circuits still work.
	ok := randomCircuit(r, 3, 6)
	NewDynamic[int64](ok, semiring.Nat, func(structure.WeightKey) (int64, bool) { return 1, true })
}

// collidingFormat wraps a finite semiring with a Format that is constant on
// the carrier, modelling diagnostics-oriented renderings that are not
// injective; elemIndex must fall back to Equal scans and stay correct.
type collidingFormat struct{ semiring.Truncated }

func (collidingFormat) Format(int64) string { return "∗" }

// TestFiniteCarrierIndexPaths drives the finite adder path through both
// elemIndex strategies: a >32-element carrier with injective Format (the
// precomputed map) and the same carrier with a colliding Format (the map is
// dropped at NewDynamic and the Equal-scan fallback takes over).
func TestFiniteCarrierIndexPaths(t *testing.T) {
	big := semiring.NewTruncated(40) // 41 elements: above the scan limit
	coll := collidingFormat{big}
	r := rand.New(rand.NewSource(61))
	for round := 0; round < 10; round++ {
		nInputs := r.Intn(5) + 2
		c := randomCircuit(r, nInputs, r.Intn(8)+4)
		vals := randomValues(r, nInputs)
		mapped := NewDynamic[int64](c, big, valuationFor(vals))
		scanned := NewDynamic[int64](c, coll, valuationFor(vals))
		for step := 0; step < 10; step++ {
			i := r.Intn(nInputs)
			vals[i] = int64(r.Intn(5))
			mapped.SetInput(key("w", i), vals[i])
			scanned.SetInput(key("w", i), vals[i])
			want := Evaluate[int64](c, big, valuationFor(vals))
			if got := mapped.Value(); !big.Equal(got, want) {
				t.Fatalf("round %d step %d: mapped finite path %d, oracle %d", round, step, got, want)
			}
			if got := scanned.Value(); !big.Equal(got, want) {
				t.Fatalf("round %d step %d: colliding-Format fallback %d, oracle %d", round, step, got, want)
			}
		}
	}
}

// TestGenericUpdateZeroAllocs is the allocation-regression guard: after
// warm-up, single updates and batches on the generic path must not allocate.
// The circuit mixes the shapes that matter — shared mul gates, a wide adder
// with its aggregation tree, and a permanent gate backed by perm.Dynamic.
func TestGenericUpdateZeroAllocs(t *testing.T) {
	c := NewBuilder()
	const nInputs = 32
	inputs := make([]int, nInputs)
	for i := range inputs {
		inputs[i] = c.Input(key("w", i))
	}
	var muls []int
	for i := 0; i+1 < nInputs; i += 2 {
		muls = append(muls, c.Mul(inputs[i], inputs[i+1]))
	}
	wide := c.Add(muls...)
	var entries []PermEntry
	for col := 0; col < 8; col++ {
		entries = append(entries, PermEntry{Row: 0, Col: col, Gate: inputs[col]})
		entries = append(entries, PermEntry{Row: 1, Col: col, Gate: inputs[col+8]})
	}
	permGate := c.Perm(2, 8, entries)
	c.SetOutput(c.Add(wide, permGate))

	d := NewDynamic[int64](c, semiring.Nat, func(k structure.WeightKey) (int64, bool) {
		return 1, true
	})
	keys := make([]structure.WeightKey, nInputs)
	for i := range keys {
		keys[i] = key("w", i)
	}
	// Warm-up: grow every scratch buffer to steady-state capacity.
	for round := 0; round < 3; round++ {
		for i, k := range keys {
			d.SetInput(k, int64(round+i%4+1))
		}
	}

	step := 0
	allocs := testing.AllocsPerRun(200, func() {
		step++
		d.SetInput(keys[step%nInputs], int64(step%5+1))
	})
	if allocs != 0 {
		t.Errorf("SetInput allocates %.2f objects per steady-state generic-path update, want 0", allocs)
	}

	batch := make([]InputChange[int64], 8)
	allocs = testing.AllocsPerRun(200, func() {
		step++
		for i := range batch {
			batch[i] = InputChange[int64]{Key: keys[(step+i)%nInputs], Value: int64((step+i)%5 + 1)}
		}
		d.ApplyBatch(batch)
	})
	if allocs != 0 {
		t.Errorf("ApplyBatch allocates %.2f objects per steady-state batch, want 0", allocs)
	}
}

// BenchmarkDynamicGenericUpdate reports the per-update cost and allocation
// count of the generic path (run with -benchmem; the allocs/op column must
// stay at 0).
func BenchmarkDynamicGenericUpdate(b *testing.B) {
	r := rand.New(rand.NewSource(3))
	c := randomCircuit(r, 24, 60)
	vals := randomValues(r, 24)
	d := NewDynamic[int64](c, semiring.Nat, valuationFor(vals))
	keys := make([]structure.WeightKey, 24)
	for i := range keys {
		keys[i] = key("w", i)
	}
	for round := 0; round < 3; round++ {
		for i, k := range keys {
			d.SetInput(k, int64(round+i%4+1))
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.SetInput(keys[i%len(keys)], int64(i%5+1))
	}
}

// BenchmarkDynamicApplyBatch reports the amortised per-update cost of
// batched application on the same circuit shape.
func BenchmarkDynamicApplyBatch(b *testing.B) {
	r := rand.New(rand.NewSource(3))
	c := randomCircuit(r, 24, 60)
	vals := randomValues(r, 24)
	d := NewDynamic[int64](c, semiring.Nat, valuationFor(vals))
	keys := make([]structure.WeightKey, 24)
	for i := range keys {
		keys[i] = key("w", i)
	}
	batch := make([]InputChange[int64], 64)
	for i := range batch {
		batch[i] = InputChange[int64]{Key: keys[i%len(keys)], Value: int64(i%5 + 1)}
	}
	d.ApplyBatch(batch)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range batch {
			batch[j].Value = int64((i + j) % 5)
		}
		d.ApplyBatch(batch)
	}
}
