package live

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// fakeEval evaluates keys from an atomic "committed" epoch so tests can play
// writer without a real session.
type fakeEval struct {
	epoch atomic.Uint64
	calls atomic.Int64
}

func (f *fakeEval) eval(reqs []Request) (uint64, []Result, error) {
	f.calls.Add(1)
	e := f.epoch.Load()
	out := make([]Result, len(reqs))
	for i, rq := range reqs {
		r := Result{Epoch: e}
		switch rq.Key.Kind {
		case KindValue, KindPoint:
			r.Value = fmt.Sprintf("v%d@%s", e, rq.Key.Args)
		case KindCount:
			r.Count = int64(e)
		}
		out[i] = r
	}
	return e, out, nil
}

func (f *fakeEval) commit(h *Hub) uint64 {
	e := f.epoch.Add(1)
	h.Notify(e)
	return e
}

func next(t *testing.T, s *Sub) Result {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	r, err := s.Next(ctx)
	if err != nil {
		t.Fatalf("Next: %v", err)
	}
	return r
}

func TestHubInitialAndCommits(t *testing.T) {
	f := &fakeEval{}
	h := NewHub(f.eval)
	defer h.Close()

	sub, err := h.Subscribe(Key{Kind: KindValue}, 0, true)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	if r := next(t, sub); r.Epoch != 0 || r.Value != "v0@" {
		t.Fatalf("initial = %+v, want epoch 0", r)
	}
	f.commit(h)
	if r := next(t, sub); r.Epoch != 1 {
		t.Fatalf("after commit: epoch = %d, want 1", r.Epoch)
	}
}

func TestHubSharesEvaluationPerKey(t *testing.T) {
	f := &fakeEval{}
	h := NewHub(f.eval)
	defer h.Close()

	var subs []*Sub
	for i := 0; i < 4; i++ {
		s, err := h.Subscribe(Key{Kind: KindValue}, 0, true)
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		subs = append(subs, s)
	}
	for _, s := range subs {
		next(t, s) // drain initials
	}
	before := f.calls.Load()
	f.commit(h)
	for _, s := range subs {
		if r := next(t, s); r.Epoch != 1 {
			t.Fatalf("epoch = %d, want 1", r.Epoch)
		}
	}
	// One commit with 4 same-key subscribers must not take 4 evaluations.
	if got := f.calls.Load() - before; got > 2 {
		t.Fatalf("evaluator ran %d times for one commit, want ≤ 2", got)
	}
}

func TestHubCoalescesSlowSubscriber(t *testing.T) {
	f := &fakeEval{}
	h := NewHub(f.eval)
	defer h.Close()

	sub, err := h.Subscribe(Key{Kind: KindCount}, 0, true)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	next(t, sub)

	const commits = 50
	var last uint64
	for i := 0; i < commits; i++ {
		last = f.commit(h)
	}
	// Wait until the evaluator has caught up with the final epoch, then read
	// once: the mailbox must hold exactly the latest epoch.
	deadline := time.Now().Add(5 * time.Second)
	for {
		r := next(t, sub)
		if r.Epoch == last {
			if r.Count != int64(last) {
				t.Fatalf("count = %d, want %d", r.Count, last)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("never saw final epoch %d", last)
		}
	}
}

func TestHubResumeSkipsInitial(t *testing.T) {
	f := &fakeEval{}
	h := NewHub(f.eval)
	defer h.Close()
	f.epoch.Store(7)

	// Resuming from the current epoch owes the client nothing until a new
	// commit arrives.
	sub, err := h.Subscribe(Key{Kind: KindValue}, 7, false)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if r, err := sub.Next(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Next = %+v, %v; want deadline (no update owed)", r, err)
	}
	f.commit(h)
	if r := next(t, sub); r.Epoch != 8 {
		t.Fatalf("epoch = %d, want 8", r.Epoch)
	}
}

func TestHubDeltaNetMerge(t *testing.T) {
	// Scripted delta evaluator over answer sets E0={0}, E1={0,1,2},
	// E2={0,1,3}.  Like the real one it diffs against the state at its own
	// previous evaluation, so coalesced epochs yield net deltas.
	sets := [][][]int{{{0}}, {{0}, {1}, {2}}, {{0}, {1}, {3}}}
	var epoch atomic.Uint64
	prev := -1 // evaluator-goroutine only, like real delta state
	eval := func(reqs []Request) (uint64, []Result, error) {
		e := epoch.Load()
		cur := tupleMap(sets[e])
		out := make([]Result, len(reqs))
		for i, rq := range reqs {
			r := Result{Epoch: e}
			if prev >= 0 {
				old := tupleMap(sets[prev])
				for k, t := range cur {
					if _, ok := old[k]; !ok {
						r.Added = append(r.Added, t)
					}
				}
				for k, t := range old {
					if _, ok := cur[k]; !ok {
						r.Removed = append(r.Removed, t)
					}
				}
			}
			r.Increments = prev >= 0
			if rq.Full || prev < 0 {
				r.Full, r.Answers = true, sets[e]
			}
			out[i] = r
		}
		prev = int(e)
		return e, out, nil
	}
	h := NewHub(eval)
	defer h.Close()

	sub, err := h.Subscribe(Key{Kind: KindDelta}, 0, true)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	init := next(t, sub)
	if !init.Full || len(init.Answers) != 1 {
		t.Fatalf("initial = %+v, want full reset with 1 answer", init)
	}

	epoch.Store(1)
	h.Notify(1)
	epoch.Store(2)
	h.Notify(2)
	// Read until the mailbox has merged through epoch 2.
	deadline := time.Now().Add(5 * time.Second)
	for {
		r := next(t, sub)
		if r.Epoch == 2 {
			// Net of epochs 1..2 (possibly from a partial read at epoch 1).
			wantAdd := map[string]bool{"1": true, "3": true}
			for _, a := range r.Added {
				delete(wantAdd, tupleKey(a))
			}
			if len(wantAdd) != 0 && !r.Full {
				t.Fatalf("merged delta %+v missing adds %v", r, wantAdd)
			}
			for _, rm := range r.Removed {
				if k := tupleKey(rm); k == "1" || k == "3" {
					t.Fatalf("merged delta wrongly removes %s", k)
				}
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("never reached epoch 2")
		}
	}
}

func TestHubNotifyZeroSubscribersAllocsZero(t *testing.T) {
	f := &fakeEval{}
	h := NewHub(f.eval)
	defer h.Close()
	var e uint64
	allocs := testing.AllocsPerRun(1000, func() {
		e++
		h.Notify(e)
	})
	if allocs != 0 {
		t.Fatalf("Notify with 0 subscribers allocates %.1f/op, want 0", allocs)
	}

	// The same must hold after a subscriber came and went.
	sub, err := h.Subscribe(Key{Kind: KindValue}, 0, true)
	if err != nil {
		t.Fatal(err)
	}
	next(t, sub)
	sub.Close()
	allocs = testing.AllocsPerRun(1000, func() {
		e++
		h.Notify(e)
	})
	if allocs != 0 {
		t.Fatalf("Notify after unsubscribe allocates %.1f/op, want 0", allocs)
	}
}

func TestHubCloseDeliversPendingThenTerminates(t *testing.T) {
	f := &fakeEval{}
	h := NewHub(f.eval)

	sub, err := h.Subscribe(Key{Kind: KindValue}, 0, true)
	if err != nil {
		t.Fatal(err)
	}
	next(t, sub)
	last := f.commit(h)
	// Let the evaluator park the commit in the mailbox before closing.
	deadline := time.Now().Add(5 * time.Second)
	for h.Pushes() < 2 {
		if time.Now().After(deadline) {
			t.Fatal("push never arrived")
		}
		time.Sleep(time.Millisecond)
	}
	h.Close()
	if r := next(t, sub); r.Epoch != last {
		t.Fatalf("pending epoch = %d, want %d", r.Epoch, last)
	}
	if _, err := sub.Next(context.Background()); !errors.Is(err, ErrClosed) {
		t.Fatalf("Next after close = %v, want ErrClosed", err)
	}
	if _, err := h.Subscribe(Key{Kind: KindValue}, 0, true); !errors.Is(err, ErrClosed) {
		t.Fatalf("Subscribe after close = %v, want ErrClosed", err)
	}
}

func TestHubEvalErrorTerminatesSubscribers(t *testing.T) {
	boom := errors.New("boom")
	var fail atomic.Bool
	f := &fakeEval{}
	eval := func(reqs []Request) (uint64, []Result, error) {
		if fail.Load() {
			return 0, nil, boom
		}
		return f.eval(reqs)
	}
	h := NewHub(eval)
	defer h.Close()

	sub, err := h.Subscribe(Key{Kind: KindValue}, 0, true)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	next(t, sub)
	fail.Store(true)
	f.commit(h)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := sub.Next(ctx); !errors.Is(err, boom) {
		t.Fatalf("Next = %v, want boom", err)
	}
}

func TestHubMonotoneUnderConcurrentWriter(t *testing.T) {
	f := &fakeEval{}
	h := NewHub(f.eval)
	defer h.Close()

	const commits = 400
	const readers = 6
	var wg sync.WaitGroup
	errs := make(chan error, readers)
	for i := 0; i < readers; i++ {
		slow := i%2 == 0
		sub, err := h.Subscribe(Key{Kind: KindCount}, 0, true)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(sub *Sub, slow bool) {
			defer wg.Done()
			defer sub.Close()
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			var prev uint64
			seen := false
			for {
				r, err := sub.Next(ctx)
				if err != nil {
					errs <- err
					return
				}
				if seen && r.Epoch <= prev {
					errs <- fmt.Errorf("epoch went %d -> %d", prev, r.Epoch)
					return
				}
				prev, seen = r.Epoch, true
				if r.Epoch == commits {
					errs <- nil
					return
				}
				if slow {
					time.Sleep(500 * time.Microsecond)
				}
			}
		}(sub, slow)
	}
	for i := 0; i < commits; i++ {
		f.commit(h)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}
