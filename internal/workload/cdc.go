package workload

import (
	"bufio"
	"io"
	"iter"
	"math/rand"
	"strconv"

	"repro/internal/structure"
)

// Change is one entry of a CDC change stream, mirroring the wire format of
// one NDJSON line of POST /ingest (and of one element of a /batch request):
// a weight update sets Weight/Tuple/Value, a tuple update sets Rel/Tuple and
// Present.
type Change struct {
	Weight  string `json:"weight,omitempty"`
	Rel     string `json:"rel,omitempty"`
	Tuple   []int  `json:"tuple"`
	Value   int64  `json:"value,omitempty"`
	Present *bool  `json:"present,omitempty"`
}

// ChangeStream generates a deterministic CDC stream of n changes against the
// generated database d, over the graph signature (relations E and S, weights
// w and u).  Every change is safe under the paper's dynamic-update
// constraint by construction — the Gaifman graph never leaves the base
// class:
//
//   - weight updates (w on a currently-present edge, u on any vertex) never
//     touch the Gaifman graph;
//   - E changes only toggle ORIGINAL edges of d (a removal shrinks the
//     Gaifman graph, a re-insertion restores an original edge);
//   - S changes toggle unary membership, which induces no Gaifman pairs.
//
// The stream is stateful and self-consistent: an edge is only removed while
// present and only re-inserted while absent, so replaying it through
// Session.ApplyBatch (or POST /ingest) never hits a duplicate-insert or
// missing-delete error.  The same (d, n, seed) always yields the identical
// sequence.
func ChangeStream(d *Database, n int, seed int64) iter.Seq[Change] {
	return func(yield func(Change) bool) {
		r := rand.New(rand.NewSource(seed))
		edges := d.A.Tuples("E")
		present := make([]bool, len(edges))
		for i := range present {
			present[i] = true
		}
		inS := make([]bool, d.A.N)
		for v := 0; v < d.A.N; v++ {
			inS[v] = d.A.HasTuple("S", v)
		}
		no := false
		for i := 0; i < n; i++ {
			var c Change
			switch k := r.Intn(10); {
			case k < 4: // edge-weight update, or a re-insert if the edge is out
				e := r.Intn(len(edges))
				if present[e] {
					c = Change{Weight: "w", Tuple: edges[e], Value: r.Int63n(8) + 1}
				} else {
					present[e] = true
					c = Change{Rel: "E", Tuple: edges[e]}
				}
			case k < 6: // vertex-weight update
				c = Change{Weight: "u", Tuple: structure.Tuple{r.Intn(d.A.N)}, Value: r.Int63n(8) + 1}
			case k < 8: // toggle an original edge
				e := r.Intn(len(edges))
				if present[e] {
					present[e] = false
					c = Change{Rel: "E", Tuple: edges[e], Present: &no}
				} else {
					present[e] = true
					c = Change{Rel: "E", Tuple: edges[e]}
				}
			default: // toggle unary S membership
				v := r.Intn(d.A.N)
				if inS[v] {
					inS[v] = false
					c = Change{Rel: "S", Tuple: structure.Tuple{v}, Present: &no}
				} else {
					inS[v] = true
					c = Change{Rel: "S", Tuple: structure.Tuple{v}}
				}
			}
			if !yield(c) {
				return
			}
		}
	}
}

// appendJSON appends the single-line JSON encoding of c (the exact /ingest
// wire format) to buf.  Hand-rolled so that million-change streams do not
// pay encoding/json's reflection on every line.
func (c Change) appendJSON(buf []byte) []byte {
	buf = append(buf, '{')
	if c.Weight != "" {
		buf = append(buf, `"weight":"`...)
		buf = append(buf, c.Weight...)
		buf = append(buf, `",`...)
	}
	if c.Rel != "" {
		buf = append(buf, `"rel":"`...)
		buf = append(buf, c.Rel...)
		buf = append(buf, `",`...)
	}
	buf = append(buf, `"tuple":[`...)
	for i, x := range c.Tuple {
		if i > 0 {
			buf = append(buf, ',')
		}
		buf = strconv.AppendInt(buf, int64(x), 10)
	}
	buf = append(buf, ']')
	if c.Weight != "" {
		buf = append(buf, `,"value":`...)
		buf = strconv.AppendInt(buf, c.Value, 10)
	}
	if c.Present != nil && !*c.Present {
		buf = append(buf, `,"present":false`...)
	}
	return append(buf, '}', '\n')
}

// WriteChanges writes the NDJSON encoding of ChangeStream(d, n, seed) to w:
// one change per line, directly consumable by POST /ingest.
func WriteChanges(w io.Writer, d *Database, n int, seed int64) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	buf := make([]byte, 0, 64)
	for c := range ChangeStream(d, n, seed) {
		if _, err := bw.Write(c.appendJSON(buf[:0])); err != nil {
			return err
		}
	}
	return bw.Flush()
}
