// Package enumerate implements the iterator side of the paper: evaluation of
// compiled circuits in the free (provenance) semiring where every value is
// represented by a constant-delay enumerator (Theorem 22), and on top of it
// constant-delay enumeration of the answers to first-order queries with
// Gaifman-preserving updates (Theorem 24).
//
// After a linear-time preprocessing pass over the circuit, the enumerator
// for any gate — in particular the output gate — can be (re)created in
// constant time and produces the monomials of the gate's free-semiring value
// with constant delay between consecutive outputs.  Permanent gates use the
// column-type bookkeeping of Lemma 39 so that only columns that can still be
// extended to a full system of distinct representatives are ever touched.
package enumerate

import (
	"context"
	"fmt"
	"math/big"
	"sync"
	"unsafe"

	"repro/internal/circuit"
	"repro/internal/mvcc"
	"repro/internal/provenance"
	"repro/internal/semiring"
	"repro/internal/structure"
)

// Value is the free-semiring value of a circuit input, given by its
// emptiness and the ability to enumerate its monomials.
type Value interface {
	// Empty reports whether the value is the zero polynomial.
	Empty() bool
	// Cursor returns a fresh enumerator over the monomials of the value.
	Cursor() Cursor
}

// Cursor enumerates monomials of a free-semiring element.  Next returns the
// next monomial, or ok=false when exhausted.
type Cursor interface {
	Next() (provenance.Monomial, bool)
}

// ---------------------------------------------------------------------------
// Input values
// ---------------------------------------------------------------------------

// Zero is the empty (zero) value.
func Zero() Value { return zeroValue{} }

// One is the unit value: a single empty monomial.
func One() Value { return unitValue{} }

// Gen is the value consisting of a single generator.
func Gen(g provenance.Generator) Value { return genValue{g: g} }

// Bool returns One() for true and Zero() for false; it is the value of the
// 0/1 relation-membership inputs of Lemma 40.
func Bool(b bool) Value {
	if b {
		return One()
	}
	return Zero()
}

// FromPoly wraps an explicit polynomial as an input value.
func FromPoly(p *provenance.Poly) Value { return polyValue{p: p} }

type zeroValue struct{}

func (zeroValue) Empty() bool    { return true }
func (zeroValue) Cursor() Cursor { return &sliceCursor{} }

type unitValue struct{}

func (unitValue) Empty() bool { return false }
func (unitValue) Cursor() Cursor {
	return &sliceCursor{items: []provenance.Monomial{provenance.NewMonomial()}}
}

type genValue struct{ g provenance.Generator }

func (v genValue) Empty() bool { return false }
func (v genValue) Cursor() Cursor {
	return &sliceCursor{items: []provenance.Monomial{provenance.NewMonomial(v.g)}}
}

type polyValue struct{ p *provenance.Poly }

func (v polyValue) Empty() bool { return v.p.IsZero() }
func (v polyValue) Cursor() Cursor {
	var items []provenance.Monomial
	for _, t := range v.p.Monomials() {
		for i := int64(0); i < t.Count; i++ {
			items = append(items, t.Monomial)
		}
	}
	return &sliceCursor{items: items}
}

// sliceCursor enumerates a fixed slice of monomials.
type sliceCursor struct {
	items []provenance.Monomial
	pos   int
}

func (c *sliceCursor) Next() (provenance.Monomial, bool) {
	if c.pos >= len(c.items) {
		return nil, false
	}
	m := c.items[c.pos]
	c.pos++
	return m, true
}

// ---------------------------------------------------------------------------
// Enumerator over a circuit
// ---------------------------------------------------------------------------

// Enumerator evaluates a circuit in the free semiring with iterator
// representation: after linear preprocessing it provides constant-delay
// cursors for the output gate and supports input updates in constant time
// per affected gate (the circuits produced by the compiler have bounded
// depth and fan-out, hence bounded reach-out).
//
// The enumerator runs on the circuit's frozen Program and borrows its
// topological ranks, parents CSR and children arena instead of rebuilding
// them: many enumerators may share one Program, each with private emptiness
// bookkeeping.
//
// # Goroutine safety
//
// An Enumerator is a single-writer object: SetInput and SetInputs (and the
// update paths of Answers built on them) must be serialised by the caller,
// and live cursors may only run between updates on the same goroutine that
// mutates.  Concurrent reads go through Snapshot, which pins the current
// committed epoch: snapshot cursors stream one consistent epoch while the
// writer keeps committing, without blocking it.
type Enumerator struct {
	p *circuit.Program

	// mu guards the mutable state below against snapshot readers: writers
	// hold it exclusively, snapshot resolution holds it shared.  The undo
	// log records, per committed epoch, the pre-change input values and
	// emptiness bits that pinned snapshots roll back through.
	mu  sync.RWMutex
	log mvcc.Log[enumUndo]

	// inputValue[id] is the value of input gate id.
	inputValue map[int]Value
	empty      []bool

	adders []*adderMeta
	perms  []*permGateMeta

	// Wave scratch reused across updates: dirty gates wait in one bucket per
	// rank and a wave drains the buckets in increasing rank order, so every
	// affected gate is refreshed exactly once per update batch.
	buckets   [][]int
	queued    []bool
	changedCh [][]int // changedCh[g] lists g's children whose emptiness flipped
}

// enumUndo is one undo-log entry: the pre-change state of a gate within one
// committed transition.  Input gates record their old value and emptiness;
// interior gates record only the emptiness bit (their cursors re-derive
// everything else from children emptiness).
type enumUndo struct {
	gate     int32
	kind     uint8 // undoInput or undoEmpty
	oldEmpty bool
	oldInput Value
}

const (
	undoInput = uint8(iota)
	undoEmpty
)

// InputAssignment pairs a weight input with its new value for SetInputs.
type InputAssignment struct {
	Key   structure.WeightKey
	Value Value
}

// adderMeta maintains, for an addition gate, the positions (occurrence
// indices within the children arena slice) whose child is currently
// non-empty.
type adderMeta struct {
	children  []int32     // view into the Program's children arena
	positions []int       // positions with non-empty children
	index     map[int]int // position → index in positions, -1 when absent
	// occurrences[child] lists the positions of that child, so that an
	// update touches only the changed child's occurrences.
	occurrences map[int][]int
}

// permGateMeta maintains the Lemma 39 bookkeeping of a permanent gate.
type permGateMeta struct {
	rows, cols int
	// entry[col][row] is the child gate wired at (row, col), or -1.
	entry [][]int
	// colType[col] is the bitmask of rows whose wired child is non-empty.
	colType []int
	// byType[t] lists the columns of type t; posInType[col] is the column's
	// index within its list (for O(1) removal).
	byType    [][]int
	posInType []int
	// colsOfChild[child] lists the columns where that child is wired.
	colsOfChild map[int][]int
}

// New builds the enumerator for a circuit under the given input assignment,
// freezing the circuit into its Program form first.  Inputs not covered by
// the assignment are zero.
func New(c *circuit.Circuit, inputs func(key structure.WeightKey) Value) *Enumerator {
	return build(c.Program(), inputs, nil)
}

// NewProgram builds the enumerator directly on a frozen Program, sharing its
// ranks, parents and children arenas with every other engine using it.
func NewProgram(p *circuit.Program, inputs func(key structure.WeightKey) Value) *Enumerator {
	return build(p, inputs, nil)
}

// NewParallel builds the enumerator like New, but computes the initial
// emptiness of every gate with the level-parallel circuit engine first: a
// gate's value is non-empty exactly when the circuit, with every input
// mapped to the truth of "this input is non-empty", evaluates to true at
// that gate in the boolean semiring (for permanent gates the boolean
// permanent is the existence of a system of distinct representatives, which
// is Lemma 39's matchability test).  The sequential metadata pass that
// follows then skips its per-gate emptiness work.
//
// sched is retained for compatibility and only validated (the level schedule
// is baked into the Program); workers ≤ 0 selects GOMAXPROCS.  inputs is
// called from multiple goroutines and must be safe for concurrent use.
func NewParallel(c *circuit.Circuit, inputs func(key structure.WeightKey) Value, sched *circuit.Schedule, workers int) *Enumerator {
	p := c.Program()
	if sched != nil && sched.NumGates() != p.NumGates() {
		panic("enumerate: schedule does not match circuit (was the circuit extended after scheduling?)")
	}
	return NewProgramParallel(p, inputs, workers)
}

// NewProgramParallel builds the enumerator like NewProgram, computing the
// initial per-gate emptiness with the level-parallel program engine on
// workers goroutines (≤ 0 selects GOMAXPROCS).
func NewProgramParallel(p *circuit.Program, inputs func(key structure.WeightKey) Value, workers int) *Enumerator {
	nonempty := circuit.ParallelEvaluateAllProgram[bool](p, semiring.Bool, emptinessValuation(inputs), workers)
	return build(p, inputs, nonempty)
}

// NewProgramParallelCtx builds the enumerator like NewProgramParallel but
// honours cancellation during the initial emptiness wave: when ctx is
// cancelled the preprocessing stops in bounded time and ctx's error is
// returned.
func NewProgramParallelCtx(ctx context.Context, p *circuit.Program, inputs func(key structure.WeightKey) Value, workers int) (*Enumerator, error) {
	nonempty, err := circuit.ParallelEvaluateAllProgramCtx[bool](ctx, p, semiring.Bool, emptinessValuation(inputs), workers)
	if err != nil {
		return nil, err
	}
	return build(p, inputs, nonempty), nil
}

// emptinessValuation maps every circuit input to the truth of "this input is
// non-empty", the valuation under which the boolean circuit value of a gate
// is exactly its free-semiring non-emptiness.
func emptinessValuation(inputs func(key structure.WeightKey) Value) circuit.Valuation[bool] {
	return func(key structure.WeightKey) (bool, bool) {
		if inputs == nil {
			return false, true
		}
		v := inputs(key)
		return v != nil && !v.Empty(), true
	}
}

// build constructs the enumerator; when nonempty is non-nil it carries the
// precomputed per-gate emptiness and the pass skips recomputing it.  The
// Program's freeze already validated the topological gate order, so the
// emptiness bookkeeping may trust its ranks.
func build(p *circuit.Program, inputs func(key structure.WeightKey) Value, nonempty []bool) *Enumerator {
	if p.OutputGate() < 0 {
		panic("enumerate: circuit has no output gate")
	}
	n := p.NumGates()
	e := &Enumerator{
		p:          p,
		inputValue: map[int]Value{},
		empty:      make([]bool, n),
		adders:     make([]*adderMeta, n),
		perms:      make([]*permGateMeta, n),
	}
	e.log.EntryBytes = int64(unsafe.Sizeof(enumUndo{}))
	e.buckets = make([][]int, p.Depth()+1)
	e.queued = make([]bool, n)
	e.changedCh = make([][]int, n)
	for id := 0; id < n; id++ {
		switch p.GateKind(id) {
		case circuit.KindInput:
			v := Value(zeroValue{})
			if inputs != nil {
				if got := inputs(p.InputKey(id)); got != nil {
					v = got
				}
			}
			e.inputValue[id] = v
			e.empty[id] = v.Empty()
		case circuit.KindConst:
			e.empty[id] = p.ConstIsZero(id)
		case circuit.KindAdd:
			children := p.ChildIDs(id)
			meta := &adderMeta{children: children, index: map[int]int{}, occurrences: map[int][]int{}}
			allEmpty := true
			for pos, ch := range children {
				meta.occurrences[int(ch)] = append(meta.occurrences[int(ch)], pos)
				if !e.empty[ch] {
					meta.index[pos] = len(meta.positions)
					meta.positions = append(meta.positions, pos)
					allEmpty = false
				} else {
					meta.index[pos] = -1
				}
			}
			e.adders[id] = meta
			e.empty[id] = allEmpty
		case circuit.KindMul:
			anyEmpty := false
			for _, ch := range p.ChildIDs(id) {
				if e.empty[ch] {
					anyEmpty = true
				}
			}
			e.empty[id] = anyEmpty
		case circuit.KindPerm:
			rows, cols := p.PermShape(id)
			meta := &permGateMeta{rows: rows, cols: cols}
			meta.entry = make([][]int, cols)
			for col := range meta.entry {
				meta.entry[col] = make([]int, rows)
				for r := range meta.entry[col] {
					meta.entry[col][r] = -1
				}
			}
			meta.colsOfChild = map[int][]int{}
			p.ForEachPermEntry(id, func(row, col, gate int) {
				meta.entry[col][row] = gate
				meta.colsOfChild[gate] = append(meta.colsOfChild[gate], col)
			})
			meta.colType = make([]int, cols)
			meta.byType = make([][]int, 1<<uint(rows))
			meta.posInType = make([]int, cols)
			for col := 0; col < cols; col++ {
				t := 0
				for r := 0; r < rows; r++ {
					ch := meta.entry[col][r]
					if ch >= 0 && !e.empty[ch] {
						t |= 1 << uint(r)
					}
				}
				meta.colType[col] = t
				meta.posInType[col] = len(meta.byType[t])
				meta.byType[t] = append(meta.byType[t], col)
			}
			e.perms[id] = meta
			if nonempty != nil {
				// The boolean permanent already decided matchability.
				e.empty[id] = !nonempty[id]
			} else {
				e.empty[id] = !meta.matchable((1<<uint(rows))-1, nil)
			}
		}
	}
	return e
}

// Empty reports whether the output gate has the zero value (no monomials).
func (e *Enumerator) Empty() bool { return e.empty[e.p.OutputGate()] }

// GateEmpty reports emptiness of an arbitrary gate.
func (e *Enumerator) GateEmpty(id int) bool { return e.empty[id] }

// Cursor returns a fresh constant-delay cursor over the monomials of the
// output gate.
func (e *Enumerator) Cursor() Cursor { return e.gateCursor(e.p.OutputGate()) }

// CollectAll drains a fresh cursor into a slice, stopping after limit
// monomials (limit ≤ 0 means no limit).  Intended for tests and examples.
func (e *Enumerator) CollectAll(limit int) []provenance.Monomial {
	var out []provenance.Monomial
	cur := e.Cursor()
	for {
		m, ok := cur.Next()
		if !ok {
			return out
		}
		out = append(out, m)
		if limit > 0 && len(out) >= limit {
			return out
		}
	}
}

// SetInput replaces the value of a weight input and updates the emptiness
// bookkeeping along the input's fan-out cone, committing one epoch.
func (e *Enumerator) SetInput(key structure.WeightKey, v Value) {
	e.mu.Lock()
	defer e.mu.Unlock()
	stored, flipped := e.assign(key, v)
	if flipped {
		e.runWave()
	}
	if stored {
		e.log.Commit()
	}
}

// SetInputs replaces the values of several weight inputs and refreshes the
// emptiness bookkeeping with a single propagation wave, so gates shared by
// several changed inputs are revisited once per batch instead of once per
// input.  The result is identical to calling SetInput for each assignment in
// order, except that the whole batch commits a single epoch.
func (e *Enumerator) SetInputs(assigns []InputAssignment) {
	e.mu.Lock()
	defer e.mu.Unlock()
	stored, flipped := false, false
	for _, a := range assigns {
		s, f := e.assign(a.Key, a.Value)
		stored = stored || s
		flipped = flipped || f
	}
	if flipped {
		e.runWave()
	}
	if stored {
		e.log.Commit()
	}
}

// Epoch returns the current committed epoch: the number of committed input
// mutations so far.
func (e *Enumerator) Epoch() uint64 {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.log.Epoch()
}

// RetainedUndoBytes reports the memory currently held by undo history for
// outstanding snapshots; zero whenever no snapshot is pinned.
func (e *Enumerator) RetainedUndoBytes() int64 {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.log.Retained()
}

// assign stores an input value and, when its emptiness flipped, seeds the
// wave.  It reports whether a value was stored (the mutation must commit an
// epoch) and whether the input's emptiness flipped (a wave must run).  The
// caller holds the exclusive lock.
func (e *Enumerator) assign(key structure.WeightKey, v Value) (stored, flipped bool) {
	id := e.p.InputGate(key)
	if id < 0 {
		return false, false
	}
	if v == nil {
		v = zeroValue{}
	}
	if e.log.Logging() {
		e.log.Append(enumUndo{gate: int32(id), kind: undoInput, oldEmpty: e.empty[id], oldInput: e.inputValue[id]})
	}
	e.inputValue[id] = v
	newEmpty := v.Empty()
	if newEmpty == e.empty[id] {
		return true, false
	}
	e.empty[id] = newEmpty
	e.seed(id)
	return true, true
}

// seed notifies the parents of a gate whose emptiness flipped, queueing them
// by rank.  An input whose emptiness flips twice within one batch seeds its
// parents twice; refreshGate's per-child work is idempotent, so the
// duplicate entries are harmless.
func (e *Enumerator) seed(g int) {
	for _, p32 := range e.p.ParentIDs(g) {
		p := int(p32)
		e.changedCh[p] = append(e.changedCh[p], g)
		if !e.queued[p] {
			e.queued[p] = true
			r := e.p.Rank(p)
			e.buckets[r] = append(e.buckets[r], p)
		}
	}
}

// runWave drains the rank buckets in increasing order: children flip before
// their parents are refreshed, a gate of rank r only ever enqueues gates of
// strictly larger rank, and every affected gate is refreshed exactly once.
// Each affected gate only revisits the positions of its children that
// actually flipped emptiness, so the cost per update is bounded by the
// circuit's fan-out and depth, not by the fan-in of wide gates.  The buckets
// and changed-children lists are scratch buffers owned by the Enumerator and
// reused across waves.
func (e *Enumerator) runWave() {
	for r := 1; r < len(e.buckets); r++ {
		bucket := e.buckets[r]
		for _, g := range bucket {
			e.queued[g] = false
			newEmpty := e.refreshGate(g, e.changedCh[g])
			e.changedCh[g] = e.changedCh[g][:0]
			if newEmpty == e.empty[g] {
				continue
			}
			if e.log.Logging() {
				e.log.Append(enumUndo{gate: int32(g), kind: undoEmpty, oldEmpty: e.empty[g]})
			}
			e.empty[g] = newEmpty
			e.seed(g)
		}
		e.buckets[r] = bucket[:0]
	}
}

// refreshGate recomputes the metadata of gate g given the children whose
// emptiness flipped, and returns the gate's emptiness.
func (e *Enumerator) refreshGate(g int, changedChildren []int) bool {
	switch e.p.GateKind(g) {
	case circuit.KindAdd:
		meta := e.adders[g]
		for _, ch := range changedChildren {
			want := !e.empty[ch]
			for _, pos := range meta.occurrences[ch] {
				has := meta.index[pos] >= 0
				if has == want {
					continue
				}
				if want {
					meta.index[pos] = len(meta.positions)
					meta.positions = append(meta.positions, pos)
				} else {
					// Swap-remove.
					idx := meta.index[pos]
					last := meta.positions[len(meta.positions)-1]
					meta.positions[idx] = last
					meta.index[last] = idx
					meta.positions = meta.positions[:len(meta.positions)-1]
					meta.index[pos] = -1
				}
			}
		}
		return len(meta.positions) == 0
	case circuit.KindMul:
		for _, ch := range e.p.ChildIDs(g) {
			if e.empty[ch] {
				return true
			}
		}
		return false
	case circuit.KindPerm:
		meta := e.perms[g]
		// Recomputing a column's type is idempotent, so columns wired to
		// several changed children are simply recomputed more than once
		// rather than tracked in a per-call set.
		for _, ch := range changedChildren {
			for _, col := range meta.colsOfChild[ch] {
				t := 0
				for r := 0; r < meta.rows; r++ {
					cch := meta.entry[col][r]
					if cch >= 0 && !e.empty[cch] {
						t |= 1 << uint(r)
					}
				}
				if t == meta.colType[col] {
					continue
				}
				// Move the column between type lists.
				old := meta.colType[col]
				idx := meta.posInType[col]
				lst := meta.byType[old]
				last := lst[len(lst)-1]
				lst[idx] = last
				meta.posInType[last] = idx
				meta.byType[old] = lst[:len(lst)-1]
				meta.colType[col] = t
				meta.posInType[col] = len(meta.byType[t])
				meta.byType[t] = append(meta.byType[t], col)
			}
		}
		return !meta.matchable((1<<uint(meta.rows))-1, nil)
	default:
		return e.empty[g]
	}
}

// ---------------------------------------------------------------------------
// Cursors per gate kind
// ---------------------------------------------------------------------------

// view is what a cursor needs from its owner to open child cursors: the live
// Enumerator for live cursors, a pinned Snapshot for snapshot cursors.  The
// cursor machinery below is otherwise oblivious to which epoch it streams.
type view interface {
	gateCursor(id int) Cursor
}

// gateCursor creates a cursor over the monomials of a gate.  Empty gates get
// an empty cursor.
func (e *Enumerator) gateCursor(id int) Cursor {
	if e.empty[id] {
		return &sliceCursor{}
	}
	kind := e.p.GateKind(id)
	switch kind {
	case circuit.KindInput:
		return e.inputValue[id].Cursor()
	case circuit.KindConst:
		return &constCursor{remaining: e.p.ConstBig(id)}
	case circuit.KindAdd:
		return &concatCursor{e: e, meta: e.adders[id]}
	case circuit.KindMul:
		return newProductCursor(e, e.p.ChildIDs(id))
	case circuit.KindPerm:
		return newPermCursor(e, e.perms[id])
	default:
		panic(fmt.Sprintf("enumerate: unsupported gate kind %v", kind))
	}
}

// constCursor yields the empty monomial N times.
type constCursor struct {
	remaining *big.Int
}

func (c *constCursor) Next() (provenance.Monomial, bool) {
	if c.remaining.Sign() <= 0 {
		return nil, false
	}
	c.remaining.Sub(c.remaining, big.NewInt(1))
	return provenance.NewMonomial(), true
}

// concatCursor enumerates an addition gate: the concatenation of its
// non-empty children (per occurrence).
type concatCursor struct {
	e       view
	meta    *adderMeta
	idx     int
	current Cursor
}

func (c *concatCursor) Next() (provenance.Monomial, bool) {
	for {
		if c.current == nil {
			if c.idx >= len(c.meta.positions) {
				return nil, false
			}
			child := c.meta.children[c.meta.positions[c.idx]]
			c.current = c.e.gateCursor(int(child))
		}
		if m, ok := c.current.Next(); ok {
			return m, true
		}
		c.current = nil
		c.idx++
	}
}

// productCursor enumerates a multiplication gate: the product (concatenation
// of monomials) over all combinations of children monomials, in
// lexicographic cursor order.
type productCursor struct {
	e        view
	children []int32
	cursors  []Cursor
	current  []provenance.Monomial
	started  bool
	done     bool
}

func newProductCursor(e view, children []int32) *productCursor {
	return &productCursor{
		e:        e,
		children: children,
		cursors:  make([]Cursor, len(children)),
		current:  make([]provenance.Monomial, len(children)),
	}
}

func (c *productCursor) Next() (provenance.Monomial, bool) {
	if c.done {
		return nil, false
	}
	if !c.started {
		c.started = true
		for i, ch := range c.children {
			c.cursors[i] = c.e.gateCursor(int(ch))
			m, ok := c.cursors[i].Next()
			if !ok {
				c.done = true
				return nil, false
			}
			c.current[i] = m
		}
		return c.output(), true
	}
	// Odometer advance from the last child.
	for i := len(c.children) - 1; i >= 0; i-- {
		if m, ok := c.cursors[i].Next(); ok {
			c.current[i] = m
			return c.output(), true
		}
		if i == 0 {
			c.done = true
			return nil, false
		}
		c.cursors[i] = c.e.gateCursor(int(c.children[i]))
		m, ok := c.cursors[i].Next()
		if !ok {
			c.done = true
			return nil, false
		}
		c.current[i] = m
	}
	c.done = true
	return nil, false
}

func (c *productCursor) output() provenance.Monomial {
	out := provenance.NewMonomial()
	for _, m := range c.current {
		out = out.Mul(m)
	}
	return out
}

// ---------------------------------------------------------------------------
// Permanent gate cursor (Lemma 23 / Lemma 39)
// ---------------------------------------------------------------------------

// matchable reports whether the rows in the mask can be matched to distinct
// columns whose type covers them, excluding the listed used columns
// (Hall's condition over the column-type counts).
func (m *permGateMeta) matchable(rowMask int, used []int) bool {
	if rowMask == 0 {
		return true
	}
	// count[t] = available columns of type t (excluding used).
	for sub := rowMask; ; sub = (sub - 1) & rowMask {
		if sub != 0 {
			need := popcount(sub)
			have := 0
			for t := 1; t < len(m.byType); t++ {
				if t&sub == 0 {
					continue
				}
				avail := len(m.byType[t])
				for _, u := range used {
					if m.colType[u] == t {
						avail--
					}
				}
				have += avail
				if have >= need {
					break
				}
			}
			if have < need {
				return false
			}
		}
		if sub == 0 {
			break
		}
	}
	return true
}

func popcount(x int) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}

// permRowState is the enumeration state of one row of a permanent gate.
type permRowState struct {
	typeIdx int // current type (index into byType)
	listIdx int // position within byType[typeIdx]
	column  int
	cell    Cursor
	current provenance.Monomial
}

// permCursor enumerates a permanent gate: all products over injective
// assignments of rows to non-empty columns.
type permCursor struct {
	e     view
	meta  *permGateMeta
	rows  []*permRowState
	used  []int
	done  bool
	begun bool
}

func newPermCursor(e view, meta *permGateMeta) *permCursor {
	return &permCursor{e: e, meta: meta}
}

func (c *permCursor) Next() (provenance.Monomial, bool) {
	if c.done {
		return nil, false
	}
	if !c.begun {
		c.begun = true
		c.rows = make([]*permRowState, c.meta.rows)
		c.used = nil
		if !c.initRow(0) {
			c.done = true
			return nil, false
		}
		return c.output(), true
	}
	// Advance: try the deepest row's cell cursor, then its column, then
	// backtrack.
	r := c.meta.rows - 1
	for r >= 0 {
		st := c.rows[r]
		if m, ok := st.cell.Next(); ok {
			st.current = m
			// Deeper rows restart from their first monomial of their current
			// column/cell; but their cells are exhausted only when we reach
			// them, so restart them fully.
			if c.reinitBelow(r) {
				return c.output(), true
			}
			// Deeper rows unexpectedly failed (cannot happen thanks to the
			// matchability precondition); treat as exhaustion.
			c.done = true
			return nil, false
		}
		// Cell exhausted: advance this row to its next viable column.
		c.popUsed(r)
		if c.advanceRowColumn(r) {
			if c.reinitBelow(r) {
				return c.output(), true
			}
			c.done = true
			return nil, false
		}
		r--
	}
	c.done = true
	return nil, false
}

// output concatenates the current monomials of all rows.
func (c *permCursor) output() provenance.Monomial {
	out := provenance.NewMonomial()
	for _, st := range c.rows {
		out = out.Mul(st.current)
	}
	return out
}

// initRow positions row r on its first viable column and first cell
// monomial, recursing into deeper rows.
func (c *permCursor) initRow(r int) bool {
	if r == c.meta.rows {
		return true
	}
	st := &permRowState{typeIdx: 0, listIdx: -1}
	c.rows[r] = st
	if !c.seekColumn(r, st) {
		return false
	}
	return c.initRow(r + 1)
}

// reinitBelow restarts rows r+1.. with fresh columns and cells.
func (c *permCursor) reinitBelow(r int) bool {
	// Remove used columns of deeper rows.
	c.used = c.used[:r+1]
	for i := r + 1; i < c.meta.rows; i++ {
		c.rows[i] = nil
	}
	return c.initRow(r + 1)
}

// popUsed removes row r's column from the used set.
func (c *permCursor) popUsed(r int) {
	if len(c.used) > r {
		c.used = c.used[:r]
	}
}

// advanceRowColumn moves row r to its next viable column (after the current
// one) and initialises its cell cursor.
func (c *permCursor) advanceRowColumn(r int) bool {
	st := c.rows[r]
	return c.seekColumn(r, st)
}

// seekColumn advances the (typeIdx, listIdx) pointer of row r to the next
// column that is non-empty at row r, unused, and keeps the remaining rows
// matchable; it then opens the cell cursor.  Returns false when exhausted.
func (c *permCursor) seekColumn(r int, st *permRowState) bool {
	remaining := 0
	for rr := r + 1; rr < c.meta.rows; rr++ {
		remaining |= 1 << uint(rr)
	}
	for t := st.typeIdx; t < len(c.meta.byType); t++ {
		if t&(1<<uint(r)) == 0 {
			st.typeIdx = t + 1
			st.listIdx = -1
			continue
		}
		list := c.meta.byType[t]
		start := 0
		if t == st.typeIdx {
			start = st.listIdx + 1
		}
		for i := start; i < len(list); i++ {
			col := list[i]
			if c.isUsed(col) {
				continue
			}
			// Viability: remaining rows must be matchable avoiding used∪{col}.
			c.used = append(c.used, col)
			ok := c.meta.matchable(remaining, c.used)
			if !ok {
				c.used = c.used[:len(c.used)-1]
				// All columns of this type are equivalent for matchability,
				// so skip the rest of the type.
				break
			}
			cell := c.e.gateCursor(c.meta.entry[col][r])
			m, cellOK := cell.Next()
			if !cellOK {
				// Cannot happen: the column type asserts non-emptiness.
				c.used = c.used[:len(c.used)-1]
				continue
			}
			st.typeIdx = t
			st.listIdx = i
			st.column = col
			st.cell = cell
			st.current = m
			return true
		}
		st.typeIdx = t + 1
		st.listIdx = -1
	}
	return false
}

func (c *permCursor) isUsed(col int) bool {
	for _, u := range c.used {
		if u == col {
			return true
		}
	}
	return false
}

// ---------------------------------------------------------------------------
// Cross-checking helpers
// ---------------------------------------------------------------------------

// EvaluateExplicit evaluates the circuit in the explicit free semiring under
// the same inputs; intended for differential testing on small instances.
func EvaluateExplicit(c *circuit.Circuit, inputs func(key structure.WeightKey) Value) *provenance.Poly {
	val := func(key structure.WeightKey) (*provenance.Poly, bool) {
		if inputs == nil {
			return nil, false
		}
		v := inputs(key)
		if v == nil {
			return nil, false
		}
		p := provenance.NewPoly()
		cur := v.Cursor()
		for {
			m, ok := cur.Next()
			if !ok {
				break
			}
			p.AddMonomial(m, 1)
		}
		return p, true
	}
	return circuit.Evaluate[*provenance.Poly](c, provenance.Free, val)
}

// CountMonomials evaluates the circuit in ℕ under the homomorphism sending
// every generator to 1: the number of monomials (with multiplicity) of the
// output value.  It is used to cross-check enumeration completeness.
func CountMonomials(c *circuit.Circuit, inputs func(key structure.WeightKey) Value) int64 {
	val := func(key structure.WeightKey) (int64, bool) {
		if inputs == nil {
			return 0, false
		}
		v := inputs(key)
		if v == nil || v.Empty() {
			return 0, false
		}
		count := int64(0)
		cur := v.Cursor()
		for {
			_, ok := cur.Next()
			if !ok {
				break
			}
			count++
		}
		return count, true
	}
	return circuit.Evaluate[int64](c, semiring.Nat, val)
}
