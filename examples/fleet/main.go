// Scaling aggserve out: a consistent-hash fleet behind one router.  The
// router shards requests by the same key the replicas cache compiled
// queries under — (database, canonical query, semiring, options) — so each
// compiled Program lives on exactly one replica and the fleet's aggregate
// cache capacity grows with its size.  Named sessions shard by name
// (sticky): a session's MVCC state lives where it was created, and every
// /point, /update and /batch follows it there.
//
// Everything here runs in one process via fleet.StartLocal — three real
// replicas and a router on loopback listeners — which is also how the race
// tests and the E19 scale-out experiment drive the fleet.
//
//	go run ./examples/fleet
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"repro/agg"
	"repro/internal/fleet"
	"repro/internal/server"
	"repro/internal/workload"
)

func post(url string, body map[string]any) map[string]any {
	raw, _ := json.Marshal(body)
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		panic(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		panic(err)
	}
	return out
}

func main() {
	// Three replicas, each mounting its own copy of the same database
	// (replicas share nothing), behind one router.
	db := workload.Grid(8, 8, 7)
	f, err := fleet.StartLocal(3, fleet.LocalOptions{
		Server: server.Options{CacheSize: 32},
		Configure: func(i int, s *server.Server) {
			s.MountDatabaseValue("default", agg.FromStructure(db.A, db.Weights()))
		},
		Router: fleet.Options{HealthInterval: 100 * time.Millisecond},
	})
	if err != nil {
		panic(err)
	}
	defer f.Close()
	fmt.Printf("router %s over 3 replicas\n\n", f.URL())

	// --- Cache-key sharding ------------------------------------------------
	//
	// Distinct queries are distinct cache keys and spread across the fleet;
	// textual variants of the same query canonicalize to one key and land on
	// one replica, which compiles once and serves the rest from cache.
	for _, expr := range []string{
		"sum x, y . [E(x,y)] * w(x,y)",
		"sum x,y.[E(x,y)]*w(x,y)", // same query, different spelling
		"sum x, y . [E(x,y)] * w(x,y) * 2",
		"sum x, y . [E(x,y)] * w(x,y) * 3",
	} {
		out := post(f.URL()+"/query", map[string]any{"expr": expr})
		key := fleet.QueryShardKey("", expr, "", nil)
		fmt.Printf("  %-36q -> replica %d  value=%v cached=%v\n",
			expr, f.Router.OwnerOf(key), out["value"], out["cached"])
	}
	fmt.Println()
	for i := 0; i < 3; i++ {
		fmt.Printf("  replica %d: %d compiles, %d cache hits\n",
			i, f.Replica(i).Stats().Compiles.Load(), f.Replica(i).Stats().CacheHits.Load())
	}

	// --- Sticky sessions ---------------------------------------------------
	//
	// The session's MVCC state lives on the replica that owns its name;
	// updates and point reads through the router always land there.
	post(f.URL()+"/session", map[string]any{
		"name": "demo", "expr": "sum x, y . [E(x,y)] * w(x,y)", "dynamic": []string{"E"},
	})
	before := post(f.URL()+"/point", map[string]any{"session": "demo"})
	post(f.URL()+"/update", map[string]any{
		"session": "demo",
		"updates": []map[string]any{{"weight": "w", "tuple": []int{0, 1}, "value": 99}},
	})
	after := post(f.URL()+"/point", map[string]any{"session": "demo"})
	owner := f.Router.OwnerOf(fleet.SessionShardKey("demo"))
	fmt.Printf("\n  session %q lives on replica %d: value %v -> %v after one update\n",
		"demo", owner, before["value"], after["value"])

	// --- Fleet-wide stats --------------------------------------------------
	//
	// GET /stats on the router fans out to every replica concurrently and
	// merges: one document for the whole fleet.
	resp, err := http.Get(f.URL() + "/stats")
	if err != nil {
		panic(err)
	}
	defer resp.Body.Close()
	var fs fleet.FleetStats
	if err := json.NewDecoder(resp.Body).Decode(&fs); err != nil {
		panic(err)
	}
	fmt.Printf("\n  fleet: %d queries, %d compiles, %d cache hits, %d sessions across %d/%d live replicas\n",
		fs.Fleet.Queries, fs.Fleet.Compiles, fs.Fleet.CacheHits, fs.Fleet.Sessions,
		fs.Router.Live, fs.Router.Replicas)
}
