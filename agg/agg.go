// Package agg is the public, embeddable facade over the paper's pipeline:
// compile an aggregate query over a bounded-expansion database into a
// circuit once, then answer, update and enumerate in near-linear time, from
// any Go program, in the style of database/sql:
//
//	db, err := agg.ReadDatabaseFile("roads.db")
//	eng := agg.Open(db)
//	p, err := eng.Prepare(ctx, "sum x, y . [E(x,y)] * w(x,y)",
//	    agg.WithSemiring("minplus"), agg.WithWorkers(8))
//	v, err := p.Eval(ctx)               // evaluate the compiled circuit
//
//	s, err := p.Session()               // dynamic updates (Theorem 8)
//	err = s.Set(agg.Change{Weight: "w", Tuple: []int{0, 1}, Value: 7})
//	v, err = s.Eval(ctx)
//
//	q, err := eng.Prepare(ctx, "E(x,y) & S(x)")
//	for ans, err := range q.Enumerate(ctx) { ... }  // constant delay
//
// Prepare accepts either a weighted expression (evaluated in a registered
// semiring — natural, minplus, boolean, provenance, or any carrier added
// with Register) or a first-order formula (whose answer set is counted and
// enumerated with constant delay, Theorem 24).  Compilation happens once per
// Prepare; evaluations, sessions and enumerations share the frozen circuit
// program.
//
// Every entry point takes a context.Context and honours cancellation:
// a cancelled context stops level-parallel circuit evaluation and
// enumeration preprocessing waves in bounded time, and streaming iterators
// stop between answers.  Failures come from a typed taxonomy (ErrParse,
// ErrCompile, ErrUnknownSemiring, ErrSessionBusy, ...) that callers branch
// on with errors.Is / errors.As.
package agg

import (
	"context"
	"io"

	"repro/internal/parser"
)

// Engine serves queries over one database.  All methods are safe for
// concurrent use; an Engine holds no mutable state beyond its database.
type Engine struct {
	db *Database
}

// Open returns an engine over an already-loaded database.
func Open(db *Database) *Engine { return &Engine{db: db} }

// OpenReader loads a database from r in the dbio text format and opens an
// engine over it.
func OpenReader(r io.Reader) (*Engine, error) {
	db, err := ReadDatabase(r)
	if err != nil {
		return nil, err
	}
	return Open(db), nil
}

// OpenFile loads a database from a file in the dbio text format and opens an
// engine over it.
func OpenFile(path string) (*Engine, error) {
	db, err := ReadDatabaseFile(path)
	if err != nil {
		return nil, err
	}
	return Open(db), nil
}

// OpenSource loads a database from any Source and opens an engine over it.
func OpenSource(src Source) (*Engine, error) {
	db, err := Load(src)
	if err != nil {
		return nil, err
	}
	return Open(db), nil
}

// Database returns the engine's database.
func (e *Engine) Database() *Database { return e.db }

// Option configures one Prepare call.
type Option func(*config)

type config struct {
	semiring   string
	dynamic    []string
	workers    int
	maxVars    int
	answerVars []string
	nested     *Nested
}

// WithSemiring selects the registered semiring queries are evaluated in
// (default "natural"; see SemiringNames for the registry contents).
func WithSemiring(name string) Option {
	return func(c *config) { c.semiring = name }
}

// WithDynamic declares relations whose tuples may later be inserted or
// removed through sessions (Gaifman-preserving updates, Theorem 24's update
// model).  Literals over these relations compile to circuit inputs rather
// than compile-time constants.
func WithDynamic(relations ...string) Option {
	return func(c *config) { c.dynamic = append(c.dynamic, relations...) }
}

// WithWorkers sets the worker-pool size used for level-parallel circuit
// evaluation and enumeration preprocessing (≤ 0, the default, selects
// GOMAXPROCS).
func WithWorkers(n int) Option {
	return func(c *config) { c.workers = n }
}

// WithMaxVars overrides the compiler's bound on joined variables per
// monomial (0 keeps the compiler default); it guards the exponential
// blow-ups of permanent maintenance and shape enumeration.
func WithMaxVars(n int) Option {
	return func(c *config) { c.maxVars = n }
}

// WithAnswerVars forces formula mode and fixes the answer-tuple variable
// order for Enumerate.  Without it a query that parses as a formula
// enumerates over its free variables in sorted order.
func WithAnswerVars(vars ...string) Option {
	return func(c *config) { c.answerVars = append(c.answerVars, vars...) }
}

// WithNested prepares a nested (FOG[C], Section 7) query instead of parsing
// the query text: the formula is the one built with the N* constructors, and
// the text argument of Prepare serves only as the display label in errors
// and diagnostics.  The Prepare semiring (WithSemiring) is the carrier of
// the formula's weight atoms, constants and brackets; guarded connectives
// move between carriers.  See Nested for the builder surface.
func WithNested(n *Nested) Option {
	return func(c *config) { c.nested = n }
}

// Canonicalize parses a query — weighted expression or first-order formula —
// and returns its canonical printed form.  Two query texts with the same
// canonical form compile to the same circuit, which makes the result the
// natural cache key for layers (like aggserve) that memoise compilations.
func Canonicalize(query string) (string, error) {
	ex, eerr := parser.ParseExpr(query)
	if eerr == nil {
		return parser.FormatExpr(ex), nil
	}
	phi, ferr := parser.ParseFormula(query)
	if ferr == nil {
		return parser.FormatFormula(phi), nil
	}
	return "", newError(ErrParse, query, betterParseError(eerr, ferr))
}

// CanonicalizeFormula parses a query as a first-order formula only and
// returns its canonical printed form; used as the cache key for enumeration
// endpoints, where expression syntax would be a mistake.
func CanonicalizeFormula(query string) (string, error) {
	phi, err := parser.ParseFormula(query)
	if err != nil {
		return "", newError(ErrParse, query, err)
	}
	return parser.FormatFormula(phi), nil
}

// Value is a formatted semiring value, as rendered by the semiring the query
// was prepared in.
type Value string

func (v Value) String() string { return string(v) }

// ensureCtx normalises a nil context.
func ensureCtx(ctx context.Context) context.Context {
	if ctx == nil {
		return context.Background()
	}
	return ctx
}
