package kc

import (
	"math/big"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/circuit"
	"repro/internal/compile"
	"repro/internal/expr"
	"repro/internal/logic"
	"repro/internal/semiring"
	"repro/internal/structure"
)

func key(w string, elems ...int) structure.WeightKey {
	return structure.MakeWeightKey(w, structure.Tuple(elems))
}

// smallGraph builds a random sparse directed graph with unary weights u, v
// and binary weight w.
func smallGraph(n, m int, seed int64) (*structure.Structure, *structure.Weights[int64]) {
	sig := structure.MustSignature(
		[]structure.RelSymbol{{Name: "E", Arity: 2}, {Name: "R", Arity: 1}},
		[]structure.WeightSymbol{{Name: "w", Arity: 2}, {Name: "u", Arity: 1}, {Name: "v", Arity: 1}},
	)
	a := structure.NewStructure(sig, n)
	weights := structure.NewWeights[int64]()
	r := rand.New(rand.NewSource(seed))
	for i := 0; i < m; i++ {
		x, y := r.Intn(n), r.Intn(n)
		if x == y || a.HasTuple("E", x, y) {
			continue
		}
		a.MustAddTuple("E", x, y)
		weights.Set("w", structure.Tuple{x, y}, int64(r.Intn(5)+1))
	}
	for x := 0; x < n; x++ {
		if r.Intn(2) == 0 {
			a.MustAddTuple("R", x)
		}
		weights.Set("u", structure.Tuple{x}, int64(r.Intn(4)+1))
		weights.Set("v", structure.Tuple{x}, int64(r.Intn(4)+1))
	}
	return a, weights
}

func edgePairQuery() expr.Expr {
	// Σ_{x,y} [E(x,y)] · u(x) · v(y): one monomial u(a)·v(b) per edge (a,b).
	return expr.Agg([]string{"x", "y"}, expr.Times(
		expr.Guard(logic.R("E", "x", "y")), expr.W("u", "x"), expr.W("v", "y"),
	))
}

func TestAnalyzeDependencies(t *testing.T) {
	c := circuit.NewBuilder()
	ux := c.Input(key("u", 0))
	vy := c.Input(key("v", 1))
	wxy := c.Input(key("w", 0, 1))
	prod := c.Mul(ux, vy)
	sum := c.Add(prod, wxy)
	c.SetOutput(sum)

	a := Analyze(c.Program())
	if got := len(a.Variables()); got != 3 {
		t.Fatalf("expected 3 variables, got %d", got)
	}
	if got := a.DependencyCount(prod); got != 2 {
		t.Errorf("product should depend on 2 inputs, got %d", got)
	}
	if got := a.DependencyCount(sum); got != 3 {
		t.Errorf("sum should depend on 3 inputs, got %d", got)
	}
	if !a.DependsOn(sum, key("w", 0, 1)) {
		t.Errorf("sum should depend on w(0,1)")
	}
	if a.DependsOn(prod, key("w", 0, 1)) {
		t.Errorf("product should not depend on w(0,1)")
	}
	vars := a.VariablesOf(prod)
	if len(vars) != 2 {
		t.Errorf("VariablesOf(product) = %v", vars)
	}
}

func TestCheckDecomposableHandBuilt(t *testing.T) {
	// u(0)·v(1) is decomposable; u(0)·u(0) is not.
	good := circuit.NewBuilder()
	g := good.Mul(good.Input(key("u", 0)), good.Input(key("v", 1)))
	good.SetOutput(g)
	if v := Analyze(good.Program()).CheckDecomposable(); len(v) != 0 {
		t.Errorf("decomposable circuit flagged: %v", v)
	}

	bad := circuit.NewBuilder()
	in := bad.Input(key("u", 0))
	b := bad.Mul(in, in)
	bad.SetOutput(b)
	violations := Analyze(bad.Program()).CheckDecomposable()
	if len(violations) == 0 {
		t.Fatalf("u(0)·u(0) should violate decomposability")
	}
	if violations[0].Property != "decomposable" || !strings.Contains(violations[0].String(), "gate") {
		t.Errorf("unexpected violation rendering: %v", violations[0])
	}

	// A permanent whose two columns share an input is not decomposable.
	sharedPerm := circuit.NewBuilder()
	shared := sharedPerm.Input(key("u", 0))
	other := sharedPerm.Input(key("v", 1))
	p := sharedPerm.Perm(2, 2, []circuit.PermEntry{
		{Row: 0, Col: 0, Gate: shared},
		{Row: 1, Col: 0, Gate: other},
		{Row: 0, Col: 1, Gate: shared},
		{Row: 1, Col: 1, Gate: other},
	})
	sharedPerm.SetOutput(p)
	if v := Analyze(sharedPerm.Program()).CheckDecomposable(); len(v) == 0 {
		t.Errorf("permanent with shared columns should violate decomposability")
	}

	// A permanent whose columns use distinct inputs is decomposable.
	okPerm := circuit.NewBuilder()
	p2 := okPerm.Perm(2, 2, []circuit.PermEntry{
		{Row: 0, Col: 0, Gate: okPerm.Input(key("u", 0))},
		{Row: 1, Col: 0, Gate: okPerm.Input(key("v", 0))},
		{Row: 0, Col: 1, Gate: okPerm.Input(key("u", 1))},
		{Row: 1, Col: 1, Gate: okPerm.Input(key("v", 1))},
	})
	okPerm.SetOutput(p2)
	if v := Analyze(okPerm.Program()).CheckDecomposable(); len(v) != 0 {
		t.Errorf("column-disjoint permanent flagged: %v", v)
	}
}

func TestCompiledCircuitsAreDecomposable(t *testing.T) {
	a, _ := smallGraph(30, 80, 5)
	queries := []expr.Expr{
		edgePairQuery(),
		expr.Agg([]string{"x", "y", "z"}, expr.Times(
			expr.Guard(logic.Conj(logic.R("E", "x", "y"), logic.R("E", "y", "z"), logic.R("E", "z", "x"))),
			expr.W("w", "x", "y"), expr.W("w", "y", "z"), expr.W("w", "z", "x"),
		)),
		expr.Agg([]string{"x", "y"}, expr.Times(
			expr.Guard(logic.Conj(logic.R("E", "x", "y"), logic.Neg(logic.R("R", "y")))),
			expr.W("u", "x"), expr.W("v", "y"),
		)),
	}
	for i, q := range queries {
		res, err := compile.Compile(a, q, compile.Options{})
		if err != nil {
			t.Fatalf("query %d: compile: %v", i, err)
		}
		an := Analyze(res.Program)
		if v := an.CheckDecomposable(); len(v) != 0 {
			t.Errorf("query %d: compiled circuit violates decomposability: %v", i, v[0])
		}
	}
}

func TestCheckDeterministic(t *testing.T) {
	a, _ := smallGraph(25, 60, 9)

	// Each edge contributes the distinct monomial u(x)·v(y): deterministic.
	res, err := compile.Compile(a, edgePairQuery(), compile.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if v := Analyze(res.Program).CheckDeterministic(); len(v) != 0 {
		t.Errorf("edge-pair circuit should be deterministic, got %v", v[0])
	}

	// Pure counting (no weight factors) adds the empty monomial once per
	// marked vertex, so the top addition gate is not deterministic — which is
	// exactly why the enumeration construction of Theorem 24 multiplies in
	// answer generators.
	counting := expr.Agg([]string{"x"}, expr.Guard(logic.R("R", "x")))
	resCount, err := compile.Compile(a, counting, compile.Options{})
	if err != nil {
		t.Fatal(err)
	}
	marked := int64(len(a.Tuples("R")))
	if marked < 2 {
		t.Fatalf("test structure should have at least 2 marked vertices")
	}
	if v := Analyze(resCount.Program).CheckDeterministic(); len(v) == 0 {
		t.Errorf("pure counting circuit should not be deterministic")
	}
}

func TestModelCountMatchesNaive(t *testing.T) {
	a, _ := smallGraph(25, 70, 13)
	res, err := compile.Compile(a, edgePairQuery(), compile.Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := big.NewInt(int64(len(a.Tuples("E"))))
	if got := ModelCount(res.Program); got.Cmp(want) != 0 {
		t.Errorf("ModelCount = %s, want %s (one monomial per edge)", got, want)
	}
	if got := SupportSize(res.Program); int64(got) != want.Int64() {
		t.Errorf("SupportSize = %d, want %s", got, want)
	}
}

func TestFactorizationReport(t *testing.T) {
	a, _ := smallGraph(40, 120, 17)
	res, err := compile.Compile(a, edgePairQuery(), compile.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rep := Factorization(res.Program, 2)
	if rep.Answers.Int64() != int64(len(a.Tuples("E"))) {
		t.Errorf("Answers = %s, want %d", rep.Answers, len(a.Tuples("E")))
	}
	wantFlat := new(big.Int).Mul(rep.Answers, big.NewInt(2))
	if rep.FlatCells.Cmp(wantFlat) != 0 {
		t.Errorf("FlatCells = %s, want %s", rep.FlatCells, wantFlat)
	}
	if rep.CircuitSize <= 0 {
		t.Errorf("CircuitSize should be positive")
	}
	if rep.CompressionRatio <= 0 {
		t.Errorf("CompressionRatio should be positive, got %g", rep.CompressionRatio)
	}
}

func TestModelCountAgreesWithNatEvaluation(t *testing.T) {
	// With all weights set to 1 the circuit value in ℕ equals the monomial
	// count, for any compiled query.
	a, _ := smallGraph(20, 50, 21)
	q := expr.Agg([]string{"x", "y"}, expr.Times(
		expr.Guard(logic.Conj(logic.R("E", "x", "y"), logic.R("R", "x"))),
		expr.W("u", "x"), expr.W("w", "x", "y"),
	))
	res, err := compile.Compile(a, q, compile.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ones := structure.NewWeights[int64]()
	for _, tup := range a.Tuples("E") {
		ones.Set("w", tup, 1)
	}
	for x := 0; x < a.N; x++ {
		ones.Set("u", structure.Tuple{x}, 1)
		ones.Set("v", structure.Tuple{x}, 1)
	}
	nat := compile.Evaluate[int64](res, semiring.Nat, ones)
	if got := ModelCount(res.Program).Int64(); got != nat {
		t.Errorf("ModelCount = %d, ℕ evaluation with unit weights = %d", got, nat)
	}
}

func TestDOT(t *testing.T) {
	c := circuit.NewBuilder()
	p := c.Perm(2, 2, []circuit.PermEntry{
		{Row: 0, Col: 0, Gate: c.Input(key("u", 0))},
		{Row: 1, Col: 0, Gate: c.Input(key("v", 0))},
		{Row: 0, Col: 1, Gate: c.Input(key("u", 1))},
		{Row: 1, Col: 1, Gate: c.Input(key("v", 1))},
	})
	out := c.Add(p, c.ConstInt(3))
	c.SetOutput(out)

	dot := DOT(c.Program())
	for _, want := range []string{"digraph circuit", "perm 2×2", "shape=diamond", "->", "penwidth=2", "label=\"r1c1\""} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT output missing %q:\n%s", want, dot)
		}
	}
	// One node line per gate.
	if got := strings.Count(dot, "\n  g"); got < c.NumGates() {
		t.Errorf("DOT output has %d gate/edge lines, expected at least %d node lines", got, c.NumGates())
	}
}
