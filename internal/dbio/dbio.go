// Package dbio reads and writes weighted structures in a simple line-based
// text format, so that synthetic databases produced by cmd/agggen (or real
// data exported from elsewhere) can be stored in files and piped between the
// command-line tools.
//
// The format is plain UTF-8 text, one record per line:
//
//	# anything after '#' is a comment
//	domain 6                  -- number of elements; elements are 0..5
//	rel    E 2                -- declare relation E of arity 2
//	rel    S 1
//	wsym   w 2                -- declare weight symbol w of arity 2
//	wsym   u 1
//	E 0 1                     -- tuple (0,1) belongs to E
//	S 3
//	w 0 1 7                   -- weight w(0,1) = 7
//	u 3 2
//
// Declarations ("domain", "rel", "wsym") must precede the tuples and weights
// that use them.  Weight values are signed 64-bit integers; callers convert
// them into the semiring of interest with ConvertWeights.
//
// For interoperability with spreadsheet-style data the package also loads
// single relations and weight functions from CSV readers (one tuple per
// record).
package dbio

import (
	"bufio"
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"

	"repro/internal/structure"
)

// Database bundles a structure with its integer-valued weights, the unit in
// which databases are serialised.
type Database struct {
	// A is the relational structure.
	A *structure.Structure
	// W holds int64 weights for the structure's weight symbols.
	W *structure.Weights[int64]
}

// Write serialises the structure and weights to w in the text format
// described in the package documentation.  Output is deterministic: symbols
// and tuples are emitted in sorted order.
func Write(w io.Writer, a *structure.Structure, weights *structure.Weights[int64]) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# %d elements, %d tuples\n", a.N, a.TupleCount())
	fmt.Fprintf(bw, "domain %d\n", a.N)

	rels := append([]structure.RelSymbol(nil), a.Sig.Relations...)
	sort.Slice(rels, func(i, j int) bool { return rels[i].Name < rels[j].Name })
	for _, r := range rels {
		fmt.Fprintf(bw, "rel %s %d\n", r.Name, r.Arity)
	}
	wsyms := append([]structure.WeightSymbol(nil), a.Sig.Weights...)
	sort.Slice(wsyms, func(i, j int) bool { return wsyms[i].Name < wsyms[j].Name })
	for _, s := range wsyms {
		fmt.Fprintf(bw, "wsym %s %d\n", s.Name, s.Arity)
	}

	for _, r := range rels {
		tuples := append([]structure.Tuple(nil), a.Tuples(r.Name)...)
		sort.Slice(tuples, func(i, j int) bool { return lessTuple(tuples[i], tuples[j]) })
		for _, t := range tuples {
			bw.WriteString(r.Name)
			for _, e := range t {
				fmt.Fprintf(bw, " %d", e)
			}
			bw.WriteByte('\n')
		}
	}

	if weights != nil {
		type entry struct {
			name  string
			tuple structure.Tuple
			value int64
		}
		var entries []entry
		weights.ForEach(func(k structure.WeightKey, v int64) {
			entries = append(entries, entry{name: k.Weight, tuple: structure.ParseTupleKey(k.Tuple), value: v})
		})
		sort.Slice(entries, func(i, j int) bool {
			if entries[i].name != entries[j].name {
				return entries[i].name < entries[j].name
			}
			return lessTuple(entries[i].tuple, entries[j].tuple)
		})
		for _, e := range entries {
			bw.WriteString(e.name)
			for _, el := range e.tuple {
				fmt.Fprintf(bw, " %d", el)
			}
			fmt.Fprintf(bw, " %d\n", e.value)
		}
	}
	return bw.Flush()
}

// WriteFile serialises the database to the named file.
func WriteFile(path string, a *structure.Structure, weights *structure.Weights[int64]) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := Write(f, a, weights); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func lessTuple(a, b structure.Tuple) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

// Read parses a database in the text format described in the package
// documentation.
func Read(r io.Reader) (*Database, error) {
	scanner := bufio.NewScanner(r)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)

	var (
		domain   = -1
		rels     []structure.RelSymbol
		wsyms    []structure.WeightSymbol
		relArity = map[string]int{}
		wArity   = map[string]int{}
		a        *structure.Structure
		weights  = structure.NewWeights[int64]()
		lineNo   int
	)

	// build instantiates the structure once all declarations are known; it
	// is triggered lazily by the first tuple or weight line.
	build := func() error {
		if a != nil {
			return nil
		}
		if domain < 0 {
			return fmt.Errorf("dbio: tuple encountered before the domain declaration")
		}
		sig, err := structure.NewSignature(rels, wsyms)
		if err != nil {
			return fmt.Errorf("dbio: %v", err)
		}
		a = structure.NewStructure(sig, domain)
		return nil
	}

	for scanner.Scan() {
		lineNo++
		line := scanner.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case "domain":
			if len(fields) != 2 {
				return nil, lineErr(lineNo, "domain line needs exactly one argument")
			}
			n, err := strconv.Atoi(fields[1])
			if err != nil || n < 0 {
				return nil, lineErr(lineNo, "invalid domain size %q", fields[1])
			}
			if domain >= 0 {
				return nil, lineErr(lineNo, "duplicate domain declaration")
			}
			domain = n
		case "rel":
			if a != nil {
				return nil, lineErr(lineNo, "rel declaration after tuples")
			}
			name, arity, err := parseDecl(fields)
			if err != nil {
				return nil, lineErr(lineNo, "%v", err)
			}
			rels = append(rels, structure.RelSymbol{Name: name, Arity: arity})
			relArity[name] = arity
		case "wsym":
			if a != nil {
				return nil, lineErr(lineNo, "wsym declaration after tuples")
			}
			name, arity, err := parseDecl(fields)
			if err != nil {
				return nil, lineErr(lineNo, "%v", err)
			}
			wsyms = append(wsyms, structure.WeightSymbol{Name: name, Arity: arity})
			wArity[name] = arity
		default:
			if err := build(); err != nil {
				return nil, err
			}
			name := fields[0]
			if arity, ok := relArity[name]; ok {
				if len(fields) != arity+1 {
					return nil, lineErr(lineNo, "relation %s expects %d elements, got %d", name, arity, len(fields)-1)
				}
				tuple, err := parseTuple(fields[1:], domain)
				if err != nil {
					return nil, lineErr(lineNo, "%v", err)
				}
				if err := a.AddTuple(name, tuple...); err != nil {
					return nil, lineErr(lineNo, "%v", err)
				}
				continue
			}
			if arity, ok := wArity[name]; ok {
				if len(fields) != arity+2 {
					return nil, lineErr(lineNo, "weight %s expects %d elements and a value, got %d fields", name, arity, len(fields)-1)
				}
				tuple, err := parseTuple(fields[1:len(fields)-1], domain)
				if err != nil {
					return nil, lineErr(lineNo, "%v", err)
				}
				value, err := strconv.ParseInt(fields[len(fields)-1], 10, 64)
				if err != nil {
					return nil, lineErr(lineNo, "invalid weight value %q", fields[len(fields)-1])
				}
				weights.Set(name, tuple, value)
				continue
			}
			return nil, lineErr(lineNo, "unknown symbol %q", name)
		}
	}
	if err := scanner.Err(); err != nil {
		return nil, err
	}
	if err := build(); err != nil {
		return nil, err
	}
	return &Database{A: a, W: weights}, nil
}

// ReadFile parses the named file.
func ReadFile(path string) (*Database, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}

func lineErr(line int, format string, args ...any) error {
	return fmt.Errorf("dbio: line %d: %s", line, fmt.Sprintf(format, args...))
}

func parseDecl(fields []string) (string, int, error) {
	if len(fields) != 3 {
		return "", 0, fmt.Errorf("declaration needs a name and an arity")
	}
	arity, err := strconv.Atoi(fields[2])
	if err != nil || arity < 0 {
		return "", 0, fmt.Errorf("invalid arity %q", fields[2])
	}
	return fields[1], arity, nil
}

func parseTuple(fields []string, domain int) (structure.Tuple, error) {
	tuple := make(structure.Tuple, len(fields))
	for i, s := range fields {
		v, err := strconv.Atoi(s)
		if err != nil {
			return nil, fmt.Errorf("invalid element %q", s)
		}
		if v < 0 || v >= domain {
			return nil, fmt.Errorf("element %d outside the domain [0, %d)", v, domain)
		}
		tuple[i] = v
	}
	return tuple, nil
}

// ConvertWeights maps int64 weights into an arbitrary carrier type through
// the supplied embedding, preserving the weight symbols and tuples.
func ConvertWeights[T any](w *structure.Weights[int64], embed func(int64) T) *structure.Weights[T] {
	out := structure.NewWeights[T]()
	w.ForEach(func(k structure.WeightKey, v int64) {
		out.Set(k.Weight, structure.ParseTupleKey(k.Tuple), embed(v))
	})
	return out
}

// LoadCSVRelation reads tuples of the named relation from CSV records (one
// tuple per record, one element per column) and adds them to the structure.
// It returns the number of tuples added.
func LoadCSVRelation(a *structure.Structure, rel string, r io.Reader) (int, error) {
	sym, ok := a.Sig.Relation(rel)
	if !ok {
		return 0, fmt.Errorf("dbio: unknown relation %q", rel)
	}
	cr := csv.NewReader(r)
	cr.TrimLeadingSpace = true
	added := 0
	for {
		record, err := cr.Read()
		if err == io.EOF {
			return added, nil
		}
		if err != nil {
			return added, err
		}
		if len(record) != sym.Arity {
			return added, fmt.Errorf("dbio: relation %s expects %d columns, got %d", rel, sym.Arity, len(record))
		}
		tuple, err := parseTuple(record, a.N)
		if err != nil {
			return added, fmt.Errorf("dbio: %v", err)
		}
		if err := a.AddTuple(rel, tuple...); err != nil {
			return added, err
		}
		added++
	}
}

// LoadCSVWeights reads weights for the named weight symbol from CSV records
// (tuple columns followed by one value column) into weights.  It returns the
// number of weights set.
func LoadCSVWeights(a *structure.Structure, weights *structure.Weights[int64], name string, r io.Reader) (int, error) {
	sym, ok := a.Sig.Weight(name)
	if !ok {
		return 0, fmt.Errorf("dbio: unknown weight symbol %q", name)
	}
	cr := csv.NewReader(r)
	cr.TrimLeadingSpace = true
	set := 0
	for {
		record, err := cr.Read()
		if err == io.EOF {
			return set, nil
		}
		if err != nil {
			return set, err
		}
		if len(record) != sym.Arity+1 {
			return set, fmt.Errorf("dbio: weight %s expects %d columns, got %d", name, sym.Arity+1, len(record))
		}
		tuple, err := parseTuple(record[:len(record)-1], a.N)
		if err != nil {
			return set, fmt.Errorf("dbio: %v", err)
		}
		value, err := strconv.ParseInt(strings.TrimSpace(record[len(record)-1]), 10, 64)
		if err != nil {
			return set, fmt.Errorf("dbio: invalid weight value %q", record[len(record)-1])
		}
		weights.Set(name, tuple, value)
		set++
	}
}
