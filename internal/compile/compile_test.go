package compile

import (
	"math/rand"
	"testing"

	"repro/internal/circuit"
	"repro/internal/expr"
	"repro/internal/logic"
	"repro/internal/semiring"
	"repro/internal/structure"
)

// testDB builds a random weighted directed graph: binary relation E, unary
// predicate U, binary weight w on edges, unary weight u everywhere.
func testDB(n, m int, seed int64) (*structure.Structure, *structure.Weights[int64]) {
	sig := structure.MustSignature(
		[]structure.RelSymbol{{Name: "E", Arity: 2}, {Name: "U", Arity: 1}},
		[]structure.WeightSymbol{{Name: "w", Arity: 2}, {Name: "u", Arity: 1}, {Name: "c", Arity: 0}},
	)
	r := rand.New(rand.NewSource(seed))
	a := structure.NewStructure(sig, n)
	w := structure.NewWeights[int64]()
	for a.Tuples("E") == nil || len(a.Tuples("E")) < m {
		x, y := r.Intn(n), r.Intn(n)
		if x == y {
			continue
		}
		a.MustAddTuple("E", x, y)
		w.Set("w", structure.Tuple{x, y}, int64(r.Intn(4)+1))
	}
	for v := 0; v < n; v++ {
		if r.Intn(2) == 0 {
			a.MustAddTuple("U", v)
		}
		w.Set("u", structure.Tuple{v}, int64(r.Intn(3)))
	}
	w.Set("c", structure.Tuple{}, 2)
	return a, w
}

// checkAgainstNaive compiles e and compares the circuit value against the
// naive reference evaluator, in the natural numbers, the min-plus semiring
// and the boolean semiring.
func checkAgainstNaive(t *testing.T, a *structure.Structure, w *structure.Weights[int64], e expr.Expr, opts Options) *Result {
	t.Helper()
	res, err := Compile(a, e, opts)
	if err != nil {
		t.Fatalf("Compile(%s): %v", e, err)
	}
	env := map[string]structure.Element{}

	gotNat := Evaluate[int64](res, semiring.Nat, w)
	wantNat := expr.Eval[int64](semiring.Nat, a, w, e, env)
	if gotNat != wantNat {
		t.Fatalf("Compile(%s): circuit value %d, naive %d\npolynomial: %s\ncircuit: %s",
			e, gotNat, wantNat, res.Polynomial, res.Circuit)
	}

	wmp := structure.NewWeights[semiring.Ext]()
	w.ForEach(func(k structure.WeightKey, v int64) {
		wmp.Set(k.Weight, structure.ParseTupleKey(k.Tuple), semiring.Fin(v))
	})
	gotMP := Evaluate[semiring.Ext](res, semiring.MinPlus, wmp)
	wantMP := expr.Eval[semiring.Ext](semiring.MinPlus, a, wmp, e, env)
	if !semiring.MinPlus.Equal(gotMP, wantMP) {
		t.Fatalf("Compile(%s) in min-plus: circuit %v, naive %v", e, gotMP, wantMP)
	}

	wb := structure.NewWeights[bool]()
	w.ForEach(func(k structure.WeightKey, v int64) {
		wb.Set(k.Weight, structure.ParseTupleKey(k.Tuple), v != 0)
	})
	gotB := Evaluate[bool](res, semiring.Bool, wb)
	wantB := expr.Eval[bool](semiring.Bool, a, wb, e, env)
	if gotB != wantB {
		t.Fatalf("Compile(%s) in boolean semiring: circuit %v, naive %v", e, gotB, wantB)
	}
	return res
}

func triangleQuery() expr.Expr {
	return expr.Agg([]string{"x", "y", "z"}, expr.Times(
		expr.Guard(logic.Conj(logic.R("E", "x", "y"), logic.R("E", "y", "z"), logic.R("E", "z", "x"))),
		expr.W("w", "x", "y"), expr.W("w", "y", "z"), expr.W("w", "z", "x"),
	))
}

func TestCompileTriangleQuery(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		a, w := testDB(9, 20, seed)
		res := checkAgainstNaive(t, a, w, triangleQuery(), Options{})
		st := res.Circuit.Statistics()
		if st.MaxPermRows > 3 {
			t.Errorf("triangle circuit has permanent gates with %d rows, want ≤ 3", st.MaxPermRows)
		}
	}
}

func TestCompileEdgeAndPathQueries(t *testing.T) {
	queries := []expr.Expr{
		// Total number of edges.
		expr.Agg([]string{"x", "y"}, expr.Guard(logic.R("E", "x", "y"))),
		// Total edge weight.
		expr.Agg([]string{"x", "y"}, expr.Times(expr.Guard(logic.R("E", "x", "y")), expr.W("w", "x", "y"))),
		// Weighted paths of length two with distinct endpoints.
		expr.Agg([]string{"x", "y", "z"}, expr.Times(
			expr.Guard(logic.Conj(logic.R("E", "x", "y"), logic.R("E", "y", "z"), logic.Neg(logic.Equal("x", "z")))),
			expr.W("u", "x"), expr.W("u", "z"),
		)),
		// Mixed positive and negative literals.
		expr.Agg([]string{"x", "y"}, expr.Times(
			expr.Guard(logic.Conj(logic.R("E", "x", "y"), logic.Neg(logic.R("E", "y", "x")))),
			expr.W("u", "x"), expr.W("u", "y"),
		)),
		// Disjunction (expanded into exclusive monomials).
		expr.Agg([]string{"x", "y"}, expr.Times(
			expr.Guard(logic.Disj(logic.R("E", "x", "y"), logic.R("E", "y", "x"))),
			expr.W("u", "x"),
		)),
		// Non-edges between distinct U-elements (purely negative joins).
		expr.Agg([]string{"x", "y"}, expr.Guard(logic.Conj(
			logic.R("U", "x"), logic.R("U", "y"),
			logic.Neg(logic.R("E", "x", "y")), logic.Neg(logic.Equal("x", "y")),
		))),
		// Unused bound variable contributes a factor |A|.
		expr.Agg([]string{"x", "y", "z"}, expr.Times(expr.Guard(logic.R("E", "x", "y")), expr.W("u", "x"))),
		// Nullary weight times an aggregation, plus a constant.
		expr.Plus(
			expr.Times(expr.W("c"), expr.Agg([]string{"x"}, expr.W("u", "x"))),
			expr.N(5),
		),
		// Single-variable aggregation with literals.
		expr.Agg([]string{"x"}, expr.Times(expr.Guard(logic.R("U", "x")), expr.W("u", "x"))),
		// Self-loop style literal on a single variable.
		expr.Agg([]string{"x"}, expr.Guard(logic.Neg(logic.R("E", "x", "x")))),
		// Product of two independent aggregations.
		expr.Times(
			expr.Agg([]string{"x"}, expr.W("u", "x")),
			expr.Agg([]string{"y"}, expr.Times(expr.Guard(logic.R("U", "y")), expr.W("u", "y"))),
		),
	}
	for seed := int64(1); seed < 4; seed++ {
		a, w := testDB(8, 14, seed)
		for _, q := range queries {
			checkAgainstNaive(t, a, w, q, Options{})
		}
	}
}

func TestCompileWithQuantifiers(t *testing.T) {
	// Count elements that have an out-neighbour in U, weighted by u.
	q := expr.Agg([]string{"x"}, expr.Times(
		expr.Guard(logic.Ex([]string{"y"}, logic.Conj(logic.R("E", "x", "y"), logic.R("U", "y")))),
		expr.W("u", "x"),
	))
	// Pairs (x,y) joined by an edge where y has no outgoing edge.
	q2 := expr.Agg([]string{"x", "y"}, expr.Guard(logic.Conj(
		logic.R("E", "x", "y"),
		logic.Neg(logic.Ex([]string{"z"}, logic.R("E", "y", "z"))),
	)))
	for seed := int64(2); seed < 5; seed++ {
		a, w := testDB(8, 16, seed)
		checkAgainstNaive(t, a, w, q, Options{})
		checkAgainstNaive(t, a, w, q2, Options{})
	}
}

func TestCompileRejectsFreeVariables(t *testing.T) {
	a, _ := testDB(5, 8, 1)
	q := expr.Agg([]string{"y"}, expr.Guard(logic.R("E", "x", "y")))
	if _, err := Compile(a, q, Options{}); err == nil {
		t.Errorf("Compile should reject expressions with free variables")
	}
}

func TestCompileRejectsTooManyVariables(t *testing.T) {
	a, _ := testDB(5, 8, 1)
	q := expr.Agg([]string{"a", "b", "c", "d", "e"}, expr.Guard(logic.Conj(
		logic.R("E", "a", "b"), logic.R("E", "b", "c"), logic.R("E", "c", "d"), logic.R("E", "d", "e"),
	)))
	if _, err := Compile(a, q, Options{MaxVars: 4}); err == nil {
		t.Errorf("Compile should reject monomials beyond MaxVars")
	}
	// But it succeeds when the limit is raised.
	if _, err := Compile(a, q, Options{MaxVars: 5}); err != nil {
		t.Errorf("Compile with MaxVars=5 failed: %v", err)
	}
}

func TestCompileUnknownDynamicRelation(t *testing.T) {
	a, _ := testDB(5, 8, 1)
	q := expr.Agg([]string{"x", "y"}, expr.Guard(logic.R("E", "x", "y")))
	if _, err := Compile(a, q, Options{DynamicRelations: []string{"nope"}}); err == nil {
		t.Errorf("unknown dynamic relation should be rejected")
	}
}

func TestCompileDynamicRelations(t *testing.T) {
	// Compiling with E dynamic must produce the same value as static
	// compilation on the current structure, with tuple membership read
	// through the valuation.
	q := expr.Agg([]string{"x", "y"}, expr.Times(
		expr.Guard(logic.Conj(logic.R("E", "x", "y"), logic.Neg(logic.R("E", "y", "x")))),
		expr.W("u", "x"), expr.W("u", "y"),
	))
	for seed := int64(0); seed < 4; seed++ {
		a, w := testDB(7, 12, seed)
		res, err := Compile(a, q, Options{DynamicRelations: []string{"E"}})
		if err != nil {
			t.Fatalf("Compile: %v", err)
		}
		got := Evaluate[int64](res, semiring.Nat, w)
		want := expr.Eval[int64](semiring.Nat, a, w, q, map[string]structure.Element{})
		if got != want {
			t.Fatalf("dynamic compile: circuit %d, naive %d", got, want)
		}
		// The circuit must reference relation inputs rather than baking E in.
		foundRelInput := false
		for key := range res.Circuit.Inputs() {
			if _, _, _, ok := DecodeRelationKey(key); ok {
				foundRelInput = true
				break
			}
		}
		if !foundRelInput {
			t.Errorf("dynamic compilation produced no relation inputs")
		}
		// Simulate a Gaifman-preserving deletion: remove one edge tuple by
		// flipping its inputs in a dynamic evaluator and compare against
		// naive evaluation on the modified structure.
		if len(a.Tuples("E")) == 0 {
			continue
		}
		victim := a.Tuples("E")[0]
		d := circuit.NewDynamic[int64](res.Circuit, semiring.Nat, NewValuation[int64](res, semiring.Nat, w))
		pos, neg := RelationInputKeys("E", victim)
		d.SetInput(pos, 0)
		d.SetInput(neg, 1)
		// Build the modified structure for the reference value.
		b := structure.NewStructure(a.Sig, a.N)
		for _, tpl := range a.Tuples("E") {
			if !tpl.Equal(victim) {
				b.MustAddTuple("E", tpl...)
			}
		}
		for _, tpl := range a.Tuples("U") {
			b.MustAddTuple("U", tpl...)
		}
		want = expr.Eval[int64](semiring.Nat, b, w, q, map[string]structure.Element{})
		if d.Value() != want {
			t.Fatalf("after simulated deletion: dynamic %d, naive %d", d.Value(), want)
		}
	}
}

func TestCompileRandomExpressions(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	for trial := 0; trial < 25; trial++ {
		a, w := testDB(7, 11, int64(trial))
		e := expr.Agg([]string{"x", "y"}, randomSimpleBody(r))
		checkAgainstNaive(t, a, w, e, Options{})
	}
}

// randomSimpleBody generates a random quantifier-free body over variables
// x and y.
func randomSimpleBody(r *rand.Rand) expr.Expr {
	atom := func() logic.Formula {
		vars := []string{"x", "y"}
		a := vars[r.Intn(2)]
		b := vars[r.Intn(2)]
		switch r.Intn(4) {
		case 0:
			return logic.R("E", a, b)
		case 1:
			return logic.Neg(logic.R("E", a, b))
		case 2:
			return logic.R("U", a)
		default:
			return logic.Neg(logic.Equal(a, b))
		}
	}
	weight := func() expr.Expr {
		if r.Intn(2) == 0 {
			return expr.W("u", []string{"x", "y"}[r.Intn(2)])
		}
		return expr.Times(expr.Guard(logic.R("E", "x", "y")), expr.W("w", "x", "y"))
	}
	body := expr.Times(expr.Guard(logic.Conj(atom(), atom())), weight())
	if r.Intn(2) == 0 {
		body = expr.Plus(body, expr.Times(expr.Guard(atom()), weight()))
	}
	return body
}

func TestCompileStatsAndLinearSize(t *testing.T) {
	// The circuit size should grow roughly linearly with the database.
	q := triangleQuery()
	var sizes []int
	var ns []int
	for _, n := range []int{20, 40, 80} {
		a, w := testDB(n, 2*n, 7)
		// Plant a few directed triangles so the query has non-zero answers.
		for i := 0; i+2 < n; i += 10 {
			a.MustAddTuple("E", i, i+1)
			a.MustAddTuple("E", i+1, i+2)
			a.MustAddTuple("E", i+2, i)
			for _, t := range []structure.Tuple{{i, i + 1}, {i + 1, i + 2}, {i + 2, i}} {
				if _, ok := w.Get("w", t); !ok {
					w.Set("w", t, 1)
				}
			}
		}
		res, err := Compile(a, q, Options{})
		if err != nil {
			t.Fatalf("Compile: %v", err)
		}
		got := Evaluate[int64](res, semiring.Nat, w)
		want := expr.Eval[int64](semiring.Nat, a, w, q, map[string]structure.Element{})
		if got != want {
			t.Fatalf("n=%d: circuit %d, naive %d", n, got, want)
		}
		if want == 0 {
			t.Fatalf("n=%d: expected planted triangles to give a non-zero count", n)
		}
		sizes = append(sizes, res.Circuit.Size())
		ns = append(ns, n)
		if res.Stats.Monomials != 1 {
			t.Errorf("expected 1 monomial, got %d", res.Stats.Monomials)
		}
		if res.Stats.Colors == 0 || res.Stats.ColorAssignments == 0 {
			t.Errorf("expected colouring statistics to be populated: %+v", res.Stats)
		}
	}
	// Allow generous slack: size(n=80)/size(n=20) should be well below the
	// quadratic ratio 16.
	ratio := float64(sizes[2]) / float64(sizes[0])
	if ratio > 10 {
		t.Errorf("circuit size ratio %0.1f for a 4× larger database suggests super-linear growth (sizes=%v, n=%v)", ratio, sizes, ns)
	}
}

func TestDecodeRelationKey(t *testing.T) {
	pos, neg := RelationInputKeys("E", structure.Tuple{3, 5})
	rel, tuple, positive, ok := DecodeRelationKey(pos)
	if !ok || rel != "E" || !positive || !tuple.Equal(structure.Tuple{3, 5}) {
		t.Errorf("DecodeRelationKey(pos) = %v %v %v %v", rel, tuple, positive, ok)
	}
	rel, tuple, positive, ok = DecodeRelationKey(neg)
	if !ok || rel != "E" || positive || !tuple.Equal(structure.Tuple{3, 5}) {
		t.Errorf("DecodeRelationKey(neg) = %v %v %v %v", rel, tuple, positive, ok)
	}
	if _, _, _, ok := DecodeRelationKey(structure.MakeWeightKey("w", structure.Tuple{1})); ok {
		t.Errorf("ordinary weight key misdetected as relation key")
	}
}
