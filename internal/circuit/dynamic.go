package circuit

import (
	"fmt"
	"sync"
	"time"
	"unsafe"

	"repro/internal/mvcc"
	"repro/internal/perm"
	"repro/internal/semiring"
	"repro/internal/structure"
)

// Dynamic is an incrementally maintained evaluation of a circuit: after a
// linear-time initialisation, the value of the output gate is kept up to
// date while individual weight inputs change.
//
// The per-update cost realises Theorem 8 of the paper:
//
//   - for arbitrary semirings, permanent gates are maintained by the
//     segment-tree structure of perm.Dynamic and wide addition gates by a
//     balanced aggregation tree, giving O(log n) semiring operations per
//     update;
//   - when the semiring is a ring, permanent gates use inclusion–exclusion
//     (perm.RingDynamic) and addition gates use difference updates, giving
//     O(1) operations per update;
//   - when the semiring is finite, permanent gates use column-type counting
//     (perm.FiniteDynamic) and addition gates use value counting, again
//     giving O(1) operations per update.
//
// The strategy is chosen automatically from the semiring's capabilities.
//
// The evaluator runs on the circuit's frozen Program and borrows its
// topological ranks and parents CSR instead of rebuilding them per session:
// dirty gates wait in one bucket per rank and each wave drains the buckets
// in increasing rank order, so every affected gate is recomputed exactly
// once per wave no matter how many of its children changed.  All wave state
// (buckets, changed-children lists, old values) lives in scratch buffers
// owned by the Dynamic and reused across updates: once the buffers have
// grown to their steady-state capacity, updates on the generic path perform
// zero heap allocations.
//
// # Goroutine safety
//
// A Dynamic serialises its own access: mutations (SetInput, ApplyBatch,
// EvalWith) take an exclusive lock for the full leaf-assignment + wave +
// commit sequence, and reads (Value, GateValue, and every Snapshot
// resolution) take a shared lock, so any number of goroutines may read while
// at most one mutates.  Each committed mutation advances the epoch counter;
// Snapshot pins the current epoch and keeps resolving values as of that
// commit while later mutations proceed, using the undo entries the wave
// scratch already computes (oldOf: gate → pre-wave value).  With no snapshot
// pinned the undo log records nothing and mutations stay allocation-free.
type Dynamic[T any] struct {
	p *Program
	s semiring.Semiring[T]

	ring   semiring.Ring[T]   // nil unless the semiring is a ring
	finite semiring.Finite[T] // nil unless the semiring is finite
	elems  []T                // carrier, when finite
	// elemIdx maps the rendering of a carrier element to its index in elems,
	// so large carriers resolve elements in O(1) instead of scanning on
	// every update.  It stays nil for small carriers (where an Equal scan is
	// cheaper than formatting) and for semirings whose Format is not
	// injective on the carrier (the scan is the always-correct fallback).
	elemIdx map[string]int

	vals []T

	adders []*adderState[T]
	perms  []permState[T]

	// Wave scratch, reused across updates (see runWave).
	buckets [][]int  // buckets[r] lists the dirty gates of rank r
	queued  []bool   // gate is waiting in a bucket
	changed [][]int  // changed[g] lists g's children that changed this wave
	oldOf   []T      // oldOf[g] is g's value right before this wave's change
	stamp   []uint64 // stamp[g] == gen marks g as changed this wave
	gen     uint64   // wave generation for stamp (not the commit epoch)

	// valMu orders mutations against reads: writers hold it exclusively for
	// one whole mutation, readers share it per resolution batch.
	valMu sync.RWMutex
	// log is the epoch/undo state behind Snapshot: while readers are pinned,
	// markChanged records each gate's pre-wave value and every mutation
	// commits one transition.
	log mvcc.Log[valUndo[T]]
	// restore is the scratch of EvalWith's second (undo) wave.
	restore []valUndo[T]

	// waveHook, when non-nil, receives the wall-clock duration of every
	// propagation wave.  The nil check in runWave keeps the uninstrumented
	// update path free of clock reads and allocations.  The hook runs while
	// the mutation holds the exclusive lock, so it must not call back into
	// the Dynamic.
	waveHook func(time.Duration)
}

// valUndo is one undo-log entry: gate held old right before the transition's
// wave.  It doubles as the restore scratch of EvalWith.
type valUndo[T any] struct {
	gate int32
	old  T
}

// SetWaveHook installs (or, with nil, removes) a listener that receives the
// duration of each propagation wave.  The hook runs on the updating
// goroutine after the wave completes; it must be cheap and must not call
// back into the Dynamic.
func (d *Dynamic[T]) SetWaveHook(f func(time.Duration)) { d.waveHook = f }

// InputChange is one element of an ApplyBatch batch: the weight input Key
// takes the Value.  Keys the circuit does not reference are ignored, and when
// the same key appears several times in one batch the last value wins.
type InputChange[T any] struct {
	Key   structure.WeightKey
	Value T
}

type adderState[T any] struct {
	children []int32
	// occurrences[child] lists the positions of that child within children,
	// so that an update touches only the changed child's occurrences.
	occurrences map[int][]int
	// ring path: nothing extra (difference updates on vals).
	// finite path: counts[i] = number of children currently equal to elems[i].
	counts []int64
	// generic path: a complete binary aggregation tree over the children.
	tree []T
	size int
}

type permState[T any] struct {
	maintainer perm.Maintainer[T]
	// positions[child] lists the wired (row, col) positions of that child.
	positions map[int][][2]int
}

// NewDynamic initialises the dynamic evaluator for the circuit's frozen
// Program under the given valuation; see NewDynamicProgram.
func NewDynamic[T any](c *Circuit, s semiring.Semiring[T], v Valuation[T]) *Dynamic[T] {
	return NewDynamicProgram(c.Program(), s, v)
}

// NewDynamicProgram initialises the dynamic evaluator on a frozen Program
// under the given valuation.  Freezing already validated the topological
// gate order, so propagation may trust the Program's ranks.  Many Dynamic
// sessions may share one Program; each gets independent update state while
// the ranks, parents and children arenas stay shared and immutable.
func NewDynamicProgram[T any](p *Program, s semiring.Semiring[T], v Valuation[T]) *Dynamic[T] {
	if p.output < 0 {
		panic("circuit: no output gate set")
	}
	d := &Dynamic[T]{p: p, s: s}
	if r, ok := s.(semiring.Ring[T]); ok {
		d.ring = r
	}
	if f, ok := s.(semiring.Finite[T]); ok {
		d.finite = f
		d.elems = f.Elements()
		if len(d.elems) > smallCarrierScanLimit {
			d.elemIdx = make(map[string]int, len(d.elems))
			for i, e := range d.elems {
				d.elemIdx[s.Format(e)] = i
			}
			if len(d.elemIdx) != len(d.elems) {
				// Format collides on the carrier: a map hit could return the
				// wrong index, so fall back to Equal scans throughout.
				d.elemIdx = nil
			}
		}
	}
	n := p.numGates
	d.vals = EvaluateAllProgram(p, s, v)
	d.adders = make([]*adderState[T], n)
	d.perms = make([]permState[T], n)
	for id := 0; id < n; id++ {
		switch Kind(p.kind[id]) {
		case KindAdd:
			d.adders[id] = d.newAdderState(p.ChildIDs(id))
		case KindPerm:
			d.perms[id] = d.newPermState(id)
		}
	}
	d.buckets = make([][]int, p.maxRank+1)
	d.queued = make([]bool, n)
	d.changed = make([][]int, n)
	d.oldOf = make([]T, n)
	d.stamp = make([]uint64, n)
	d.gen = 1
	d.log.EntryBytes = int64(unsafe.Sizeof(valUndo[T]{}))
	return d
}

func (d *Dynamic[T]) newAdderState(children []int32) *adderState[T] {
	st := &adderState[T]{children: children, occurrences: map[int][]int{}}
	for pos, ch := range children {
		st.occurrences[int(ch)] = append(st.occurrences[int(ch)], pos)
	}
	switch {
	case d.ring != nil:
		// Difference updates need no auxiliary state.
	case d.finite != nil:
		st.counts = make([]int64, len(d.elems))
		for _, ch := range children {
			st.counts[d.elemIndex(d.vals[ch])]++
		}
	default:
		// Balanced aggregation tree over the children values.
		st.size = 1
		for st.size < len(children) {
			st.size *= 2
		}
		st.tree = make([]T, 2*st.size)
		for i := range st.tree {
			st.tree[i] = d.s.Zero()
		}
		for i, ch := range children {
			st.tree[st.size+i] = d.vals[ch]
		}
		for i := st.size - 1; i >= 1; i-- {
			st.tree[i] = d.s.Add(st.tree[2*i], st.tree[2*i+1])
		}
	}
	return st
}

// smallCarrierScanLimit is the carrier size below which elemIndex scans with
// Equal instead of using the rendering map: for a handful of elements the
// scan is both faster and allocation-free, while formatting would allocate a
// string per lookup on the update hot path.
const smallCarrierScanLimit = 32

// elemIndex resolves a carrier element to its index in elems: via the
// rendering map precomputed in NewDynamicProgram for large carriers, by a
// linear Equal scan otherwise (and as the fallback for elements the map
// misses).
func (d *Dynamic[T]) elemIndex(v T) int {
	if d.elemIdx != nil {
		if i, ok := d.elemIdx[d.s.Format(v)]; ok {
			return i
		}
	}
	for i, e := range d.elems {
		if d.s.Equal(e, v) {
			return i
		}
	}
	panic("circuit: value outside the finite semiring carrier")
}

func (d *Dynamic[T]) newPermState(id int) permState[T] {
	rows, cols := d.p.PermShape(id)
	m := perm.NewMatrix[T](d.s, rows, cols)
	positions := make(map[int][][2]int)
	d.p.ForEachPermEntry(id, func(row, col, gate int) {
		m.Set(row, col, d.vals[gate])
		positions[gate] = append(positions[gate], [2]int{row, col})
	})
	var maint perm.Maintainer[T]
	switch {
	case d.ring != nil:
		maint = perm.NewRingDynamic(d.ring, m)
	case d.finite != nil:
		maint = perm.NewFiniteDynamic(d.finite, m)
	default:
		maint = perm.NewDynamic(d.s, m)
	}
	return permState[T]{maintainer: maint, positions: positions}
}

// Value returns the current value of the output gate.  It takes the shared
// lock, so it is safe to call from any goroutine concurrently with mutations
// — but never from a wave hook or any code already holding the Dynamic's
// exclusive lock.
func (d *Dynamic[T]) Value() T {
	d.valMu.RLock()
	v := d.vals[d.p.output]
	d.valMu.RUnlock()
	return v
}

// GateValue returns the current value of an arbitrary gate, under the same
// goroutine-safety contract as Value.
func (d *Dynamic[T]) GateValue(id int) T {
	d.valMu.RLock()
	v := d.vals[id]
	d.valMu.RUnlock()
	return v
}

// Epoch returns the number of committed mutations: the epoch a Snapshot
// taken now would pin.
func (d *Dynamic[T]) Epoch() uint64 {
	d.valMu.RLock()
	e := d.log.Epoch()
	d.valMu.RUnlock()
	return e
}

// RetainedUndoBytes reports the memory held by undo history for outstanding
// snapshots (0 when none are pinned).
func (d *Dynamic[T]) RetainedUndoBytes() int64 {
	d.valMu.RLock()
	n := d.log.Retained()
	d.valMu.RUnlock()
	return n
}

// SetInput updates one weight input to the given value and propagates the
// change.  Unknown keys (keys the circuit does not reference) are ignored,
// matching the convention that weights outside the circuit cannot influence
// the query value.
func (d *Dynamic[T]) SetInput(key structure.WeightKey, value T) {
	d.valMu.Lock()
	defer d.valMu.Unlock()
	id := d.p.InputGate(key)
	if id < 0 {
		return
	}
	if d.s.Equal(d.vals[id], value) {
		return
	}
	old := d.vals[id]
	d.vals[id] = value
	d.markChanged(id, old)
	d.runWave()
	d.log.Commit()
}

// ApplyBatch applies every leaf change first and then runs one propagation
// wave in rank order, so gates shared by several changed inputs are
// recomputed once per batch instead of once per update.  Repeated changes to
// the same key coalesce (the last value wins) and unknown keys are ignored,
// exactly as with SetInput.  Applying a batch is observationally equivalent
// to applying its changes one at a time; only the propagation cost differs.
func (d *Dynamic[T]) ApplyBatch(changes []InputChange[T]) {
	d.valMu.Lock()
	defer d.valMu.Unlock()
	touched := false
	for _, ch := range changes {
		id := d.p.InputGate(ch.Key)
		if id < 0 {
			continue
		}
		if d.s.Equal(d.vals[id], ch.Value) {
			continue
		}
		old := d.vals[id]
		d.vals[id] = ch.Value
		d.markChanged(id, old)
		touched = true
	}
	if touched {
		d.runWave()
		d.log.Commit()
	}
}

// EvalWith evaluates the output under temporary input overrides: the changes
// are applied as one wave, the output read, and the originals restored with
// a second wave, all under one exclusive critical section and without
// committing an epoch — the state is net unchanged, so snapshots can never
// pin the transient overrides.  While readers are pinned the two waves still
// append their (mutually cancelling) undo entries to the open transition,
// where first-wins resolution recovers the original values.  This is the
// writer-side fast path of dynamicq's point queries; snapshot readers use
// DynSnapshot.EvalWith, which leaves the shared state untouched.
func (d *Dynamic[T]) EvalWith(changes []InputChange[T]) T {
	d.valMu.Lock()
	defer d.valMu.Unlock()
	d.restore = d.restore[:0]
	for _, ch := range changes {
		id := d.p.InputGate(ch.Key)
		if id < 0 {
			continue
		}
		if d.s.Equal(d.vals[id], ch.Value) {
			continue
		}
		old := d.vals[id]
		d.restore = append(d.restore, valUndo[T]{gate: int32(id), old: old})
		d.vals[id] = ch.Value
		d.markChanged(id, old)
	}
	if len(d.restore) == 0 {
		return d.vals[d.p.output]
	}
	d.runWave()
	out := d.vals[d.p.output]
	// Undo in reverse, so duplicate keys restore the oldest value last.
	for i := len(d.restore) - 1; i >= 0; i-- {
		e := d.restore[i]
		id := int(e.gate)
		if d.s.Equal(d.vals[id], e.old) {
			continue
		}
		old := d.vals[id]
		d.vals[id] = e.old
		d.markChanged(id, old)
	}
	d.runWave()
	return out
}

// markChanged records that gate g's value just changed from old, notifying
// g's parents and queueing them by rank.  A gate's value changes at most once
// per wave (children drain strictly before parents), so the generation stamp
// only guards against the same *input* being assigned twice within one batch:
// the first assignment records the pre-wave value and enlists the parents,
// later ones merely overwrite vals.  When snapshots are pinned the pre-wave
// value is also appended to the undo log — it is exactly the entry a reader
// at an older epoch needs to roll g back.
func (d *Dynamic[T]) markChanged(g int, old T) {
	if d.stamp[g] == d.gen {
		return
	}
	d.stamp[g] = d.gen
	d.oldOf[g] = old
	if d.log.Logging() {
		d.log.Append(valUndo[T]{gate: int32(g), old: old})
	}
	for _, p32 := range d.p.ParentIDs(g) {
		p := int(p32)
		d.changed[p] = append(d.changed[p], g)
		if !d.queued[p] {
			d.queued[p] = true
			r := d.p.rank[p]
			d.buckets[r] = append(d.buckets[r], p)
		}
	}
}

// runWave drains the propagation wave, timing it only when a wave hook is
// installed so the common path never reads a clock.
func (d *Dynamic[T]) runWave() {
	if d.waveHook == nil {
		d.propagateWave()
		return
	}
	start := time.Now()
	d.propagateWave()
	d.waveHook(time.Since(start))
}

// propagateWave drains the rank buckets in increasing order.  Recomputing a
// gate of rank r can only enqueue parents of strictly larger rank, so a
// single left-to-right sweep recomputes every affected gate exactly once.
func (d *Dynamic[T]) propagateWave() {
	for r := 1; r < len(d.buckets); r++ {
		bucket := d.buckets[r]
		for _, g := range bucket {
			d.queued[g] = false
			newVal := d.recomputeGate(g)
			d.changed[g] = d.changed[g][:0]
			if d.s.Equal(newVal, d.vals[g]) {
				continue
			}
			old := d.vals[g]
			d.vals[g] = newVal
			d.markChanged(g, old)
		}
		d.buckets[r] = bucket[:0]
	}
	d.gen++
}

// recomputeGate refreshes the auxiliary structures of gate g given its
// changed children (their pre-wave values are in oldOf), and returns the new
// value of g.
func (d *Dynamic[T]) recomputeGate(g int) T {
	switch Kind(d.p.kind[g]) {
	case KindAdd:
		return d.recomputeAdd(g)
	case KindMul:
		acc := d.s.One()
		for _, ch := range d.p.ChildIDs(g) {
			acc = d.s.Mul(acc, d.vals[ch])
		}
		return acc
	case KindPerm:
		st := d.perms[g]
		for _, child := range d.changed[g] {
			if d.s.Equal(d.oldOf[child], d.vals[child]) {
				continue
			}
			for _, pos := range st.positions[child] {
				st.maintainer.Update(pos[0], pos[1], d.vals[child])
			}
		}
		return st.maintainer.Value()
	default:
		panic(fmt.Sprintf("circuit: gate %d of kind %v cannot be recomputed dynamically", g, Kind(d.p.kind[g])))
	}
}

func (d *Dynamic[T]) recomputeAdd(g int) T {
	st := d.adders[g]
	switch {
	case d.ring != nil:
		// Each changed child contributes occurrences·(new − old) once per
		// wave: children drain strictly before parents, so oldOf holds the
		// value this gate last incorporated.
		acc := d.vals[g]
		for _, ch := range d.changed[g] {
			occ := int64(len(st.occurrences[ch]))
			if occ == 0 {
				continue
			}
			delta := d.ring.Add(d.vals[ch], d.ring.Neg(d.oldOf[ch]))
			acc = d.ring.Add(acc, semiring.ScalarMul[T](d.ring, occ, delta))
		}
		return acc
	case d.finite != nil:
		for _, ch := range d.changed[g] {
			oldVal := d.oldOf[ch]
			if d.s.Equal(oldVal, d.vals[ch]) {
				continue
			}
			occ := int64(len(st.occurrences[ch]))
			st.counts[d.elemIndex(oldVal)] -= occ
			st.counts[d.elemIndex(d.vals[ch])] += occ
		}
		acc := d.s.Zero()
		for i, cnt := range st.counts {
			if cnt > 0 {
				acc = d.s.Add(acc, semiring.ScalarMul(d.s, cnt, d.elems[i]))
			}
		}
		return acc
	default:
		for _, ch := range d.changed[g] {
			if d.s.Equal(d.oldOf[ch], d.vals[ch]) {
				continue
			}
			for _, i := range st.occurrences[ch] {
				pos := st.size + i
				st.tree[pos] = d.vals[ch]
				for pos >= 2 {
					pos /= 2
					st.tree[pos] = d.s.Add(st.tree[2*pos], st.tree[2*pos+1])
				}
			}
		}
		return st.tree[1]
	}
}
