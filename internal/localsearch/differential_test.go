package localsearch

import (
	"math/rand"
	"testing"

	"repro/internal/enumerate"
	"repro/internal/logic"
	"repro/internal/structure"
)

// randomSearchStructure builds a random undirected bounded-degree graph with
// the empty unary solution predicates S and B, plus the adjacency lists the
// drivers need for their update steps.
func randomSearchStructure(t *testing.T, n int, seed int64) (*structure.Structure, [][]int) {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	sig := structure.MustSignature(
		[]structure.RelSymbol{
			{Name: "E", Arity: 2},
			{Name: "S", Arity: 1},
			{Name: "B", Arity: 1},
		},
		nil,
	)
	a := structure.NewStructure(sig, n)
	neighbors := make([][]int, n)
	for v := 0; v < n; v++ {
		deg := r.Intn(4) + 1
		for i := 0; i < deg; i++ {
			u := r.Intn(n)
			if u != v && !a.HasTuple("E", v, u) {
				a.MustAddTuple("E", v, u)
				a.MustAddTuple("E", u, v)
				neighbors[v] = append(neighbors[v], u)
				neighbors[u] = append(neighbors[u], v)
			}
		}
	}
	return a, neighbors
}

// TestBatchedSearchMatchesPerTuple runs the same maximal-independent-set
// local search twice on each random graph — once committing every round
// through a single batched ApplyAll wave, once through per-tuple Apply calls
// — and requires the two drivers to walk the identical improvement sequence
// to the identical local optimum.
func TestBatchedSearchMatchesPerTuple(t *testing.T) {
	phi := logic.Conj(logic.Neg(logic.R("S", "x")), logic.Neg(logic.R("B", "x")))
	for seed := int64(1); seed <= 4; seed++ {
		a, neighbors := randomSearchStructure(t, 60+int(seed)*13, seed)

		run := func(batched bool) []int {
			s, err := New(a, phi, []string{"x"}, []string{"S", "B"})
			if err != nil {
				t.Fatalf("seed %d: New: %v", seed, err)
			}
			var solution []int
			for {
				tpl, ok := s.FindImprovement()
				if !ok {
					return solution
				}
				v := tpl[0]
				solution = append(solution, v)
				if batched {
					changes := []enumerate.TupleChange{
						{Rel: "S", Tuple: structure.Tuple{v}, Present: true},
						{Rel: "B", Tuple: structure.Tuple{v}, Present: true},
					}
					for _, u := range neighbors[v] {
						changes = append(changes, enumerate.TupleChange{Rel: "B", Tuple: structure.Tuple{u}, Present: true})
					}
					if err := s.ApplyAll(changes); err != nil {
						t.Fatalf("seed %d: ApplyAll: %v", seed, err)
					}
					continue
				}
				for _, ch := range [][2]any{{"S", v}, {"B", v}} {
					if err := s.Apply(ch[0].(string), structure.Tuple{ch[1].(int)}, true); err != nil {
						t.Fatalf("seed %d: Apply: %v", seed, err)
					}
				}
				for _, u := range neighbors[v] {
					if err := s.Apply("B", structure.Tuple{u}, true); err != nil {
						t.Fatalf("seed %d: Apply: %v", seed, err)
					}
				}
			}
		}

		batched, perTuple := run(true), run(false)
		if len(batched) != len(perTuple) {
			t.Fatalf("seed %d: batched found %d improvements, per-tuple %d", seed, len(batched), len(perTuple))
		}
		for i := range batched {
			if batched[i] != perTuple[i] {
				t.Fatalf("seed %d: round %d picked %d (batched) vs %d (per-tuple)", seed, i, batched[i], perTuple[i])
			}
		}
		inSolution := map[int]bool{}
		for _, v := range batched {
			inSolution[v] = true
		}
		for v, ns := range neighbors {
			if inSolution[v] {
				for _, u := range ns {
					if inSolution[u] {
						t.Fatalf("seed %d: solution is not independent: edge %d–%d", seed, v, u)
					}
				}
				continue
			}
			blocked := false
			for _, u := range ns {
				blocked = blocked || inSolution[u]
			}
			if !blocked {
				t.Fatalf("seed %d: solution is not maximal: free vertex %d", seed, v)
			}
		}
	}
}
