// Command agggen generates a synthetic sparse database and writes it to
// stdout in the dbio text format (one line per declaration, tuple and
// weight), so it can be stored in a file or piped into aggquery.
//
// Usage:
//
//	agggen -kind grid -n 10000 -seed 1 > db.txt
//	agggen -kind bounded-degree -n 5000 | aggquery -stdin -query triangles
//
// The special kind "cdc" emits an NDJSON change stream instead of a
// database: deterministic, Gaifman-safe tuple/weight changes against the
// base workload selected by -base, one change per line, directly
// consumable by POST /ingest on aggserve:
//
//	agggen -kind cdc -base grid -n 10000 -changes 1000000 > changes.ndjson
//	curl -N --data-binary @changes.ndjson 'http://host/ingest?session=live'
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/agg"
	"repro/internal/dbio"
	"repro/internal/workload"
)

func main() {
	kind := flag.String("kind", "bounded-degree", "workload kind: bounded-degree, grid, forest, pref-attach, road, nested, search, cdc")
	n := flag.Int("n", 1000, "approximate number of database elements")
	degree := flag.Int("degree", 3, "degree / branching / attachment parameter")
	seed := flag.Int64("seed", 1, "random seed")
	base := flag.String("base", "grid", "base workload the cdc change stream runs against (cdc kind only)")
	changes := flag.Int("changes", 100000, "number of changes to emit (cdc kind only)")
	flag.Parse()

	if *kind == "cdc" {
		db, err := dbio.Source{Kind: *base, N: *n, Degree: *degree, Seed: *seed}.Generate()
		if err != nil {
			fmt.Fprintf(os.Stderr, "agggen: %v\n", err)
			os.Exit(2)
		}
		if err := workload.WriteChanges(os.Stdout, db, *changes, *seed); err != nil {
			fmt.Fprintf(os.Stderr, "agggen: %v\n", err)
			os.Exit(1)
		}
		return
	}

	db, err := agg.Load(agg.Source{Kind: *kind, N: *n, Degree: *degree, Seed: *seed})
	if err != nil {
		fmt.Fprintf(os.Stderr, "agggen: %v\n", err)
		os.Exit(2)
	}
	if err := db.Write(os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "agggen: %v\n", err)
		os.Exit(1)
	}
}
