// Package circuit implements circuits over semirings with permanent gates:
// the target representation of the compiler (Theorem 6 of the paper) and
// the data structure on which all evaluation, maintenance and enumeration
// results are built.
//
// A circuit is a directed acyclic graph of gates.  Gate kinds follow
// Section 3 of the paper: input gates (one per weight input (w, a) of the
// database), constant gates (natural numbers, interpreted as n-fold sums of
// the semiring unit, which keeps circuits semiring-agnostic), addition
// gates of arbitrary fan-in, multiplication gates, and permanent gates whose
// inputs form a rectangular matrix with a bounded number of rows.
//
// The same circuit can be evaluated in any semiring: see Evaluate for the
// unit-cost evaluation and the dynamic evaluator in dynamic.go for
// maintenance under input updates.
package circuit

import (
	"fmt"
	"math/big"
	"sync"

	"repro/internal/perm"
	"repro/internal/semiring"
	"repro/internal/structure"
)

// Kind enumerates gate kinds.
type Kind int

// Gate kinds.
const (
	KindInput Kind = iota
	KindConst
	KindAdd
	KindMul
	KindPerm
)

func (k Kind) String() string {
	switch k {
	case KindInput:
		return "input"
	case KindConst:
		return "const"
	case KindAdd:
		return "add"
	case KindMul:
		return "mul"
	case KindPerm:
		return "perm"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// PermEntry wires a child gate into position (Row, Col) of a permanent
// gate's matrix.  Positions that are not wired are implicitly the semiring
// zero.
type PermEntry struct {
	Row, Col int
	Gate     int
}

// Gate is a single circuit gate.  Exactly the fields relevant to its Kind
// are populated.
type Gate struct {
	Kind Kind

	// Key identifies the weight input (w, a) for input gates.
	Key structure.WeightKey

	// N is the constant value for constant gates, interpreted as N·1.
	N *big.Int

	// Children are the operand gates of addition and multiplication gates.
	Children []int

	// Rows, Cols and Entries describe the matrix of a permanent gate.
	Rows, Cols int
	Entries    []PermEntry
}

// Circuit is a directed acyclic circuit under construction.  Gates are
// stored in topological order: every child index is smaller than its
// parent's index.  Once built, freeze it with Program (memoised) to obtain
// the flat execution form shared by all engines.
type Circuit struct {
	Gates  []Gate
	Output int

	inputIndex map[structure.WeightKey]int
	constIndex map[string]int
	zeroGate   int
	oneGate    int

	progMu sync.Mutex
	prog   *Program
}

// NewBuilder returns an empty circuit under construction, pre-seeded with
// constant gates for 0 and 1.
func NewBuilder() *Circuit {
	c := &Circuit{inputIndex: make(map[structure.WeightKey]int), Output: -1}
	c.zeroGate = c.addGate(Gate{Kind: KindConst, N: big.NewInt(0)})
	c.oneGate = c.addGate(Gate{Kind: KindConst, N: big.NewInt(1)})
	return c
}

// Program returns the frozen CSR form of the circuit, freezing on first use
// and re-freezing when gates were added since.  It is safe for concurrent
// use once construction has finished; the returned Program is immutable and
// shared, so concurrent evaluations, dynamic sessions and enumerators all
// borrow one artefact.
func (c *Circuit) Program() *Program {
	c.progMu.Lock()
	defer c.progMu.Unlock()
	if c.prog == nil || c.prog.numGates != len(c.Gates) || c.prog.output != c.Output {
		c.prog = Freeze(c)
	}
	return c.prog
}

func (c *Circuit) addGate(g Gate) int {
	c.Gates = append(c.Gates, g)
	return len(c.Gates) - 1
}

// Zero returns the constant-0 gate.
func (c *Circuit) Zero() int { return c.zeroGate }

// One returns the constant-1 gate.
func (c *Circuit) One() int { return c.oneGate }

// Input returns the input gate for the weight key, creating it on first
// use so that each weight input appears exactly once.
func (c *Circuit) Input(key structure.WeightKey) int {
	if id, ok := c.inputIndex[key]; ok {
		return id
	}
	id := c.addGate(Gate{Kind: KindInput, Key: key})
	c.inputIndex[key] = id
	return id
}

// HasInput reports whether the circuit references the weight key.
func (c *Circuit) HasInput(key structure.WeightKey) bool {
	_, ok := c.inputIndex[key]
	return ok
}

// InputGate returns the gate id of an existing input, or -1.
func (c *Circuit) InputGate(key structure.WeightKey) int {
	if id, ok := c.inputIndex[key]; ok {
		return id
	}
	return -1
}

// Inputs returns a copy of the map from weight keys to input gate ids; the
// circuit's internal index stays private, so callers cannot corrupt it.
func (c *Circuit) Inputs() map[structure.WeightKey]int {
	out := make(map[structure.WeightKey]int, len(c.inputIndex))
	for k, v := range c.inputIndex {
		out[k] = v
	}
	return out
}

// Const returns a constant gate with value n ≥ 0.  Constants are interned:
// requesting the same value again returns the existing gate instead of
// growing the circuit.
func (c *Circuit) Const(n *big.Int) int {
	if n.Sign() < 0 {
		panic("circuit: negative constants are not representable in a general semiring")
	}
	if n.Sign() == 0 {
		return c.zeroGate
	}
	if n.Cmp(big.NewInt(1)) == 0 {
		return c.oneGate
	}
	key := n.String()
	if id, ok := c.constIndex[key]; ok {
		return id
	}
	id := c.addGate(Gate{Kind: KindConst, N: new(big.Int).Set(n)})
	if c.constIndex == nil {
		c.constIndex = make(map[string]int)
	}
	c.constIndex[key] = id
	return id
}

// ConstInt returns a constant gate with a small value.
func (c *Circuit) ConstInt(n int64) int { return c.Const(big.NewInt(n)) }

// Add returns a gate computing the sum of the children.  Zero children are
// dropped; an empty sum is the constant 0; a single child is returned
// as-is.
func (c *Circuit) Add(children ...int) int {
	kept := make([]int, 0, len(children))
	for _, ch := range children {
		c.checkChild(ch)
		if ch == c.zeroGate {
			continue
		}
		kept = append(kept, ch)
	}
	switch len(kept) {
	case 0:
		return c.zeroGate
	case 1:
		return kept[0]
	}
	return c.addGate(Gate{Kind: KindAdd, Children: kept})
}

// Mul returns a gate computing the product of the children.  Unit children
// are dropped; a zero child makes the whole product the constant 0; an
// empty product is the constant 1.
func (c *Circuit) Mul(children ...int) int {
	kept := make([]int, 0, len(children))
	for _, ch := range children {
		c.checkChild(ch)
		if ch == c.zeroGate {
			return c.zeroGate
		}
		if ch == c.oneGate {
			continue
		}
		kept = append(kept, ch)
	}
	switch len(kept) {
	case 0:
		return c.oneGate
	case 1:
		return kept[0]
	}
	return c.addGate(Gate{Kind: KindMul, Children: kept})
}

// Perm returns a permanent gate over a rows×cols matrix whose wired entries
// are given; missing entries are the semiring zero.
func (c *Circuit) Perm(rows, cols int, entries []PermEntry) int {
	for _, e := range entries {
		c.checkChild(e.Gate)
		if e.Row < 0 || e.Row >= rows || e.Col < 0 || e.Col >= cols {
			panic(fmt.Sprintf("circuit: permanent entry (%d,%d) outside %d×%d", e.Row, e.Col, rows, cols))
		}
	}
	if rows == 0 {
		return c.oneGate
	}
	if cols < rows {
		// Fewer columns than rows: no injective assignment exists.
		return c.zeroGate
	}
	return c.addGate(Gate{Kind: KindPerm, Rows: rows, Cols: cols, Entries: entries})
}

func (c *Circuit) checkChild(ch int) {
	if ch < 0 || ch >= len(c.Gates) {
		panic(fmt.Sprintf("circuit: child gate %d out of range", ch))
	}
}

// SetOutput marks the output gate.
func (c *Circuit) SetOutput(id int) {
	c.checkChild(id)
	c.Output = id
}

// NumGates returns the number of gates.
func (c *Circuit) NumGates() int { return len(c.Gates) }

// NumEdges returns the number of wires.
func (c *Circuit) NumEdges() int {
	edges := 0
	for _, g := range c.Gates {
		edges += len(g.Children) + len(g.Entries)
	}
	return edges
}

// Size returns gates plus wires, the paper's notion of circuit size.
func (c *Circuit) Size() int { return c.NumGates() + c.NumEdges() }

// Stats summarises the structural parameters that Theorem 6 bounds.
type Stats struct {
	Gates       int
	Edges       int
	Depth       int
	MaxFanIn    int
	MaxFanOut   int
	MaxPermRows int
	PermGates   int
	InputGates  int
}

// Statistics computes the structural statistics of the circuit.
func (c *Circuit) Statistics() Stats {
	st := Stats{Gates: len(c.Gates)}
	depth := make([]int, len(c.Gates))
	fanOut := make([]int, len(c.Gates))
	for id, g := range c.Gates {
		children := c.children(id)
		st.Edges += len(children)
		if len(children) > st.MaxFanIn {
			st.MaxFanIn = len(children)
		}
		d := 0
		for _, ch := range children {
			fanOut[ch]++
			if depth[ch]+1 > d {
				d = depth[ch] + 1
			}
		}
		depth[id] = d
		if d > st.Depth {
			st.Depth = d
		}
		switch g.Kind {
		case KindPerm:
			st.PermGates++
			if g.Rows > st.MaxPermRows {
				st.MaxPermRows = g.Rows
			}
		case KindInput:
			st.InputGates++
		}
	}
	for _, f := range fanOut {
		if f > st.MaxFanOut {
			st.MaxFanOut = f
		}
	}
	return st
}

func (c *Circuit) children(id int) []int {
	g := c.Gates[id]
	if g.Kind == KindPerm {
		out := make([]int, len(g.Entries))
		for i, e := range g.Entries {
			out[i] = e.Gate
		}
		return out
	}
	return g.Children
}

// Valuation supplies the value of each weight input; inputs for which ok is
// false take the semiring zero.
type Valuation[T any] func(key structure.WeightKey) (value T, ok bool)

// WeightsValuation adapts a structure.Weights assignment to a Valuation.
func WeightsValuation[T any](w *structure.Weights[T]) Valuation[T] {
	return func(key structure.WeightKey) (T, bool) { return w.GetKey(key) }
}

// Evaluate computes the value of the output gate in the semiring s under
// the valuation v, visiting every gate once.  Permanent gates are evaluated
// with the O(2^rows · rows · cols) column dynamic program of package perm.
// Evaluation runs on the circuit's frozen Program (freezing on first use);
// use EvaluateProgram directly when the Program is already at hand.
func Evaluate[T any](c *Circuit, s semiring.Semiring[T], v Valuation[T]) T {
	if c.Output < 0 {
		panic("circuit: no output gate set")
	}
	return EvaluateProgram(c.Program(), s, v)
}

// EvaluateAll computes the value of every gate on the circuit's frozen
// Program, returning the slice indexed by gate id.
func EvaluateAll[T any](c *Circuit, s semiring.Semiring[T], v Valuation[T]) []T {
	return EvaluateAllProgram(c.Program(), s, v)
}

// LegacyEvaluateAll computes the value of every gate by walking the builder
// layout directly (one Children slice and one big.Int per Gate).  It is the
// pre-Program execution path, retained as the differential-testing oracle
// and the baseline of bench experiment E14; all production callers go
// through the Program form.
func LegacyEvaluateAll[T any](c *Circuit, s semiring.Semiring[T], v Valuation[T]) []T {
	vals := make([]T, len(c.Gates))
	for id := range c.Gates {
		evaluateGate(c, s, v, id, vals)
	}
	return vals
}

// evaluateGate computes the value of a single gate into vals[id].  All
// children of the gate must already be present in vals; distinct gate ids
// may be evaluated concurrently as long as that invariant holds.
func evaluateGate[T any](c *Circuit, s semiring.Semiring[T], v Valuation[T], id int, vals []T) {
	g := &c.Gates[id]
	switch g.Kind {
	case KindInput:
		if x, ok := v(g.Key); ok {
			vals[id] = x
		} else {
			vals[id] = s.Zero()
		}
	case KindConst:
		vals[id] = semiring.ScalarMulBig(s, g.N, s.One())
	case KindAdd:
		acc := s.Zero()
		for _, ch := range g.Children {
			acc = s.Add(acc, vals[ch])
		}
		vals[id] = acc
	case KindMul:
		acc := s.One()
		for _, ch := range g.Children {
			acc = s.Mul(acc, vals[ch])
		}
		vals[id] = acc
	case KindPerm:
		vals[id] = evaluatePermGate(s, *g, vals)
	default:
		panic(fmt.Sprintf("circuit: unknown gate kind %v", g.Kind))
	}
}

func evaluatePermGate[T any](s semiring.Semiring[T], g Gate, vals []T) T {
	cols := make([][]T, g.Cols)
	for c := range cols {
		col := make([]T, g.Rows)
		for r := range col {
			col[r] = s.Zero()
		}
		cols[c] = col
	}
	for _, e := range g.Entries {
		cols[e.Col][e.Row] = vals[e.Gate]
	}
	return perm.PermColumns(s, g.Rows, func(c int) []T { return cols[c] }, g.Cols)
}

// String renders a compact description of the circuit for diagnostics.
func (c *Circuit) String() string {
	st := c.Statistics()
	return fmt.Sprintf("circuit{gates=%d edges=%d depth=%d permGates=%d maxPermRows=%d inputs=%d}",
		st.Gates, st.Edges, st.Depth, st.PermGates, st.MaxPermRows, st.InputGates)
}
