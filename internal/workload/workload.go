// Package workload generates the synthetic sparse databases used by the
// examples, the benchmark harness and the experiments in EXPERIMENTS.md.
//
// The generators produce exactly the graph classes the paper names as
// canonical bounded-expansion classes: bounded-degree random graphs, planar
// grids, forests, and preferential-attachment graphs of bounded degeneracy.
package workload

import (
	"math/rand"

	"repro/internal/semiring"
	"repro/internal/structure"
)

// GraphSignature is the default signature used by the generators: a binary
// edge relation E, a unary predicate S (a marked subset), a binary weight w
// on edges and a unary weight u on vertices.
func GraphSignature() *structure.Signature {
	return structure.MustSignature(
		[]structure.RelSymbol{{Name: "E", Arity: 2}, {Name: "S", Arity: 1}},
		[]structure.WeightSymbol{{Name: "w", Arity: 2}, {Name: "u", Arity: 1}},
	)
}

// Database is a generated structure together with integer weights (which
// callers may convert into any semiring).
type Database struct {
	A *structure.Structure
	// EdgeWeight holds w(x, y) for every edge tuple (x, y) ∈ E.
	EdgeWeight map[string]int64
	// VertexWeight holds u(x) for every vertex.
	VertexWeight []int64
}

// Weights materialises the integer weights as a weight assignment over the
// naturals.
func (d *Database) Weights() *structure.Weights[int64] {
	w := structure.NewWeights[int64]()
	for _, t := range d.A.Tuples("E") {
		w.Set("w", t, d.EdgeWeight[t.Key()])
	}
	for v := 0; v < d.A.N; v++ {
		w.Set("u", structure.Tuple{v}, d.VertexWeight[v])
	}
	return w
}

// WeightsIn converts the integer weights into an arbitrary semiring through
// the supplied embedding of small naturals.
func WeightsIn[T any](d *Database, embed func(int64) T) *structure.Weights[T] {
	w := structure.NewWeights[T]()
	for _, t := range d.A.Tuples("E") {
		w.Set("w", t, embed(d.EdgeWeight[t.Key()]))
	}
	for v := 0; v < d.A.N; v++ {
		w.Set("u", structure.Tuple{v}, embed(d.VertexWeight[v]))
	}
	return w
}

// MinPlusWeights converts the integer weights into the min-plus semiring.
func (d *Database) MinPlusWeights() *structure.Weights[semiring.Ext] {
	return WeightsIn(d, func(v int64) semiring.Ext { return semiring.Fin(v) })
}

func newDatabase(a *structure.Structure, r *rand.Rand, maxWeight int64) *Database {
	d := &Database{A: a, EdgeWeight: map[string]int64{}, VertexWeight: make([]int64, a.N)}
	for _, t := range a.Tuples("E") {
		d.EdgeWeight[t.Key()] = r.Int63n(maxWeight) + 1
	}
	for v := 0; v < a.N; v++ {
		d.VertexWeight[v] = r.Int63n(maxWeight) + 1
	}
	return d
}

func markSubset(a *structure.Structure, r *rand.Rand, fraction float64) {
	for v := 0; v < a.N; v++ {
		if r.Float64() < fraction {
			a.MustAddTuple("S", v)
		}
	}
}

// BoundedDegree generates a random directed graph in which every vertex has
// out-degree at most d and the underlying undirected graph has maximum
// degree O(d): a canonical bounded-expansion (indeed bounded-degree) class.
// A fraction of directed triangles is planted so that triangle queries have
// non-trivial answers.
func BoundedDegree(n, d int, seed int64) *Database {
	r := rand.New(rand.NewSource(seed))
	a := structure.NewStructure(GraphSignature(), n)
	for v := 0; v < n; v++ {
		deg := r.Intn(d) + 1
		for i := 0; i < deg; i++ {
			u := r.Intn(n)
			if u != v {
				a.MustAddTuple("E", v, u)
			}
		}
	}
	// Plant directed triangles on consecutive vertex triples.
	for v := 0; v+2 < n; v += 7 {
		a.MustAddTuple("E", v, v+1)
		a.MustAddTuple("E", v+1, v+2)
		a.MustAddTuple("E", v+2, v)
	}
	markSubset(a, r, 0.4)
	return newDatabase(a, r, 8)
}

// Grid generates the directed w×h grid graph (each vertex points to its
// right and down neighbours, and every 2×2 cell gets one diagonal so that
// triangles exist); grids are planar, hence of bounded expansion.
func Grid(w, h int, seed int64) *Database {
	r := rand.New(rand.NewSource(seed))
	a := structure.NewStructure(GraphSignature(), w*h)
	id := func(x, y int) int { return y*w + x }
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if x+1 < w {
				a.MustAddTuple("E", id(x, y), id(x+1, y))
			}
			if y+1 < h {
				a.MustAddTuple("E", id(x, y), id(x, y+1))
			}
			if x+1 < w && y+1 < h {
				// Diagonal closing a directed triangle.
				a.MustAddTuple("E", id(x+1, y+1), id(x, y))
			}
		}
	}
	markSubset(a, r, 0.3)
	return newDatabase(a, r, 8)
}

// Forest generates a random rooted forest with the given branching factor,
// oriented from children to parents; forests have treedepth O(depth) and are
// the base case of the paper's compilation.
func Forest(n, branching int, seed int64) *Database {
	r := rand.New(rand.NewSource(seed))
	a := structure.NewStructure(GraphSignature(), n)
	for v := 1; v < n; v++ {
		parent := v - 1 - r.Intn(min(v, branching))
		a.MustAddTuple("E", v, parent)
	}
	markSubset(a, r, 0.5)
	return newDatabase(a, r, 8)
}

// PreferentialAttachment generates a directed graph where each new vertex
// attaches to `attach` earlier vertices chosen preferentially; the
// out-degree is bounded by `attach`, so the degeneracy is bounded and the
// class has bounded expansion even though in-degrees are skewed.
func PreferentialAttachment(n, attach int, seed int64) *Database {
	r := rand.New(rand.NewSource(seed))
	a := structure.NewStructure(GraphSignature(), n)
	var targets []int
	for v := 1; v < n; v++ {
		for i := 0; i < attach; i++ {
			var u int
			if len(targets) == 0 || r.Intn(2) == 0 {
				u = r.Intn(v)
			} else {
				u = targets[r.Intn(len(targets))]
			}
			if u != v {
				a.MustAddTuple("E", v, u)
				targets = append(targets, u, v)
			}
		}
	}
	markSubset(a, r, 0.3)
	return newDatabase(a, r, 8)
}

// NestedSignature is the signature of the nested-aggregation workload: the
// graph signature extended with a unary relation V that holds every vertex,
// the trivial guard that per-vertex guarded connectives (Section 7)
// aggregate under.
func NestedSignature() *structure.Signature {
	return structure.MustSignature(
		[]structure.RelSymbol{{Name: "E", Arity: 2}, {Name: "S", Arity: 1}, {Name: "V", Arity: 1}},
		[]structure.WeightSymbol{{Name: "w", Arity: 2}, {Name: "u", Arity: 1}},
	)
}

// NestedAgg generates a bounded-degree random graph over NestedSignature for
// nested-aggregation queries: V(x) holds for every vertex, S marks a random
// subset, and edges/vertices carry small random weights.  The tuple count is
// about n·(d/2 + 2), so n = 400000 at the default degree already exceeds 10⁶
// tuples.
func NestedAgg(n, d int, seed int64) *Database {
	r := rand.New(rand.NewSource(seed))
	a := structure.NewStructure(NestedSignature(), n)
	for v := 0; v < n; v++ {
		deg := r.Intn(d) + 1
		for i := 0; i < deg; i++ {
			if u := r.Intn(n); u != v {
				a.MustAddTuple("E", v, u)
			}
		}
		a.MustAddTuple("V", v)
	}
	markSubset(a, r, 0.4)
	return newDatabase(a, r, 8)
}

// SearchSignature is the signature of the local-search workload: a symmetric
// edge relation E plus the initially-empty unary solution predicates S
// (selected), B (blocked) and D (dominated) that local-search drivers update
// dynamically (S/B drive maximal independent set, S/D minimal dominating
// set).
func SearchSignature() *structure.Signature {
	return structure.MustSignature(
		[]structure.RelSymbol{
			{Name: "E", Arity: 2},
			{Name: "S", Arity: 1},
			{Name: "B", Arity: 1},
			{Name: "D", Arity: 1},
		},
		[]structure.WeightSymbol{{Name: "w", Arity: 2}, {Name: "u", Arity: 1}},
	)
}

// Search generates an undirected bounded-degree random graph over
// SearchSignature (every edge is stored in both directions; the solution
// predicates start empty).  The tuple count is about n·d edge tuples, so
// n = 350000 at the default degree exceeds 10⁶ tuples.
func Search(n, d int, seed int64) *Database {
	r := rand.New(rand.NewSource(seed))
	a := structure.NewStructure(SearchSignature(), n)
	for v := 0; v < n; v++ {
		deg := r.Intn(d) + 1
		for i := 0; i < deg; i++ {
			u := r.Intn(n)
			if u != v && !a.HasTuple("E", v, u) {
				a.MustAddTuple("E", v, u)
				a.MustAddTuple("E", u, v)
			}
		}
	}
	return newDatabase(a, r, 8)
}

// RoadNetwork generates a planar-like network: a grid backbone with a small
// number of random shortcut edges between nearby vertices, mimicking road
// networks (low degeneracy, small separators).
func RoadNetwork(w, h int, shortcuts int, seed int64) *Database {
	d := Grid(w, h, seed)
	r := rand.New(rand.NewSource(seed + 1))
	n := d.A.N
	for i := 0; i < shortcuts; i++ {
		v := r.Intn(n)
		dx, dy := r.Intn(5)-2, r.Intn(5)-2
		u := v + dy*w + dx
		if u >= 0 && u < n && u != v {
			d.A.MustAddTuple("E", v, u)
			d.EdgeWeight[structure.Tuple{v, u}.Key()] = r.Int63n(8) + 1
		}
	}
	return d
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
