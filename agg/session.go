package agg

import (
	"context"
	"sync"
	"sync/atomic"

	"repro/internal/enumerate"
	"repro/internal/live"
	"repro/internal/obs"
)

// Session is a dynamic-update handle on a prepared query (Theorem 8): the
// query value can be read at any point of its free variables, and both
// weights and the tuples of relations declared with WithDynamic can be
// updated, with logarithmic cost per update.
//
// Writes serialise and fail fast: a Set or ApplyBatch attempted while
// another update holds the session returns ErrSessionBusy instead of
// queueing.  Reads never fail that way — Eval falls back to a snapshot of
// the last committed epoch when a writer is in flight, and Snapshot hands
// out a Reader pinned at one epoch for sustained concurrent reading.  The
// lone exception is a nested (WithNested) session, whose recompute evaluator
// has no epochs to snapshot: there Eval keeps the fail-fast ErrSessionBusy
// contract.  After Close every operation returns ErrSessionClosed, but
// Readers drawn before the Close stay usable until they are closed
// themselves.
type Session struct {
	p    *Prepared
	once sync.Once

	// writerMu serialises mutations and the in-place read path; TryLock keeps
	// the fail-fast contract for writer–writer conflicts.
	writerMu sync.Mutex
	// stateMu guards the lifecycle flag so concurrent readers can check it
	// without contending with writers.
	stateMu sync.RWMutex

	closed bool
	sess   erasedSession
	// ans is the session-private answer enumerator, present only for
	// enumerable queries with dynamic relations: tuple updates are mirrored
	// into it so Readers can enumerate the answer set at a pinned epoch.
	ans *enumerate.Answers

	// hub fans committed epochs out to Subscribe streams.  It stays nil
	// until the first subscriber, so the write path of an unobserved
	// session pays one atomic load and nothing else.
	hub atomic.Pointer[live.Hub]
	// liveDelta is the per-key answer-set state behind delta subscriptions;
	// it is touched only by the hub's single evaluator goroutine.
	liveDelta map[live.Key]map[string][]int
}

// Change is one update of a Session: a weight update (Weight non-empty:
// Weight(Tuple) takes Value) or a dynamic-relation update (Rel non-empty:
// membership of Tuple becomes Present).  Exactly one of Weight and Rel must
// be set.
type Change struct {
	Weight  string
	Rel     string
	Tuple   []int
	Value   int64
	Present bool
}

// SetWeight builds a weight update.
func SetWeight(weight string, tuple []int, value int64) Change {
	return Change{Weight: weight, Tuple: tuple, Value: value}
}

// SetTuple builds a dynamic-relation membership update.
func SetTuple(rel string, tuple []int, present bool) Change {
	return Change{Rel: rel, Tuple: tuple, Present: present}
}

// acquireWriter takes the write half of the session for one mutation,
// failing fast when another writer holds it or the session is closed.  The
// caller must unlock writerMu on success.
func (s *Session) acquireWriter() error {
	if !s.writerMu.TryLock() {
		return errorf(ErrSessionBusy, s.p.text, "session is processing another update")
	}
	s.stateMu.RLock()
	closed := s.closed
	s.stateMu.RUnlock()
	if closed {
		s.writerMu.Unlock()
		return errorf(ErrSessionClosed, s.p.text, "session was closed")
	}
	return nil
}

// FreeVars returns the free variables of the underlying query, in the order
// Eval expects its arguments.
func (s *Session) FreeVars() []string { return s.p.FreeVars() }

// Eval reads the query value under the updates applied so far: no arguments
// for a closed query, one element per free variable for a point query.
//
// Eval never returns ErrSessionBusy on an MVCC-backed (non-nested) session:
// it pins a snapshot of the last committed epoch, answers from that, and
// releases it, without ever taking the writer lock — so reads keep flowing
// under a sustained write stream and never make a concurrent writer fail
// either.  On a nested session, which cannot snapshot, Eval evaluates in
// place under the writer lock and fails fast when it is held.
func (s *Session) Eval(ctx context.Context, args ...int) (Value, error) {
	if err := ensureCtx(ctx).Err(); err != nil {
		return "", err
	}
	s.stateMu.RLock()
	closed, sess := s.closed, s.sess
	s.stateMu.RUnlock()
	if closed {
		return "", errorf(ErrSessionClosed, s.p.text, "session was closed")
	}
	evalSpan := obs.FromContext(ctx).StartSpan(obs.StageEval)
	var out string
	var err error
	if snap, serr := sess.Snapshot(); serr == nil {
		out, err = snap.Point(args)
		snap.Release()
	} else {
		// Nested sessions have no snapshots: evaluate in place, fail-fast.
		if !s.writerMu.TryLock() {
			return "", errorf(ErrSessionBusy, s.p.text, "session is processing another operation")
		}
		out, err = sess.Point(args)
		s.writerMu.Unlock()
	}
	if err != nil {
		return "", newError(ErrArgument, s.p.text, err)
	}
	evalSpan.End()
	return Value(out), nil
}

// Epoch returns the number of updates committed on this session so far.
// Nested sessions, which have no commit counter, always report zero.
func (s *Session) Epoch() uint64 {
	s.stateMu.RLock()
	defer s.stateMu.RUnlock()
	if s.closed {
		return 0
	}
	return s.sess.Epoch()
}

// RetainedUndoBytes reports the undo-history memory currently pinned by
// outstanding Readers and snapshot reads; zero whenever none are open.
func (s *Session) RetainedUndoBytes() int64 {
	s.stateMu.RLock()
	defer s.stateMu.RUnlock()
	if s.closed {
		return 0
	}
	n := s.sess.RetainedUndoBytes()
	if s.ans != nil {
		n += s.ans.RetainedUndoBytes()
	}
	return n
}

// Set applies one change: a weight update or a dynamic-relation membership
// update.  Tuple insertions must preserve the Gaifman graph of the compiled
// structure (Theorem 24's update model); violations fail with ErrUpdate and
// leave the session untouched.
func (s *Session) Set(change Change) error {
	if err := s.acquireWriter(); err != nil {
		return err
	}
	defer s.writerMu.Unlock()
	return s.apply(change)
}

// apply performs one change; the caller holds the write half.
func (s *Session) apply(change Change) error {
	var err error
	switch {
	case change.Weight != "" && change.Rel != "":
		return errorf(ErrUpdate, s.p.text, "change names both weight %q and relation %q", change.Weight, change.Rel)
	case change.Weight != "":
		err = s.sess.SetWeight(change.Weight, change.Tuple, change.Value)
	case change.Rel != "":
		err = s.sess.SetTuple(change.Rel, change.Tuple, change.Present)
	default:
		return errorf(ErrUpdate, s.p.text, "change names neither a weight nor a relation")
	}
	if err != nil {
		return newError(ErrUpdate, s.p.text, err)
	}
	if change.Rel != "" && s.ans != nil {
		if merr := s.ans.SetTuple(change.Rel, change.Tuple, change.Present); merr != nil {
			return newError(ErrUpdate, s.p.text, merr)
		}
	}
	if h := s.hub.Load(); h != nil {
		h.Notify(s.sess.Epoch())
	}
	return nil
}

// ApplyBatch applies a mixed batch of changes atomically: every change is
// validated before anything is applied (all-or-nothing), and the evaluator
// then runs a single propagation wave for the whole batch, so gates shared
// by several changes are recomputed once and repeated changes to one key
// coalesce with the last value winning.
func (s *Session) ApplyBatch(changes []Change) error {
	if err := s.acquireWriter(); err != nil {
		return err
	}
	defer s.writerMu.Unlock()
	for i, ch := range changes {
		if ch.Weight != "" && ch.Rel != "" {
			return errorf(ErrUpdate, s.p.text, "change %d names both a weight and a relation", i)
		}
		if ch.Weight == "" && ch.Rel == "" {
			return errorf(ErrUpdate, s.p.text, "change %d names neither a weight nor a relation", i)
		}
	}
	if err := s.sess.ApplyBatch(changes); err != nil {
		return newError(ErrUpdate, s.p.text, err)
	}
	if s.ans != nil {
		var mirror []enumerate.TupleChange
		for _, ch := range changes {
			if ch.Rel != "" {
				mirror = append(mirror, enumerate.TupleChange{Rel: ch.Rel, Tuple: ch.Tuple, Present: ch.Present})
			}
		}
		if len(mirror) > 0 {
			if merr := s.ans.ApplyBatch(mirror); merr != nil {
				return newError(ErrUpdate, s.p.text, merr)
			}
		}
	}
	if h := s.hub.Load(); h != nil {
		h.Notify(s.sess.Epoch())
	}
	return nil
}

// Close marks the session closed; subsequent operations fail with
// ErrSessionClosed.  Close blocks until an in-flight update finishes and is
// idempotent.  Readers obtained from Snapshot before the Close keep working —
// close them separately to release their pinned history.  Subscribe streams
// receive any pending update and then end with ErrSessionClosed.
func (s *Session) Close() error {
	s.once.Do(func() {
		s.writerMu.Lock()
		s.stateMu.Lock()
		s.closed = true
		s.stateMu.Unlock()
		s.writerMu.Unlock()
		if h := s.hub.Load(); h != nil {
			h.Close()
		}
	})
	return nil
}
