// Textual queries on a database file: generate a sparse database, store it
// in the dbio text format, read it back, and evaluate queries written in the
// surface syntax of internal/parser — the same pipeline the cmd/agggen and
// cmd/aggquery tools expose, driven as a library.
//
// The example also shows two of the "exotic" semirings: the counting
// tropical semiring (cheapest answer and how many answers attain it) and the
// k-best semiring (the costs of the k cheapest answers).
//
//	go run ./examples/textquery
package main

import (
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/compile"
	"repro/internal/dbio"
	"repro/internal/parser"
	"repro/internal/semiring"
	"repro/internal/workload"
)

func main() {
	// 1. Generate and persist a database.
	db := workload.Grid(60, 60, 9)
	path := filepath.Join(os.TempDir(), "textquery-grid.db")
	if err := dbio.WriteFile(path, db.A, db.Weights()); err != nil {
		panic(err)
	}
	fmt.Printf("wrote %s (%d vertices, %d tuples)\n", path, db.A.N, db.A.TupleCount())

	// 2. Read it back.
	loaded, err := dbio.ReadFile(path)
	if err != nil {
		panic(err)
	}

	// 3. Parse queries from text.
	queries := map[string]string{
		"weighted triangles": "sum x, y, z . [E(x,y) & E(y,z) & E(z,x)] * w(x,y) * w(y,z) * w(z,x)",
		"marked out-degree":  "sum x, y . [E(x,y) & S(x)] * u(y)",
		"non-edges of marks": "sum x, y . [S(x) & S(y) & x != y & !E(x,y)]",
	}

	for name, src := range queries {
		e, err := parser.ParseExpr(src)
		if err != nil {
			panic(err)
		}
		res, err := compile.Compile(loaded.A, e, compile.Options{})
		if err != nil {
			panic(err)
		}
		nat := compile.Evaluate[int64](res, semiring.Nat, loaded.W)

		cc := compile.Evaluate[semiring.CostCount](res, semiring.CountingTropical,
			dbio.ConvertWeights(loaded.W, func(v int64) semiring.CostCount { return semiring.CC(v, 1) }))

		k3 := semiring.NewKBest(3)
		best3 := compile.Evaluate[[]int64](res, k3,
			dbio.ConvertWeights(loaded.W, func(v int64) []int64 { return k3.Costs(v) }))

		fmt.Printf("\nquery %q\n  %s\n", name, parser.FormatExpr(e))
		fmt.Printf("  value in (N,+,·):          %d\n", nat)
		fmt.Printf("  cheapest answer (min,+):   %s\n", semiring.CountingTropical.Format(cc))
		fmt.Printf("  3 cheapest answer costs:   %s\n", k3.Format(best3))
	}
}
