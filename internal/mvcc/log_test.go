package mvcc

import "testing"

type entry struct {
	slot int
	old  int
}

// digest resolves slot values at a pinned epoch against current state, the
// way engine snapshots do: first undo entry wins, current value otherwise.
func digest(l *Log[entry], pinned uint64, current map[int]int) map[int]int {
	seen := map[int]int{}
	l.Walk(pinned, func(e entry) {
		if _, ok := seen[e.slot]; !ok {
			seen[e.slot] = e.old
		}
	})
	out := map[int]int{}
	for s, v := range current {
		out[s] = v
	}
	for s, v := range seen {
		out[s] = v
	}
	return out
}

func TestLogResolvesPinnedEpochs(t *testing.T) {
	var l Log[entry]
	cur := map[int]int{1: 10, 2: 20}

	// No pins: commits advance the epoch without retaining history.
	l.Commit()
	if got := l.Retained(); got != 0 {
		t.Fatalf("retained %d with no pins, want 0", got)
	}

	p0 := l.Pin()
	want0 := map[int]int{1: 10, 2: 20}

	// Transition p0 → p0+1 changes both slots.
	for _, e := range []entry{{1, 10}, {2, 20}} {
		if !l.Logging() {
			t.Fatal("Logging false while pinned")
		}
		l.Append(e)
	}
	cur[1], cur[2] = 11, 21
	l.Commit()

	p1 := l.Pin()
	want1 := map[int]int{1: 11, 2: 21}

	// Transition p1 → p1+1 changes slot 1 again.
	l.Append(entry{1, 11})
	cur[1] = 12
	l.Commit()

	for _, c := range []struct {
		pin  uint64
		want map[int]int
	}{{p0, want0}, {p1, want1}} {
		got := digest(&l, c.pin, cur)
		for s, w := range c.want {
			if got[s] != w {
				t.Errorf("epoch %d slot %d = %d, want %d", c.pin, s, got[s], w)
			}
		}
	}

	// Releasing the older pin truncates only the history before p1.
	before := l.Retained()
	l.Unpin(p0)
	after := l.Retained()
	if after >= before {
		t.Errorf("retained %d after releasing oldest pin, want < %d", after, before)
	}
	got := digest(&l, p1, cur)
	if got[1] != 11 || got[2] != 21 {
		t.Errorf("epoch %d resolves to %v after truncation, want %v", p1, got, want1)
	}

	// Releasing the last pin drops all history; further commits retain none.
	l.Unpin(p1)
	if got := l.Retained(); got != 0 {
		t.Fatalf("retained %d after all pins released, want 0", got)
	}
	for i := 0; i < 100; i++ {
		l.Commit()
	}
	if got := l.Retained(); got != 0 {
		t.Fatalf("retained %d after pin-free commits, want 0", got)
	}
}

func TestLogEmptyTransitionsKeepIndexing(t *testing.T) {
	var l Log[entry]
	p := l.Pin()
	// Three commits, only the middle one logs an entry; walking from the pin
	// must still see it exactly once and transitions must line up by epoch.
	l.Commit()
	l.Append(entry{7, 70})
	l.Commit()
	l.Commit()
	var seen []entry
	end := l.Walk(p, func(e entry) { seen = append(seen, e) })
	if end != l.Epoch() {
		t.Fatalf("Walk returned %d, want current epoch %d", end, l.Epoch())
	}
	if len(seen) != 1 || seen[0] != (entry{7, 70}) {
		t.Fatalf("walk saw %v, want exactly [{7 70}]", seen)
	}
	l.Unpin(p)
}

func TestLogPinCounts(t *testing.T) {
	var l Log[entry]
	a := l.Pin()
	b := l.Pin()
	if a != b {
		t.Fatalf("pins at the same epoch disagree: %d vs %d", a, b)
	}
	if l.Pins() != 2 {
		t.Fatalf("Pins() = %d, want 2", l.Pins())
	}
	l.Append(entry{1, 1})
	l.Commit()
	l.Unpin(a)
	if l.Retained() == 0 {
		t.Fatal("history dropped while a pin at its epoch remains")
	}
	l.Unpin(b)
	if l.Retained() != 0 {
		t.Fatal("history retained after the last pin released")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("double Unpin did not panic")
		}
	}()
	l.Unpin(b)
}
