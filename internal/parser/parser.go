package parser

import (
	"strconv"

	"repro/internal/expr"
	"repro/internal/logic"
)

// ParseExpr parses a weighted expression.
//
// Grammar (precedence from loosest to tightest):
//
//	expr    := term ('+' term)*
//	term    := unary ('*' unary)*
//	unary   := 'sum' binder expr            -- aggregation, extends maximally right
//	         | primary
//	primary := NUMBER
//	         | '[' formula ']'              -- Iverson bracket
//	         | IDENT '(' vars? ')'          -- weight symbol applied to variables
//	         | IDENT                        -- 0-ary weight symbol
//	         | '(' expr ')'
//	binder  := ['_'] ['{'] var (',' var)* ['}'] ['.']
//
// Both '*' and '·' denote multiplication, and 'sum' may be written 'Σ'.
func ParseExpr(input string) (expr.Expr, error) {
	toks, err := lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{input: input, toks: toks}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expect(tokEOF); err != nil {
		return nil, err
	}
	return e, nil
}

// MustParseExpr is ParseExpr, panicking on error.  Intended for tests and
// example programs with constant query strings.
func MustParseExpr(input string) expr.Expr {
	e, err := ParseExpr(input)
	if err != nil {
		panic(err)
	}
	return e
}

// ParseFormula parses a first-order formula.
//
// Grammar (precedence from loosest to tightest):
//
//	formula := disj
//	disj    := conj (('|' | 'or') conj)*
//	conj    := unary (('&' | 'and') unary)*
//	unary   := ('!' | 'not') unary
//	         | ('exists' | 'forall') binder formula   -- extends maximally right
//	         | atom
//	atom    := 'true' | 'false'
//	         | '(' formula ')'
//	         | IDENT '(' vars? ')'                     -- relation atom
//	         | var '=' var | var '!=' var
//
// The Unicode forms ∧, ∨, ¬, ≠, ∃ and ∀ are accepted as well.
func ParseFormula(input string) (logic.Formula, error) {
	toks, err := lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{input: input, toks: toks}
	f, err := p.parseFormula()
	if err != nil {
		return nil, err
	}
	if err := p.expect(tokEOF); err != nil {
		return nil, err
	}
	return f, nil
}

// MustParseFormula is ParseFormula, panicking on error.
func MustParseFormula(input string) logic.Formula {
	f, err := ParseFormula(input)
	if err != nil {
		panic(err)
	}
	return f
}

// parser is a recursive-descent parser over a token slice.
type parser struct {
	input string
	toks  []token
	pos   int
}

func (p *parser) peek() token { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }
func (p *parser) at(k tokenKind) bool {
	return p.toks[p.pos].kind == k
}

func (p *parser) accept(k tokenKind) bool {
	if p.at(k) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(k tokenKind) error {
	if p.at(k) {
		p.pos++
		return nil
	}
	t := p.peek()
	return errorAt(p.input, t.pos, "expected %s, found %s %q", k, t.kind, t.text)
}

// ---------------------------------------------------------------------------
// Weighted expressions
// ---------------------------------------------------------------------------

func (p *parser) parseExpr() (expr.Expr, error) {
	first, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	args := []expr.Expr{first}
	for p.accept(tokPlus) {
		next, err := p.parseTerm()
		if err != nil {
			return nil, err
		}
		args = append(args, next)
	}
	if len(args) == 1 {
		return first, nil
	}
	return expr.Plus(args...), nil
}

func (p *parser) parseTerm() (expr.Expr, error) {
	first, err := p.parseUnaryExpr()
	if err != nil {
		return nil, err
	}
	args := []expr.Expr{first}
	for p.accept(tokStar) {
		next, err := p.parseUnaryExpr()
		if err != nil {
			return nil, err
		}
		args = append(args, next)
	}
	if len(args) == 1 {
		return first, nil
	}
	return expr.Times(args...), nil
}

func (p *parser) parseUnaryExpr() (expr.Expr, error) {
	if p.accept(tokSum) {
		vars, err := p.parseBinder()
		if err != nil {
			return nil, err
		}
		body, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return expr.Agg(vars, body), nil
	}
	return p.parsePrimaryExpr()
}

func (p *parser) parsePrimaryExpr() (expr.Expr, error) {
	t := p.peek()
	switch t.kind {
	case tokNumber:
		p.next()
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, errorAt(p.input, t.pos, "invalid integer constant %q", t.text)
		}
		return expr.N(n), nil
	case tokLBracket:
		p.next()
		f, err := p.parseFormula()
		if err != nil {
			return nil, err
		}
		if err := p.expect(tokRBracket); err != nil {
			return nil, err
		}
		return expr.Guard(f), nil
	case tokLParen:
		p.next()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		return e, nil
	case tokIdent:
		p.next()
		if p.accept(tokLParen) {
			if p.accept(tokRParen) {
				return expr.W(t.text), nil
			}
			vars, err := p.parseVarList()
			if err != nil {
				return nil, err
			}
			if err := p.expect(tokRParen); err != nil {
				return nil, err
			}
			return expr.W(t.text, vars...), nil
		}
		return expr.W(t.text), nil
	default:
		return nil, errorAt(p.input, t.pos, "expected a weighted expression, found %s %q", t.kind, t.text)
	}
}

// parseBinder parses the variable list after 'sum', 'exists' or 'forall',
// accepting the forms "x, y .", "_{x,y}", "{x,y}" and "x, y".
func (p *parser) parseBinder() ([]string, error) {
	braced := false
	if p.accept(tokUnderscore) {
		if err := p.expect(tokLBrace); err != nil {
			return nil, err
		}
		braced = true
	} else if p.accept(tokLBrace) {
		braced = true
	}
	vars, err := p.parseVarList()
	if err != nil {
		return nil, err
	}
	if braced {
		if err := p.expect(tokRBrace); err != nil {
			return nil, err
		}
	}
	p.accept(tokDot)
	return vars, nil
}

func (p *parser) parseVarList() ([]string, error) {
	var vars []string
	for {
		t := p.peek()
		if t.kind != tokIdent {
			return nil, errorAt(p.input, t.pos, "expected a variable name, found %s %q", t.kind, t.text)
		}
		p.next()
		vars = append(vars, t.text)
		if !p.accept(tokComma) {
			return vars, nil
		}
	}
}

// ---------------------------------------------------------------------------
// First-order formulas
// ---------------------------------------------------------------------------

func (p *parser) parseFormula() (logic.Formula, error) {
	return p.parseDisjunction()
}

func (p *parser) parseDisjunction() (logic.Formula, error) {
	first, err := p.parseConjunction()
	if err != nil {
		return nil, err
	}
	args := []logic.Formula{first}
	for p.accept(tokOr) {
		next, err := p.parseConjunction()
		if err != nil {
			return nil, err
		}
		args = append(args, next)
	}
	if len(args) == 1 {
		return first, nil
	}
	return logic.Disj(args...), nil
}

func (p *parser) parseConjunction() (logic.Formula, error) {
	first, err := p.parseUnaryFormula()
	if err != nil {
		return nil, err
	}
	args := []logic.Formula{first}
	for p.accept(tokAnd) {
		next, err := p.parseUnaryFormula()
		if err != nil {
			return nil, err
		}
		args = append(args, next)
	}
	if len(args) == 1 {
		return first, nil
	}
	return logic.Conj(args...), nil
}

func (p *parser) parseUnaryFormula() (logic.Formula, error) {
	switch {
	case p.accept(tokBang):
		arg, err := p.parseUnaryFormula()
		if err != nil {
			return nil, err
		}
		return logic.Neg(arg), nil
	case p.at(tokExists) || p.at(tokForall):
		kind := p.next().kind
		vars, err := p.parseBinder()
		if err != nil {
			return nil, err
		}
		body, err := p.parseFormula()
		if err != nil {
			return nil, err
		}
		if kind == tokExists {
			return logic.Ex(vars, body), nil
		}
		return logic.All(vars, body), nil
	default:
		return p.parseAtom()
	}
}

func (p *parser) parseAtom() (logic.Formula, error) {
	t := p.peek()
	switch t.kind {
	case tokTrue:
		p.next()
		return logic.True(), nil
	case tokFalse:
		p.next()
		return logic.False(), nil
	case tokLParen:
		p.next()
		f, err := p.parseFormula()
		if err != nil {
			return nil, err
		}
		if err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		return f, nil
	case tokIdent:
		p.next()
		switch {
		case p.accept(tokLParen):
			if p.accept(tokRParen) {
				return logic.R(t.text), nil
			}
			vars, err := p.parseVarList()
			if err != nil {
				return nil, err
			}
			if err := p.expect(tokRParen); err != nil {
				return nil, err
			}
			return logic.R(t.text, vars...), nil
		case p.accept(tokEquals):
			rhs := p.peek()
			if rhs.kind != tokIdent {
				return nil, errorAt(p.input, rhs.pos, "expected a variable after '=', found %s %q", rhs.kind, rhs.text)
			}
			p.next()
			return logic.Equal(t.text, rhs.text), nil
		case p.accept(tokNotEquals):
			rhs := p.peek()
			if rhs.kind != tokIdent {
				return nil, errorAt(p.input, rhs.pos, "expected a variable after '!=', found %s %q", rhs.kind, rhs.text)
			}
			p.next()
			return logic.Neg(logic.Equal(t.text, rhs.text)), nil
		default:
			u := p.peek()
			return nil, errorAt(p.input, u.pos, "expected '(', '=' or '!=' after identifier %q, found %s %q", t.text, u.kind, u.text)
		}
	default:
		return nil, errorAt(p.input, t.pos, "expected a formula, found %s %q", t.kind, t.text)
	}
}
