package agg

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
)

// searchDB is an undirected path 0–1–2–3–4 with empty dynamic predicates S
// (selected) and B (blocked).
const searchDB = `
domain 5
rel E 2
rel S 1
rel B 1
E 0 1
E 1 0
E 1 2
E 2 1
E 2 3
E 3 2
E 3 4
E 4 3
`

var searchNeighbors = map[int][]int{0: {1}, 1: {0, 2}, 2: {1, 3}, 3: {2, 4}, 4: {3}}

// prepareMIS prepares the maximal-independent-set improvement query: a vertex
// that is neither selected nor blocked can be added.
func prepareMIS(t *testing.T) *Prepared {
	t.Helper()
	eng, err := OpenReader(strings.NewReader(searchDB))
	if err != nil {
		t.Fatalf("OpenReader: %v", err)
	}
	p, err := eng.Prepare(context.Background(), "!S(x) & !B(x)", WithDynamic("S", "B"))
	if err != nil {
		t.Fatalf("Prepare: %v", err)
	}
	return p
}

// misStep selects the improvement vertex and blocks its neighbourhood.
func misStep(ans Answer) []Change {
	v := ans[0]
	changes := []Change{
		{Rel: "S", Tuple: []int{v}, Present: true},
		{Rel: "B", Tuple: []int{v}, Present: true},
	}
	for _, u := range searchNeighbors[v] {
		changes = append(changes, Change{Rel: "B", Tuple: []int{u}, Present: true})
	}
	return changes
}

func TestSearchMaximalIndependentSet(t *testing.T) {
	p := prepareMIS(t)
	ctx := context.Background()

	s, err := p.Search()
	if err != nil {
		t.Fatalf("Search: %v", err)
	}
	var solution []int
	rounds, err := s.Run(ctx, func(ans Answer) []Change {
		solution = append(solution, ans[0])
		return misStep(ans)
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rounds != len(solution) || rounds != s.Rounds() {
		t.Errorf("rounds = %d, solution = %v, Rounds() = %d", rounds, solution, s.Rounds())
	}
	if s.Remaining() != 0 {
		t.Errorf("Remaining = %d after local optimum", s.Remaining())
	}
	// The solution is an independent set ...
	in := map[int]bool{}
	for _, v := range solution {
		in[v] = true
	}
	for v, ns := range searchNeighbors {
		for _, u := range ns {
			if in[v] && in[u] {
				t.Errorf("solution %v contains edge (%d,%d)", solution, v, u)
			}
		}
	}
	// ... and maximal: every unselected vertex has a selected neighbour.
	for v, ns := range searchNeighbors {
		if in[v] {
			continue
		}
		blocked := false
		for _, u := range ns {
			blocked = blocked || in[u]
		}
		if !blocked {
			t.Errorf("solution %v is not maximal: vertex %d is free", solution, v)
		}
	}

	// The Prepared itself never received the updates.
	if n, err := p.AnswerCount(ctx); err != nil || n != 5 {
		t.Errorf("base AnswerCount = %d, %v; want 5", n, err)
	}
}

func TestSearchersAreIndependent(t *testing.T) {
	p := prepareMIS(t)
	ctx := context.Background()

	s1, err := p.Search()
	if err != nil {
		t.Fatalf("Search: %v", err)
	}
	s2, err := p.Search()
	if err != nil {
		t.Fatalf("Search: %v", err)
	}
	if _, err := s1.Run(ctx, misStep); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if s1.Remaining() != 0 {
		t.Errorf("finished searcher has %d improvements left", s1.Remaining())
	}
	// The sibling searcher still sees the pristine solution.
	if s2.Remaining() != 5 {
		t.Errorf("fresh searcher Remaining = %d; want 5", s2.Remaining())
	}
}

func TestSearchErrors(t *testing.T) {
	eng := testEngine(t)
	ctx := context.Background()

	// Expression queries have no answer set to search.
	p, err := eng.Prepare(ctx, edgeSum)
	if err != nil {
		t.Fatalf("Prepare: %v", err)
	}
	if _, err := p.Search(); !errors.Is(err, ErrNotEnumerable) {
		t.Errorf("Search on expression = %v; want ErrNotEnumerable", err)
	}
	// Formula queries without WithDynamic have nothing to update.
	q, err := eng.Prepare(ctx, "E(x,y) & S(x)")
	if err != nil {
		t.Fatalf("Prepare: %v", err)
	}
	if _, err := q.Search(); !errors.Is(err, ErrArgument) {
		t.Errorf("Search without dynamic relations = %v; want ErrArgument", err)
	}

	// Weight changes are rejected by Apply.
	s, err := prepareMIS(t).Search()
	if err != nil {
		t.Fatalf("Search: %v", err)
	}
	if err := s.Apply(Change{Weight: "w", Tuple: []int{0}, Value: 1}); !errors.Is(err, ErrUpdate) {
		t.Errorf("weight change error = %v; want ErrUpdate", err)
	}
	// Non-dynamic relations are rejected by the enumerator.
	if err := s.Apply(Change{Rel: "E", Tuple: []int{0, 4}, Present: true}); !errors.Is(err, ErrUpdate) {
		t.Errorf("static relation change error = %v; want ErrUpdate", err)
	}
}

// TestConcurrentSearchers drives several independent local searches from one
// Prepared at the same time (meaningful under -race): each Searcher owns a
// private clone of the enumeration state, so the searches need no mutual
// synchronisation and the Prepared's shared answer set stays untouched.
func TestConcurrentSearchers(t *testing.T) {
	p := prepareMIS(t)
	ctx := context.Background()
	before, err := p.AnswerCount(ctx)
	if err != nil {
		t.Fatalf("AnswerCount: %v", err)
	}

	const searchers = 6
	solutions := make([][]int, searchers)
	errs := make([]error, searchers)
	var wg sync.WaitGroup
	for i := 0; i < searchers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s, err := p.Search()
			if err != nil {
				errs[i] = err
				return
			}
			_, err = s.Run(ctx, func(ans Answer) []Change {
				solutions[i] = append(solutions[i], ans[0])
				return misStep(ans)
			})
			if err != nil {
				errs[i] = err
				return
			}
			if rem := s.Remaining(); rem != 0 {
				errs[i] = fmt.Errorf("Remaining = %d after local optimum", rem)
			}
		}(i)
	}
	wg.Wait()

	for i, err := range errs {
		if err != nil {
			t.Fatalf("searcher %d: %v", i, err)
		}
	}
	for i, sol := range solutions {
		in := map[int]bool{}
		for _, v := range sol {
			in[v] = true
		}
		for _, v := range sol {
			for _, u := range searchNeighbors[v] {
				if in[u] {
					t.Errorf("searcher %d: solution %v is not independent (%d–%d)", i, sol, v, u)
				}
			}
		}
		for v := 0; v < 5; v++ {
			if in[v] {
				continue
			}
			blocked := false
			for _, u := range searchNeighbors[v] {
				if in[u] {
					blocked = true
				}
			}
			if !blocked {
				t.Errorf("searcher %d: solution %v is not maximal (vertex %d addable)", i, sol, v)
			}
		}
	}
	// The shared Prepared never changed.
	if after, _ := p.AnswerCount(ctx); after != before {
		t.Errorf("shared answer count changed: %d -> %d", before, after)
	}
}
