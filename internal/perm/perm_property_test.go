package perm

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/semiring"
)

// randomMatrixFromInts builds a k×n matrix over ℕ from a flat list of raw
// values, used by testing/quick properties.
func matrixFromRaw(raw []uint8, rows int) *Matrix[int64] {
	cols := len(raw) / rows
	if cols == 0 {
		cols = 1
	}
	m := NewMatrix[int64](semiring.Nat, rows, cols)
	for i, v := range raw {
		r, c := i/cols, i%cols
		if r >= rows {
			break
		}
		m.Set(r, c, int64(v%7))
	}
	return m
}

func TestPermQuickAgainstNaive(t *testing.T) {
	for _, rows := range []int{1, 2, 3} {
		rows := rows
		prop := func(raw []uint8) bool {
			if len(raw) < rows {
				return true
			}
			m := matrixFromRaw(raw, rows)
			if m.Cols > 9 {
				return true // keep the naive reference cheap
			}
			return Perm[int64](semiring.Nat, m) == PermNaive[int64](semiring.Nat, m)
		}
		if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
			t.Errorf("rows=%d: %v", rows, err)
		}
	}
}

func TestPermInvariantUnderColumnPermutation(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	for round := 0; round < 80; round++ {
		rows := r.Intn(3) + 1
		cols := r.Intn(6) + rows
		m := NewMatrix[int64](semiring.Nat, rows, cols)
		for i := 0; i < rows; i++ {
			for j := 0; j < cols; j++ {
				m.Set(i, j, int64(r.Intn(6)))
			}
		}
		perm := r.Perm(cols)
		shuffled := NewMatrix[int64](semiring.Nat, rows, cols)
		for i := 0; i < rows; i++ {
			for j := 0; j < cols; j++ {
				shuffled.Set(i, perm[j], m.At(i, j))
			}
		}
		if Perm[int64](semiring.Nat, m) != Perm[int64](semiring.Nat, shuffled) {
			t.Fatalf("round %d: permanent changed under column permutation", round)
		}
	}
}

func TestPermInvariantUnderRowPermutation(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for round := 0; round < 80; round++ {
		rows := r.Intn(3) + 1
		cols := r.Intn(6) + rows
		m := NewMatrix[int64](semiring.Nat, rows, cols)
		for i := 0; i < rows; i++ {
			for j := 0; j < cols; j++ {
				m.Set(i, j, int64(r.Intn(6)))
			}
		}
		perm := r.Perm(rows)
		shuffled := NewMatrix[int64](semiring.Nat, rows, cols)
		for i := 0; i < rows; i++ {
			for j := 0; j < cols; j++ {
				shuffled.Set(perm[i], j, m.At(i, j))
			}
		}
		if Perm[int64](semiring.Nat, m) != Perm[int64](semiring.Nat, shuffled) {
			t.Fatalf("round %d: permanent changed under row permutation", round)
		}
	}
}

// TestPermExpansionIdentity checks the column split identity of Lemma 10:
// grouping the injections by how many rows map into the first l columns.
// The lemma is stated for the ordered variant perm'; summed over all row
// orderings it yields the block identity below for 2×n matrices:
//
//	perm(M) = perm(A)·perm(D) + perm(B)·perm(C) + cross terms,
//
// which we verify here in the simplest non-trivial form: a 2×n matrix split
// into its first l and last n−l columns satisfies
//
//	perm(M) = Σ_{i+j=2} perm'(rows→first part choosing i) ...
//
// Rather than re-deriving the combinatorics we check the special case used
// by the implementation: the divide-and-conquer dynamic maintainer must
// agree with the direct evaluation after every single-entry update.
func TestPermExpansionIdentity(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for round := 0; round < 40; round++ {
		rows := r.Intn(3) + 1
		cols := r.Intn(10) + rows
		m := NewMatrix[int64](semiring.Nat, rows, cols)
		for i := 0; i < rows; i++ {
			for j := 0; j < cols; j++ {
				m.Set(i, j, int64(r.Intn(5)))
			}
		}
		d := NewDynamic[int64](semiring.Nat, m.Clone())
		for step := 0; step < 12; step++ {
			i, j, v := r.Intn(rows), r.Intn(cols), int64(r.Intn(5))
			m.Set(i, j, v)
			d.Update(i, j, v)
			if d.Value() != Perm[int64](semiring.Nat, m) {
				t.Fatalf("round %d step %d: dynamic value %d differs from direct %d",
					round, step, d.Value(), Perm[int64](semiring.Nat, m))
			}
		}
	}
}

func TestPermMultilinearityInOneColumn(t *testing.T) {
	// On square matrices every injection uses every column, so the permanent
	// is additive in each single column: splitting a column as c = c1 + c2
	// splits the permanent accordingly.  (On rectangular matrices the
	// identity fails because injections that skip the column are counted in
	// both halves.)
	r := rand.New(rand.NewSource(12))
	for round := 0; round < 60; round++ {
		rows := r.Intn(3) + 1
		cols := rows
		base := NewMatrix[int64](semiring.Nat, rows, cols)
		for i := 0; i < rows; i++ {
			for j := 0; j < cols; j++ {
				base.Set(i, j, int64(r.Intn(6)))
			}
		}
		target := r.Intn(cols)
		m1 := base.Clone()
		m2 := base.Clone()
		for i := 0; i < rows; i++ {
			split := int64(r.Intn(int(base.At(i, target)) + 1))
			m1.Set(i, target, split)
			m2.Set(i, target, base.At(i, target)-split)
		}
		sum := Perm[int64](semiring.Nat, m1) + Perm[int64](semiring.Nat, m2)
		if got := Perm[int64](semiring.Nat, base); got != sum {
			t.Fatalf("round %d: perm(base)=%d but perm(m1)+perm(m2)=%d", round, got, sum)
		}
	}
}

func TestMaintainersAgreeOnRandomUpdateSequences(t *testing.T) {
	// The generic, ring and finite maintainers must agree with each other
	// (on a common finite carrier) after arbitrary update sequences.
	r := rand.New(rand.NewSource(5))
	mod := semiring.NewModular(5)
	for round := 0; round < 25; round++ {
		rows := r.Intn(2) + 2
		cols := r.Intn(8) + rows
		m := NewMatrix[int64](mod, rows, cols)
		for i := 0; i < rows; i++ {
			for j := 0; j < cols; j++ {
				m.Set(i, j, int64(r.Intn(5)))
			}
		}
		generic := NewDynamic[int64](mod, m.Clone())
		ring := NewRingDynamic[int64](mod, m.Clone())
		finite := NewFiniteDynamic[int64](mod, m.Clone())
		for step := 0; step < 15; step++ {
			i, j, v := r.Intn(rows), r.Intn(cols), int64(r.Intn(5))
			generic.Update(i, j, v)
			ring.Update(i, j, v)
			finite.Update(i, j, v)
			g, rr, f := generic.Value(), ring.Value(), finite.Value()
			if !mod.Equal(g, rr) || !mod.Equal(g, f) {
				t.Fatalf("round %d step %d: maintainers disagree: generic=%d ring=%d finite=%d",
					round, step, g, rr, f)
			}
		}
	}
}
