package server

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/agg"
)

// ---------------------------------------------------------------------------
// GET /subscribe
// ---------------------------------------------------------------------------

// subscribeEvent is the wire shape of one pushed update, shared by the SSE
// data field and the NDJSON line format.
type subscribeEvent struct {
	Epoch uint64 `json:"epoch"`
	Kind  string `json:"kind"`
	Value string `json:"value,omitempty"`
	Count int64  `json:"count,omitempty"`
	// Reset marks a delta update carrying the complete answer set in
	// Answers (the first delivery, and any re-sync after a stale resume).
	Reset   bool    `json:"reset,omitempty"`
	Answers [][]int `json:"answers,omitempty"`
	Added   [][]int `json:"added,omitempty"`
	Removed [][]int `json:"removed,omitempty"`
	// Coalesced counts re-evaluations folded into this update because the
	// client lagged; 0 means it kept up with the write stream.
	Coalesced uint64 `json:"coalesced,omitempty"`
}

// subscribeDone is the terminal NDJSON line / SSE "done" event written when
// a limit-bounded subscription completes.
type subscribeDone struct {
	Done     bool   `json:"done"`
	Streamed int    `json:"streamed"`
	Epoch    uint64 `json:"epoch"`
}

func answerTuples(as []agg.Answer) [][]int {
	if len(as) == 0 {
		return nil
	}
	out := make([][]int, len(as))
	for i, a := range as {
		out[i] = a
	}
	return out
}

// handleSubscribe serves GET /subscribe: a live push stream of re-evaluated
// results for one session, as Server-Sent Events or NDJSON.
//
// Query parameters:
//
//	session    target session name (required)
//	kind       value | point | count | delta (default value)
//	args       comma-separated point arguments (kind=point)
//	from       resume epoch: the last epoch the client has seen; the
//	           Last-Event-ID header (SSE auto-reconnect) takes precedence
//	mode       sse | ndjson (default by Accept: text/event-stream → sse)
//	heartbeat  keep-alive interval (Go duration, default 15s, min 100ms)
//	limit      close the stream after this many updates (0 = unbounded)
//
// Every committed batch or point write re-evaluates the subscribed quantity
// once per distinct key and pushes it; slow clients coalesce (latest epoch
// wins) and never stall the session's writers.  Client disconnect cancels
// the subscription server-side (counted in the canceled stat).
func (s *Server) handleSubscribe(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	h, err := s.Session(q.Get("session"))
	if err != nil {
		s.writeError(w, err)
		return
	}

	kind := q.Get("kind")
	if kind == "" {
		kind = "value"
	}
	var opts []agg.SubscribeOption
	switch kind {
	case "value":
	case "point":
		args, err := parseArgs(q.Get("args"))
		if err != nil {
			s.writeError(w, err)
			return
		}
		opts = append(opts, agg.SubscribePoint(args...))
	case "count":
		opts = append(opts, agg.SubscribeCount())
	case "delta":
		opts = append(opts, agg.SubscribeDelta())
	default:
		s.writeError(w, fmt.Errorf("unknown kind %q (value, point, count, delta): %w", kind, agg.ErrArgument))
		return
	}
	if raw := firstNonEmpty(r.Header.Get("Last-Event-ID"), q.Get("from")); raw != "" {
		from, err := strconv.ParseUint(raw, 10, 64)
		if err != nil {
			s.writeError(w, fmt.Errorf("invalid resume epoch %q: %w", raw, agg.ErrArgument))
			return
		}
		opts = append(opts, agg.SubscribeFrom(from))
	}
	heartbeat := 15 * time.Second
	if raw := q.Get("heartbeat"); raw != "" {
		d, err := time.ParseDuration(raw)
		if err != nil {
			s.writeError(w, fmt.Errorf("invalid heartbeat %q: %w", raw, agg.ErrArgument))
			return
		}
		if d < 100*time.Millisecond {
			d = 100 * time.Millisecond
		}
		heartbeat = d
	}
	limit := 0
	if raw := q.Get("limit"); raw != "" {
		n, err := strconv.Atoi(raw)
		if err != nil {
			s.writeError(w, fmt.Errorf("invalid limit %q: %w", raw, agg.ErrArgument))
			return
		}
		limit = n
	}
	sse := false
	switch mode := q.Get("mode"); mode {
	case "sse":
		sse = true
	case "", "ndjson":
		sse = mode == "" && strings.Contains(r.Header.Get("Accept"), "text/event-stream")
	default:
		s.writeError(w, fmt.Errorf("unknown mode %q (sse, ndjson): %w", mode, agg.ErrArgument))
		return
	}

	// Validate the subscription before committing a 200: probing with an
	// already-canceled context surfaces argument errors synchronously (the
	// facade validates before its first wait) and otherwise fails with
	// context.Canceled, so real streams still start from the loop below.
	probeCtx, cancelProbe := context.WithCancel(context.Background())
	cancelProbe()
	for _, perr := range h.Subscribe(probeCtx, opts...) {
		if perr != nil && !errors.Is(perr, context.Canceled) {
			s.writeError(w, perr)
			return
		}
		break
	}

	if sse {
		w.Header().Set("Content-Type", "text/event-stream")
	} else {
		w.Header().Set("Content-Type", "application/x-ndjson")
	}
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	flush := func() {
		if flusher != nil {
			flusher.Flush()
		}
	}
	flush()

	s.stats.Subscriptions.Add(1)
	s.stats.Subscribers.Add(1)
	defer s.stats.Subscribers.Add(-1)
	annotate(r, slog.String("session", h.Name()), slog.String("kind", kind))

	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	writeEvent := func(event string, v any) error {
		if sse {
			if ev, ok := v.(subscribeEvent); ok {
				if _, err := fmt.Fprintf(w, "id: %d\n", ev.Epoch); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "event: %s\ndata: ", event); err != nil {
				return err
			}
		}
		if err := enc.Encode(v); err != nil {
			return err
		}
		if sse {
			if _, err := fmt.Fprint(w, "\n"); err != nil {
				return err
			}
		}
		flush()
		return nil
	}

	// The facade iterator runs in its own goroutine; the handler selects
	// over its updates and the heartbeat so a silent stream still proves the
	// connection is alive.
	type item struct {
		u   agg.Update
		err error
	}
	ctx := r.Context()
	ch := make(chan item, 1)
	go func() {
		defer close(ch)
		for u, err := range h.Subscribe(ctx, opts...) {
			select {
			case ch <- item{u, err}:
			case <-ctx.Done():
				return
			}
			if err != nil {
				return
			}
		}
	}()

	ticker := time.NewTicker(heartbeat)
	defer ticker.Stop()
	streamed := 0
	lastEpoch := uint64(0)
	for {
		select {
		case <-ctx.Done():
			s.stats.Canceled.Add(1)
			return
		case <-ticker.C:
			var err error
			if sse {
				_, err = fmt.Fprint(w, ": hb\n\n")
				flush()
			} else {
				err = writeEvent("", map[string]bool{"heartbeat": true})
			}
			if err != nil {
				s.stats.Canceled.Add(1)
				return
			}
		case it, ok := <-ch:
			if !ok {
				return
			}
			if it.err != nil {
				if s.canceled(it.err) {
					return
				}
				s.stats.Errors.Add(1)
				_ = writeEvent("error", errorBody{Error: it.err.Error(), Code: agg.ErrorCode(it.err)})
				return
			}
			u := it.u
			ev := subscribeEvent{
				Epoch:     u.Epoch,
				Kind:      u.Kind,
				Value:     u.Value.String(),
				Count:     u.Count,
				Reset:     u.Reset,
				Answers:   answerTuples(u.Answers),
				Added:     answerTuples(u.Added),
				Removed:   answerTuples(u.Removed),
				Coalesced: u.Coalesced,
			}
			if err := writeEvent("update", ev); err != nil {
				s.stats.Canceled.Add(1)
				return
			}
			s.stats.Pushes.Add(1)
			s.stats.PushCoalesced.Add(int64(u.Coalesced))
			if u.Lag > 0 {
				s.pushHist.Observe(u.Lag)
			}
			streamed++
			lastEpoch = u.Epoch
			if limit > 0 && streamed >= limit {
				_ = writeEvent("done", subscribeDone{Done: true, Streamed: streamed, Epoch: lastEpoch})
				annotate(r, slog.Int("streamed", streamed))
				return
			}
		}
	}
}

// ---------------------------------------------------------------------------
// POST /ingest
// ---------------------------------------------------------------------------

// ingestAck is one NDJSON line of the /ingest response: a periodic epoch
// acknowledgement while the change stream applies, then a final summary
// with Done set (or an Error if the stream failed mid-way).
type ingestAck struct {
	Applied int64  `json:"applied"`
	Waves   int64  `json:"waves,omitempty"`
	Epoch   uint64 `json:"epoch"`
	Done    bool   `json:"done,omitempty"`
	Error   string `json:"error,omitempty"`
	Code    string `json:"code,omitempty"`
	AtLine  int64  `json:"atLine,omitempty"`
}

// handleIngest serves POST /ingest?session=S[&wave=N][&ack=K]: a CDC-style
// bulk loader that streams NDJSON tuple/weight changes (the /update line
// format) into a session.  Lines are coalesced into atomic ApplyBatch waves
// of up to `wave` changes (default 512), so gates shared by several changes
// are recomputed once per wave instead of once per change; every `ack`-th
// wave (default every wave) the response streams an epoch acknowledgement
// the client can use as a CDC checkpoint.
//
// A malformed line or rejected wave stops the ingest at that point: applied
// waves stay committed (each wave is all-or-nothing, the stream is not), and
// the terminal line reports the failing line number.
func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	h, err := s.Session(q.Get("session"))
	if err != nil {
		s.writeError(w, err)
		return
	}
	wave := 512
	if raw := q.Get("wave"); raw != "" {
		n, err := strconv.Atoi(raw)
		if err != nil || n < 1 {
			s.writeError(w, fmt.Errorf("invalid wave size %q: %w", raw, agg.ErrArgument))
			return
		}
		if n > 1<<16 {
			n = 1 << 16
		}
		wave = n
	}
	ackEvery := 1
	if raw := q.Get("ack"); raw != "" {
		n, err := strconv.Atoi(raw)
		if err != nil || n < 1 {
			s.writeError(w, fmt.Errorf("invalid ack interval %q: %w", raw, agg.ErrArgument))
			return
		}
		ackEvery = n
	}
	annotate(r, slog.String("session", h.Name()))

	// Acks interleave with reading the change stream, so the connection must
	// be full-duplex: without this, writing the response makes the HTTP/1
	// server stop reading the request body.
	_ = http.NewResponseController(w).EnableFullDuplex()

	w.Header().Set("Content-Type", "application/x-ndjson")
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	flusher, _ := w.(http.Flusher)

	var applied, waves, line int64
	fail := func(err error) {
		if s.canceled(err) {
			return
		}
		s.stats.Errors.Add(1)
		_ = enc.Encode(ingestAck{
			Applied: applied, Waves: waves, Epoch: h.Epoch(),
			Error: err.Error(), Code: agg.ErrorCode(err), AtLine: line,
		})
	}

	changes := make([]agg.Change, 0, wave)
	commit := func() error {
		if len(changes) == 0 {
			return nil
		}
		if err := h.ApplyBatch(changes); err != nil {
			return err
		}
		applied += int64(len(changes))
		waves++
		s.stats.IngestedChanges.Add(int64(len(changes)))
		s.stats.IngestWaves.Add(1)
		changes = changes[:0]
		if waves%int64(ackEvery) == 0 {
			if err := enc.Encode(ingestAck{Applied: applied, Waves: waves, Epoch: h.Epoch()}); err != nil {
				return fmt.Errorf("writing ack: %w", err)
			}
			if flusher != nil {
				flusher.Flush()
			}
		}
		return nil
	}

	sc := bufio.NewScanner(r.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line++
		raw := strings.TrimSpace(sc.Text())
		if raw == "" {
			continue
		}
		var spec updateSpec
		if err := json.Unmarshal([]byte(raw), &spec); err != nil {
			fail(fmt.Errorf("line %d: %w: %v", line, agg.ErrArgument, err))
			return
		}
		changes = append(changes, spec.change())
		if len(changes) >= wave {
			if err := commit(); err != nil {
				fail(err)
				return
			}
		}
	}
	if err := sc.Err(); err != nil {
		// A torn body usually means the client went away mid-stream.
		if r.Context().Err() != nil {
			s.stats.Canceled.Add(1)
			return
		}
		fail(fmt.Errorf("reading change stream: %w: %v", agg.ErrArgument, err))
		return
	}
	if err := commit(); err != nil {
		fail(err)
		return
	}
	s.stats.Ingests.Add(1)
	annotate(r, slog.Int64("applied", applied), slog.Int64("waves", waves))
	_ = enc.Encode(ingestAck{Applied: applied, Waves: waves, Epoch: h.Epoch(), Done: true})
}

func parseArgs(raw string) ([]int, error) {
	if strings.TrimSpace(raw) == "" {
		return nil, nil
	}
	parts := strings.Split(raw, ",")
	out := make([]int, len(parts))
	for i, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("invalid args %q: %w", raw, agg.ErrArgument)
		}
		out[i] = v
	}
	return out, nil
}

func firstNonEmpty(a, b string) string {
	if a != "" {
		return a
	}
	return b
}
