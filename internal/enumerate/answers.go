package enumerate

import (
	"context"
	"fmt"
	"strconv"
	"strings"

	"repro/internal/circuit"
	"repro/internal/compile"
	"repro/internal/expr"
	"repro/internal/logic"
	"repro/internal/provenance"
	"repro/internal/semiring"
	"repro/internal/structure"
)

// answerWeightPrefix names the fresh unary weight symbols carrying the
// answer-tuple generators e^i_a (Section 6 of the paper).
const answerWeightPrefix = ".en:"

// Answers is the dynamic constant-delay enumerator for the answer set of a
// first-order query ϕ(x̄) on a sparse database (Theorem 24): linear-time
// preprocessing, constant delay between answers, and constant-time
// Gaifman-preserving updates to the dynamic relations.
type Answers struct {
	enum *Enumerator
	res  *compile.Result
	vars []string
	// relState tracks membership of dynamic relation tuples after updates.
	relState map[string]map[string]bool
}

// EnumerateAnswers preprocesses the query ϕ over the structure a.  The
// answer tuples are over the variables vars (each answer assigns an element
// to each variable, in order).  Relations listed in opts.DynamicRelations
// may later be updated through SetTuple, provided the updates preserve the
// Gaifman graph.
func EnumerateAnswers(a *structure.Structure, phi logic.Formula, vars []string, opts compile.Options) (*Answers, error) {
	return enumerateAnswers(nil, a, phi, vars, opts, 1)
}

// EnumerateAnswersParallel preprocesses like EnumerateAnswers but computes
// the initial per-gate emptiness with the level-parallel circuit engine
// (NewParallel) on workers goroutines, reusing the schedule precomputed by
// the compiler; workers ≤ 0 selects GOMAXPROCS and workers == 1 falls back
// to the sequential pass.
func EnumerateAnswersParallel(a *structure.Structure, phi logic.Formula, vars []string, opts compile.Options, workers int) (*Answers, error) {
	return enumerateAnswers(nil, a, phi, vars, opts, workers)
}

// EnumerateAnswersCtx preprocesses like EnumerateAnswersParallel but honours
// cancellation: the context is checked between preprocessing stages and
// inside the level-parallel emptiness wave, so a cancelled preprocessing run
// stops in bounded time and returns the context's error.
func EnumerateAnswersCtx(ctx context.Context, a *structure.Structure, phi logic.Formula, vars []string, opts compile.Options, workers int) (*Answers, error) {
	return enumerateAnswers(ctx, a, phi, vars, opts, workers)
}

func enumerateAnswers(ctx context.Context, a *structure.Structure, phi logic.Formula, vars []string, opts compile.Options, workers int) (*Answers, error) {
	for _, v := range logic.FreeVars(phi) {
		found := false
		for _, u := range vars {
			if u == v {
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("enumerate: formula has free variable %q not listed in the answer variables %v", v, vars)
		}
	}
	// Extend the signature with one unary weight symbol per answer variable.
	extra := make([]structure.WeightSymbol, len(vars))
	for i := range vars {
		extra[i] = structure.WeightSymbol{Name: answerWeight(i), Arity: 1}
	}
	sig, err := a.Sig.WithWeights(extra...)
	if err != nil {
		return nil, fmt.Errorf("enumerate: extending signature: %w", err)
	}
	base := structure.NewStructure(sig, a.N)
	for _, r := range a.Sig.Relations {
		for _, t := range a.Tuples(r.Name) {
			base.MustAddTuple(r.Name, t...)
		}
	}
	// f = Σ_x̄ [ϕ(x̄)] · w_1(x_1) ··· w_k(x_k)  (equation (4) of the paper).
	factors := []expr.Expr{expr.Guard(phi)}
	for i, v := range vars {
		factors = append(factors, expr.W(answerWeight(i), v))
	}
	f := expr.Expr(expr.Times(factors...))
	if len(vars) > 0 {
		f = expr.Agg(vars, expr.Times(factors...))
	}
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	}
	res, err := compile.Compile(base, f, opts)
	if err != nil {
		return nil, err
	}
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	}
	ans := &Answers{res: res, vars: vars, relState: map[string]map[string]bool{}}
	for rel := range res.DynamicRelations {
		state := map[string]bool{}
		for _, t := range res.Structure.Tuples(rel) {
			state[t.Key()] = true
		}
		ans.relState[rel] = state
	}
	if ctx != nil {
		enum, err := NewProgramParallelCtx(ctx, res.Program, ans.inputValue, workers)
		if err != nil {
			return nil, err
		}
		ans.enum = enum
	} else if workers == 1 {
		ans.enum = NewProgram(res.Program, ans.inputValue)
	} else {
		ans.enum = NewProgramParallel(res.Program, ans.inputValue, workers)
	}
	return ans, nil
}

func answerWeight(i int) string { return answerWeightPrefix + strconv.Itoa(i) }

// inputValue supplies the initial value of every circuit input: answer
// generators for the fresh unary weights, 0/1 for dynamic relation
// memberships, zero otherwise.
func (ans *Answers) inputValue(key structure.WeightKey) Value {
	if rel, tuple, positive, ok := compile.DecodeRelationKey(key); ok {
		holds := ans.res.Structure.HasTuple(rel, tuple...)
		return Bool(holds == positive)
	}
	if strings.HasPrefix(key.Weight, answerWeightPrefix) {
		idx, err := strconv.Atoi(key.Weight[len(answerWeightPrefix):])
		if err != nil {
			return Zero()
		}
		t := structure.ParseTupleKey(key.Tuple)
		if len(t) != 1 {
			return Zero()
		}
		return Gen(answerGenerator(idx, t[0]))
	}
	return Zero()
}

func answerGenerator(varIdx int, elem structure.Element) provenance.Generator {
	return provenance.Generator(fmt.Sprintf("%d|%d", varIdx, elem))
}

func decodeGenerator(g provenance.Generator) (varIdx int, elem structure.Element, err error) {
	parts := strings.SplitN(string(g), "|", 2)
	if len(parts) != 2 {
		return 0, 0, fmt.Errorf("enumerate: malformed answer generator %q", g)
	}
	varIdx, err = strconv.Atoi(parts[0])
	if err != nil {
		return 0, 0, err
	}
	elem, err = strconv.Atoi(parts[1])
	return varIdx, elem, err
}

// Clone returns an independent enumerator over the same compilation and the
// same current dynamic state.  The frozen circuit program and its CSR arrays
// are shared; the per-gate enumeration state is rebuilt from the clone's own
// input view with one linear preprocessing pass, after which updates to the
// clone and to the original are fully isolated from each other.  Cloning is
// how several local searches (or speculative update sequences) run
// concurrently from one paid preprocessing.
func (ans *Answers) Clone() *Answers {
	c := &Answers{res: ans.res, vars: ans.vars, relState: make(map[string]map[string]bool, len(ans.relState))}
	for rel, state := range ans.relState {
		s := make(map[string]bool, len(state))
		for k, v := range state {
			s[k] = v
		}
		c.relState[rel] = s
	}
	c.enum = NewProgram(c.res.Program, c.inputCurrent)
	return c
}

// Variables returns the answer variables in output order.
func (ans *Answers) Variables() []string { return append([]string(nil), ans.vars...) }

// Result exposes the underlying compilation result.
func (ans *Answers) Result() *compile.Result { return ans.res }

// Empty reports whether the query currently has no answers.
func (ans *Answers) Empty() bool { return ans.enum.Empty() }

// TupleCursor enumerates answer tuples with constant delay.
type TupleCursor struct {
	ans   *Answers
	inner Cursor
}

// Cursor returns a fresh cursor over the current answer set.  Cursors are
// invalidated by updates; create a new one after SetTuple.
func (ans *Answers) Cursor() *TupleCursor {
	return &TupleCursor{ans: ans, inner: ans.enum.Cursor()}
}

// Next returns the next answer tuple, or ok=false when the enumeration is
// complete.
func (c *TupleCursor) Next() (structure.Tuple, bool) {
	m, ok := c.inner.Next()
	if !ok {
		return nil, false
	}
	tuple := make(structure.Tuple, len(c.ans.vars))
	for i := range tuple {
		tuple[i] = -1
	}
	for _, g := range m {
		idx, elem, err := decodeGenerator(g)
		if err != nil || idx < 0 || idx >= len(tuple) {
			continue
		}
		tuple[idx] = elem
	}
	return tuple, true
}

// Collect drains a fresh cursor into a slice of answers (limit ≤ 0 means no
// limit); intended for tests and examples.
func (ans *Answers) Collect(limit int) []structure.Tuple {
	var out []structure.Tuple
	cur := ans.Cursor()
	for {
		t, ok := cur.Next()
		if !ok {
			return out
		}
		out = append(out, t)
		if limit > 0 && len(out) >= limit {
			return out
		}
	}
}

// Count returns the current number of answers by evaluating the circuit in
// ℕ under the homomorphism sending every generator to 1 (without
// enumerating them); useful for sanity checks and benchmarks.
func (ans *Answers) Count() int64 {
	val := func(key structure.WeightKey) (int64, bool) {
		v := ans.inputCurrent(key)
		if v == nil || v.Empty() {
			return 0, false
		}
		return 1, true
	}
	return circuit.EvaluateProgram[int64](ans.res.Program, semiring.Nat, val)
}

// inputCurrent returns the current value of an input, reflecting dynamic
// updates applied so far.
func (ans *Answers) inputCurrent(key structure.WeightKey) Value {
	if rel, tuple, positive, ok := compile.DecodeRelationKey(key); ok {
		if state, tracked := ans.relState[rel]; tracked {
			return Bool(state[tuple.Key()] == positive)
		}
		return Bool(ans.res.Structure.HasTuple(rel, tuple...) == positive)
	}
	return ans.inputValue(key)
}

// validateTuple checks a dynamic-relation update: the relation must be
// declared dynamic, the tuple must match its arity and insertions must
// preserve the Gaifman graph of the preprocessed structure.
func (ans *Answers) validateTuple(rel string, tuple structure.Tuple, present bool) error {
	if !ans.res.DynamicRelations[rel] {
		return fmt.Errorf("relation %q was not declared dynamic at preprocessing time", rel)
	}
	decl, _ := ans.res.Structure.Sig.Relation(rel)
	if decl.Arity != len(tuple) {
		return fmt.Errorf("relation %q has arity %d, got tuple of length %d", rel, decl.Arity, len(tuple))
	}
	if present {
		g := ans.res.Structure.Gaifman()
		for i := 0; i < len(tuple); i++ {
			for j := i + 1; j < len(tuple); j++ {
				if tuple[i] != tuple[j] && !g.HasEdge(tuple[i], tuple[j]) {
					return fmt.Errorf("inserting %s%v would change the Gaifman graph; only Gaifman-preserving updates are supported (Theorem 24)", rel, tuple)
				}
			}
		}
	}
	return nil
}

// SetTuple inserts or removes a tuple of a dynamic relation, maintaining the
// enumeration data structure in constant time.  Insertions must preserve the
// Gaifman graph of the preprocessed structure.  Both membership inputs flip
// within a single committed epoch, so a snapshot can never observe the tuple
// half-toggled.
func (ans *Answers) SetTuple(rel string, tuple structure.Tuple, present bool) error {
	if err := ans.validateTuple(rel, tuple, present); err != nil {
		return fmt.Errorf("enumerate: %w", err)
	}
	ans.relState[rel][tuple.Key()] = present
	pos, neg := compile.RelationInputKeys(rel, tuple)
	e := ans.enum
	e.mu.Lock()
	defer e.mu.Unlock()
	s1, f1 := e.assign(pos, Bool(present))
	s2, f2 := e.assign(neg, Bool(!present))
	if f1 || f2 {
		e.runWave()
	}
	if s1 || s2 {
		e.log.Commit()
	}
	return nil
}

// TupleChange is one dynamic-relation update of an ApplyBatch batch:
// membership of Tuple in Rel becomes Present.
type TupleChange struct {
	Rel     string
	Tuple   structure.Tuple
	Present bool
}

// ApplyBatch applies several dynamic-relation updates atomically: every
// change is validated up front (the batch is all-or-nothing) and the
// enumeration data structure is refreshed with a single propagation wave, so
// gates shared by several changes are revisited once per batch.  Repeated
// changes to the same tuple coalesce with the last one winning.  As with
// SetTuple, cursors drawn before the batch are invalidated.
func (ans *Answers) ApplyBatch(changes []TupleChange) error {
	for i, ch := range changes {
		if err := ans.validateTuple(ch.Rel, ch.Tuple, ch.Present); err != nil {
			return fmt.Errorf("enumerate: batch change %d: %w", i, err)
		}
	}
	// Feed the enumerator's input slots directly and run one coalesced wave
	// at the end, instead of materialising an InputAssignment slice: local
	// search commits many tiny batches, where the slice traffic would cost
	// more than the coalescing saves.  The whole batch commits one epoch.
	e := ans.enum
	e.mu.Lock()
	defer e.mu.Unlock()
	stored, flipped := false, false
	for _, ch := range changes {
		ans.relState[ch.Rel][ch.Tuple.Key()] = ch.Present
		pos, neg := compile.RelationInputKeys(ch.Rel, ch.Tuple)
		s1, f1 := e.assign(pos, Bool(ch.Present))
		s2, f2 := e.assign(neg, Bool(!ch.Present))
		stored = stored || s1 || s2
		flipped = flipped || f1 || f2
	}
	if flipped {
		e.runWave()
	}
	if stored {
		e.log.Commit()
	}
	return nil
}

// HasTuple reports current membership in a dynamic relation.
func (ans *Answers) HasTuple(rel string, tuple structure.Tuple) bool {
	if state, ok := ans.relState[rel]; ok {
		return state[tuple.Key()]
	}
	return ans.res.Structure.HasTuple(rel, tuple...)
}
