package fleet

import (
	"fmt"
	"net"
	"net/http"
	"sync"
	"time"

	"repro/internal/server"
)

// LocalOptions configures an in-process fleet.
type LocalOptions struct {
	// Server configures every replica (cache size, workers, logger, ...).
	Server server.Options
	// Configure, when set, runs once per replica after construction —
	// typically to mount databases.  Replicas share nothing, so each one
	// must mount its own copy.
	Configure func(i int, s *server.Server)
	// Router tunes the router; Replicas is filled in by StartLocal.
	Router Options
}

// localReplica is one in-process aggserve replica: a server plus the HTTP
// listener in front of it.  The listener can be killed and restarted on the
// same address to exercise mark-down, re-route and recovery without losing
// the replica's sessions and cache.
type localReplica struct {
	srv  *server.Server
	addr string

	mu   sync.Mutex
	http *http.Server
	ln   net.Listener
}

// LocalFleet is an in-process fleet: n aggserve replicas behind one router,
// all inside the calling test binary so the whole data path — ring lookup,
// proxy hop, health probes, fan-out merges — runs under the race detector.
type LocalFleet struct {
	Router *Router

	routerHTTP *http.Server
	routerLn   net.Listener
	replicas   []*localReplica
}

// StartLocal builds n replicas and a router on loopback listeners.
// Close the fleet when done.
func StartLocal(n int, o LocalOptions) (*LocalFleet, error) {
	if n <= 0 {
		return nil, fmt.Errorf("fleet: StartLocal needs n > 0 replicas")
	}
	f := &LocalFleet{}
	urls := make([]string, n)
	for i := 0; i < n; i++ {
		srv := server.New(o.Server)
		if o.Configure != nil {
			o.Configure(i, srv)
		}
		rep := &localReplica{srv: srv}
		if err := rep.listen("127.0.0.1:0"); err != nil {
			f.Close()
			return nil, err
		}
		f.replicas = append(f.replicas, rep)
		urls[i] = "http://" + rep.addr
	}

	ro := o.Router
	ro.Replicas = urls
	rt, err := New(ro)
	if err != nil {
		f.Close()
		return nil, err
	}
	f.Router = rt

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		f.Close()
		return nil, err
	}
	f.routerLn = ln
	f.routerHTTP = &http.Server{
		Handler:           rt.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		IdleTimeout:       60 * time.Second,
	}
	go func() { _ = f.routerHTTP.Serve(ln) }()
	return f, nil
}

// listen (re)binds the replica's HTTP listener on addr and starts serving.
func (rep *localReplica) listen(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	hs := &http.Server{
		Handler:           rep.srv.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		IdleTimeout:       60 * time.Second,
	}
	rep.mu.Lock()
	rep.addr = ln.Addr().String()
	rep.ln = ln
	rep.http = hs
	rep.mu.Unlock()
	go func() { _ = hs.Serve(ln) }()
	return nil
}

// URL returns the router's base URL — the fleet's single client-facing
// address.
func (f *LocalFleet) URL() string { return "http://" + f.routerLn.Addr().String() }

// ReplicaURL returns replica i's direct base URL (bypassing the router).
func (f *LocalFleet) ReplicaURL(i int) string { return "http://" + f.replicas[i].addr }

// Replica returns replica i's server, e.g. to read its counters.
func (f *LocalFleet) Replica(i int) *server.Server { return f.replicas[i].srv }

// KillReplica closes replica i's listener, severing it from the fleet; its
// server state (sessions, compiled cache) survives for RestartReplica.
func (f *LocalFleet) KillReplica(i int) {
	rep := f.replicas[i]
	rep.mu.Lock()
	hs := rep.http
	rep.http = nil
	rep.mu.Unlock()
	if hs != nil {
		_ = hs.Close()
	}
}

// RestartReplica re-binds replica i on its original address, so the router
// (which identifies replicas by URL) sees it recover.
func (f *LocalFleet) RestartReplica(i int) error {
	rep := f.replicas[i]
	rep.mu.Lock()
	running := rep.http != nil
	addr := rep.addr
	rep.mu.Unlock()
	if running {
		return nil
	}
	return rep.listen(addr)
}

// Close tears the fleet down: router first (stopping probes), then every
// replica listener.
func (f *LocalFleet) Close() {
	if f.Router != nil {
		f.Router.Close()
	}
	if f.routerHTTP != nil {
		_ = f.routerHTTP.Close()
	}
	for i := range f.replicas {
		f.KillReplica(i)
	}
}
