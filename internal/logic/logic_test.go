package logic

import (
	"testing"

	"repro/internal/structure"
)

// directedPath builds a structure with a directed edge relation E forming a
// path 0 → 1 → ... → n-1, plus a unary predicate Odd on odd elements.
func directedPath(t *testing.T, n int) *structure.Structure {
	t.Helper()
	sig := structure.MustSignature(
		[]structure.RelSymbol{{Name: "E", Arity: 2}, {Name: "Odd", Arity: 1}},
		nil,
	)
	a := structure.NewStructure(sig, n)
	for i := 0; i+1 < n; i++ {
		a.MustAddTuple("E", i, i+1)
	}
	for i := 1; i < n; i += 2 {
		a.MustAddTuple("Odd", i)
	}
	return a
}

func TestFreeVars(t *testing.T) {
	f := Conj(R("E", "x", "y"), Ex([]string{"z"}, Conj(R("E", "y", "z"), Equal("z", "x"))))
	got := FreeVars(f)
	want := []string{"x", "y"}
	if len(got) != len(want) {
		t.Fatalf("FreeVars = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("FreeVars = %v, want %v", got, want)
		}
	}
	if vars := FreeVars(True()); len(vars) != 0 {
		t.Errorf("True has free variables %v", vars)
	}
}

func TestEval(t *testing.T) {
	a := directedPath(t, 5)
	env := map[string]structure.Element{"x": 1, "y": 2}

	cases := []struct {
		f    Formula
		want bool
	}{
		{R("E", "x", "y"), true},
		{R("E", "y", "x"), false},
		{R("Odd", "x"), true},
		{R("Odd", "y"), false},
		{Equal("x", "x"), true},
		{Equal("x", "y"), false},
		{Neg(R("E", "y", "x")), true},
		{Conj(R("E", "x", "y"), R("Odd", "x")), true},
		{Conj(R("E", "x", "y"), R("Odd", "y")), false},
		{Disj(R("Odd", "y"), R("Odd", "x")), true},
		{Conj(), true},
		{Disj(), false},
		{True(), true},
		{False(), false},
		// ∃z E(y,z): 2 has successor 3.
		{Ex([]string{"z"}, R("E", "y", "z")), true},
		// ∀z ¬E(z,x): 1 has predecessor 0, so false.
		{All([]string{"z"}, Neg(R("E", "z", "x"))), false},
		// Nested: ∃z (E(y,z) ∧ Odd(z)): successor of 2 is 3, odd.
		{Ex([]string{"z"}, Conj(R("E", "y", "z"), R("Odd", "z"))), true},
	}
	for _, c := range cases {
		if got := Eval(c.f, a, env); got != c.want {
			t.Errorf("Eval(%s) = %v, want %v", c.f, got, c.want)
		}
	}
	// env must be unchanged by quantifier evaluation.
	if env["x"] != 1 || env["y"] != 2 || len(env) != 2 {
		t.Errorf("environment mutated by evaluation: %v", env)
	}
}

func TestQuantifierFree(t *testing.T) {
	if !IsQuantifierFree(Conj(R("E", "x", "y"), Neg(Equal("x", "y")))) {
		t.Errorf("quantifier-free formula misclassified")
	}
	if IsQuantifierFree(Ex([]string{"z"}, R("E", "x", "z"))) {
		t.Errorf("existential formula misclassified")
	}
	if IsQuantifierFree(Neg(All([]string{"z"}, True()))) {
		t.Errorf("universal under negation misclassified")
	}
}

func TestRename(t *testing.T) {
	f := Conj(R("E", "x", "y"), Ex([]string{"x"}, R("E", "x", "y")))
	g := Rename(f, map[string]string{"x": "a", "y": "b"})
	want := "(E(a,b)) ∧ (∃x.(E(x,b)))"
	if g.String() != want {
		t.Errorf("Rename produced %q, want %q", g.String(), want)
	}
}

func TestAnswers(t *testing.T) {
	a := directedPath(t, 4) // edges 0→1,1→2,2→3
	// Pairs (x,y) with an edge.
	ans := Answers(R("E", "x", "y"), a, []string{"x", "y"})
	if len(ans) != 3 {
		t.Fatalf("got %d answers, want 3", len(ans))
	}
	// Paths of length 2.
	phi := Conj(R("E", "x", "y"), R("E", "y", "z"))
	ans = Answers(phi, a, []string{"x", "y", "z"})
	if len(ans) != 2 {
		t.Fatalf("got %d length-2 paths, want 2", len(ans))
	}
	// Elements with no outgoing edge: only 3.
	noOut := Neg(Ex([]string{"y"}, R("E", "x", "y")))
	ans = Answers(noOut, a, []string{"x"})
	if len(ans) != 1 || ans[0][0] != 3 {
		t.Fatalf("sinks = %v, want [[3]]", ans)
	}
}

func TestCollectAtoms(t *testing.T) {
	f := Conj(R("E", "x", "y"), Disj(Neg(R("E", "x", "y")), Equal("x", "y")), Ex([]string{"z"}, R("E", "y", "z")))
	atoms := CollectAtoms(f)
	// E(x,y), x=y, E(y,z): duplicates removed.
	if len(atoms) != 3 {
		t.Fatalf("CollectAtoms returned %d atoms, want 3: %v", len(atoms), atoms)
	}
}

func TestEvalUnderAtoms(t *testing.T) {
	f := Disj(Conj(R("E", "x", "y"), Neg(Equal("x", "y"))), Truth{Value: false})
	truth := map[string]bool{
		Atom{Rel: "E", Args: []string{"x", "y"}}.String(): true,
		Eq{Left: "x", Right: "y"}.String():                false,
	}
	if !EvalUnderAtoms(f, truth) {
		t.Errorf("formula should hold under this atom valuation")
	}
	truth[Eq{Left: "x", Right: "y"}.String()] = true
	if EvalUnderAtoms(f, truth) {
		t.Errorf("formula should fail when x=y is true")
	}
}

func TestStringRendering(t *testing.T) {
	f := Ex([]string{"y"}, Conj(R("E", "x", "y"), Neg(R("Odd", "y"))))
	if f.String() == "" {
		t.Errorf("empty rendering")
	}
	if All([]string{"x"}, True()).String() == "" {
		t.Errorf("empty rendering of universal formula")
	}
}
