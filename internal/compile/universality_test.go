package compile

import (
	"math/rand"
	"testing"

	"repro/internal/expr"
	"repro/internal/semiring"
	"repro/internal/structure"
)

// mapWeights converts the int64 test weights into another carrier.
func mapWeights[T any](w *structure.Weights[int64], embed func(int64) T) *structure.Weights[T] {
	out := structure.NewWeights[T]()
	w.ForEach(func(k structure.WeightKey, v int64) {
		out.Set(k.Weight, structure.ParseTupleKey(k.Tuple), embed(v))
	})
	return out
}

// checkSemiring compiles nothing: it evaluates the already compiled circuit
// in semiring s and compares against the naive evaluator in the same
// semiring.
func checkSemiring[T any](t *testing.T, name string, s semiring.Semiring[T],
	res *Result, a *structure.Structure, w *structure.Weights[T], e expr.Expr) {
	t.Helper()
	got := Evaluate[T](res, s, w)
	want := expr.Eval[T](s, a, w, e, map[string]structure.Element{})
	if !s.Equal(got, want) {
		t.Fatalf("%s: circuit value %s, naive value %s for %s", name, s.Format(got), s.Format(want), e)
	}
}

// TestUniversalityAcrossSemirings is the paper's headline property of
// Theorem 6: the same compiled circuit evaluates the query correctly in any
// commutative semiring, by just plugging in different weight valuations.
func TestUniversalityAcrossSemirings(t *testing.T) {
	r := rand.New(rand.NewSource(2024))
	mod7 := semiring.NewModular(7)
	trunc := semiring.NewTruncated(4)
	prod := semiring.NewProduct[int64, semiring.Ext](semiring.Nat, semiring.MinPlus)

	queries := []expr.Expr{triangleQuery()}
	for trial := 0; trial < 10; trial++ {
		queries = append(queries, expr.Agg([]string{"x", "y"}, randomSimpleBody(r)))
	}

	for i, e := range queries {
		a, w := testDB(8, 14, int64(100+i))
		res, err := Compile(a, e, Options{})
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}

		checkSemiring(t, "Nat", semiring.Nat, res, a, w, e)
		checkSemiring(t, "IntRing", semiring.Int, res, a, w, e)
		checkSemiring(t, "Modular7", mod7, res, a, mapWeights(w, func(v int64) int64 { return v % 7 }), e)
		checkSemiring(t, "Truncated4", trunc, res, a, mapWeights(w, func(v int64) int64 {
			if v > 4 {
				return 4
			}
			return v
		}), e)
		checkSemiring(t, "Bool", semiring.Bool, res, a, mapWeights(w, func(v int64) bool { return v != 0 }), e)
		checkSemiring(t, "GF2", semiring.GF2, res, a, mapWeights(w, func(v int64) bool { return v%2 == 1 }), e)
		checkSemiring(t, "MinPlus", semiring.MinPlus, res, a,
			mapWeights(w, func(v int64) semiring.Ext { return semiring.Fin(v) }), e)
		checkSemiring(t, "MaxPlus", semiring.MaxPlus, res, a,
			mapWeights(w, func(v int64) semiring.Ext { return semiring.Fin(v) }), e)
		checkSemiring(t, "MaxTimes", semiring.MaxTimes, res, a,
			mapWeights(w, func(v int64) float64 { return float64(v) / 4 }), e)
		checkSemiring(t, "Fuzzy", semiring.Fuzzy, res, a,
			mapWeights(w, func(v int64) float64 { return float64(v) / 4 }), e)
		checkSemiring(t, "Nat×MinPlus", prod, res, a,
			mapWeights(w, func(v int64) semiring.Pair[int64, semiring.Ext] {
				return semiring.Pair[int64, semiring.Ext]{First: v, Second: semiring.Fin(v)}
			}), e)
	}
}

// TestProductSemiringFactorsThroughProjections checks that evaluating a
// compiled circuit in a product semiring yields exactly the pair of values
// obtained by evaluating in the two factors separately — so a single
// evaluation pass computes, e.g., a count and a minimum cost at once.
func TestProductSemiringFactorsThroughProjections(t *testing.T) {
	prod := semiring.NewProduct[int64, semiring.Ext](semiring.Nat, semiring.MinPlus)
	for seed := int64(0); seed < 5; seed++ {
		a, w := testDB(10, 22, seed)
		res, err := Compile(a, triangleQuery(), Options{})
		if err != nil {
			t.Fatal(err)
		}
		nat := Evaluate[int64](res, semiring.Nat, w)
		mp := Evaluate[semiring.Ext](res, semiring.MinPlus,
			mapWeights(w, func(v int64) semiring.Ext { return semiring.Fin(v) }))
		pair := Evaluate[semiring.Pair[int64, semiring.Ext]](res, prod,
			mapWeights(w, func(v int64) semiring.Pair[int64, semiring.Ext] {
				return semiring.Pair[int64, semiring.Ext]{First: v, Second: semiring.Fin(v)}
			}))
		if pair.First != nat || !semiring.MinPlus.Equal(pair.Second, mp) {
			t.Fatalf("seed %d: product evaluation (%d, %s) differs from factor evaluations (%d, %s)",
				seed, pair.First, semiring.MinPlus.Format(pair.Second), nat, semiring.MinPlus.Format(mp))
		}
	}
}

// TestCountingTropicalFindsCheapestTriangleAndItsMultiplicity evaluates the
// triangle query in the counting tropical semiring and cross-checks both
// components against a direct enumeration of triangles.
func TestCountingTropicalFindsCheapestTriangleAndItsMultiplicity(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		a, w := testDB(9, 20, seed)
		res, err := Compile(a, triangleQuery(), Options{})
		if err != nil {
			t.Fatal(err)
		}
		got := Evaluate[semiring.CostCount](res, semiring.CountingTropical,
			mapWeights(w, func(v int64) semiring.CostCount { return semiring.CC(v, 1) }))

		// Direct enumeration of directed triangles.
		bestCost := int64(-1)
		bestCount := int64(0)
		for _, xy := range a.Tuples("E") {
			x, y := xy[0], xy[1]
			for _, yz := range a.Tuples("E") {
				if yz[0] != y {
					continue
				}
				z := yz[1]
				if !a.HasTuple("E", z, x) {
					continue
				}
				wxy, _ := w.Get("w", structure.Tuple{x, y})
				wyz, _ := w.Get("w", structure.Tuple{y, z})
				wzx, _ := w.Get("w", structure.Tuple{z, x})
				cost := wxy + wyz + wzx
				switch {
				case bestCost < 0 || cost < bestCost:
					bestCost, bestCount = cost, 1
				case cost == bestCost:
					bestCount++
				}
			}
		}
		if bestCost < 0 {
			if !semiring.CountingTropical.Equal(got, semiring.CountingTropical.Zero()) {
				t.Fatalf("seed %d: no triangles but circuit reports %s", seed, semiring.CountingTropical.Format(got))
			}
			continue
		}
		want := semiring.CC(bestCost, bestCount)
		if !semiring.CountingTropical.Equal(got, want) {
			t.Fatalf("seed %d: counting-tropical value %s, direct enumeration %s",
				seed, semiring.CountingTropical.Format(got), semiring.CountingTropical.Format(want))
		}
	}
}
