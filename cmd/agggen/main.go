// Command agggen generates a synthetic sparse database and writes it to
// stdout in the dbio text format (one line per declaration, tuple and
// weight), so it can be stored in a file or piped into aggquery.
//
// Usage:
//
//	agggen -kind grid -n 10000 -seed 1 > db.txt
//	agggen -kind bounded-degree -n 5000 | aggquery -stdin -query triangles
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/agg"
)

func main() {
	kind := flag.String("kind", "bounded-degree", "workload kind: bounded-degree, grid, forest, pref-attach, road, nested, search")
	n := flag.Int("n", 1000, "approximate number of database elements")
	degree := flag.Int("degree", 3, "degree / branching / attachment parameter")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	db, err := agg.Load(agg.Source{Kind: *kind, N: *n, Degree: *degree, Seed: *seed})
	if err != nil {
		fmt.Fprintf(os.Stderr, "agggen: %v\n", err)
		os.Exit(2)
	}
	if err := db.Write(os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "agggen: %v\n", err)
		os.Exit(1)
	}
}
