package structure

import (
	"testing"
)

func testSignature(t *testing.T) *Signature {
	t.Helper()
	sig, err := NewSignature(
		[]RelSymbol{{Name: "E", Arity: 2}, {Name: "U", Arity: 1}, {Name: "T", Arity: 3}},
		[]WeightSymbol{{Name: "w", Arity: 2}, {Name: "u", Arity: 1}, {Name: "c", Arity: 0}},
	)
	if err != nil {
		t.Fatalf("NewSignature: %v", err)
	}
	return sig
}

func TestSignatureValidation(t *testing.T) {
	if _, err := NewSignature([]RelSymbol{{Name: "E", Arity: 2}, {Name: "E", Arity: 1}}, nil); err == nil {
		t.Errorf("duplicate relation symbols should be rejected")
	}
	if _, err := NewSignature([]RelSymbol{{Name: "E", Arity: 0}}, nil); err == nil {
		t.Errorf("zero-arity relations should be rejected")
	}
	if _, err := NewSignature([]RelSymbol{{Name: "E", Arity: 2}}, []WeightSymbol{{Name: "E", Arity: 1}}); err == nil {
		t.Errorf("weight symbol clashing with relation symbol should be rejected")
	}
	sig := testSignature(t)
	if r, ok := sig.Relation("E"); !ok || r.Arity != 2 {
		t.Errorf("Relation lookup failed")
	}
	if _, ok := sig.Relation("missing"); ok {
		t.Errorf("lookup of missing relation should fail")
	}
	if w, ok := sig.Weight("u"); !ok || w.Arity != 1 {
		t.Errorf("Weight lookup failed")
	}
	ext, err := sig.WithWeights(WeightSymbol{Name: "v1", Arity: 1})
	if err != nil {
		t.Fatalf("WithWeights: %v", err)
	}
	if _, ok := ext.Weight("v1"); !ok {
		t.Errorf("extended signature missing v1")
	}
	if _, ok := sig.Weight("v1"); ok {
		t.Errorf("original signature unexpectedly gained v1")
	}
}

func TestStructureTuples(t *testing.T) {
	sig := testSignature(t)
	a := NewStructure(sig, 5)
	a.MustAddTuple("E", 0, 1)
	a.MustAddTuple("E", 1, 2)
	a.MustAddTuple("E", 0, 1) // duplicate
	a.MustAddTuple("U", 3)
	a.MustAddTuple("T", 0, 1, 2)

	if err := a.AddTuple("E", 0); err == nil {
		t.Errorf("arity mismatch should be rejected")
	}
	if err := a.AddTuple("E", 0, 9); err == nil {
		t.Errorf("out-of-domain element should be rejected")
	}
	if err := a.AddTuple("missing", 0, 1); err == nil {
		t.Errorf("unknown relation should be rejected")
	}

	if !a.HasTuple("E", 0, 1) || a.HasTuple("E", 1, 0) {
		t.Errorf("HasTuple directionality broken")
	}
	if len(a.Tuples("E")) != 2 {
		t.Errorf("E has %d tuples, want 2", len(a.Tuples("E")))
	}
	if a.TupleCount() != 4 {
		t.Errorf("TupleCount = %d, want 4", a.TupleCount())
	}
	if a.MaxArity() != 3 {
		t.Errorf("MaxArity = %d, want 3", a.MaxArity())
	}
	elems := a.ElementsOf("E")
	if len(elems) != 3 || elems[0] != 0 || elems[2] != 2 {
		t.Errorf("ElementsOf(E) = %v", elems)
	}

	b := a.Clone()
	b.MustAddTuple("E", 3, 4)
	if a.HasTuple("E", 3, 4) {
		t.Errorf("Clone is not independent")
	}
}

func TestGaifmanGraph(t *testing.T) {
	sig := testSignature(t)
	a := NewStructure(sig, 6)
	a.MustAddTuple("E", 0, 1)
	a.MustAddTuple("T", 2, 3, 4)
	a.MustAddTuple("U", 5)

	g := a.Gaifman()
	if !g.HasEdge(0, 1) {
		t.Errorf("Gaifman graph missing binary edge")
	}
	// The ternary tuple induces a triangle.
	if !g.HasEdge(2, 3) || !g.HasEdge(3, 4) || !g.HasEdge(2, 4) {
		t.Errorf("Gaifman graph missing ternary clique edges")
	}
	if g.HasEdge(0, 2) {
		t.Errorf("Gaifman graph has spurious edge")
	}
	if g.Degree(5) != 0 {
		t.Errorf("unary tuples should not create edges")
	}
	// Cache invalidation on modification.
	a.MustAddTuple("E", 0, 2)
	if !a.Gaifman().HasEdge(0, 2) {
		t.Errorf("Gaifman graph not recomputed after update")
	}
}

func TestTupleKey(t *testing.T) {
	tu := Tuple{3, 1, 4}
	if tu.Key() != "3,1,4" {
		t.Errorf("Key = %q", tu.Key())
	}
	round := ParseTupleKey(tu.Key())
	if !round.Equal(tu) {
		t.Errorf("ParseTupleKey round trip failed: %v", round)
	}
	if !ParseTupleKey("").Equal(Tuple{}) {
		t.Errorf("empty key should decode to empty tuple")
	}
	c := tu.Clone()
	c[0] = 9
	if tu[0] == 9 {
		t.Errorf("Clone aliases original")
	}
	if tu.Equal(Tuple{3, 1}) || !tu.Equal(Tuple{3, 1, 4}) {
		t.Errorf("Equal broken")
	}
}

func TestWeights(t *testing.T) {
	sig := testSignature(t)
	a := NewStructure(sig, 4)
	a.MustAddTuple("E", 0, 1)

	w := NewWeights[int64]()
	w.Set("w", Tuple{0, 1}, 5)
	w.Set("u", Tuple{2}, 7)
	w.Set("c", Tuple{}, 3)

	if v, ok := w.Get("w", Tuple{0, 1}); !ok || v != 5 {
		t.Errorf("Get(w,(0,1)) = %d,%v", v, ok)
	}
	if _, ok := w.Get("w", Tuple{1, 0}); ok {
		t.Errorf("unset weight should not be found")
	}
	if w.Len() != 3 {
		t.Errorf("Len = %d, want 3", w.Len())
	}
	count := 0
	w.ForEach(func(k WeightKey, v int64) { count++ })
	if count != 3 {
		t.Errorf("ForEach visited %d entries, want 3", count)
	}

	isZero := func(v int64) bool { return v == 0 }
	if err := w.Validate(a, isZero); err != nil {
		t.Errorf("Validate: %v", err)
	}
	// Non-zero binary weight outside every relation is invalid.
	w.Set("w", Tuple{2, 3}, 1)
	if err := w.Validate(a, isZero); err == nil {
		t.Errorf("weight on non-tuple should be rejected")
	}
	// But a zero weight there is fine.
	w.Set("w", Tuple{2, 3}, 0)
	if err := w.Validate(a, isZero); err != nil {
		t.Errorf("zero weight outside relations should be allowed: %v", err)
	}
	// Arity mismatch.
	w2 := NewWeights[int64]()
	w2.Set("u", Tuple{1, 2}, 1)
	if err := w2.Validate(a, isZero); err == nil {
		t.Errorf("arity mismatch in weights should be rejected")
	}
	// Undeclared weight symbol.
	w3 := NewWeights[int64]()
	w3.Set("nope", Tuple{0}, 1)
	if err := w3.Validate(a, isZero); err == nil {
		t.Errorf("undeclared weight symbol should be rejected")
	}
}
