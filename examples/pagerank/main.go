// PageRank (Example 9 of the paper): one round of PageRank expressed as a
// weighted query over the field of rationals, with constant-time point
// queries and constant-time maintenance when a page's previous-round weight
// changes.
//
//	go run ./examples/pagerank
package main

import (
	"fmt"
	"math/big"
	"sort"

	"repro/internal/compile"
	"repro/internal/dynamicq"
	"repro/internal/expr"
	"repro/internal/logic"
	"repro/internal/semiring"
	"repro/internal/structure"
	"repro/internal/workload"
)

func main() {
	const n = 3000
	web := workload.PreferentialAttachment(n, 2, 7)
	a := web.A
	fmt.Printf("web graph: %d pages, %d links\n", a.N, len(a.Tuples("E")))

	// Signature: links E, previous-round weight w, damped inverse out-degree
	// invdeg, and the teleport mass as a nullary weight.
	sig := structure.MustSignature(
		a.Sig.Relations,
		[]structure.WeightSymbol{{Name: "w", Arity: 1}, {Name: "invdeg", Arity: 1}, {Name: "base", Arity: 0}},
	)
	b := structure.NewStructure(sig, a.N)
	for _, t := range a.Tuples("E") {
		b.MustAddTuple("E", t...)
	}
	outdeg := make([]int64, a.N)
	for _, t := range a.Tuples("E") {
		outdeg[t[0]]++
	}
	damping := big.NewRat(85, 100)
	w := structure.NewWeights[*big.Rat]()
	for v := 0; v < a.N; v++ {
		w.Set("w", structure.Tuple{v}, big.NewRat(1, int64(a.N)))
		if outdeg[v] > 0 {
			w.Set("invdeg", structure.Tuple{v}, new(big.Rat).Mul(damping, big.NewRat(1, outdeg[v])))
		}
	}
	w.Set("base", structure.Tuple{},
		new(big.Rat).Quo(new(big.Rat).Sub(big.NewRat(1, 1), damping), big.NewRat(int64(a.N), 1)))

	// f(x) = (1-d)/N + d · Σ_y [E(y,x)] · w(y) / outdeg(y)
	f := expr.Plus(
		expr.W("base"),
		expr.Agg([]string{"y"}, expr.Times(expr.Guard(logic.R("E", "y", "x")), expr.W("w", "y"), expr.W("invdeg", "y"))),
	)
	q, err := dynamicq.CompileQuery[*big.Rat](semiring.Rat, b, w, f, compile.Options{})
	if err != nil {
		panic(err)
	}

	// Query the new rank of every page (each query costs O(1) semiring
	// operations after the linear preprocessing).
	type ranked struct {
		page int
		rank *big.Rat
	}
	ranks := make([]ranked, a.N)
	for x := 0; x < a.N; x++ {
		v, err := q.Value(x)
		if err != nil {
			panic(err)
		}
		ranks[x] = ranked{page: x, rank: v}
	}
	sort.Slice(ranks, func(i, j int) bool { return ranks[i].rank.Cmp(ranks[j].rank) > 0 })
	fmt.Println("top 5 pages after one PageRank round:")
	for _, r := range ranks[:5] {
		fl, _ := r.rank.Float64()
		fmt.Printf("  page %4d  rank %.6f\n", r.page, fl)
	}

	// A page's previous-round weight changes; the data structure absorbs the
	// update in constant time and point queries immediately reflect it.
	hot := ranks[0].page
	if err := q.SetWeight("w", structure.Tuple{hot}, big.NewRat(1, 10)); err != nil {
		panic(err)
	}
	for _, t := range a.Tuples("E") {
		if t[0] != hot {
			continue
		}
		v, _ := q.Value(t[1])
		fl, _ := v.Float64()
		fmt.Printf("after boosting page %d: new rank of its target %d is %.6f\n", hot, t[1], fl)
		break
	}
}
