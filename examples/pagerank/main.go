// PageRank (Example 9 of the paper): one round of PageRank expressed as a
// weighted query over the field of rationals, with constant-time point
// queries and constant-time maintenance when a page's previous-round weight
// changes — all through the public facade, with the rational carrier plugged
// into the semiring registry.
//
//	go run ./examples/pagerank
package main

import (
	"context"
	"fmt"
	"math/big"
	"sort"
	"strings"

	"repro/agg"
	"repro/internal/semiring"
)

func main() {
	const n = 3000
	ctx := context.Background()
	web, err := agg.Generate("pref-attach", n, 7)
	must(err)
	links := web.Tuples("E")
	fmt.Printf("web graph: %d pages, %d links\n", web.Elements(), len(links))

	// Re-encode the graph with integer weights that the rational carrier
	// interprets: w(v) counts units of 1/N (previous-round mass), deg(v)
	// stores the out-degree (interpreted as d/deg), and the nullary base is
	// the teleport mass (1-d)/N.
	outdeg := make([]int64, n)
	for _, t := range links {
		outdeg[t[0]]++
	}
	var b strings.Builder
	fmt.Fprintf(&b, "domain %d\nrel E 2\nwsym w 1\nwsym deg 1\nwsym base 0\n", n)
	for _, t := range links {
		fmt.Fprintf(&b, "E %d %d\n", t[0], t[1])
	}
	for v := 0; v < n; v++ {
		fmt.Fprintf(&b, "w %d 1\n", v)
		if outdeg[v] > 0 {
			fmt.Fprintf(&b, "deg %d %d\n", v, outdeg[v])
		}
	}
	b.WriteString("base 1\n")

	// The rational PageRank carrier: exact arithmetic in ℚ, with the integer
	// weights embedded per symbol (damping d = 85/100).
	must(agg.Register(agg.NewSemiring[*big.Rat]("pagerank-rat", semiring.Rat,
		func(weight string, _ []int, v int64) *big.Rat {
			switch weight {
			case "w":
				return big.NewRat(v, n)
			case "deg":
				return big.NewRat(85, 100*v)
			case "base":
				return big.NewRat(15*v, 100*n)
			}
			return big.NewRat(v, 1)
		})))

	eng, err := agg.OpenReader(strings.NewReader(b.String()))
	must(err)

	// f(x) = (1-d)/N + d · Σ_y [E(y,x)] · w(y) / outdeg(y)
	p, err := eng.Prepare(ctx, "base + sum y . [E(y,x)] * w(y) * deg(y)",
		agg.WithSemiring("pagerank-rat"))
	must(err)

	// Query the new rank of every page (each point query costs O(1) semiring
	// operations after the linear preprocessing).
	type ranked struct {
		page int
		rank *big.Rat
	}
	ranks := make([]ranked, n)
	for x := 0; x < n; x++ {
		v, err := p.Eval(ctx, x)
		must(err)
		r, ok := new(big.Rat).SetString(v.String())
		if !ok {
			panic("unparseable rank " + v.String())
		}
		ranks[x] = ranked{page: x, rank: r}
	}
	sort.Slice(ranks, func(i, j int) bool { return ranks[i].rank.Cmp(ranks[j].rank) > 0 })
	fmt.Println("top 5 pages after one PageRank round:")
	for _, r := range ranks[:5] {
		fl, _ := r.rank.Float64()
		fmt.Printf("  page %4d  rank %.6f\n", r.page, fl)
	}

	// A page's previous-round weight changes; the session absorbs the update
	// in constant time and point queries immediately reflect it.
	hot := ranks[0].page
	s, err := p.Session()
	must(err)
	defer s.Close()
	// w(hot) becomes n/10 units of 1/N, i.e. mass 1/10.
	must(s.Set(agg.Change{Weight: "w", Tuple: []int{hot}, Value: n / 10}))
	for _, t := range links {
		if t[0] != hot {
			continue
		}
		v, err := s.Eval(ctx, t[1])
		must(err)
		r, _ := new(big.Rat).SetString(v.String())
		fl, _ := r.Float64()
		fmt.Printf("after boosting page %d: new rank of its target %d is %.6f\n", hot, t[1], fl)
		break
	}
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}
