package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"slices"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/agg"
	"repro/internal/workload"
)

// newTestServer mounts a grid workload as "default" and returns the server,
// its HTTP frontend, and the raw workload for oracle computations.
func newTestServer(t *testing.T, n int) (*Server, *httptest.Server, *workload.Database) {
	t.Helper()
	db := workload.Grid(n, n, 7)
	srv := New(Options{CacheSize: 32, Workers: 2})
	srv.MountDatabaseValue("default", agg.FromStructure(db.A, db.Weights()))
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts, db
}

func postJSON(t *testing.T, url string, body any) (map[string]any, int) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decoding response of %s: %v", url, err)
	}
	return out, resp.StatusCode
}

const edgeSum = "sum x, y . [E(x,y)] * w(x,y)"

// TestCacheHitSkipsCompilation is acceptance criterion 1: a repeated /query
// leaves the compile counter unchanged and reports cached=true.
func TestCacheHitSkipsCompilation(t *testing.T) {
	srv, ts, _ := newTestServer(t, 6)

	first, code := postJSON(t, ts.URL+"/query", map[string]any{"expr": edgeSum, "semiring": "natural"})
	if code != http.StatusOK {
		t.Fatalf("first query failed: %v", first)
	}
	if first["cached"] != false {
		t.Errorf("first query reported cached=%v, want false", first["cached"])
	}
	if got := srv.Stats().Compiles.Load(); got != 1 {
		t.Fatalf("after first query: %d compiles, want 1", got)
	}

	second, code := postJSON(t, ts.URL+"/query", map[string]any{"expr": edgeSum, "semiring": "natural"})
	if code != http.StatusOK {
		t.Fatalf("second query failed: %v", second)
	}
	if second["cached"] != true {
		t.Errorf("second query reported cached=%v, want true", second["cached"])
	}
	if got := srv.Stats().Compiles.Load(); got != 1 {
		t.Errorf("cache hit recompiled: %d compiles, want 1", got)
	}
	if second["value"] != first["value"] {
		t.Errorf("cached value %v differs from cold value %v", second["value"], first["value"])
	}
	if got := srv.Stats().CacheHits.Load(); got != 1 {
		t.Errorf("cacheHits = %d, want 1", got)
	}

	// A different semiring is a different cache key.
	if _, code := postJSON(t, ts.URL+"/query", map[string]any{"expr": edgeSum, "semiring": "boolean"}); code != http.StatusOK {
		t.Fatalf("boolean query failed")
	}
	if got := srv.Stats().Compiles.Load(); got != 2 {
		t.Errorf("after boolean query: %d compiles, want 2", got)
	}
}

// TestStatsReportProgramBytes checks that /stats reports the per-entry and
// total resident Program bytes of the compiled-artefact cache.
func TestStatsReportProgramBytes(t *testing.T) {
	_, ts, _ := newTestServer(t, 6)

	getStats := func() StatsSnapshot {
		resp, err := http.Get(ts.URL + "/stats")
		if err != nil {
			t.Fatalf("GET /stats: %v", err)
		}
		defer resp.Body.Close()
		var snap StatsSnapshot
		if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
			t.Fatalf("decoding stats: %v", err)
		}
		return snap
	}

	if snap := getStats(); snap.CacheBytes != 0 || len(snap.CacheEntryBytes) != 0 {
		t.Fatalf("empty cache reports bytes %d entries %v", snap.CacheBytes, snap.CacheEntryBytes)
	}

	if _, code := postJSON(t, ts.URL+"/query", map[string]any{"expr": edgeSum, "semiring": "natural"}); code != http.StatusOK {
		t.Fatalf("query failed")
	}
	snap := getStats()
	if len(snap.CacheEntryBytes) != 1 || snap.CacheEntryBytes[0] <= 0 {
		t.Fatalf("after one query: cacheEntryBytes = %v, want one positive entry", snap.CacheEntryBytes)
	}
	if snap.CacheBytes != snap.CacheEntryBytes[0] {
		t.Fatalf("cacheBytes %d does not equal the single entry %d", snap.CacheBytes, snap.CacheEntryBytes[0])
	}

	// A second distinct key adds a second entry and grows the total.
	if _, code := postJSON(t, ts.URL+"/query", map[string]any{"expr": edgeSum, "semiring": "minplus"}); code != http.StatusOK {
		t.Fatalf("minplus query failed")
	}
	snap2 := getStats()
	if len(snap2.CacheEntryBytes) != 2 || snap2.CacheBytes <= snap.CacheBytes {
		t.Fatalf("after two queries: entries %v total %d (was %d)", snap2.CacheEntryBytes, snap2.CacheBytes, snap.CacheBytes)
	}
	var sum int64
	for _, b := range snap2.CacheEntryBytes {
		if b <= 0 {
			t.Fatalf("non-positive entry in %v", snap2.CacheEntryBytes)
		}
		sum += b
	}
	if sum != snap2.CacheBytes {
		t.Fatalf("cacheBytes %d != sum of entries %d", snap2.CacheBytes, sum)
	}
}

// TestConcurrentPointsAndUpdates is acceptance criterion 2: ≥8 concurrent
// clients mix /point and /update on one session, and the session's final
// point values agree with a sequential re-evaluation under the final
// weights.
func TestConcurrentPointsAndUpdates(t *testing.T) {
	srv, ts, db := newTestServer(t, 8)
	const sessionExpr = "sum y . [E(x,y)] * w(x,y)"

	resp, code := postJSON(t, ts.URL+"/session", map[string]any{
		"name": "s", "expr": sessionExpr, "semiring": "natural",
	})
	if code != http.StatusOK {
		t.Fatalf("creating session: %v", resp)
	}

	edges := db.A.Tuples("E")
	const updaters, pointers = 6, 6 // 12 concurrent clients
	var wg sync.WaitGroup
	errs := make(chan error, updaters+pointers)

	// Each updater owns a disjoint slice of edges and sets deterministic
	// final values, so the final state is order-independent.
	finalValue := func(i int) int64 { return int64(1000 + i) }
	for u := 0; u < updaters; u++ {
		wg.Add(1)
		go func(u int) {
			defer wg.Done()
			var updates []map[string]any
			for i := u; i < len(edges); i += updaters {
				updates = append(updates, map[string]any{
					"weight": "w", "tuple": edges[i], "value": finalValue(i),
				})
			}
			// Split the batch in two so updates interleave with points.
			for _, batch := range [][]map[string]any{updates[:len(updates)/2], updates[len(updates)/2:]} {
				raw, _ := json.Marshal(map[string]any{"session": "s", "updates": batch})
				r, err := http.Post(ts.URL+"/update", "application/json", bytes.NewReader(raw))
				if err != nil {
					errs <- err
					return
				}
				io.Copy(io.Discard, r.Body)
				r.Body.Close()
				if r.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("update batch: status %d", r.StatusCode)
					return
				}
			}
		}(u)
	}
	for p := 0; p < pointers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for x := p; x < db.A.N; x += pointers {
				raw, _ := json.Marshal(map[string]any{"session": "s", "args": []int{x}})
				r, err := http.Post(ts.URL+"/point", "application/json", bytes.NewReader(raw))
				if err != nil {
					errs <- err
					return
				}
				io.Copy(io.Discard, r.Body)
				r.Body.Close()
				if r.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("point %d: status %d", x, r.StatusCode)
					return
				}
			}
		}(p)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Sequential oracle: a fresh facade compilation under the final weights.
	finalW := db.Weights()
	for i, e := range edges {
		finalW.Set("w", e, finalValue(i))
	}
	oracle, err := agg.Open(agg.FromStructure(db.A, finalW)).Prepare(context.Background(), sessionExpr)
	if err != nil {
		t.Fatalf("compiling oracle: %v", err)
	}
	for x := 0; x < db.A.N; x++ {
		got, code := postJSON(t, ts.URL+"/point", map[string]any{"session": "s", "args": []int{x}})
		if code != http.StatusOK {
			t.Fatalf("final point %d: %v", x, got)
		}
		want, err := oracle.Eval(context.Background(), x)
		if err != nil {
			t.Fatalf("oracle value at %d: %v", x, err)
		}
		if got["value"] != string(want) {
			t.Fatalf("point %d = %v after concurrent updates, sequential oracle says %s", x, got["value"], want)
		}
	}

	// The session and every point went through one compilation (the oracle
	// compiled outside the server).
	if got := srv.Stats().Compiles.Load(); got != 1 {
		t.Errorf("session workload compiled %d times, want 1", got)
	}
}

// TestPointDuringInFlightBatch is the MVCC acceptance test at the HTTP
// layer: /point answers 200 from a snapshot of the last committed epoch
// while a /batch on the same session is mid-flight, instead of queueing
// behind it or failing 409.  The test holds the handle's update lock to pin
// the batch deterministically — exactly the state a long write wave is in.
func TestPointDuringInFlightBatch(t *testing.T) {
	srv, ts, db := newTestServer(t, 6)
	const sessionExpr = "sum y . [E(x,y)] * w(x,y)"
	if resp, code := postJSON(t, ts.URL+"/session", map[string]any{
		"name": "m", "expr": sessionExpr, "semiring": "natural",
	}); code != http.StatusOK {
		t.Fatalf("creating session: %v", resp)
	}
	h, err := srv.Session("m")
	if err != nil {
		t.Fatalf("resolving session: %v", err)
	}
	before, code := postJSON(t, ts.URL+"/point", map[string]any{"session": "m", "args": []int{0}})
	if code != http.StatusOK {
		t.Fatalf("baseline point: %v", before)
	}
	epochBefore := h.Epoch()

	h.mu.Lock() // the batch below blocks here, like a mid-flight write wave
	edges := db.A.Tuples("E")
	updates := make([]map[string]any, len(edges))
	for i, e := range edges {
		updates[i] = map[string]any{"weight": "w", "tuple": e, "value": 77}
	}
	batchStatus := make(chan int, 1)
	go func() {
		raw, _ := json.Marshal(map[string]any{"session": "m", "updates": updates})
		r, err := http.Post(ts.URL+"/batch", "application/json", bytes.NewReader(raw))
		if err != nil {
			batchStatus <- -1
			return
		}
		io.Copy(io.Discard, r.Body)
		r.Body.Close()
		batchStatus <- r.StatusCode
	}()

	// Points keep answering the pre-batch value while the write is in flight:
	// no queueing (the batch holds the update lock the whole time) and no 409.
	for i := 0; i < 10; i++ {
		got, code := postJSON(t, ts.URL+"/point", map[string]any{"session": "m", "args": []int{0}})
		if code != http.StatusOK {
			t.Fatalf("point during in-flight batch: status %d (%v)", code, got)
		}
		if got["value"] != before["value"] {
			t.Fatalf("point during in-flight batch = %v, want pre-batch value %v", got["value"], before["value"])
		}
	}
	select {
	case code := <-batchStatus:
		t.Fatalf("batch completed (status %d) while the update lock was held", code)
	default:
	}

	h.mu.Unlock()
	if code := <-batchStatus; code != http.StatusOK {
		t.Fatalf("released batch: status %d", code)
	}
	if got := srv.Stats().Busy.Load(); got != 0 {
		t.Errorf("busy counter = %d after reads under write, want 0 (writer-writer conflicts only)", got)
	}
	if h.Epoch() <= epochBefore {
		t.Errorf("epoch did not advance past the batch: %d -> %d", epochBefore, h.Epoch())
	}

	// The MVCC gauges surface on /stats and /metrics.
	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatalf("GET /stats: %v", err)
	}
	var snap StatsSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatalf("decoding stats: %v", err)
	}
	resp.Body.Close()
	if snap.SessionEpochs["m"] != h.Epoch() {
		t.Errorf("/stats sessionEpochs[m] = %d, want %d", snap.SessionEpochs["m"], h.Epoch())
	}
	if snap.SessionRetainedUndoBytes != 0 {
		t.Errorf("/stats sessionRetainedUndoBytes = %d with no open readers, want 0", snap.SessionRetainedUndoBytes)
	}
	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		fmt.Sprintf(`aggserve_session_epoch{session="m"} %d`, h.Epoch()),
		`aggserve_session_retained_undo_bytes{session="m"} 0`,
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestEnumerateStreamsCorrectPrefix is acceptance criterion 3: /enumerate
// under a limit streams a prefix of the full enumeration, every answer
// satisfies the formula, and the summary line reports the true total.
func TestEnumerateStreamsCorrectPrefix(t *testing.T) {
	_, ts, db := newTestServer(t, 8)
	const phi = "E(x,y) & E(y,z) & !(x = z)"

	stream := func(limit int) (answers [][]int, total int64) {
		t.Helper()
		params := url.Values{"phi": {phi}, "vars": {"x,y,z"}, "limit": {fmt.Sprint(limit)}}
		resp, err := http.Get(ts.URL + "/enumerate?" + params.Encode())
		if err != nil {
			t.Fatalf("GET /enumerate: %v", err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET /enumerate: status %d", resp.StatusCode)
		}
		sc := bufio.NewScanner(resp.Body)
		done := false
		for sc.Scan() {
			var line struct {
				Answer []int `json:"answer"`
				Done   bool  `json:"done"`
				Total  int64 `json:"total"`
			}
			if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
				t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
			}
			if line.Done {
				done, total = true, line.Total
				break
			}
			answers = append(answers, line.Answer)
		}
		if !done {
			t.Fatalf("stream ended without a summary line")
		}
		return answers, total
	}

	const limit = 10
	prefix, total := stream(limit)
	if int64(limit) < total && len(prefix) != limit {
		t.Fatalf("streamed %d answers under limit %d (total %d)", len(prefix), limit, total)
	}
	seen := map[string]bool{}
	for _, a := range prefix {
		if len(a) != 3 {
			t.Fatalf("answer %v has arity %d, want 3", a, len(a))
		}
		x, y, z := a[0], a[1], a[2]
		if !db.A.HasTuple("E", x, y) || !db.A.HasTuple("E", y, z) || x == z {
			t.Errorf("streamed tuple %v does not satisfy %s", a, phi)
		}
		if seen[fmt.Sprint(a)] {
			t.Errorf("answer %v streamed twice", a)
		}
		seen[fmt.Sprint(a)] = true
	}

	// The same cached enumerator must yield the same prefix under a larger
	// limit, and the full stream must match the reported total.
	longer, total2 := stream(3 * limit)
	if total2 != total {
		t.Errorf("total changed between requests: %d vs %d", total, total2)
	}
	for i := range prefix {
		if !slices.Equal(prefix[i], longer[i]) {
			t.Errorf("limit=%d stream is not a prefix: position %d is %v vs %v", limit, i, prefix[i], longer[i])
		}
	}
	all, _ := stream(0)
	if int64(len(all)) != total {
		t.Errorf("unlimited stream yielded %d answers, summary says %d", len(all), total)
	}
}

// TestBatchEndpoint covers POST /batch: atomic application of a mixed batch
// in one propagation wave, the stats counters, all-or-nothing rejection of
// invalid batches, and agreement with a sequential oracle.
func TestBatchEndpoint(t *testing.T) {
	srv, ts, db := newTestServer(t, 6)
	const sessionExpr = "sum y . [E(x,y)] * w(x,y)"
	if resp, code := postJSON(t, ts.URL+"/session", map[string]any{
		"name": "b", "expr": sessionExpr, "semiring": "natural",
	}); code != http.StatusOK {
		t.Fatalf("creating session: %v", resp)
	}

	edges := db.A.Tuples("E")
	finalValue := func(i int) int64 { return int64(500 + i%7) }
	updates := make([]map[string]any, len(edges))
	for i, e := range edges {
		updates[i] = map[string]any{"weight": "w", "tuple": e, "value": finalValue(i)}
	}
	resp, code := postJSON(t, ts.URL+"/batch", map[string]any{"session": "b", "updates": updates})
	if code != http.StatusOK {
		t.Fatalf("/batch failed: %v", resp)
	}
	if got := resp["applied"]; got != float64(len(updates)) {
		t.Errorf("applied = %v, want %d", got, len(updates))
	}
	if got := srv.Stats().Batches.Load(); got != 1 {
		t.Errorf("batches counter = %d, want 1", got)
	}
	if got := srv.Stats().BatchedUpdates.Load(); got != int64(len(updates)) {
		t.Errorf("batchedUpdates counter = %d, want %d", got, len(updates))
	}

	// Sequential oracle under the final weights.
	finalW := db.Weights()
	for i, e := range edges {
		finalW.Set("w", e, finalValue(i))
	}
	oracle, err := agg.Open(agg.FromStructure(db.A, finalW)).Prepare(context.Background(), sessionExpr)
	if err != nil {
		t.Fatalf("compiling oracle: %v", err)
	}
	for x := 0; x < db.A.N; x += 3 {
		got, code := postJSON(t, ts.URL+"/point", map[string]any{"session": "b", "args": []int{x}})
		if code != http.StatusOK {
			t.Fatalf("point %d: %v", x, got)
		}
		want, err := oracle.Eval(context.Background(), x)
		if err != nil {
			t.Fatalf("oracle at %d: %v", x, err)
		}
		if got["value"] != string(want) {
			t.Fatalf("point %d = %v after /batch, oracle says %s", x, got["value"], want)
		}
	}

	// All-or-nothing: a batch with an invalid tail applies nothing.
	before, _ := postJSON(t, ts.URL+"/point", map[string]any{"session": "b", "args": []int{0}})
	bad := []map[string]any{
		{"weight": "w", "tuple": edges[0], "value": 99999},
		{"weight": "w", "rel": "E", "tuple": edges[0], "value": 1},
	}
	if resp, code := postJSON(t, ts.URL+"/batch", map[string]any{"session": "b", "updates": bad}); code != http.StatusBadRequest {
		t.Fatalf("invalid batch: status %d (%v)", code, resp)
	}
	bad[1] = map[string]any{"weight": "nope", "tuple": edges[0], "value": 1}
	if resp, code := postJSON(t, ts.URL+"/batch", map[string]any{"session": "b", "updates": bad}); code != http.StatusBadRequest {
		t.Fatalf("unknown-weight batch: status %d (%v)", code, resp)
	}
	after, _ := postJSON(t, ts.URL+"/point", map[string]any{"session": "b", "args": []int{0}})
	if after["value"] != before["value"] {
		t.Errorf("invalid batch partially applied: point 0 went from %v to %v", before["value"], after["value"])
	}
	if got := srv.Stats().Batches.Load(); got != 1 {
		t.Errorf("failed batches were counted: batches = %d, want 1", got)
	}

	// Unknown sessions are 404s under the typed taxonomy.
	if resp, code := postJSON(t, ts.URL+"/batch", map[string]any{"session": "ghost", "updates": updates[:1]}); code != http.StatusNotFound {
		t.Errorf("unknown session: status %d (%v)", code, resp)
	}
}

// TestErrorPaths covers the 4xx surface: statuses come from the typed agg
// taxonomy and every error body carries its machine-readable code.
func TestErrorPaths(t *testing.T) {
	_, ts, _ := newTestServer(t, 4)

	check := func(resp map[string]any, wantCode string) {
		t.Helper()
		if resp["code"] != wantCode {
			t.Errorf("error code = %v, want %q (%v)", resp["code"], wantCode, resp["error"])
		}
	}

	resp, code := postJSON(t, ts.URL+"/query", map[string]any{"expr": edgeSum, "semiring": "nope"})
	if code != http.StatusBadRequest {
		t.Errorf("unknown semiring: status %d (%v)", code, resp)
	}
	check(resp, "unknown_semiring")

	resp, code = postJSON(t, ts.URL+"/query", map[string]any{"expr": "sum x , . [E(x,y)]", "semiring": "natural"})
	if code != http.StatusBadRequest {
		t.Errorf("unparsable query: status %d (%v)", code, resp)
	}
	check(resp, "parse")

	resp, code = postJSON(t, ts.URL+"/query", map[string]any{"expr": "sum y . [E(x,y)] * w(x,y)", "semiring": "natural"})
	if code != http.StatusBadRequest || !strings.Contains(resp["error"].(string), "free variables") {
		t.Errorf("free-variable /query: status %d (%v)", code, resp)
	}
	check(resp, "invalid_argument")

	resp, code = postJSON(t, ts.URL+"/point", map[string]any{"session": "ghost", "args": []int{0}})
	if code != http.StatusNotFound {
		t.Errorf("unknown session: status %d (%v)", code, resp)
	}
	check(resp, "unknown_session")

	resp, code = postJSON(t, ts.URL+"/query", map[string]any{"expr": edgeSum, "semiring": "natural", "db": "nope"})
	if code != http.StatusNotFound {
		t.Errorf("unknown database: status %d (%v)", code, resp)
	}
	check(resp, "unknown_database")

	if _, code := postJSON(t, ts.URL+"/session", map[string]any{"name": "dup", "expr": edgeSum, "semiring": "natural"}); code != http.StatusOK {
		t.Fatalf("creating session failed")
	}
	resp, code = postJSON(t, ts.URL+"/session", map[string]any{"name": "dup", "expr": edgeSum, "semiring": "natural"})
	if code != http.StatusConflict {
		t.Errorf("duplicate session: status %d (%v)", code, resp)
	}
	check(resp, "session_exists")

	// Deleting frees the name; deleting twice is an unknown session.
	del := func() int {
		req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/session?name=dup", nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatalf("DELETE /session: %v", err)
		}
		defer resp.Body.Close()
		io.Copy(io.Discard, resp.Body)
		return resp.StatusCode
	}
	if code := del(); code != http.StatusOK {
		t.Errorf("DELETE /session: status %d, want 200", code)
	}
	if code := del(); code != http.StatusNotFound {
		t.Errorf("second DELETE /session: status %d, want 404", code)
	}
	if _, code := postJSON(t, ts.URL+"/session", map[string]any{"name": "dup", "expr": edgeSum, "semiring": "natural"}); code != http.StatusOK {
		t.Errorf("recreating a deleted session should succeed")
	}

	// A failed compile must not poison the cache with a broken entry.
	resp, code = postJSON(t, ts.URL+"/query", map[string]any{"expr": "sum x . [Nope(x)] * u(x)", "semiring": "natural"})
	if code != http.StatusBadRequest {
		t.Errorf("unknown relation should 400")
	}
	check(resp, "compile")
	if _, code := postJSON(t, ts.URL+"/query", map[string]any{"expr": edgeSum, "semiring": "natural"}); code != http.StatusOK {
		t.Errorf("valid query after failed compile should succeed")
	}

	// Update taxonomy: a bad update on a live session is invalid_update.
	resp, code = postJSON(t, ts.URL+"/update", map[string]any{
		"session": "dup",
		"updates": []map[string]any{{"weight": "nope", "tuple": []int{0}, "value": 1}},
	})
	if code != http.StatusBadRequest {
		t.Errorf("unknown weight update: status %d (%v)", code, resp)
	}
	check(resp, "invalid_update")
}

// TestErrorTaxonomyRoundTrip checks errors.Is/As survive the HTTP layer as
// machine-readable JSON codes: the code served to the client is exactly
// agg.ErrorCode of the error the facade produced for the same request.
func TestErrorTaxonomyRoundTrip(t *testing.T) {
	_, ts, db := newTestServer(t, 4)
	eng := agg.Open(agg.FromStructure(db.A, db.Weights()))

	cases := []struct {
		name string
		expr string
		sem  string
	}{
		{"parse", "sum x , . [E(x,y)]", "natural"},
		{"compile", "sum x . [Nope(x)] * u(x)", "natural"},
		{"unknown semiring", edgeSum, "nope"},
	}
	for _, tc := range cases {
		_, facadeErr := eng.Prepare(context.Background(), tc.expr, agg.WithSemiring(tc.sem))
		if facadeErr == nil {
			t.Fatalf("%s: facade accepted %q", tc.name, tc.expr)
		}
		resp, _ := postJSON(t, ts.URL+"/query", map[string]any{"expr": tc.expr, "semiring": tc.sem})
		if want := agg.ErrorCode(facadeErr); resp["code"] != want {
			t.Errorf("%s: HTTP code %v, facade taxonomy says %q", tc.name, resp["code"], want)
		}
	}
}

// TestEnumerateClientDisconnect is the disconnect satellite: a client that
// walks away mid-stream aborts the enumeration (no summary line is
// produced) and increments the canceled counter.
func TestEnumerateClientDisconnect(t *testing.T) {
	db := workload.Grid(50, 50, 7)
	srv := New(Options{CacheSize: 8, Workers: 2})
	srv.MountDatabaseValue("default", agg.FromStructure(db.A, db.Weights()))
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	params := url.Values{"phi": {"E(x,y) & E(y,z) & !(x = z)"}, "vars": {"x,y,z"}, "limit": {"0"}}
	resp, err := http.Get(ts.URL + "/enumerate?" + params.Encode())
	if err != nil {
		t.Fatalf("GET /enumerate: %v", err)
	}
	// Read a few lines, then hang up mid-stream.
	sc := bufio.NewScanner(resp.Body)
	for i := 0; i < 3 && sc.Scan(); i++ {
	}
	resp.Body.Close()

	deadline := time.Now().Add(5 * time.Second)
	for srv.Stats().Canceled.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("canceled counter never incremented after client disconnect (enumerations=%d)",
				srv.Stats().Enumerations.Load())
		}
		time.Sleep(10 * time.Millisecond)
	}
	if got := srv.Stats().Enumerations.Load(); got != 0 {
		t.Errorf("aborted stream still counted as a completed enumeration (%d)", got)
	}

	// The server is healthy afterwards and the same (cached) enumeration
	// completes for a patient client.
	params.Set("limit", "5")
	resp2, err := http.Get(ts.URL + "/enumerate?" + params.Encode())
	if err != nil {
		t.Fatalf("second GET /enumerate: %v", err)
	}
	defer resp2.Body.Close()
	body, _ := io.ReadAll(resp2.Body)
	if !bytes.Contains(body, []byte(`"done":true`)) {
		t.Errorf("follow-up stream missing summary line: %s", body)
	}
}

// TestLRUCacheEviction exercises the cache bound and the single-build
// guarantee under concurrency.
func TestLRUCacheEviction(t *testing.T) {
	c := newLRUCache(2)
	builds := 0
	get := func(k string) {
		t.Helper()
		if _, _, err := c.getOrCreate(k, func() (any, error) { builds++; return k, nil }); err != nil {
			t.Fatal(err)
		}
	}
	get("a")
	get("b")
	get("a") // refresh a
	get("c") // evicts b
	if c.len() != 2 {
		t.Fatalf("cache holds %d entries, want 2", c.len())
	}
	get("b") // rebuilt
	if builds != 4 {
		t.Errorf("built %d times, want 4 (a, b, c, b-again)", builds)
	}

	// Concurrent cold hits share one build.
	c2 := newLRUCache(4)
	var wg sync.WaitGroup
	var built int32
	var mu sync.Mutex
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c2.getOrCreate("k", func() (any, error) {
				mu.Lock()
				built++
				mu.Unlock()
				return 1, nil
			})
		}()
	}
	wg.Wait()
	if built != 1 {
		t.Errorf("concurrent getOrCreate built %d times, want 1", built)
	}
}

// TestAnalyzeEndpoint covers GET /analyze in both preparation modes: like
// /query (expression, no vars) and like /enumerate (formula with vars), with
// reports flowing through the shared compilation cache.
func TestAnalyzeEndpoint(t *testing.T) {
	srv, ts, _ := newTestServer(t, 5)

	getAnalyze := func(params url.Values) (map[string]any, int) {
		t.Helper()
		resp, err := http.Get(ts.URL + "/analyze?" + params.Encode())
		if err != nil {
			t.Fatalf("GET /analyze: %v", err)
		}
		defer resp.Body.Close()
		var out map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatalf("decoding /analyze response: %v", err)
		}
		return out, resp.StatusCode
	}

	// Expression mode: the report sizes the program but has no model count.
	out, code := getAnalyze(url.Values{"expr": {edgeSum}})
	if code != http.StatusOK {
		t.Fatalf("analyze expression failed: %v", out)
	}
	if g, ok := out["gates"].(float64); !ok || g <= 0 {
		t.Errorf("gates = %v, want > 0", out["gates"])
	}
	if out["decomposable"] != true {
		t.Errorf("edge sum not decomposable: %v", out["decomposabilityViolations"])
	}
	if _, has := out["modelCount"]; has {
		t.Errorf("expression-mode report has modelCount: %v", out["modelCount"])
	}

	// Formula mode with vars: model count equals the enumerate total.
	out, code = getAnalyze(url.Values{"expr": {"E(x,y) & S(x)"}, "vars": {"x,y"}})
	if code != http.StatusOK {
		t.Fatalf("analyze formula failed: %v", out)
	}
	mc, ok := out["modelCount"].(string)
	if !ok || mc == "" || mc == "0" {
		t.Fatalf("modelCount = %v, want positive count", out["modelCount"])
	}
	fact, ok := out["factorization"].(map[string]any)
	if !ok {
		t.Fatalf("factorization missing: %v", out)
	}
	if fact["arity"] != float64(2) {
		t.Errorf("factorization arity = %v, want 2", fact["arity"])
	}

	// The second identical request hits the compiled-query cache.
	out, _ = getAnalyze(url.Values{"expr": {edgeSum}})
	if out["cached"] != true {
		t.Errorf("repeated analyze reported cached=%v, want true", out["cached"])
	}
	if got := srv.Stats().Analyzes.Load(); got != 3 {
		t.Errorf("Analyzes counter = %d, want 3", got)
	}

	// Errors keep the taxonomy: a parse failure is a 400-class response.
	out, code = getAnalyze(url.Values{"expr": {"sum x . [E(x,"}})
	if code == http.StatusOK {
		t.Fatalf("malformed query analysed successfully: %v", out)
	}
}
