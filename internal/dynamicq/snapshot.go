package dynamicq

import (
	"fmt"

	"repro/internal/circuit"
	"repro/internal/structure"
)

// Snapshot is a read handle on a Query pinned at one committed epoch: point
// queries and the closed value answer as of that commit no matter how many
// weight or tuple updates the writer applies afterwards.  Point queries run
// on a private overlay of the pinned circuit state, so a snapshot never
// blocks the writer and the writer never disturbs a snapshot.
//
// A Snapshot is intended for a single reader goroutine; take one per
// goroutine.  Release it when done — an unreleased snapshot pins undo
// history whose memory grows with every write.
type Snapshot[T any] struct {
	q     *Query[T]
	snap  *circuit.DynSnapshot[T]
	point []circuit.InputChange[T]
}

// Snapshot pins the current committed epoch of the query's dynamic evaluator
// and returns a read handle for it.  Taking a snapshot is O(1) and safe to
// call concurrently with the writer and with other snapshots.
func (q *Query[T]) Snapshot() *Snapshot[T] {
	return &Snapshot[T]{q: q, snap: q.dyn.Snapshot()}
}

// Epoch returns the committed epoch of the query's dynamic evaluator, i.e.
// the number of committed mutations so far.
func (q *Query[T]) Epoch() uint64 { return q.dyn.Epoch() }

// RetainedUndoBytes reports the memory currently held by undo history for
// outstanding snapshots.  It is zero whenever no snapshot is pinned.
func (q *Query[T]) RetainedUndoBytes() int64 { return q.dyn.RetainedUndoBytes() }

// Epoch returns the committed epoch this snapshot is pinned at.
func (s *Snapshot[T]) Epoch() uint64 { return s.snap.Epoch() }

// Release unpins the snapshot, letting the writer reclaim undo history it no
// longer needs.  Release is idempotent.
func (s *Snapshot[T]) Release() { s.snap.Release() }

// Value returns the value of the query at the given tuple of the free
// variables, as of the pinned epoch.  The free-variable toggles of the
// Theorem 8 reduction run on a private overlay, so concurrent writer commits
// and other snapshots are never observed and never disturbed.
func (s *Snapshot[T]) Value(args ...structure.Element) (T, error) {
	var zero T
	if len(args) != len(s.q.free) {
		return zero, fmt.Errorf("dynamicq: query has %d free variables, got %d arguments", len(s.q.free), len(args))
	}
	if len(args) == 0 {
		return s.snap.Value(), nil
	}
	s.point = s.point[:0]
	for i, a := range args {
		s.point = append(s.point, circuit.InputChange[T]{Key: s.q.fvKey(i, a), Value: s.q.s.One()})
	}
	return s.snap.EvalWith(s.point), nil
}

// ValueClosed returns the value of a closed query (no free variables) at the
// pinned epoch.
func (s *Snapshot[T]) ValueClosed() (T, error) {
	var zero T
	if len(s.q.free) != 0 {
		return zero, fmt.Errorf("dynamicq: query has free variables %v; use Value", s.q.free)
	}
	return s.snap.Value(), nil
}
