package enumerate

import (
	"math/rand"
	"testing"

	"repro/internal/circuit"
	"repro/internal/semiring"
	"repro/internal/structure"
)

// randomEnumCircuit builds a random circuit over nInputs unary weight inputs
// mixing additions, multiplications and small permanent gates — the shapes
// the enumerator maintains emptiness bookkeeping for.
func randomEnumCircuit(r *rand.Rand, nInputs, extraGates int) *circuit.Circuit {
	c := circuit.NewBuilder()
	gates := make([]int, 0, nInputs+extraGates)
	for i := 0; i < nInputs; i++ {
		gates = append(gates, c.Input(key("w", i)))
	}
	pick := func() int { return gates[r.Intn(len(gates))] }
	for i := 0; i < extraGates; i++ {
		switch r.Intn(4) {
		case 0:
			gates = append(gates, c.Add(pick(), pick(), pick()))
		case 1:
			gates = append(gates, c.Mul(pick(), pick()))
		case 2:
			gates = append(gates, c.ConstInt(int64(r.Intn(3))))
		default:
			rows := r.Intn(2) + 1
			cols := r.Intn(3) + rows
			var entries []circuit.PermEntry
			for row := 0; row < rows; row++ {
				for col := 0; col < cols; col++ {
					if r.Intn(3) > 0 {
						entries = append(entries, circuit.PermEntry{Row: row, Col: col, Gate: pick()})
					}
				}
			}
			gates = append(gates, c.Perm(rows, cols, entries))
		}
	}
	c.SetOutput(gates[len(gates)-1])
	return c
}

// TestEnumeratorEmptinessMatchesLegacyBoolean is the Program-equivalence
// property for the enumeration engine: on random circuits under random
// update sequences, every gate's emptiness flag must equal the legacy-layout
// boolean evaluation of "this gate's free-semiring value is non-zero"
// (emptiness is the complement of the boolean semantics, with the boolean
// permanent deciding matchability exactly as Lemma 39 does).
func TestEnumeratorEmptinessMatchesLegacyBoolean(t *testing.T) {
	r := rand.New(rand.NewSource(59))
	for round := 0; round < 25; round++ {
		nInputs := r.Intn(6) + 2
		c := randomEnumCircuit(r, nInputs, r.Intn(14)+4)
		present := make([]bool, nInputs)
		for i := range present {
			present[i] = r.Intn(2) == 0
		}
		inputs := func(k structure.WeightKey) Value {
			tp := structure.ParseTupleKey(k.Tuple)
			if k.Weight != "w" || len(tp) != 1 || tp[0] < 0 || tp[0] >= nInputs {
				return Zero()
			}
			return Bool(present[tp[0]])
		}
		boolVal := func(k structure.WeightKey) (bool, bool) {
			v := inputs(k)
			return !v.Empty(), true
		}

		// Sequential and parallel preprocessing agree with each other and
		// with the legacy layout, then stay in agreement across updates.
		seq := New(c, inputs)
		par := NewProgramParallel(c.Program(), inputs, 3)
		check := func(step int) {
			t.Helper()
			want := circuit.LegacyEvaluateAll[bool](c, semiring.Bool, boolVal)
			for id := range want {
				if seq.GateEmpty(id) != !want[id] {
					t.Fatalf("round %d step %d: gate %d sequential emptiness %v, legacy boolean %v",
						round, step, id, seq.GateEmpty(id), want[id])
				}
				if par.GateEmpty(id) != !want[id] {
					t.Fatalf("round %d step %d: gate %d parallel emptiness %v, legacy boolean %v",
						round, step, id, par.GateEmpty(id), want[id])
				}
			}
		}
		check(-1)
		for step := 0; step < 10; step++ {
			if r.Intn(2) == 0 {
				i := r.Intn(nInputs)
				present[i] = !present[i]
				seq.SetInput(key("w", i), Bool(present[i]))
				par.SetInput(key("w", i), Bool(present[i]))
			} else {
				size := r.Intn(nInputs) + 1
				assigns := make([]InputAssignment, size)
				for j := range assigns {
					i := r.Intn(nInputs)
					present[i] = r.Intn(2) == 0
					assigns[j] = InputAssignment{Key: key("w", i), Value: Bool(present[i])}
				}
				seq.SetInputs(assigns)
				par.SetInputs(assigns)
			}
			check(step)
		}
	}
}
