package agg

import (
	"context"
	"errors"
	"fmt"
	"strings"

	"repro/internal/parser"
	"repro/internal/qe"
)

// The error taxonomy of the facade.  Every error returned by this package
// matches exactly one of these sentinels under errors.Is, and wraps position
// and query metadata reachable with errors.As(&aggErr) for *agg.Error.
// Callers branch on kinds, not on message substrings; the aggserve HTTP
// layer maps kinds to status codes and machine-readable JSON error codes.
var (
	// ErrParse marks query text that is not valid surface syntax (neither a
	// weighted expression nor a first-order formula).  The *Error carries the
	// byte offset of the failure.
	ErrParse = errors.New("parse error")
	// ErrCompile marks queries that parse but cannot be compiled against the
	// database (unknown symbols, arity mismatches, MaxVars overruns, ...).
	ErrCompile = errors.New("compile error")
	// ErrUnknownSemiring marks a semiring name absent from the registry.
	ErrUnknownSemiring = errors.New("unknown semiring")
	// ErrUnknownDatabase marks a database name that is not mounted (used by
	// multi-database frontends such as aggserve).
	ErrUnknownDatabase = errors.New("unknown database")
	// ErrUnknownSession marks an operation on a session name that does not
	// exist.
	ErrUnknownSession = errors.New("unknown session")
	// ErrSessionExists marks an attempt to create a session under a name
	// that is already taken.
	ErrSessionExists = errors.New("session already exists")
	// ErrSessionBusy marks a session operation attempted while another
	// operation holds the session.  Sessions fail fast instead of queueing;
	// callers that want queueing serialise with their own lock.
	ErrSessionBusy = errors.New("session busy")
	// ErrSessionClosed marks an operation on a closed session.
	ErrSessionClosed = errors.New("session closed")
	// ErrArgument marks malformed request arguments: wrong point-query
	// arity, answer variables not covering the formula's free variables, a
	// missing expression, an invalid limit, ...
	ErrArgument = errors.New("invalid argument")
	// ErrUpdate marks an update that names no (or both) weight and relation,
	// an unknown symbol, a non-dynamic relation, or a Gaifman-violating
	// insertion.
	ErrUpdate = errors.New("invalid update")
	// ErrNotEnumerable marks Enumerate on a prepared query that is a
	// weighted expression rather than a first-order formula.
	ErrNotEnumerable = errors.New("query is not enumerable")
)

// Error is the concrete error type of the facade: a kind from the taxonomy
// above plus the query text and, for parse errors, the byte offset at which
// the failure was detected.  It matches its Kind (and its cause) under
// errors.Is, so both
//
//	errors.Is(err, agg.ErrParse)
//
// and
//
//	var aggErr *agg.Error
//	errors.As(err, &aggErr) // aggErr.Pos, aggErr.Query
//
// work through arbitrary wrapping.
type Error struct {
	// Kind is the taxonomy sentinel this error matches.
	Kind error
	// Query is the query text the error refers to ("" when not applicable).
	Query string
	// Pos is the byte offset into Query at which the error was detected, or
	// -1 when unknown.
	Pos int
	// Err is the underlying cause (may be nil).
	Err error
}

func (e *Error) Error() string {
	if e.Err == nil {
		return e.Kind.Error()
	}
	msg := e.Err.Error()
	// Make the kind visible unless the cause already names it.
	if !strings.Contains(msg, e.Kind.Error()) {
		msg = e.Kind.Error() + ": " + msg
	}
	return msg
}

// Unwrap exposes both the kind and the cause, so errors.Is matches either.
func (e *Error) Unwrap() []error {
	if e.Err == nil {
		return []error{e.Kind}
	}
	return []error{e.Kind, e.Err}
}

// newError wraps err under the given taxonomy kind, extracting the byte
// offset when the cause is a parser error or a quantifier-elimination
// fragment rejection (whose position is the offending quantifier).
func newError(kind error, query string, err error) *Error {
	pos := -1
	var perr *parser.Error
	var qerr *qe.Error
	switch {
	case errors.As(err, &perr):
		pos = perr.Pos
	case errors.As(err, &qerr):
		pos = quantifierPos(query, qerr.Var)
	}
	return &Error{Kind: kind, Query: query, Pos: pos, Err: err}
}

// quantifierPos locates the surface-syntax quantifier binding v in the query
// text, so fragment rejections from quantifier elimination point at the
// quantifier they refer to; -1 when it cannot be located.
func quantifierPos(query, v string) int {
	if v == "" {
		return -1
	}
	for _, kw := range []string{"exists", "forall"} {
		from := 0
		for {
			i := strings.Index(query[from:], kw)
			if i < 0 {
				break
			}
			i += from
			rest := query[i+len(kw):]
			if dot := strings.IndexByte(rest, '.'); dot >= 0 {
				binders := strings.FieldsFunc(rest[:dot], func(r rune) bool {
					return r == ',' || r == ' ' || r == '\t' || r == '\n'
				})
				for _, b := range binders {
					if b == v {
						return i
					}
				}
			}
			from = i + len(kw)
		}
	}
	return -1
}

// errorf wraps a freshly formatted cause under the given kind.
func errorf(kind error, query, format string, args ...any) *Error {
	return &Error{Kind: kind, Query: query, Pos: -1, Err: fmt.Errorf(format, args...)}
}

// ErrorCode returns a stable machine-readable code for an error from this
// package ("parse", "compile", "unknown_semiring", ...), "canceled" for
// context cancellation, and "error" for anything else.  Transports embed it
// in their wire format; aggserve serves it as the "code" field of JSON error
// bodies.
func ErrorCode(err error) string {
	switch {
	case err == nil:
		return ""
	case errors.Is(err, ErrParse):
		return "parse"
	case errors.Is(err, ErrCompile):
		return "compile"
	case errors.Is(err, ErrUnknownSemiring):
		return "unknown_semiring"
	case errors.Is(err, ErrUnknownDatabase):
		return "unknown_database"
	case errors.Is(err, ErrUnknownSession):
		return "unknown_session"
	case errors.Is(err, ErrSessionExists):
		return "session_exists"
	case errors.Is(err, ErrSessionBusy):
		return "session_busy"
	case errors.Is(err, ErrSessionClosed):
		return "session_closed"
	case errors.Is(err, ErrArgument):
		return "invalid_argument"
	case errors.Is(err, ErrUpdate):
		return "invalid_update"
	case errors.Is(err, ErrNotEnumerable):
		return "not_enumerable"
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return "canceled"
	default:
		return "error"
	}
}
