// Additional semiring instances beyond the core set in semiring.go.
//
// These are not required by the paper's theorems but exercise the
// "plug in any commutative semiring" universality of the compiled circuits
// (Theorem 6): probabilistic inference (Viterbi, log-space), fuzzy logic,
// parity counting, k-best optimisation, counting tropical optimisation,
// bottleneck optimisation, and products of semirings.
package semiring

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// ---------------------------------------------------------------------------
// Viterbi semiring ([0,1], max, ·)
// ---------------------------------------------------------------------------

// MaxTimesSemiring is the Viterbi semiring ([0,1], max, ·) on float64.  The
// value of a weighted query is the probability of the most probable answer
// when weights are independent probabilities.
type MaxTimesSemiring struct{}

// MaxTimes is the canonical MaxTimesSemiring instance.
var MaxTimes = MaxTimesSemiring{}

func (MaxTimesSemiring) Zero() float64            { return 0 }
func (MaxTimesSemiring) One() float64             { return 1 }
func (MaxTimesSemiring) Add(a, b float64) float64 { return math.Max(a, b) }
func (MaxTimesSemiring) Mul(a, b float64) float64 { return a * b }
func (MaxTimesSemiring) Equal(a, b float64) bool  { return a == b }
func (MaxTimesSemiring) Format(a float64) string  { return fmt.Sprintf("%g", a) }
func (MaxTimesSemiring) Less(a, b float64) bool   { return a < b }

// ---------------------------------------------------------------------------
// Fuzzy (Gödel) semiring ([0,1], max, min)
// ---------------------------------------------------------------------------

// FuzzySemiring is the Gödel fuzzy semiring ([0,1], max, min) on float64.
// Conjunction is the weakest link; disjunction is the strongest alternative.
type FuzzySemiring struct{}

// Fuzzy is the canonical FuzzySemiring instance.
var Fuzzy = FuzzySemiring{}

func (FuzzySemiring) Zero() float64            { return 0 }
func (FuzzySemiring) One() float64             { return 1 }
func (FuzzySemiring) Add(a, b float64) float64 { return math.Max(a, b) }
func (FuzzySemiring) Mul(a, b float64) float64 { return math.Min(a, b) }
func (FuzzySemiring) Equal(a, b float64) bool  { return a == b }
func (FuzzySemiring) Format(a float64) string  { return fmt.Sprintf("%g", a) }
func (FuzzySemiring) Less(a, b float64) bool   { return a < b }

// ---------------------------------------------------------------------------
// Łukasiewicz semiring ([0,1], max, a⊗b = max(0, a+b−1))
// ---------------------------------------------------------------------------

// LukasiewiczSemiring is the Łukasiewicz fuzzy semiring ([0,1], max, ⊗)
// with a ⊗ b = max(0, a + b − 1).
type LukasiewiczSemiring struct{}

// Lukasiewicz is the canonical LukasiewiczSemiring instance.
var Lukasiewicz = LukasiewiczSemiring{}

func (LukasiewiczSemiring) Zero() float64            { return 0 }
func (LukasiewiczSemiring) One() float64             { return 1 }
func (LukasiewiczSemiring) Add(a, b float64) float64 { return math.Max(a, b) }
func (LukasiewiczSemiring) Mul(a, b float64) float64 { return math.Max(0, a+b-1) }
func (LukasiewiczSemiring) Equal(a, b float64) bool  { return a == b }
func (LukasiewiczSemiring) Format(a float64) string  { return fmt.Sprintf("%g", a) }
func (LukasiewiczSemiring) Less(a, b float64) bool   { return a < b }

// ---------------------------------------------------------------------------
// GF(2): the two-element field ({0,1}, xor, and)
// ---------------------------------------------------------------------------

// GF2Field is the two-element field ({0,1}, ⊕, ∧).  Evaluating a counting
// query in GF(2) yields the parity of the number of answers, the building
// block of FO+MOD-style queries.
type GF2Field struct{}

// GF2 is the canonical GF2Field instance.
var GF2 = GF2Field{}

func (GF2Field) Zero() bool           { return false }
func (GF2Field) One() bool            { return true }
func (GF2Field) Add(a, b bool) bool   { return a != b }
func (GF2Field) Mul(a, b bool) bool   { return a && b }
func (GF2Field) Neg(a bool) bool      { return a }
func (GF2Field) Equal(a, b bool) bool { return a == b }
func (GF2Field) Format(a bool) string {
	if a {
		return "1"
	}
	return "0"
}
func (GF2Field) Elements() []bool { return []bool{false, true} }

// ---------------------------------------------------------------------------
// Log semiring (ℝ ∪ {−∞}, logaddexp, +)
// ---------------------------------------------------------------------------

// LogSemiring is the log-space probability semiring (ℝ ∪ {−∞}, ⊕, +) with
// a ⊕ b = log(exp a + exp b).  It computes sums of products of probabilities
// without underflow.  Equality is approximate (absolute tolerance 1e-9)
// because log-add-exp is not exactly associative in floating point.
type LogSemiring struct{}

// Log is the canonical LogSemiring instance.
var Log = LogSemiring{}

func (LogSemiring) Zero() float64 { return math.Inf(-1) }
func (LogSemiring) One() float64  { return 0 }
func (LogSemiring) Add(a, b float64) float64 {
	if math.IsInf(a, -1) {
		return b
	}
	if math.IsInf(b, -1) {
		return a
	}
	if a < b {
		a, b = b, a
	}
	return a + math.Log1p(math.Exp(b-a))
}
func (LogSemiring) Mul(a, b float64) float64 {
	if math.IsInf(a, -1) || math.IsInf(b, -1) {
		return math.Inf(-1)
	}
	return a + b
}
func (LogSemiring) Equal(a, b float64) bool {
	if math.IsInf(a, -1) || math.IsInf(b, -1) {
		return math.IsInf(a, -1) && math.IsInf(b, -1)
	}
	return math.Abs(a-b) <= 1e-9
}
func (LogSemiring) Format(a float64) string { return fmt.Sprintf("%g", a) }
func (LogSemiring) Less(a, b float64) bool  { return a < b }

// ---------------------------------------------------------------------------
// Bottleneck semiring (ℝ ∪ {±∞}, max, min)
// ---------------------------------------------------------------------------

// BottleneckSemiring is the widest-path semiring (ℝ ∪ {±∞}, max, min) on
// float64: the value of a query is the best (largest) over answers of the
// smallest weight appearing in the answer.
type BottleneckSemiring struct{}

// Bottleneck is the canonical BottleneckSemiring instance.
var Bottleneck = BottleneckSemiring{}

func (BottleneckSemiring) Zero() float64            { return math.Inf(-1) }
func (BottleneckSemiring) One() float64             { return math.Inf(1) }
func (BottleneckSemiring) Add(a, b float64) float64 { return math.Max(a, b) }
func (BottleneckSemiring) Mul(a, b float64) float64 { return math.Min(a, b) }
func (BottleneckSemiring) Equal(a, b float64) bool  { return a == b }
func (BottleneckSemiring) Format(a float64) string  { return fmt.Sprintf("%g", a) }
func (BottleneckSemiring) Less(a, b float64) bool   { return a < b }

// ---------------------------------------------------------------------------
// Counting tropical semiring: min cost together with its multiplicity
// ---------------------------------------------------------------------------

// CostCount is an element of the counting tropical semiring: the minimum
// cost of an answer together with the number of answers attaining it.
type CostCount struct {
	// Cost is the minimum cost; the infinite cost is the additive zero.
	Cost Ext
	// Count is the number of monomials attaining Cost.  It is 0 exactly
	// when Cost is infinite.
	Count int64
}

// CC returns the counting-tropical element with finite cost c achieved k
// times.
func CC(c, k int64) CostCount { return CostCount{Cost: Fin(c), Count: k} }

// CountingTropicalSemiring is the semiring whose elements are pairs
// (minimum cost, number of ways to achieve it).  Addition keeps the smaller
// cost and adds counts on ties; multiplication adds costs and multiplies
// counts.  Evaluating the weighted triangle query in this semiring yields
// both the cheapest triangle cost and how many triangles attain it.
type CountingTropicalSemiring struct{}

// CountingTropical is the canonical CountingTropicalSemiring instance.
var CountingTropical = CountingTropicalSemiring{}

func (CountingTropicalSemiring) Zero() CostCount { return CostCount{Cost: Infinite} }
func (CountingTropicalSemiring) One() CostCount  { return CostCount{Cost: Fin(0), Count: 1} }

func (CountingTropicalSemiring) Add(a, b CostCount) CostCount {
	switch {
	case a.Cost.Inf:
		return b
	case b.Cost.Inf:
		return a
	case a.Cost.V < b.Cost.V:
		return a
	case b.Cost.V < a.Cost.V:
		return b
	default:
		return CostCount{Cost: a.Cost, Count: a.Count + b.Count}
	}
}

func (CountingTropicalSemiring) Mul(a, b CostCount) CostCount {
	if a.Cost.Inf || b.Cost.Inf {
		return CostCount{Cost: Infinite}
	}
	return CostCount{Cost: Fin(a.Cost.V + b.Cost.V), Count: a.Count * b.Count}
}

func (CountingTropicalSemiring) Equal(a, b CostCount) bool {
	if a.Cost.Inf || b.Cost.Inf {
		return a.Cost.Inf == b.Cost.Inf
	}
	return a.Cost.V == b.Cost.V && a.Count == b.Count
}

func (CountingTropicalSemiring) Format(a CostCount) string {
	if a.Cost.Inf {
		return "+inf"
	}
	return fmt.Sprintf("%d×%d", a.Cost.V, a.Count)
}

// ---------------------------------------------------------------------------
// k-best tropical semiring: the k smallest costs, with multiplicity
// ---------------------------------------------------------------------------

// KBest is the k-best tropical semiring.  An element is the multiset of the
// K smallest costs of the monomials summed so far, represented as a sorted
// slice of at most K values.  Addition merges two multisets and keeps the K
// smallest; multiplication forms all pairwise sums and keeps the K smallest.
// Evaluating a weighted query in this semiring yields the costs of the K
// cheapest answers.
type KBest struct {
	// K is the number of costs to retain; must be ≥ 1.
	K int
}

// NewKBest returns the k-best tropical semiring retaining k costs.
func NewKBest(k int) KBest {
	if k < 1 {
		panic("semiring: KBest requires k ≥ 1")
	}
	return KBest{K: k}
}

// Costs returns a k-best element holding the given finite costs (at most K
// of the smallest are retained).
func (s KBest) Costs(cs ...int64) []int64 {
	out := append([]int64(nil), cs...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	if len(out) > s.K {
		out = out[:s.K]
	}
	return out
}

func (s KBest) Zero() []int64 { return nil }
func (s KBest) One() []int64  { return []int64{0} }

func (s KBest) Add(a, b []int64) []int64 {
	out := make([]int64, 0, min(len(a)+len(b), s.K))
	i, j := 0, 0
	for len(out) < s.K && (i < len(a) || j < len(b)) {
		switch {
		case i == len(a):
			out = append(out, b[j])
			j++
		case j == len(b):
			out = append(out, a[i])
			i++
		case a[i] <= b[j]:
			out = append(out, a[i])
			i++
		default:
			out = append(out, b[j])
			j++
		}
	}
	return out
}

func (s KBest) Mul(a, b []int64) []int64 {
	if len(a) == 0 || len(b) == 0 {
		return nil
	}
	sums := make([]int64, 0, len(a)*len(b))
	for _, x := range a {
		for _, y := range b {
			sums = append(sums, x+y)
		}
	}
	sort.Slice(sums, func(i, j int) bool { return sums[i] < sums[j] })
	if len(sums) > s.K {
		sums = sums[:s.K]
	}
	return sums
}

func (s KBest) Equal(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func (s KBest) Format(a []int64) string {
	if len(a) == 0 {
		return "{}"
	}
	parts := make([]string, len(a))
	for i, v := range a {
		parts[i] = fmt.Sprintf("%d", v)
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// ---------------------------------------------------------------------------
// Product of two semirings
// ---------------------------------------------------------------------------

// Pair is an element of the product of two semirings.
type Pair[A, B any] struct {
	// First is the component in the first factor.
	First A
	// Second is the component in the second factor.
	Second B
}

// ProductSemiring is the componentwise product of two commutative semirings.
// A common use is Nat × Nat for computing a sum together with a count (and
// hence an average) in a single evaluation pass.
type ProductSemiring[A, B any] struct {
	// SA is the first factor.
	SA Semiring[A]
	// SB is the second factor.
	SB Semiring[B]
}

// NewProduct returns the product semiring of sa and sb.
func NewProduct[A, B any](sa Semiring[A], sb Semiring[B]) ProductSemiring[A, B] {
	return ProductSemiring[A, B]{SA: sa, SB: sb}
}

func (s ProductSemiring[A, B]) Zero() Pair[A, B] {
	return Pair[A, B]{First: s.SA.Zero(), Second: s.SB.Zero()}
}

func (s ProductSemiring[A, B]) One() Pair[A, B] {
	return Pair[A, B]{First: s.SA.One(), Second: s.SB.One()}
}

func (s ProductSemiring[A, B]) Add(a, b Pair[A, B]) Pair[A, B] {
	return Pair[A, B]{First: s.SA.Add(a.First, b.First), Second: s.SB.Add(a.Second, b.Second)}
}

func (s ProductSemiring[A, B]) Mul(a, b Pair[A, B]) Pair[A, B] {
	return Pair[A, B]{First: s.SA.Mul(a.First, b.First), Second: s.SB.Mul(a.Second, b.Second)}
}

func (s ProductSemiring[A, B]) Equal(a, b Pair[A, B]) bool {
	return s.SA.Equal(a.First, b.First) && s.SB.Equal(a.Second, b.Second)
}

func (s ProductSemiring[A, B]) Format(a Pair[A, B]) string {
	return "(" + s.SA.Format(a.First) + ", " + s.SB.Format(a.Second) + ")"
}
