package bench

import (
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tab := &Table{
		ID:     "EX",
		Title:  "example",
		Claim:  "a claim",
		Header: []string{"a", "b"},
		Rows:   [][]string{{"1", "2"}, {"3", "4"}},
		Notes:  []string{"a note"},
	}
	text := tab.String()
	if !strings.Contains(text, "EX") || !strings.Contains(text, "a note") || !strings.Contains(text, "3") {
		t.Errorf("plain rendering missing content:\n%s", text)
	}
	md := tab.Markdown()
	if !strings.Contains(md, "| a | b |") || !strings.Contains(md, "| 1 | 2 |") {
		t.Errorf("markdown rendering missing content:\n%s", md)
	}
}

func TestRegistryCoversAllExperiments(t *testing.T) {
	reg := Registry(true)
	if len(reg) != 10 {
		t.Fatalf("expected 10 experiments, got %d", len(reg))
	}
	seen := map[string]bool{}
	for _, e := range reg {
		if seen[e.ID] {
			t.Errorf("duplicate experiment id %s", e.ID)
		}
		seen[e.ID] = true
	}
}

// TestSmallExperimentsRun executes a few experiments at tiny sizes to make
// sure the harness itself is sound (values cross-checked inside panics on
// mismatch).
func TestSmallExperimentsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke test skipped in -short mode")
	}
	small := []int{300, 600}
	tables := []*Table{
		E1CircuitCompilation(small),
		E2WeightedTriangles(small, 600),
		E3Permanent([]int{500, 1000}),
		E4DynamicUpdates(small),
		E5Enumeration(small),
		E9Coloring([]int{300}),
		E10ProvenancePermanent([]int{500}),
	}
	for _, tab := range tables {
		if len(tab.Rows) == 0 {
			t.Errorf("experiment %s produced no rows", tab.ID)
		}
		if tab.String() == "" || tab.Markdown() == "" {
			t.Errorf("experiment %s produced empty rendering", tab.ID)
		}
	}
}
