// Command aggserve is the long-lived query-serving daemon: it loads one or
// more databases at startup, compiles queries on demand through the public
// repro/agg facade into an LRU cache of compiled circuits, and serves
// concurrent clients over HTTP/JSON — semiring evaluation, point queries,
// dynamic-update sessions and constant-delay enumeration all amortise one
// compilation (Theorem 6) across many requests.  Client disconnects cancel
// the work they were waiting for.
//
// Usage:
//
//	aggserve -kind grid -n 4096 -listen :8080
//	aggserve -db traffic=roads.txt -db social=graph.txt
//	agggen -kind bounded-degree -n 10000 | aggserve -stdin
//	aggserve -log-format json -log-level debug -slow-query 100ms -pprof-addr localhost:6060
//
//	curl -X POST localhost:8080/query \
//	  -d '{"expr":"sum x, y . [E(x,y)] * w(x,y)","semiring":"natural"}'
//	curl -X POST localhost:8080/batch \
//	  -d '{"session":"s","updates":[{"weight":"w","tuple":[0,1],"value":7}]}'
//	curl localhost:8080/stats
//	curl localhost:8080/metrics
//
// See the README for the full endpoint reference and metrics catalogue.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/agg"
	"repro/internal/server"
)

// dbFlags collects repeated -db name=path mounts.
type dbFlags []string

func (d *dbFlags) String() string { return strings.Join(*d, ",") }

func (d *dbFlags) Set(v string) error {
	if !strings.Contains(v, "=") {
		return fmt.Errorf("-db expects name=path, got %q", v)
	}
	*d = append(*d, v)
	return nil
}

// newLogger builds the process logger from the -log-format/-log-level flags.
// Operator output and per-request access logs share this one format.
func newLogger(format, level string) (*slog.Logger, error) {
	var lvl slog.Level
	if err := lvl.UnmarshalText([]byte(level)); err != nil {
		return nil, fmt.Errorf("-log-level %q: %w", level, err)
	}
	opts := &slog.HandlerOptions{Level: lvl}
	switch format {
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, opts)), nil
	}
	return nil, fmt.Errorf("-log-format %q: want text or json", format)
}

func main() {
	var dbs dbFlags
	listen := flag.String("listen", ":8080", "address to serve HTTP on")
	flag.Var(&dbs, "db", "mount a database: name=path (dbio format, repeatable)")
	stdin := flag.Bool("stdin", false, "mount the database read from stdin as \"default\"")
	kind := flag.String("kind", "grid", "generated workload kind for the default database (used when no -db/-stdin)")
	n := flag.Int("n", 2000, "generated database size")
	seed := flag.Int64("seed", 1, "random seed for the generated database")
	workers := flag.Int("workers", 0, "worker goroutines per circuit evaluation (0 = GOMAXPROCS)")
	cacheSize := flag.Int("cache", 128, "maximum number of cached compiled queries")
	maxVars := flag.Int("maxvars", 0, "compiler MaxVars bound (0 = default)")
	logFormat := flag.String("log-format", "text", "log output format: text or json")
	logLevel := flag.String("log-level", "info", "minimum log level: debug, info, warn, error (debug enables per-request access logs)")
	slowQuery := flag.Duration("slow-query", 0, "log requests slower than this threshold at warn level (0 disables)")
	pprofAddr := flag.String("pprof-addr", "", "serve net/http/pprof on this address (e.g. localhost:6060; empty disables)")
	flag.Parse()

	log, err := newLogger(*logFormat, *logLevel)
	if err != nil {
		fmt.Fprintf(os.Stderr, "aggserve: %v\n", err)
		os.Exit(2)
	}

	srv := server.New(server.Options{
		CacheSize: *cacheSize,
		Workers:   *workers,
		MaxVars:   *maxVars,
		Logger:    log,
		SlowQuery: *slowQuery,
	})

	if len(dbs) > 0 && *stdin {
		log.Error("-db and -stdin are mutually exclusive")
		os.Exit(2)
	}
	switch {
	case len(dbs) > 0:
		for _, spec := range dbs {
			name, path, _ := strings.Cut(spec, "=")
			db, err := agg.ReadDatabaseFile(path)
			if err != nil {
				log.Error("loading database", "spec", spec, "err", err)
				os.Exit(1)
			}
			srv.MountDatabaseValue(name, db)
			log.Info("mounted database", "name", name, "n", db.Elements(), "tuples", db.TupleCount())
		}
	default:
		db, err := agg.Load(agg.Source{Stdin: *stdin, Kind: *kind, N: *n, Seed: *seed})
		if err != nil {
			log.Error("loading database", "err", err)
			os.Exit(1)
		}
		srv.MountDatabaseValue("default", db)
		log.Info("mounted database", "name", "default", "n", db.Elements(), "tuples", db.TupleCount())
	}

	// Opt-in pprof on its own listener, so profiling stays off the serving
	// address (and off the open internet) unless explicitly bound.
	if *pprofAddr != "" {
		pprofMux := http.NewServeMux()
		pprofMux.HandleFunc("/debug/pprof/", pprof.Index)
		pprofMux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		pprofMux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		pprofMux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		pprofMux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			if err := http.ListenAndServe(*pprofAddr, pprofMux); err != nil {
				log.Error("pprof listener", "addr", *pprofAddr, "err", err)
			}
		}()
		log.Info("pprof listening", "addr", *pprofAddr)
	}

	httpSrv := &http.Server{Addr: *listen, Handler: srv.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	goVersion, revision := server.BuildInfo()
	log.Info("aggserve listening",
		"addr", *listen,
		"semirings", agg.SemiringNames(),
		"goVersion", goVersion,
		"revision", revision)

	select {
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Error("serve", "err", err)
			os.Exit(1)
		}
	case <-ctx.Done():
		log.Info("shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(shutdownCtx); err != nil {
			log.Error("shutdown", "err", err)
			os.Exit(1)
		}
	}
}
