// Evaluation over the frozen Program form: the same semantics as the gate
// walk in circuit.go, but iterating the CSR arenas with index arithmetic —
// no per-gate slice headers to chase and no big.Int arithmetic for
// constants that fit int64.
package circuit

import (
	"context"
	"runtime"
	"sync"

	"repro/internal/semiring"
)

// EvaluateProgram computes the value of the output gate in the semiring s
// under the valuation v, visiting every gate once in id (topological) order.
func EvaluateProgram[T any](p *Program, s semiring.Semiring[T], v Valuation[T]) T {
	if p.output < 0 {
		panic("circuit: no output gate set")
	}
	vals := EvaluateAllProgram(p, s, v)
	return vals[p.output]
}

// EvaluateAllProgram computes the value of every gate, returning the slice
// indexed by gate id.
func EvaluateAllProgram[T any](p *Program, s semiring.Semiring[T], v Valuation[T]) []T {
	vals := make([]T, p.numGates)
	var sc permScratch[T]
	for id := 0; id < p.numGates; id++ {
		evaluateProgramGate(p, s, v, id, vals, &sc)
	}
	return vals
}

// permScratch holds the reusable buffers of the permanent-gate column
// dynamic program, so that evaluating many permanent gates in one pass
// performs no per-gate heap allocations.
type permScratch[T any] struct {
	col   []T // current column, indexed by row
	state []T // DP state over row subsets
	next  []T
}

func (sc *permScratch[T]) ensure(rows, size int) {
	if cap(sc.col) < rows {
		sc.col = make([]T, rows)
	}
	if cap(sc.state) < size {
		sc.state = make([]T, size)
		sc.next = make([]T, size)
	}
}

// evaluateProgramGate computes the value of a single gate into vals[id].
// All children must already be present in vals; distinct gate ids may be
// evaluated concurrently as long as that invariant holds and each goroutine
// owns its scratch.
func evaluateProgramGate[T any](p *Program, s semiring.Semiring[T], v Valuation[T], id int, vals []T, sc *permScratch[T]) {
	switch Kind(p.kind[id]) {
	case KindInput:
		if x, ok := v(p.inputKeys[p.arg[id]]); ok {
			vals[id] = x
		} else {
			vals[id] = s.Zero()
		}
	case KindConst:
		ci := p.arg[id]
		if b := p.constBig[ci]; b != nil {
			vals[id] = semiring.ScalarMulBig(s, b, s.One())
		} else {
			vals[id] = semiring.ScalarMul(s, p.constSmall[ci], s.One())
		}
	case KindAdd:
		acc := s.Zero()
		for _, ch := range p.children[p.childStart[id]:p.childStart[id+1]] {
			acc = s.Add(acc, vals[ch])
		}
		vals[id] = acc
	case KindMul:
		acc := s.One()
		for _, ch := range p.children[p.childStart[id]:p.childStart[id+1]] {
			acc = s.Mul(acc, vals[ch])
		}
		vals[id] = acc
	case KindPerm:
		vals[id] = evaluateProgramPerm(p, s, id, vals, sc)
	}
}

// evaluateProgramPerm evaluates a permanent gate with the column dynamic
// program of perm.PermColumns, run directly over the column-major entry
// arena with the caller's scratch buffers: no column matrix is materialised
// and nothing is allocated.
func evaluateProgramPerm[T any](p *Program, s semiring.Semiring[T], id int, vals []T, sc *permScratch[T]) T {
	pm := p.perms[p.arg[id]]
	rows, nCols := int(pm.rows), int(pm.cols)
	if rows == 0 {
		return s.One()
	}
	size := 1 << uint(rows)
	sc.ensure(rows, size)
	col := sc.col[:rows]
	state := sc.state[:size]
	next := sc.next[:size]
	for i := range state {
		state[i] = s.Zero()
	}
	state[0] = s.One()
	kids := p.children[p.childStart[id]:p.childStart[id+1]]
	idx := 0
	for c := 0; c < nCols; c++ {
		for r := range col {
			col[r] = s.Zero()
		}
		// Entries are column-major, so this column's wired cells are a
		// contiguous run of the arena.
		for idx < len(kids) && int(p.permCols[pm.entOff+int32(idx)]) == c {
			col[p.permRows[pm.entOff+int32(idx)]] = vals[kids[idx]]
			idx++
		}
		copy(next, state)
		for sub := 0; sub < size; sub++ {
			if semiring.IsZero(s, state[sub]) {
				continue
			}
			for r := 0; r < rows; r++ {
				bit := 1 << uint(r)
				if sub&bit != 0 {
					continue
				}
				next[sub|bit] = s.Add(next[sub|bit], s.Mul(state[sub], col[r]))
			}
		}
		state, next = next, state
	}
	return state[size-1]
}

// ParallelEvaluateAllProgram computes the value of every gate like
// EvaluateAllProgram, spreading each level of the program's baked schedule
// across workers goroutines (≤ 0 selects GOMAXPROCS).  The valuation v and
// the semiring s are called from multiple goroutines concurrently; both must
// be safe for concurrent use.
func ParallelEvaluateAllProgram[T any](p *Program, s semiring.Semiring[T], v Valuation[T], workers int) []T {
	vals, _ := parallelEvaluateAllProgram(nil, p, s, v, workers)
	return vals
}

// ParallelEvaluateAllProgramCtx evaluates like ParallelEvaluateAllProgram but
// honours cancellation: when ctx is cancelled the evaluation stops in bounded
// time (workers re-check the context every cancelCheckStride gates and at
// every level barrier) and the call returns ctx.Err() with a nil slice.
func ParallelEvaluateAllProgramCtx[T any](ctx context.Context, p *Program, s semiring.Semiring[T], v Valuation[T], workers int) ([]T, error) {
	if ctx == nil || ctx.Done() == nil {
		// No cancellation signal to watch; take the unchecked fast path.
		return parallelEvaluateAllProgram(nil, p, s, v, workers)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	vals, err := parallelEvaluateAllProgram(ctx.Done(), p, s, v, workers)
	if err != nil {
		// Report the context's own cause (Canceled vs DeadlineExceeded).
		if cerr := ctx.Err(); cerr != nil {
			return nil, cerr
		}
		return nil, err
	}
	return vals, nil
}

// cancelCheckStride is the number of gates evaluated between cancellation
// checks; it bounds the latency of a cancelled evaluation to the cost of a
// stride of gates (plus the gate in flight) per worker.
const cancelCheckStride = 256

// cancelled does a non-blocking poll of a done channel (nil never fires).
func cancelled(done <-chan struct{}) bool {
	select {
	case <-done:
		return true
	default:
		return false
	}
}

// parallelEvaluateAllProgram is the shared engine behind the parallel
// evaluators; a nil done channel disables the cancellation checks entirely.
func parallelEvaluateAllProgram[T any](done <-chan struct{}, p *Program, s semiring.Semiring[T], v Valuation[T], workers int) ([]T, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	vals := make([]T, p.numGates)
	if workers == 1 && done == nil {
		var sc permScratch[T]
		for id := 0; id < p.numGates; id++ {
			evaluateProgramGate(p, s, v, id, vals, &sc)
		}
		return vals, nil
	}
	if workers == 1 {
		var sc permScratch[T]
		for id := 0; id < p.numGates; id++ {
			if id%cancelCheckStride == 0 && cancelled(done) {
				return nil, context.Canceled
			}
			evaluateProgramGate(p, s, v, id, vals, &sc)
		}
		return vals, nil
	}
	var wg sync.WaitGroup
	var sc permScratch[T] // scratch for levels run on the calling goroutine
	sinceCheck := 0
	for d := 0; d <= p.maxRank; d++ {
		if done != nil && cancelled(done) {
			return nil, context.Canceled
		}
		level := p.LevelGates(d)
		n := len(level)
		chunks := workers
		if max := n / minGatesPerWorker; chunks > max {
			chunks = max
		}
		if chunks <= 1 {
			for _, id := range level {
				if done != nil {
					if sinceCheck++; sinceCheck >= cancelCheckStride {
						sinceCheck = 0
						if cancelled(done) {
							return nil, context.Canceled
						}
					}
				}
				evaluateProgramGate(p, s, v, int(id), vals, &sc)
			}
			continue
		}
		// Contiguous chunks: gates within a level touch disjoint vals slots,
		// so no synchronisation beyond the per-level barrier is needed.
		chunkSize := (n + chunks - 1) / chunks
		wg.Add(chunks)
		for w := 0; w < chunks; w++ {
			lo := w * chunkSize
			hi := lo + chunkSize
			if hi > n {
				hi = n
			}
			go func(ids []int32) {
				defer wg.Done()
				var sc permScratch[T] // one scratch per worker goroutine
				for i, id := range ids {
					if done != nil && i%cancelCheckStride == 0 && cancelled(done) {
						return // abandon the chunk; the barrier notices below
					}
					evaluateProgramGate(p, s, v, int(id), vals, &sc)
				}
			}(level[lo:hi])
		}
		wg.Wait()
		if done != nil && cancelled(done) {
			return nil, context.Canceled
		}
	}
	return vals, nil
}
