package nested

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/compile"
	"repro/internal/semiring"
	"repro/internal/structure"
)

// testGraph builds a directed graph with edge relation E, a unary "vertex"
// relation V on every element (used as a trivial guard), and an ℕ-valued
// unary weight "weight".
func testGraph(n, m int, seed int64) (*Database, []int64) {
	sig := structure.MustSignature(
		[]structure.RelSymbol{{Name: "E", Arity: 2}, {Name: "V", Arity: 1}},
		nil,
	)
	r := rand.New(rand.NewSource(seed))
	a := structure.NewStructure(sig, n)
	for len(a.Tuples("E")) < m {
		x, y := r.Intn(n), r.Intn(n)
		if x != y {
			a.MustAddTuple("E", x, y)
		}
	}
	for v := 0; v < n; v++ {
		a.MustAddTuple("V", v)
	}
	db := NewDatabase(a)
	if err := db.DeclareSRelation("weight", NatSemiring, 1); err != nil {
		panic(err)
	}
	weights := make([]int64, n)
	for v := 0; v < n; v++ {
		weights[v] = int64(r.Intn(9) + 1)
		if err := db.SetValue("weight", structure.Tuple{v}, weights[v]); err != nil {
			panic(err)
		}
	}
	return db, weights
}

func TestValidation(t *testing.T) {
	db, _ := testGraph(6, 10, 1)
	ev := NewEvaluator(db, compile.Options{})

	bad := []Formula{
		B("missing", "x"),
		B("E", "x"),
		S(NatSemiring, "missing", "x"),
		S(MaxPlus, "weight", "x"),
		Neg(S(NatSemiring, "weight", "x")),
		Plus(S(NatSemiring, "weight", "x"), Bracket(MaxPlus, B("V", "x"))),
		// Connective argument with a free variable outside the guard.
		Guard("V", []string{"x"}, GreaterThan(NatSemiring),
			S(NatSemiring, "weight", "y"), Val(NatSemiring, int64(1))),
	}
	for _, f := range bad {
		if _, err := ev.EvalAt(f, freeVars(f), nil); err == nil {
			t.Errorf("formula %s should have been rejected", f)
		}
	}
	// Free variables must be declared for EvalClosed.
	if _, err := ev.EvalClosed(S(NatSemiring, "weight", "x")); err == nil {
		t.Errorf("EvalClosed on an open formula should fail")
	}
	// Declaring a duplicate or clashing S-relation fails.
	if err := db.DeclareSRelation("weight", NatSemiring, 1); err == nil {
		t.Errorf("duplicate S-relation accepted")
	}
	if err := db.DeclareSRelation("E", NatSemiring, 2); err == nil {
		t.Errorf("S-relation clashing with a boolean relation accepted")
	}
	if err := db.SetValue("weight", structure.Tuple{0, 1}, int64(1)); err == nil {
		t.Errorf("arity mismatch in SetValue accepted")
	}
}

func TestSimpleAggregation(t *testing.T) {
	db, weights := testGraph(8, 16, 3)
	ev := NewEvaluator(db, compile.Options{})

	// Σ_x weight(x): total weight.
	total, err := ev.EvalClosed(Sum([]string{"x"}, S(NatSemiring, "weight", "x")))
	if err != nil {
		t.Fatalf("EvalClosed: %v", err)
	}
	var want int64
	for _, w := range weights {
		want += w
	}
	if total.(int64) != want {
		t.Fatalf("total weight = %v, want %d", total, want)
	}

	// Σ_{x,y} [E(x,y)]_N · weight(y): weighted in-degree mass.
	f := Sum([]string{"x", "y"}, Times(Bracket(NatSemiring, B("E", "x", "y")), S(NatSemiring, "weight", "y")))
	got, err := ev.EvalClosed(f)
	if err != nil {
		t.Fatalf("EvalClosed: %v", err)
	}
	want = 0
	for _, e := range db.A.Tuples("E") {
		want += weights[e[1]]
	}
	if got.(int64) != want {
		t.Fatalf("weighted edge mass = %v, want %d", got, want)
	}

	// Boolean sentence: ∃x,y E(x,y).
	b, err := ev.EvalClosed(Exists([]string{"x", "y"}, B("E", "x", "y")))
	if err != nil {
		t.Fatalf("EvalClosed: %v", err)
	}
	if b.(bool) != (len(db.A.Tuples("E")) > 0) {
		t.Fatalf("existence sentence evaluated to %v", b)
	}
}

// TestMaxAverageNeighborWeight reproduces the introduction's nested query
//
//	max_x ( Σ_y [E(x,y)]·w(y) ) / ( Σ_y [E(x,y)] )
//
// with the integer-ratio connective and a max-plus outer aggregation.
func TestMaxAverageNeighborWeight(t *testing.T) {
	db, weights := testGraph(10, 26, 5)
	ev := NewEvaluator(db, compile.Options{})

	sumW := Sum([]string{"y"}, Times(Bracket(NatSemiring, B("E", "x", "y")), S(NatSemiring, "weight", "y")))
	degree := Sum([]string{"y"}, Bracket(NatSemiring, B("E", "x", "y")))
	avg := Guard("V", []string{"x"}, RatioNat, sumW, degree)
	// Lift the ℕ-valued average into max-plus and take the maximum over x.
	query := Sum([]string{"x"}, Guard("V", []string{"x"}, IntoMaxPlus, avg))

	got, err := ev.EvalClosed(query)
	if err != nil {
		t.Fatalf("EvalClosed: %v", err)
	}

	// Naive reference.
	n := db.A.N
	best := semiring.Infinite
	for x := 0; x < n; x++ {
		var sum, deg int64
		for _, e := range db.A.Tuples("E") {
			if e[0] == x {
				sum += weights[e[1]]
				deg++
			}
		}
		var ratio int64
		if deg > 0 {
			ratio = sum / deg
		}
		best = semiring.MaxPlus.Add(best, semiring.Fin(ratio))
	}
	if !semiring.MaxPlus.Equal(got.(semiring.Ext), best) {
		t.Fatalf("max average neighbour weight = %v, want %v", got, best)
	}
}

// TestHeavyNeighborQuery reproduces the introduction's boolean nested query
//
//	f(x) = ∃y E(x,y) ∧ ( w(y) > Σ_z [E(y,z)]·w(z) )
//
// including its constant-delay enumeration (result (E)).
func TestHeavyNeighborQuery(t *testing.T) {
	db, weights := testGraph(9, 22, 7)
	ev := NewEvaluator(db, compile.Options{})

	neighbourSum := Sum([]string{"z"}, Times(Bracket(NatSemiring, B("E", "y", "z")), S(NatSemiring, "weight", "z")))
	heavy := Guard("V", []string{"y"}, GreaterThan(NatSemiring), S(NatSemiring, "weight", "y"), neighbourSum)
	f := Exists([]string{"y"}, Times(B("E", "x", "y"), heavy))

	// Reference: which x have a heavy out-neighbour?
	n := db.A.N
	isHeavy := make([]bool, n)
	for y := 0; y < n; y++ {
		var sum int64
		for _, e := range db.A.Tuples("E") {
			if e[0] == y {
				sum += weights[e[1]]
			}
		}
		isHeavy[y] = weights[y] > sum
	}
	wantSet := map[int]bool{}
	for _, e := range db.A.Tuples("E") {
		if isHeavy[e[1]] {
			wantSet[e[0]] = true
		}
	}

	// Point evaluation at every element.
	var tuples []structure.Tuple
	for x := 0; x < n; x++ {
		tuples = append(tuples, structure.Tuple{x})
	}
	vals, err := ev.EvalAt(f, []string{"x"}, tuples)
	if err != nil {
		t.Fatalf("EvalAt: %v", err)
	}
	for x := 0; x < n; x++ {
		if vals[x].(bool) != wantSet[x] {
			t.Fatalf("f(%d) = %v, want %v", x, vals[x], wantSet[x])
		}
	}

	// Enumeration of the answer set (result E).
	ev2 := NewEvaluator(db, compile.Options{})
	ans, err := ev2.EnumerateBool(f, []string{"x"})
	if err != nil {
		t.Fatalf("EnumerateBool: %v", err)
	}
	var got []int
	for _, t := range ans.Collect(0) {
		got = append(got, t[0])
	}
	sort.Ints(got)
	var want []int
	for x := 0; x < n; x++ {
		if wantSet[x] {
			want = append(want, x)
		}
	}
	if len(got) != len(want) {
		t.Fatalf("enumerated %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("enumerated %v, want %v", got, want)
		}
	}
	// EnumerateBool rejects non-boolean formulas.
	if _, err := ev2.EnumerateBool(S(NatSemiring, "weight", "x"), []string{"x"}); err == nil {
		t.Errorf("EnumerateBool on a non-boolean formula should fail")
	}
}

func TestNestedConnectivesWithBinaryWeights(t *testing.T) {
	// A binary ℕ-valued relation (edge costs) feeding a min-plus aggregate:
	// the cheapest outgoing edge per vertex, then the maximum over vertices
	// ("minimax" style nesting with two semiring switches).
	sig := structure.MustSignature(
		[]structure.RelSymbol{{Name: "E", Arity: 2}, {Name: "V", Arity: 1}},
		nil,
	)
	r := rand.New(rand.NewSource(11))
	n := 8
	a := structure.NewStructure(sig, n)
	for v := 0; v < n; v++ {
		a.MustAddTuple("V", v)
	}
	for len(a.Tuples("E")) < 18 {
		x, y := r.Intn(n), r.Intn(n)
		if x != y {
			a.MustAddTuple("E", x, y)
		}
	}
	db := NewDatabase(a)
	if err := db.DeclareSRelation("cost", MinPlus, 2); err != nil {
		t.Fatal(err)
	}
	costs := map[string]int64{}
	for _, e := range a.Tuples("E") {
		c := int64(r.Intn(20) + 1)
		costs[e.Key()] = c
		if err := db.SetValue("cost", e, semiring.Fin(c)); err != nil {
			t.Fatal(err)
		}
	}
	// Setting a cost on a non-edge violates the Gaifman discipline.
	if err := db.SetValue("cost", structure.Tuple{0, 0}, semiring.Fin(1)); err == nil {
		t.Errorf("cost on a non-tuple accepted")
	}

	// cheapest(x) = Σ^{min-plus}_y [E(x,y)]·cost(x,y)
	cheapest := Sum([]string{"y"}, Times(Bracket(MinPlus, B("E", "x", "y")), S(MinPlus, "cost", "x", "y")))
	// Convert to max-plus via a connective and maximise over x.
	toMax := Connective{
		Name: "minToMax",
		Out:  MaxPlus,
		Apply: func(args []any) any {
			v := args[0].(semiring.Ext)
			if v.Inf {
				// No outgoing edge: contribute the max-plus zero (−∞).
				return semiring.Infinite
			}
			return v
		},
	}
	query := Sum([]string{"x"}, Guard("V", []string{"x"}, toMax, cheapest))
	ev := NewEvaluator(db, compile.Options{})
	got, err := ev.EvalClosed(query)
	if err != nil {
		t.Fatalf("EvalClosed: %v", err)
	}

	want := semiring.Infinite // max-plus zero
	for x := 0; x < n; x++ {
		best := semiring.Infinite // min-plus zero
		for _, e := range a.Tuples("E") {
			if e[0] == x {
				best = semiring.MinPlus.Add(best, semiring.Fin(costs[e.Key()]))
			}
		}
		if !best.Inf {
			want = semiring.MaxPlus.Add(want, best)
		}
	}
	if !semiring.MaxPlus.Equal(got.(semiring.Ext), want) {
		t.Fatalf("minimax cheapest edge = %v, want %v", got, want)
	}
}
