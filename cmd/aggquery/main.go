// Command aggquery evaluates a weighted query on a sparse database and
// reports the query value in several semirings together with statistics
// about the compiled circuit (Theorem 6 of the paper), driving the public
// repro/agg facade the same way an embedding program would.
//
// The database is either generated on the fly (-kind/-n) or read from a file
// or stdin in the dbio text format.  The query is either one of a set of
// predefined queries (-query) or an arbitrary weighted expression in the
// surface syntax (-expr).
//
// Usage:
//
//	aggquery -query triangles -kind grid -n 4096
//	agggen -kind grid -n 4096 | aggquery -stdin -query triangles
//	aggquery -kind bounded-degree -n 2000 \
//	  -expr 'sum x, y . [E(x,y) & S(x)] * w(x,y)'
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sync"

	"repro/agg"
)

// queries maps the predefined query names to their surface syntax.
var queries = map[string]string{
	"triangles":   "sum x, y, z . [E(x,y) & E(y,z) & E(z,x)] * w(x,y) * w(y,z) * w(z,x)",
	"paths":       "sum x, y, z . [E(x,y) & E(y,z) & !(x = z)] * u(x) * u(z)",
	"edges":       "sum x, y . [E(x,y)] * w(x,y)",
	"heavy-pairs": "sum x, y . [E(x,y) & S(x) & !S(y)] * u(x) * u(y)",
}

func main() {
	query := flag.String("query", "triangles", "predefined query: triangles, paths, edges, heavy-pairs")
	exprText := flag.String("expr", "", "weighted expression in surface syntax (overrides -query)")
	kind := flag.String("kind", "bounded-degree", "generated workload kind (ignored with -stdin/-file)")
	n := flag.Int("n", 2000, "generated database size (ignored with -stdin/-file)")
	seed := flag.Int64("seed", 1, "random seed")
	stdin := flag.Bool("stdin", false, "read the database from stdin (dbio format)")
	file := flag.String("file", "", "read the database from this file (dbio format)")
	workers := flag.Int("workers", 0, "worker goroutines per circuit evaluation (0 = GOMAXPROCS)")
	analyze := flag.Bool("analyze", false, "print the knowledge-compilation report of the compiled circuit")
	flag.Parse()
	ctx := context.Background()

	eng, err := agg.OpenSource(agg.Source{Stdin: *stdin, Path: *file, Kind: *kind, N: *n, Seed: *seed})
	if err != nil {
		fmt.Fprintf(os.Stderr, "aggquery: %v\n", err)
		os.Exit(1)
	}

	text := *exprText
	if text == "" {
		var ok bool
		if text, ok = queries[*query]; !ok {
			fmt.Fprintf(os.Stderr, "aggquery: unknown query %q (available: triangles, paths, edges, heavy-pairs)\n", *query)
			os.Exit(2)
		}
	}

	// One Prepare pays the Theorem 6 compilation; In rebinds the shared
	// circuit to further semirings without recompiling.
	p, err := eng.Prepare(ctx, text, agg.WithWorkers(*workers))
	if err != nil {
		fmt.Fprintf(os.Stderr, "aggquery: %v\n", err)
		os.Exit(1)
	}
	db := eng.Database()
	st := p.Stats()
	fmt.Printf("database: n=%d tuples=%d\n", db.Elements(), db.TupleCount())
	fmt.Printf("query: %s\n", p.Canonical())
	fmt.Printf("circuit: gates=%d edges=%d depth=%d permGates=%d maxPermRows=%d\n",
		st.Gates, st.Edges, st.Depth, st.PermGates, st.MaxPermRows)

	if *analyze {
		report, err := agg.Analyze(p)
		if err != nil {
			fmt.Fprintf(os.Stderr, "aggquery: analyze: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("analysis: variables=%d footprint=%dB decomposable=%v",
			report.Variables, report.FootprintBytes, report.Decomposable)
		if report.DeterminismChecked {
			fmt.Printf(" deterministic=%v", report.Deterministic)
		} else {
			fmt.Printf(" deterministic=unchecked(>%d gates)", agg.DeterminismGateLimit)
		}
		fmt.Println()
		for _, v := range report.DecomposabilityViolations {
			fmt.Printf("analysis: violation: %s\n", v)
		}
		for _, v := range report.DeterminismViolations {
			fmt.Printf("analysis: violation: %s\n", v)
		}
	}

	// The three semirings are independent passes over the same circuit, so
	// they run concurrently; each pass additionally spreads its gate levels
	// over -workers goroutines.
	passes := []struct {
		semiring string
		label    string
	}{
		{"natural", "value in (N,+,·):            "},
		{"minplus", "value in (N∪{∞},min,+):      "},
		{"boolean", "value in (B,∨,∧):            "},
	}
	lines := make([]string, len(passes))
	var wg sync.WaitGroup
	for i, pass := range passes {
		wg.Add(1)
		go func(i int, semiring, label string) {
			defer wg.Done()
			q, err := p.In(semiring)
			if err == nil {
				var v agg.Value
				if v, err = q.Eval(ctx); err == nil {
					lines[i] = label + v.String()
					return
				}
			}
			lines[i] = fmt.Sprintf("%s<error: %v>", label, err)
		}(i, pass.semiring, pass.label)
	}
	wg.Wait()
	for _, l := range lines {
		fmt.Println(l)
	}
}
