package provenance

import (
	"math/rand"
	"testing"

	"repro/internal/semiring"
)

func randomPoly(r *rand.Rand) *Poly {
	p := NewPoly()
	gens := []Generator{"a", "b", "c", "d"}
	for i := 0; i < r.Intn(4); i++ {
		var m []Generator
		for j := 0; j < r.Intn(3); j++ {
			m = append(m, gens[r.Intn(len(gens))])
		}
		p.AddMonomial(NewMonomial(m...), int64(r.Intn(2)+1))
	}
	return p
}

func TestFreeSemiringAxioms(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	s := Free
	for trial := 0; trial < 150; trial++ {
		a, b, c := randomPoly(r), randomPoly(r), randomPoly(r)
		if !s.Equal(s.Add(a, b), s.Add(b, a)) {
			t.Fatalf("addition not commutative")
		}
		if !s.Equal(s.Mul(a, b), s.Mul(b, a)) {
			t.Fatalf("multiplication not commutative: %s vs %s", s.Format(s.Mul(a, b)), s.Format(s.Mul(b, a)))
		}
		if !s.Equal(s.Add(s.Add(a, b), c), s.Add(a, s.Add(b, c))) {
			t.Fatalf("addition not associative")
		}
		if !s.Equal(s.Mul(s.Mul(a, b), c), s.Mul(a, s.Mul(b, c))) {
			t.Fatalf("multiplication not associative")
		}
		if !s.Equal(s.Add(a, s.Zero()), a) {
			t.Fatalf("zero not neutral")
		}
		if !s.Equal(s.Mul(a, s.One()), a) {
			t.Fatalf("one not neutral")
		}
		if !s.Equal(s.Mul(a, s.Zero()), s.Zero()) {
			t.Fatalf("zero not absorbing")
		}
		if !s.Equal(s.Mul(a, s.Add(b, c)), s.Add(s.Mul(a, b), s.Mul(a, c))) {
			t.Fatalf("distributivity fails")
		}
	}
}

func TestMonomialOperations(t *testing.T) {
	m := NewMonomial("b", "a", "b")
	if m.Key() != "a·b·b" {
		t.Errorf("Key = %q", m.Key())
	}
	n := NewMonomial("c")
	if m.Mul(n).Key() != "a·b·b·c" {
		t.Errorf("Mul = %q", m.Mul(n).Key())
	}
	if NewMonomial().String() != "1" {
		t.Errorf("empty monomial should render as 1")
	}
}

func TestPolyOperations(t *testing.T) {
	p := NewPoly()
	if !p.IsZero() || p.String() != "0" {
		t.Errorf("fresh polynomial should be zero")
	}
	p.AddMonomial(NewMonomial("x"), 2)
	p.AddMonomial(NewMonomial("y", "x"), 1)
	if p.NumTerms() != 2 || p.TotalMultiplicity() != 3 {
		t.Errorf("NumTerms=%d TotalMultiplicity=%d", p.NumTerms(), p.TotalMultiplicity())
	}
	if p.Multiplicity(NewMonomial("x")) != 2 || p.Multiplicity(NewMonomial("z")) != 0 {
		t.Errorf("multiplicities wrong")
	}
	p.AddMonomial(NewMonomial("x"), -2)
	if p.NumTerms() != 1 {
		t.Errorf("cancelled monomial still present")
	}
	q := p.Clone()
	q.AddMonomial(NewMonomial("w"), 1)
	if p.Multiplicity(NewMonomial("w")) != 0 {
		t.Errorf("Clone aliases original")
	}
	if Var("g").Multiplicity(NewMonomial("g")) != 1 {
		t.Errorf("Var broken")
	}
}

func TestHomomorphism(t *testing.T) {
	// The provenance of two triangles sharing an edge: e1·e2·e3 + e1·e4·e5.
	p := FromMonomials(
		NewMonomial("e1", "e2", "e3"),
		NewMonomial("e1", "e4", "e5"),
	)
	// Counting homomorphism: every generator ↦ 1 gives the number of
	// monomials.
	count := Eval[int64](semiring.Nat, p, func(Generator) int64 { return 1 })
	if count != 2 {
		t.Errorf("counting homomorphism = %d, want 2", count)
	}
	// Cost homomorphism into min-plus: each edge has cost, the value is the
	// cheapest derivation.
	costs := map[Generator]int64{"e1": 1, "e2": 2, "e3": 3, "e4": 10, "e5": 1}
	cost := Eval[semiring.Ext](semiring.MinPlus, p, func(g Generator) semiring.Ext { return semiring.Fin(costs[g]) })
	if !semiring.MinPlus.Equal(cost, semiring.Fin(6)) {
		t.Errorf("min-plus homomorphism = %v, want 6", cost)
	}
	// Boolean homomorphism with e1 removed: the element no longer derives.
	alive := Eval[bool](semiring.Bool, p, func(g Generator) bool { return g != "e1" })
	if alive {
		t.Errorf("removing the shared edge should kill both derivations")
	}
	alive = Eval[bool](semiring.Bool, p, func(g Generator) bool { return g != "e4" })
	if !alive {
		t.Errorf("removing a non-shared edge should keep one derivation")
	}
}
