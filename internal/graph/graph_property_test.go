package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// graphFromEdgeList builds a graph over n vertices from a raw byte slice,
// interpreting consecutive byte pairs as edges; used by testing/quick
// properties.
func graphFromEdgeList(raw []uint8, n int) *Graph {
	g := New(n)
	for i := 0; i+1 < len(raw); i += 2 {
		u, v := int(raw[i])%n, int(raw[i+1])%n
		if u != v && !g.HasEdge(u, v) {
			g.AddEdge(u, v)
		}
	}
	return g
}

func TestDegeneracyOrientationProperties(t *testing.T) {
	prop := func(raw []uint8) bool {
		g := graphFromEdgeList(raw, 24)
		_, degeneracy := g.DegeneracyOrder()
		o := g.DegeneracyOrientation()
		// Out-degrees are bounded by the degeneracy.
		if o.MaxOutDegree > degeneracy {
			return false
		}
		oriented := 0
		for v := 0; v < g.N(); v++ {
			if len(o.Out[v]) > o.MaxOutDegree {
				return false
			}
			for _, w := range o.Out[v] {
				// Every arc is a graph edge going up in rank (acyclicity).
				if !g.HasEdge(v, w) || o.Rank[v] >= o.Rank[w] {
					return false
				}
				oriented++
			}
		}
		// Every edge is oriented exactly once.
		return oriented == g.M()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestGreedyColoringProperOnRandomGraphs(t *testing.T) {
	prop := func(raw []uint8) bool {
		g := graphFromEdgeList(raw, 20)
		_, degeneracy := g.DegeneracyOrder()
		c := GreedyColoring(g, reverseDegeneracyOrder(g))
		if !IsProperColoring(g, c) {
			return false
		}
		// Greedy colouring along a reverse degeneracy order uses at most
		// degeneracy+1 colours.
		return c.NumColors <= degeneracy+1
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestSpanningForestDFSProperties(t *testing.T) {
	prop := func(raw []uint8) bool {
		g := graphFromEdgeList(raw, 22)
		f := SpanningForestDFS(g)
		if f.N() != g.N() {
			return false
		}
		for v := 0; v < g.N(); v++ {
			// Parent pointers follow graph edges (roots point to themselves).
			if f.Parent[v] != v && !g.HasEdge(v, f.Parent[v]) {
				return false
			}
			// Depth is consistent with the parent pointer.
			if f.Parent[v] == v {
				if f.Depth[v] != 0 {
					return false
				}
			} else if f.Depth[v] != f.Depth[f.Parent[v]]+1 {
				return false
			}
		}
		// DFS property on undirected graphs: every edge connects a vertex
		// with one of its ancestors.
		for _, e := range g.Edges() {
			if !f.IsAncestor(e[0], e[1]) && !f.IsAncestor(e[1], e[0]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestEliminationForestValidOnRandomGraphs(t *testing.T) {
	prop := func(raw []uint8) bool {
		g := graphFromEdgeList(raw, 18)
		f := EliminationForest(g)
		return ValidEliminationForest(g, f)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestFraternalAugmentationIsSupergraphOnRandomGraphs(t *testing.T) {
	prop := func(raw []uint8) bool {
		g := graphFromEdgeList(raw, 16)
		aug := FraternalAugmentation(g)
		if aug.N() != g.N() {
			return false
		}
		for _, e := range g.Edges() {
			if !aug.HasEdge(e[0], e[1]) {
				return false
			}
		}
		return aug.M() >= g.M()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestLowTreedepthColoringCoversAllVertices(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	for round := 0; round < 30; round++ {
		n := r.Intn(40) + 10
		g := New(n)
		m := r.Intn(3 * n)
		for i := 0; i < m; i++ {
			u, v := r.Intn(n), r.Intn(n)
			if u != v && !g.HasEdge(u, v) {
				g.AddEdge(u, v)
			}
		}
		for p := 1; p <= 3; p++ {
			c := LowTreedepthColoring(g, p)
			if len(c.Color) != n {
				t.Fatalf("round %d p=%d: colouring covers %d vertices, want %d", round, p, len(c.Color), n)
			}
			if c.NumColors < 1 {
				t.Fatalf("round %d p=%d: no colours used", round, p)
			}
			for v := 0; v < n; v++ {
				if c.Color[v] < 0 || c.Color[v] >= c.NumColors {
					t.Fatalf("round %d p=%d: colour %d of vertex %d out of range [0,%d)", round, p, c.Color[v], v, c.NumColors)
				}
			}
			// The per-subset statistics must account for every ≤p-subset of
			// colours and report consistent forest depths.
			stats := ColoringQuality(g, c, p)
			if len(stats) == 0 && c.NumColors > 0 {
				t.Fatalf("round %d p=%d: no subset statistics", round, p)
			}
			for _, s := range stats {
				if s.ForestDepth < 0 || s.Vertices < 0 || s.Vertices > n {
					t.Fatalf("round %d p=%d: implausible subset statistics %+v", round, p, s)
				}
			}
		}
	}
}

func TestConnectedComponentsPartitionVertices(t *testing.T) {
	prop := func(raw []uint8) bool {
		g := graphFromEdgeList(raw, 25)
		comps := g.ConnectedComponents()
		seen := make([]bool, g.N())
		total := 0
		for _, comp := range comps {
			for _, v := range comp {
				if v < 0 || v >= g.N() || seen[v] {
					return false
				}
				seen[v] = true
				total++
			}
		}
		if total != g.N() {
			return false
		}
		// Endpoints of every edge lie in the same component.
		compOf := make([]int, g.N())
		for i, comp := range comps {
			for _, v := range comp {
				compOf[v] = i
			}
		}
		for _, e := range g.Edges() {
			if compOf[e[0]] != compOf[e[1]] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
