package nested

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/compile"
	"repro/internal/semiring"
	"repro/internal/structure"
)

// randomNestedDB builds a random bounded-degree digraph with a total unary
// guard V, a Nat-valued vertex weight u and a MinPlus-valued vertex cost c.
func randomNestedDB(t *testing.T, n int, seed int64) *Database {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	sig := structure.MustSignature(
		[]structure.RelSymbol{{Name: "E", Arity: 2}, {Name: "V", Arity: 1}},
		nil,
	)
	a := structure.NewStructure(sig, n)
	for v := 0; v < n; v++ {
		a.MustAddTuple("V", v)
		deg := r.Intn(3) + 1
		for i := 0; i < deg; i++ {
			if u := r.Intn(n); u != v {
				a.MustAddTuple("E", v, u)
			}
		}
	}
	db := NewDatabase(a)
	if err := db.DeclareSRelation("u", NatSemiring, 1); err != nil {
		t.Fatalf("declare u: %v", err)
	}
	if err := db.DeclareSRelation("c", MinPlus, 1); err != nil {
		t.Fatalf("declare c: %v", err)
	}
	for v := 0; v < n; v++ {
		if err := db.SetValue("u", structure.Tuple{v}, int64(r.Intn(9))); err != nil {
			t.Fatalf("set u(%d): %v", v, err)
		}
		if err := db.SetValue("c", structure.Tuple{v}, semiring.Fin(int64(r.Intn(20)))); err != nil {
			t.Fatalf("set c(%d): %v", v, err)
		}
	}
	return db
}

// differentialQueries returns closed and unary query shapes exercising every
// formula constructor and the builtin connectives, across the Nat, MinPlus,
// MaxPlus and boolean carriers.
func differentialQueries() map[string]Formula {
	edgeSumU := func(x string) Formula {
		return Sum([]string{"y"}, Times(Bracket(NatSemiring, B("E", x, "y")), S(NatSemiring, "u", "y")))
	}
	degree := Sum([]string{"y"}, Bracket(NatSemiring, B("E", "x", "y")))
	avg := Guard("V", []string{"x"}, RatioNat, edgeSumU("x"), degree)
	cheapestNeighbour := Sum([]string{"y"},
		Times(Bracket(MinPlus, B("E", "x", "y")), S(MinPlus, "c", "y")))
	heavy := Guard("V", []string{"y"}, GreaterThan(NatSemiring),
		S(NatSemiring, "u", "y"),
		Sum([]string{"z"}, Times(Bracket(NatSemiring, B("E", "y", "z")), S(NatSemiring, "u", "z"))))
	return map[string]Formula{
		// Closed Nat aggregation with a constant and an addition.
		"closed-nat": Sum([]string{"x"}, Plus(edgeSumU("x"), Val(NatSemiring, int64(1)))),
		// The introduction's max-average query: ratio + max-plus connectives.
		"closed-max-avg": Sum([]string{"x"}, Guard("V", []string{"x"}, IntoMaxPlus, avg)),
		// Unary Nat aggregation evaluated pointwise.
		"unary-nat": edgeSumU("x"),
		// Unary MinPlus aggregation: cheapest out-neighbour cost.
		"unary-minplus": cheapestNeighbour,
		// Boolean query with negation under an existential.
		"unary-bool": Exists([]string{"y"}, Times(B("E", "x", "y"), Neg(B("E", "y", "x")))),
		// Nested boolean query: has an out-neighbour heavier than its own
		// out-neighbourhood (a guarded comparison two levels deep).
		"unary-heavy": Exists([]string{"y"}, Times(B("E", "x", "y"), heavy)),
		// AtLeast connective against a constant threshold.
		"unary-atleast": Guard("V", []string{"x"}, AtLeast(NatSemiring), edgeSumU("x"), Val(NatSemiring, int64(8))),
	}
}

// TestEvaluatorMatchesReference cross-checks the Program-backed evaluator
// against the direct-recursion reference semantics on random databases, for
// closed formulas and pointwise over every element for unary ones.
func TestEvaluatorMatchesReference(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		db := randomNestedDB(t, 16+int(seed)*7, seed)
		for name, f := range differentialQueries() {
			t.Run(fmt.Sprintf("%s/seed%d", name, seed), func(t *testing.T) {
				ev := NewEvaluator(db, compile.Options{})
				out := f.Out()
				if len(FreeVars(f)) == 0 {
					got, err := ev.EvalClosed(f)
					if err != nil {
						t.Fatalf("EvalClosed: %v", err)
					}
					want, err := ReferenceEvalClosed(db, f)
					if err != nil {
						t.Fatalf("ReferenceEvalClosed: %v", err)
					}
					if !out.Equal(got, want) {
						t.Fatalf("closed: got %s, reference %s", out.Format(got), out.Format(want))
					}
					return
				}
				tuples := make([]structure.Tuple, db.A.N)
				for v := 0; v < db.A.N; v++ {
					tuples[v] = structure.Tuple{v}
				}
				got, err := ev.EvalAt(f, []string{"x"}, tuples)
				if err != nil {
					t.Fatalf("EvalAt: %v", err)
				}
				for v := 0; v < db.A.N; v++ {
					want, err := ReferenceEvalAt(db, f, map[string]structure.Element{"x": structure.Element(v)})
					if err != nil {
						t.Fatalf("ReferenceEvalAt(%d): %v", v, err)
					}
					if !out.Equal(got[v], want) {
						t.Fatalf("at x=%d: got %s, reference %s", v, out.Format(got[v]), out.Format(want))
					}
				}
			})
		}
	}
}

// TestEnumerateBoolMatchesReference checks that the answer set enumerated for
// a boolean nested query is exactly the set of elements where the reference
// recursion returns true.
func TestEnumerateBoolMatchesReference(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		db := randomNestedDB(t, 24, seed*11)
		heavy := Guard("V", []string{"y"}, GreaterThan(NatSemiring),
			S(NatSemiring, "u", "y"),
			Sum([]string{"z"}, Times(Bracket(NatSemiring, B("E", "y", "z")), S(NatSemiring, "u", "z"))))
		f := Exists([]string{"y"}, Times(B("E", "x", "y"), heavy))

		ev := NewEvaluator(db, compile.Options{})
		ans, err := ev.EnumerateBool(f, []string{"x"})
		if err != nil {
			t.Fatalf("EnumerateBool: %v", err)
		}
		got := map[int]bool{}
		cur := ans.Cursor()
		for {
			tpl, ok := cur.Next()
			if !ok {
				break
			}
			if got[tpl[0]] {
				t.Fatalf("element %d enumerated twice", tpl[0])
			}
			got[tpl[0]] = true
		}
		for v := 0; v < db.A.N; v++ {
			want, err := ReferenceEvalAt(db, f, map[string]structure.Element{"x": structure.Element(v)})
			if err != nil {
				t.Fatalf("ReferenceEvalAt(%d): %v", v, err)
			}
			if got[v] != want.(bool) {
				t.Fatalf("seed %d, x=%d: enumerated=%v, reference=%v", seed, v, got[v], want)
			}
		}
	}
}
