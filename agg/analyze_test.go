package agg

import (
	"context"
	"errors"
	"strconv"
	"testing"
)

func TestAnalyzeExpression(t *testing.T) {
	eng := testEngine(t)
	ctx := context.Background()

	p, err := eng.Prepare(ctx, edgeSum)
	if err != nil {
		t.Fatalf("Prepare: %v", err)
	}
	report, err := Analyze(p)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	st := p.Stats()
	if report.Gates != st.Gates || report.Wires != st.Edges || report.Depth != st.Depth {
		t.Errorf("report sizes %d/%d/%d disagree with Stats %d/%d/%d",
			report.Gates, report.Wires, report.Depth, st.Gates, st.Edges, st.Depth)
	}
	if !report.Decomposable {
		t.Errorf("edge sum not decomposable: %v", report.DecomposabilityViolations)
	}
	if !report.DeterminismChecked {
		t.Errorf("tiny program skipped the determinism check")
	}
	if !report.Deterministic {
		t.Errorf("edge sum not deterministic: %v", report.DeterminismViolations)
	}
	// 4 edge weights feed the sum.
	if report.Variables != 4 {
		t.Errorf("Variables = %d, want 4", report.Variables)
	}
	if report.ModelCount != "" || report.Factorization != nil {
		t.Errorf("expression-mode report has answer-set fields: %+v", report)
	}
	if report.FootprintBytes <= 0 {
		t.Errorf("FootprintBytes = %d, want > 0", report.FootprintBytes)
	}
}

func TestAnalyzeFormulaCountsModels(t *testing.T) {
	eng := testEngine(t)
	ctx := context.Background()

	p, err := eng.Prepare(ctx, "E(x,y) & S(x)")
	if err != nil {
		t.Fatalf("Prepare: %v", err)
	}
	report, err := Analyze(p)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	want, err := p.AnswerCount(ctx)
	if err != nil {
		t.Fatalf("AnswerCount: %v", err)
	}
	if report.ModelCount != strconv.FormatInt(want, 10) {
		t.Errorf("ModelCount = %q, AnswerCount = %d", report.ModelCount, want)
	}
	if report.Factorization == nil {
		t.Fatal("formula-mode report has no factorization")
	}
	if report.Factorization.Arity != 2 {
		t.Errorf("Factorization.Arity = %d, want 2", report.Factorization.Arity)
	}
	if report.Factorization.FlatCells != strconv.FormatInt(2*want, 10) {
		t.Errorf("FlatCells = %q, want %d", report.Factorization.FlatCells, 2*want)
	}
}

func TestAnalyzeNested(t *testing.T) {
	eng := testEngine(t)
	ctx := context.Background()

	// Boolean nested queries with free variables have an enumeration program
	// to analyse.
	q := NGuard("S", []string{"x"}, ConnGreaterThan, outWeight(), NConst(3))
	p, err := eng.Prepare(ctx, "heavy marked", WithNested(q))
	if err != nil {
		t.Fatalf("Prepare: %v", err)
	}
	report, err := Analyze(p)
	if err != nil {
		t.Fatalf("Analyze enumerable nested: %v", err)
	}
	if report.ModelCount != "1" {
		t.Errorf("nested ModelCount = %q, want 1", report.ModelCount)
	}

	// Semiring-valued nested queries evaluate in stages; there is no single
	// program, and Analyze says so.
	sumQ := NSum([]string{"x", "y"},
		NTimes(NBracket(NAtom("E", "x", "y")), NWeight("w", "x", "y")))
	p2, err := eng.Prepare(ctx, "nested edge sum", WithNested(sumQ))
	if err != nil {
		t.Fatalf("Prepare: %v", err)
	}
	if _, err := Analyze(p2); !errors.Is(err, ErrArgument) {
		t.Errorf("Analyze of staged nested query = %v, want ErrArgument", err)
	}
}
