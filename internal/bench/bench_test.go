package bench

import (
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tab := &Table{
		ID:     "EX",
		Title:  "example",
		Claim:  "a claim",
		Header: []string{"a", "b"},
		Rows:   [][]string{{"1", "2"}, {"3", "4"}},
		Notes:  []string{"a note"},
	}
	text := tab.String()
	if !strings.Contains(text, "EX") || !strings.Contains(text, "a note") || !strings.Contains(text, "3") {
		t.Errorf("plain rendering missing content:\n%s", text)
	}
	md := tab.Markdown()
	if !strings.Contains(md, "| a | b |") || !strings.Contains(md, "| 1 | 2 |") {
		t.Errorf("markdown rendering missing content:\n%s", md)
	}
}

func TestRegistryCoversAllExperiments(t *testing.T) {
	reg := Registry(true)
	if len(reg) != 20 {
		t.Fatalf("expected 20 experiments, got %d", len(reg))
	}
	seen := map[string]bool{}
	for _, e := range reg {
		if seen[e.ID] {
			t.Errorf("duplicate experiment id %s", e.ID)
		}
		seen[e.ID] = true
	}
}

// TestRunExperimentsPreservesOrder checks that the concurrent sweep runner
// returns tables in registry order regardless of completion order.
func TestRunExperimentsPreservesOrder(t *testing.T) {
	var exps []Experiment
	for _, id := range []string{"X1", "X2", "X3", "X4", "X5"} {
		id := id
		exps = append(exps, Experiment{ID: id, Run: func() *Table { return &Table{ID: id} }})
	}
	for _, workers := range []int{1, 3, 8} {
		tables := RunExperiments(exps, workers)
		if len(tables) != len(exps) {
			t.Fatalf("workers=%d: got %d tables, want %d", workers, len(tables), len(exps))
		}
		for i, tab := range tables {
			if tab.ID != exps[i].ID {
				t.Errorf("workers=%d: table %d has id %s, want %s", workers, i, tab.ID, exps[i].ID)
			}
		}
	}
}

// TestE13BatchedUpdatesSmoke runs the batched-update experiment at a smoke
// size.  Unlike the full sweep it stays enabled under -short, so every CI
// run exercises the batched engine end to end: E13 cross-checks the final
// per-update and batched values internally and panics on mismatch, and its
// last column asserts the zero-allocation steady state of the generic path.
func TestE13BatchedUpdatesSmoke(t *testing.T) {
	total := 10000
	if testing.Short() {
		total = 2000
	}
	tab := E13BatchedUpdates([]int{300}, total, 512, 32)
	if len(tab.Rows) != 1 {
		t.Fatalf("E13 produced %d rows, want 1", len(tab.Rows))
	}
	if allocs := tab.Rows[0][len(tab.Rows[0])-1]; allocs != "0.000" {
		t.Errorf("E13 reports %s allocs per steady-state generic-path update, want 0.000", allocs)
	}
}

// TestSmallExperimentsRun executes a few experiments at tiny sizes to make
// sure the harness itself is sound (values cross-checked inside panics on
// mismatch).
func TestSmallExperimentsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke test skipped in -short mode")
	}
	small := []int{300, 600}
	tables := []*Table{
		E1CircuitCompilation(small),
		E2WeightedTriangles(small, 600),
		E3Permanent([]int{500, 1000}),
		E4DynamicUpdates(small),
		E5Enumeration(small),
		E9Coloring([]int{300}),
		E10ProvenancePermanent([]int{500}),
		E11ParallelEvaluation(small, 2),
		E12ServingThroughput([]int{300}, 8),
		E13BatchedUpdates([]int{300}, 3000, 512, 32),
	}
	for _, tab := range tables {
		if len(tab.Rows) == 0 {
			t.Errorf("experiment %s produced no rows", tab.ID)
		}
		if tab.String() == "" || tab.Markdown() == "" {
			t.Errorf("experiment %s produced empty rendering", tab.ID)
		}
	}
}
