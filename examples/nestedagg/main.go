// Nested weighted queries (Section 7 of the paper): the introduction's two
// FOG[C] examples — the maximum average neighbour weight, and the vertices
// that have a "heavy" neighbour — built with the facade's N* constructors,
// prepared with agg.WithNested, and evaluated with the Theorem 26 machinery,
// including constant-delay enumeration of the boolean answers.
//
//	go run ./examples/nestedagg
package main

import (
	"context"
	"fmt"

	"repro/agg"
)

func main() {
	ctx := context.Background()
	// The "nested" workload carries a trivial unary guard V (all vertices),
	// vertex weights u and edge weights w.
	db, err := agg.Generate("nested", 4000, 13)
	must(err)
	eng := agg.Open(db)
	fmt.Printf("database: %d vertices, %d edges, N-valued vertex weights\n\n",
		db.Elements(), len(db.Tuples("E")))

	// Query 1 (introduction):  max_x ( Σ_y [E(x,y)]·u(y) / Σ_y [E(x,y)] ),
	// with an integer ratio connective and a max-plus outer aggregation.
	sumW := agg.NSum([]string{"y"},
		agg.NTimes(agg.NBracket(agg.NAtom("E", "x", "y")), agg.NWeight("u", "y")))
	degree := agg.NSum([]string{"y"}, agg.NBracket(agg.NAtom("E", "x", "y")))
	avg := agg.NGuard("V", []string{"x"}, agg.ConnRatio, sumW, degree)
	maxAvg := agg.NSum([]string{"x"},
		agg.NGuard("V", []string{"x"}, agg.ConnToMaxPlus, avg))

	p, err := eng.Prepare(ctx, "max average neighbour weight", agg.WithNested(maxAvg))
	must(err)
	v, err := p.Eval(ctx)
	must(err)
	fmt.Printf("max over x of the average weight of x's out-neighbours: %s\n", v)

	// Query 2 (introduction):  f(x) = ∃y E(x,y) ∧ ( u(y) > Σ_z [E(y,z)]·u(z) ),
	// a boolean nested query whose answers we enumerate with constant delay.
	neighbourSum := agg.NSum([]string{"z"},
		agg.NTimes(agg.NBracket(agg.NAtom("E", "y", "z")), agg.NWeight("u", "z")))
	heavy := agg.NGuard("V", []string{"y"}, agg.ConnGreaterThan,
		agg.NWeight("u", "y"), neighbourSum)
	f := agg.NExists([]string{"y"}, agg.NTimes(agg.NAtom("E", "x", "y"), heavy))

	q, err := eng.Prepare(ctx, "has a heavy neighbour", agg.WithNested(f))
	must(err)
	total, err := q.AnswerCount(ctx)
	must(err)
	fmt.Printf("\nvertices with a neighbour heavier than its own neighbourhood: %d\n", total)
	fmt.Println("first few such vertices (constant-delay enumeration):")
	shown := 0
	for ans, err := range q.Enumerate(ctx) {
		must(err)
		fmt.Printf("  x = %d\n", ans[0])
		if shown++; shown >= 5 {
			break
		}
	}
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}
