// Package compile implements the paper's key result (Theorem 6): compiling
// a weighted expression over a sparse structure into a circuit with
// permanent gates, in time linear in the structure.
//
// The pipeline follows the proof in Appendix A of the paper:
//
//  1. the expression is normalised into a sum of prenex monomials
//     (internal/expr, Lemma 28);
//  2. each monomial is decomposed by a low-treedepth colouring of the
//     Gaifman graph: the aggregation is partitioned according to the
//     colours of the bound variables (equation (12));
//  3. for every colour pattern, the induced subgraph is decomposed by an
//     elimination forest of bounded depth (Lemma 33 / Example 2);
//  4. over that forest, the monomial is decomposed into *shapes* — the
//     ancestry/equality patterns of the bound variables (Appendix A.2) —
//     and each shape is compiled into a circuit by structural recursion,
//     with permanent gates handling the injective assignment of sibling
//     subtrees (Claim 1 of the paper).
//
// This file implements shapes: their enumeration, consistency with the
// monomial's (in)equality literals, and realisability pruning against the
// data forest.
package compile

import "fmt"

// meetDifferentTrees is the sentinel meet value for two variables placed in
// different trees of the forest.
const meetDifferentTrees = -1

// shape fixes, for every bound variable, the depth of the node it is mapped
// to, and for every pair of variables the depth of their deepest common
// ancestor (or meetDifferentTrees).  A shape corresponds to the "atomic
// type" of the tuple with respect to the forest structure; summing over all
// shapes partitions the aggregation space.
type shape struct {
	depth []int
	// meet is a symmetric k×k matrix; meet[i][i] = depth[i].
	meet [][]int
}

// sameSlot reports whether variables i and j are mapped to the same node.
func (sh *shape) sameSlot(i, j int) bool {
	return sh.depth[i] == sh.depth[j] && sh.meet[i][j] == sh.depth[i]
}

// comparable reports whether variable i's node is an ancestor of j's node or
// vice versa (including equality).
func (sh *shape) comparable(i, j int) bool {
	if i == j {
		return true
	}
	m := sh.meet[i][j]
	return m == sh.depth[i] || m == sh.depth[j]
}

func (sh *shape) String() string {
	return fmt.Sprintf("shape{depth=%v}", sh.depth)
}

// shapeConstraints captures everything the monomial imposes on admissible
// shapes.
type shapeConstraints struct {
	// numVars is the number of bound variables.
	numVars int
	// maxDepth is the maximum depth of the data forest.
	maxDepth int
	// mustEqual lists variable pairs that must map to the same node
	// (positive equality literals).
	mustEqual [][2]int
	// mustDiffer lists variable pairs that must map to different nodes
	// (negative equality literals).
	mustDiffer [][2]int
	// mustCompare lists variable pairs that must be ancestor-related or
	// equal (arguments of positive relation literals and of weight terms of
	// arity ≥ 2, which can only be satisfied on Gaifman cliques).
	mustCompare [][2]int
	// realizable reports whether some pair of nodes at depths d1 and d2 has
	// its deepest common ancestor at depth m (with m == meetDifferentTrees
	// meaning the nodes lie in different trees).  It is a pure pruning
	// device: returning true more often is always sound.
	realizable func(d1, d2, m int) bool
	// depthRealizable reports whether any node of the forest has depth d.
	depthRealizable func(d int) bool
}

// enumerateShapes lists every shape over the given constraints.  The
// enumeration chooses a depth for every variable and a meet depth for every
// pair, pruning by the three-point (ultrametric) condition, the monomial's
// equality constraints, the comparability requirements and data
// realisability.
func enumerateShapes(c shapeConstraints) []*shape {
	k := c.numVars
	if k == 0 {
		return []*shape{{depth: nil, meet: nil}}
	}
	if c.realizable == nil {
		c.realizable = func(int, int, int) bool { return true }
	}
	if c.depthRealizable == nil {
		c.depthRealizable = func(int) bool { return true }
	}
	var shapes []*shape
	depth := make([]int, k)
	meet := make([][]int, k)
	for i := range meet {
		meet[i] = make([]int, k)
	}

	mustEqual := make(map[[2]int]bool)
	for _, p := range c.mustEqual {
		mustEqual[normPair(p)] = true
	}
	mustDiffer := make(map[[2]int]bool)
	for _, p := range c.mustDiffer {
		mustDiffer[normPair(p)] = true
	}
	mustCompare := make(map[[2]int]bool)
	for _, p := range c.mustCompare {
		if p[0] != p[1] {
			mustCompare[normPair(p)] = true
		}
	}

	// pairOK checks the constraints that involve only the pair (i, j) once
	// its meet has been chosen.
	pairOK := func(i, j int) bool {
		p := normPair([2]int{i, j})
		same := depth[i] == depth[j] && meet[i][j] == depth[i]
		if mustEqual[p] && !same {
			return false
		}
		if mustDiffer[p] && same {
			return false
		}
		comparable := meet[i][j] == depth[i] || meet[i][j] == depth[j]
		if mustCompare[p] && !comparable {
			return false
		}
		if !comparable {
			// Strict sibling relation: prune against the data.
			if !c.realizable(depth[i], depth[j], meet[i][j]) {
				return false
			}
		}
		return true
	}

	// tripleOK checks the three-point condition for every triple whose three
	// pairwise meets are all fixed once (i, j) is chosen.  Pairs are fixed in
	// the order (0,1), (0,2), (1,2), (0,3), ...: grouped by the larger index,
	// then by the smaller.  For the triple {l, i, j} with l < i < j the last
	// pair fixed is (i, j), so it is checked exactly once, here.
	tripleOK := func(i, j int) bool {
		for l := 0; l < i; l++ {
			a, b, cc := meet[i][j], meet[i][l], meet[j][l]
			if !threePoint(a, b, cc) {
				return false
			}
		}
		return true
	}

	var chooseMeets func(i, j int)
	var chooseDepths func(i int)

	chooseMeets = func(i, j int) {
		if j == k {
			shapes = append(shapes, cloneShape(depth, meet))
			return
		}
		ni, nj := i, j
		advI, advJ := i+1, j
		if advI == j {
			advI, advJ = 0, j+1
		}
		min := depth[ni]
		if depth[nj] < min {
			min = depth[nj]
		}
		for m := meetDifferentTrees; m <= min; m++ {
			meet[ni][nj] = m
			meet[nj][ni] = m
			if !pairOK(ni, nj) {
				continue
			}
			if !tripleOK(ni, nj) {
				continue
			}
			chooseMeets(advI, advJ)
		}
	}

	chooseDepths = func(i int) {
		if i == k {
			for v := 0; v < k; v++ {
				meet[v][v] = depth[v]
			}
			if k == 1 {
				shapes = append(shapes, cloneShape(depth, meet))
				return
			}
			chooseMeets(0, 1)
			return
		}
		for d := 0; d <= c.maxDepth; d++ {
			if !c.depthRealizable(d) {
				continue
			}
			depth[i] = d
			chooseDepths(i + 1)
		}
	}
	chooseDepths(0)
	return shapes
}

func normPair(p [2]int) [2]int {
	if p[0] > p[1] {
		return [2]int{p[1], p[0]}
	}
	return p
}

// threePoint checks the forest meet condition for three pairwise meet
// depths: the two smallest values must be equal.
func threePoint(a, b, c int) bool {
	x, y, z := a, b, c
	// Sort the three values.
	if x > y {
		x, y = y, x
	}
	if y > z {
		y, z = z, y
	}
	if x > y {
		x, y = y, x
	}
	return x == y
}

func cloneShape(depth []int, meet [][]int) *shape {
	d := append([]int(nil), depth...)
	m := make([][]int, len(meet))
	for i := range meet {
		m[i] = append([]int(nil), meet[i]...)
	}
	return &shape{depth: d, meet: m}
}

// shapeTree is the rooted forest of "slots" induced by a shape: one node per
// equivalence class of variable-ancestor positions.  Variables map to slots;
// every slot is an ancestor of (or equal to) some variable slot.
type shapeTree struct {
	numSlots     int
	slotDepth    []int
	slotParent   []int // -1 for roots
	slotChildren [][]int
	roots        []int
	// varSlot maps each variable index to its slot.
	varSlot []int
	// slotVars lists the variables mapped to each slot.
	slotVars [][]int
}

// buildShapeTree materialises the slot forest of a shape.
func buildShapeTree(sh *shape) *shapeTree {
	k := len(sh.depth)
	// Positions are pairs (variable, level) with level ≤ depth(variable).
	type pos struct{ v, level int }
	var positions []pos
	index := map[pos]int{}
	for v := 0; v < k; v++ {
		for l := 0; l <= sh.depth[v]; l++ {
			p := pos{v, l}
			index[p] = len(positions)
			positions = append(positions, p)
		}
	}
	// Union-find over positions: (i, l) ~ (j, l) whenever l ≤ meet(i, j).
	parent := make([]int, len(positions))
	for i := range parent {
		parent[i] = i
	}
	var find func(x int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[ra] = rb
		}
	}
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			m := sh.meet[i][j]
			for l := 0; l <= m; l++ {
				union(index[pos{i, l}], index[pos{j, l}])
			}
		}
	}
	// Assign slot ids to classes.
	slotOf := map[int]int{}
	t := &shapeTree{varSlot: make([]int, k)}
	slotID := func(p pos) int {
		root := find(index[p])
		if id, ok := slotOf[root]; ok {
			return id
		}
		id := t.numSlots
		t.numSlots++
		slotOf[root] = id
		t.slotDepth = append(t.slotDepth, p.level)
		t.slotParent = append(t.slotParent, -1)
		return id
	}
	for _, p := range positions {
		slotID(p)
	}
	// Parent links and variable slots.
	for v := 0; v < k; v++ {
		for l := 0; l <= sh.depth[v]; l++ {
			id := slotID(pos{v, l})
			if l > 0 {
				t.slotParent[id] = slotID(pos{v, l - 1})
			}
		}
		t.varSlot[v] = slotID(pos{v, sh.depth[v]})
	}
	t.slotChildren = make([][]int, t.numSlots)
	t.slotVars = make([][]int, t.numSlots)
	for s := 0; s < t.numSlots; s++ {
		if p := t.slotParent[s]; p >= 0 {
			t.slotChildren[p] = append(t.slotChildren[p], s)
		} else {
			t.roots = append(t.roots, s)
		}
	}
	for v := 0; v < k; v++ {
		t.slotVars[t.varSlot[v]] = append(t.slotVars[t.varSlot[v]], v)
	}
	return t
}
