package enumerate

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"testing"

	"repro/internal/circuit"
	"repro/internal/compile"
	"repro/internal/logic"
	"repro/internal/provenance"
	"repro/internal/structure"
)

func errf(format string, args ...any) error { return fmt.Errorf(format, args...) }

// TestEnumeratorSnapshotPinsValues pins snapshots of a hand-built circuit
// (add, mul and permanent gates) along an update stream and checks that each
// keeps streaming exactly the monomial multiset of its own epoch — including
// input-value replacements that do not flip emptiness, which only the undo
// log can recover.
func TestEnumeratorSnapshotPinsValues(t *testing.T) {
	c := circuit.NewBuilder()
	a := c.Input(key("a", 0))
	b := c.Input(key("b", 0))
	d := c.Input(key("d", 0))
	e4 := c.Input(key("e", 0))
	sum := c.Add(a, b, d, b)
	prod := c.Mul(sum, a)
	perm := c.Perm(2, 3, []circuit.PermEntry{
		{Row: 0, Col: 0, Gate: a}, {Row: 1, Col: 0, Gate: b},
		{Row: 0, Col: 1, Gate: d}, {Row: 1, Col: 1, Gate: e4},
		{Row: 0, Col: 2, Gate: b},
	})
	c.SetOutput(c.Add(prod, c.ConstInt(2), perm, c.Mul(b, d)))

	gens := []Value{Zero(), Gen("g0"), Gen("g1"),
		FromPoly(provenance.FromMonomials(provenance.NewMonomial("x"), provenance.NewMonomial("y")))}
	inputs := map[structure.WeightKey]Value{
		key("a", 0): Gen("a"), key("b", 0): Gen("b"),
		key("d", 0): Zero(), key("e", 0): One(),
	}
	lookup := func(k structure.WeightKey) Value { return inputs[k] }
	e := New(c, lookup)

	type pinned struct {
		snap *Snapshot
		want []string // monomial multiset at the pinned epoch
	}
	explicit := func() []string { return polyMultiset(EvaluateExplicit(c, lookup)) }

	pins := []pinned{{e.Snapshot(), explicit()}}
	r := rand.New(rand.NewSource(31))
	keys := []structure.WeightKey{key("a", 0), key("b", 0), key("d", 0), key("e", 0)}
	for step := 0; step < 30; step++ {
		k := keys[r.Intn(len(keys))]
		v := gens[r.Intn(len(gens))]
		inputs[k] = v
		e.SetInput(k, v)
		if step%7 == 0 {
			pins = append(pins, pinned{e.Snapshot(), explicit()})
		}
	}

	for i, p := range pins {
		var got []provenance.Monomial
		cur := p.snap.Cursor()
		for {
			m, ok := cur.Next()
			if !ok {
				break
			}
			got = append(got, m)
		}
		if !equalStringSlices(monomialMultiset(got), p.want) {
			t.Errorf("pin %d (epoch %d): snapshot enumerates %v, want %v",
				i, p.snap.Epoch(), monomialMultiset(got), p.want)
		}
		if p.snap.Empty() != (len(p.want) == 0) {
			t.Errorf("pin %d: Empty() = %v with %d monomials expected", i, p.snap.Empty(), len(p.want))
		}
	}
	// The live enumerator still answers the present.
	if got := monomialMultiset(e.CollectAll(0)); !equalStringSlices(got, explicit()) {
		t.Errorf("live enumerator drifted: %v vs %v", got, explicit())
	}
	for _, i := range r.Perm(len(pins)) {
		pins[i].snap.Release()
		pins[i].snap.Release() // idempotent
	}
	if got := e.RetainedUndoBytes(); got != 0 {
		t.Errorf("retained undo bytes %d after all snapshots released, want 0", got)
	}
}

// TestAnswersSnapshotPinnedEpochs pins answer-set snapshots along a stream
// of dynamic tuple updates and checks Collect, Count and Empty against the
// naive answers of a frozen mirror structure.
func TestAnswersSnapshotPinnedEpochs(t *testing.T) {
	a := enumerationStructure(9, 20, 29)
	phi := logic.Conj(logic.R("E", "x", "y"), logic.Neg(logic.R("E", "y", "x")))
	vars := []string{"x", "y"}
	ans, err := EnumerateAnswers(a, phi, vars, compile.Options{DynamicRelations: []string{"E"}})
	if err != nil {
		t.Fatalf("EnumerateAnswers: %v", err)
	}

	type pinned struct {
		snap   *AnswersSnapshot
		mirror *structure.Structure
	}
	record := func() pinned { return pinned{ans.Snapshot(), a.Clone()} }

	pins := []pinned{record()}
	r := rand.New(rand.NewSource(37))
	edges := append([]structure.Tuple(nil), a.Tuples("E")...)
	for step := 0; step < 30; step++ {
		base := edges[r.Intn(len(edges))]
		target := base
		if r.Intn(2) == 0 {
			target = structure.Tuple{base[1], base[0]}
		}
		present := r.Intn(2) == 0
		if err := ans.SetTuple("E", target, present); err != nil {
			t.Fatalf("SetTuple: %v", err)
		}
		setMirror(a, "E", target, present)
		if step%9 == 0 {
			pins = append(pins, record())
		}
	}

	for i, p := range pins {
		want := sortTuples(logic.Answers(phi, p.mirror, vars))
		got := sortTuples(p.snap.Collect(0))
		if !equalStringSlices(got, want) {
			t.Errorf("pin %d (epoch %d): snapshot answers %v, want %v", i, p.snap.Epoch(), got, want)
		}
		if p.snap.Count() != int64(len(want)) {
			t.Errorf("pin %d: Count() = %d, want %d", i, p.snap.Count(), len(want))
		}
		if p.snap.Empty() != (len(want) == 0) {
			t.Errorf("pin %d: Empty() inconsistent", i)
		}
	}
	if ans.RetainedUndoBytes() == 0 {
		t.Error("no undo history retained while snapshots are pinned")
	}
	for _, p := range pins {
		p.snap.Release()
	}
	if got := ans.RetainedUndoBytes(); got != 0 {
		t.Errorf("retained undo bytes %d after all snapshots released, want 0", got)
	}
}

// TestAnswersSnapshotConcurrentReaders is the race-enabled stress test of
// the MVCC contract at the enumeration layer: one writer streams tuple
// updates while reader goroutines pin snapshots and check their enumerated
// answer set against the sequential oracle recorded for their pinned epoch.
func TestAnswersSnapshotConcurrentReaders(t *testing.T) {
	a := enumerationStructure(8, 18, 41)
	phi := logic.Conj(logic.R("E", "x", "y"), logic.Neg(logic.R("E", "y", "x")))
	vars := []string{"x", "y"}
	ans, err := EnumerateAnswers(a, phi, vars, compile.Options{DynamicRelations: []string{"E"}})
	if err != nil {
		t.Fatalf("EnumerateAnswers: %v", err)
	}

	const (
		updates = 120
		readers = 4
	)
	var oracle sync.Map // epoch → sorted answer keys
	oracle.Store(ans.Epoch(), sortTuples(ans.Collect(0)))

	var wg sync.WaitGroup
	done := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(done)
		r := rand.New(rand.NewSource(43))
		edges := append([]structure.Tuple(nil), a.Tuples("E")...)
		for i := 0; i < updates; i++ {
			base := edges[r.Intn(len(edges))]
			target := base
			if r.Intn(2) == 0 {
				target = structure.Tuple{base[1], base[0]}
			}
			if err := ans.SetTuple("E", target, r.Intn(2) == 0); err != nil {
				t.Errorf("SetTuple: %v", err)
				return
			}
			// The oracle entry lands after the commit; readers that pinned
			// this epoch first spin until it appears.
			oracle.Store(ans.Epoch(), sortTuples(ans.Collect(0)))
		}
	}()

	errs := make(chan error, readers)
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				snap := ans.Snapshot()
				got := sortTuples(snap.Collect(0))
				var want any
				for {
					var ok bool
					if want, ok = oracle.Load(snap.Epoch()); ok {
						break
					}
					runtime.Gosched()
				}
				if !equalStringSlices(got, want.([]string)) {
					errs <- errf("reader %d at epoch %d: snapshot answers %v, oracle %v", seed, snap.Epoch(), got, want)
					snap.Release()
					return
				}
				if int64(len(got)) != snap.Count() {
					errs <- errf("reader %d at epoch %d: Count %d, enumerated %d", seed, snap.Epoch(), snap.Count(), len(got))
					snap.Release()
					return
				}
				snap.Release()
			}
		}(int64(i))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if got := ans.RetainedUndoBytes(); got != 0 {
		t.Errorf("retained undo bytes %d after all readers done, want 0", got)
	}
}
