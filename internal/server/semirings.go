package server

import (
	"fmt"
	"sort"

	"repro/internal/compile"
	"repro/internal/dynamicq"
	"repro/internal/provenance"
	"repro/internal/semiring"
	"repro/internal/structure"
)

// Semiring is one named carrier the server can evaluate queries in.  It
// erases the type parameter of internal/semiring so that handlers can be
// written once: the database's serialised int64 weights are embedded into
// the carrier, circuits are evaluated with the level-parallel engine, and
// results come back formatted.
type Semiring interface {
	Name() string
	// Convert embeds the database's integer weights into the carrier once;
	// the result is immutable and may be shared by any number of Evaluate
	// calls (sessions convert their own mutable copy instead).
	Convert(w *structure.Weights[int64]) ConvertedWeights
	// Evaluate runs the compiled circuit under previously converted weights
	// across workers goroutines and formats the output value.
	Evaluate(res *compile.Result, cw ConvertedWeights, workers int) string
	// NewSession instantiates per-session dynamic state (Theorem 8) on top
	// of a shared compilation, with a private copy of the weights (sessions
	// mutate theirs through SetWeight).
	NewSession(sh *dynamicq.Shared, w *structure.Weights[int64]) Session
}

// ConvertedWeights is an opaque *structure.Weights[T] produced by a
// Semiring's Convert and consumed by the same Semiring's Evaluate.
type ConvertedWeights any

// Session is a compiled query with mutable update state in one semiring.
// Sessions are NOT safe for concurrent use; the server guards each with its
// own lock.
type Session interface {
	FreeVars() []string
	// Point returns the formatted value of the query at a tuple of its free
	// variables (no arguments for a closed query).
	Point(args []structure.Element) (string, error)
	// SetWeight updates one weight (the int64 is embedded like the initial
	// database weights).
	SetWeight(weight string, tuple structure.Tuple, value int64) error
	// SetTuple inserts or removes a tuple of a dynamic relation.
	SetTuple(rel string, tuple structure.Tuple, present bool) error
	// ApplyBatch applies a mixed batch of weight and tuple changes
	// atomically (all-or-nothing validation) with a single propagation
	// wave; see dynamicq.Query.ApplyBatch.
	ApplyBatch(changes []SessionChange) error
}

// SessionChange is one update of a Session.ApplyBatch batch: a weight update
// (Weight non-empty) or a dynamic-relation update (Rel non-empty).
type SessionChange struct {
	Weight  string
	Rel     string
	Tuple   structure.Tuple
	Value   int64
	Present bool
}

// typedSemiring adapts one semiring.Semiring[T] to the erased interface.
// embed maps a serialised integer weight into the carrier; it sees the full
// weight key so that carriers like the provenance semiring can mint a
// distinct generator per tuple.
type typedSemiring[T any] struct {
	name  string
	s     semiring.Semiring[T]
	embed func(key structure.WeightKey, v int64) T
}

func (ts *typedSemiring[T]) Name() string { return ts.name }

func (ts *typedSemiring[T]) convert(w *structure.Weights[int64]) *structure.Weights[T] {
	out := structure.NewWeights[T]()
	if w == nil {
		return out
	}
	w.ForEach(func(k structure.WeightKey, v int64) {
		out.Set(k.Weight, structure.ParseTupleKey(k.Tuple), ts.embed(k, v))
	})
	return out
}

func (ts *typedSemiring[T]) Convert(w *structure.Weights[int64]) ConvertedWeights {
	return ts.convert(w)
}

func (ts *typedSemiring[T]) Evaluate(res *compile.Result, cw ConvertedWeights, workers int) string {
	return ts.s.Format(compile.EvaluateParallel(res, ts.s, cw.(*structure.Weights[T]), workers))
}

func (ts *typedSemiring[T]) NewSession(sh *dynamicq.Shared, w *structure.Weights[int64]) Session {
	return &typedSession[T]{ts: ts, q: dynamicq.NewQuery(ts.s, sh, ts.convert(w))}
}

type typedSession[T any] struct {
	ts *typedSemiring[T]
	q  *dynamicq.Query[T]
}

func (s *typedSession[T]) FreeVars() []string { return s.q.FreeVars() }

func (s *typedSession[T]) Point(args []structure.Element) (string, error) {
	v, err := s.q.Value(args...)
	if err != nil {
		return "", err
	}
	return s.ts.s.Format(v), nil
}

func (s *typedSession[T]) SetWeight(weight string, tuple structure.Tuple, value int64) error {
	return s.q.SetWeight(weight, tuple, s.ts.embed(structure.MakeWeightKey(weight, tuple), value))
}

func (s *typedSession[T]) SetTuple(rel string, tuple structure.Tuple, present bool) error {
	return s.q.SetTuple(rel, tuple, present)
}

func (s *typedSession[T]) ApplyBatch(changes []SessionChange) error {
	typed := make([]dynamicq.Change[T], len(changes))
	for i, ch := range changes {
		typed[i] = dynamicq.Change[T]{Rel: ch.Rel, Tuple: ch.Tuple, Present: ch.Present, Weight: ch.Weight}
		if ch.Weight != "" {
			typed[i].Value = s.ts.embed(structure.MakeWeightKey(ch.Weight, ch.Tuple), ch.Value)
		}
	}
	return s.q.ApplyBatch(typed)
}

// semirings is the registry of carriers served over HTTP.  The provenance
// entry maps every non-zero weight to a fresh generator named after its
// tuple, so query values come back as provenance polynomials.
var semirings = map[string]Semiring{
	"natural": &typedSemiring[int64]{
		name:  "natural",
		s:     semiring.Nat,
		embed: func(_ structure.WeightKey, v int64) int64 { return v },
	},
	"minplus": &typedSemiring[semiring.Ext]{
		name:  "minplus",
		s:     semiring.MinPlus,
		embed: func(_ structure.WeightKey, v int64) semiring.Ext { return semiring.Fin(v) },
	},
	"boolean": &typedSemiring[bool]{
		name:  "boolean",
		s:     semiring.Bool,
		embed: func(_ structure.WeightKey, v int64) bool { return v != 0 },
	},
	"provenance": &typedSemiring[*provenance.Poly]{
		name: "provenance",
		s:    provenance.Free,
		embed: func(k structure.WeightKey, v int64) *provenance.Poly {
			if v == 0 {
				return provenance.NewPoly()
			}
			return provenance.Var(provenance.Generator(fmt.Sprintf("%s(%s)", k.Weight, k.Tuple)))
		},
	},
}

// SemiringNames lists the registered semirings in sorted order.
func SemiringNames() []string {
	names := make([]string, 0, len(semirings))
	for name := range semirings {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

func lookupSemiring(name string) (Semiring, error) {
	if s, ok := semirings[name]; ok {
		return s, nil
	}
	return nil, fmt.Errorf("unknown semiring %q (available: %v)", name, SemiringNames())
}
