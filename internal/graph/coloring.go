package graph

import "sort"

// Coloring is a (not necessarily proper) vertex colouring: Color[v] is the
// colour of vertex v, colours are 0..NumColors-1.
type Coloring struct {
	Color     []int
	NumColors int
}

// ClassSizes returns the number of vertices of each colour.
func (c *Coloring) ClassSizes() []int {
	sizes := make([]int, c.NumColors)
	for _, col := range c.Color {
		sizes[col]++
	}
	return sizes
}

// GreedyColoring properly colours g greedily along the given vertex order
// (smallest available colour).  With a reversed degeneracy order this uses
// at most degeneracy+1 colours.
func GreedyColoring(g *Graph, order []int) *Coloring {
	n := g.N()
	color := make([]int, n)
	for v := range color {
		color[v] = -1
	}
	maxColor := 0
	used := make([]int, n+1)
	for i := range used {
		used[i] = -1
	}
	for _, v := range order {
		for _, w := range g.Neighbors(v) {
			if color[w] >= 0 {
				used[color[w]] = v
			}
		}
		c := 0
		for used[c] == v {
			c++
		}
		color[v] = c
		if c+1 > maxColor {
			maxColor = c + 1
		}
	}
	return &Coloring{Color: color, NumColors: maxColor}
}

// reverseDegeneracyOrder returns the degeneracy order reversed, which is the
// classic order for greedy colouring with at most degeneracy+1 colours.
func reverseDegeneracyOrder(g *Graph) []int {
	order, _ := g.DegeneracyOrder()
	rev := make([]int, len(order))
	for i, v := range order {
		rev[len(order)-1-i] = v
	}
	return rev
}

// FraternalAugmentation returns a supergraph of g obtained by one round of
// fraternal augmentation: the graph is oriented by degeneracy and for every
// pair of arcs u→w, v→w (a "fraternal" pair) the edge {u, v} is added, and
// for every pair of arcs u→v→w (a "transitive" pair) the edge {u, w} is
// added.
//
// Iterating this operation a bounded number of times on a graph from a
// bounded-expansion class keeps the degeneracy bounded, and a greedy proper
// colouring of the augmented graph yields a low-treedepth colouring
// (Nešetřil–Ossona de Mendez; Proposition 1 of the paper).  This is the
// standard practical recipe; the decomposition identity used by the
// compiler is exact for any colouring, so colouring quality affects only
// performance, never correctness.
func FraternalAugmentation(g *Graph) *Graph {
	o := g.DegeneracyOrientation()
	h := g.Clone()
	for v := 0; v < g.N(); v++ {
		out := o.Out[v]
		// Transitive arcs: v→w→x gives edge {v, x}.
		for _, w := range out {
			for _, x := range o.Out[w] {
				if x != v {
					h.AddEdge(v, x)
				}
			}
		}
	}
	// Fraternal arcs: u→w and v→w gives edge {u, v}.  Collect in-arcs per
	// target by scanning out-lists once.
	in := make([][]int, g.N())
	for v := 0; v < g.N(); v++ {
		for _, w := range o.Out[v] {
			in[w] = append(in[w], v)
		}
	}
	for w := 0; w < g.N(); w++ {
		src := in[w]
		for i := 0; i < len(src); i++ {
			for j := i + 1; j < len(src); j++ {
				h.AddEdge(src[i], src[j])
			}
		}
	}
	return h
}

// LowTreedepthColoring computes a colouring of g intended to have the
// low-treedepth property for parameter p: the subgraph induced by any set of
// at most p colour classes should have small treedepth.
//
// The construction applies p-1 rounds of fraternal augmentation and greedily
// colours the result along a reverse degeneracy order.  For p = 1 this is a
// plain proper colouring (every single class is an independent set,
// treedepth 1); for p = 2 the colouring is a star colouring (every two
// classes induce a star forest, treedepth ≤ 2) whenever the augmentation
// closure is reached.
func LowTreedepthColoring(g *Graph, p int) *Coloring {
	if p < 1 {
		p = 1
	}
	h := g
	for i := 0; i < p-1; i++ {
		h = FraternalAugmentation(h)
	}
	return GreedyColoring(h, reverseDegeneracyOrder(h))
}

// SubsetStatistics describes the treedepth quality of a colouring for a
// particular colour subset.
type SubsetStatistics struct {
	// Colors is the colour subset.
	Colors []int
	// Vertices is the number of vertices in the induced subgraph.
	Vertices int
	// Edges is the number of edges in the induced subgraph.
	Edges int
	// ForestDepth is the depth of the heuristic elimination forest of the
	// induced subgraph (an upper bound on its treedepth, minus one plus
	// one... the number of levels minus 1).
	ForestDepth int
}

// ColoringQuality computes elimination-forest depth statistics for every
// colour subset of size at most p.  It is used by experiment E9 and by
// tests validating the colouring heuristics.
func ColoringQuality(g *Graph, c *Coloring, p int) []SubsetStatistics {
	classes := make([][]int, c.NumColors)
	for v, col := range c.Color {
		classes[col] = append(classes[col], v)
	}
	var stats []SubsetStatistics
	var rec func(start int, chosen []int)
	rec = func(start int, chosen []int) {
		if len(chosen) > 0 {
			var vertices []int
			for _, col := range chosen {
				vertices = append(vertices, classes[col]...)
			}
			sort.Ints(vertices)
			sub, _, _ := g.InducedSubgraph(vertices)
			f := EliminationForest(sub)
			stats = append(stats, SubsetStatistics{
				Colors:      append([]int(nil), chosen...),
				Vertices:    sub.N(),
				Edges:       sub.M(),
				ForestDepth: f.MaxDepth,
			})
		}
		if len(chosen) == p {
			return
		}
		for col := start; col < c.NumColors; col++ {
			rec(col+1, append(chosen, col))
		}
	}
	rec(0, nil)
	return stats
}

// MaxForestDepth returns the maximum elimination-forest depth over all
// colour subsets of size at most p, a practical proxy for the treedepth
// guarantee of Proposition 1.
func MaxForestDepth(g *Graph, c *Coloring, p int) int {
	max := 0
	for _, s := range ColoringQuality(g, c, p) {
		if s.ForestDepth > max {
			max = s.ForestDepth
		}
	}
	return max
}

// IsProperColoring reports whether c is a proper colouring of g.
func IsProperColoring(g *Graph, c *Coloring) bool {
	for _, e := range g.Edges() {
		if c.Color[e[0]] == c.Color[e[1]] {
			return false
		}
	}
	return true
}

// Subsets enumerates all subsets of {0,...,n-1} of size between 1 and k, in
// lexicographic order.  It is shared by the compiler (colour-subset
// decomposition, equation (12) of the paper) and the experiment harness.
func Subsets(n, k int) [][]int {
	var out [][]int
	var rec func(start int, chosen []int)
	rec = func(start int, chosen []int) {
		if len(chosen) > 0 {
			out = append(out, append([]int(nil), chosen...))
		}
		if len(chosen) == k {
			return
		}
		for i := start; i < n; i++ {
			rec(i+1, append(chosen, i))
		}
	}
	rec(0, nil)
	return out
}
