package agg

import (
	"repro/internal/kc"
)

// Analysis is the knowledge-compilation report of a prepared query: the
// structural properties of its frozen circuit program in the vocabulary of
// compilation targets (decomposability, determinism, model counting,
// factorized representations).  It is produced by Analyze and serialises to
// the JSON shape served by aggserve's GET /analyze.
type Analysis struct {
	// Query and Semiring identify the analysed compilation.
	Query    string `json:"query"`
	Semiring string `json:"semiring"`

	// Gates, Wires, Inputs and Depth size the frozen program; Variables
	// counts the distinct weight inputs the output depends on.
	// FootprintBytes is the resident size of the CSR arrays.
	Gates          int   `json:"gates"`
	Wires          int   `json:"wires"`
	Inputs         int   `json:"inputs"`
	Depth          int   `json:"depth"`
	Variables      int   `json:"variables"`
	FootprintBytes int64 `json:"footprintBytes"`

	// Decomposable reports whether every product combines sub-circuits over
	// disjoint variable sets (the d-DNNF condition that makes model counting
	// and enumeration linear); violations list the offending gates.
	Decomposable              bool     `json:"decomposable"`
	DecomposabilityViolations []string `json:"decomposabilityViolations,omitempty"`

	// Deterministic reports whether every sum combines disjoint models.  The
	// check evaluates one free-semiring polynomial per gate, so it only runs
	// on programs of at most DeterminismGateLimit gates; DeterminismChecked
	// records whether it ran.
	DeterminismChecked    bool     `json:"determinismChecked"`
	Deterministic         bool     `json:"deterministic"`
	DeterminismViolations []string `json:"determinismViolations,omitempty"`

	// ModelCount is the number of answers represented by an enumerable
	// query's program ("" for expression-mode queries, whose models are not
	// answer tuples), and Factorization relates the program's size to the
	// flat answer table it replaces.
	ModelCount    string         `json:"modelCount,omitempty"`
	Factorization *Factorization `json:"factorization,omitempty"`
}

// Factorization compares a program against the flat table of its answers,
// measuring how much the circuit representation compresses.
type Factorization struct {
	// CircuitSize is gates plus wires.
	CircuitSize int `json:"circuitSize"`
	// Answers is the number of answer tuples the program represents.
	Answers string `json:"answers"`
	// Arity is the answer arity.
	Arity int `json:"arity"`
	// FlatCells is Answers × Arity, the cell count of the flat table.
	FlatCells string `json:"flatCells"`
	// CompressionRatio is FlatCells / CircuitSize (0 when it overflows or
	// the circuit is empty).
	CompressionRatio float64 `json:"compressionRatio"`
}

// DeterminismGateLimit bounds the program size on which Analyze runs the
// determinism check, which is quadratic-ish in gates × variables; beyond it
// DeterminismChecked is false and Deterministic is unreported.
const DeterminismGateLimit = 1 << 13

// maxReportedViolations caps the violation lists of an Analysis; the counts
// are complete, the examples are the first few in gate order.
const maxReportedViolations = 8

// Analyze inspects the frozen circuit program behind a prepared query and
// reports its knowledge-compilation properties.  It works for expression- and
// formula-mode queries and for nested queries that enumerate (boolean with
// free variables); other nested queries evaluate in stages without one
// overall program and report ErrArgument.  The analysis reads the shared
// frozen artefact, so it is safe to run concurrently with evaluations,
// sessions and enumerations of the same Prepared.
func Analyze(p *Prepared) (*Analysis, error) {
	res := p.result()
	if res == nil {
		return nil, errorf(ErrArgument, p.text, "this nested query evaluates in stages without a single circuit program; analysis needs an enumerable (boolean) nested query or a flat query")
	}
	prog := res.Program
	an := kc.Analyze(prog)

	report := &Analysis{
		Query:          p.text,
		Semiring:       p.SemiringName(),
		Gates:          prog.NumGates(),
		Wires:          kc.Size(prog) - prog.NumGates(),
		Inputs:         prog.NumInputs(),
		Depth:          prog.Depth(),
		Variables:      an.DependencyCount(prog.OutputGate()),
		FootprintBytes: prog.Footprint(),
	}

	dviol := an.CheckDecomposable()
	report.Decomposable = len(dviol) == 0
	report.DecomposabilityViolations = violationStrings(dviol)

	if prog.NumGates() <= DeterminismGateLimit {
		report.DeterminismChecked = true
		tviol := an.CheckDeterministic()
		report.Deterministic = len(tviol) == 0
		report.DeterminismViolations = violationStrings(tviol)
	}

	if p.enum != nil {
		fr := kc.Factorization(prog, len(p.vars))
		report.ModelCount = fr.Answers.String()
		report.Factorization = &Factorization{
			CircuitSize:      fr.CircuitSize,
			Answers:          fr.Answers.String(),
			Arity:            fr.Arity,
			FlatCells:        fr.FlatCells.String(),
			CompressionRatio: fr.CompressionRatio,
		}
	}
	return report, nil
}

// DOT renders the frozen circuit program behind a prepared query in Graphviz
// dot format, for visual inspection of small circuits.  Like Analyze it needs
// a query with a single program (flat queries and enumerable nested ones).
func DOT(p *Prepared) (string, error) {
	res := p.result()
	if res == nil {
		return "", errorf(ErrArgument, p.text, "this nested query evaluates in stages without a single circuit program to render")
	}
	return kc.DOT(res.Program), nil
}

func violationStrings(vs []kc.Violation) []string {
	if len(vs) == 0 {
		return nil
	}
	out := make([]string, 0, min(len(vs), maxReportedViolations))
	for _, v := range vs[:cap(out)] {
		out = append(out, v.String())
	}
	return out
}
