// Command aggenum enumerates the answers of a first-order query on a sparse
// database with constant delay (Theorem 24 of the paper), through the public
// repro/agg facade.
//
// The database is generated on the fly (-kind/-n) or read from a file or
// stdin in the dbio text format; the query is a first-order formula in the
// surface syntax.
//
// Usage:
//
//	aggenum -kind grid -n 4096 -phi 'E(x,y) & E(y,z) & E(z,x)' -vars x,y,z -limit 10
//	agggen -kind bounded-degree -n 10000 | aggenum -stdin \
//	    -phi 'S(x) & !S(y) & E(x,y)' -vars x,y -count
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/agg"
)

func main() {
	phiText := flag.String("phi", "E(x,y) & E(y,z) & E(z,x)", "first-order formula in surface syntax")
	varsText := flag.String("vars", "x,y,z", "comma-separated answer variables")
	kind := flag.String("kind", "bounded-degree", "generated workload kind (ignored with -stdin/-file)")
	n := flag.Int("n", 2000, "generated database size (ignored with -stdin/-file)")
	seed := flag.Int64("seed", 1, "random seed")
	stdin := flag.Bool("stdin", false, "read the database from stdin (dbio format)")
	file := flag.String("file", "", "read the database from this file (dbio format)")
	limit := flag.Int("limit", 20, "print at most this many answers (0 prints none)")
	countOnly := flag.Bool("count", false, "only report the number of answers and timing")
	workers := flag.Int("workers", 1, "worker goroutines for the preprocessing emptiness pass (0 = GOMAXPROCS, 1 = sequential)")
	flag.Parse()
	ctx := context.Background()

	eng, err := agg.OpenSource(agg.Source{Stdin: *stdin, Path: *file, Kind: *kind, N: *n, Seed: *seed})
	if err != nil {
		fmt.Fprintf(os.Stderr, "aggenum: %v\n", err)
		os.Exit(1)
	}
	vars := splitVars(*varsText)
	if len(vars) == 0 {
		fmt.Fprintf(os.Stderr, "aggenum: -vars must list at least one variable\n")
		os.Exit(2)
	}

	// Prepare pays the linear-time preprocessing (compilation plus the
	// emptiness wave); answers then stream with constant delay.
	start := time.Now()
	p, err := eng.Prepare(ctx, *phiText, agg.WithAnswerVars(vars...), agg.WithWorkers(*workers))
	if err != nil {
		fmt.Fprintf(os.Stderr, "aggenum: %v\n", err)
		os.Exit(1)
	}
	preprocess := time.Since(start)

	db := eng.Database()
	fmt.Printf("database: n=%d tuples=%d\n", db.Elements(), db.TupleCount())
	fmt.Printf("query:    %s   answers over (%s)\n", p.Canonical(), strings.Join(p.AnswerVars(), ", "))
	fmt.Printf("preprocessing: %v\n", preprocess)

	start = time.Now()
	count, err := p.AnswerCount(ctx)
	if err != nil {
		fmt.Fprintf(os.Stderr, "aggenum: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("answers: %d (counted in %v)\n", count, time.Since(start))

	if *countOnly || *limit == 0 {
		return
	}

	out := bufio.NewWriter(os.Stdout)
	defer out.Flush()
	printed := 0
	start = time.Now()
	for ans, err := range p.Enumerate(ctx) {
		if err != nil {
			fmt.Fprintf(os.Stderr, "aggenum: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(out, "  %v\n", []int(ans))
		if printed++; printed >= *limit {
			break
		}
	}
	elapsed := time.Since(start)
	if printed > 0 {
		fmt.Fprintf(out, "enumerated %d answers in %v (%.1fµs per answer)\n",
			printed, elapsed, float64(elapsed.Microseconds())/float64(printed))
	}
}

func splitVars(s string) []string {
	var out []string
	for _, v := range strings.Split(s, ",") {
		v = strings.TrimSpace(v)
		if v != "" {
			out = append(out, v)
		}
	}
	return out
}
