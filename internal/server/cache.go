package server

import (
	"container/list"
	"sync"
)

// lruCache is a size-bounded LRU of compiled artefacts.  Entries are created
// at most once per key: concurrent requests for the same key share one
// compilation (the loser of the insertion race waits on the winner's
// sync.Once), so a thundering herd on a cold query pays the compiler once.
type lruCache struct {
	mu    sync.Mutex
	max   int
	order *list.List // front = most recently used; values are *cacheSlot
	items map[string]*list.Element
}

type cacheSlot struct {
	key  string
	once sync.Once
	// building is true until the slot's build completes; guarded by the
	// cache mutex.  Eviction skips building slots: dropping one would let a
	// concurrent request for the same key start a duplicate compilation
	// while the first is still running.
	building bool
	// bytes is the resident size of the slot's frozen Program (0 while
	// building or when the value carries none); guarded by the cache mutex.
	bytes int64
	// value and err are written inside once and read only afterwards.
	value any
	err   error
}

// footprinter is implemented by cache values backed by a frozen circuit
// program (agg.Prepared); the cache uses it to report per-entry resident
// bytes.
type footprinter interface {
	Footprint() int64
}

func newLRUCache(max int) *lruCache {
	if max <= 0 {
		max = 128
	}
	return &lruCache{max: max, order: list.New(), items: map[string]*list.Element{}}
}

// getOrCreate returns the cached value for key, building it with build on
// first use.  The second return reports whether the request was served from
// an existing, successfully built (or still successfully building) slot — a
// waiter that joins a build which then fails is a miss, not a hit.  A slot
// whose build failed is evicted so the next request retries.
func (c *lruCache) getOrCreate(key string, build func() (any, error)) (any, bool, error) {
	c.mu.Lock()
	el, hit := c.items[key]
	if hit {
		c.order.MoveToFront(el)
	} else {
		el = c.order.PushFront(&cacheSlot{key: key, building: true})
		c.items[key] = el
		c.evictLocked()
	}
	slot := el.Value.(*cacheSlot)
	c.mu.Unlock()

	slot.once.Do(func() {
		slot.value, slot.err = build()
		var bytes int64
		if sized, ok := slot.value.(footprinter); ok && slot.err == nil {
			bytes = sized.Footprint()
		}
		c.mu.Lock()
		slot.building = false
		slot.bytes = bytes
		c.mu.Unlock()
		if slot.err != nil {
			c.remove(key, slot)
		}
	})
	return slot.value, hit && slot.err == nil, slot.err
}

// evictLocked trims the cache to max entries, skipping slots whose build is
// still in flight (the cache may transiently exceed max while many distinct
// cold keys build concurrently).  Callers must hold c.mu.
func (c *lruCache) evictLocked() {
	excess := c.order.Len() - c.max
	for el := c.order.Back(); el != nil && excess > 0; {
		prev := el.Prev()
		if slot := el.Value.(*cacheSlot); !slot.building {
			c.order.Remove(el)
			delete(c.items, slot.key)
			excess--
		}
		el = prev
	}
}

// remove drops the slot from the cache if it is still the one mapped at key.
func (c *lruCache) remove(key string, slot *cacheSlot) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok && el.Value.(*cacheSlot) == slot {
		c.order.Remove(el)
		delete(c.items, key)
	}
}

// len reports the current number of cached entries.
func (c *lruCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// entryBytes reports the resident Program size of every cached entry in
// MRU-to-LRU order (0 for slots still building), plus the total.
func (c *lruCache) entryBytes() (entries []int64, total int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	entries = make([]int64, 0, c.order.Len())
	for el := c.order.Front(); el != nil; el = el.Next() {
		b := el.Value.(*cacheSlot).bytes
		entries = append(entries, b)
		total += b
	}
	return entries, total
}
