package expr

import (
	"fmt"
	"sort"

	"repro/internal/logic"
	"repro/internal/semiring"
	"repro/internal/structure"
)

// Literal is a signed relational or equality atom over variables.
type Literal struct {
	// Positive is false for a negated atom.
	Positive bool
	// Rel is the relation symbol, or "" for an equality literal.
	Rel string
	// Args are the variable arguments (exactly two for equality literals).
	Args []string
}

// IsEquality reports whether the literal is an equality (or disequality).
func (l Literal) IsEquality() bool { return l.Rel == "" }

// String renders the literal.
func (l Literal) String() string {
	var core string
	if l.IsEquality() {
		if l.Positive {
			core = l.Args[0] + "=" + l.Args[1]
		} else {
			core = l.Args[0] + "≠" + l.Args[1]
		}
		return core
	}
	core = l.Rel + "("
	for i, a := range l.Args {
		if i > 0 {
			core += ","
		}
		core += a
	}
	core += ")"
	if !l.Positive {
		core = "¬" + core
	}
	return core
}

// WeightTerm is a weight symbol applied to variables within a monomial.
type WeightTerm struct {
	W    string
	Args []string
}

// String renders the weight term.
func (w WeightTerm) String() string {
	s := w.W + "("
	for i, a := range w.Args {
		if i > 0 {
			s += ","
		}
		s += a
	}
	return s + ")"
}

// Monomial is one summand of a normalised weighted expression: an integer
// coefficient times a product of (possibly negated) literals and weight
// terms, aggregated over the bound variables.
//
// Its value on a structure A under weights w and an assignment of the free
// variables is
//
//	Coeff · Σ_{bound vars → A} Π [literals] · Π weights.
type Monomial struct {
	Coeff    int64
	Bound    []string
	Literals []Literal
	Weights  []WeightTerm
}

// Vars returns the sorted set of variables occurring in literals or weight
// terms of the monomial.
func (m *Monomial) Vars() []string {
	set := map[string]bool{}
	for _, l := range m.Literals {
		for _, a := range l.Args {
			set[a] = true
		}
	}
	for _, w := range m.Weights {
		for _, a := range w.Args {
			set[a] = true
		}
	}
	out := make([]string, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// FreeVars returns the variables of the monomial that are not bound.
func (m *Monomial) FreeVars() []string {
	bound := map[string]bool{}
	for _, v := range m.Bound {
		bound[v] = true
	}
	var out []string
	for _, v := range m.Vars() {
		if !bound[v] {
			out = append(out, v)
		}
	}
	return out
}

// String renders the monomial.
func (m *Monomial) String() string {
	s := fmt.Sprintf("%d", m.Coeff)
	if len(m.Bound) > 0 {
		s += " Σ_{"
		for i, v := range m.Bound {
			if i > 0 {
				s += ","
			}
			s += v
		}
		s += "}"
	}
	for _, l := range m.Literals {
		s += " [" + l.String() + "]"
	}
	for _, w := range m.Weights {
		s += " " + w.String()
	}
	return s
}

// Polynomial is a sum of monomials; the value of the original expression is
// the sum of the values of its monomials.
type Polynomial struct {
	Monomials []*Monomial
}

// NormalizeOptions controls normalisation.
type NormalizeOptions struct {
	// MaxBracketAtoms bounds the number of distinct atoms within one Iverson
	// bracket, since the exclusive-DNF expansion enumerates 2^atoms
	// valuations.  Zero means the default of 16.
	MaxBracketAtoms int
}

// Normalize rewrites a weighted expression into a sum of prenex monomials.
//
// The rewriting implements Lemma 28 of the paper combined with the
// exclusive-disjunction expansion of Iverson brackets: brackets must be
// quantifier free (apply qe.Eliminate first), brackets are expanded into
// mutually exclusive conjunctions of literals so that [ϕ] equals the sum of
// the resulting monomials in every semiring, products are distributed over
// sums, and aggregations are pulled to the front after renaming bound
// variables apart.
func Normalize(e Expr, opts NormalizeOptions) (*Polynomial, error) {
	if opts.MaxBracketAtoms == 0 {
		opts.MaxBracketAtoms = 16
	}
	counter := 0
	renamed := renameApart(e, map[string]string{}, &counter)
	poly, err := normalize(renamed, opts)
	if err != nil {
		return nil, err
	}
	poly = simplify(poly)
	return poly, nil
}

// renameApart renames every bound variable to a fresh name of the form
// ".bN" so that distinct aggregations never share variable names and bound
// names never clash with free names.
func renameApart(e Expr, sub map[string]string, counter *int) Expr {
	switch x := e.(type) {
	case Const:
		return x
	case Weight:
		args := make([]string, len(x.Args))
		for i, a := range x.Args {
			if b, ok := sub[a]; ok {
				args[i] = b
			} else {
				args[i] = a
			}
		}
		return Weight{W: x.W, Args: args}
	case Bracket:
		renaming := map[string]string{}
		for k, v := range sub {
			renaming[k] = v
		}
		return Bracket{F: logic.Rename(x.F, renaming)}
	case Add:
		args := make([]Expr, len(x.Args))
		for i, a := range x.Args {
			args[i] = renameApart(a, sub, counter)
		}
		return Add{Args: args}
	case Mul:
		args := make([]Expr, len(x.Args))
		for i, a := range x.Args {
			args[i] = renameApart(a, sub, counter)
		}
		return Mul{Args: args}
	case Sum:
		inner := map[string]string{}
		for k, v := range sub {
			inner[k] = v
		}
		fresh := make([]string, len(x.Vars))
		for i, v := range x.Vars {
			*counter++
			fresh[i] = fmt.Sprintf(".b%d", *counter)
			inner[v] = fresh[i]
		}
		return Sum{Vars: fresh, Arg: renameApart(x.Arg, inner, counter)}
	default:
		panic(fmt.Sprintf("expr: unknown expression type %T", e))
	}
}

func normalize(e Expr, opts NormalizeOptions) (*Polynomial, error) {
	switch x := e.(type) {
	case Const:
		if x.N < 0 {
			return nil, fmt.Errorf("expr: negative constant %d not representable in a general semiring", x.N)
		}
		if x.N == 0 {
			return &Polynomial{}, nil
		}
		return &Polynomial{Monomials: []*Monomial{{Coeff: x.N}}}, nil
	case Weight:
		return &Polynomial{Monomials: []*Monomial{{
			Coeff:   1,
			Weights: []WeightTerm{{W: x.W, Args: append([]string(nil), x.Args...)}},
		}}}, nil
	case Bracket:
		return expandBracket(x.F, opts)
	case Add:
		out := &Polynomial{}
		for _, arg := range x.Args {
			p, err := normalize(arg, opts)
			if err != nil {
				return nil, err
			}
			out.Monomials = append(out.Monomials, p.Monomials...)
		}
		return out, nil
	case Mul:
		out := &Polynomial{Monomials: []*Monomial{{Coeff: 1}}}
		for _, arg := range x.Args {
			p, err := normalize(arg, opts)
			if err != nil {
				return nil, err
			}
			out = multiplyPolynomials(out, p)
		}
		return out, nil
	case Sum:
		p, err := normalize(x.Arg, opts)
		if err != nil {
			return nil, err
		}
		for _, m := range p.Monomials {
			m.Bound = append(m.Bound, x.Vars...)
		}
		return p, nil
	default:
		return nil, fmt.Errorf("expr: unknown expression type %T", e)
	}
}

func multiplyPolynomials(a, b *Polynomial) *Polynomial {
	out := &Polynomial{}
	for _, ma := range a.Monomials {
		for _, mb := range b.Monomials {
			m := &Monomial{
				Coeff:    ma.Coeff * mb.Coeff,
				Bound:    append(append([]string(nil), ma.Bound...), mb.Bound...),
				Literals: append(append([]Literal(nil), ma.Literals...), mb.Literals...),
				Weights:  append(append([]WeightTerm(nil), ma.Weights...), mb.Weights...),
			}
			out.Monomials = append(out.Monomials, m)
		}
	}
	return out
}

// expandBracket rewrites [ϕ] for quantifier-free ϕ into a sum of mutually
// exclusive monomials whose literals are complete sign patterns over the
// atoms of ϕ.  The expansion is exponential in the number of atoms of ϕ
// (query complexity only, never data complexity).
func expandBracket(f logic.Formula, opts NormalizeOptions) (*Polynomial, error) {
	if !logic.IsQuantifierFree(f) {
		return nil, fmt.Errorf("expr: bracket [%s] contains quantifiers; apply quantifier elimination first (see internal/qe)", f)
	}
	atoms := logic.CollectAtoms(f)
	if len(atoms) > opts.MaxBracketAtoms {
		return nil, fmt.Errorf("expr: bracket [%s] has %d distinct atoms, exceeding the expansion limit %d", f, len(atoms), opts.MaxBracketAtoms)
	}
	out := &Polynomial{}
	total := 1 << uint(len(atoms))
	for mask := 0; mask < total; mask++ {
		truth := map[string]bool{}
		for i, atom := range atoms {
			truth[atom.String()] = mask&(1<<uint(i)) != 0
		}
		if !logic.EvalUnderAtoms(f, truth) {
			continue
		}
		m := &Monomial{Coeff: 1}
		for i, atom := range atoms {
			positive := mask&(1<<uint(i)) != 0
			switch a := atom.(type) {
			case logic.Atom:
				m.Literals = append(m.Literals, Literal{Positive: positive, Rel: a.Rel, Args: append([]string(nil), a.Args...)})
			case logic.Eq:
				m.Literals = append(m.Literals, Literal{Positive: positive, Args: []string{a.Left, a.Right}})
			default:
				return nil, fmt.Errorf("expr: unexpected atom type %T", atom)
			}
		}
		out.Monomials = append(out.Monomials, m)
	}
	return out, nil
}

// simplify removes monomials that are trivially zero (contradictory literal
// sets, x≠x, zero coefficients) and drops trivially true literals (x=x).
func simplify(p *Polynomial) *Polynomial {
	out := &Polynomial{}
	for _, m := range p.Monomials {
		if m.Coeff == 0 {
			continue
		}
		if contradictory(m) {
			continue
		}
		cleaned := &Monomial{Coeff: m.Coeff, Bound: dedupStrings(m.Bound), Weights: m.Weights}
		for _, l := range m.Literals {
			if l.IsEquality() && l.Args[0] == l.Args[1] {
				if l.Positive {
					continue // x = x is always true
				}
				// x ≠ x is always false; monomial is zero.
				cleaned = nil
				break
			}
			cleaned.Literals = append(cleaned.Literals, l)
		}
		if cleaned == nil {
			continue
		}
		out.Monomials = append(out.Monomials, cleaned)
	}
	return out
}

func contradictory(m *Monomial) bool {
	seen := map[string]bool{}
	for _, l := range m.Literals {
		key := Literal{Positive: true, Rel: l.Rel, Args: l.Args}.String()
		if prev, ok := seen[key]; ok && prev != l.Positive {
			return true
		}
		seen[key] = l.Positive
	}
	return false
}

func dedupStrings(xs []string) []string {
	seen := map[string]bool{}
	var out []string
	for _, x := range xs {
		if !seen[x] {
			seen[x] = true
			out = append(out, x)
		}
	}
	return out
}

// MaxBoundVars returns the largest number of bound variables over the
// monomials of p; this is the parameter p of the low-treedepth colouring
// used by the compiler.
func (p *Polynomial) MaxBoundVars() int {
	max := 0
	for _, m := range p.Monomials {
		if len(m.Bound) > max {
			max = len(m.Bound)
		}
	}
	return max
}

// FreeVars returns the sorted free variables over all monomials of p.
func (p *Polynomial) FreeVars() []string {
	set := map[string]bool{}
	for _, m := range p.Monomials {
		for _, v := range m.FreeVars() {
			set[v] = true
		}
	}
	out := make([]string, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// String renders the polynomial.
func (p *Polynomial) String() string {
	if len(p.Monomials) == 0 {
		return "0"
	}
	s := ""
	for i, m := range p.Monomials {
		if i > 0 {
			s += "  +  "
		}
		s += m.String()
	}
	return s
}

// EvalPolynomial evaluates the polynomial naively on a structure.  It exists
// to cross-check Normalize against the reference evaluator Eval in tests.
func EvalPolynomial[T any](s semiring.Semiring[T], a *structure.Structure, w *structure.Weights[T], p *Polynomial, env map[string]structure.Element) T {
	total := s.Zero()
	for _, m := range p.Monomials {
		total = s.Add(total, evalMonomial(s, a, w, m, env))
	}
	return total
}

func evalMonomial[T any](s semiring.Semiring[T], a *structure.Structure, w *structure.Weights[T], m *Monomial, env map[string]structure.Element) T {
	assignment := map[string]structure.Element{}
	for k, v := range env {
		assignment[k] = v
	}
	var rec func(i int) T
	rec = func(i int) T {
		if i == len(m.Bound) {
			val := semiring.ScalarMul(s, m.Coeff, s.One())
			for _, l := range m.Literals {
				val = s.Mul(val, semiring.Iverson(s, evalLiteral(a, l, assignment)))
			}
			for _, wt := range m.Weights {
				tuple := make(structure.Tuple, len(wt.Args))
				for j, arg := range wt.Args {
					tuple[j] = assignment[arg]
				}
				if v, ok := w.Get(wt.W, tuple); ok {
					val = s.Mul(val, v)
				} else {
					val = s.Mul(val, s.Zero())
				}
			}
			return val
		}
		acc := s.Zero()
		v := m.Bound[i]
		for x := 0; x < a.N; x++ {
			assignment[v] = x
			acc = s.Add(acc, rec(i+1))
		}
		delete(assignment, v)
		return acc
	}
	return rec(0)
}

func evalLiteral(a *structure.Structure, l Literal, env map[string]structure.Element) bool {
	var holds bool
	if l.IsEquality() {
		holds = env[l.Args[0]] == env[l.Args[1]]
	} else {
		tuple := make(structure.Tuple, len(l.Args))
		for i, arg := range l.Args {
			tuple[i] = env[arg]
		}
		holds = a.HasTuple(l.Rel, tuple...)
	}
	if l.Positive {
		return holds
	}
	return !holds
}
