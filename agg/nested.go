package agg

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/compile"
	"repro/internal/nested"
	"repro/internal/obs"
	"repro/internal/semiring"
	"repro/internal/structure"
)

// Nested is a nested (FOG[C], Section 7 of the paper) formula under
// construction: a syntax tree that may aggregate in several semirings and
// move between them through guarded connectives.  Build one with the N*
// constructors and pass it to Prepare through WithNested; semiring names are
// resolved against the registry and the tree is validated when the query is
// prepared, so the constructors themselves never fail.
//
// Boolean relations of the database appear through NAtom, its weight symbols
// through NWeight (valued in the Prepare semiring), and the connectives of
// NGuard change carriers under a guard relation.  A boolean-valued Nested
// with free variables supports Enumerate/AnswerCount like a flat formula; any
// Nested supports Eval (closed or at a point) and Session.
type Nested struct {
	kind nkind
	rel  string
	args []string
	val  int64
	b    bool
	conn NestedConnective
	vars []string
	kids []*Nested
}

type nkind int

const (
	nAtom nkind = iota + 1
	nWeight
	nConstVal
	nConstBool
	nNot
	nPlus
	nTimes
	nSum
	nBracket
	nGuard
)

// NestedConnective names one of the guarded connectives available to NGuard.
type NestedConnective int

const (
	// ConnGreaterThan compares two values of one ordered semiring: boolean
	// a > b.
	ConnGreaterThan NestedConnective = iota + 1
	// ConnAtLeast compares two values of one ordered semiring: boolean a ≥ b.
	ConnAtLeast
	// ConnToMaxPlus embeds a natural number into the max-plus semiring, so
	// maxima can be taken over aggregates.
	ConnToMaxPlus
	// ConnRatio computes the integer ratio ⌊a/b⌋ of two naturals (0 when
	// b = 0).
	ConnRatio
)

func (c NestedConnective) String() string {
	switch c {
	case ConnGreaterThan:
		return ">"
	case ConnAtLeast:
		return "≥"
	case ConnToMaxPlus:
		return "toMaxPlus"
	case ConnRatio:
		return "ratio"
	}
	return fmt.Sprintf("NestedConnective(%d)", int(c))
}

// NAtom builds a boolean relation atom R(vars...).
func NAtom(rel string, vars ...string) *Nested {
	return &Nested{kind: nAtom, rel: rel, args: vars}
}

// NWeight builds an atom of a database weight symbol, valued in the Prepare
// semiring.
func NWeight(weight string, vars ...string) *Nested {
	return &Nested{kind: nWeight, rel: weight, args: vars}
}

// NConst builds a constant of the Prepare semiring, embedded from an int64
// exactly like a database weight.
func NConst(v int64) *Nested { return &Nested{kind: nConstVal, val: v} }

// NBool builds a boolean constant.
func NBool(b bool) *Nested { return &Nested{kind: nConstBool, b: b} }

// NNot negates a boolean formula.
func NNot(f *Nested) *Nested { return &Nested{kind: nNot, kids: []*Nested{f}} }

// NPlus adds two formulas of the same semiring (disjunction on booleans).
func NPlus(l, r *Nested) *Nested { return &Nested{kind: nPlus, kids: []*Nested{l, r}} }

// NTimes multiplies two formulas of the same semiring (conjunction on
// booleans).
func NTimes(l, r *Nested) *Nested { return &Nested{kind: nTimes, kids: []*Nested{l, r}} }

// NSum aggregates over variables in the formula's semiring (existential
// quantification on booleans).
func NSum(vars []string, f *Nested) *Nested {
	return &Nested{kind: nSum, vars: vars, kids: []*Nested{f}}
}

// NExists is boolean existential quantification (an alias of NSum).
func NExists(vars []string, f *Nested) *Nested { return NSum(vars, f) }

// NBracket converts a boolean formula into 0/1 of the Prepare semiring (the
// Iverson bracket).
func NBracket(f *Nested) *Nested { return &Nested{kind: nBracket, kids: []*Nested{f}} }

// NGuard applies a connective under a boolean guard relation:
// [rel(vars...)]·conn(args...).  Every free variable of the arguments must be
// among the guard variables (the FOG[C] restriction, checked at Prepare).
func NGuard(rel string, vars []string, conn NestedConnective, args ...*Nested) *Nested {
	return &Nested{kind: nGuard, rel: rel, vars: vars, conn: conn, kids: args}
}

// resolve turns the builder tree into a checked nested.Formula, with weight
// atoms, constants and brackets valued in sem's carrier.
func (n *Nested) resolve(sem Semiring) (nested.Formula, error) {
	if n == nil {
		return nil, fmt.Errorf("nested query is nil")
	}
	kids := make([]nested.Formula, len(n.kids))
	for i, k := range n.kids {
		f, err := k.resolve(sem)
		if err != nil {
			return nil, err
		}
		kids[i] = f
	}
	switch n.kind {
	case nAtom:
		return nested.B(n.rel, n.args...), nil
	case nWeight:
		return nested.S(sem.boxed(), n.rel, n.args...), nil
	case nConstVal:
		return nested.Val(sem.boxed(), sem.embedAny(structure.MakeWeightKey("", nil), n.val)), nil
	case nConstBool:
		return nested.Val(nested.BoolSemiring, n.b), nil
	case nNot:
		return nested.Neg(kids[0]), nil
	case nPlus:
		return nested.Plus(kids[0], kids[1]), nil
	case nTimes:
		return nested.Times(kids[0], kids[1]), nil
	case nSum:
		return nested.Sum(n.vars, kids[0]), nil
	case nBracket:
		return nested.Bracket(sem.boxed(), kids[0]), nil
	case nGuard:
		conn, err := n.conn.resolve(kids)
		if err != nil {
			return nil, err
		}
		return nested.Guard(n.rel, n.vars, conn, kids...), nil
	}
	return nil, fmt.Errorf("unknown nested node kind %d", n.kind)
}

// resolve binds a connective name to the semirings of its resolved
// arguments.
func (c NestedConnective) resolve(args []nested.Formula) (nested.Connective, error) {
	natArg := func(i int) error {
		if _, ok := args[i].Out().Zero().(int64); !ok {
			return fmt.Errorf("connective %s needs integer-valued arguments, got %s-valued", c, args[i].Out().Name())
		}
		return nil
	}
	switch c {
	case ConnGreaterThan, ConnAtLeast:
		if len(args) != 2 {
			return nested.Connective{}, fmt.Errorf("connective %s needs two arguments, got %d", c, len(args))
		}
		s := args[0].Out()
		if s.Name() != args[1].Out().Name() {
			return nested.Connective{}, fmt.Errorf("connective %s compares values of one semiring, got %s and %s", c, s.Name(), args[1].Out().Name())
		}
		if _, ok := s.Less(s.Zero(), s.Zero()); !ok {
			return nested.Connective{}, fmt.Errorf("connective %s needs an ordered semiring, %s is not", c, s.Name())
		}
		if c == ConnGreaterThan {
			return nested.GreaterThan(s), nil
		}
		return nested.AtLeast(s), nil
	case ConnToMaxPlus:
		if len(args) != 1 {
			return nested.Connective{}, fmt.Errorf("connective %s needs one argument, got %d", c, len(args))
		}
		if err := natArg(0); err != nil {
			return nested.Connective{}, err
		}
		// The output box carries the registry name, so the result composes
		// with atoms prepared under WithSemiring("maxplus").
		return nested.Connective{
			Name: "toMaxPlus",
			Out:  nested.Box[semiring.Ext]("maxplus", semiring.MaxPlus),
			Apply: func(args []any) any {
				return semiring.Fin(args[0].(int64))
			},
		}, nil
	case ConnRatio:
		if len(args) != 2 {
			return nested.Connective{}, fmt.Errorf("connective %s needs two arguments, got %d", c, len(args))
		}
		for i := range args {
			if err := natArg(i); err != nil {
				return nested.Connective{}, err
			}
		}
		// The ratio stays in the arguments' carrier, so it composes with
		// further atoms of the same semiring.
		return nested.Connective{
			Name: "ratio",
			Out:  args[0].Out(),
			Apply: func(args []any) any {
				a, b := args[0].(int64), args[1].(int64)
				if b == 0 {
					return int64(0)
				}
				return a / b
			},
		}, nil
	}
	return nested.Connective{}, fmt.Errorf("unknown connective %s", c)
}

// nestedState is the backend of a nested-mode Prepared: the resolved formula
// over a multi-semiring view of the engine's database.  Evaluators are built
// per read (each materialisation run extends a private working structure);
// the enumeration state, when the formula is boolean with free variables, is
// built once at Prepare and shared.
type nestedState struct {
	db   *nested.Database
	f    nested.Formula
	out  nested.Semiring
	vars []string

	mu sync.Mutex
}

// prepareNested resolves and validates a WithNested query and, for boolean
// formulas with free variables, builds the constant-delay enumeration state.
func (e *Engine) prepareNested(ctx context.Context, p *Prepared) (*Prepared, error) {
	f, err := p.cfg.nested.resolve(p.sem)
	if err != nil {
		return nil, newError(ErrCompile, p.text, err)
	}
	ndb, err := e.nestedDatabase(p.sem)
	if err != nil {
		return nil, newError(ErrCompile, p.text, err)
	}
	st := &nestedState{db: ndb, f: f, out: f.Out(), vars: nested.FreeVars(f)}
	// Validate eagerly (Prepare reports compile errors, reads don't).
	if err := ndb.Check(f); err != nil {
		return nil, newError(ErrCompile, p.text, err)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	p.nst = st
	p.canonical = f.String()
	if st.out.Name() == nested.BoolSemiring.Name() && len(st.vars) > 0 {
		vars := p.cfg.answerVars
		if len(vars) == 0 {
			vars = st.vars
		}
		ev := nested.NewEvaluator(ndb, p.compileOptions())
		ans, err := ev.EnumerateBool(f, vars)
		if err != nil {
			return nil, newError(ErrCompile, p.text, err)
		}
		p.enum = &enumState{ans: ans}
		p.vars = vars
	}
	return p, nil
}

// nestedDatabase builds the multi-semiring view of the engine's database: the
// boolean relations on a weight-free signature, plus one S-relation per
// weight symbol, valued in sem's carrier.
func (e *Engine) nestedDatabase(sem Semiring) (*nested.Database, error) {
	sig, err := structure.NewSignature(e.db.a.Sig.Relations, nil)
	if err != nil {
		return nil, err
	}
	base := structure.NewStructure(sig, e.db.a.N)
	for _, r := range e.db.a.Sig.Relations {
		for _, t := range e.db.a.Tuples(r.Name) {
			base.MustAddTuple(r.Name, t...)
		}
	}
	ndb := nested.NewDatabase(base)
	box := sem.boxed()
	for _, ws := range e.db.a.Sig.Weights {
		if err := ndb.DeclareSRelation(ws.Name, box, ws.Arity); err != nil {
			return nil, err
		}
	}
	var werr error
	if e.db.w != nil {
		e.db.w.ForEach(func(k structure.WeightKey, v int64) {
			if werr != nil {
				return
			}
			if err := ndb.SetValue(k.Weight, structure.ParseTupleKey(k.Tuple), sem.embedAny(k, v)); err != nil {
				werr = err
			}
		})
	}
	if werr != nil {
		return nil, werr
	}
	return ndb, nil
}

// eval answers Eval for a nested-mode Prepared: closed formulas take no
// arguments, formulas with k free variables take exactly k elements.  Each
// call runs a fresh Theorem 26 evaluation over the shared database snapshot.
func (st *nestedState) eval(ctx context.Context, p *Prepared, args ...int) (Value, error) {
	if err := ctx.Err(); err != nil {
		return "", err
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	evalSpan := obs.FromContext(ctx).StartSpan(obs.StageEval)
	v, err := nestedEvalAt(st.db, st.f, st.vars, args, p.compileOptions())
	if err != nil {
		return "", newError(ErrArgument, p.text, err)
	}
	evalSpan.End()
	return Value(st.out.Format(v)), nil
}

// newSession opens a recompute session: updates mutate a private copy of the
// nested database and the next read re-runs the staged evaluation over it.
// Unlike flat sessions there is no incremental maintenance — every relation
// and weight is updatable, at re-evaluation cost per read.
func (st *nestedState) newSession(p *Prepared) erasedSession {
	return &nestedSession{p: p, st: st, db: st.db.Clone()}
}

// nestedEvalAt evaluates f at one assignment of vars (or closed when vars is
// empty) with a fresh evaluator, so repeated calls never accumulate derived
// state.
func nestedEvalAt(db *nested.Database, f nested.Formula, vars []string, args []int, opts compile.Options) (any, error) {
	ev := nested.NewEvaluator(db, opts)
	if len(vars) == 0 {
		if len(args) != 0 {
			return nil, fmt.Errorf("closed nested query takes no arguments, got %d", len(args))
		}
		return ev.EvalClosed(f)
	}
	if len(args) != len(vars) {
		return nil, fmt.Errorf("nested query has free variables %v; pass one argument per variable", vars)
	}
	t := make(structure.Tuple, len(args))
	for i, a := range args {
		t[i] = a
	}
	vals, err := ev.EvalAt(f, vars, []structure.Tuple{t})
	if err != nil {
		return nil, err
	}
	return vals[0], nil
}

// nestedSession adapts a private nested database to the erased session
// interface used by Session.
type nestedSession struct {
	p  *Prepared
	st *nestedState
	db *nested.Database
}

func (s *nestedSession) FreeVars() []string { return append([]string(nil), s.st.vars...) }

func (s *nestedSession) Point(args []int) (string, error) {
	v, err := nestedEvalAt(s.db, s.st.f, s.st.vars, args, s.p.compileOptions())
	if err != nil {
		return "", err
	}
	return s.st.out.Format(v), nil
}

func (s *nestedSession) SetWeight(weight string, tuple []int, value int64) error {
	if _, _, ok := s.db.SRelation(weight); !ok {
		return fmt.Errorf("unknown weight %q", weight)
	}
	return s.db.SetValue(weight, structure.Tuple(tuple), s.p.sem.embedAny(structure.MakeWeightKey(weight, structure.Tuple(tuple)), value))
}

func (s *nestedSession) SetTuple(rel string, tuple []int, present bool) error {
	return s.db.SetTuple(rel, structure.Tuple(tuple), present)
}

// Snapshot is unsupported on nested sessions: the recompute evaluator has no
// epoch-versioned state to pin, so reads that race a writer keep failing fast
// with ErrSessionBusy instead of falling back to a snapshot.
func (s *nestedSession) Snapshot() (erasedSnapshot, error) {
	return nil, fmt.Errorf("nested sessions do not support snapshots")
}

// Epoch is always zero: nested sessions have no commit counter.
func (s *nestedSession) Epoch() uint64 { return 0 }

// RetainedUndoBytes is always zero: nested sessions keep no undo history.
func (s *nestedSession) RetainedUndoBytes() int64 { return 0 }

func (s *nestedSession) ApplyBatch(changes []Change) error {
	// Changes apply in order (so a batch may insert a tuple and then weight
	// it, as in flat sessions); a failing change rolls the whole batch back,
	// and the next read re-materialises once over the final state.
	snapshot := s.db.Clone()
	for i, ch := range changes {
		var err error
		if ch.Weight != "" {
			err = s.SetWeight(ch.Weight, ch.Tuple, ch.Value)
		} else {
			err = s.SetTuple(ch.Rel, ch.Tuple, ch.Present)
		}
		if err != nil {
			s.db = snapshot
			return fmt.Errorf("change %d: %w", i, err)
		}
	}
	return nil
}
