package compile

import (
	"context"
	"fmt"
	"math/big"
	"sort"
	"strings"

	"repro/internal/circuit"
	"repro/internal/expr"
	"repro/internal/graph"
	"repro/internal/logic"
	"repro/internal/qe"
	"repro/internal/semiring"
	"repro/internal/structure"
)

// Options configures compilation.
type Options struct {
	// DynamicRelations lists relation symbols whose tuples may later be
	// inserted or deleted by Gaifman-preserving updates (Lemma 40 of the
	// paper).  Literals over these relations become 0/1 weight inputs of the
	// circuit rather than compile-time constants.
	DynamicRelations []string

	// MaxVars bounds the number of bound variables per monomial; it guards
	// the 2^k / 3^k blow-ups of permanent maintenance and shape enumeration.
	// Zero means the default of 4.
	MaxVars int

	// MaxBracketAtoms is forwarded to expr.Normalize.
	MaxBracketAtoms int

	// SkipQuantifierElimination disables the qe preprocessing; brackets must
	// then already be quantifier free.
	SkipQuantifierElimination bool
}

// Stats summarises the work performed by the compiler.
type Stats struct {
	Monomials         int
	Colors            int
	ColorAssignments  int
	PrunedAssignments int
	Forests           int
	Shapes            int
	MaxForestDepth    int
}

// Result is the outcome of compiling a closed weighted expression over a
// structure: a semiring-agnostic circuit whose inputs are the weights of the
// database (and, for dynamic relations, tuple-membership indicators), plus
// the bookkeeping needed to evaluate and update it.
type Result struct {
	// Circuit is the compiled circuit in builder form; it is kept for
	// structural inspection (Statistics, knowledge-compilation analysis).
	Circuit *circuit.Circuit
	// Program is the frozen CSR form of Circuit, compiled once at the end of
	// Compile.  Every execution layer — evaluation, dynamic sessions,
	// enumeration — runs on this shared immutable artefact.
	Program *circuit.Program
	// Schedule is the level schedule baked into Program at freeze time,
	// materialised for callers that consume the level decomposition.
	Schedule *circuit.Schedule
	// Structure is the (possibly quantifier-elimination-extended) structure
	// the circuit was compiled against.
	Structure *structure.Structure
	// Original is the structure passed to Compile.
	Original *structure.Structure
	// Polynomial is the normalised form of the expression.
	Polynomial *expr.Polynomial
	// Coloring is the low-treedepth colouring used (nil when no monomial has
	// two or more variables).
	Coloring *graph.Coloring
	// DynamicRelations is the set of relations compiled as weight inputs.
	DynamicRelations map[string]bool
	// Stats summarises compilation work.
	Stats Stats
}

// Compile compiles the closed weighted expression e over the structure a
// into a circuit with permanent gates (Theorem 6).  The expression may use
// quantifiers within the guarded-existential fragment supported by
// internal/qe; selections over dynamic relations must be quantifier free.
func Compile(a *structure.Structure, e expr.Expr, opts Options) (*Result, error) {
	if opts.MaxVars == 0 {
		opts.MaxVars = 4
	}
	if err := expr.Validate(e, a.Sig); err != nil {
		return nil, err
	}
	dyn := map[string]bool{}
	for _, r := range opts.DynamicRelations {
		if _, ok := a.Sig.Relation(r); !ok {
			return nil, fmt.Errorf("compile: dynamic relation %q is not in the signature", r)
		}
		dyn[r] = true
	}

	work := a
	var err error
	if !opts.SkipQuantifierElimination {
		work, e, err = eliminateBrackets(a, e, opts.DynamicRelations)
		if err != nil {
			return nil, err
		}
	}

	poly, err := expr.Normalize(e, expr.NormalizeOptions{MaxBracketAtoms: opts.MaxBracketAtoms})
	if err != nil {
		return nil, err
	}
	if free := poly.FreeVars(); len(free) > 0 {
		return nil, fmt.Errorf("compile: expression has free variables %v; close it or use dynamicq.CompileQuery", free)
	}

	res := &Result{
		Structure:        work,
		Original:         a,
		Polynomial:       poly,
		DynamicRelations: dyn,
	}
	c := circuit.NewBuilder()

	// Prepare monomials and determine the colouring parameter.
	var prepared []*preparedMonomial
	maxVars := 0
	for _, m := range poly.Monomials {
		pm, err := prepareMonomial(m, work.N)
		if err != nil {
			return nil, err
		}
		if len(pm.vars) > opts.MaxVars {
			return nil, fmt.Errorf("compile: monomial uses %d joined variables, exceeding MaxVars=%d", len(pm.vars), opts.MaxVars)
		}
		if len(pm.vars) > maxVars {
			maxVars = len(pm.vars)
		}
		prepared = append(prepared, pm)
	}
	res.Stats.Monomials = len(prepared)

	gaifman := work.Gaifman()
	var coloring *graph.Coloring
	if maxVars >= 2 {
		coloring = graph.LowTreedepthColoring(gaifman, maxVars)
		res.Coloring = coloring
		res.Stats.Colors = coloring.NumColors
	}

	env := &compileEnv{
		c:        c,
		a:        work,
		gaifman:  gaifman,
		coloring: coloring,
		dyn:      dyn,
		forests:  map[string]*colorForest{},
		stats:    &res.Stats,
	}
	if coloring != nil {
		env.buildColorIndexes()
	}

	var gates []int
	for _, pm := range prepared {
		g, err := env.compileMonomial(pm)
		if err != nil {
			return nil, err
		}
		gates = append(gates, g)
	}
	c.SetOutput(c.Add(gates...))
	res.Circuit = c
	res.Program = c.Program()
	res.Schedule = res.Program.Schedule()
	return res, nil
}

// eliminateBrackets applies quantifier elimination to every Iverson bracket
// of the expression, threading the progressively extended structure.
func eliminateBrackets(a *structure.Structure, e expr.Expr, dynamic []string) (*structure.Structure, expr.Expr, error) {
	work := a
	var walk func(x expr.Expr) (expr.Expr, error)
	walk = func(x expr.Expr) (expr.Expr, error) {
		switch y := x.(type) {
		case expr.Const, expr.Weight:
			return x, nil
		case expr.Bracket:
			if logic.IsQuantifierFree(y.F) {
				return x, nil
			}
			res, err := qe.Eliminate(work, y.F, dynamic)
			if err != nil {
				return nil, err
			}
			work = res.Structure
			return expr.Bracket{F: res.Formula}, nil
		case expr.Add:
			args := make([]expr.Expr, len(y.Args))
			for i, arg := range y.Args {
				na, err := walk(arg)
				if err != nil {
					return nil, err
				}
				args[i] = na
			}
			return expr.Add{Args: args}, nil
		case expr.Mul:
			args := make([]expr.Expr, len(y.Args))
			for i, arg := range y.Args {
				na, err := walk(arg)
				if err != nil {
					return nil, err
				}
				args[i] = na
			}
			return expr.Mul{Args: args}, nil
		case expr.Sum:
			arg, err := walk(y.Arg)
			if err != nil {
				return nil, err
			}
			return expr.Sum{Vars: y.Vars, Arg: arg}, nil
		default:
			return nil, fmt.Errorf("compile: unknown expression type %T", x)
		}
	}
	out, err := walk(e)
	if err != nil {
		return nil, nil, err
	}
	return work, out, nil
}

// compileEnv carries the shared state of one compilation run.
type compileEnv struct {
	c        *circuit.Circuit
	a        *structure.Structure
	gaifman  *graph.Graph
	coloring *graph.Coloring
	dyn      map[string]bool
	// forests caches colour forests by sorted colour-set key.
	forests map[string]*colorForest
	// colorClasses[c] lists original elements of colour c.
	colorClasses [][]int
	// relColorTuples[rel] is the set of colour tuples realised by the static
	// relation rel, used to prune colour assignments.
	relColorTuples map[string]map[string]bool
	// edgeColorPairs holds the colour pairs of Gaifman edges.
	edgeColorPairs map[[2]int]bool
	stats          *Stats
}

func (env *compileEnv) buildColorIndexes() {
	col := env.coloring.Color
	env.colorClasses = make([][]int, env.coloring.NumColors)
	for v, c := range col {
		env.colorClasses[c] = append(env.colorClasses[c], v)
	}
	env.relColorTuples = map[string]map[string]bool{}
	for _, r := range env.a.Sig.Relations {
		set := map[string]bool{}
		for _, t := range env.a.Tuples(r.Name) {
			set[colorTupleKey(col, t)] = true
		}
		env.relColorTuples[r.Name] = set
	}
	env.edgeColorPairs = map[[2]int]bool{}
	for _, e := range env.gaifman.Edges() {
		c1, c2 := col[e[0]], col[e[1]]
		if c1 > c2 {
			c1, c2 = c2, c1
		}
		env.edgeColorPairs[[2]int{c1, c2}] = true
	}
}

func colorTupleKey(color []int, t structure.Tuple) string {
	var b strings.Builder
	for i, e := range t {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", color[e])
	}
	return b.String()
}

// compileMonomial compiles one prepared monomial into a gate.
func (env *compileEnv) compileMonomial(pm *preparedMonomial) (int, error) {
	// Nullary weights and the integer coefficient multiply the whole
	// monomial.
	prefix := []int{env.c.Const(pm.coeff)}
	for _, w := range pm.nullaryWeights {
		prefix = append(prefix, env.c.Input(structure.MakeWeightKey(w.W, structure.Tuple{})))
	}
	switch len(pm.vars) {
	case 0:
		return env.c.Mul(prefix...), nil
	case 1:
		g := env.compileSingleVariable(pm)
		return env.c.Mul(append(prefix, g)...), nil
	}
	g, err := env.compileJoined(pm)
	if err != nil {
		return 0, err
	}
	return env.c.Mul(append(prefix, g)...), nil
}

// compileSingleVariable handles monomials over one bound variable: the
// aggregation is a plain sum over the domain, no decomposition needed.
func (env *compileEnv) compileSingleVariable(pm *preparedMonomial) int {
	v := pm.vars[0]
	_ = v
	var terms []int
	for el := 0; el < env.a.N; el++ {
		factors := make([]int, 0, len(pm.weights)+len(pm.literals))
		ok := true
		for _, l := range pm.literals {
			tuple := constantTuple(el, len(l.Args))
			if env.dyn[l.Rel] {
				factors = append(factors, env.c.Input(relationInputKey(l.Rel, tuple, l.Positive)))
				continue
			}
			if env.a.HasTuple(l.Rel, tuple...) != l.Positive {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		for _, w := range pm.weights {
			factors = append(factors, env.c.Input(structure.MakeWeightKey(w.W, constantTuple(el, len(w.Args)))))
		}
		terms = append(terms, env.c.Mul(factors...))
	}
	return env.c.Add(terms...)
}

func constantTuple(el, arity int) structure.Tuple {
	t := make(structure.Tuple, arity)
	for i := range t {
		t[i] = el
	}
	return t
}

// compileJoined handles monomials with at least two bound variables via the
// colour decomposition, elimination forests and shapes.
func (env *compileEnv) compileJoined(pm *preparedMonomial) (int, error) {
	k := len(pm.vars)
	col := env.coloring.Color

	// Positive static literals and equality literals prune colour
	// assignments; comparability requirements prune to Gaifman-edge colour
	// pairs.
	type litCheck struct {
		rel     string
		argIdx  []int
		dynamic bool
	}
	var checks []litCheck
	var equalPairs [][2]int
	var comparePairs [][2]int
	for _, l := range pm.literals {
		if l.IsEquality() {
			if l.Positive {
				equalPairs = append(equalPairs, [2]int{pm.varIndex[l.Args[0]], pm.varIndex[l.Args[1]]})
			}
			continue
		}
		if !l.Positive {
			continue
		}
		idx := make([]int, len(l.Args))
		for i, arg := range l.Args {
			idx[i] = pm.varIndex[arg]
		}
		checks = append(checks, litCheck{rel: l.Rel, argIdx: idx, dynamic: env.dyn[l.Rel]})
		for i := 0; i < len(idx); i++ {
			for j := i + 1; j < len(idx); j++ {
				if idx[i] != idx[j] {
					comparePairs = append(comparePairs, [2]int{idx[i], idx[j]})
				}
			}
		}
	}
	for _, w := range pm.weights {
		if len(w.Args) < 2 {
			continue
		}
		for i := 0; i < len(w.Args); i++ {
			for j := i + 1; j < len(w.Args); j++ {
				a, b := pm.varIndex[w.Args[i]], pm.varIndex[w.Args[j]]
				if a != b {
					comparePairs = append(comparePairs, [2]int{a, b})
				}
			}
		}
	}

	assign := make([]int, k)
	var gates []int

	// admissible checks the pruning conditions restricted to the variables
	// assigned so far (indices < upto).
	admissible := func(upto int) bool {
		for _, p := range equalPairs {
			if p[0] < upto && p[1] < upto && assign[p[0]] != assign[p[1]] {
				return false
			}
		}
		for _, p := range comparePairs {
			if p[0] < upto && p[1] < upto {
				c1, c2 := assign[p[0]], assign[p[1]]
				if c1 == c2 {
					continue
				}
				key := [2]int{c1, c2}
				if c1 > c2 {
					key = [2]int{c2, c1}
				}
				if !env.edgeColorPairs[key] {
					return false
				}
			}
		}
		for _, ch := range checks {
			if ch.dynamic {
				continue
			}
			all := true
			for _, vi := range ch.argIdx {
				if vi >= upto {
					all = false
					break
				}
			}
			if !all {
				continue
			}
			t := make(structure.Tuple, len(ch.argIdx))
			for i, vi := range ch.argIdx {
				t[i] = assign[vi]
			}
			if !env.relColorTuples[ch.rel][t.Key()] {
				return false
			}
		}
		return true
	}

	var rec func(i int) error
	rec = func(i int) error {
		if i == k {
			env.stats.ColorAssignments++
			g, err := env.compileColored(pm, assign)
			if err != nil {
				return err
			}
			if g != env.c.Zero() {
				gates = append(gates, g)
			}
			return nil
		}
		for col := 0; col < env.coloring.NumColors; col++ {
			if len(env.colorClasses[col]) == 0 {
				continue
			}
			assign[i] = col
			if !admissible(i + 1) {
				env.stats.PrunedAssignments++
				continue
			}
			if err := rec(i + 1); err != nil {
				return err
			}
		}
		return nil
	}
	_ = col
	if err := rec(0); err != nil {
		return 0, err
	}
	return env.c.Add(gates...), nil
}

// compileColored compiles a monomial under a fixed colour assignment of its
// variables: the induced subgraph on the used colours is decomposed by an
// elimination forest, shapes are enumerated and compiled.
func (env *compileEnv) compileColored(pm *preparedMonomial, colorAssign []int) (int, error) {
	cf, err := env.forestFor(colorAssign)
	if err != nil {
		return 0, err
	}
	if cf.forest.N() == 0 {
		return env.c.Zero(), nil
	}
	constraints := pm.shapeConstraintsFor(cf)
	shapes := enumerateShapes(constraints)
	env.stats.Shapes += len(shapes)
	if cf.maxDepth > env.stats.MaxForestDepth {
		env.stats.MaxForestDepth = cf.maxDepth
	}
	var gates []int
	assignCopy := append([]int(nil), colorAssign...)
	for _, sh := range shapes {
		b := newShapeBuilder(env.c, env.a, cf, pm, assignCopy, env.coloring.Color, env.dyn, sh)
		g := b.build()
		if g != env.c.Zero() {
			gates = append(gates, g)
		}
	}
	return env.c.Add(gates...), nil
}

// forestFor returns the (cached) colour forest for the set of colours used
// by an assignment.
func (env *compileEnv) forestFor(colorAssign []int) (*colorForest, error) {
	set := map[int]bool{}
	for _, c := range colorAssign {
		set[c] = true
	}
	cols := make([]int, 0, len(set))
	for c := range set {
		cols = append(cols, c)
	}
	sort.Ints(cols)
	key := fmt.Sprint(cols)
	if cf, ok := env.forests[key]; ok {
		return cf, nil
	}
	var vertices []int
	for _, c := range cols {
		vertices = append(vertices, env.colorClasses[c]...)
	}
	sort.Ints(vertices)
	cf, err := buildColorForest(env.gaifman, vertices)
	if err != nil {
		return nil, err
	}
	env.forests[key] = cf
	env.stats.Forests++
	return cf, nil
}

// ---------------------------------------------------------------------------
// Valuations
// ---------------------------------------------------------------------------

// NewValuation builds the circuit valuation combining a weight assignment
// with the 0/1 dynamic-relation inputs read from the compiled structure.
func NewValuation[T any](res *Result, s semiring.Semiring[T], w *structure.Weights[T]) circuit.Valuation[T] {
	return func(key structure.WeightKey) (T, bool) {
		if rel, tuple, positive, ok := DecodeRelationKey(key); ok {
			holds := res.Structure.HasTuple(rel, tuple...)
			return semiring.Iverson(s, holds == positive), true
		}
		if w == nil {
			var zero T
			return zero, false
		}
		return w.GetKey(key)
	}
}

// Evaluate compiles nothing further: it evaluates the compiled program in
// the given semiring under the given weights (unit-cost model, result (A) of
// the paper).
func Evaluate[T any](res *Result, s semiring.Semiring[T], w *structure.Weights[T]) T {
	return circuit.EvaluateProgram(res.Program, s, NewValuation(res, s, w))
}

// EvaluateParallel evaluates the compiled program like Evaluate but spreads
// each topological level of gates across workers goroutines (≤ 0 selects
// GOMAXPROCS), using the level schedule baked in at freeze time.
func EvaluateParallel[T any](res *Result, s semiring.Semiring[T], w *structure.Weights[T], workers int) T {
	vals := circuit.ParallelEvaluateAllProgram(res.Program, s, NewValuation(res, s, w), workers)
	return vals[res.Program.OutputGate()]
}

// EvaluateParallelCtx evaluates like EvaluateParallel but honours
// cancellation: when ctx is cancelled mid-evaluation the level-parallel
// engine stops in bounded time and the context's error is returned.
func EvaluateParallelCtx[T any](ctx context.Context, res *Result, s semiring.Semiring[T], w *structure.Weights[T], workers int) (T, error) {
	vals, err := circuit.ParallelEvaluateAllProgramCtx(ctx, res.Program, s, NewValuation(res, s, w), workers)
	if err != nil {
		var zero T
		return zero, err
	}
	return vals[res.Program.OutputGate()], nil
}

// BigCoefficient is a helper exposing big.Int construction to callers
// without importing math/big (used by examples).
func BigCoefficient(n int64) *big.Int { return big.NewInt(n) }
