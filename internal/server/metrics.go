package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"runtime"
	"time"

	"repro/internal/obs"
)

// MetricsSnapshot is the raw, mergeable form of the /metrics exposition: the
// full stats view plus the per-endpoint request histograms and per-stage
// pipeline histograms as obs snapshots.  The fleet router scrapes it from
// GET /metrics.json on every replica and merges the fleet-wide view by
// summing counters and histogram buckets (obs.Snapshot merges exactly, so
// fleet bucket counts equal the sum of the per-replica buckets).
type MetricsSnapshot struct {
	Stats    StatsSnapshot           `json:"stats"`
	Requests map[string]obs.Snapshot `json:"requests"`
	Stages   map[string]obs.Snapshot `json:"stages"`
	// Push is the commit-to-client push latency of /subscribe streams: the
	// time from a committed batch or point write to the re-evaluated update
	// being written to the subscriber.
	Push obs.Snapshot `json:"push"`
}

// MetricsSnapshot captures the server's current counters and histograms.
func (s *Server) MetricsSnapshot() *MetricsSnapshot {
	m := &MetricsSnapshot{
		Stats:    s.StatsSnapshot(),
		Requests: make(map[string]obs.Snapshot, len(endpoints)),
		Stages:   make(map[string]obs.Snapshot, int(obs.NumStages)),
		Push:     s.pushHist.Snapshot(),
	}
	for _, ep := range endpoints {
		m.Requests[ep] = s.reqHist[ep].Snapshot()
	}
	for st := obs.Stage(0); st < obs.NumStages; st++ {
		m.Stages[st.String()] = s.tr.Stage(st).Snapshot()
	}
	return m
}

// handleMetricsJSON serves the raw snapshot for fleet-wide aggregation.
func (s *Server) handleMetricsJSON(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(s.MetricsSnapshot())
}

// handleMetrics serves GET /metrics in the Prometheus text exposition
// format: the Stats counters, the per-endpoint request-latency histograms,
// the per-stage pipeline histograms (parse, cache lookup, compile, freeze,
// eval, update waves), cache and session gauges, build info, and a small
// set of Go runtime stats.  /stats keeps serving the same counters as JSON;
// this endpoint is the scrape target.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	var buf bytes.Buffer
	pw := obs.NewWriter(&buf)

	// Request counters, one family with an endpoint label per operation
	// completed successfully (the histograms below count every request,
	// including failed ones).
	pw.Header("aggserve_requests_total", "Requests completed successfully, by endpoint.", "counter")
	for _, c := range []struct {
		endpoint string
		v        int64
	}{
		{"query", s.stats.Queries.Load()},
		{"session", s.stats.Sessions.Load()},
		{"point", s.stats.Points.Load()},
		{"update", s.stats.UpdateBatches.Load()},
		{"batch", s.stats.Batches.Load()},
		{"enumerate", s.stats.Enumerations.Load()},
		{"subscribe", s.stats.Subscriptions.Load()},
		{"ingest", s.stats.Ingests.Load()},
		{"analyze", s.stats.Analyzes.Load()},
	} {
		pw.Counter("aggserve_requests_total", obs.Labels{"endpoint": c.endpoint}, uint64(c.v))
	}

	pw.Header("aggserve_updates_applied_total", "Individual updates applied, by path.", "counter")
	pw.Counter("aggserve_updates_applied_total", obs.Labels{"path": "single"}, uint64(s.stats.Updates.Load()))
	pw.Counter("aggserve_updates_applied_total", obs.Labels{"path": "batched"}, uint64(s.stats.BatchedUpdates.Load()))
	pw.Counter("aggserve_updates_applied_total", obs.Labels{"path": "ingested"}, uint64(s.stats.IngestedChanges.Load()))

	for _, c := range []struct {
		name, help string
		v          int64
	}{
		{"aggserve_compiles_total", "Queries compiled (cache misses that ran the compiler).", s.stats.Compiles.Load()},
		{"aggserve_cache_hits_total", "Compiled-query cache hits.", s.stats.CacheHits.Load()},
		{"aggserve_cache_misses_total", "Compiled-query cache misses.", s.stats.CacheMisses.Load()},
		{"aggserve_errors_total", "Requests answered with a non-2xx status.", s.stats.Errors.Load()},
		{"aggserve_canceled_total", "Requests abandoned by their client mid-work.", s.stats.Canceled.Load()},
		{"aggserve_busy_total", "Fail-fast session-busy rejections (409): writer-writer conflicts on one session.", s.stats.Busy.Load()},
		{"aggserve_pushes_total", "Updates pushed to /subscribe clients.", s.stats.Pushes.Load()},
		{"aggserve_push_coalesced_total", "Evaluated results folded into pushed updates by lagging subscribers.", s.stats.PushCoalesced.Load()},
		{"aggserve_ingest_waves_total", "Batch waves committed by /ingest change streams.", s.stats.IngestWaves.Load()},
	} {
		pw.Header(c.name, c.help, "counter")
		pw.Counter(c.name, nil, uint64(c.v))
	}

	// Request latency: one histogram per endpoint, in seconds.
	pw.Header("aggserve_request_duration_seconds", "End-to-end request latency by endpoint.", "histogram")
	for _, ep := range endpoints {
		snap := s.reqHist[ep].Snapshot()
		pw.Histogram("aggserve_request_duration_seconds", obs.Labels{"endpoint": ep}, &snap)
	}

	// Stage latency: the parse → cache lookup → compile → freeze → eval
	// pipeline of the paper, plus the per-wave update propagation cost
	// (the observable form of the O(log n)-per-update guarantee).
	pw.Header("aggserve_stage_duration_seconds", "Internal pipeline stage latency.", "histogram")
	for st := obs.Stage(0); st < obs.NumStages; st++ {
		snap := s.tr.Stage(st).Snapshot()
		pw.Histogram("aggserve_stage_duration_seconds", obs.Labels{"stage": st.String()}, &snap)
	}

	// Push latency: commit to subscriber write, over all /subscribe streams.
	pw.Header("aggserve_push_latency_seconds", "Commit-to-client push latency of /subscribe streams.", "histogram")
	pushSnap := s.pushHist.Snapshot()
	pw.Histogram("aggserve_push_latency_seconds", nil, &pushSnap)

	// Gauges: serving state and cache occupancy.
	entryBytes, cacheBytes := s.cache.entryBytes()
	s.mu.RLock()
	sessions := len(s.sessions)
	databases := len(s.dbs)
	s.mu.RUnlock()
	for _, g := range []struct {
		name, help string
		v          float64
	}{
		{"aggserve_in_flight_requests", "Requests currently being served.", float64(s.stats.InFlight.Load())},
		{"aggserve_cache_entries", "Compiled queries resident in the LRU cache.", float64(len(entryBytes))},
		{"aggserve_cache_bytes", "Total bytes of frozen circuit programs in the cache.", float64(cacheBytes)},
		{"aggserve_sessions_active", "Named dynamic-update sessions currently registered.", float64(sessions)},
		{"aggserve_subscribers_active", "Live /subscribe streams currently open.", float64(s.stats.Subscribers.Load())},
		{"aggserve_databases", "Databases mounted.", float64(databases)},
		{"aggserve_start_time_seconds", "Unix time the server started.", float64(s.start.UnixNano()) / float64(time.Second)},
		{"aggserve_uptime_seconds", "Seconds since the server started.", time.Since(s.start).Seconds()},
	} {
		pw.Header(g.name, g.help, "gauge")
		pw.Gauge(g.name, nil, g.v)
	}

	// Per-session MVCC gauges: the committed epoch advances with every
	// update, and the retained-undo-bytes gauge shows how much history open
	// snapshot readers are pinning (zero in steady state with no readers).
	if gauges := s.sessionGauges(); len(gauges) > 0 {
		pw.Header("aggserve_session_epoch", "Updates committed per session.", "gauge")
		for _, g := range gauges {
			pw.Gauge("aggserve_session_epoch", obs.Labels{"session": g.name}, float64(g.epoch))
		}
		pw.Header("aggserve_session_retained_undo_bytes", "Undo-history bytes pinned by open snapshot readers, per session.", "gauge")
		for _, g := range gauges {
			pw.Gauge("aggserve_session_retained_undo_bytes", obs.Labels{"session": g.name}, float64(g.retained))
		}
	}

	goVersion, revision := buildInfoOnce()
	pw.Header("aggserve_build_info", "Build metadata; the value is always 1.", "gauge")
	pw.Gauge("aggserve_build_info", obs.Labels{"go_version": goVersion, "revision": revision}, 1)

	// Go runtime: the handful of stats an operator reaches for first; attach
	// pprof (-pprof-addr) for anything deeper.
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	for _, g := range []struct {
		name, help string
		v          float64
	}{
		{"go_goroutines", "Number of goroutines.", float64(runtime.NumGoroutine())},
		{"go_memstats_heap_alloc_bytes", "Bytes of allocated heap objects.", float64(ms.HeapAlloc)},
		{"go_memstats_sys_bytes", "Bytes obtained from the OS.", float64(ms.Sys)},
		{"go_gc_cycles_total", "Completed GC cycles.", float64(ms.NumGC)},
	} {
		pw.Header(g.name, g.help, "gauge")
		pw.Gauge(g.name, nil, g.v)
	}

	if err := pw.Err(); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, _ = w.Write(buf.Bytes())
}
