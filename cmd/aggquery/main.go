// Command aggquery evaluates a weighted query on a sparse database and
// reports the query value in several semirings together with statistics
// about the compiled circuit (Theorem 6 of the paper).
//
// The database is either generated on the fly (-kind/-n) or read from a file
// or stdin in the internal/dbio text format.  The query is either one of a
// set of predefined queries (-query) or an arbitrary weighted expression in
// the surface syntax of internal/parser (-expr).
//
// Usage:
//
//	aggquery -query triangles -kind grid -n 4096
//	agggen -kind grid -n 4096 | aggquery -stdin -query triangles
//	aggquery -kind bounded-degree -n 2000 \
//	  -expr 'sum x, y . [E(x,y) & S(x)] * w(x,y)'
package main

import (
	"flag"
	"fmt"
	"os"
	"sync"

	"repro/internal/compile"
	"repro/internal/dbio"
	"repro/internal/expr"
	"repro/internal/logic"
	"repro/internal/parser"
	"repro/internal/semiring"
)

func main() {
	query := flag.String("query", "triangles", "predefined query: triangles, paths, edges, heavy-pairs")
	exprText := flag.String("expr", "", "weighted expression in surface syntax (overrides -query)")
	kind := flag.String("kind", "bounded-degree", "generated workload kind (ignored with -stdin/-file)")
	n := flag.Int("n", 2000, "generated database size (ignored with -stdin/-file)")
	seed := flag.Int64("seed", 1, "random seed")
	stdin := flag.Bool("stdin", false, "read the database from stdin (dbio format)")
	file := flag.String("file", "", "read the database from this file (dbio format)")
	workers := flag.Int("workers", 0, "worker goroutines per circuit evaluation (0 = GOMAXPROCS)")
	flag.Parse()

	db, err := dbio.LoadSource(dbio.Source{Stdin: *stdin, Path: *file, Kind: *kind, N: *n, Seed: *seed})
	if err != nil {
		fmt.Fprintf(os.Stderr, "aggquery: %v\n", err)
		os.Exit(1)
	}
	a, weights := db.A, db.W

	e, err := selectQuery(*exprText, *query)
	if err != nil {
		fmt.Fprintf(os.Stderr, "aggquery: %v\n", err)
		os.Exit(2)
	}
	if err := expr.Validate(e, a.Sig); err != nil {
		fmt.Fprintf(os.Stderr, "aggquery: query does not match the database signature: %v\n", err)
		os.Exit(2)
	}

	res, err := compile.Compile(a, e, compile.Options{})
	if err != nil {
		fmt.Fprintf(os.Stderr, "aggquery: compile: %v\n", err)
		os.Exit(1)
	}
	st := res.Circuit.Statistics()
	fmt.Printf("database: n=%d tuples=%d\n", a.N, a.TupleCount())
	fmt.Printf("query: %s\n", parser.FormatExpr(e))
	fmt.Printf("circuit: gates=%d edges=%d depth=%d permGates=%d maxPermRows=%d\n",
		st.Gates, st.Edges, st.Depth, st.PermGates, st.MaxPermRows)

	// The three semirings are independent passes over the same circuit, so
	// they run concurrently; each pass additionally spreads its gate levels
	// over -workers goroutines (the schedule was precomputed by Compile).
	var lines [3]string
	var wg sync.WaitGroup
	wg.Add(3)
	go func() {
		defer wg.Done()
		nat := compile.EvaluateParallel[int64](res, semiring.Nat, weights, *workers)
		lines[0] = fmt.Sprintf("value in (N,+,·):            %d", nat)
	}()
	go func() {
		defer wg.Done()
		mp := compile.EvaluateParallel[semiring.Ext](res, semiring.MinPlus,
			dbio.ConvertWeights(weights, func(v int64) semiring.Ext { return semiring.Fin(v) }), *workers)
		lines[1] = fmt.Sprintf("value in (N∪{∞},min,+):      %s", semiring.MinPlus.Format(mp))
	}()
	go func() {
		defer wg.Done()
		bv := compile.EvaluateParallel[bool](res, semiring.Bool,
			dbio.ConvertWeights(weights, func(v int64) bool { return v != 0 }), *workers)
		lines[2] = fmt.Sprintf("value in (B,∨,∧):            %v", bv)
	}()
	wg.Wait()
	for _, l := range lines {
		fmt.Println(l)
	}
}

func selectQuery(exprText, name string) (expr.Expr, error) {
	if exprText != "" {
		return parser.ParseExpr(exprText)
	}
	qs := queries()
	e, ok := qs[name]
	if !ok {
		return nil, fmt.Errorf("unknown query %q (available: triangles, paths, edges, heavy-pairs)", name)
	}
	return e, nil
}

func queries() map[string]expr.Expr {
	return map[string]expr.Expr{
		"triangles": expr.Agg([]string{"x", "y", "z"}, expr.Times(
			expr.Guard(logic.Conj(logic.R("E", "x", "y"), logic.R("E", "y", "z"), logic.R("E", "z", "x"))),
			expr.W("w", "x", "y"), expr.W("w", "y", "z"), expr.W("w", "z", "x"),
		)),
		"paths": expr.Agg([]string{"x", "y", "z"}, expr.Times(
			expr.Guard(logic.Conj(logic.R("E", "x", "y"), logic.R("E", "y", "z"), logic.Neg(logic.Equal("x", "z")))),
			expr.W("u", "x"), expr.W("u", "z"),
		)),
		"edges": expr.Agg([]string{"x", "y"}, expr.Times(
			expr.Guard(logic.R("E", "x", "y")), expr.W("w", "x", "y"),
		)),
		"heavy-pairs": expr.Agg([]string{"x", "y"}, expr.Times(
			expr.Guard(logic.Conj(logic.R("E", "x", "y"), logic.R("S", "x"), logic.Neg(logic.R("S", "y")))),
			expr.W("u", "x"), expr.W("u", "y"),
		)),
	}
}
