// Command aggbench runs the experiment suite of EXPERIMENTS.md and prints
// each table (plain text by default, Markdown with -markdown).
//
// Usage:
//
//	aggbench [-quick] [-markdown] [-only E2,E5]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/bench"
)

func main() {
	quick := flag.Bool("quick", false, "use reduced problem sizes")
	markdown := flag.Bool("markdown", false, "emit Markdown tables")
	only := flag.String("only", "", "comma-separated experiment ids to run (e.g. E1,E5); empty runs all")
	flag.Parse()

	wanted := map[string]bool{}
	for _, id := range strings.Split(*only, ",") {
		id = strings.TrimSpace(id)
		if id != "" {
			wanted[strings.ToUpper(id)] = true
		}
	}

	printed := 0
	for _, e := range bench.Registry(*quick) {
		if len(wanted) > 0 && !wanted[e.ID] {
			continue
		}
		t := e.Run()
		if *markdown {
			fmt.Println(t.Markdown())
		} else {
			fmt.Println(t.String())
		}
		printed++
	}
	if printed == 0 {
		fmt.Fprintf(os.Stderr, "aggbench: no experiment matched -only=%q\n", *only)
		os.Exit(1)
	}
}
