package qe

import (
	"math/rand"
	"testing"

	"repro/internal/logic"
	"repro/internal/structure"
)

func randomStructure(n, m int, seed int64) *structure.Structure {
	sig := structure.MustSignature(
		[]structure.RelSymbol{{Name: "E", Arity: 2}, {Name: "S", Arity: 1}, {Name: "U", Arity: 1}},
		nil,
	)
	r := rand.New(rand.NewSource(seed))
	a := structure.NewStructure(sig, n)
	for a.TupleCount() < m {
		x, y := r.Intn(n), r.Intn(n)
		if x != y {
			a.MustAddTuple("E", x, y)
		}
	}
	for v := 0; v < n; v++ {
		if r.Intn(2) == 0 {
			a.MustAddTuple("S", v)
		}
		if r.Intn(3) == 0 {
			a.MustAddTuple("U", v)
		}
	}
	return a
}

// checkEquivalence verifies that the rewritten formula has exactly the same
// answers on the extended structure as the original formula on the original
// structure.
func checkEquivalence(t *testing.T, a *structure.Structure, f logic.Formula, vars []string) {
	t.Helper()
	res, err := Eliminate(a, f, nil)
	if err != nil {
		t.Fatalf("Eliminate(%s): %v", f, err)
	}
	if !logic.IsQuantifierFree(res.Formula) {
		t.Fatalf("Eliminate(%s) left quantifiers: %s", f, res.Formula)
	}
	want := logic.Answers(f, a, vars)
	got := logic.Answers(res.Formula, res.Structure, vars)
	if len(want) != len(got) {
		t.Fatalf("Eliminate(%s): %d answers, want %d\nrewritten: %s", f, len(got), len(want), res.Formula)
	}
	for i := range want {
		if !want[i].Equal(got[i]) {
			t.Fatalf("Eliminate(%s): answer %d is %v, want %v", f, i, got[i], want[i])
		}
	}
	// The extension must not change the domain or the original relations.
	if res.Structure.N != a.N {
		t.Fatalf("domain changed")
	}
	for _, r := range a.Sig.Relations {
		if len(res.Structure.Tuples(r.Name)) != len(a.Tuples(r.Name)) {
			t.Fatalf("relation %s changed", r.Name)
		}
	}
}

func TestEliminateGuardedExistentials(t *testing.T) {
	a := randomStructure(12, 30, 5)
	cases := []struct {
		f    logic.Formula
		vars []string
	}{
		// ∃y E(x,y): x has an out-neighbour.
		{logic.Ex([]string{"y"}, logic.R("E", "x", "y")), []string{"x"}},
		// ∃y E(x,y) ∧ S(y): x has an out-neighbour in S.
		{logic.Ex([]string{"y"}, logic.Conj(logic.R("E", "x", "y"), logic.R("S", "y"))), []string{"x"}},
		// ∃y (E(x,y) ∨ E(y,x)) ∧ ¬S(y).
		{logic.Ex([]string{"y"}, logic.Conj(logic.Disj(logic.R("E", "x", "y"), logic.R("E", "y", "x")), logic.Neg(logic.R("S", "y")))), []string{"x"}},
		// Non-adjacent witnesses: ∃y ¬E(x,y) ∧ S(y) ∧ x≠y.
		{logic.Ex([]string{"y"}, logic.Conj(logic.Neg(logic.R("E", "x", "y")), logic.R("S", "y"), logic.Neg(logic.Equal("x", "y")))), []string{"x"}},
		// ∀y (E(x,y) → S(y)), i.e. ¬∃y E(x,y) ∧ ¬S(y).
		{logic.All([]string{"y"}, logic.Disj(logic.Neg(logic.R("E", "x", "y")), logic.R("S", "y"))), []string{"x"}},
		// Combination with an outer quantifier-free part.
		{logic.Conj(logic.R("U", "x"), logic.Ex([]string{"y"}, logic.Conj(logic.R("E", "x", "y"), logic.R("U", "y")))), []string{"x"}},
		// Two independent guarded quantifiers, over two free variables.
		{logic.Conj(
			logic.Ex([]string{"u"}, logic.Conj(logic.R("E", "x", "u"), logic.R("S", "u"))),
			logic.Ex([]string{"v"}, logic.R("E", "v", "z")),
		), []string{"x", "z"}},
		// Sentence-like: ∃y S(y) ∧ U(y).
		{logic.Conj(logic.R("U", "x"), logic.Ex([]string{"y"}, logic.Conj(logic.R("S", "y"), logic.R("U", "y")))), []string{"x"}},
		// Nested guarded quantifiers: ∃y E(x,y) ∧ ∃z E(y,z).
		{logic.Ex([]string{"y"}, logic.Conj(logic.R("E", "x", "y"), logic.Ex([]string{"z"}, logic.R("E", "y", "z")))), []string{"x"}},
		// Already quantifier-free formulas pass through untouched.
		{logic.Conj(logic.R("E", "x", "y"), logic.Neg(logic.Equal("x", "y"))), []string{"x", "y"}},
	}
	for _, c := range cases {
		checkEquivalence(t, a, c.f, c.vars)
	}
}

func TestEliminateSmallStructures(t *testing.T) {
	// Exhaustive-ish check across several random structures, including very
	// small ones where corner cases (no witnesses, all witnesses adjacent)
	// are more likely.
	formulas := []struct {
		f    logic.Formula
		vars []string
	}{
		{logic.Ex([]string{"y"}, logic.Conj(logic.R("E", "x", "y"), logic.Neg(logic.R("S", "y")))), []string{"x"}},
		{logic.Ex([]string{"y"}, logic.Conj(logic.Neg(logic.R("E", "x", "y")), logic.Neg(logic.R("E", "y", "x")), logic.R("S", "y"))), []string{"x"}},
		{logic.Neg(logic.Ex([]string{"y"}, logic.R("E", "y", "x"))), []string{"x"}},
	}
	for seed := int64(0); seed < 8; seed++ {
		n := 3 + int(seed)
		a := randomStructure(n, 2*n, seed)
		for _, c := range formulas {
			checkEquivalence(t, a, c.f, c.vars)
		}
	}
}

func TestEliminateRejectsUnsupported(t *testing.T) {
	a := randomStructure(6, 10, 1)
	unsupported := []logic.Formula{
		// y linked to two different free variables.
		logic.Ex([]string{"y"}, logic.Conj(logic.R("E", "x", "y"), logic.R("E", "y", "z"))),
		// Free variable besides the guard inside the quantified formula.
		logic.Ex([]string{"y"}, logic.Conj(logic.R("E", "x", "y"), logic.R("S", "z"))),
	}
	for _, f := range unsupported {
		if _, err := Eliminate(a, f, nil); err == nil {
			t.Errorf("Eliminate(%s) should have been rejected", f)
		}
	}
	// Dynamic relations under a quantifier are rejected.
	f := logic.Ex([]string{"y"}, logic.R("E", "x", "y"))
	if _, err := Eliminate(a, f, []string{"E"}); err == nil {
		t.Errorf("quantification over a dynamic relation should be rejected")
	}
	// But a dynamic relation outside quantifiers is fine.
	g := logic.Conj(logic.R("E", "x", "y"), logic.Ex([]string{"z"}, logic.R("S", "z")))
	if _, err := Eliminate(a, g, []string{"E"}); err != nil {
		t.Errorf("dynamic relation outside quantifiers rejected: %v", err)
	}
}

func TestEliminateDerivedPredicatesAreFresh(t *testing.T) {
	a := randomStructure(8, 16, 3)
	f := logic.Conj(
		logic.Ex([]string{"y"}, logic.R("E", "x", "y")),
		logic.Ex([]string{"y"}, logic.R("E", "y", "x")),
	)
	res, err := Eliminate(a, f, nil)
	if err != nil {
		t.Fatalf("Eliminate: %v", err)
	}
	if len(res.Derived) != 2 {
		t.Fatalf("expected 2 derived predicates, got %v", res.Derived)
	}
	seen := map[string]bool{}
	for _, d := range res.Derived {
		if seen[d] {
			t.Errorf("derived predicate %s repeated", d)
		}
		seen[d] = true
		if _, ok := res.Structure.Sig.Relation(d); !ok {
			t.Errorf("derived predicate %s missing from the extended signature", d)
		}
	}
}
