package enumerate

import (
	"repro/internal/circuit"
	"repro/internal/semiring"
	"repro/internal/structure"
)

// Snapshot is a read handle on an Enumerator pinned at one committed epoch:
// emptiness tests and cursors stream the answer set exactly as it was at
// that commit, no matter how many updates the writer applies afterwards.
//
// Taking a snapshot is O(1).  Resolution reads the live state under a shared
// lock and rolls dirtied gates back through the undo chain (first recorded
// pre-change state wins); the per-gate enumeration metadata of addition and
// permanent gates is re-derived lazily from the pinned emptiness bits and
// memoised, so a cursor touches each gate's fan-in at most once per
// snapshot.
//
// A Snapshot is intended for a single reader goroutine (its digest and
// memoised metadata are unsynchronised); take one per goroutine.  Snapshots
// may be taken, used and released concurrently with each other and with the
// writer.  Release when done — an unreleased snapshot pins undo history
// whose memory grows with every write.
type Snapshot struct {
	e        *Enumerator
	epoch    uint64
	digested uint64 // undo history of epochs [epoch, digested) is folded into digest
	digest   map[int32]enumUndo
	released bool

	// Lazily derived, memoised enumeration metadata at the pinned epoch.
	adders map[int]*adderMeta
	perms  map[int]*permGateMeta
}

// Snapshot pins the current committed epoch and returns a read handle for
// it.  From now until Release, updates record undo entries (in reusable
// per-epoch buffers), so the writer's steady state with no snapshots
// outstanding stays free of history bookkeeping.
func (e *Enumerator) Snapshot() *Snapshot {
	e.mu.Lock()
	ep := e.log.Pin()
	e.mu.Unlock()
	return &Snapshot{
		e: e, epoch: ep, digested: ep,
		digest: map[int32]enumUndo{},
		adders: map[int]*adderMeta{},
		perms:  map[int]*permGateMeta{},
	}
}

// Epoch returns the committed epoch this snapshot is pinned at.
func (s *Snapshot) Epoch() uint64 { return s.epoch }

// Release unpins the snapshot, letting the writer truncate undo history it
// no longer needs.  Release is idempotent; a released snapshot keeps
// answering from its digest but stops following new undo entries, so use it
// only before the release.
func (s *Snapshot) Release() {
	if s.released {
		return
	}
	s.released = true
	s.e.mu.Lock()
	s.e.log.Unpin(s.epoch)
	s.e.mu.Unlock()
}

// Empty reports whether the output gate was empty at the pinned epoch.
func (s *Snapshot) Empty() bool { return s.GateEmpty(s.e.p.OutputGate()) }

// GateEmpty reports emptiness of an arbitrary gate at the pinned epoch.
func (s *Snapshot) GateEmpty(id int) bool {
	s.e.mu.RLock()
	defer s.e.mu.RUnlock()
	s.extendLocked()
	return s.emptyLocked(id)
}

// Cursor returns a fresh constant-delay cursor over the monomials of the
// output gate at the pinned epoch.  Unlike live cursors, snapshot cursors
// are not invalidated by updates: the writer may commit freely while the
// cursor streams.
func (s *Snapshot) Cursor() Cursor { return s.gateCursor(s.e.p.OutputGate()) }

// extendLocked folds undo entries committed since the last resolution into
// the digest.  First entry per gate wins: walking the undo chain forwards
// from the pin, the first pre-change state recorded for a gate is its state
// at the pinned epoch.  Caller holds at least the shared lock.
func (s *Snapshot) extendLocked() {
	if s.released || s.digested == s.e.log.Epoch() {
		return
	}
	s.digested = s.e.log.Walk(s.digested, func(u enumUndo) {
		if _, ok := s.digest[u.gate]; !ok {
			s.digest[u.gate] = u
		}
	})
}

// emptyLocked resolves one gate's emptiness at the pinned epoch.  Caller
// holds at least the shared lock with the digest extended.
func (s *Snapshot) emptyLocked(id int) bool {
	if u, ok := s.digest[int32(id)]; ok {
		return u.oldEmpty
	}
	return s.e.empty[id]
}

// inputLocked resolves one input gate's value at the pinned epoch.  Caller
// holds at least the shared lock with the digest extended.
func (s *Snapshot) inputLocked(id int) Value {
	if u, ok := s.digest[int32(id)]; ok && u.kind == undoInput {
		return u.oldInput
	}
	return s.e.inputValue[id]
}

// gateCursor is the snapshot side of the cursor factory: the same cursor
// machinery as the live Enumerator, reading pinned-epoch state and
// snapshot-derived metadata.  It implements view, so child cursors opened
// mid-stream resolve through the snapshot as well.
func (s *Snapshot) gateCursor(id int) Cursor {
	e := s.e
	e.mu.RLock()
	s.extendLocked()
	if s.emptyLocked(id) {
		e.mu.RUnlock()
		return &sliceCursor{}
	}
	kind := e.p.GateKind(id)
	switch kind {
	case circuit.KindInput:
		v := s.inputLocked(id)
		e.mu.RUnlock()
		return v.Cursor()
	case circuit.KindConst:
		e.mu.RUnlock()
		return &constCursor{remaining: e.p.ConstBig(id)}
	case circuit.KindAdd:
		meta := s.adderLocked(id)
		e.mu.RUnlock()
		return &concatCursor{e: s, meta: meta}
	case circuit.KindMul:
		children := e.p.ChildIDs(id)
		e.mu.RUnlock()
		return newProductCursor(s, children)
	case circuit.KindPerm:
		meta := s.permLocked(id)
		e.mu.RUnlock()
		return newPermCursor(s, meta)
	default:
		e.mu.RUnlock()
		panic("enumerate: unsupported gate kind in snapshot cursor")
	}
}

// adderLocked derives (and memoises) the non-empty positions of an addition
// gate at the pinned epoch.  Only the fields the cursor reads are populated;
// the incremental index/occurrence maps of the live metadata stay with the
// writer.  Caller holds at least the shared lock with the digest extended.
func (s *Snapshot) adderLocked(id int) *adderMeta {
	if m, ok := s.adders[id]; ok {
		return m
	}
	children := s.e.p.ChildIDs(id)
	meta := &adderMeta{children: children}
	for pos, ch := range children {
		if !s.emptyLocked(int(ch)) {
			meta.positions = append(meta.positions, pos)
		}
	}
	s.adders[id] = meta
	return meta
}

// permLocked derives (and memoises) the Lemma 39 column-type bookkeeping of
// a permanent gate at the pinned epoch.  Caller holds at least the shared
// lock with the digest extended.
func (s *Snapshot) permLocked(id int) *permGateMeta {
	if m, ok := s.perms[id]; ok {
		return m
	}
	rows, cols := s.e.p.PermShape(id)
	meta := &permGateMeta{rows: rows, cols: cols}
	meta.entry = make([][]int, cols)
	for col := range meta.entry {
		meta.entry[col] = make([]int, rows)
		for r := range meta.entry[col] {
			meta.entry[col][r] = -1
		}
	}
	s.e.p.ForEachPermEntry(id, func(row, col, gate int) {
		meta.entry[col][row] = gate
	})
	meta.colType = make([]int, cols)
	meta.byType = make([][]int, 1<<uint(rows))
	meta.posInType = make([]int, cols)
	for col := 0; col < cols; col++ {
		t := 0
		for r := 0; r < rows; r++ {
			ch := meta.entry[col][r]
			if ch >= 0 && !s.emptyLocked(ch) {
				t |= 1 << uint(r)
			}
		}
		meta.colType[col] = t
		meta.posInType[col] = len(meta.byType[t])
		meta.byType[t] = append(meta.byType[t], col)
	}
	s.perms[id] = meta
	return meta
}

// ---------------------------------------------------------------------------
// Answer-set snapshots
// ---------------------------------------------------------------------------

// AnswersSnapshot is a read handle on an Answers enumerator pinned at one
// committed epoch: cursors, Collect and Count all answer as of that commit
// while the writer keeps applying tuple updates.  Like Snapshot, it is meant
// for a single reader goroutine and must be released when done.
type AnswersSnapshot struct {
	ans  *Answers
	snap *Snapshot
}

// Snapshot pins the current committed epoch of the answer enumerator and
// returns a read handle for it.
func (ans *Answers) Snapshot() *AnswersSnapshot {
	return &AnswersSnapshot{ans: ans, snap: ans.enum.Snapshot()}
}

// Epoch returns the committed epoch of the answer enumerator, i.e. the
// number of committed update operations so far.
func (ans *Answers) Epoch() uint64 { return ans.enum.Epoch() }

// RetainedUndoBytes reports the memory currently held by undo history for
// outstanding snapshots; zero whenever no snapshot is pinned.
func (ans *Answers) RetainedUndoBytes() int64 { return ans.enum.RetainedUndoBytes() }

// Epoch returns the committed epoch this snapshot is pinned at.
func (s *AnswersSnapshot) Epoch() uint64 { return s.snap.Epoch() }

// Release unpins the snapshot.  Release is idempotent.
func (s *AnswersSnapshot) Release() { s.snap.Release() }

// Empty reports whether the query had no answers at the pinned epoch.
func (s *AnswersSnapshot) Empty() bool { return s.snap.Empty() }

// Cursor returns a fresh constant-delay cursor over the answer set at the
// pinned epoch.  Unlike live cursors, it stays valid while the writer
// updates.
func (s *AnswersSnapshot) Cursor() *TupleCursor {
	return &TupleCursor{ans: s.ans, inner: s.snap.Cursor()}
}

// Collect drains a fresh cursor into a slice of answers (limit ≤ 0 means no
// limit).
func (s *AnswersSnapshot) Collect(limit int) []structure.Tuple {
	var out []structure.Tuple
	cur := s.Cursor()
	for {
		t, ok := cur.Next()
		if !ok {
			return out
		}
		out = append(out, t)
		if limit > 0 && len(out) >= limit {
			return out
		}
	}
}

// Count returns the number of answers at the pinned epoch by evaluating the
// circuit in ℕ under the homomorphism sending every generator to 1, with
// each input resolved through the snapshot.
func (s *AnswersSnapshot) Count() int64 {
	p := s.ans.res.Program
	return circuit.EvaluateProgram[int64](p, semiring.Nat, func(key structure.WeightKey) (int64, bool) {
		id := p.InputGate(key)
		if id < 0 || s.snap.GateEmpty(id) {
			return 0, false
		}
		return 1, true
	})
}
