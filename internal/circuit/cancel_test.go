package circuit

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/semiring"
	"repro/internal/structure"
)

// slowValuation returns a valuation that busy-waits briefly per input (a
// sleep would round up to the scheduler's timer granularity), so an
// evaluation over many inputs takes long enough to be cancelled mid-flight.
func slowValuation(d time.Duration) Valuation[int64] {
	return func(key structure.WeightKey) (int64, bool) {
		deadline := time.Now().Add(d)
		for time.Now().Before(deadline) {
		}
		return 1, true
	}
}

// wideCircuit builds a two-level circuit with n inputs feeding n unary add
// gates feeding one output sum: wide levels, so the parallel engine fans out.
func wideCircuit(n int) *Circuit {
	c := NewBuilder()
	adds := make([]int, n)
	for i := 0; i < n; i++ {
		in := c.Input(structure.MakeWeightKey("w", structure.Tuple{i}))
		adds[i] = c.Add(in)
	}
	c.SetOutput(c.Add(adds...))
	return c
}

// TestParallelEvaluateCtxCompletesUncancelled checks the ctx variant is
// equivalent to the plain engine when the context never fires.
func TestParallelEvaluateCtxCompletesUncancelled(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	c := randomCircuit(rng, 8, 300)
	p := c.Program()
	v := func(key structure.WeightKey) (int64, bool) { return 2, true }
	want := EvaluateAllProgram[int64](p, semiring.Nat, v)
	for _, workers := range []int{1, 2, 4} {
		got, err := ParallelEvaluateAllProgramCtx(context.Background(), p, semiring.Nat, v, workers)
		if err != nil {
			t.Fatalf("workers=%d: unexpected error %v", workers, err)
		}
		for id := range want {
			if got[id] != want[id] {
				t.Fatalf("workers=%d: gate %d = %d, want %d", workers, id, got[id], want[id])
			}
		}
	}
}

// TestParallelEvaluateCtxCancelStops checks a cancelled context stops a
// running parallel evaluation in bounded time, for both the sequential and
// the fan-out paths, under -race.
func TestParallelEvaluateCtxCancelStops(t *testing.T) {
	const n = 4096
	p := wideCircuit(n).Program()
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		var wg sync.WaitGroup
		wg.Add(1)
		var evalErr error
		start := time.Now()
		go func() {
			defer wg.Done()
			_, evalErr = ParallelEvaluateAllProgramCtx(ctx, p, semiring.Nat, slowValuation(50*time.Microsecond), workers)
		}()
		time.Sleep(5 * time.Millisecond)
		cancel()
		wg.Wait()
		elapsed := time.Since(start)
		if !errors.Is(evalErr, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, evalErr)
		}
		// Uncancelled, the input level alone costs n·50µs ≈ 205ms of work;
		// after the cancel each worker may finish at most one check stride
		// (256 gates ≈ 13ms) before noticing, so a cancelled run must stop
		// well before the full-run time.
		if elapsed > 120*time.Millisecond {
			t.Errorf("workers=%d: cancelled evaluation still took %v", workers, elapsed)
		}
	}
}

// TestParallelEvaluateCtxPreCancelled checks an already-cancelled context
// fails fast without evaluating anything.
func TestParallelEvaluateCtxPreCancelled(t *testing.T) {
	p := wideCircuit(64).Program()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	calls := 0
	v := func(key structure.WeightKey) (int64, bool) { calls++; return 1, true }
	if _, err := ParallelEvaluateAllProgramCtx(ctx, p, semiring.Nat, v, 1); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if calls != 0 {
		t.Errorf("pre-cancelled evaluation touched %d inputs", calls)
	}
}
