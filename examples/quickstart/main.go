// Quickstart: open a small sparse database through the public repro/agg
// facade, prepare one weighted query, and evaluate the same compiled circuit
// in several semirings.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"

	"repro/agg"
)

func main() {
	ctx := context.Background()

	// A bounded-degree random directed graph with edge weights w and vertex
	// weights u (a canonical bounded-expansion database).
	eng, err := agg.OpenSource(agg.Source{Kind: "bounded-degree", N: 2000, Degree: 3, Seed: 1})
	if err != nil {
		panic(err)
	}
	db := eng.Database()
	fmt.Printf("database: %d elements, %d tuples\n", db.Elements(), db.TupleCount())

	// The paper's running example: the weighted count of directed triangles,
	//   f = Σ_{x,y,z} [E(x,y) ∧ E(y,z) ∧ E(z,x)] · w(x,y) · w(y,z) · w(z,x).
	// Prepare compiles it once (Theorem 6); the circuit is independent of
	// the semiring.
	p, err := eng.Prepare(ctx,
		"sum x, y, z . [E(x,y) & E(y,z) & E(z,x)] * w(x,y) * w(y,z) * w(z,x)")
	if err != nil {
		panic(err)
	}
	st := p.Stats()
	fmt.Printf("query: %s\n\n", p.Canonical())
	fmt.Printf("compiled circuit: %d gates, depth %d, %d permanent gates (≤%d rows)\n\n",
		st.Gates, st.Depth, st.PermGates, st.MaxPermRows)

	// Evaluate in (ℕ, +, ·): the bag-semantics triangle weight.  The circuit
	// is shallow and wide, so evaluation spreads each topological level over
	// all cores.
	count, err := p.Eval(ctx)
	if err != nil {
		panic(err)
	}
	fmt.Printf("Σ over triangles of w(x,y)·w(y,z)·w(z,x) in (N,+,·):  %s\n", count)

	// Rebind the SAME circuit to (ℕ∪{∞}, min, +): the cheapest triangle.
	// In shares the compilation; no recompilation happens.
	mp, err := p.In("minplus")
	if err != nil {
		panic(err)
	}
	cheapest, err := mp.Eval(ctx)
	if err != nil {
		panic(err)
	}
	fmt.Printf("minimum triangle cost in (N∪{∞},min,+):              %s\n", cheapest)

	// And in the boolean semiring: does any triangle exist at all?
	bl, err := p.In("boolean")
	if err != nil {
		panic(err)
	}
	exists, err := bl.Eval(ctx)
	if err != nil {
		panic(err)
	}
	fmt.Printf("does a directed triangle exist (B,∨,∧)?               %s\n", exists)

	// Point queries (Theorem 8): the number of triangles through a given
	// vertex, via a query with a free variable — one argument per free
	// variable, logarithmic time per point.
	g, err := eng.Prepare(ctx, "sum y, z . [E(x,y) & E(y,z) & E(z,x)]")
	if err != nil {
		panic(err)
	}
	fmt.Printf("\ntriangles through a vertex (free variable %v):\n", g.FreeVars())
	for _, v := range []int{0, 1, 2, 3} {
		at, err := g.Eval(ctx, v)
		if err != nil {
			panic(err)
		}
		fmt.Printf("  vertex %d: %s\n", v, at)
	}
}
