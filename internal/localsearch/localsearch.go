// Package localsearch implements the local-search applications of dynamic
// query enumeration described in Example 25 of the paper.
//
// The current solution of an optimisation problem (an independent set, a
// dominating set, ...) is represented by dynamic unary predicates on the
// database.  A fixed first-order formula describes a possible local
// improvement; the dynamic constant-delay enumerator of Theorem 24 finds an
// improvement in constant time, and applying it costs a constant number of
// Gaifman-preserving updates.  Each round of local search therefore takes
// constant time, and a locally optimal solution is reached in linear total
// time.
//
// The package provides a generic Searcher driver plus ready-made maximal
// independent set and minimal dominating set constructions on undirected
// graphs.
package localsearch

import (
	"fmt"
	"time"

	"repro/internal/compile"
	"repro/internal/enumerate"
	"repro/internal/graph"
	"repro/internal/logic"
	"repro/internal/structure"
)

// Searcher drives a local search whose improvement step is described by a
// first-order formula over a structure with dynamic unary predicates.
type Searcher struct {
	ans    *enumerate.Answers
	rounds int
}

// New preprocesses the improvement query phi (with answer variables vars)
// over the structure a.  Relations listed in dynamic may be modified during
// the search through Apply; updates must preserve the Gaifman graph, which
// is always the case for unary predicates.
func New(a *structure.Structure, phi logic.Formula, vars []string, dynamic []string) (*Searcher, error) {
	ans, err := enumerate.EnumerateAnswers(a, phi, vars, compile.Options{DynamicRelations: dynamic})
	if err != nil {
		return nil, fmt.Errorf("localsearch: %w", err)
	}
	return &Searcher{ans: ans}, nil
}

// FindImprovement returns an answer of the improvement query for the current
// solution, or ok=false if the solution is locally optimal.
func (s *Searcher) FindImprovement() (structure.Tuple, bool) {
	cur := s.ans.Cursor()
	t, ok := cur.Next()
	if ok {
		s.rounds++
	}
	return t, ok
}

// Apply records a change to a dynamic relation (inserting the tuple when
// present is true, removing it otherwise).
func (s *Searcher) Apply(rel string, tuple structure.Tuple, present bool) error {
	return s.ans.SetTuple(rel, tuple, present)
}

// ApplyAll applies one round's worth of changes with a single propagation
// wave over the frozen program (enumerate.Answers.ApplyBatch), so gates
// shared by several of the round's updates are revisited once instead of
// once per update.  The batch is all-or-nothing.
func (s *Searcher) ApplyAll(changes []enumerate.TupleChange) error {
	return s.ans.ApplyBatch(changes)
}

// Rounds reports how many improvements have been found so far.
func (s *Searcher) Rounds() int { return s.rounds }

// Answers exposes the underlying dynamic enumerator, e.g. to count the
// remaining improvements.
func (s *Searcher) Answers() *enumerate.Answers { return s.ans }

// Stats records the cost of a completed local search.
type Stats struct {
	// Rounds is the number of improvement steps performed.
	Rounds int
	// Preprocess is the time spent building the enumeration data structure.
	Preprocess time.Duration
	// Search is the total time of the improvement loop.
	Search time.Duration
}

// Result is a vertex-subset solution together with search statistics.
type Result struct {
	// Solution lists the selected vertices in the order they were added.
	Solution []int
	// Stats records preprocessing and search cost.
	Stats Stats
}

// Contains reports whether vertex v belongs to the solution.
func (r *Result) Contains(v int) bool {
	for _, u := range r.Solution {
		if u == v {
			return true
		}
	}
	return false
}

// graphStructure encodes an undirected graph as a structure with the binary
// relation E (one tuple per direction) and the given dynamic unary
// predicates, initially empty.
func graphStructure(g *graph.Graph, unary ...string) *structure.Structure {
	rels := []structure.RelSymbol{{Name: "E", Arity: 2}}
	for _, u := range unary {
		rels = append(rels, structure.RelSymbol{Name: u, Arity: 1})
	}
	a := structure.NewStructure(structure.MustSignature(rels, nil), g.N())
	for _, e := range g.Edges() {
		a.MustAddTuple("E", e[0], e[1])
		a.MustAddTuple("E", e[1], e[0])
	}
	return a
}

// MaximalIndependentSet computes an inclusion-maximal independent set of g
// using the dynamic enumerator: the improvement query asks for a vertex that
// is neither selected nor adjacent to a selected vertex.
func MaximalIndependentSet(g *graph.Graph) (*Result, error) {
	a := graphStructure(g, "S", "Blocked")
	phi := logic.Conj(logic.Neg(logic.R("S", "x")), logic.Neg(logic.R("Blocked", "x")))

	start := time.Now()
	s, err := New(a, phi, []string{"x"}, []string{"S", "Blocked"})
	if err != nil {
		return nil, err
	}
	preprocess := time.Since(start)

	start = time.Now()
	var solution []int
	var changes []enumerate.TupleChange
	for {
		t, ok := s.FindImprovement()
		if !ok {
			break
		}
		v := t[0]
		solution = append(solution, v)
		// Selecting v selects and blocks it and blocks its neighbourhood:
		// one batched wave per round instead of deg(v)+2 propagations.
		changes = append(changes[:0],
			enumerate.TupleChange{Rel: "S", Tuple: structure.Tuple{v}, Present: true},
			enumerate.TupleChange{Rel: "Blocked", Tuple: structure.Tuple{v}, Present: true})
		for _, u := range g.Neighbors(v) {
			changes = append(changes, enumerate.TupleChange{Rel: "Blocked", Tuple: structure.Tuple{u}, Present: true})
		}
		if err := s.ApplyAll(changes); err != nil {
			return nil, err
		}
	}
	return &Result{
		Solution: solution,
		Stats:    Stats{Rounds: s.Rounds(), Preprocess: preprocess, Search: time.Since(start)},
	}, nil
}

// MinimalDominatingSet computes an inclusion-minimal dominating set of g.
// The growing phase uses the dynamic enumerator (the improvement query asks
// for a vertex that is not yet dominated); a pruning phase then removes
// redundant vertices while keeping every vertex dominated.
func MinimalDominatingSet(g *graph.Graph) (*Result, error) {
	a := graphStructure(g, "S", "Dom")
	phi := logic.Neg(logic.R("Dom", "x"))

	start := time.Now()
	s, err := New(a, phi, []string{"x"}, []string{"S", "Dom"})
	if err != nil {
		return nil, err
	}
	preprocess := time.Since(start)

	start = time.Now()
	var solution []int
	inSolution := make([]bool, g.N())
	var changes []enumerate.TupleChange
	for {
		t, ok := s.FindImprovement()
		if !ok {
			break
		}
		v := t[0]
		solution = append(solution, v)
		inSolution[v] = true
		// One batched wave dominates v's closed neighbourhood.
		changes = append(changes[:0],
			enumerate.TupleChange{Rel: "S", Tuple: structure.Tuple{v}, Present: true},
			enumerate.TupleChange{Rel: "Dom", Tuple: structure.Tuple{v}, Present: true})
		for _, u := range g.Neighbors(v) {
			changes = append(changes, enumerate.TupleChange{Rel: "Dom", Tuple: structure.Tuple{u}, Present: true})
		}
		if err := s.ApplyAll(changes); err != nil {
			return nil, err
		}
	}

	solution = pruneDominatingSet(g, solution, inSolution)
	return &Result{
		Solution: solution,
		Stats:    Stats{Rounds: s.Rounds(), Preprocess: preprocess, Search: time.Since(start)},
	}, nil
}

// pruneDominatingSet removes vertices from the solution as long as every
// vertex of the graph stays dominated, yielding an inclusion-minimal
// dominating set.
func pruneDominatingSet(g *graph.Graph, solution []int, inSolution []bool) []int {
	// cover[u] counts the solution vertices in the closed neighbourhood of u.
	cover := make([]int, g.N())
	for _, v := range solution {
		cover[v]++
		for _, u := range g.Neighbors(v) {
			cover[u]++
		}
	}
	kept := solution[:0]
	for i := len(solution) - 1; i >= 0; i-- {
		v := solution[i]
		redundant := cover[v] >= 2
		if redundant {
			for _, u := range g.Neighbors(v) {
				if cover[u] < 2 {
					redundant = false
					break
				}
			}
		}
		if !redundant {
			continue
		}
		inSolution[v] = false
		cover[v]--
		for _, u := range g.Neighbors(v) {
			cover[u]--
		}
	}
	for _, v := range solution {
		if inSolution[v] {
			kept = append(kept, v)
		}
	}
	return kept
}

// IsIndependentSet reports whether the given vertex set is independent in g.
func IsIndependentSet(g *graph.Graph, set []int) bool {
	in := make([]bool, g.N())
	for _, v := range set {
		in[v] = true
	}
	for _, e := range g.Edges() {
		if in[e[0]] && in[e[1]] {
			return false
		}
	}
	return true
}

// IsMaximalIndependentSet reports whether the set is independent and no
// vertex can be added without breaking independence.
func IsMaximalIndependentSet(g *graph.Graph, set []int) bool {
	if !IsIndependentSet(g, set) {
		return false
	}
	in := make([]bool, g.N())
	for _, v := range set {
		in[v] = true
	}
	for v := 0; v < g.N(); v++ {
		if in[v] {
			continue
		}
		blocked := false
		for _, u := range g.Neighbors(v) {
			if in[u] {
				blocked = true
				break
			}
		}
		if !blocked {
			return false
		}
	}
	return true
}

// IsDominatingSet reports whether every vertex of g is in the set or has a
// neighbour in the set.
func IsDominatingSet(g *graph.Graph, set []int) bool {
	in := make([]bool, g.N())
	for _, v := range set {
		in[v] = true
	}
	for v := 0; v < g.N(); v++ {
		if in[v] {
			continue
		}
		dominated := false
		for _, u := range g.Neighbors(v) {
			if in[u] {
				dominated = true
				break
			}
		}
		if !dominated {
			return false
		}
	}
	return true
}

// IsMinimalDominatingSet reports whether the set dominates g and no proper
// subset obtained by removing a single vertex still does.
func IsMinimalDominatingSet(g *graph.Graph, set []int) bool {
	if !IsDominatingSet(g, set) {
		return false
	}
	for i := range set {
		reduced := make([]int, 0, len(set)-1)
		reduced = append(reduced, set[:i]...)
		reduced = append(reduced, set[i+1:]...)
		if IsDominatingSet(g, reduced) {
			return false
		}
	}
	return true
}
