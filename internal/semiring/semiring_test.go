package semiring

import (
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"
)

// axiomChecker verifies the commutative-semiring axioms for a semiring over
// T, drawing random elements from gen.
func axiomChecker[T any](t *testing.T, name string, s Semiring[T], gen func(r *rand.Rand) T) {
	t.Helper()
	r := rand.New(rand.NewSource(42))
	const rounds = 200
	for i := 0; i < rounds; i++ {
		a, b, c := gen(r), gen(r), gen(r)
		if !s.Equal(s.Add(a, b), s.Add(b, a)) {
			t.Fatalf("%s: addition not commutative: %s vs %s", name, s.Format(a), s.Format(b))
		}
		if !s.Equal(s.Mul(a, b), s.Mul(b, a)) {
			t.Fatalf("%s: multiplication not commutative", name)
		}
		if !s.Equal(s.Add(s.Add(a, b), c), s.Add(a, s.Add(b, c))) {
			t.Fatalf("%s: addition not associative", name)
		}
		if !s.Equal(s.Mul(s.Mul(a, b), c), s.Mul(a, s.Mul(b, c))) {
			t.Fatalf("%s: multiplication not associative", name)
		}
		if !s.Equal(s.Add(a, s.Zero()), a) {
			t.Fatalf("%s: zero is not an additive identity", name)
		}
		if !s.Equal(s.Mul(a, s.One()), a) {
			t.Fatalf("%s: one is not a multiplicative identity", name)
		}
		if !s.Equal(s.Mul(a, s.Zero()), s.Zero()) {
			t.Fatalf("%s: zero is not absorbing", name)
		}
		lhs := s.Mul(a, s.Add(b, c))
		rhs := s.Add(s.Mul(a, b), s.Mul(a, c))
		if !s.Equal(lhs, rhs) {
			t.Fatalf("%s: multiplication does not distribute over addition: a=%s b=%s c=%s lhs=%s rhs=%s",
				name, s.Format(a), s.Format(b), s.Format(c), s.Format(lhs), s.Format(rhs))
		}
	}
}

func TestSemiringAxioms(t *testing.T) {
	smallInt := func(r *rand.Rand) int64 { return int64(r.Intn(21) - 10) }
	smallNat := func(r *rand.Rand) int64 { return int64(r.Intn(11)) }

	axiomChecker[bool](t, "Boolean", Bool, func(r *rand.Rand) bool { return r.Intn(2) == 0 })
	axiomChecker[int64](t, "Natural", Nat, smallNat)
	axiomChecker[int64](t, "IntRing", Int, smallInt)
	axiomChecker[*big.Int](t, "BigInt", Big, func(r *rand.Rand) *big.Int { return big.NewInt(int64(r.Intn(41) - 20)) })
	axiomChecker[*big.Rat](t, "Rational", Rat, func(r *rand.Rand) *big.Rat {
		return big.NewRat(int64(r.Intn(21)-10), int64(r.Intn(9)+1))
	})
	axiomChecker[float64](t, "Float", Float, func(r *rand.Rand) float64 { return float64(r.Intn(16)) })

	genExt := func(r *rand.Rand) Ext {
		if r.Intn(6) == 0 {
			return Infinite
		}
		return Fin(int64(r.Intn(30)))
	}
	axiomChecker[Ext](t, "MinPlus", MinPlus, genExt)
	axiomChecker[Ext](t, "MaxPlus", MaxPlus, genExt)
	axiomChecker[Ext](t, "MinMax", MinMax, genExt)

	mod7 := NewModular(7)
	axiomChecker[int64](t, "Modular7", mod7, func(r *rand.Rand) int64 { return int64(r.Intn(7)) })
	mod2 := NewModular(2)
	axiomChecker[int64](t, "Modular2", mod2, func(r *rand.Rand) int64 { return int64(r.Intn(2)) })

	trunc := NewTruncated(5)
	axiomChecker[int64](t, "Truncated5", trunc, func(r *rand.Rand) int64 { return int64(r.Intn(6)) })

	sets := NewSetAlgebra(8)
	axiomChecker[uint64](t, "SetAlgebra8", sets, func(r *rand.Rand) uint64 { return uint64(r.Intn(256)) })
}

func TestRingInterfaces(t *testing.T) {
	rings := []struct {
		name string
		ok   bool
	}{
		{"IntRing", checkRing[int64](Int)},
		{"BigInt", checkRing[*big.Int](Big)},
		{"Rational", checkRing[*big.Rat](Rat)},
		{"Modular", checkRing[int64](NewModular(5))},
	}
	for _, r := range rings {
		if !r.ok {
			t.Errorf("%s does not satisfy Ring", r.name)
		}
	}
	if checkRing[bool](Bool) {
		t.Errorf("Boolean unexpectedly satisfies Ring")
	}
	if checkRing[Ext](MinPlus) {
		t.Errorf("MinPlus unexpectedly satisfies Ring")
	}
}

func checkRing[T any](s Semiring[T]) bool {
	_, ok := s.(Ring[T])
	return ok
}

func TestRingNegation(t *testing.T) {
	check := func(a int64) bool {
		return Int.Equal(Int.Add(a, Int.Neg(a)), Int.Zero())
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
	mod := NewModular(9)
	checkMod := func(a int64) bool {
		return mod.Equal(mod.Add(a, mod.Neg(a)), mod.Zero())
	}
	if err := quick.Check(checkMod, nil); err != nil {
		t.Fatal(err)
	}
}

func TestScalarMul(t *testing.T) {
	for n := int64(0); n < 50; n++ {
		want := 3 * n
		got := ScalarMul[int64](Nat, n, 3)
		if got != want {
			t.Fatalf("ScalarMul(Nat, %d, 3) = %d, want %d", n, got, want)
		}
	}
	// In the boolean semiring n·true is true for n ≥ 1 and false for n = 0.
	if ScalarMul[bool](Bool, 0, true) != false {
		t.Errorf("0·true should be false")
	}
	if ScalarMul[bool](Bool, 7, true) != true {
		t.Errorf("7·true should be true")
	}
	// Min-plus: n·a = min(a, ..., a) = a for n ≥ 1.
	if got := ScalarMul[Ext](MinPlus, 4, Fin(5)); !MinPlus.Equal(got, Fin(5)) {
		t.Errorf("4·5 in min-plus = %v, want 5", got)
	}
	if got := ScalarMul[Ext](MinPlus, 0, Fin(5)); !MinPlus.Equal(got, Infinite) {
		t.Errorf("0·5 in min-plus = %v, want +inf", got)
	}
	// Modular arithmetic wraps.
	mod5 := NewModular(5)
	if got := ScalarMul[int64](mod5, 12, 3); got != mod5.norm(36) {
		t.Errorf("12·3 mod 5 = %d, want %d", got, mod5.norm(36))
	}
	// Big multipliers.
	n := new(big.Int).Exp(big.NewInt(10), big.NewInt(18), nil)
	got := ScalarMulBig[*big.Int](Big, n, big.NewInt(2))
	want := new(big.Int).Mul(n, big.NewInt(2))
	if got.Cmp(want) != 0 {
		t.Errorf("ScalarMulBig(10^18, 2) = %s, want %s", got, want)
	}
}

func TestPow(t *testing.T) {
	if got := Pow[int64](Nat, 3, 5); got != 243 {
		t.Errorf("3^5 = %d, want 243", got)
	}
	if got := Pow[int64](Nat, 7, 0); got != 1 {
		t.Errorf("7^0 = %d, want 1", got)
	}
	// Min-plus power is repeated addition of costs.
	if got := Pow[Ext](MinPlus, Fin(4), 3); !MinPlus.Equal(got, Fin(12)) {
		t.Errorf("4^3 in min-plus = %v, want 12", got)
	}
}

func TestSumProduct(t *testing.T) {
	xs := []int64{1, 2, 3, 4}
	if got := Sum[int64](Nat, xs); got != 10 {
		t.Errorf("Sum = %d, want 10", got)
	}
	if got := Product[int64](Nat, xs); got != 24 {
		t.Errorf("Product = %d, want 24", got)
	}
	if got := Sum[int64](Nat, nil); got != 0 {
		t.Errorf("empty Sum = %d, want 0", got)
	}
	if got := Product[int64](Nat, nil); got != 1 {
		t.Errorf("empty Product = %d, want 1", got)
	}
}

func TestIverson(t *testing.T) {
	if Iverson[int64](Nat, true) != 1 || Iverson[int64](Nat, false) != 0 {
		t.Errorf("Iverson bracket in Nat incorrect")
	}
	if !MinPlus.Equal(Iverson[Ext](MinPlus, true), Fin(0)) {
		t.Errorf("Iverson true in MinPlus should be 0 (the unit)")
	}
	if !MinPlus.Equal(Iverson[Ext](MinPlus, false), Infinite) {
		t.Errorf("Iverson false in MinPlus should be +inf (the zero)")
	}
}

func TestFiniteElements(t *testing.T) {
	mod3 := NewModular(3)
	if got := len(mod3.Elements()); got != 3 {
		t.Errorf("Modular(3) has %d elements, want 3", got)
	}
	tr := NewTruncated(4)
	if got := len(tr.Elements()); got != 5 {
		t.Errorf("Truncated(4) has %d elements, want 5", got)
	}
	sa := NewSetAlgebra(3)
	if got := len(sa.Elements()); got != 8 {
		t.Errorf("SetAlgebra(3) has %d elements, want 8", got)
	}
	if got := len(Bool.Elements()); got != 2 {
		t.Errorf("Boolean has %d elements, want 2", got)
	}
}

func TestTruncatedSaturation(t *testing.T) {
	tr := NewTruncated(10)
	if got := tr.Add(7, 8); got != 10 {
		t.Errorf("7+8 truncated at 10 = %d, want 10", got)
	}
	if got := tr.Mul(1000000000, 1000000000); got != 10 {
		t.Errorf("overflow-prone Mul should saturate, got %d", got)
	}
	if got := tr.Mul(3, 3); got != 9 {
		t.Errorf("3·3 = %d, want 9", got)
	}
}

func TestOrderedSemirings(t *testing.T) {
	if !MinPlus.Less(Fin(3), Fin(5)) || MinPlus.Less(Fin(5), Fin(3)) {
		t.Errorf("MinPlus ordering broken")
	}
	if !MinPlus.Less(Fin(3), Infinite) || MinPlus.Less(Infinite, Fin(3)) {
		t.Errorf("MinPlus infinity ordering broken")
	}
	if !MaxPlus.Less(Infinite, Fin(-100)) {
		t.Errorf("MaxPlus -inf should be smallest")
	}
	if !Nat.Less(2, 3) || Nat.Less(3, 2) {
		t.Errorf("Nat ordering broken")
	}
}
