package dynamicq

import (
	"math/rand"
	"testing"

	"repro/internal/compile"
	"repro/internal/expr"
	"repro/internal/logic"
	"repro/internal/semiring"
	"repro/internal/structure"
)

// TestSnapshotPointQueriesPinned pins snapshots along a mixed update stream
// (weights and dynamic-relation toggles) and checks that each keeps
// answering point queries with the values of its own epoch, against a naive
// evaluation of the frozen mirror database.
func TestSnapshotPointQueriesPinned(t *testing.T) {
	// f(x) = Σ_y [E(x,y)]·w(x,y)·u(y) with dynamic E.
	q := expr.Agg([]string{"y"}, expr.Times(
		expr.Guard(logic.R("E", "x", "y")),
		expr.W("w", "x", "y"), expr.W("u", "y"),
	))
	a, w := testDB(8, 16, 17)
	query, err := CompileQuery[int64](semiring.Nat, a, w, q, compile.Options{DynamicRelations: []string{"E"}})
	if err != nil {
		t.Fatalf("CompileQuery: %v", err)
	}

	type pinned struct {
		snap   *Snapshot[int64]
		mirror *structure.Structure
		w      *structure.Weights[int64]
	}
	record := func() pinned {
		return pinned{snap: query.Snapshot(), mirror: a.Clone(), w: w.Clone()}
	}

	pins := []pinned{record()}
	r := rand.New(rand.NewSource(19))
	edges := append([]structure.Tuple(nil), a.Tuples("E")...)
	for step := 0; step < 40; step++ {
		if r.Intn(3) == 0 {
			tpl := edges[r.Intn(len(edges))]
			present := r.Intn(2) == 0
			if err := query.SetTuple("E", tpl, present); err != nil {
				t.Fatalf("SetTuple: %v", err)
			}
			rebuildWith(a, "E", tpl, present)
		} else {
			tpl := edges[r.Intn(len(edges))]
			v := int64(r.Intn(6))
			if err := query.SetWeight("w", tpl, v); err != nil {
				t.Fatalf("SetWeight: %v", err)
			}
			w.Set("w", tpl, v)
		}
		if step%13 == 0 {
			pins = append(pins, record())
		}
	}

	// Every snapshot answers as of its own epoch; the live query as of now.
	for i, p := range pins {
		for x := 0; x < a.N; x++ {
			got, err := p.snap.Value(x)
			if err != nil {
				t.Fatalf("pin %d: Value(%d): %v", i, x, err)
			}
			want := naive(p.mirror, p.w, q, map[string]structure.Element{"x": x})
			if got != want {
				t.Errorf("pin %d (epoch %d): f(%d) = %d, want %d", i, p.snap.Epoch(), x, got, want)
			}
		}
	}
	for x := 0; x < a.N; x++ {
		got, _ := query.Value(x)
		if want := naive(a, w, q, map[string]structure.Element{"x": x}); got != want {
			t.Errorf("live query: f(%d) = %d, want %d", x, got, want)
		}
	}
	if query.RetainedUndoBytes() == 0 {
		t.Error("no undo history retained while snapshots are pinned")
	}
	for _, p := range pins {
		p.snap.Release()
		p.snap.Release() // idempotent
	}
	if got := query.RetainedUndoBytes(); got != 0 {
		t.Errorf("retained undo bytes %d after all snapshots released, want 0", got)
	}
}

// TestSnapshotArityChecks mirrors the writer-side argument validation.
func TestSnapshotArityChecks(t *testing.T) {
	q := expr.Agg([]string{"y"}, expr.Times(expr.Guard(logic.R("E", "x", "y")), expr.W("w", "x", "y")))
	a, w := testDB(6, 10, 23)
	query, err := CompileQuery[int64](semiring.Nat, a, w, q, compile.Options{})
	if err != nil {
		t.Fatalf("CompileQuery: %v", err)
	}
	snap := query.Snapshot()
	defer snap.Release()
	if _, err := snap.Value(); err == nil {
		t.Errorf("missing arguments accepted")
	}
	if _, err := snap.Value(1, 2); err == nil {
		t.Errorf("excess arguments accepted")
	}
	if _, err := snap.ValueClosed(); err == nil {
		t.Errorf("ValueClosed on an open query accepted")
	}
	got, err := snap.Value(0)
	if err != nil {
		t.Fatalf("Value(0): %v", err)
	}
	if want := naive(a, w, q, map[string]structure.Element{"x": 0}); got != want {
		t.Errorf("f(0) = %d, want %d", got, want)
	}
}
