package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"

	"repro/agg"
	"repro/internal/server"
	"repro/internal/workload"
)

// E12ServingThroughput measures the aggserve serving path: the cold-compile
// latency of the first /query against the cached latency of the repeats,
// and the sustained requests/sec when `clients` concurrent clients hammer
// the cached query.
func E12ServingThroughput(sizes []int, clients int) *Table {
	if clients < 8 {
		clients = 8
	}
	t := &Table{
		ID:     "E12",
		Title:  "Query serving: compiled-circuit cache and concurrent throughput",
		Claim:  "compilation (Theorem 6) is paid once per (database, query, semiring) key; cached queries skip it entirely, so a long-lived server amortises the expensive preprocessing across many concurrent clients",
		Header: []string{"n", "cold /query", "cached /query", "speedup", fmt.Sprintf("req/s (%d clients)", clients), "cache hits"},
	}
	const expr = "sum x, y . [E(x,y)] * w(x,y)"
	body, _ := json.Marshal(map[string]any{"expr": expr, "semiring": "natural"})

	for _, n := range sizes {
		db := workload.BoundedDegree(n, 3, 7)
		srv := server.New(server.Options{})
		srv.MountDatabaseValue("default", agg.FromStructure(db.A, db.Weights()))
		ts := httptest.NewServer(srv.Handler())

		post := func() error {
			resp, err := http.Post(ts.URL+"/query", "application/json", bytes.NewReader(body))
			if err != nil {
				return err
			}
			defer resp.Body.Close()
			var out struct {
				Error string `json:"error"`
			}
			if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
				return err
			}
			if resp.StatusCode != http.StatusOK {
				return fmt.Errorf("status %d: %s", resp.StatusCode, out.Error)
			}
			return nil
		}

		cold := timeIt(func() {
			if err := post(); err != nil {
				panic(fmt.Sprintf("E12: cold query: %v", err))
			}
		})

		// Average a handful of cached round trips.
		const warmReps = 10
		warm := timeIt(func() {
			for i := 0; i < warmReps; i++ {
				if err := post(); err != nil {
					panic(fmt.Sprintf("E12: cached query: %v", err))
				}
			}
		}) / warmReps

		// Concurrent clients on the cached entry.
		const perClient = 20
		var wg sync.WaitGroup
		elapsed := timeIt(func() {
			for c := 0; c < clients; c++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < perClient; i++ {
						if err := post(); err != nil {
							panic(fmt.Sprintf("E12: concurrent query: %v", err))
						}
					}
				}()
			}
			wg.Wait()
		})
		reqPerSec := float64(clients*perClient) / elapsed.Seconds()

		hits := srv.Stats().CacheHits.Load()
		if compiles := srv.Stats().Compiles.Load(); compiles != 1 {
			panic(fmt.Sprintf("E12: expected exactly 1 compile, saw %d", compiles))
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(n), dur(cold), dur(warm),
			fmt.Sprintf("%.1fx", float64(cold)/float64(warm)),
			fmt.Sprintf("%.0f", reqPerSec), fmt.Sprint(hits),
		})
		ts.Close()
	}
	t.Notes = append(t.Notes,
		"cold includes parsing + Theorem 6 compilation; cached requests hit the LRU of compiled circuits and only pay evaluation",
		"req/s drives the cached query from concurrent clients over loopback HTTP, so it includes JSON and transport overhead")
	return t
}
