package bench

import (
	"fmt"
	"time"

	"repro/internal/compile"
	"repro/internal/enumerate"
	"repro/internal/localsearch"
	"repro/internal/logic"
	"repro/internal/nested"
	"repro/internal/semiring"
	"repro/internal/structure"
	"repro/internal/workload"
)

// e16NestedMeasure times the introduction's "maximum average neighbour
// weight" nested query on the Program-backed evaluator against the seed-era
// path it replaced: direct recursion over the FOG[C] semantics (kept as
// nested.ReferenceEvalClosed, the differential-testing oracle).  The
// reference enumerates every variable assignment, so it is quadratic here;
// the Program core compiles each guarded stage once and stays near-linear.
func e16NestedMeasure(n int) (program, reference time.Duration, agree bool) {
	db := workload.NestedAgg(n, 3, 29)
	sig := structure.MustSignature(
		[]structure.RelSymbol{{Name: "E", Arity: 2}, {Name: "V", Arity: 1}},
		nil,
	)
	b := structure.NewStructure(sig, db.A.N)
	for _, tup := range db.A.Tuples("E") {
		b.MustAddTuple("E", tup...)
	}
	for v := 0; v < db.A.N; v++ {
		b.MustAddTuple("V", v)
	}
	ndb := nested.NewDatabase(b)
	if err := ndb.DeclareSRelation("u", nested.NatSemiring, 1); err != nil {
		panic(fmt.Sprintf("E16: declare u: %v", err))
	}
	for v := 0; v < db.A.N; v++ {
		if err := ndb.SetValue("u", structure.Tuple{v}, db.VertexWeight[v]); err != nil {
			panic(fmt.Sprintf("E16: set u(%d): %v", v, err))
		}
	}
	sumW := nested.Sum([]string{"y"}, nested.Times(
		nested.Bracket(nested.NatSemiring, nested.B("E", "x", "y")),
		nested.S(nested.NatSemiring, "u", "y")))
	degree := nested.Sum([]string{"y"}, nested.Bracket(nested.NatSemiring, nested.B("E", "x", "y")))
	avg := nested.Guard("V", []string{"x"}, nested.RatioNat, sumW, degree)
	query := nested.Sum([]string{"x"}, nested.Guard("V", []string{"x"}, nested.IntoMaxPlus, avg))

	var got semiring.Ext
	program = timeIt(func() {
		ev := nested.NewEvaluator(ndb, compile.Options{})
		v, err := ev.EvalClosed(query)
		if err != nil {
			panic(fmt.Sprintf("E16: program eval: %v", err))
		}
		got = v.(semiring.Ext)
	})
	var want semiring.Ext
	reference = timeIt(func() {
		v, err := nested.ReferenceEvalClosed(ndb, query)
		if err != nil {
			panic(fmt.Sprintf("E16: reference eval: %v", err))
		}
		want = v.(semiring.Ext)
	})
	return program, reference, got == want
}

// e16SearchMeasure runs the same maximal-independent-set local search twice
// on one workload: once committing every improvement through per-tuple
// SetTuple propagations (the seed-era driver loop) and once through the
// re-platformed localsearch driver, which batches each round's wave into a
// single ApplyAll propagation.  Preprocessing is excluded from both timings.
func e16SearchMeasure(n int) (batched, perTuple time.Duration, rounds int, agree bool) {
	db := workload.Search(n, 3, 31)
	a := db.A
	neighbors := make([][]int, a.N)
	for _, tup := range a.Tuples("E") {
		neighbors[tup[0]] = append(neighbors[tup[0]], tup[1])
	}
	phi := logic.Conj(logic.Neg(logic.R("S", "x")), logic.Neg(logic.R("B", "x")))
	opts := compile.Options{DynamicRelations: []string{"S", "B"}}

	// Seed-era path: one propagation wave per tuple change.
	ans, err := enumerate.EnumerateAnswers(a, phi, []string{"x"}, opts)
	if err != nil {
		panic(fmt.Sprintf("E16: enumerate: %v", err))
	}
	ptRounds, ptSize := 0, 0
	perTuple = timeIt(func() {
		for {
			tpl, ok := ans.Cursor().Next()
			if !ok {
				break
			}
			v := tpl[0]
			ptRounds++
			ptSize++
			for _, ch := range []struct {
				rel string
				el  int
			}{{"S", v}, {"B", v}} {
				if err := ans.SetTuple(ch.rel, structure.Tuple{ch.el}, true); err != nil {
					panic(fmt.Sprintf("E16: per-tuple update: %v", err))
				}
			}
			for _, u := range neighbors[v] {
				if err := ans.SetTuple("B", structure.Tuple{u}, true); err != nil {
					panic(fmt.Sprintf("E16: per-tuple update: %v", err))
				}
			}
		}
	})

	// Program-core path: the localsearch driver, one batched wave per round.
	s, err := localsearch.New(a, phi, []string{"x"}, []string{"S", "B"})
	if err != nil {
		panic(fmt.Sprintf("E16: localsearch.New: %v", err))
	}
	bSize := 0
	var changes []enumerate.TupleChange
	batched = timeIt(func() {
		for {
			tpl, ok := s.FindImprovement()
			if !ok {
				break
			}
			v := tpl[0]
			bSize++
			changes = append(changes[:0],
				enumerate.TupleChange{Rel: "S", Tuple: structure.Tuple{v}, Present: true},
				enumerate.TupleChange{Rel: "B", Tuple: structure.Tuple{v}, Present: true},
			)
			for _, u := range neighbors[v] {
				changes = append(changes, enumerate.TupleChange{Rel: "B", Tuple: structure.Tuple{u}, Present: true})
			}
			if err := s.ApplyAll(changes); err != nil {
				panic(fmt.Sprintf("E16: batched update: %v", err))
			}
		}
	})
	return batched, perTuple, s.Rounds(), s.Rounds() == ptRounds && bSize == ptSize
}

// E16Replatform compares the re-platformed nested-query and local-search
// paths against the seed-era implementations they replaced, on the dedicated
// "nested" and "search" workload kinds.
func E16Replatform(nestedSizes, searchSizes []int) *Table {
	t := &Table{
		ID:     "E16",
		Title:  "Re-platformed nested/localsearch paths vs the seed-era implementations",
		Claim:  "compiling nested stages to frozen Programs and batching local-search waves is at least as fast as the seed-era per-assignment and per-tuple paths",
		Header: []string{"phase", "n", "seed-era", "program core", "speedup", "agree"},
	}
	for _, n := range nestedSizes {
		program, reference, agree := e16NestedMeasure(n)
		t.Rows = append(t.Rows, []string{
			"nested eval", fmt.Sprint(n), dur(reference), dur(program),
			fmt.Sprintf("%.2fx", float64(reference)/float64(program)), fmt.Sprint(agree),
		})
	}
	for _, n := range searchSizes {
		batched, perTuple, rounds, agree := e16SearchMeasure(n)
		t.Rows = append(t.Rows, []string{
			"local search", fmt.Sprint(n), dur(perTuple), dur(batched),
			fmt.Sprintf("%.2fx", float64(perTuple)/float64(batched)), fmt.Sprint(agree),
		})
		t.Notes = append(t.Notes,
			fmt.Sprintf("local search at n=%d converged in %d rounds on both paths", n, rounds))
	}
	t.Notes = append(t.Notes,
		"seed-era comparators: nested.ReferenceEvalClosed (direct recursion, kept as the differential oracle) and the per-tuple SetTuple driver loop",
	)
	return t
}

// E16Check runs the re-platforming comparison as a pass/fail smoke check
// (used by CI): both Program-core paths must agree with the seed-era results
// and must not be slower.  The nested gate guards a steady-state advantage of
// well over 2x (near-linear vs quadratic), so its 10% margin is generous; the
// two local-search drivers do the same propagation work per round (the batch
// only coalesces the wave), so that gate asserts parity — best-of-3 minimums
// with a 15% margin, the E14 convention for sub-second timings on noisy
// shared runners.
func E16Check() error {
	program, reference, agree := e16NestedMeasure(2000)
	if !agree {
		return fmt.Errorf("E16: nested Program-core value disagrees with the reference recursion")
	}
	if float64(program) > 1.1*float64(reference) {
		return fmt.Errorf("E16: nested Program-core eval %v is slower than the seed-era recursion %v", program, reference)
	}
	const reps = 3
	var batched, perTuple time.Duration
	var rounds int
	for i := 0; i < reps; i++ {
		b, pt, r, sagree := e16SearchMeasure(60000)
		if !sagree {
			return fmt.Errorf("E16: batched local search found a different solution than the per-tuple driver")
		}
		if i == 0 || b < batched {
			batched = b
		}
		if i == 0 || pt < perTuple {
			perTuple = pt
		}
		rounds = r
	}
	if float64(batched) > 1.15*float64(perTuple) {
		return fmt.Errorf("E16: batched local search %v is slower than the per-tuple driver %v", batched, perTuple)
	}
	fmt.Printf("E16 ok: nested %v vs reference %v (%.2fx), local search %v vs per-tuple %v (%.2fx, %d rounds)\n",
		program, reference, float64(reference)/float64(program),
		batched, perTuple, float64(perTuple)/float64(batched), rounds)
	return nil
}
