package circuit

import (
	"math/big"
	"math/rand"
	"testing"

	"repro/internal/semiring"
	"repro/internal/structure"
)

// randomCircuit builds a random circuit over nInputs unary weight inputs
// using additions, multiplications, constants and small permanent gates.
// Gate value bounds are tracked (inputs take values below 5) so that the
// circuit value stays well inside int64 and cross-semiring comparisons are
// exact.
func randomCircuit(r *rand.Rand, nInputs, extraGates int) *Circuit {
	const maxBound = int64(1) << 40
	c := NewBuilder()
	gates := make([]int, 0, nInputs+extraGates)
	bounds := map[int]int64{}
	add := func(g int, bound int64) {
		gates = append(gates, g)
		if old, ok := bounds[g]; !ok || bound > old {
			bounds[g] = bound
		}
	}
	for i := 0; i < nInputs; i++ {
		add(c.Input(key("w", i)), 4)
	}
	pick := func() int { return gates[r.Intn(len(gates))] }
	for i := 0; i < extraGates; i++ {
		switch r.Intn(4) {
		case 0:
			a, b, d := pick(), pick(), pick()
			add(c.Add(a, b, d), bounds[a]+bounds[b]+bounds[d])
		case 1:
			a, b := pick(), pick()
			if bounds[a] > 0 && bounds[b] > maxBound/bounds[a] {
				add(c.Add(a, b), bounds[a]+bounds[b])
				continue
			}
			add(c.Mul(a, b), bounds[a]*bounds[b])
		case 2:
			n := int64(r.Intn(4))
			add(c.ConstInt(n), n)
		default:
			rows := r.Intn(2) + 1
			cols := r.Intn(3) + rows
			entries := make([]PermEntry, 0, rows*cols)
			var maxEntry int64 = 1
			for row := 0; row < rows; row++ {
				for col := 0; col < cols; col++ {
					g := pick()
					if bounds[g] > maxEntry {
						maxEntry = bounds[g]
					}
					entries = append(entries, PermEntry{Row: row, Col: col, Gate: g})
				}
			}
			// Crude permanent bound: (#injections) · maxEntry^rows.
			injections := int64(cols)
			if rows == 2 {
				injections = int64(cols) * int64(cols-1)
			}
			bound := injections
			overflow := false
			for j := 0; j < rows; j++ {
				if maxEntry != 0 && bound > maxBound/maxEntry {
					overflow = true
					break
				}
				bound *= maxEntry
			}
			if overflow {
				a, b := pick(), pick()
				add(c.Add(a, b), bounds[a]+bounds[b])
				continue
			}
			add(c.Perm(rows, cols, entries), bound)
		}
	}
	c.SetOutput(gates[len(gates)-1])
	return c
}

func randomValues(r *rand.Rand, nInputs int) []int64 {
	vals := make([]int64, nInputs)
	for i := range vals {
		vals[i] = int64(r.Intn(5))
	}
	return vals
}

func valuationFor(vals []int64) Valuation[int64] {
	return func(k structure.WeightKey) (int64, bool) {
		t := structure.ParseTupleKey(k.Tuple)
		if k.Weight != "w" || len(t) != 1 || t[0] < 0 || t[0] >= len(vals) {
			return 0, false
		}
		return vals[t[0]], true
	}
}

// TestEvaluateAgreesAcrossSemirings checks that evaluating in ℕ (int64) and
// in ℤ (big.Int ring) gives the same number for non-negative inputs, and
// that the boolean evaluation is exactly "the ℕ value is non-zero" — the
// homomorphism property the paper's universality relies on.
func TestEvaluateAgreesAcrossSemirings(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	for round := 0; round < 60; round++ {
		nInputs := r.Intn(6) + 2
		c := randomCircuit(r, nInputs, r.Intn(10)+3)
		vals := randomValues(r, nInputs)

		nat := Evaluate[int64](c, semiring.Nat, valuationFor(vals))
		bi := Evaluate[*big.Int](c, semiring.Big, func(k structure.WeightKey) (*big.Int, bool) {
			v, ok := valuationFor(vals)(k)
			if !ok {
				return nil, false
			}
			return big.NewInt(v), true
		})
		if !bi.IsInt64() || bi.Int64() != nat {
			t.Fatalf("round %d: ℕ evaluation %d differs from big-int evaluation %s", round, nat, bi)
		}

		boolVal := Evaluate[bool](c, semiring.Bool, func(k structure.WeightKey) (bool, bool) {
			v, ok := valuationFor(vals)(k)
			return v != 0, ok
		})
		if boolVal != (nat != 0) {
			t.Fatalf("round %d: boolean evaluation %v inconsistent with ℕ value %d", round, boolVal, nat)
		}
	}
}

// TestEvaluateAllConsistentWithEvaluate checks that the output entry of
// EvaluateAll matches Evaluate and that every addition/multiplication gate
// value is consistent with its children's values.
func TestEvaluateAllConsistentWithEvaluate(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	for round := 0; round < 40; round++ {
		nInputs := r.Intn(5) + 2
		c := randomCircuit(r, nInputs, r.Intn(12)+3)
		vals := randomValues(r, nInputs)
		v := valuationFor(vals)

		all := EvaluateAll[int64](c, semiring.Nat, v)
		if got, want := all[c.Output], Evaluate[int64](c, semiring.Nat, v); got != want {
			t.Fatalf("round %d: EvaluateAll output %d, Evaluate %d", round, got, want)
		}
		for id, g := range c.Gates {
			switch g.Kind {
			case KindAdd:
				var sum int64
				for _, ch := range g.Children {
					sum += all[ch]
				}
				if all[id] != sum {
					t.Fatalf("round %d: add gate %d value %d, children sum %d", round, id, all[id], sum)
				}
			case KindMul:
				prod := int64(1)
				for _, ch := range g.Children {
					prod *= all[ch]
				}
				if all[id] != prod {
					t.Fatalf("round %d: mul gate %d value %d, children product %d", round, id, all[id], prod)
				}
			}
		}
	}
}

// TestDynamicMatchesRecomputationOnRandomCircuits drives the dynamic
// evaluator with long random update sequences on random circuits and
// compares against recomputation from scratch after every update.
func TestDynamicMatchesRecomputationOnRandomCircuits(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	for round := 0; round < 25; round++ {
		nInputs := r.Intn(6) + 2
		c := randomCircuit(r, nInputs, r.Intn(10)+4)
		vals := randomValues(r, nInputs)
		dyn := NewDynamic[int64](c, semiring.Nat, valuationFor(vals))
		for step := 0; step < 20; step++ {
			i := r.Intn(nInputs)
			vals[i] = int64(r.Intn(5))
			dyn.SetInput(key("w", i), vals[i])
			want := Evaluate[int64](c, semiring.Nat, valuationFor(vals))
			if got := dyn.Value(); got != want {
				t.Fatalf("round %d step %d: dynamic value %d, recomputed %d", round, step, got, want)
			}
		}
	}
}

// TestDynamicMatchesRecomputationMinPlus repeats the dynamic-vs-recompute
// property in a non-ring semiring (min-plus), exercising the generic
// maintenance path.
func TestDynamicMatchesRecomputationMinPlus(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	for round := 0; round < 20; round++ {
		nInputs := r.Intn(5) + 2
		c := randomCircuit(r, nInputs, r.Intn(8)+4)
		vals := randomValues(r, nInputs)
		toExt := func(v int64) semiring.Ext {
			if v == 0 {
				return semiring.Infinite
			}
			return semiring.Fin(v)
		}
		valuation := func() Valuation[semiring.Ext] {
			return func(k structure.WeightKey) (semiring.Ext, bool) {
				v, ok := valuationFor(vals)(k)
				if !ok {
					return semiring.Infinite, false
				}
				return toExt(v), true
			}
		}
		dyn := NewDynamic[semiring.Ext](c, semiring.MinPlus, valuation())
		for step := 0; step < 15; step++ {
			i := r.Intn(nInputs)
			vals[i] = int64(r.Intn(5))
			dyn.SetInput(key("w", i), toExt(vals[i]))
			want := Evaluate[semiring.Ext](c, semiring.MinPlus, valuation())
			if got := dyn.Value(); !semiring.MinPlus.Equal(got, want) {
				t.Fatalf("round %d step %d: dynamic %s, recomputed %s",
					round, step, semiring.MinPlus.Format(got), semiring.MinPlus.Format(want))
			}
		}
	}
}
