package circuit

import (
	"math/big"
	"math/rand"
	"testing"

	"repro/internal/provenance"
	"repro/internal/semiring"
	"repro/internal/structure"
)

// checkProgramAgreesWithLegacy asserts that program evaluation (sequential
// and parallel) matches the legacy array-of-structs gate walk gate-for-gate.
func checkProgramAgreesWithLegacy[T any](t *testing.T, name string, c *Circuit, s semiring.Semiring[T], v Valuation[T]) {
	t.Helper()
	want := LegacyEvaluateAll(c, s, v)
	p := c.Program()
	for _, got := range [][]T{
		EvaluateAllProgram(p, s, v),
		ParallelEvaluateAllProgram(p, s, v, 3),
	} {
		if len(got) != len(want) {
			t.Fatalf("%s: program evaluated %d gates, legacy %d", name, len(got), len(want))
		}
		for id := range want {
			if !s.Equal(got[id], want[id]) {
				t.Fatalf("%s: gate %d program %s, legacy %s", name, id, s.Format(got[id]), s.Format(want[id]))
			}
		}
	}
}

// TestProgramEvalMatchesLegacyAcrossSemirings is the Program-equivalence
// property test: on random circuits, program evaluation agrees gate-for-gate
// with the legacy layout in every registered carrier (the server registry's
// natural, min-plus, boolean and provenance semirings plus the ring, finite
// and big-int upgrades).
func TestProgramEvalMatchesLegacyAcrossSemirings(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	mod := semiring.NewModular(7)
	trunc := semiring.NewTruncated(4)
	for round := 0; round < 30; round++ {
		nInputs := r.Intn(6) + 2
		c := randomCircuit(r, nInputs, r.Intn(12)+4)
		vals := randomValues(r, nInputs)
		natVal := valuationFor(vals)

		checkProgramAgreesWithLegacy[int64](t, "nat", c, semiring.Nat, natVal)
		checkProgramAgreesWithLegacy[int64](t, "int", c, semiring.Int, natVal)
		checkProgramAgreesWithLegacy[int64](t, "mod7", c, mod, func(k structure.WeightKey) (int64, bool) {
			x, ok := natVal(k)
			return mod.Add(x, 0), ok
		})
		checkProgramAgreesWithLegacy[int64](t, "truncated", c, trunc, func(k structure.WeightKey) (int64, bool) {
			x, ok := natVal(k)
			return trunc.Add(x, 0), ok
		})
		checkProgramAgreesWithLegacy[bool](t, "bool", c, semiring.Bool, func(k structure.WeightKey) (bool, bool) {
			x, ok := natVal(k)
			return x != 0, ok
		})
		checkProgramAgreesWithLegacy[*big.Int](t, "big", c, semiring.Big, func(k structure.WeightKey) (*big.Int, bool) {
			x, ok := natVal(k)
			if !ok {
				return nil, false
			}
			return big.NewInt(x), true
		})
		checkProgramAgreesWithLegacy[semiring.Ext](t, "minplus", c, semiring.MinPlus, func(k structure.WeightKey) (semiring.Ext, bool) {
			x, ok := natVal(k)
			if x == 0 {
				return semiring.Infinite, ok
			}
			return semiring.Fin(x), ok
		})
		checkProgramAgreesWithLegacy[*provenance.Poly](t, "provenance", c, provenance.Free, func(k structure.WeightKey) (*provenance.Poly, bool) {
			if _, ok := natVal(k); !ok {
				return nil, false
			}
			return provenance.FromMonomials(provenance.NewMonomial(provenance.Generator("g" + k.Tuple))), true
		})
	}
}

// TestProgramDynamicMatchesLegacyGateForGate drives dynamic updates on the
// program engine and checks every gate against a legacy-layout recomputation
// after each update, in a ring, a finite semiring and the generic path.
func TestProgramDynamicMatchesLegacyGateForGate(t *testing.T) {
	r := rand.New(rand.NewSource(43))
	mod := semiring.NewModular(5)
	for round := 0; round < 15; round++ {
		nInputs := r.Intn(6) + 2
		c := randomCircuit(r, nInputs, r.Intn(10)+4)
		vals := randomValues(r, nInputs)

		ring := NewDynamic[int64](c, semiring.Int, valuationFor(vals))
		fin := NewDynamic[int64](c, mod, func(k structure.WeightKey) (int64, bool) {
			x, ok := valuationFor(vals)(k)
			return mod.Add(x, 0), ok
		})
		toExt := func(x int64) semiring.Ext {
			if x == 0 {
				return semiring.Infinite
			}
			return semiring.Fin(x)
		}
		generic := NewDynamic[semiring.Ext](c, semiring.MinPlus, func(k structure.WeightKey) (semiring.Ext, bool) {
			x, ok := valuationFor(vals)(k)
			return toExt(x), ok
		})
		for step := 0; step < 12; step++ {
			i := r.Intn(nInputs)
			vals[i] = int64(r.Intn(5))
			ring.SetInput(key("w", i), vals[i])
			fin.SetInput(key("w", i), mod.Add(vals[i], 0))
			generic.SetInput(key("w", i), toExt(vals[i]))

			wantInt := LegacyEvaluateAll[int64](c, semiring.Int, valuationFor(vals))
			wantMod := LegacyEvaluateAll[int64](c, mod, func(k structure.WeightKey) (int64, bool) {
				x, ok := valuationFor(vals)(k)
				return mod.Add(x, 0), ok
			})
			wantMP := LegacyEvaluateAll[semiring.Ext](c, semiring.MinPlus, func(k structure.WeightKey) (semiring.Ext, bool) {
				x, ok := valuationFor(vals)(k)
				return toExt(x), ok
			})
			for id := range c.Gates {
				if got := ring.GateValue(id); got != wantInt[id] {
					t.Fatalf("round %d step %d: ℤ gate %d dynamic %d, legacy %d", round, step, id, got, wantInt[id])
				}
				if got := fin.GateValue(id); !mod.Equal(got, wantMod[id]) {
					t.Fatalf("round %d step %d: mod-5 gate %d dynamic %d, legacy %d", round, step, id, got, wantMod[id])
				}
				if got := generic.GateValue(id); !semiring.MinPlus.Equal(got, wantMP[id]) {
					t.Fatalf("round %d step %d: min-plus gate %d dynamic %v, legacy %v", round, step, id, got, wantMP[id])
				}
			}
		}
	}
}

// TestProgramStructure checks the structural invariants of the frozen form:
// kinds, children, ranks, level coverage, deduplicated sorted parents and
// the input index all agree with the builder layout.
func TestProgramStructure(t *testing.T) {
	r := rand.New(rand.NewSource(47))
	for round := 0; round < 20; round++ {
		c := randomCircuit(r, r.Intn(6)+2, r.Intn(40)+10)
		p := c.Program()
		if p.NumGates() != c.NumGates() || p.OutputGate() != c.Output {
			t.Fatalf("program covers %d gates output %d, circuit %d/%d", p.NumGates(), p.OutputGate(), c.NumGates(), c.Output)
		}
		covered := make([]bool, p.NumGates())
		for d := 0; d <= p.Depth(); d++ {
			for _, id := range p.LevelGates(d) {
				if covered[id] {
					t.Fatalf("gate %d scheduled twice", id)
				}
				covered[id] = true
				if p.Rank(int(id)) != d {
					t.Fatalf("gate %d on level %d has rank %d", id, d, p.Rank(int(id)))
				}
			}
		}
		for id := range covered {
			if !covered[id] {
				t.Fatalf("gate %d missing from the level schedule", id)
			}
			if p.GateKind(id) != c.Gates[id].Kind {
				t.Fatalf("gate %d kind %v, circuit %v", id, p.GateKind(id), c.Gates[id].Kind)
			}
			// Children (as a multiset per gate) match the builder layout; for
			// permanent gates the arena is column-major, so compare sorted.
			want := append([]int(nil), c.children(id)...)
			got := make([]int, 0, len(want))
			for _, ch := range p.ChildIDs(id) {
				got = append(got, int(ch))
			}
			if len(got) != len(want) {
				t.Fatalf("gate %d has %d arena children, circuit %d", id, len(got), len(want))
			}
			counts := map[int]int{}
			for _, ch := range want {
				counts[ch]++
			}
			for _, ch := range got {
				counts[ch]--
			}
			for ch, n := range counts {
				if n != 0 {
					t.Fatalf("gate %d child %d multiplicity differs by %d", id, ch, n)
				}
			}
			// Parents sorted strictly increasing (deduplicated), each a real
			// parent, and every child's rank strictly below the gate's.
			parents := p.ParentIDs(id)
			for i, par := range parents {
				if i > 0 && parents[i-1] >= par {
					t.Fatalf("gate %d parents not strictly increasing: %v", id, parents)
				}
			}
			for _, ch := range got {
				if p.Rank(ch) >= p.Rank(id) {
					t.Fatalf("gate %d rank %d not above child %d rank %d", id, p.Rank(id), ch, p.Rank(ch))
				}
			}
		}
		for key, id := range c.Inputs() {
			if p.InputGate(key) != id {
				t.Fatalf("input %v resolves to %d in the program, %d in the circuit", key, p.InputGate(key), id)
			}
			if p.InputKey(id) != key {
				t.Fatalf("input gate %d key %v, want %v", id, p.InputKey(id), key)
			}
		}
		if p.Footprint() <= 0 {
			t.Fatalf("non-positive footprint %d", p.Footprint())
		}
	}
}

// TestFreezeRejectsNonTopologicalCircuits mirrors the Dynamic property
// directly at the freeze seam.
func TestFreezeRejectsNonTopologicalCircuits(t *testing.T) {
	c := &Circuit{
		Gates: []Gate{
			{Kind: KindAdd, Children: []int{1}},
			{Kind: KindConst, N: big.NewInt(2)},
		},
		Output: 0,
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Freeze accepted a non-topological circuit")
		}
	}()
	Freeze(c)
}

// TestConstInterning checks the builder satellite: repeated constants reuse
// one gate, 0 and 1 resolve to the seeded gates, and distinct values stay
// distinct.
func TestConstInterning(t *testing.T) {
	c := NewBuilder()
	if c.Const(big.NewInt(0)) != c.Zero() || c.Const(big.NewInt(1)) != c.One() {
		t.Fatal("0/1 constants must resolve to the seeded gates")
	}
	g5 := c.ConstInt(5)
	if c.ConstInt(5) != g5 {
		t.Fatal("repeated ConstInt(5) allocated a new gate")
	}
	if c.Const(big.NewInt(5)) != g5 {
		t.Fatal("Const(big 5) did not intern onto ConstInt(5)")
	}
	if c.ConstInt(6) == g5 {
		t.Fatal("distinct constants interned onto one gate")
	}
	big1 := new(big.Int).Lsh(big.NewInt(1), 80)
	gBig := c.Const(big1)
	if c.Const(new(big.Int).Lsh(big.NewInt(1), 80)) != gBig {
		t.Fatal("big constants not interned")
	}
	before := c.NumGates()
	c.ConstInt(5)
	c.ConstInt(6)
	c.Const(big1)
	if c.NumGates() != before {
		t.Fatalf("interned constants grew the circuit from %d to %d gates", before, c.NumGates())
	}
	// The frozen program interns by value as well.
	c.SetOutput(c.Add(g5, gBig))
	p := c.Program()
	if !p.ConstIsZero(c.Zero()) || p.ConstIsZero(c.One()) {
		t.Fatal("ConstIsZero misclassifies the seeded constants")
	}
	if got := p.ConstBig(gBig); got.Cmp(big1) != 0 {
		t.Fatalf("ConstBig = %s, want %s", got, big1)
	}
}

// TestInputsReturnsCopy checks the accessor satellite: mutating the returned
// map must not corrupt the circuit's input index.
func TestInputsReturnsCopy(t *testing.T) {
	c := NewBuilder()
	k := key("w", 0)
	id := c.Input(k)
	m := c.Inputs()
	m[k] = -99
	delete(m, k)
	if got := c.InputGate(k); got != id {
		t.Fatalf("mutating Inputs() corrupted the index: InputGate = %d, want %d", got, id)
	}
	if !c.HasInput(k) {
		t.Fatal("mutating Inputs() removed the input")
	}
	if c.Input(k) != id {
		t.Fatal("re-requesting the input created a new gate")
	}
}

// BenchmarkProgramEvaluateAll measures program-layout evaluation on the
// ≥10k-gate circuit; compare with BenchmarkEvaluateAllLegacy.
func BenchmarkProgramEvaluateAll(b *testing.B) {
	c, val := benchmarkCircuit(b)
	p := c.Program()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		EvaluateAllProgram[int64](p, semiring.Nat, val)
	}
}

// BenchmarkEvaluateAllLegacy is the legacy-layout baseline on the same
// circuit.
func BenchmarkEvaluateAllLegacy(b *testing.B) {
	c, val := benchmarkCircuit(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		LegacyEvaluateAll[int64](c, semiring.Nat, val)
	}
}
