package agg

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"strings"
	"sync"
	"testing"
)

// ringEngine builds a directed ring 0→1→…→n-1→0 with edge weights
// w(i, i+1) = i+1, for MVCC tests that want a writable edge set.
func ringEngine(t *testing.T, n int) *Engine {
	t.Helper()
	var b strings.Builder
	fmt.Fprintf(&b, "domain %d\nrel E 2\nwsym w 2\n", n)
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "E %d %d\n", i, (i+1)%n)
	}
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "w %d %d %d\n", i, (i+1)%n, i+1)
	}
	eng, err := OpenReader(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("OpenReader: %v", err)
	}
	return eng
}

// evalAll reads the point value at every element through f.
func evalAll(t *testing.T, n int, f func(context.Context, ...int) (Value, error)) []Value {
	t.Helper()
	out := make([]Value, n)
	for x := 0; x < n; x++ {
		v, err := f(context.Background(), x)
		if err != nil {
			t.Fatalf("Eval(%d): %v", x, err)
		}
		out[x] = v
	}
	return out
}

// TestReaderPinsEpoch opens Readers along an update stream and checks that
// each keeps answering Eval, Enumerate and AnswerCount exactly as of its
// pinned epoch, that undo memory is retained only while Readers are open,
// and that closed Readers fail cleanly.
func TestReaderPinsEpoch(t *testing.T) {
	ctx := context.Background()
	const n = 8
	eng := ringEngine(t, n)
	p, err := eng.Prepare(ctx, "sum y . [E(x,y)] * w(x,y)", WithDynamic("E"))
	if err != nil {
		t.Fatalf("Prepare: %v", err)
	}
	s, err := p.Session()
	if err != nil {
		t.Fatalf("Session: %v", err)
	}
	defer s.Close()

	type pinned struct {
		r    *Reader
		want []Value
	}
	record := func() pinned {
		r, err := s.Snapshot()
		if err != nil {
			t.Fatalf("Snapshot: %v", err)
		}
		return pinned{r: r, want: evalAll(t, n, s.Eval)}
	}

	pins := []pinned{record()}
	rng := rand.New(rand.NewSource(7))
	for step := 0; step < 40; step++ {
		i := rng.Intn(n)
		switch rng.Intn(3) {
		case 0:
			err = s.Set(SetTuple("E", []int{i, (i + 1) % n}, rng.Intn(2) == 0))
		case 1:
			err = s.Set(SetWeight("w", []int{i, (i + 1) % n}, int64(rng.Intn(50))))
		default:
			err = s.ApplyBatch([]Change{
				SetTuple("E", []int{i, (i + 1) % n}, true),
				SetWeight("w", []int{i, (i + 1) % n}, int64(rng.Intn(50))),
			})
		}
		if err != nil {
			t.Fatalf("update %d: %v", step, err)
		}
		if step%11 == 0 {
			pins = append(pins, record())
		}
	}
	if s.RetainedUndoBytes() == 0 {
		t.Error("no undo history retained while Readers are open")
	}

	for i, pin := range pins {
		if got := evalAll(t, n, pin.r.Eval); !valuesEqual(got, pin.want) {
			t.Errorf("pin %d (epoch %d): reader values %v, want %v", i, pin.r.Epoch(), got, pin.want)
		}
	}
	// A fresh Reader sees the present.
	fresh, err := s.Snapshot()
	if err != nil {
		t.Fatalf("fresh Snapshot: %v", err)
	}
	if got, want := evalAll(t, n, fresh.Eval), evalAll(t, n, s.Eval); !valuesEqual(got, want) {
		t.Errorf("fresh reader values %v, live %v", got, want)
	}
	fresh.Close()

	for _, pin := range pins {
		if err := pin.r.Close(); err != nil {
			t.Errorf("Close: %v", err)
		}
		if err := pin.r.Close(); err != nil {
			t.Errorf("second Close: %v", err)
		}
	}
	if got := s.RetainedUndoBytes(); got != 0 {
		t.Errorf("retained undo bytes %d after all Readers closed, want 0", got)
	}
	if _, err := pins[0].r.Eval(ctx, 0); !errors.Is(err, ErrSessionClosed) {
		t.Errorf("Eval on closed Reader: %v, want ErrSessionClosed", err)
	}
}

func valuesEqual(a, b []Value) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestReaderEnumeratesPinnedAnswers checks the answer-set half of a Reader on
// an enumerable query with a dynamic relation: Enumerate and AnswerCount
// answer as of the pinned epoch while tuple updates keep committing, and
// agree with each other.
func TestReaderEnumeratesPinnedAnswers(t *testing.T) {
	ctx := context.Background()
	eng := testEngine(t)
	p, err := eng.Prepare(ctx, "E(x,y) & S(x)", WithDynamic("S"))
	if err != nil {
		t.Fatalf("Prepare: %v", err)
	}
	s, err := p.Session()
	if err != nil {
		t.Fatalf("Session: %v", err)
	}
	defer s.Close()

	collect := func(r *Reader) []string {
		var keys []string
		for ans, err := range r.Enumerate(ctx) {
			if err != nil {
				t.Fatalf("Enumerate: %v", err)
			}
			keys = append(keys, fmt.Sprint([]int(ans)))
		}
		sort.Strings(keys)
		return keys
	}

	type pinned struct {
		r    *Reader
		want []string
	}
	var pins []pinned
	record := func() {
		r, err := s.Snapshot()
		if err != nil {
			t.Fatalf("Snapshot: %v", err)
		}
		pins = append(pins, pinned{r: r, want: collect(r)})
	}

	record()
	for step, ch := range []Change{
		SetTuple("S", []int{1}, true),
		SetTuple("S", []int{0}, false),
		SetTuple("S", []int{2}, false),
		SetTuple("S", []int{3}, true),
	} {
		if err := s.Set(ch); err != nil {
			t.Fatalf("Set %d: %v", step, err)
		}
		record()
	}

	for i, pin := range pins {
		if got := collect(pin.r); !equalStrings(got, pin.want) {
			t.Errorf("pin %d: answers %v, want %v", i, got, pin.want)
		}
		count, err := pin.r.AnswerCount(ctx)
		if err != nil {
			t.Fatalf("AnswerCount: %v", err)
		}
		if int(count) != len(pin.want) {
			t.Errorf("pin %d: AnswerCount %d, enumerated %d", i, count, len(pin.want))
		}
	}
	for _, pin := range pins {
		pin.r.Close()
	}
	if got := s.RetainedUndoBytes(); got != 0 {
		t.Errorf("retained undo bytes %d after all Readers closed, want 0", got)
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestConcurrentReadersNeverBusy is the race-enabled stress test of the MVCC
// contract at the public API: one writer streams updates while reader
// goroutines Eval through Session.Snapshot Readers, asserting that every
// reader observes exactly the values of some committed epoch (differential
// against the sequential oracle the writer records after each commit) and
// that no read ever fails with ErrSessionBusy.
func TestConcurrentReadersNeverBusy(t *testing.T) {
	ctx := context.Background()
	const (
		n       = 8
		updates = 150
		readers = 4
	)
	eng := ringEngine(t, n)
	p, err := eng.Prepare(ctx, "sum y . [E(x,y)] * w(x,y)", WithDynamic("E"))
	if err != nil {
		t.Fatalf("Prepare: %v", err)
	}
	s, err := p.Session()
	if err != nil {
		t.Fatalf("Session: %v", err)
	}
	defer s.Close()

	var oracle sync.Map // epoch → []Value at that commit
	oracle.Store(s.Epoch(), evalAll(t, n, s.Eval))

	var wg sync.WaitGroup
	done := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(done)
		rng := rand.New(rand.NewSource(11))
		for i := 0; i < updates; i++ {
			v := rng.Intn(n)
			var err error
			if rng.Intn(2) == 0 {
				err = s.Set(SetTuple("E", []int{v, (v + 1) % n}, rng.Intn(2) == 0))
			} else {
				err = s.ApplyBatch([]Change{
					SetTuple("E", []int{v, (v + 1) % n}, true),
					SetWeight("w", []int{v, (v + 1) % n}, int64(rng.Intn(40))),
				})
			}
			if err != nil {
				t.Errorf("update %d: %v", i, err)
				return
			}
			// Readers that pinned this epoch first spin until the oracle entry
			// lands; the single writer is the only committer, so the epoch read
			// here is the one its updates produced.
			vals := make([]Value, n)
			for x := 0; x < n; x++ {
				if vals[x], err = s.Eval(ctx, x); err != nil {
					t.Errorf("oracle Eval(%d): %v", x, err)
					return
				}
			}
			oracle.Store(s.Epoch(), vals)
		}
	}()

	errs := make(chan error, readers)
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				r, err := s.Snapshot()
				if err != nil {
					errs <- fmt.Errorf("reader %d: Snapshot: %v", id, err)
					return
				}
				got := make([]Value, n)
				for x := 0; x < n; x++ {
					v, err := r.Eval(ctx, x)
					if err != nil {
						errs <- fmt.Errorf("reader %d: Eval(%d): %v", id, x, err)
						r.Close()
						return
					}
					got[x] = v
				}
				var want any
				for {
					var ok bool
					if want, ok = oracle.Load(r.Epoch()); ok {
						break
					}
					runtime.Gosched()
				}
				if !valuesEqual(got, want.([]Value)) {
					errs <- fmt.Errorf("reader %d at epoch %d: values %v, oracle %v", id, r.Epoch(), got, want)
					r.Close()
					return
				}
				// Session.Eval must never be busy either: it falls back to a
				// snapshot when the writer holds the session.
				if _, err := s.Eval(ctx, 0); err != nil {
					errs <- fmt.Errorf("reader %d: Session.Eval: %v", id, err)
					r.Close()
					return
				}
				r.Close()
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if got := s.RetainedUndoBytes(); got != 0 {
		t.Errorf("retained undo bytes %d after all readers done, want 0", got)
	}
}

// TestNestedSessionHasNoSnapshots pins down the one exception to the MVCC
// read contract: nested sessions cannot snapshot, so Snapshot fails and Eval
// keeps the fail-fast ErrSessionBusy behaviour under a concurrent writer.
func TestNestedSessionHasNoSnapshots(t *testing.T) {
	eng := testEngine(t)
	ctx := context.Background()
	q := NSum([]string{"x", "y"},
		NTimes(NBracket(NAtom("E", "x", "y")), NWeight("w", "x", "y")))
	p, err := eng.Prepare(ctx, "nested edge sum", WithNested(q))
	if err != nil {
		t.Fatalf("Prepare: %v", err)
	}
	s, err := p.Session()
	if err != nil {
		t.Fatalf("Session: %v", err)
	}
	defer s.Close()

	if _, err := s.Snapshot(); err == nil {
		t.Error("nested Snapshot succeeded, want error")
	}
	if got := s.Epoch(); got != 0 {
		t.Errorf("nested Epoch = %d, want 0", got)
	}
	if got := s.RetainedUndoBytes(); got != 0 {
		t.Errorf("nested RetainedUndoBytes = %d, want 0", got)
	}
	s.writerMu.Lock()
	if _, err := s.Eval(ctx); !errors.Is(err, ErrSessionBusy) {
		t.Errorf("nested busy Eval: %v, want ErrSessionBusy", err)
	}
	s.writerMu.Unlock()
}
