package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/agg"
	"repro/internal/obs"
	"repro/internal/server"
)

// Options configures a Router.
type Options struct {
	// Replicas lists the base URLs of the aggserve replicas to route across
	// (e.g. "http://10.0.0.1:8080").  The URL doubles as the replica's ring
	// identifier, so keep it stable across router restarts.
	Replicas []string
	// VNodes is the number of virtual nodes per replica on the hash ring
	// (≤ 0 selects the default of 128).
	VNodes int
	// HealthInterval is the period of the /healthz probe loop (≤ 0 selects
	// 1s); HealthTimeout bounds each probe (≤ 0 selects 2s).
	HealthInterval time.Duration
	HealthTimeout  time.Duration
	// FanoutTimeout bounds each per-replica request of a fleet-wide /stats
	// or /metrics fan-out (≤ 0 selects 2s).  A slow or dead replica costs at
	// most this long and is reported, never waited on indefinitely.
	FanoutTimeout time.Duration
	// MaxIdleConnsPerHost tunes the shared keep-alive proxy client (≤ 0
	// selects 32): each busy replica keeps a warm connection pool so the
	// proxy hop does not pay a TCP handshake per request.
	MaxIdleConnsPerHost int
	// Logger receives mark-down/mark-up transitions and proxy errors.  Nil
	// discards them.
	Logger *slog.Logger
}

// routerEndpoints names every proxied route with its own router-side latency
// histogram, in the order the fleet /metrics exposition emits them.
var routerEndpoints = []string{"query", "session", "point", "update", "batch", "enumerate", "subscribe", "ingest", "analyze"}

// replica is the router's view of one aggserve process: its ring identity,
// liveness, and the gauges the health probe reports.
type replica struct {
	id   string
	base *url.URL

	up            atomic.Bool
	proxied       atomic.Int64
	probes        atomic.Int64
	probeFailures atomic.Int64
	markDowns     atomic.Int64
	markUps       atomic.Int64
	sessions      atomic.Int64 // last readiness probe's session count
	cacheEntries  atomic.Int64 // last readiness probe's compiled-cache size
	lastErr       atomic.Value // string: last probe or proxy error
}

func (rep *replica) setErr(err error) {
	if err != nil {
		rep.lastErr.Store(err.Error())
	}
}

// markDown flips the replica to down, returning true on the transition.
func (rep *replica) markDown() bool { return rep.up.CompareAndSwap(true, false) }

// ReplicaState is a point-in-time snapshot of one replica's router-side
// state, exported on the fleet /stats and /metrics and used by tests.
type ReplicaState struct {
	ID            string `json:"id"`
	Up            bool   `json:"up"`
	Proxied       int64  `json:"proxied"`
	Probes        int64  `json:"probes"`
	ProbeFailures int64  `json:"probeFailures"`
	MarkDowns     int64  `json:"markDowns"`
	MarkUps       int64  `json:"markUps"`
	Sessions      int64  `json:"sessions"`
	CacheEntries  int64  `json:"cacheEntries"`
	LastError     string `json:"lastError,omitempty"`
}

// Router consistent-hashes aggserve requests across a replica fleet.  Create
// one with New, serve Handler(), and Close it to stop the health probes.
// All methods are safe for concurrent use.
type Router struct {
	opts     Options
	ring     *Ring
	replicas []*replica
	client   *http.Client
	log      *slog.Logger
	start    time.Time

	reroutes    atomic.Int64 // proxy attempts moved to another replica after a dial failure
	unavailable atomic.Int64 // requests answered 503: no live replica
	gateway     atomic.Int64 // requests answered 502: replica unreachable mid-exchange

	hist map[string]*obs.Histogram // router-side end-to-end latency per endpoint

	stop chan struct{}
	done sync.WaitGroup
}

// New builds a router over the given replicas and starts its health-probe
// loop.  Replicas start marked up — routing works before the first probe
// completes — and the first probe round fires immediately.
func New(opts Options) (*Router, error) {
	if len(opts.Replicas) == 0 {
		return nil, fmt.Errorf("fleet: router needs at least one replica URL")
	}
	if opts.HealthInterval <= 0 {
		opts.HealthInterval = time.Second
	}
	if opts.HealthTimeout <= 0 {
		opts.HealthTimeout = 2 * time.Second
	}
	if opts.FanoutTimeout <= 0 {
		opts.FanoutTimeout = 2 * time.Second
	}
	if opts.MaxIdleConnsPerHost <= 0 {
		opts.MaxIdleConnsPerHost = 32
	}
	log := opts.Logger
	if log == nil {
		log = slog.New(slog.DiscardHandler)
	}

	replicas := make([]*replica, len(opts.Replicas))
	ids := make([]string, len(opts.Replicas))
	for i, raw := range opts.Replicas {
		u, err := url.Parse(raw)
		if err != nil {
			return nil, fmt.Errorf("fleet: replica %q: %w", raw, err)
		}
		if u.Scheme == "" || u.Host == "" {
			return nil, fmt.Errorf("fleet: replica %q: need an absolute URL like http://host:port", raw)
		}
		id := strings.TrimSuffix(u.String(), "/")
		replicas[i] = &replica{id: id, base: u}
		replicas[i].up.Store(true)
		ids[i] = id
	}
	ring, err := NewRing(ids, opts.VNodes)
	if err != nil {
		return nil, err
	}

	rt := &Router{
		opts:     opts,
		ring:     ring,
		replicas: replicas,
		log:      log,
		start:    time.Now(),
		hist:     make(map[string]*obs.Histogram, len(routerEndpoints)),
		stop:     make(chan struct{}),
		client: &http.Client{
			// One shared keep-alive transport: every proxied request and
			// fan-out probe reuses warm connections to the replicas.
			Transport: &http.Transport{
				MaxIdleConns:        4 * opts.MaxIdleConnsPerHost,
				MaxIdleConnsPerHost: opts.MaxIdleConnsPerHost,
				IdleConnTimeout:     90 * time.Second,
			},
		},
	}
	for _, ep := range routerEndpoints {
		rt.hist[ep] = obs.NewHistogram()
	}

	rt.done.Add(1)
	go rt.healthLoop()
	return rt, nil
}

// Close stops the health-probe loop and drops the idle proxy connections.
// In-flight proxied requests are not interrupted.
func (rt *Router) Close() {
	close(rt.stop)
	rt.done.Wait()
	rt.client.CloseIdleConnections()
}

// Replicas reports the configured replica count.
func (rt *Router) Replicas() int { return len(rt.replicas) }

// ReplicaStates snapshots every replica's router-side state, in ring order.
func (rt *Router) ReplicaStates() []ReplicaState {
	out := make([]ReplicaState, len(rt.replicas))
	for i, rep := range rt.replicas {
		st := ReplicaState{
			ID:            rep.id,
			Up:            rep.up.Load(),
			Proxied:       rep.proxied.Load(),
			Probes:        rep.probes.Load(),
			ProbeFailures: rep.probeFailures.Load(),
			MarkDowns:     rep.markDowns.Load(),
			MarkUps:       rep.markUps.Load(),
			Sessions:      rep.sessions.Load(),
			CacheEntries:  rep.cacheEntries.Load(),
		}
		if e, ok := rep.lastErr.Load().(string); ok {
			st.LastError = e
		}
		out[i] = st
	}
	return out
}

// Live reports how many replicas are currently marked up.
func (rt *Router) Live() int {
	n := 0
	for _, rep := range rt.replicas {
		if rep.up.Load() {
			n++
		}
	}
	return n
}

// OwnerOf returns the index of the replica that owns the given shard key
// with the full fleet live (tests use it to find which replica to kill).
func (rt *Router) OwnerOf(key string) int { return rt.ring.Lookup(key) }

// QueryShardKey is the shard key of a /query-style request; exported so
// tests and benchmarks can predict placements.  It mirrors the replica's
// compiled-query cache key: database, canonical expression, semiring and
// the dynamic-relations option, with the replica-side defaults applied so
// equivalent requests agree.  An expression that fails to canonicalize
// hashes as raw text — the owning replica then reports the parse error with
// its usual taxonomy.
func QueryShardKey(db, expr, semiring string, dynamic []string) string {
	if db == "" {
		db = "default"
	}
	if semiring == "" {
		semiring = "natural"
	}
	canon, err := agg.Canonicalize(expr)
	if err != nil {
		canon = expr
	}
	dyn := append([]string(nil), dynamic...)
	sort.Strings(dyn)
	return strings.Join([]string{"q", db, canon, semiring, strings.Join(dyn, ",")}, "\x00")
}

// FormulaShardKey is the shard key of an /enumerate-style request: database,
// canonical formula and answer variables.
func FormulaShardKey(db, phi string, vars []string) string {
	if db == "" {
		db = "default"
	}
	canon, err := agg.CanonicalizeFormula(phi)
	if err != nil {
		canon = phi
	}
	return strings.Join([]string{"e", db, canon, strings.Join(vars, ",")}, "\x00")
}

// SessionShardKey is the shard key of a named session: every request naming
// the session — create, point, update, batch, delete — routes to the same
// replica, where its MVCC state lives.
func SessionShardKey(name string) string { return "s\x00" + name }

// ---------------------------------------------------------------------------
// HTTP surface
// ---------------------------------------------------------------------------

// Handler returns the router's HTTP handler.  It serves the same API as a
// single aggserve replica: /query, /session, /point, /update, /batch,
// /enumerate and /analyze proxy to the replica owning the request's shard
// key; /stats and /metrics fan out to every replica and merge; /healthz
// reports the router's own readiness.
func (rt *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /query", rt.timed("query", rt.routeQuery))
	mux.HandleFunc("POST /session", rt.timed("session", rt.routeSessionBody))
	mux.HandleFunc("DELETE /session", rt.timed("session", rt.routeSessionQuery))
	mux.HandleFunc("POST /point", rt.timed("point", rt.routePoint))
	mux.HandleFunc("POST /update", rt.timed("update", rt.routeSessionBody))
	mux.HandleFunc("POST /batch", rt.timed("batch", rt.routeSessionBody))
	mux.HandleFunc("GET /enumerate", rt.timed("enumerate", rt.routeEnumerate))
	mux.HandleFunc("GET /subscribe", rt.timed("subscribe", rt.routeSubscribe))
	mux.HandleFunc("POST /ingest", rt.timed("ingest", rt.routeIngest))
	mux.HandleFunc("GET /analyze", rt.timed("analyze", rt.routeAnalyze))
	mux.HandleFunc("GET /stats", rt.handleStats)
	mux.HandleFunc("GET /metrics", rt.handleMetrics)
	mux.HandleFunc("GET /healthz", rt.handleHealthz)
	return mux
}

// timed records the router-side end-to-end latency of one proxied endpoint.
func (rt *Router) timed(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	hist := rt.hist[endpoint]
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		h(w, r)
		hist.Observe(time.Since(start))
	}
}

// body reads and returns the full request body (requests are small JSON
// documents; the shard key lives inside, so the router must buffer before
// it can pick a replica).
func body(r *http.Request) ([]byte, error) {
	defer r.Body.Close()
	return io.ReadAll(r.Body)
}

func (rt *Router) routeQuery(w http.ResponseWriter, r *http.Request) {
	raw, err := body(r)
	if err != nil {
		rt.writeError(w, http.StatusBadRequest, "bad_request", fmt.Sprintf("reading request body: %v", err))
		return
	}
	var req struct {
		DB       string   `json:"db"`
		Expr     string   `json:"expr"`
		Semiring string   `json:"semiring"`
		Dynamic  []string `json:"dynamic"`
	}
	// A body that fails to decode still forwards (hashed raw): the owning
	// replica produces the canonical 400 with the taxonomy code.
	_ = json.Unmarshal(raw, &req)
	rt.forward(w, r, QueryShardKey(req.DB, req.Expr, req.Semiring, req.Dynamic), raw, true)
}

// routeSessionBody routes the endpoints whose JSON body names a session:
// /session (create, field "name"), /update and /batch (field "session").
func (rt *Router) routeSessionBody(w http.ResponseWriter, r *http.Request) {
	raw, err := body(r)
	if err != nil {
		rt.writeError(w, http.StatusBadRequest, "bad_request", fmt.Sprintf("reading request body: %v", err))
		return
	}
	var req struct {
		Name    string `json:"name"`
		Session string `json:"session"`
	}
	_ = json.Unmarshal(raw, &req)
	name := req.Session
	if name == "" {
		name = req.Name
	}
	rt.forward(w, r, SessionShardKey(name), raw, false)
}

// routeSessionQuery routes DELETE /session?name=... by its query parameter.
func (rt *Router) routeSessionQuery(w http.ResponseWriter, r *http.Request) {
	rt.forward(w, r, SessionShardKey(r.URL.Query().Get("name")), nil, false)
}

func (rt *Router) routePoint(w http.ResponseWriter, r *http.Request) {
	raw, err := body(r)
	if err != nil {
		rt.writeError(w, http.StatusBadRequest, "bad_request", fmt.Sprintf("reading request body: %v", err))
		return
	}
	var req struct {
		Session  string `json:"session"`
		DB       string `json:"db"`
		Expr     string `json:"expr"`
		Semiring string `json:"semiring"`
	}
	_ = json.Unmarshal(raw, &req)
	key := QueryShardKey(req.DB, req.Expr, req.Semiring, nil)
	if req.Session != "" {
		key = SessionShardKey(req.Session)
	}
	rt.forward(w, r, key, raw, true)
}

// routeSubscribe routes the live push stream by its session shard key, so
// subscribers land on the replica whose MVCC session produces the commits
// they watch.  The subscription is replayable (a pure read: reconnecting
// replays nothing the client cannot reconcile via Last-Event-ID), and the
// proxied response streams through flushCopy, so every pushed update and
// heartbeat reaches the client as the replica emits it.  The outgoing
// request carries the client's context: a subscriber hanging up cancels the
// replica-side subscription.
func (rt *Router) routeSubscribe(w http.ResponseWriter, r *http.Request) {
	rt.forward(w, r, SessionShardKey(r.URL.Query().Get("session")), nil, true)
}

// routeIngest proxies the streaming /ingest change feed to the session's
// owner.  The body is an unbounded NDJSON stream, so unlike every other
// routed endpoint it is never buffered and never retried: a transport
// failure surfaces as a 502, and the waves the replica already acked stay
// committed — the client resumes from its last epoch checkpoint.
func (rt *Router) routeIngest(w http.ResponseWriter, r *http.Request) {
	key := SessionShardKey(r.URL.Query().Get("session"))
	idx, ok := rt.ring.LookupLive(key, func(i int) bool { return rt.replicas[i].up.Load() })
	if !ok {
		rt.unavailable.Add(1)
		rt.writeError(w, http.StatusServiceUnavailable, "unavailable", "no live replica for this key")
		return
	}
	rep := rt.replicas[idx]

	// Acks stream back while the change feed is still being read, so the
	// router's own connection must be full-duplex too.
	_ = http.NewResponseController(w).EnableFullDuplex()

	target := *rep.base
	target.Path = strings.TrimSuffix(target.Path, "/") + r.URL.Path
	target.RawQuery = r.URL.RawQuery
	out, err := http.NewRequestWithContext(r.Context(), r.Method, target.String(), r.Body)
	if err != nil {
		rt.writeError(w, http.StatusInternalServerError, "internal", err.Error())
		return
	}
	copyHeaders(out.Header, r.Header)
	resp, err := rt.client.Do(out)
	if err != nil {
		if r.Context().Err() != nil {
			return // the client is gone; nothing to write
		}
		rep.setErr(err)
		if rep.markDown() {
			rep.markDowns.Add(1)
			rt.log.Warn("replica marked down (ingest proxy failed)", "replica", rep.id, "err", err)
		}
		rt.gateway.Add(1)
		rt.writeError(w, http.StatusBadGateway, "unreachable",
			fmt.Sprintf("replica %s: %v", rep.id, err))
		return
	}
	defer resp.Body.Close()
	rep.proxied.Add(1)
	copyHeaders(w.Header(), resp.Header)
	w.WriteHeader(resp.StatusCode)
	flushCopy(w, resp.Body)
}

func (rt *Router) routeEnumerate(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	rt.forward(w, r, FormulaShardKey(q.Get("db"), q.Get("phi"), splitList(q.Get("vars"))), nil, true)
}

// routeAnalyze mirrors the replica's /analyze preparation split: with vars
// it analyses the enumeration program (formula key), otherwise the query
// program — so the report lands on the replica already holding that
// compiled Program.
func (rt *Router) routeAnalyze(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	expr := q.Get("expr")
	if expr == "" {
		expr = q.Get("phi")
	}
	if vars := splitList(q.Get("vars")); len(vars) > 0 {
		rt.forward(w, r, FormulaShardKey(q.Get("db"), expr, vars), nil, true)
		return
	}
	rt.forward(w, r, QueryShardKey(q.Get("db"), expr, q.Get("semiring"), nil), nil, true)
}

func (rt *Router) handleHealthz(w http.ResponseWriter, r *http.Request) {
	live := rt.Live()
	h := struct {
		Status        string  `json:"status"`
		UptimeSeconds float64 `json:"uptimeSeconds"`
		Replicas      int     `json:"replicas"`
		Live          int     `json:"live"`
	}{"ok", time.Since(rt.start).Seconds(), len(rt.replicas), live}
	w.Header().Set("Content-Type", "application/json")
	switch {
	case live == 0:
		h.Status = "down"
		w.WriteHeader(http.StatusServiceUnavailable)
	case live < len(rt.replicas):
		h.Status = "degraded"
	}
	_ = json.NewEncoder(w).Encode(h)
}

// writeError emits a router-originated error in the replicas' JSON error
// shape, so clients see one taxonomy whether the hop or the replica failed.
func (rt *Router) writeError(w http.ResponseWriter, status int, code, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(struct {
		Error string `json:"error"`
		Code  string `json:"code"`
	}{msg, code})
}

// hopHeaders are never copied across the proxy hop (RFC 9110 §7.6.1).
var hopHeaders = []string{
	"Connection", "Keep-Alive", "Proxy-Authenticate", "Proxy-Authorization",
	"Te", "Trailer", "Transfer-Encoding", "Upgrade",
}

// forward proxies the request to the live replica owning key, streaming the
// response through (NDJSON enumeration lines flush as they arrive).  The
// outgoing request carries the client's context, so a disconnect cancels
// the replica-side evaluation; replica errors pass through verbatim —
// status code and JSON body with its taxonomy code survive the hop.
//
// Fail-over policy: a dial-level failure (nothing reached the replica, so
// any method is safe to retry) marks the replica down and reroutes to the
// next live owner.  When replayable is true the request is a pure read
// (/query, /point, /enumerate, /analyze — MVCC snapshots and cached
// Programs, no replica state changes), so any transport failure reroutes
// the same way — this covers the killed-replica case where a pooled
// keep-alive connection dies with EOF instead of a dial error.  Mutating
// requests (/session, /update, /batch) never retry past a connection the
// replica may have read from: the exchange failure surfaces as a 502.
func (rt *Router) forward(w http.ResponseWriter, r *http.Request, key string, reqBody []byte, replayable bool) {
	tried := make(map[int]bool)
	for {
		idx, ok := rt.ring.LookupLive(key, func(i int) bool {
			return !tried[i] && rt.replicas[i].up.Load()
		})
		if !ok {
			rt.unavailable.Add(1)
			rt.writeError(w, http.StatusServiceUnavailable, "unavailable", "no live replica for this key")
			return
		}
		rep := rt.replicas[idx]

		target := *rep.base
		target.Path = strings.TrimSuffix(target.Path, "/") + r.URL.Path
		target.RawQuery = r.URL.RawQuery
		var bodyReader io.Reader
		if len(reqBody) > 0 {
			bodyReader = bytes.NewReader(reqBody)
		}
		out, err := http.NewRequestWithContext(r.Context(), r.Method, target.String(), bodyReader)
		if err != nil {
			rt.writeError(w, http.StatusInternalServerError, "internal", err.Error())
			return
		}
		copyHeaders(out.Header, r.Header)

		resp, err := rt.client.Do(out)
		if err != nil {
			if r.Context().Err() != nil {
				return // the client is gone; nothing to write
			}
			rep.setErr(err)
			var opErr *net.OpError
			dialFailed := errors.As(err, &opErr) && opErr.Op == "dial"
			if dialFailed || replayable {
				// Safe to reroute: either the connection never opened
				// (nothing reached the replica, so even an update cannot
				// double-apply) or the request is a pure read.  Mark the
				// replica down now instead of waiting for the next probe.
				if rep.markDown() {
					rep.markDowns.Add(1)
					rt.log.Warn("replica marked down (proxy failed)", "replica", rep.id, "err", err)
				}
				tried[idx] = true
				rt.reroutes.Add(1)
				continue
			}
			// A mutating exchange died mid-flight; the replica may have
			// acted, so surface the failure instead of silently retrying.
			rt.gateway.Add(1)
			rt.writeError(w, http.StatusBadGateway, "unreachable",
				fmt.Sprintf("replica %s: %v", rep.id, err))
			return
		}
		defer resp.Body.Close()
		rep.proxied.Add(1)

		copyHeaders(w.Header(), resp.Header)
		w.WriteHeader(resp.StatusCode)
		flushCopy(w, resp.Body)
		return
	}
}

func copyHeaders(dst, src http.Header) {
	for _, h := range hopHeaders {
		src.Del(h)
	}
	for k, vs := range src {
		for _, v := range vs {
			dst.Add(k, v)
		}
	}
}

// flushCopy streams src to w, flushing after every chunk so NDJSON lines
// reach the client as the replica emits them instead of pooling in the
// router's buffers.
func flushCopy(w http.ResponseWriter, src io.Reader) {
	flusher, _ := w.(http.Flusher)
	buf := make([]byte, 32*1024)
	for {
		n, err := src.Read(buf)
		if n > 0 {
			if _, werr := w.Write(buf[:n]); werr != nil {
				return // client went away mid-stream
			}
			if flusher != nil {
				flusher.Flush()
			}
		}
		if err != nil {
			return
		}
	}
}

// ---------------------------------------------------------------------------
// Health probes
// ---------------------------------------------------------------------------

// healthLoop probes every replica each HealthInterval.  A probe hits the
// replica's readiness endpoint (GET /healthz), requiring both a 200 and
// status "ok" in the body — a replica that is listening but not serving is
// down for routing purposes.  Probes also refresh the per-replica session
// and cache-entry gauges the fleet /metrics exports.
func (rt *Router) healthLoop() {
	defer rt.done.Done()
	rt.probeAll() // immediate first round: recover marked-down replicas fast
	ticker := time.NewTicker(rt.opts.HealthInterval)
	defer ticker.Stop()
	for {
		select {
		case <-rt.stop:
			return
		case <-ticker.C:
			rt.probeAll()
		}
	}
}

func (rt *Router) probeAll() {
	var wg sync.WaitGroup
	for _, rep := range rt.replicas {
		wg.Add(1)
		go func(rep *replica) {
			defer wg.Done()
			rt.probe(rep)
		}(rep)
	}
	wg.Wait()
}

func (rt *Router) probe(rep *replica) {
	rep.probes.Add(1)
	ctx, cancel := context.WithTimeout(context.Background(), rt.opts.HealthTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, rep.id+"/healthz", nil)
	if err != nil {
		rt.probeFailed(rep, err)
		return
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		rt.probeFailed(rep, err)
		return
	}
	defer resp.Body.Close()
	var h server.Health
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		rt.probeFailed(rep, fmt.Errorf("decoding /healthz: %w", err))
		return
	}
	if resp.StatusCode != http.StatusOK || h.Status != "ok" {
		rt.probeFailed(rep, fmt.Errorf("/healthz status %d (%q)", resp.StatusCode, h.Status))
		return
	}
	rep.sessions.Store(int64(h.Sessions))
	rep.cacheEntries.Store(int64(h.CacheEntries))
	if rep.up.CompareAndSwap(false, true) {
		rep.markUps.Add(1)
		rt.log.Info("replica marked up", "replica", rep.id)
	}
}

func (rt *Router) probeFailed(rep *replica, err error) {
	rep.probeFailures.Add(1)
	rep.setErr(err)
	if rep.markDown() {
		rep.markDowns.Add(1)
		rt.log.Warn("replica marked down (probe failed)", "replica", rep.id, "err", err)
	}
}

// splitList mirrors the replica's comma-list query-parameter parsing.
func splitList(s string) []string {
	var out []string
	for _, v := range strings.Split(s, ",") {
		if v = strings.TrimSpace(v); v != "" {
			out = append(out, v)
		}
	}
	return out
}
