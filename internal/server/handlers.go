package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/agg"
	"repro/internal/obs"
)

// Handler returns the HTTP handler serving the aggserve API:
//
//	POST /query      evaluate a closed expression in a named semiring
//	POST /session    create a named dynamic-update session
//	POST /point      point query at a tuple of free variables
//	POST /update     apply weight/tuple updates to a session one at a time
//	POST /batch      apply a batch atomically with one propagation wave
//	GET  /enumerate  stream query answers as NDJSON with constant delay
//	GET  /subscribe  live push stream of re-evaluated results (SSE / NDJSON)
//	POST /ingest     stream NDJSON changes, applied as coalesced batch waves
//	GET  /stats      serving counters
//	GET  /metrics    Prometheus text exposition (counters, latency histograms)
//	GET  /metrics.json  raw mergeable metrics snapshot (fleet router scrape)
//	GET  /healthz    readiness probe (status, uptime, sessions, cache entries)
//
// Request contexts are honoured: a disconnected client cancels the
// evaluation or enumeration stream it was waiting for (counted in the
// "canceled" stat).  Errors carry a machine-readable "code" field drawn
// from the repro/agg error taxonomy.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /query", s.wrap("query", s.handleQuery))
	mux.HandleFunc("POST /session", s.wrap("session", s.handleSession))
	mux.HandleFunc("DELETE /session", s.wrap("session", s.handleDeleteSession))
	mux.HandleFunc("POST /point", s.wrap("point", s.handlePoint))
	mux.HandleFunc("POST /update", s.wrap("update", s.handleUpdate))
	mux.HandleFunc("POST /batch", s.wrap("batch", s.handleBatch))
	mux.HandleFunc("GET /enumerate", s.wrap("enumerate", s.handleEnumerate))
	mux.HandleFunc("GET /subscribe", s.wrap("subscribe", s.handleSubscribe))
	mux.HandleFunc("POST /ingest", s.wrap("ingest", s.handleIngest))
	mux.HandleFunc("GET /analyze", s.wrap("analyze", s.handleAnalyze))
	mux.HandleFunc("GET /stats", s.wrap("stats", s.handleStats))
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /metrics.json", s.handleMetricsJSON)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	return mux
}

// reqMeta accumulates the structured-log annotations of one request; handlers
// append through annotate and wrap flushes them into the access log.  One
// request is served by one goroutine, so no locking.
type reqMeta struct {
	attrs []slog.Attr
}

type metaKey struct{}

// annotate attaches attributes to the request's access-log line (a no-op for
// requests outside wrap, e.g. in direct handler tests).
func annotate(r *http.Request, attrs ...slog.Attr) {
	if m, ok := r.Context().Value(metaKey{}).(*reqMeta); ok {
		m.attrs = append(m.attrs, attrs...)
	}
}

// statusWriter captures the response status for logging and latency
// labelling.  It forwards Flush so NDJSON streaming through the wrapper
// keeps its per-line flushes.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Unwrap lets http.NewResponseController reach the underlying writer, so
// /ingest can enable full-duplex streaming through the wrapper.
func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// wrap is the per-request observability shell: it tracks in-flight requests,
// threads the server's stage tracer through the request context (so facade
// spans — parse, compile, eval, waves — record), captures the status code,
// feeds the endpoint's latency histogram, and emits the access log (Debug)
// or the slow-query log (Warn, above Options.SlowQuery).
func (s *Server) wrap(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	hist := s.reqHist[endpoint]
	return func(w http.ResponseWriter, r *http.Request) {
		s.stats.InFlight.Add(1)
		defer s.stats.InFlight.Add(-1)
		id := s.reqID.Add(1)
		m := &reqMeta{}
		ctx := context.WithValue(obs.NewContext(r.Context(), s.tr), metaKey{}, m)
		r = r.WithContext(ctx)
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		h(sw, r)
		d := time.Since(start)
		hist.Observe(d)

		slow := s.opts.SlowQuery > 0 && d >= s.opts.SlowQuery
		level, msg := slog.LevelDebug, "request"
		if slow {
			level, msg = slog.LevelWarn, "slow request"
		}
		if !s.log.Enabled(ctx, level) {
			return
		}
		attrs := make([]slog.Attr, 0, 5+len(m.attrs))
		attrs = append(attrs,
			slog.Int64("req", id),
			slog.String("endpoint", endpoint),
			slog.String("method", r.Method),
			slog.Int("status", sw.status),
			slog.Duration("duration", d),
		)
		attrs = append(attrs, m.attrs...)
		s.log.LogAttrs(ctx, level, msg, attrs...)
	}
}

func (s *Server) writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

// errorBody is the JSON shape of every error response: a human-readable
// message plus a stable machine-readable code from the agg taxonomy.
type errorBody struct {
	Error string `json:"error"`
	Code  string `json:"code"`
}

// statusOf maps the typed error taxonomy to HTTP status codes — no string
// matching involved.
func statusOf(err error) int {
	switch {
	case errors.Is(err, agg.ErrUnknownDatabase), errors.Is(err, agg.ErrUnknownSession):
		return http.StatusNotFound
	case errors.Is(err, agg.ErrSessionExists), errors.Is(err, agg.ErrSessionBusy):
		return http.StatusConflict
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		// 499 Client Closed Request (nginx convention): the response will
		// not be read, but logs and stats stay truthful.
		return 499
	default:
		return http.StatusBadRequest
	}
}

func (s *Server) writeError(w http.ResponseWriter, err error) {
	s.stats.Errors.Add(1)
	if errors.Is(err, agg.ErrSessionBusy) {
		// Fail-fast contention is its own signal, not a generic error: the
		// busy counter makes 409 churn visible on /stats and /metrics.
		s.stats.Busy.Add(1)
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(statusOf(err))
	_ = json.NewEncoder(w).Encode(errorBody{Error: err.Error(), Code: agg.ErrorCode(err)})
}

// canceled records and reports a request abandoned by its client.
func (s *Server) canceled(err error) bool {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		s.stats.Canceled.Add(1)
		return true
	}
	return false
}

func decode(r *http.Request, v any) error {
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		return fmt.Errorf("decoding request body: %w: %v", agg.ErrArgument, err)
	}
	return nil
}

// ---------------------------------------------------------------------------
// POST /query
// ---------------------------------------------------------------------------

type queryRequest struct {
	DB       string `json:"db"`
	Expr     string `json:"expr"`
	Semiring string `json:"semiring"`
	// Workers overrides the server's evaluation worker pool for this request
	// (0 keeps the server default).
	Workers int `json:"workers"`
	// Dynamic lists relations compiled as dynamic inputs; it participates in
	// the cache key.
	Dynamic []string `json:"dynamic"`
}

type circuitInfo struct {
	Gates int `json:"gates"`
	Edges int `json:"edges"`
	Depth int `json:"depth"`
}

type queryResponse struct {
	Semiring   string      `json:"semiring"`
	Value      string      `json:"value"`
	Cached     bool        `json:"cached"`
	EvalMillis float64     `json:"evalMillis"`
	Circuit    circuitInfo `json:"circuit"`
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req queryRequest
	if err := decode(r, &req); err != nil {
		s.writeError(w, err)
		return
	}
	p, hit, err := s.compiled(req.DB, req.Expr, req.Semiring, req.Dynamic)
	if err != nil {
		s.writeError(w, err)
		return
	}
	if free := p.FreeVars(); len(free) > 0 {
		s.writeError(w, fmt.Errorf("expression has free variables %v; use /point for point queries: %w", free, agg.ErrArgument))
		return
	}
	var value agg.Value
	d := timed(&s.stats.EvalNanos, func() {
		value, err = p.Workers(s.workers(req.Workers)).Eval(r.Context())
	})
	if err != nil {
		if s.canceled(err) {
			return // the client is gone; nothing to write
		}
		s.writeError(w, err)
		return
	}
	s.stats.Queries.Add(1)
	annotate(r,
		slog.String("semiring", p.SemiringName()),
		slog.Bool("cached", hit),
		slog.Duration("eval", d))
	st := p.Stats()
	s.writeJSON(w, queryResponse{
		Semiring:   p.SemiringName(),
		Value:      value.String(),
		Cached:     hit,
		EvalMillis: float64(d.Nanoseconds()) / 1e6,
		Circuit:    circuitInfo{Gates: st.Gates, Edges: st.Edges, Depth: st.Depth},
	})
}

// ---------------------------------------------------------------------------
// POST /session
// ---------------------------------------------------------------------------

type sessionRequest struct {
	Name     string   `json:"name"`
	DB       string   `json:"db"`
	Expr     string   `json:"expr"`
	Semiring string   `json:"semiring"`
	Dynamic  []string `json:"dynamic"`
}

type sessionResponse struct {
	Session  string   `json:"session"`
	FreeVars []string `json:"freeVars"`
	Cached   bool     `json:"cached"`
}

func (s *Server) handleSession(w http.ResponseWriter, r *http.Request) {
	var req sessionRequest
	if err := decode(r, &req); err != nil {
		s.writeError(w, err)
		return
	}
	h, hit, err := s.CreateSession(req.Name, req.DB, req.Expr, req.Semiring, req.Dynamic)
	if err != nil {
		s.writeError(w, err)
		return
	}
	annotate(r,
		slog.String("session", h.Name()),
		slog.String("semiring", h.Semiring()),
		slog.Bool("cached", hit))
	s.writeJSON(w, sessionResponse{Session: h.Name(), FreeVars: h.FreeVars(), Cached: hit})
}

// handleDeleteSession serves DELETE /session?name=...; without it, a
// long-lived daemon whose clients create sessions per task would accumulate
// evaluator state without bound (compiled queries live in the bounded LRU,
// sessions do not).
func (s *Server) handleDeleteSession(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("name")
	if name == "" {
		s.writeError(w, fmt.Errorf("missing session name: %w", agg.ErrArgument))
		return
	}
	if err := s.DeleteSession(name); err != nil {
		s.writeError(w, err)
		return
	}
	s.writeJSON(w, map[string]string{"deleted": name})
}

// ---------------------------------------------------------------------------
// POST /point
// ---------------------------------------------------------------------------

type pointRequest struct {
	// Session targets a named session; alternatively db/expr/semiring use
	// the compiled query's implicit session.
	Session  string `json:"session"`
	DB       string `json:"db"`
	Expr     string `json:"expr"`
	Semiring string `json:"semiring"`
	Args     []int  `json:"args"`
}

type pointResponse struct {
	Value string `json:"value"`
}

func (s *Server) handlePoint(w http.ResponseWriter, r *http.Request) {
	var req pointRequest
	if err := decode(r, &req); err != nil {
		s.writeError(w, err)
		return
	}
	var value agg.Value
	if req.Session != "" {
		annotate(r, slog.String("session", req.Session))
		h, err := s.Session(req.Session)
		if err != nil {
			s.writeError(w, err)
			return
		}
		value, err = h.Eval(r.Context(), req.Args...)
		if err != nil {
			if s.canceled(err) {
				return
			}
			s.writeError(w, err)
			return
		}
	} else {
		p, _, err := s.compiled(req.DB, req.Expr, req.Semiring, nil)
		if err != nil {
			s.writeError(w, err)
			return
		}
		value, err = p.Eval(r.Context(), req.Args...)
		if err != nil {
			if s.canceled(err) {
				return
			}
			s.writeError(w, err)
			return
		}
	}
	s.stats.Points.Add(1)
	s.writeJSON(w, pointResponse{Value: value.String()})
}

// ---------------------------------------------------------------------------
// POST /update
// ---------------------------------------------------------------------------

// updateSpec is one update of a batch.  A weight update sets Weight/Tuple/
// Value; a tuple update sets Rel/Tuple and optionally Present (default
// true, i.e. insert).
type updateSpec struct {
	Weight  string `json:"weight"`
	Rel     string `json:"rel"`
	Tuple   []int  `json:"tuple"`
	Value   int64  `json:"value"`
	Present *bool  `json:"present"`
}

func (u updateSpec) change() agg.Change {
	return agg.Change{
		Weight:  u.Weight,
		Rel:     u.Rel,
		Tuple:   u.Tuple,
		Value:   u.Value,
		Present: u.Present == nil || *u.Present,
	}
}

type updateRequest struct {
	Session string       `json:"session"`
	Updates []updateSpec `json:"updates"`
}

type updateResponse struct {
	Applied int `json:"applied"`
}

func (s *Server) handleUpdate(w http.ResponseWriter, r *http.Request) {
	var req updateRequest
	if err := decode(r, &req); err != nil {
		s.writeError(w, err)
		return
	}
	h, err := s.Session(req.Session)
	if err != nil {
		s.writeError(w, err)
		return
	}
	changes := make([]agg.Change, len(req.Updates))
	for i, u := range req.Updates {
		changes[i] = u.change()
	}
	applied, err := h.SetAll(changes)
	s.stats.Updates.Add(int64(applied))
	s.stats.UpdateBatches.Add(1)
	if err != nil {
		s.writeError(w, err)
		return
	}
	s.writeJSON(w, updateResponse{Applied: applied})
}

// ---------------------------------------------------------------------------
// POST /batch
// ---------------------------------------------------------------------------

type batchResponse struct {
	Applied int `json:"applied"`
}

// handleBatch applies a batch of updates atomically: every update is
// validated before anything is applied (all-or-nothing, unlike /update's
// stop-at-first-error semantics) and the session's evaluator then runs a
// single propagation wave for the whole batch, so updates sharing circuit
// gates — or repeatedly hitting the same hot keys — cost far less than the
// equivalent sequence of individual updates.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req updateRequest
	if err := decode(r, &req); err != nil {
		s.writeError(w, err)
		return
	}
	changes := make([]agg.Change, len(req.Updates))
	for i, u := range req.Updates {
		changes[i] = u.change()
	}
	h, err := s.Session(req.Session)
	if err != nil {
		s.writeError(w, err)
		return
	}
	if err := h.ApplyBatch(changes); err != nil {
		s.writeError(w, err)
		return
	}
	s.stats.Batches.Add(1)
	s.stats.BatchedUpdates.Add(int64(len(changes)))
	s.writeJSON(w, batchResponse{Applied: len(changes)})
}

// ---------------------------------------------------------------------------
// GET /enumerate
// ---------------------------------------------------------------------------

// enumerateLine is one NDJSON line of the /enumerate stream: every answer
// tuple on its own line, then a final summary line with Done set.
type enumerateLine struct {
	Answer   []int `json:"answer,omitempty"`
	Done     bool  `json:"done,omitempty"`
	Streamed int   `json:"streamed,omitempty"`
	Total    int64 `json:"total,omitempty"`
	Cached   bool  `json:"cached,omitempty"`
}

func (s *Server) handleEnumerate(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	vars := splitList(q.Get("vars"))
	limit := 100
	if raw := q.Get("limit"); raw != "" {
		n, err := strconv.Atoi(raw)
		if err != nil {
			s.writeError(w, fmt.Errorf("invalid limit %q: %w", raw, agg.ErrArgument))
			return
		}
		limit = n
	}
	p, hit, err := s.compiledEnumerator(q.Get("db"), q.Get("phi"), vars)
	if err != nil {
		s.writeError(w, err)
		return
	}
	total, err := p.AnswerCount(r.Context())
	if err != nil {
		if s.canceled(err) {
			return
		}
		s.writeError(w, err)
		return
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	flusher, _ := w.(http.Flusher)

	// The cached Prepared never receives updates, so concurrent requests
	// each drive an independent cursor; the stream follows r.Context(), so a
	// client that disconnects aborts the enumeration instead of burning the
	// rest of the wave into a dead socket.
	streamed := 0
	for ans, err := range p.Enumerate(r.Context()) {
		if err != nil {
			s.canceled(err)
			return // disconnected (or failed) mid-stream: no summary line
		}
		if limit > 0 && streamed >= limit {
			break
		}
		if err := enc.Encode(enumerateLine{Answer: ans}); err != nil {
			s.stats.Canceled.Add(1)
			return // client went away
		}
		streamed++
		if flusher != nil {
			flusher.Flush()
		}
	}
	_ = enc.Encode(enumerateLine{Done: true, Streamed: streamed, Total: total, Cached: hit})
	s.stats.Enumerations.Add(1)
	annotate(r, slog.Int("streamed", streamed), slog.Bool("cached", hit))
}

// ---------------------------------------------------------------------------
// GET /analyze
// ---------------------------------------------------------------------------

type analyzeResponse struct {
	*agg.Analysis
	Cached bool `json:"cached"`
}

// handleAnalyze serves the knowledge-compilation report of a compiled query:
// GET /analyze?db=D&expr=Q[&semiring=S][&vars=x,y].  Without vars the query
// is prepared like /query (expression or formula, optional semiring); with
// vars it is prepared like /enumerate (formula mode with fixed answer
// variables), so the report covers the exact program those endpoints serve.
// Compilations go through the same cache, so analysing a hot query is free.
func (s *Server) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	expr := q.Get("expr")
	if expr == "" {
		expr = q.Get("phi")
	}
	var (
		p   *agg.Prepared
		hit bool
		err error
	)
	if vars := splitList(q.Get("vars")); len(vars) > 0 {
		p, hit, err = s.compiledEnumerator(q.Get("db"), expr, vars)
	} else {
		p, hit, err = s.compiled(q.Get("db"), expr, q.Get("semiring"), nil)
	}
	if err != nil {
		s.writeError(w, err)
		return
	}
	report, err := agg.Analyze(p)
	if err != nil {
		s.writeError(w, err)
		return
	}
	s.stats.Analyzes.Add(1)
	s.writeJSON(w, analyzeResponse{Analysis: report, Cached: hit})
}

// ---------------------------------------------------------------------------
// GET /stats
// ---------------------------------------------------------------------------

// buildInfo is memoised: debug.ReadBuildInfo re-parses the embedded module
// data on every call.
var buildInfoOnce = sync.OnceValues(BuildInfo)

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, s.StatsSnapshot())
}

// StatsSnapshot assembles the full /stats view: the atomic counters plus the
// cache, session, database and build gauges.  The fleet router consumes it
// directly when merging per-replica stats.
func (s *Server) StatsSnapshot() StatsSnapshot {
	snap := s.stats.snapshot()
	snap.CachedQueries = s.cache.len()
	snap.CacheEntryBytes, snap.CacheBytes = s.cache.entryBytes()
	if gauges := s.sessionGauges(); len(gauges) > 0 {
		snap.SessionEpochs = make(map[string]uint64, len(gauges))
		for _, g := range gauges {
			snap.SessionEpochs[g.name] = g.epoch
			snap.SessionRetainedUndoBytes += g.retained
		}
	}
	s.mu.RLock()
	snap.Databases = len(s.dbs)
	s.mu.RUnlock()
	snap.UptimeSeconds = time.Since(s.start).Seconds()
	snap.StartTime = s.start.UTC().Format(time.RFC3339)
	snap.GoVersion, snap.Revision = buildInfoOnce()
	return snap
}

// ---------------------------------------------------------------------------
// GET /healthz
// ---------------------------------------------------------------------------

// Health is the JSON shape of the GET /healthz readiness probe.  Beyond the
// bare "listening" signal of a 200, it reports enough serving state for a
// router or external load balancer to distinguish a freshly started empty
// replica from one actively holding sessions and compiled queries.
type Health struct {
	Status        string  `json:"status"`
	UptimeSeconds float64 `json:"uptimeSeconds"`
	Sessions      int     `json:"sessions"`
	CacheEntries  int     `json:"cacheEntries"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	sessions := len(s.sessions)
	s.mu.RUnlock()
	s.writeJSON(w, Health{
		Status:        "ok",
		UptimeSeconds: time.Since(s.start).Seconds(),
		Sessions:      sessions,
		CacheEntries:  s.cache.len(),
	})
}

func splitList(s string) []string {
	var out []string
	for _, v := range strings.Split(s, ",") {
		if v = strings.TrimSpace(v); v != "" {
			out = append(out, v)
		}
	}
	return out
}
