// Knowledge-compilation view of the compiled circuits: the circuits of
// Theorem 6 are decomposable (products combine disjoint inputs) and — for
// the enumeration construction of Theorem 24 — deterministic (no answer is
// produced twice), which is why counting and constant-delay enumeration
// work.  This example prepares a query through the public facade, fetches
// its knowledge-compilation report with agg.Analyze (the same report
// aggserve serves at GET /analyze), and prints a Graphviz rendering of a
// small circuit.
//
//	go run ./examples/knowledge
package main

import (
	"context"
	"fmt"

	"repro/agg"
)

func main() {
	ctx := context.Background()
	db, err := agg.Generate("bounded-degree", 250, 21)
	if err != nil {
		panic(err)
	}
	eng := agg.Open(db)
	fmt.Printf("database: %d vertices, %d tuples\n", db.Elements(), db.TupleCount())

	// One answer per directed path of length two.
	p, err := eng.Prepare(ctx, "E(x,y) & E(y,z) & !(x = z)",
		agg.WithAnswerVars("x", "y", "z"))
	if err != nil {
		panic(err)
	}
	report, err := agg.Analyze(p)
	if err != nil {
		panic(err)
	}
	fmt.Printf("circuit: %d gates over %d weight inputs\n", report.Gates, report.Variables)

	if report.Decomposable {
		fmt.Println("decomposable: yes (products combine disjoint inputs)")
	} else {
		fmt.Printf("decomposable: NO — %s\n", report.DecomposabilityViolations[0])
	}
	switch {
	case !report.DeterminismChecked:
		fmt.Println("deterministic: unchecked (circuit too large)")
	case report.Deterministic:
		fmt.Println("deterministic: yes (no answer is produced twice)")
	default:
		fmt.Printf("deterministic: NO — %s\n", report.DeterminismViolations[0])
	}

	f := report.Factorization
	fmt.Printf("answers (model count):     %s\n", report.ModelCount)
	fmt.Printf("flat table cells:          %s\n", f.FlatCells)
	fmt.Printf("circuit size (gates+edges): %d\n", f.CircuitSize)
	fmt.Printf("compression ratio:          %.1f×\n", f.CompressionRatio)

	// Render a small circuit so the DOT output stays readable.
	tiny, err := agg.Generate("bounded-degree", 12, 3)
	if err != nil {
		panic(err)
	}
	tp, err := agg.Open(tiny).Prepare(ctx, "sum x, y . [E(x,y)] * u(x) * u(y)")
	if err != nil {
		panic(err)
	}
	dot, err := agg.DOT(tp)
	if err != nil {
		panic(err)
	}
	fmt.Printf("\nGraphviz rendering of a small edge-query circuit (%d gates):\n", tp.Stats().Gates)
	if len(dot) > 1200 {
		fmt.Println(dot[:1200] + "  ... (truncated)")
	} else {
		fmt.Println(dot)
	}
}
