// Package baseline provides the naive comparison algorithms used by the
// benchmark harness: direct nested-loop evaluation of weighted queries,
// brute-force first-order model checking, and materialised answer
// enumeration.  These are the "flat" evaluation strategies that the paper's
// factorized circuit representation is measured against.
package baseline

import (
	"repro/internal/expr"
	"repro/internal/logic"
	"repro/internal/semiring"
	"repro/internal/structure"
)

// EvalExpression evaluates a weighted expression by direct recursion over
// the domain (data complexity N^aggregation-depth).  It simply re-exports
// the reference evaluator so that benchmarks read naturally.
func EvalExpression[T any](s semiring.Semiring[T], a *structure.Structure, w *structure.Weights[T], e expr.Expr) T {
	return expr.Eval(s, a, w, e, map[string]structure.Element{})
}

// MaterializeAnswers computes all answers of a first-order query by brute
// force.
func MaterializeAnswers(f logic.Formula, a *structure.Structure, vars []string) []structure.Tuple {
	return logic.Answers(f, a, vars)
}

// TriangleCountEdgeIterate counts weighted directed triangles with the
// classical hand-written nested-loop-over-edges algorithm (iterate over
// edges (x,y), then over out-neighbours z of y, and test the closing edge).
// It is a stronger baseline than the generic evaluator and is the natural
// comparison point for experiment E2.
func TriangleCountEdgeIterate[T any](s semiring.Semiring[T], a *structure.Structure, w *structure.Weights[T]) T {
	// Index out-neighbours.
	out := make([][]structure.Element, a.N)
	for _, t := range a.Tuples("E") {
		out[t[0]] = append(out[t[0]], t[1])
	}
	total := s.Zero()
	for _, t := range a.Tuples("E") {
		x, y := t[0], t[1]
		wxy, okxy := w.Get("w", structure.Tuple{x, y})
		if !okxy {
			continue
		}
		for _, z := range out[y] {
			if !a.HasTuple("E", z, x) {
				continue
			}
			wyz, ok1 := w.Get("w", structure.Tuple{y, z})
			wzx, ok2 := w.Get("w", structure.Tuple{z, x})
			if !ok1 || !ok2 {
				continue
			}
			total = s.Add(total, s.Mul(wxy, s.Mul(wyz, wzx)))
		}
	}
	return total
}

// AverageNeighborWeightMax is the naive implementation of the introduction's
// nested query: the maximum over all vertices of the integer-average weight
// of the out-neighbours.
func AverageNeighborWeightMax(a *structure.Structure, vertexWeight []int64) int64 {
	best := int64(0)
	sums := make([]int64, a.N)
	degs := make([]int64, a.N)
	for _, t := range a.Tuples("E") {
		sums[t[0]] += vertexWeight[t[1]]
		degs[t[0]]++
	}
	for v := 0; v < a.N; v++ {
		if degs[v] == 0 {
			continue
		}
		if avg := sums[v] / degs[v]; avg > best {
			best = avg
		}
	}
	return best
}
