package bench

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"repro/agg"
	"repro/internal/obs"
	"repro/internal/workload"
)

// e17Measurements holds one run of the E17 instrumentation-overhead
// comparison: the same query evaluated and updated with and without a tracer
// attached, plus the steady-state allocation rate of the uninstrumented
// engine update path.
type e17Measurements struct {
	n            int
	updates      int
	evalPlain    time.Duration
	evalTraced   time.Duration
	updPlain     time.Duration
	updTraced    time.Duration
	allocsPerUpd float64
}

// bestOfPair interleaves best-of-reps timings of two functions so that
// clock-frequency ramps and co-tenant drift hit both sides equally — the
// comparison is what matters here, not the absolute numbers.
func bestOfPair(reps int, f, g func()) (df, dg time.Duration) {
	for i := 0; i < reps; i++ {
		if d := timeIt(f); i == 0 || d < df {
			df = d
		}
		if d := timeIt(g); i == 0 || d < dg {
			dg = d
		}
	}
	return df, dg
}

// e17Measure runs the comparison at one size.  Both sides share one engine
// and workload; only the presence of an obs.Tracer differs.  Per-side
// timings are interleaved best-of-reps, the stable statistic for
// sub-millisecond work (same convention as E14/E15, with interleaving
// because here the two sides are compared against a tight margin).
func e17Measure(n, updates, reps int) e17Measurements {
	const exprText = "sum x, y, z . [E(x,y) & E(y,z) & !(x = z)] * u(x) * u(z)"
	db := workload.BoundedDegree(n, 3, 7)
	plainCtx := context.Background()
	tracedCtx := obs.NewContext(context.Background(), obs.NewTracer())

	eng := agg.Open(agg.FromStructure(db.A, db.Weights()))
	pPlain, err := eng.Prepare(plainCtx, exprText)
	if err != nil {
		panic(fmt.Sprintf("E17: prepare (plain): %v", err))
	}
	// Prepared under a tracer context: sessions drawn from it report every
	// propagation wave into the tracer's histograms, which is exactly the
	// instrumented update path aggserve runs.
	pTraced, err := eng.Prepare(tracedCtx, exprText)
	if err != nil {
		panic(fmt.Sprintf("E17: prepare (traced): %v", err))
	}

	// Eval overhead: one Prepared, two contexts, so the only difference is
	// the span bracketing the evaluation.
	var plainVal, tracedVal agg.Value
	evalPlain, evalTraced := bestOfPair(reps,
		func() {
			var err error
			plainVal, err = pPlain.Eval(plainCtx)
			if err != nil {
				panic(fmt.Sprintf("E17: eval (plain): %v", err))
			}
		},
		func() {
			var err error
			tracedVal, err = pPlain.Eval(tracedCtx)
			if err != nil {
				panic(fmt.Sprintf("E17: eval (traced): %v", err))
			}
		})
	if plainVal != tracedVal {
		panic(fmt.Sprintf("E17: traced eval %s != plain eval %s", tracedVal, plainVal))
	}

	// Update overhead: the E13 regime — a hot-key stream of vertex-weight
	// updates hitting the highest-degree vertices, where every update pays a
	// full propagation wave and the per-wave hook fires most often.
	hubs := hotVertices(db, 64)
	r := rand.New(rand.NewSource(int64(n)))
	stream := make([]agg.Change, updates)
	for i := range stream {
		hub := hubs[r.Intn(len(hubs))]
		stream[i] = agg.SetWeight("u", []int{hub.v}, int64(r.Intn(9)+1))
	}
	sPlain, err := pPlain.Session()
	if err != nil {
		panic(fmt.Sprintf("E17: session (plain): %v", err))
	}
	sTraced, err := pTraced.Session()
	if err != nil {
		panic(fmt.Sprintf("E17: session (traced): %v", err))
	}
	apply := func(s *agg.Session) func() {
		return func() {
			for _, ch := range stream {
				if err := s.Set(ch); err != nil {
					panic(fmt.Sprintf("E17: update: %v", err))
				}
			}
		}
	}
	updPlain, updTraced := bestOfPair(reps, apply(sPlain), apply(sTraced))
	vPlain, err := sPlain.Eval(plainCtx)
	if err != nil {
		panic(fmt.Sprintf("E17: session eval (plain): %v", err))
	}
	vTraced, err := sTraced.Eval(plainCtx)
	if err != nil {
		panic(fmt.Sprintf("E17: session eval (traced): %v", err))
	}
	if vPlain != vTraced {
		panic(fmt.Sprintf("E17: traced session value %s != plain session value %s", vTraced, vPlain))
	}

	return e17Measurements{
		n:         n,
		updates:   updates,
		evalPlain: evalPlain, evalTraced: evalTraced,
		updPlain: updPlain, updTraced: updTraced,
		// No listener: circuit.Dynamic with the wave hook left nil, the path
		// every session without a tracer runs.
		allocsPerUpd: engineAllocsPerUpdate(db, hubs),
	}
}

// E17InstrumentationOverhead measures what the observability layer costs on
// the hot paths it instruments: closed evaluation with a tracer in the
// context versus without, and a hot-key update stream on a session whose
// waves report into a tracer versus one with no listener.  The claim is that
// spans are cheap enough to leave on (one clock pair and one lock-free
// histogram increment per stage) and that the uninstrumented path pays
// nothing at all — no clock reads, no allocations.
func E17InstrumentationOverhead(sizes []int, reps int) *Table {
	if reps < 3 {
		reps = 3
	}
	const updates = 4000
	t := &Table{
		ID:    "E17",
		Title: "Instrumentation overhead: tracing the agg pipeline",
		Claim: "stage spans and wave histograms cost ≤3% on evaluation and steady-state updates, and the no-listener update path stays allocation-free",
		Header: []string{
			"n", "eval", "eval(traced)", "Δeval",
			"upd/s", "upd/s(traced)", "Δupd", "allocs/upd (no hook)",
		},
	}
	for _, n := range sizes {
		m := e17Measure(n, updates, reps)
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(m.n),
			dur(m.evalPlain), dur(m.evalTraced),
			fmt.Sprintf("%+.1f%%", 100*(float64(m.evalTraced)-float64(m.evalPlain))/float64(m.evalPlain)),
			fmt.Sprintf("%.0f", float64(m.updates)/m.updPlain.Seconds()),
			fmt.Sprintf("%.0f", float64(m.updates)/m.updTraced.Seconds()),
			fmt.Sprintf("%+.1f%%", 100*(float64(m.updTraced)-float64(m.updPlain))/float64(m.updPlain)),
			fmt.Sprintf("%.3f", m.allocsPerUpd),
		})
	}
	t.Notes = append(t.Notes,
		"both columns of each pair run the same Prepared/engine on the same workload; only the obs.Tracer in the context (eval) or the session's wave hook (updates) differs",
		fmt.Sprintf("timings are the best of %d interleaved runs per side; the update stream is the E13 hot-key regime where every update pays a full propagation wave, the worst case for the per-wave hook", reps),
		"allocs/upd measures circuit.Dynamic.SetInput with the wave hook left nil — the default path — and must report 0.000")
	return t
}

// E17Check runs the E17 comparison as a pass/fail smoke check (used by CI):
// the instrumented evaluation and update paths must stay within 3% of the
// uninstrumented ones, and the no-listener update path must not allocate.
// The timing gates are tight, so each attempt uses best-of timings on both
// sides and a failed attempt is re-measured up to two more times before the
// check red-lights — co-tenant noise on shared CI runners must not fail an
// unrelated change, but a real regression fails all three attempts.
func E17Check() error {
	const margin = 1.03
	var m e17Measurements
	var err error
	for attempt := 0; attempt < 3; attempt++ {
		m = e17Measure(2000, 4000, 5)
		err = nil
		switch {
		case m.allocsPerUpd != 0:
			err = fmt.Errorf("E17: no-listener update path allocates (%.3f allocs/update, want 0)", m.allocsPerUpd)
		case float64(m.evalTraced) > margin*float64(m.evalPlain):
			err = fmt.Errorf("E17: traced eval %v exceeds plain eval %v by more than 3%%", m.evalTraced, m.evalPlain)
		case float64(m.updTraced) > margin*float64(m.updPlain):
			err = fmt.Errorf("E17: traced updates %v exceed plain updates %v by more than 3%%", m.updTraced, m.updPlain)
		}
		if err == nil {
			break
		}
	}
	if err != nil {
		return err
	}
	fmt.Printf("E17 ok: n=%d, eval %v vs %v traced (%+.1f%%), %d updates %v vs %v traced (%+.1f%%), %.3f allocs/upd\n",
		m.n, m.evalPlain, m.evalTraced,
		100*(float64(m.evalTraced)-float64(m.evalPlain))/float64(m.evalPlain),
		m.updates, m.updPlain, m.updTraced,
		100*(float64(m.updTraced)-float64(m.updPlain))/float64(m.updPlain),
		m.allocsPerUpd)
	return nil
}
