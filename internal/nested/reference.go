package nested

import (
	"fmt"

	"repro/internal/structure"
)

// ReferenceEvalClosed evaluates a closed formula by direct recursion over the
// FOG[C] semantics, without compiling anything.  It enumerates all variable
// assignments explicitly, so it is exponential in quantifier depth and meant
// purely as a differential-testing oracle for the Program-backed Evaluator.
func ReferenceEvalClosed(db *Database, f Formula) (any, error) {
	if err := db.check(f); err != nil {
		return nil, err
	}
	if vars := freeVars(f); len(vars) != 0 {
		return nil, fmt.Errorf("nested: formula has free variables %v; use ReferenceEvalAt", vars)
	}
	return referenceEval(db, f, map[string]structure.Element{})
}

// ReferenceEvalAt evaluates a formula under the given variable assignment by
// direct recursion (see ReferenceEvalClosed).
func ReferenceEvalAt(db *Database, f Formula, env map[string]structure.Element) (any, error) {
	if err := db.check(f); err != nil {
		return nil, err
	}
	for _, v := range freeVars(f) {
		if _, ok := env[v]; !ok {
			return nil, fmt.Errorf("nested: free variable %q is not assigned", v)
		}
	}
	return referenceEval(db, f, env)
}

func referenceEval(db *Database, f Formula, env map[string]structure.Element) (any, error) {
	switch g := f.(type) {
	case BRel:
		t, err := resolveArgs(g.Args, env)
		if err != nil {
			return nil, err
		}
		return db.A.HasTuple(g.Rel, t...), nil
	case SRel:
		t, err := resolveArgs(g.Args, env)
		if err != nil {
			return nil, err
		}
		return db.Value(g.Rel, t), nil
	case ConstF:
		return g.Value, nil
	case Not:
		v, err := referenceEval(db, g.Arg, env)
		if err != nil {
			return nil, err
		}
		return !v.(bool), nil
	case BinOp:
		l, err := referenceEval(db, g.L, env)
		if err != nil {
			return nil, err
		}
		r, err := referenceEval(db, g.R, env)
		if err != nil {
			return nil, err
		}
		s := g.Out()
		if g.Mul {
			return s.Mul(l, r), nil
		}
		return s.Add(l, r), nil
	case SumAgg:
		s := g.Out()
		acc := s.Zero()
		inner := map[string]structure.Element{}
		for k, v := range env {
			inner[k] = v
		}
		var sweep func(i int) error
		sweep = func(i int) error {
			if i == len(g.Vars) {
				v, err := referenceEval(db, g.Arg, inner)
				if err != nil {
					return err
				}
				acc = s.Add(acc, v)
				return nil
			}
			for e := 0; e < db.A.N; e++ {
				inner[g.Vars[i]] = structure.Element(e)
				if err := sweep(i + 1); err != nil {
					return err
				}
			}
			return nil
		}
		if err := sweep(0); err != nil {
			return nil, err
		}
		return acc, nil
	case Iverson:
		v, err := referenceEval(db, g.Arg, env)
		if err != nil {
			return nil, err
		}
		if v.(bool) {
			return g.S.One(), nil
		}
		return g.S.Zero(), nil
	case Guarded:
		t, err := resolveArgs(g.GuardArgs, env)
		if err != nil {
			return nil, err
		}
		if !db.A.HasTuple(g.GuardRel, t...) {
			return g.Conn.Out.Zero(), nil
		}
		args := make([]any, len(g.Args))
		for i, arg := range g.Args {
			v, err := referenceEval(db, arg, env)
			if err != nil {
				return nil, err
			}
			args[i] = v
		}
		return g.Conn.Apply(args), nil
	default:
		return nil, fmt.Errorf("nested: unknown formula type %T", f)
	}
}

func resolveArgs(args []string, env map[string]structure.Element) (structure.Tuple, error) {
	t := make(structure.Tuple, len(args))
	for i, v := range args {
		e, ok := env[v]
		if !ok {
			return nil, fmt.Errorf("nested: variable %q is not assigned", v)
		}
		t[i] = e
	}
	return t, nil
}
