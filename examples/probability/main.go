// Probability aggregation (Example 4 of the paper): given three probability
// distributions p1, p2, p3 on the vertices of a sparse graph, compute the
// probability that an independently sampled triple (x, y, z) forms a
// directed triangle.  The weighted query
//
//	f = Σ_{x,y,z} [E(x,y) ∧ E(y,z) ∧ E(z,x)] · p1(x) · p2(y) · p3(z)
//
// is prepared once through the facade and evaluated in the field of
// rationals; In rebinds the same frozen circuit to the counting semiring (ℕ)
// and the Viterbi semiring without recompilation.
//
//	go run ./examples/probability
package main

import (
	"context"
	"fmt"
	"math/big"
	"math/rand"
	"strings"

	"repro/agg"
	"repro/internal/semiring"
)

func main() {
	const n = 3000
	ctx := context.Background()
	graph, err := agg.Generate("bounded-degree", n, 11)
	must(err)
	fmt.Printf("database: %d vertices, %d tuples\n", graph.Elements(), graph.TupleCount())

	// Re-encode the graph with three integer mass functions; each semiring
	// below interprets mass m of symbol p_i as the probability m / total_i.
	r := rand.New(rand.NewSource(5))
	masses := map[string][]int64{}
	totals := map[string]int64{}
	for _, name := range []string{"p1", "p2", "p3"} {
		m := make([]int64, n)
		for v := range m {
			m[v] = int64(r.Intn(3) + 1)
			totals[name] += m[v]
		}
		masses[name] = m
	}
	var b strings.Builder
	fmt.Fprintf(&b, "domain %d\nrel E 2\nwsym p1 1\nwsym p2 1\nwsym p3 1\n", n)
	for _, t := range graph.Tuples("E") {
		fmt.Fprintf(&b, "E %d %d\n", t[0], t[1])
	}
	for name, m := range masses {
		for v, mass := range m {
			fmt.Fprintf(&b, "%s %d %d\n", name, v, mass)
		}
	}

	// Exact probabilities in ℚ, triple counting in ℕ (every weight counts
	// as 1), and most-likely-triple in the Viterbi semiring ([0,1], max, ·).
	prob := func(weight string, v int64) *big.Rat { return big.NewRat(v, totals[weight]) }
	must(agg.Register(agg.NewSemiring[*big.Rat]("prob-rat", semiring.Rat,
		func(weight string, _ []int, v int64) *big.Rat { return prob(weight, v) })))
	must(agg.Register(agg.NewSemiring[int64]("count-ones", semiring.Nat,
		func(string, []int, int64) int64 { return 1 })))
	must(agg.Register(agg.NewSemiring[float64]("viterbi", semiring.MaxTimes,
		func(weight string, _ []int, v int64) float64 {
			f, _ := prob(weight, v).Float64()
			return f
		})))

	eng, err := agg.OpenReader(strings.NewReader(b.String()))
	must(err)
	p, err := eng.Prepare(ctx,
		"sum x, y, z . [E(x,y) & E(y,z) & E(z,x)] * p1(x) * p2(y) * p3(z)",
		agg.WithSemiring("prob-rat"))
	must(err)
	st := p.Stats()
	fmt.Printf("circuit: %d gates, depth %d, %d permanent gates\n", st.Gates, st.Depth, st.PermGates)

	// Probability in exact rational arithmetic.
	v, err := p.Eval(ctx)
	must(err)
	exact, _ := new(big.Rat).SetString(v.String())
	approx, _ := exact.Float64()
	fmt.Printf("P[random triple is a directed triangle] = %s ≈ %.3g\n", exact.RatString(), approx)

	// The same circuit counts triangles when every weight is 1 ...
	pc, err := p.In("count-ones")
	must(err)
	count, err := pc.Eval(ctx)
	must(err)
	fmt.Printf("number of directed triangle triples          = %s\n", count)

	// ... and finds the probability of the most likely triple in the
	// Viterbi semiring.
	pv, err := p.In("viterbi")
	must(err)
	best, err := pv.Eval(ctx)
	must(err)
	fmt.Printf("probability of the most likely triangle      = %s\n", best)
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}
