// Command aggbench runs the experiment suite of EXPERIMENTS.md and prints
// each table (plain text by default, Markdown with -markdown).
//
// Usage:
//
//	aggbench [-quick] [-markdown] [-only E2,E5] [-workers 4]
//
// With -workers > 1 the experiments of the sweep run concurrently; use the
// default of 1 when the absolute timings inside the tables matter.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/bench"
)

func main() {
	quick := flag.Bool("quick", false, "use reduced problem sizes")
	markdown := flag.Bool("markdown", false, "emit Markdown tables")
	only := flag.String("only", "", "comma-separated experiment ids to run (e.g. E1,E5); empty runs all")
	workers := flag.Int("workers", 1, "experiments run concurrently on this many goroutines (0 = GOMAXPROCS; >1 skews timings)")
	e14check := flag.Bool("e14check", false, "run the E14 program-vs-legacy layout comparison as a pass/fail smoke check and exit")
	e16check := flag.Bool("e16check", false, "run the E16 re-platformed nested/localsearch comparison as a pass/fail smoke check and exit")
	e17check := flag.Bool("e17check", false, "run the E17 instrumentation-overhead comparison as a pass/fail smoke check and exit")
	e18check := flag.Bool("e18check", false, "run the E18 snapshot-reads-under-writes comparison as a pass/fail smoke check and exit")
	e19check := flag.Bool("e19check", false, "run the E19 fleet scale-out comparison as a pass/fail smoke check and exit")
	e20check := flag.Bool("e20check", false, "run the E20 live-push/ingest comparison as a pass/fail smoke check and exit")
	flag.Parse()

	if *e14check {
		if err := bench.E14Check(); err != nil {
			fmt.Fprintf(os.Stderr, "aggbench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *e16check {
		if err := bench.E16Check(); err != nil {
			fmt.Fprintf(os.Stderr, "aggbench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *e17check {
		if err := bench.E17Check(); err != nil {
			fmt.Fprintf(os.Stderr, "aggbench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *e18check {
		if err := bench.E18Check(); err != nil {
			fmt.Fprintf(os.Stderr, "aggbench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *e19check {
		if err := bench.E19Check(); err != nil {
			fmt.Fprintf(os.Stderr, "aggbench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *e20check {
		if err := bench.E20Check(); err != nil {
			fmt.Fprintf(os.Stderr, "aggbench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	wanted := map[string]bool{}
	for _, id := range strings.Split(*only, ",") {
		id = strings.TrimSpace(id)
		if id != "" {
			wanted[strings.ToUpper(id)] = true
		}
	}

	var selected []bench.Experiment
	for _, e := range bench.Registry(*quick) {
		if len(wanted) > 0 && !wanted[e.ID] {
			continue
		}
		selected = append(selected, e)
	}
	if len(selected) == 0 {
		fmt.Fprintf(os.Stderr, "aggbench: no experiment matched -only=%q\n", *only)
		os.Exit(1)
	}
	print := func(t *bench.Table) {
		if *markdown {
			fmt.Println(t.Markdown())
		} else {
			fmt.Println(t.String())
		}
	}
	if *workers == 1 {
		// Sequential sweeps stream each table as its experiment finishes.
		for _, e := range selected {
			print(e.Run())
		}
		return
	}
	for _, t := range bench.RunExperiments(selected, *workers) {
		print(t)
	}
}
