// Command aggenum enumerates the answers of a first-order query on a sparse
// database with constant delay (Theorem 24 of the paper).
//
// The database is generated on the fly (-kind/-n) or read from a file or
// stdin in the internal/dbio text format; the query is a first-order formula
// in the surface syntax of internal/parser.
//
// Usage:
//
//	aggenum -kind grid -n 4096 -phi 'E(x,y) & E(y,z) & E(z,x)' -vars x,y,z -limit 10
//	agggen -kind bounded-degree -n 10000 | aggenum -stdin \
//	    -phi 'S(x) & !S(y) & E(x,y)' -vars x,y -count
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/compile"
	"repro/internal/dbio"
	"repro/internal/enumerate"
	"repro/internal/parser"
	"repro/internal/structure"
	"repro/internal/workload"
)

func main() {
	phiText := flag.String("phi", "E(x,y) & E(y,z) & E(z,x)", "first-order formula in surface syntax")
	varsText := flag.String("vars", "x,y,z", "comma-separated answer variables")
	kind := flag.String("kind", "bounded-degree", "generated workload kind (ignored with -stdin/-file)")
	n := flag.Int("n", 2000, "generated database size (ignored with -stdin/-file)")
	seed := flag.Int64("seed", 1, "random seed")
	stdin := flag.Bool("stdin", false, "read the database from stdin (dbio format)")
	file := flag.String("file", "", "read the database from this file (dbio format)")
	limit := flag.Int("limit", 20, "print at most this many answers (0 prints none)")
	countOnly := flag.Bool("count", false, "only report the number of answers and timing")
	flag.Parse()

	a, err := loadStructure(*stdin, *file, *kind, *n, *seed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "aggenum: %v\n", err)
		os.Exit(1)
	}

	phi, err := parser.ParseFormula(*phiText)
	if err != nil {
		fmt.Fprintf(os.Stderr, "aggenum: %v\n", err)
		os.Exit(2)
	}
	vars := splitVars(*varsText)
	if len(vars) == 0 {
		fmt.Fprintf(os.Stderr, "aggenum: -vars must list at least one variable\n")
		os.Exit(2)
	}

	start := time.Now()
	ans, err := enumerate.EnumerateAnswers(a, phi, vars, compile.Options{})
	if err != nil {
		fmt.Fprintf(os.Stderr, "aggenum: %v\n", err)
		os.Exit(1)
	}
	preprocess := time.Since(start)

	fmt.Printf("database: n=%d tuples=%d\n", a.N, a.TupleCount())
	fmt.Printf("query:    %s   answers over (%s)\n", parser.FormatFormula(phi), strings.Join(vars, ", "))
	fmt.Printf("preprocessing: %v\n", preprocess)

	start = time.Now()
	count := ans.Count()
	fmt.Printf("answers: %d (counted in %v)\n", count, time.Since(start))

	if *countOnly || *limit == 0 {
		return
	}

	out := bufio.NewWriter(os.Stdout)
	defer out.Flush()
	cur := ans.Cursor()
	printed := 0
	start = time.Now()
	for printed < *limit {
		t, ok := cur.Next()
		if !ok {
			break
		}
		fmt.Fprintf(out, "  %v\n", []structure.Element(t))
		printed++
	}
	elapsed := time.Since(start)
	if printed > 0 {
		fmt.Fprintf(out, "enumerated %d answers in %v (%.1fµs per answer)\n",
			printed, elapsed, float64(elapsed.Microseconds())/float64(printed))
	}
}

func loadStructure(stdin bool, file, kind string, n int, seed int64) (*structure.Structure, error) {
	switch {
	case stdin:
		db, err := dbio.Read(os.Stdin)
		if err != nil {
			return nil, err
		}
		return db.A, nil
	case file != "":
		db, err := dbio.ReadFile(file)
		if err != nil {
			return nil, err
		}
		return db.A, nil
	default:
		var db *workload.Database
		switch kind {
		case "bounded-degree":
			db = workload.BoundedDegree(n, 3, seed)
		case "grid":
			side := 1
			for side*side < n {
				side++
			}
			db = workload.Grid(side, side, seed)
		case "pref-attach":
			db = workload.PreferentialAttachment(n, 2, seed)
		case "forest":
			db = workload.Forest(n, 3, seed)
		default:
			return nil, fmt.Errorf("unknown workload %q", kind)
		}
		return db.A, nil
	}
}

func splitVars(s string) []string {
	var out []string
	for _, v := range strings.Split(s, ",") {
		v = strings.TrimSpace(v)
		if v != "" {
			out = append(out, v)
		}
	}
	return out
}
