// Package kc analyses compiled circuits through the lens of knowledge
// compilation and factorized databases.
//
// The paper observes that the circuits produced by Theorem 6 generalise
// deterministic decomposable negation normal forms (d-DNNF, Darwiche) and can
// be viewed as factorized representations of query answers (Olteanu and
// Závodný): multiplication and permanent gates combine sub-circuits over
// disjoint sets of inputs (decomposability), and addition gates combine
// mutually exclusive alternatives (determinism).  These structural
// properties are exactly what make counting, enumeration and updates cheap.
//
// Analysis runs on the frozen circuit.Program form — the artefact every
// production engine executes — walking the CSR arrays directly, so the
// properties are checked on exactly the object that is evaluated, maintained
// and enumerated, not on the legacy builder graph.
//
// This package makes those properties checkable:
//
//   - Analyze computes, for every gate, the set of weight inputs it depends
//     on, and CheckDecomposable verifies the disjointness conditions.
//   - CheckDeterministic verifies (semantically, via the free semiring) that
//     no addition or permanent gate produces the same monomial twice.
//   - ModelCount counts the monomials of the circuit — for the enumeration
//     circuits of Theorem 24 this is exactly the number of query answers.
//   - FactorizationReport quantifies how much smaller the circuit is than
//     the flat table of answers it represents.
//   - DOT renders the program for inspection with Graphviz.
package kc

import (
	"fmt"
	"math/big"
	"sort"
	"strings"

	"repro/internal/circuit"
	"repro/internal/provenance"
	"repro/internal/semiring"
	"repro/internal/structure"
)

// Analysis holds per-gate dependency information for a frozen program.
type Analysis struct {
	p *circuit.Program
	// vars lists the weight inputs of the program in a fixed order.
	vars []structure.WeightKey
	// varIndex maps an input gate id to its position in vars.
	varIndex map[int]int
	// sets[g] is a bitset over vars: the inputs reachable from gate g.
	sets []bitset
}

// bitset is a fixed-width bitset over the program's input variables.
type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+63)/64) }

func (b bitset) set(i int)      { b[i/64] |= 1 << (uint(i) % 64) }
func (b bitset) has(i int) bool { return b[i/64]&(1<<(uint(i)%64)) != 0 }
func (b bitset) or(other bitset) {
	for i := range b {
		b[i] |= other[i]
	}
}
func (b bitset) intersects(other bitset) bool {
	for i := range b {
		if b[i]&other[i] != 0 {
			return true
		}
	}
	return false
}
func (b bitset) count() int {
	total := 0
	for _, w := range b {
		for ; w != 0; w &= w - 1 {
			total++
		}
	}
	return total
}

// Analyze computes the input-dependency sets of every gate by one pass over
// the program in id (hence topological) order.
func Analyze(p *circuit.Program) *Analysis {
	a := &Analysis{p: p, varIndex: map[int]int{}}
	n := p.NumGates()
	for id := 0; id < n; id++ {
		if p.GateKind(id) == circuit.KindInput {
			a.varIndex[id] = len(a.vars)
			a.vars = append(a.vars, p.InputKey(id))
		}
	}
	a.sets = make([]bitset, n)
	for id := 0; id < n; id++ {
		s := newBitset(len(a.vars))
		switch p.GateKind(id) {
		case circuit.KindInput:
			s.set(a.varIndex[id])
		case circuit.KindConst:
			// no dependencies
		default:
			// Add, Mul and Perm gates all list their operands in the
			// children arena (entry gates in entry order for permanents).
			for _, ch := range p.ChildIDs(id) {
				s.or(a.sets[ch])
			}
		}
		a.sets[id] = s
	}
	return a
}

// Program returns the analysed program.
func (a *Analysis) Program() *circuit.Program { return a.p }

// Variables lists the weight inputs of the program in analysis order.
func (a *Analysis) Variables() []structure.WeightKey {
	return append([]structure.WeightKey(nil), a.vars...)
}

// VariablesOf returns the weight inputs that gate g depends on.
func (a *Analysis) VariablesOf(g int) []structure.WeightKey {
	var out []structure.WeightKey
	for i, key := range a.vars {
		if a.sets[g].has(i) {
			out = append(out, key)
		}
	}
	return out
}

// DependencyCount returns the number of inputs gate g depends on.
func (a *Analysis) DependencyCount(g int) int { return a.sets[g].count() }

// DependsOn reports whether gate g depends on the given weight input.
func (a *Analysis) DependsOn(g int, key structure.WeightKey) bool {
	for i, k := range a.vars {
		if k == key {
			return a.sets[g].has(i)
		}
	}
	return false
}

// Violation describes a gate at which a structural property fails.
type Violation struct {
	// Gate is the offending gate id.
	Gate int
	// Property names the violated property ("decomposable" or "deterministic").
	Property string
	// Detail describes the failure.
	Detail string
}

func (v Violation) String() string {
	return fmt.Sprintf("gate %d is not %s: %s", v.Gate, v.Property, v.Detail)
}

// CheckDecomposable verifies that every multiplication gate multiplies
// sub-circuits over pairwise disjoint input sets, and that in every permanent
// gate the columns depend on pairwise disjoint input sets.  These conditions
// guarantee that products never multiply two values derived from the same
// weight input, the circuit analogue of d-DNNF decomposability.
func (a *Analysis) CheckDecomposable() []Violation {
	var out []Violation
	for id := 0; id < a.p.NumGates(); id++ {
		switch a.p.GateKind(id) {
		case circuit.KindMul:
			kids := a.p.ChildIDs(id)
			for i := 0; i < len(kids); i++ {
				for j := i + 1; j < len(kids); j++ {
					if a.sets[kids[i]].intersects(a.sets[kids[j]]) {
						out = append(out, Violation{
							Gate:     id,
							Property: "decomposable",
							Detail: fmt.Sprintf("children %d and %d share input variables",
								kids[i], kids[j]),
						})
					}
				}
			}
		case circuit.KindPerm:
			cols := a.permColumnSets(id)
			keys := make([]int, 0, len(cols))
			for c := range cols {
				keys = append(keys, c)
			}
			sort.Ints(keys)
			for i := 0; i < len(keys); i++ {
				for j := i + 1; j < len(keys); j++ {
					if cols[keys[i]].intersects(cols[keys[j]]) {
						out = append(out, Violation{
							Gate:     id,
							Property: "decomposable",
							Detail: fmt.Sprintf("columns %d and %d share input variables",
								keys[i], keys[j]),
						})
					}
				}
			}
		}
	}
	return out
}

func (a *Analysis) permColumnSets(id int) map[int]bitset {
	cols := map[int]bitset{}
	a.p.ForEachPermEntry(id, func(row, col, gate int) {
		s, ok := cols[col]
		if !ok {
			s = newBitset(len(a.vars))
			cols[col] = s
		}
		s.or(a.sets[gate])
	})
	return cols
}

// CheckDeterministic verifies semantically that no gate produces the same
// monomial more than once when every input is interpreted as a distinct
// generator of the free semiring.  For the boolean enumeration circuits of
// Theorem 24 this is exactly the property that answers are enumerated
// without repetition.
//
// The check materialises one polynomial per gate, so it is intended for
// moderate circuits (tests, diagnostics), not for production-size databases.
func (a *Analysis) CheckDeterministic() []Violation {
	free := provenance.FreeSemiring{}
	val := func(key structure.WeightKey) (*provenance.Poly, bool) {
		return provenance.Var(provenance.Generator(key.Weight + ":" + key.Tuple)), true
	}
	polys := circuit.EvaluateAllProgram[*provenance.Poly](a.p, free, val)
	var out []Violation
	for id, p := range polys {
		if p == nil {
			continue
		}
		kind := a.p.GateKind(id)
		if kind != circuit.KindAdd && kind != circuit.KindPerm {
			continue
		}
		for _, m := range p.Monomials() {
			if m.Count > 1 {
				out = append(out, Violation{
					Gate:     id,
					Property: "deterministic",
					Detail:   fmt.Sprintf("monomial %s produced %d times", m.Monomial, m.Count),
				})
				break
			}
		}
	}
	return out
}

// ModelCount evaluates the program in (ℤ, +, ·) with every input set to 1,
// i.e. it counts the monomials of the represented polynomial with
// multiplicity.  For an enumeration circuit this is the number of answers.
func ModelCount(p *circuit.Program) *big.Int {
	one := func(structure.WeightKey) (*big.Int, bool) { return big.NewInt(1), true }
	return circuit.EvaluateProgram[*big.Int](p, semiring.Big, one)
}

// SupportSize counts the distinct monomials of the program by evaluating it
// in the free semiring; unlike ModelCount it collapses repeated monomials.
// Intended for moderate circuits.
func SupportSize(p *circuit.Program) int {
	free := provenance.FreeSemiring{}
	val := func(key structure.WeightKey) (*provenance.Poly, bool) {
		return provenance.Var(provenance.Generator(key.Weight + ":" + key.Tuple)), true
	}
	return circuit.EvaluateProgram[*provenance.Poly](p, free, val).NumTerms()
}

// Size returns the size measure used by the factorization report: the number
// of gates plus the number of wires of the program (the length of the shared
// children arena).
func Size(p *circuit.Program) int {
	wires := 0
	for id := 0; id < p.NumGates(); id++ {
		wires += len(p.ChildIDs(id))
	}
	return p.NumGates() + wires
}

// FactorizationReport compares the program against the flat representation
// of the answer set it factorizes.
type FactorizationReport struct {
	// CircuitSize is the number of gates plus wires.
	CircuitSize int
	// Answers is the number of represented monomials (answer tuples).
	Answers *big.Int
	// Arity is the answer arity used to compute the flat size.
	Arity int
	// FlatCells is Answers × Arity: the number of cells of the flat table.
	FlatCells *big.Int
	// CompressionRatio is FlatCells / CircuitSize (0 when the circuit is
	// empty or the answer count does not fit a float64).
	CompressionRatio float64
}

// Factorization measures how compactly the program represents an answer set
// of the given arity.
func Factorization(p *circuit.Program, arity int) FactorizationReport {
	report := FactorizationReport{
		CircuitSize: Size(p),
		Answers:     ModelCount(p),
		Arity:       arity,
	}
	report.FlatCells = new(big.Int).Mul(report.Answers, big.NewInt(int64(arity)))
	if report.CircuitSize > 0 {
		cells, _ := new(big.Float).SetInt(report.FlatCells).Float64()
		report.CompressionRatio = cells / float64(report.CircuitSize)
	}
	return report
}

// DOT renders the program in Graphviz dot syntax.  Input gates are labelled
// with their weight key, constants with their value, and permanent gates
// with their matrix dimensions.
func DOT(p *circuit.Program) string {
	var b strings.Builder
	b.WriteString("digraph circuit {\n  rankdir=BT;\n  node [fontname=\"monospace\"];\n")
	for id := 0; id < p.NumGates(); id++ {
		var label, shape string
		switch p.GateKind(id) {
		case circuit.KindInput:
			key := p.InputKey(id)
			label = fmt.Sprintf("%s(%s)", key.Weight, key.Tuple)
			shape = "box"
		case circuit.KindConst:
			label = p.ConstBig(id).String()
			shape = "box"
		case circuit.KindAdd:
			label = "+"
			shape = "circle"
		case circuit.KindMul:
			label = "×"
			shape = "circle"
		case circuit.KindPerm:
			rows, cols := p.PermShape(id)
			label = fmt.Sprintf("perm %d×%d", rows, cols)
			shape = "diamond"
		}
		style := ""
		if id == p.OutputGate() {
			style = ", penwidth=2"
		}
		fmt.Fprintf(&b, "  g%d [label=%q, shape=%s%s];\n", id, label, shape, style)
	}
	for id := 0; id < p.NumGates(); id++ {
		if p.GateKind(id) == circuit.KindPerm {
			p.ForEachPermEntry(id, func(row, col, gate int) {
				fmt.Fprintf(&b, "  g%d -> g%d [label=\"r%dc%d\"];\n", gate, id, row, col)
			})
			continue
		}
		for _, ch := range p.ChildIDs(id) {
			fmt.Fprintf(&b, "  g%d -> g%d;\n", ch, id)
		}
	}
	b.WriteString("}\n")
	return b.String()
}
