// Ablation benchmarks for the design choices called out in DESIGN.md, in
// addition to the per-experiment benchmarks of bench_test.go:
//
//   - A1: the three permanent-maintenance strategies (generic segment tree,
//     ring inclusion–exclusion, finite column-type counting) on the same
//     update stream.
//   - A2: evaluating one circuit in a product semiring versus two separate
//     evaluation passes.
//   - A3: surface-syntax parsing throughput.
//   - A4: low-treedepth colouring cost as the subset size p grows.
//   - A5: cost of a single local-search improvement round.
//   - A6: dbio serialisation round trip.
package repro

import (
	"bytes"
	"testing"

	"repro/internal/bench"
	"repro/internal/compile"
	"repro/internal/dbio"
	"repro/internal/graph"
	"repro/internal/localsearch"
	"repro/internal/parser"
	"repro/internal/perm"
	"repro/internal/semiring"
	"repro/internal/workload"
)

// BenchmarkA1PermanentMaintainers compares update latency of the three
// dynamic permanent implementations on a 3×n matrix over ℤ/7 (a carrier all
// three support).
func BenchmarkA1PermanentMaintainers(b *testing.B) {
	const rows, cols = 3, 8192
	mod := semiring.NewModular(7)
	build := func() *perm.Matrix[int64] {
		m := perm.NewMatrix[int64](mod, rows, cols)
		for i := 0; i < rows; i++ {
			for j := 0; j < cols; j++ {
				m.Set(i, j, int64((i*31+j*17)%7))
			}
		}
		return m
	}
	run := func(b *testing.B, d perm.Maintainer[int64]) {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			d.Update(i%rows, (i*37)%cols, int64(i%7))
		}
		_ = d.Value()
	}
	b.Run("generic-segment-tree", func(b *testing.B) { run(b, perm.NewDynamic[int64](mod, build())) })
	b.Run("ring-inclusion-exclusion", func(b *testing.B) { run(b, perm.NewRingDynamic[int64](mod, build())) })
	b.Run("finite-column-types", func(b *testing.B) { run(b, perm.NewFiniteDynamic[int64](mod, build())) })
}

// BenchmarkA2ProductSemiringSinglePass measures whether evaluating the
// triangle circuit once in Nat×MinPlus is cheaper than evaluating it twice,
// once per factor.
func BenchmarkA2ProductSemiringSinglePass(b *testing.B) {
	db := workload.BoundedDegree(4000, 3, 19)
	res, err := compile.Compile(db.A, bench.TriangleQuery(), compile.Options{})
	if err != nil {
		b.Fatal(err)
	}
	w := db.Weights()
	mpw := db.MinPlusWeights()
	prod := semiring.NewProduct[int64, semiring.Ext](semiring.Nat, semiring.MinPlus)
	pw := dbio.ConvertWeights(w, func(v int64) semiring.Pair[int64, semiring.Ext] {
		return semiring.Pair[int64, semiring.Ext]{First: v, Second: semiring.Fin(v)}
	})
	b.Run("two-passes", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			compile.Evaluate[int64](res, semiring.Nat, w)
			compile.Evaluate[semiring.Ext](res, semiring.MinPlus, mpw)
		}
	})
	b.Run("one-product-pass", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			compile.Evaluate[semiring.Pair[int64, semiring.Ext]](res, prod, pw)
		}
	})
}

// BenchmarkA3Parser measures surface-syntax parsing of the triangle query.
func BenchmarkA3Parser(b *testing.B) {
	const src = "sum x, y, z . [E(x,y) & E(y,z) & E(z,x)] * w(x,y) * w(y,z) * w(z,x)"
	for i := 0; i < b.N; i++ {
		if _, err := parser.ParseExpr(src); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkA4LowTreedepthColoring measures the colouring substrate of
// Proposition 1 for increasing subset sizes p on a grid.
func BenchmarkA4LowTreedepthColoring(b *testing.B) {
	db := workload.Grid(64, 64, 3)
	g := graph.New(db.A.N)
	for _, t := range db.A.Tuples("E") {
		if !g.HasEdge(t[0], t[1]) {
			g.AddEdge(t[0], t[1])
		}
	}
	for _, p := range []int{1, 2, 3} {
		p := p
		b.Run(pName(p), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				graph.LowTreedepthColoring(g, p)
			}
		})
	}
}

func pName(p int) string { return "p=" + string(rune('0'+p)) }

// BenchmarkA5LocalSearch measures a full maximal-independent-set local
// search (Example 25) on a grid, reporting per-operation cost of the whole
// search so the per-round cost can be derived from the round count.
func BenchmarkA5LocalSearch(b *testing.B) {
	db := workload.Grid(48, 48, 3)
	g := graph.New(db.A.N)
	for _, t := range db.A.Tuples("E") {
		if !g.HasEdge(t[0], t[1]) {
			g.AddEdge(t[0], t[1])
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := localsearch.MaximalIndependentSet(g); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkA6DbioRoundTrip measures serialising and re-parsing a database.
func BenchmarkA6DbioRoundTrip(b *testing.B) {
	db := workload.BoundedDegree(10000, 3, 5)
	w := db.Weights()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := dbio.Write(&buf, db.A, w); err != nil {
			b.Fatal(err)
		}
		if _, err := dbio.Read(&buf); err != nil {
			b.Fatal(err)
		}
	}
}
