package nested

import (
	"fmt"
	"sort"

	"repro/internal/compile"
	"repro/internal/dynamicq"
	"repro/internal/enumerate"
	"repro/internal/expr"
	"repro/internal/logic"
	"repro/internal/semiring"
	"repro/internal/structure"
)

// Database is a structure over a multi-semiring signature: a relational
// structure holding the boolean relations, plus semiring-valued relations
// stored as dynamically typed weight tables.
type Database struct {
	// A holds the domain and the boolean relations.
	A *structure.Structure
	// srel maps an S-relation name to its declaration and values.
	srel map[string]*sRelation
}

type sRelation struct {
	name   string
	arity  int
	s      Semiring
	values map[string]any
	tuples []structure.Tuple
}

// NewDatabase wraps a relational structure as a nested-query database.
func NewDatabase(a *structure.Structure) *Database {
	return &Database{A: a, srel: map[string]*sRelation{}}
}

// DeclareSRelation declares a semiring-valued relation.
func (db *Database) DeclareSRelation(name string, s Semiring, arity int) error {
	if _, ok := db.A.Sig.Relation(name); ok {
		return fmt.Errorf("nested: %q is already a boolean relation", name)
	}
	if _, ok := db.srel[name]; ok {
		return fmt.Errorf("nested: S-relation %q already declared", name)
	}
	db.srel[name] = &sRelation{name: name, arity: arity, s: s, values: map[string]any{}}
	return nil
}

// CheckValue validates an S-relation assignment without performing it: the
// relation must be declared, the tuple must match its arity, and values of
// arity ≥ 2 must sit on tuples of some boolean relation (the Gaifman-graph
// discipline of the paper).
func (db *Database) CheckValue(name string, tuple structure.Tuple) error {
	rel, ok := db.srel[name]
	if !ok {
		return fmt.Errorf("nested: unknown S-relation %q", name)
	}
	if len(tuple) != rel.arity {
		return fmt.Errorf("nested: S-relation %q has arity %d, got tuple of length %d", name, rel.arity, len(tuple))
	}
	if rel.arity >= 2 && !db.tupleInSomeRelation(tuple) {
		return fmt.Errorf("nested: S-relation values of arity ≥ 2 may only be set on tuples of some boolean relation (Gaifman-graph discipline); %s%v is not such a tuple", name, tuple)
	}
	return nil
}

// CheckTuple validates a boolean-relation membership update without
// performing it.
func (db *Database) CheckTuple(rel string, tuple structure.Tuple) error {
	decl, ok := db.A.Sig.Relation(rel)
	if !ok {
		return fmt.Errorf("nested: unknown boolean relation %q", rel)
	}
	if len(tuple) != decl.Arity {
		return fmt.Errorf("nested: relation %q has arity %d, got tuple of length %d", rel, decl.Arity, len(tuple))
	}
	for _, e := range tuple {
		if e < 0 || e >= db.A.N {
			return fmt.Errorf("nested: element %d out of domain [0,%d)", e, db.A.N)
		}
	}
	return nil
}

// SetValue assigns a value to a tuple of an S-relation.  Values of arity ≥ 2
// must be set only on tuples whose elements appear together in some boolean
// relation (the Gaifman-graph discipline of the paper).
func (db *Database) SetValue(name string, tuple structure.Tuple, v any) error {
	if err := db.CheckValue(name, tuple); err != nil {
		return err
	}
	rel := db.srel[name]
	key := tuple.Key()
	if _, seen := rel.values[key]; !seen {
		rel.tuples = append(rel.tuples, tuple.Clone())
	}
	rel.values[key] = v
	return nil
}

// tupleInSomeRelation reports whether the tuple occurs in some boolean
// relation of matching arity.
func (db *Database) tupleInSomeRelation(tuple structure.Tuple) bool {
	for _, r := range db.A.Sig.Relations {
		if r.Arity == len(tuple) && db.A.HasTuple(r.Name, tuple...) {
			return true
		}
	}
	return false
}

// SetTuple sets the membership of a tuple in a boolean relation of the
// database.  Unlike the circuit-input updates of dynamic sessions, this
// mutates the underlying structure, so evaluators built afterwards see the
// change; evaluators built before keep their snapshot.
func (db *Database) SetTuple(rel string, tuple structure.Tuple, present bool) error {
	if _, ok := db.A.Sig.Relation(rel); !ok {
		return fmt.Errorf("nested: unknown boolean relation %q", rel)
	}
	if present {
		return db.A.AddTuple(rel, tuple...)
	}
	return db.A.RemoveTuple(rel, tuple...)
}

// SRelation reports the semiring and arity of a declared S-relation.
func (db *Database) SRelation(name string) (s Semiring, arity int, ok bool) {
	rel, ok := db.srel[name]
	if !ok {
		return nil, 0, false
	}
	return rel.s, rel.arity, true
}

// Clone returns a deep copy of the database: the structure, the S-relation
// declarations and their values are all private to the copy.  Used by
// sessions that mutate a database without disturbing the original.
func (db *Database) Clone() *Database {
	c := &Database{A: db.A.Clone(), srel: make(map[string]*sRelation, len(db.srel))}
	for name, r := range db.srel {
		nr := &sRelation{
			name:   r.name,
			arity:  r.arity,
			s:      r.s,
			values: make(map[string]any, len(r.values)),
			tuples: append([]structure.Tuple(nil), r.tuples...),
		}
		for k, v := range r.values {
			nr.values[k] = v
		}
		c.srel[name] = nr
	}
	return c
}

// Value returns the value of an S-relation at a tuple (zero when unset).
func (db *Database) Value(name string, tuple structure.Tuple) any {
	rel, ok := db.srel[name]
	if !ok {
		return nil
	}
	if v, ok := rel.values[tuple.Key()]; ok {
		return v
	}
	return rel.s.Zero()
}

// ---------------------------------------------------------------------------
// Validation
// ---------------------------------------------------------------------------

// Check validates semiring consistency and symbol usage of a formula against
// the database, without evaluating anything.
func (db *Database) Check(f Formula) error { return db.check(f) }

// check validates semiring consistency and symbol usage of a formula.
func (db *Database) check(f Formula) error {
	switch g := f.(type) {
	case BRel:
		decl, ok := db.A.Sig.Relation(g.Rel)
		if !ok {
			return fmt.Errorf("nested: unknown boolean relation %q", g.Rel)
		}
		if decl.Arity != len(g.Args) {
			return fmt.Errorf("nested: relation %q has arity %d, applied to %d arguments", g.Rel, decl.Arity, len(g.Args))
		}
		return nil
	case SRel:
		rel, ok := db.srel[g.Rel]
		if !ok {
			return fmt.Errorf("nested: unknown S-relation %q", g.Rel)
		}
		if rel.arity != len(g.Args) {
			return fmt.Errorf("nested: S-relation %q has arity %d, applied to %d arguments", g.Rel, rel.arity, len(g.Args))
		}
		if rel.s.Name() != g.S.Name() {
			return fmt.Errorf("nested: S-relation %q is %s-valued, used as %s-valued", g.Rel, rel.s.Name(), g.S.Name())
		}
		return nil
	case ConstF:
		return nil
	case Not:
		if g.Arg.Out().Name() != BoolSemiring.Name() {
			return fmt.Errorf("nested: negation of a non-boolean formula %s", g.Arg)
		}
		return db.check(g.Arg)
	case BinOp:
		if g.L.Out().Name() != g.R.Out().Name() {
			return fmt.Errorf("nested: mixing semirings %s and %s without a connective", g.L.Out().Name(), g.R.Out().Name())
		}
		if err := db.check(g.L); err != nil {
			return err
		}
		return db.check(g.R)
	case SumAgg:
		return db.check(g.Arg)
	case Iverson:
		if g.Arg.Out().Name() != BoolSemiring.Name() {
			return fmt.Errorf("nested: Iverson bracket over a non-boolean formula")
		}
		return db.check(g.Arg)
	case Guarded:
		decl, ok := db.A.Sig.Relation(g.GuardRel)
		if !ok {
			return fmt.Errorf("nested: guard relation %q is not a boolean relation of the database", g.GuardRel)
		}
		if decl.Arity != len(g.GuardArgs) {
			return fmt.Errorf("nested: guard %q has arity %d, got %d arguments", g.GuardRel, decl.Arity, len(g.GuardArgs))
		}
		if len(g.Args) == 0 {
			return fmt.Errorf("nested: connective %q applied to no arguments", g.Conn.Name)
		}
		guardVars := map[string]bool{}
		for _, v := range g.GuardArgs {
			guardVars[v] = true
		}
		for _, arg := range g.Args {
			for _, v := range freeVars(arg) {
				if !guardVars[v] {
					return fmt.Errorf("nested: free variable %q of a connective argument is not covered by the guard %s(%v) (FOG[C] restriction)", v, g.GuardRel, g.GuardArgs)
				}
			}
			if err := db.check(arg); err != nil {
				return err
			}
		}
		return nil
	default:
		return fmt.Errorf("nested: unknown formula type %T", f)
	}
}

// FreeVars returns the free variables of a formula in sorted order.
func FreeVars(f Formula) []string { return freeVars(f) }

// freeVars computes the free variables of a nested formula.
func freeVars(f Formula) []string {
	set := map[string]bool{}
	var rec func(g Formula, bound map[string]bool)
	rec = func(g Formula, bound map[string]bool) {
		switch h := g.(type) {
		case BRel:
			for _, v := range h.Args {
				if !bound[v] {
					set[v] = true
				}
			}
		case SRel:
			for _, v := range h.Args {
				if !bound[v] {
					set[v] = true
				}
			}
		case ConstF:
		case Not:
			rec(h.Arg, bound)
		case BinOp:
			rec(h.L, bound)
			rec(h.R, bound)
		case SumAgg:
			inner := map[string]bool{}
			for k := range bound {
				inner[k] = true
			}
			for _, v := range h.Vars {
				inner[v] = true
			}
			rec(h.Arg, inner)
		case Iverson:
			rec(h.Arg, bound)
		case Guarded:
			for _, v := range h.GuardArgs {
				if !bound[v] {
					set[v] = true
				}
			}
			for _, arg := range h.Args {
				rec(arg, bound)
			}
		}
	}
	rec(f, map[string]bool{})
	out := make([]string, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// ---------------------------------------------------------------------------
// Evaluation (Theorem 26)
// ---------------------------------------------------------------------------

// Evaluator carries the state of one evaluation run: the progressively
// extended structure (derived boolean relations) and S-relation store
// (derived weights).
type Evaluator struct {
	db      *Database
	work    *structure.Structure
	derived map[string]*sRelation
	counter int
	opts    compile.Options
}

// NewEvaluator prepares an evaluation run over the database.
func NewEvaluator(db *Database, opts compile.Options) *Evaluator {
	return &Evaluator{db: db, work: db.A, derived: map[string]*sRelation{}, opts: opts}
}

// EvalClosed evaluates a closed (sentence-like) formula and returns its
// value in the formula's output semiring.
func (ev *Evaluator) EvalClosed(f Formula) (any, error) {
	if err := ev.db.check(f); err != nil {
		return nil, err
	}
	if vars := freeVars(f); len(vars) != 0 {
		return nil, fmt.Errorf("nested: formula has free variables %v; use EvalAt", vars)
	}
	flat, err := ev.materialize(f)
	if err != nil {
		return nil, err
	}
	vals, err := ev.evalResidueAt(flat, nil, []structure.Tuple{{}})
	if err != nil {
		return nil, err
	}
	return vals[0], nil
}

// EvalAt evaluates a formula with free variables at every given assignment
// tuple (elements listed in the order of vars) and returns the values.
func (ev *Evaluator) EvalAt(f Formula, vars []string, tuples []structure.Tuple) ([]any, error) {
	if err := ev.db.check(f); err != nil {
		return nil, err
	}
	for _, v := range freeVars(f) {
		found := false
		for _, u := range vars {
			if u == v {
				found = true
			}
		}
		if !found {
			return nil, fmt.Errorf("nested: free variable %q is not among %v", v, vars)
		}
	}
	flat, err := ev.materialize(f)
	if err != nil {
		return nil, err
	}
	return ev.evalResidueAt(flat, vars, tuples)
}

// EnumerateBool preprocesses a boolean-valued formula for constant-delay
// enumeration of its answers over the given variables (result (E) of the
// paper).
func (ev *Evaluator) EnumerateBool(f Formula, vars []string) (*enumerate.Answers, error) {
	if err := ev.db.check(f); err != nil {
		return nil, err
	}
	if f.Out().Name() != BoolSemiring.Name() {
		return nil, fmt.Errorf("nested: EnumerateBool requires a boolean-valued formula, got %s-valued", f.Out().Name())
	}
	flat, err := ev.materialize(f)
	if err != nil {
		return nil, err
	}
	phi, err := ev.toLogic(flat)
	if err != nil {
		return nil, err
	}
	return enumerate.EnumerateAnswers(ev.work, phi, vars, ev.opts)
}

// materialize eliminates guarded connectives bottom-up, extending the
// working database with derived relations/weights.
func (ev *Evaluator) materialize(f Formula) (Formula, error) {
	switch g := f.(type) {
	case BRel, SRel, ConstF:
		return f, nil
	case Not:
		arg, err := ev.materialize(g.Arg)
		if err != nil {
			return nil, err
		}
		return Not{Arg: arg}, nil
	case BinOp:
		l, err := ev.materialize(g.L)
		if err != nil {
			return nil, err
		}
		r, err := ev.materialize(g.R)
		if err != nil {
			return nil, err
		}
		return BinOp{Mul: g.Mul, L: l, R: r}, nil
	case SumAgg:
		arg, err := ev.materialize(g.Arg)
		if err != nil {
			return nil, err
		}
		return SumAgg{Vars: g.Vars, Arg: arg}, nil
	case Iverson:
		arg, err := ev.materialize(g.Arg)
		if err != nil {
			return nil, err
		}
		return Iverson{S: g.S, Arg: arg}, nil
	case Guarded:
		return ev.materializeGuarded(g)
	default:
		return nil, fmt.Errorf("nested: unknown formula type %T", f)
	}
}

// materializeGuarded evaluates the arguments of a guarded connective at all
// guard tuples and replaces the connective by a derived atom.
func (ev *Evaluator) materializeGuarded(g Guarded) (Formula, error) {
	tuples := ev.work.Tuples(g.GuardRel)
	// Argument tuples are the guard tuples projected onto the guard
	// variables (repeated variables must agree, which they do trivially
	// because the projection uses positions).
	values := make([][]any, len(g.Args))
	for i, arg := range g.Args {
		flat, err := ev.materialize(arg)
		if err != nil {
			return nil, err
		}
		vals, err := ev.evalResidueAt(flat, g.GuardArgs, tuples)
		if err != nil {
			return nil, err
		}
		values[i] = vals
	}
	ev.counter++
	name := fmt.Sprintf(".conn%d", ev.counter)
	out := g.Conn.Out
	if out.Name() == BoolSemiring.Name() {
		// Derived boolean relation on an extended structure.
		members := make([]structure.Tuple, 0, len(tuples))
		for ti, t := range tuples {
			args := make([]any, len(g.Args))
			for i := range g.Args {
				args[i] = values[i][ti]
			}
			if g.Conn.Apply(args).(bool) {
				members = append(members, t)
			}
		}
		ext, err := extendStructure(ev.work, name, len(g.GuardArgs), members)
		if err != nil {
			return nil, err
		}
		ev.work = ext
		return BRel{Rel: name, Args: g.GuardArgs}, nil
	}
	// Derived S-relation stored as weights.
	rel := &sRelation{name: name, arity: len(g.GuardArgs), s: out, values: map[string]any{}}
	for ti, t := range tuples {
		args := make([]any, len(g.Args))
		for i := range g.Args {
			args[i] = values[i][ti]
		}
		v := g.Conn.Apply(args)
		if !out.Equal(v, out.Zero()) {
			rel.values[t.Key()] = v
			rel.tuples = append(rel.tuples, t)
		}
	}
	ev.derived[name] = rel
	return SRel{Rel: name, Args: g.GuardArgs, S: out}, nil
}

// extendStructure returns a copy of a with an additional relation holding
// the given tuples.
func extendStructure(a *structure.Structure, rel string, arity int, tuples []structure.Tuple) (*structure.Structure, error) {
	rels := append(append([]structure.RelSymbol(nil), a.Sig.Relations...), structure.RelSymbol{Name: rel, Arity: arity})
	sig, err := structure.NewSignature(rels, a.Sig.Weights)
	if err != nil {
		return nil, err
	}
	ext := structure.NewStructure(sig, a.N)
	for _, r := range a.Sig.Relations {
		for _, t := range a.Tuples(r.Name) {
			ext.MustAddTuple(r.Name, t...)
		}
	}
	for _, t := range tuples {
		ext.MustAddTuple(rel, t...)
	}
	return ext, nil
}

// lookupSRelation finds a (base or derived) S-relation.
func (ev *Evaluator) lookupSRelation(name string) (*sRelation, bool) {
	if r, ok := ev.derived[name]; ok {
		return r, true
	}
	r, ok := ev.db.srel[name]
	return r, ok
}

// evalResidueAt evaluates a connective-free formula at the given assignment
// tuples of vars.
func (ev *Evaluator) evalResidueAt(f Formula, vars []string, tuples []structure.Tuple) ([]any, error) {
	if f.Out().Name() == BoolSemiring.Name() {
		phi, err := ev.toLogic(f)
		if err != nil {
			return nil, err
		}
		return ev.evalBooleanAt(phi, vars, tuples)
	}
	e, weights, sig, err := ev.toExpr(f)
	if err != nil {
		return nil, err
	}
	// Evaluate over a structure re-homed onto the signature extended with
	// the weight symbols used by the expression.
	base, err := rehome(ev.work, sig)
	if err != nil {
		return nil, err
	}
	return f.Out().evalAtTuples(base, weights, e, vars, tuples, ev.opts)
}

// evalBooleanAt evaluates a quantified boolean formula at assignment tuples.
// The formula is compiled once — as the weighted expression [ϕ] over the
// boolean semiring, with quantifier elimination applied inside the compiler —
// into a shared frozen circuit.Program, and every tuple is then read from a
// dynamic session over that program (Theorem 8), replacing the seed-era path
// that re-ran first-order model checking per tuple.
func (ev *Evaluator) evalBooleanAt(phi logic.Formula, vars []string, tuples []structure.Tuple) ([]any, error) {
	q, err := dynamicq.CompileQuery[bool](semiring.Bool, ev.work, structure.NewWeights[bool](), expr.Guard(phi), ev.opts)
	if err != nil {
		return nil, err
	}
	queryVars := q.FreeVars()
	out := make([]any, len(tuples))
	args := make([]structure.Element, len(queryVars))
	for i, t := range tuples {
		for j, v := range queryVars {
			found := false
			for vi, name := range vars {
				if name == v {
					args[j] = t[vi]
					found = true
					break
				}
			}
			if !found {
				return nil, fmt.Errorf("nested: free variable %q of a boolean residue is not bound by the guard variables %v", v, vars)
			}
		}
		val, err := q.Value(args...)
		if err != nil {
			return nil, err
		}
		out[i] = val
	}
	return out, nil
}

// toLogic converts a connective-free boolean formula to first-order logic
// over the working structure.
func (ev *Evaluator) toLogic(f Formula) (logic.Formula, error) {
	switch g := f.(type) {
	case BRel:
		return logic.R(g.Rel, g.Args...), nil
	case SRel:
		return nil, fmt.Errorf("nested: %s-valued relation %q used in a boolean position", g.S.Name(), g.Rel)
	case ConstF:
		b, ok := g.Value.(bool)
		if !ok {
			return nil, fmt.Errorf("nested: non-boolean constant in a boolean position")
		}
		if b {
			return logic.True(), nil
		}
		return logic.False(), nil
	case Not:
		arg, err := ev.toLogic(g.Arg)
		if err != nil {
			return nil, err
		}
		return logic.Neg(arg), nil
	case BinOp:
		l, err := ev.toLogic(g.L)
		if err != nil {
			return nil, err
		}
		r, err := ev.toLogic(g.R)
		if err != nil {
			return nil, err
		}
		if g.Mul {
			return logic.Conj(l, r), nil
		}
		return logic.Disj(l, r), nil
	case SumAgg:
		arg, err := ev.toLogic(g.Arg)
		if err != nil {
			return nil, err
		}
		return logic.Ex(g.Vars, arg), nil
	default:
		return nil, fmt.Errorf("nested: formula %s cannot appear in a boolean position", f)
	}
}

// toExpr converts a connective-free S-valued formula into a weighted
// expression over the working structure, collecting the weight values it
// references and the weight symbols needed in the signature.
func (ev *Evaluator) toExpr(f Formula) (expr.Expr, []WeightValue, []structure.WeightSymbol, error) {
	var weights []WeightValue
	var symbols []structure.WeightSymbol
	declared := map[string]bool{}
	constCounter := 0

	declare := func(name string, arity int) {
		if !declared[name] {
			declared[name] = true
			symbols = append(symbols, structure.WeightSymbol{Name: name, Arity: arity})
		}
	}

	var rec func(g Formula) (expr.Expr, error)
	rec = func(g Formula) (expr.Expr, error) {
		switch h := g.(type) {
		case SRel:
			rel, ok := ev.lookupSRelation(h.Rel)
			if !ok {
				return nil, fmt.Errorf("nested: unknown S-relation %q", h.Rel)
			}
			declare(h.Rel, rel.arity)
			// Register the relation's values once.
			for _, t := range rel.tuples {
				weights = append(weights, WeightValue{Weight: h.Rel, Tuple: t, Value: rel.values[t.Key()]})
			}
			return expr.W(h.Rel, h.Args...), nil
		case ConstF:
			constCounter++
			name := fmt.Sprintf(".const%d", constCounter)
			declare(name, 0)
			weights = append(weights, WeightValue{Weight: name, Tuple: structure.Tuple{}, Value: h.Value})
			return expr.W(name), nil
		case BinOp:
			l, err := rec(h.L)
			if err != nil {
				return nil, err
			}
			r, err := rec(h.R)
			if err != nil {
				return nil, err
			}
			if h.Mul {
				return expr.Times(l, r), nil
			}
			return expr.Plus(l, r), nil
		case SumAgg:
			arg, err := rec(h.Arg)
			if err != nil {
				return nil, err
			}
			return expr.Agg(h.Vars, arg), nil
		case Iverson:
			phi, err := ev.toLogic(h.Arg)
			if err != nil {
				return nil, err
			}
			return expr.Guard(phi), nil
		default:
			return nil, fmt.Errorf("nested: formula %s cannot appear in an %s-valued position", g, f.Out().Name())
		}
	}
	e, err := rec(f)
	if err != nil {
		return nil, nil, nil, err
	}
	// Deduplicate weight entries (the same S-relation may occur twice).
	seen := map[string]bool{}
	dedup := weights[:0]
	for _, wv := range weights {
		key := wv.Weight + "|" + wv.Tuple.Key()
		if !seen[key] {
			seen[key] = true
			dedup = append(dedup, wv)
		}
	}
	return e, dedup, symbols, nil
}

// rehome copies the structure onto a signature extended with the given
// weight symbols.
func rehome(a *structure.Structure, symbols []structure.WeightSymbol) (*structure.Structure, error) {
	sig, err := structure.NewSignature(a.Sig.Relations, append(append([]structure.WeightSymbol(nil), a.Sig.Weights...), symbols...))
	if err != nil {
		return nil, err
	}
	out := structure.NewStructure(sig, a.N)
	for _, r := range a.Sig.Relations {
		for _, t := range a.Tuples(r.Name) {
			out.MustAddTuple(r.Name, t...)
		}
	}
	return out, nil
}
