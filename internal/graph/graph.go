// Package graph provides the sparse-graph substrate of the library:
// undirected graphs, degeneracy orderings and orientations, spanning and
// elimination forests, greedy colourings, transitive–fraternal
// augmentations and low-treedepth colourings.
//
// These are the combinatorial tools behind classes of bounded expansion
// (Section 2 of the paper): Proposition 1 (low treedepth colourings) and
// the degeneracy-based functional encoding of Lemma 37.
package graph

import (
	"fmt"
	"sort"
)

// Graph is a simple undirected graph on vertices 0..N-1 stored as adjacency
// lists.  Self-loops and parallel edges are rejected by AddEdge.
type Graph struct {
	n   int
	adj [][]int
	// edgeSet provides O(1) membership tests; keyed by packed endpoint pair.
	edgeSet map[[2]int]struct{}
	m       int
}

// New returns an empty graph with n vertices and no edges.
func New(n int) *Graph {
	if n < 0 {
		panic("graph: negative vertex count")
	}
	return &Graph{
		n:       n,
		adj:     make([][]int, n),
		edgeSet: make(map[[2]int]struct{}),
	}
}

// N returns the number of vertices.
func (g *Graph) N() int { return g.n }

// M returns the number of edges.
func (g *Graph) M() int { return g.m }

// Neighbors returns the adjacency list of v.  The returned slice must not be
// modified.
func (g *Graph) Neighbors(v int) []int { return g.adj[v] }

// Degree returns the degree of v.
func (g *Graph) Degree(v int) int { return len(g.adj[v]) }

func edgeKey(u, v int) [2]int {
	if u > v {
		u, v = v, u
	}
	return [2]int{u, v}
}

// HasEdge reports whether the edge {u, v} is present.
func (g *Graph) HasEdge(u, v int) bool {
	if u == v {
		return false
	}
	_, ok := g.edgeSet[edgeKey(u, v)]
	return ok
}

// AddEdge inserts the undirected edge {u, v}.  Self-loops and duplicate
// edges are ignored so that callers can add edges from tuple scans without
// pre-deduplication.
func (g *Graph) AddEdge(u, v int) {
	if u == v {
		return
	}
	if u < 0 || v < 0 || u >= g.n || v >= g.n {
		panic(fmt.Sprintf("graph: edge (%d,%d) out of range [0,%d)", u, v, g.n))
	}
	key := edgeKey(u, v)
	if _, ok := g.edgeSet[key]; ok {
		return
	}
	g.edgeSet[key] = struct{}{}
	g.adj[u] = append(g.adj[u], v)
	g.adj[v] = append(g.adj[v], u)
	g.m++
}

// Edges returns all edges as (u, v) pairs with u < v, in no particular
// order.
func (g *Graph) Edges() [][2]int {
	out := make([][2]int, 0, g.m)
	for e := range g.edgeSet {
		out = append(out, e)
	}
	return out
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	h := New(g.n)
	for e := range g.edgeSet {
		h.AddEdge(e[0], e[1])
	}
	return h
}

// InducedSubgraph returns the subgraph induced by the given vertex set,
// together with the mapping from new vertex indices to original ones.
// The inverse mapping (original → new, or -1) is also returned.
func (g *Graph) InducedSubgraph(vertices []int) (sub *Graph, toOrig []int, toSub []int) {
	toSub = make([]int, g.n)
	for i := range toSub {
		toSub[i] = -1
	}
	toOrig = make([]int, len(vertices))
	for i, v := range vertices {
		toSub[v] = i
		toOrig[i] = v
	}
	sub = New(len(vertices))
	for i, v := range vertices {
		for _, w := range g.adj[v] {
			j := toSub[w]
			if j >= 0 && i < j {
				sub.AddEdge(i, j)
			}
		}
	}
	return sub, toOrig, toSub
}

// ConnectedComponents returns the vertex sets of the connected components.
func (g *Graph) ConnectedComponents() [][]int {
	seen := make([]bool, g.n)
	var comps [][]int
	stack := make([]int, 0, 16)
	for s := 0; s < g.n; s++ {
		if seen[s] {
			continue
		}
		comp := []int{}
		stack = append(stack[:0], s)
		seen[s] = true
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			comp = append(comp, v)
			for _, w := range g.adj[v] {
				if !seen[w] {
					seen[w] = true
					stack = append(stack, w)
				}
			}
		}
		comps = append(comps, comp)
	}
	return comps
}

// ---------------------------------------------------------------------------
// Degeneracy
// ---------------------------------------------------------------------------

// DegeneracyOrder computes a degeneracy ordering using the standard
// bucket-queue algorithm in O(n + m) time.  It returns the ordering (a
// permutation of the vertices such that each vertex has few neighbours later
// in the order) and the degeneracy d: every vertex has at most d neighbours
// that appear after it in the returned order.
func (g *Graph) DegeneracyOrder() (order []int, degeneracy int) {
	n := g.n
	deg := make([]int, n)
	maxDeg := 0
	for v := 0; v < n; v++ {
		deg[v] = len(g.adj[v])
		if deg[v] > maxDeg {
			maxDeg = deg[v]
		}
	}
	// Bucket queue keyed by current degree.
	buckets := make([][]int, maxDeg+1)
	pos := make([]int, n) // position of v within its bucket
	for v := 0; v < n; v++ {
		buckets[deg[v]] = append(buckets[deg[v]], v)
		pos[v] = len(buckets[deg[v]]) - 1
	}
	removed := make([]bool, n)
	order = make([]int, 0, n)
	cur := 0
	for len(order) < n {
		for cur <= maxDeg && len(buckets[cur]) == 0 {
			cur++
		}
		if cur > maxDeg {
			break
		}
		// Pop a vertex of minimum current degree.
		b := buckets[cur]
		v := b[len(b)-1]
		buckets[cur] = b[:len(b)-1]
		if removed[v] {
			continue
		}
		removed[v] = true
		order = append(order, v)
		if cur > degeneracy {
			degeneracy = cur
		}
		for _, w := range g.adj[v] {
			if removed[w] {
				continue
			}
			// Decrease the degree of w lazily: append to the lower bucket;
			// stale entries are skipped when popped.
			deg[w]--
			buckets[deg[w]] = append(buckets[deg[w]], w)
			if deg[w] < cur {
				cur = deg[w]
			}
		}
	}
	// Pass over any leftover stale entries (none expected, but keep the
	// invariant that order is a permutation).
	if len(order) != n {
		for v := 0; v < n; v++ {
			if !removed[v] {
				order = append(order, v)
			}
		}
	}
	return order, degeneracy
}

// Orientation is an acyclic orientation of a graph: for each vertex, the
// list of out-neighbours.
type Orientation struct {
	// Out[v] lists the out-neighbours of v.
	Out [][]int
	// MaxOutDegree is the maximum out-degree over all vertices.
	MaxOutDegree int
	// Rank[v] is the position of v in the ordering inducing the
	// orientation; arcs go from lower to higher rank... see Orient.
	Rank []int
}

// DegeneracyOrientation orients every edge from the endpoint that appears
// earlier in a degeneracy ordering towards the later endpoint, producing an
// acyclic orientation whose maximum out-degree equals the degeneracy.
//
// This is the orientation used by Lemma 37 of the paper to encode
// arbitrary-arity relations with unary functions.
func (g *Graph) DegeneracyOrientation() *Orientation {
	order, _ := g.DegeneracyOrder()
	rank := make([]int, g.n)
	for i, v := range order {
		rank[v] = i
	}
	out := make([][]int, g.n)
	maxOut := 0
	for v := 0; v < g.n; v++ {
		for _, w := range g.adj[v] {
			if rank[v] < rank[w] {
				out[v] = append(out[v], w)
			}
		}
		// Deterministic order of out-neighbours (needed because the encoded
		// functions f_i(v) = "i-th out-neighbour of v" must be stable).
		sort.Ints(out[v])
		if len(out[v]) > maxOut {
			maxOut = len(out[v])
		}
	}
	return &Orientation{Out: out, MaxOutDegree: maxOut, Rank: rank}
}

// OutIndex returns the 1-based index of w in v's out-neighbour list, or 0 if
// w is not an out-neighbour of v.
func (o *Orientation) OutIndex(v, w int) int {
	for i, x := range o.Out[v] {
		if x == w {
			return i + 1
		}
	}
	return 0
}

// ---------------------------------------------------------------------------
// Forests
// ---------------------------------------------------------------------------

// Forest is a rooted spanning forest over the vertices 0..N-1 of some graph,
// given by parent pointers.  Roots have Parent[v] == v, matching the
// convention of the paper (parent of a root is the root itself).
type Forest struct {
	// Parent[v] is the parent of v, or v itself if v is a root.
	Parent []int
	// Depth[v] is the depth of v (roots have depth 0).
	Depth []int
	// children lists, computed lazily.
	children [][]int
	// MaxDepth is the maximum depth over all vertices.
	MaxDepth int
}

// NewForest builds a Forest from parent pointers, computing depths.
func NewForest(parent []int) *Forest {
	n := len(parent)
	f := &Forest{Parent: parent, Depth: make([]int, n)}
	for v := range f.Depth {
		f.Depth[v] = -1
	}
	var depth func(v int) int
	depth = func(v int) int {
		if f.Depth[v] >= 0 {
			return f.Depth[v]
		}
		if parent[v] == v {
			f.Depth[v] = 0
			return 0
		}
		d := depth(parent[v]) + 1
		f.Depth[v] = d
		return d
	}
	for v := 0; v < n; v++ {
		d := depth(v)
		if d > f.MaxDepth {
			f.MaxDepth = d
		}
	}
	return f
}

// N returns the number of vertices of the forest.
func (f *Forest) N() int { return len(f.Parent) }

// IsRoot reports whether v is a root.
func (f *Forest) IsRoot(v int) bool { return f.Parent[v] == v }

// Roots returns all roots of the forest.
func (f *Forest) Roots() []int {
	var out []int
	for v := range f.Parent {
		if f.Parent[v] == v {
			out = append(out, v)
		}
	}
	return out
}

// Children returns the children of v.  The result is cached.
func (f *Forest) Children(v int) []int {
	if f.children == nil {
		f.children = make([][]int, len(f.Parent))
		for w, p := range f.Parent {
			if p != w {
				f.children[p] = append(f.children[p], w)
			}
		}
	}
	return f.children[v]
}

// Ancestor returns the ancestor of v exactly i levels above it, clamped at
// the root (parent^i with the paper's convention parent(root) = root).
func (f *Forest) Ancestor(v, i int) int {
	for ; i > 0; i-- {
		p := f.Parent[v]
		if p == v {
			return v
		}
		v = p
	}
	return v
}

// AncestorAtDepth returns the ancestor of v at the given depth, or -1 when
// depth exceeds the depth of v.
func (f *Forest) AncestorAtDepth(v, depth int) int {
	if depth > f.Depth[v] {
		return -1
	}
	return f.Ancestor(v, f.Depth[v]-depth)
}

// IsAncestor reports whether a is an ancestor of v (including a == v).
func (f *Forest) IsAncestor(a, v int) bool {
	if f.Depth[a] > f.Depth[v] {
		return false
	}
	return f.AncestorAtDepth(v, f.Depth[a]) == a
}

// SpanningForestDFS computes a rooted spanning forest of g by depth-first
// search.  For graphs of bounded treedepth the DFS forest has bounded depth
// (at most 2^treedepth), which is the property exploited by Example 2 of the
// paper.  The search is iterative to avoid stack overflow on deep graphs.
func SpanningForestDFS(g *Graph) *Forest {
	n := g.N()
	parent := make([]int, n)
	visited := make([]bool, n)
	for v := range parent {
		parent[v] = v
	}
	type frame struct {
		v   int
		idx int
	}
	var stack []frame
	for s := 0; s < n; s++ {
		if visited[s] {
			continue
		}
		visited[s] = true
		stack = append(stack[:0], frame{v: s})
		for len(stack) > 0 {
			top := &stack[len(stack)-1]
			if top.idx >= len(g.adj[top.v]) {
				stack = stack[:len(stack)-1]
				continue
			}
			w := g.adj[top.v][top.idx]
			top.idx++
			if !visited[w] {
				visited[w] = true
				parent[w] = top.v
				stack = append(stack, frame{v: w})
			}
		}
	}
	return NewForest(parent)
}

// EliminationForest computes a rooted forest over the vertices of g such
// that every edge of g connects a vertex with one of its ancestors (an
// elimination forest / treedepth decomposition).  The depth of the returned
// forest is a heuristic upper bound on the treedepth of g.
//
// The construction removes, in each connected component, a vertex chosen to
// break the component apart (a BFS-centre-of-a-longest-path heuristic with a
// fallback to maximum degree) and recurses on the remaining components,
// attaching their roots as children of the removed vertex.  Any forest built
// this way is a valid elimination forest; only its depth depends on the
// heuristic.
func EliminationForest(g *Graph) *Forest {
	n := g.N()
	parent := make([]int, n)
	for v := range parent {
		parent[v] = v
	}
	removed := make([]bool, n)

	// Scratch buffers reused across recursive calls.
	queue := make([]int, 0, n)
	dist := make([]int, n)

	// bfsFarthest returns the vertex farthest from start within the current
	// (non-removed) component containing start, considering only vertices in
	// the component.
	bfsFarthest := func(start int, member []bool) int {
		for _, v := range queue {
			dist[v] = -1
		}
		queue = queue[:0]
		queue = append(queue, start)
		dist[start] = 0
		far := start
		for i := 0; i < len(queue); i++ {
			v := queue[i]
			for _, w := range g.adj[v] {
				if member[w] && !removed[w] && dist[w] == -1 {
					dist[w] = dist[v] + 1
					if dist[w] > dist[far] {
						far = w
					}
					queue = append(queue, w)
				}
			}
		}
		return far
	}

	// bfsMiddle returns the middle vertex of a BFS path from a to b.
	bfsMiddle := func(a, b int, member []bool) int {
		for _, v := range queue {
			dist[v] = -1
		}
		queue = queue[:0]
		queue = append(queue, a)
		dist[a] = 0
		prev := make(map[int]int)
		for i := 0; i < len(queue); i++ {
			v := queue[i]
			if v == b {
				break
			}
			for _, w := range g.adj[v] {
				if member[w] && !removed[w] && dist[w] == -1 {
					dist[w] = dist[v] + 1
					prev[w] = v
					queue = append(queue, w)
				}
			}
		}
		if dist[b] == -1 {
			return a
		}
		// Walk back half way from b.
		steps := dist[b] / 2
		v := b
		for i := 0; i < steps; i++ {
			v = prev[v]
		}
		return v
	}

	member := make([]bool, n)
	for v := range dist {
		dist[v] = -1
	}

	var process func(vertices []int, attachTo int)
	process = func(vertices []int, attachTo int) {
		if len(vertices) == 0 {
			return
		}
		if len(vertices) == 1 {
			v := vertices[0]
			if attachTo >= 0 {
				parent[v] = attachTo
			}
			removed[v] = true
			return
		}
		for _, v := range vertices {
			member[v] = true
		}
		// Choose a separator vertex: the midpoint of an approximate longest
		// path (double BFS), which gives good depths on paths, grids and
		// trees; ties broken by degree.
		a := bfsFarthest(vertices[0], member)
		b := bfsFarthest(a, member)
		sep := bfsMiddle(a, b, member)
		for _, v := range vertices {
			member[v] = false
		}
		if attachTo >= 0 {
			parent[sep] = attachTo
		}
		removed[sep] = true
		// Split the remaining vertices into connected components of g minus
		// the removed vertices.
		compID := make(map[int]int)
		var comps [][]int
		for _, s := range vertices {
			if removed[s] {
				continue
			}
			if _, seen := compID[s]; seen {
				continue
			}
			comp := []int{s}
			compID[s] = len(comps)
			for i := 0; i < len(comp); i++ {
				v := comp[i]
				for _, w := range g.adj[v] {
					if removed[w] {
						continue
					}
					if _, seen := compID[w]; !seen {
						compID[w] = len(comps)
						comp = append(comp, w)
					}
				}
			}
			comps = append(comps, comp)
		}
		for _, comp := range comps {
			process(comp, sep)
		}
	}

	for _, comp := range g.ConnectedComponents() {
		process(comp, -1)
	}
	return NewForest(parent)
}

// ValidEliminationForest reports whether f is a valid elimination forest for
// g: every edge of g must connect a vertex with one of its ancestors.
func ValidEliminationForest(g *Graph, f *Forest) bool {
	for _, e := range g.Edges() {
		u, v := e[0], e[1]
		if !f.IsAncestor(u, v) && !f.IsAncestor(v, u) {
			return false
		}
	}
	return true
}
