// Package obs is the observability layer of the serving stack: lock-free
// latency histograms, a stage tracer carried on context.Context, and
// Prometheus text-format exposition helpers.  It is deliberately dependency
// free (standard library only) so every layer — the agg facade, the circuit
// engines and the HTTP server — can record into it without import cycles.
//
// The design constraint is the paper's O(log n)-per-update guarantee: the
// hot paths being observed run in microseconds, so recording must cost a
// handful of nanoseconds (one bucket computation plus one atomic add) and
// must never allocate, and the *un*instrumented paths must not even read a
// clock (engines guard their hooks with a nil check).
package obs

import (
	"math/bits"
	"math/rand/v2"
	"sync/atomic"
	"time"
)

// Log-linear bucketing, HDR-histogram style: each power-of-two octave of
// nanoseconds is split into subCount linear sub-buckets, so the relative
// width of any bucket is at most 1/subCount (12.5%) while the whole range of
// a time.Duration still fits in a few hundred buckets.
const (
	subBits  = 3
	subCount = 1 << subBits // linear sub-buckets per octave

	// NumBuckets covers every uint64 nanosecond value: values below
	// subCount get exact unit buckets, and each of the remaining octaves
	// contributes subCount buckets.
	NumBuckets = (64-subBits)*subCount + subCount
)

// bucketOf maps a nanosecond value to its bucket index.
func bucketOf(v uint64) int {
	if v < subCount {
		return int(v)
	}
	exp := bits.Len64(v) - 1 // 2^exp <= v < 2^(exp+1), exp >= subBits
	return (exp-subBits)*subCount + int(v>>uint(exp-subBits))
}

// BucketBounds returns the half-open nanosecond range [lo, hi) of bucket b.
// Buckets tile the value space: hi of bucket b equals lo of bucket b+1.  The
// final bucket is closed at the top of the uint64 range (hi = MaxUint64,
// inclusive), since its true upper bound 2^64 is not representable.
func BucketBounds(b int) (lo, hi uint64) {
	if b < 2*subCount {
		return uint64(b), uint64(b) + 1
	}
	exp := b/subCount + subBits - 1
	shift := uint(exp - subBits)
	m := uint64(b) - uint64(exp-subBits)*subCount // in [subCount, 2*subCount)
	if b == NumBuckets-1 {
		return m << shift, ^uint64(0)
	}
	return m << shift, (m + 1) << shift
}

// numShards spreads concurrent writers over independent counter arrays so
// goroutines observing similar latencies do not serialise on one cache line.
// Must be a power of two.
const numShards = 8

type histShard struct {
	counts [NumBuckets]atomic.Uint64
	sum    atomic.Int64 // total nanoseconds observed by this shard
}

// Histogram is a lock-free, sharded latency histogram.  Observe may be
// called from any number of goroutines concurrently and never allocates; a
// nil *Histogram discards observations, so call sites need no guards.
type Histogram struct {
	shards [numShards]histShard
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram { return &Histogram{} }

// Observe records one duration.  Negative durations clamp to zero.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	v := uint64(d)
	if d < 0 {
		v = 0
	}
	// rand/v2 reads the runtime's per-thread generator: no locks, no
	// allocation, and unlike a shared round-robin counter it introduces no
	// cross-goroutine contention of its own.
	sh := &h.shards[rand.Uint32()&(numShards-1)]
	sh.counts[bucketOf(v)].Add(1)
	sh.sum.Add(int64(v))
}

// Snapshot is a point-in-time, mergeable copy of a histogram's counters.
type Snapshot struct {
	Count  uint64
	Sum    time.Duration
	Counts [NumBuckets]uint64
}

// Snapshot merges the shards into one consistent-enough view (each counter
// is read atomically; the set of counters is read without a global lock, as
// usual for monitoring counters).  A nil histogram yields an empty snapshot.
func (h *Histogram) Snapshot() Snapshot {
	var s Snapshot
	if h == nil {
		return s
	}
	for i := range h.shards {
		sh := &h.shards[i]
		for b := range sh.counts {
			if c := sh.counts[b].Load(); c != 0 {
				s.Counts[b] += c
				s.Count += c
			}
		}
		s.Sum += time.Duration(sh.sum.Load())
	}
	return s
}

// Merge adds another snapshot into s, so per-replica (or per-endpoint)
// histograms can be aggregated fleet-wide.
func (s *Snapshot) Merge(o *Snapshot) {
	s.Count += o.Count
	s.Sum += o.Sum
	for b := range s.Counts {
		s.Counts[b] += o.Counts[b]
	}
}

// Mean returns the average observed duration (0 when empty).
func (s *Snapshot) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / time.Duration(s.Count)
}

// Quantile estimates the q-quantile (q in [0, 1]) with linear interpolation
// inside the containing bucket; the estimate is within one bucket width
// (≤ 12.5% relative) of the exact order statistic.  Returns 0 when empty.
func (s *Snapshot) Quantile(q float64) time.Duration {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	// 0-based fractional rank over the sorted observations.
	pos := q * float64(s.Count-1)
	cum := uint64(0)
	for b := range s.Counts {
		c := s.Counts[b]
		if c == 0 {
			continue
		}
		if pos < float64(cum+c) {
			lo, hi := BucketBounds(b)
			frac := (pos - float64(cum)) / float64(c)
			return time.Duration(float64(lo) + frac*float64(hi-lo))
		}
		cum += c
	}
	// Numerical fall-through: return the upper bound of the last non-empty
	// bucket.
	for b := NumBuckets - 1; b >= 0; b-- {
		if s.Counts[b] != 0 {
			_, hi := BucketBounds(b)
			return time.Duration(hi)
		}
	}
	return 0
}

// Seconds converts a duration to the float seconds Prometheus expects.
func Seconds(d time.Duration) float64 { return float64(d) / float64(time.Second) }
