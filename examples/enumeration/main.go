// Constant-delay enumeration (Theorem 24): preprocess a sparse database in
// linear time, then stream the answers of a first-order query one by one,
// and keep enumerating after Gaifman-preserving updates.
//
//	go run ./examples/enumeration
package main

import (
	"fmt"

	"repro/internal/compile"
	"repro/internal/enumerate"
	"repro/internal/logic"
	"repro/internal/structure"
	"repro/internal/workload"
)

func main() {
	db := workload.Grid(60, 60, 5)
	a := db.A
	fmt.Printf("grid database: %d elements, %d tuples\n", a.N, a.TupleCount())

	// ϕ(x,y,z) = E(x,y) ∧ E(y,z) ∧ x ≠ z: directed 2-paths with distinct
	// endpoints, with the edge relation open to updates.
	phi := logic.Conj(logic.R("E", "x", "y"), logic.R("E", "y", "z"), logic.Neg(logic.Equal("x", "z")))
	ans, err := enumerate.EnumerateAnswers(a, phi, []string{"x", "y", "z"},
		compile.Options{DynamicRelations: []string{"E"}})
	if err != nil {
		panic(err)
	}
	fmt.Printf("answers: %d\n", ans.Count())

	fmt.Println("first 5 answers (streamed with constant delay):")
	cur := ans.Cursor()
	for i := 0; i < 5; i++ {
		t, ok := cur.Next()
		if !ok {
			break
		}
		fmt.Printf("  (%d, %d, %d)\n", t[0], t[1], t[2])
	}

	// A Gaifman-preserving update: delete one edge of the first answer; the
	// enumeration data structure is maintained in constant time.
	first := ans.Collect(1)[0]
	victim := structure.Tuple{first[0], first[1]}
	if err := ans.SetTuple("E", victim, false); err != nil {
		panic(err)
	}
	fmt.Printf("\nafter deleting the edge (%d,%d): answers = %d\n", victim[0], victim[1], ans.Count())
	if err := ans.SetTuple("E", victim, true); err != nil {
		panic(err)
	}
	fmt.Printf("after re-inserting it:          answers = %d\n", ans.Count())
}
