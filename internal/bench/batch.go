package bench

import (
	"fmt"
	"math/rand"
	"runtime"
	"sort"

	"repro/internal/circuit"
	"repro/internal/compile"
	"repro/internal/dynamicq"
	"repro/internal/semiring"
	"repro/internal/structure"
	"repro/internal/workload"
)

// E13BatchedUpdates measures the batched dynamic-update engine end to end on
// the workload shape where it matters: a hot-key stream of vertex-weight
// updates concentrated on the highest-degree vertices of a preferential-
// attachment graph, driving the weighted 2-path query.  A hub's weight sits
// in the propagation cone of every 2-path through it, so each individual
// update pays an expensive wave; ApplyBatch applies all leaf changes first
// and propagates once per batch in topological-rank order, so repeated
// updates to the same hot keys coalesce and shared gates are recomputed once
// per batch instead of once per update.  The table also reports the
// steady-state heap allocations per update of the core generic-path engine
// (circuit.Dynamic.SetInput), which must stay at zero.
func E13BatchedUpdates(sizes []int, totalUpdates, batchSize, hotKeys int) *Table {
	t := &Table{
		ID:    "E13",
		Title: "Batched dynamic updates (Theorem 8 at request rate)",
		Claim: "applying leaf changes first and propagating once per batch in topological-rank order beats per-update propagation on hot-key streams, with zero steady-state allocations per generic-path engine update",
		Header: []string{
			"n", "updates", "hot keys", "max deg",
			"per-update", fmt.Sprintf("batched(%d)", batchSize), "speedup", "allocs/upd (engine)",
		},
	}
	q := PathQuery()
	for _, n := range sizes {
		db := workload.PreferentialAttachment(n, 2, 11)
		hubs := hotVertices(db, hotKeys)
		r := rand.New(rand.NewSource(int64(n)))
		stream := make([]dynamicq.Change[int64], totalUpdates)
		for i := range stream {
			hub := hubs[r.Intn(len(hubs))]
			stream[i] = dynamicq.WeightChange("u", structure.Tuple{hub.v}, int64(r.Intn(9)+1))
		}

		perQ, err := dynamicq.CompileQuery[int64](semiring.Nat, db.A, db.Weights(), q, compile.Options{})
		if err != nil {
			panic(err)
		}
		batchQ, err := dynamicq.CompileQuery[int64](semiring.Nat, db.A, db.Weights(), q, compile.Options{})
		if err != nil {
			panic(err)
		}

		perDur := timeIt(func() {
			for _, ch := range stream {
				if err := perQ.SetWeight(ch.Weight, ch.Tuple, ch.Value); err != nil {
					panic(err)
				}
			}
		})
		batchDur := timeIt(func() {
			for lo := 0; lo < len(stream); lo += batchSize {
				hi := lo + batchSize
				if hi > len(stream) {
					hi = len(stream)
				}
				if err := batchQ.ApplyBatch(stream[lo:hi]); err != nil {
					panic(err)
				}
			}
		})
		perVal, _ := perQ.ValueClosed()
		batchVal, _ := batchQ.ValueClosed()
		if perVal != batchVal {
			panic(fmt.Sprintf("E13: per-update value %d and batched value %d disagree", perVal, batchVal))
		}

		perRate := float64(totalUpdates) / perDur.Seconds()
		batchRate := float64(totalUpdates) / batchDur.Seconds()
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(n), fmt.Sprint(totalUpdates), fmt.Sprint(len(hubs)), fmt.Sprint(hubs[0].deg),
			fmt.Sprintf("%.0f upd/s", perRate), fmt.Sprintf("%.0f upd/s", batchRate),
			fmt.Sprintf("%.1fx", batchRate/perRate),
			fmt.Sprintf("%.3f", engineAllocsPerUpdate(db, hubs)),
		})
	}
	t.Notes = append(t.Notes,
		"both runs apply the same stream and must end at the same value; batched application is all-or-nothing and observationally equivalent to the per-update loop",
		"hot keys are the vertex weights of the highest-degree vertices: every 2-path through a hub is in its propagation cone, the regime where one wave per batch pays off",
		"allocs/upd measures circuit.Dynamic.SetInput on the generic (ℕ) path after warm-up via runtime.MemStats; the rank-bucket engine reuses all wave state, so it must report 0.000")
	return t
}

type hotVertex struct {
	v   structure.Element
	deg int
}

// hotVertices returns the k highest-degree vertices of the workload graph.
func hotVertices(db *workload.Database, k int) []hotVertex {
	deg := make([]int, db.A.N)
	for _, e := range db.A.Tuples("E") {
		deg[e[0]]++
		deg[e[1]]++
	}
	order := make([]hotVertex, db.A.N)
	for v := range order {
		order[v] = hotVertex{v: v, deg: deg[v]}
	}
	sort.Slice(order, func(a, b int) bool { return order[a].deg > order[b].deg })
	if k > len(order) {
		k = len(order)
	}
	return order[:k]
}

// engineAllocsPerUpdate measures steady-state heap allocations per update of
// the core generic-path engine: circuit.Dynamic.SetInput with prebuilt keys,
// no query-layer bookkeeping.
func engineAllocsPerUpdate(db *workload.Database, hubs []hotVertex) float64 {
	res, err := compile.Compile(db.A, PathQuery(), compile.Options{})
	if err != nil {
		panic(err)
	}
	w := db.Weights()
	dyn := circuit.NewDynamic[int64](res.Circuit, semiring.Nat, compile.NewValuation(res, semiring.Nat, w))
	keys := make([]structure.WeightKey, len(hubs))
	for i, h := range hubs {
		keys[i] = structure.MakeWeightKey("u", structure.Tuple{h.v})
	}
	// Warm-up: let every scratch buffer grow to its steady-state capacity.
	for round := 0; round < 4; round++ {
		for i, k := range keys {
			dyn.SetInput(k, int64(round+i%5+1))
		}
	}
	const updates = 2048
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	for i := 0; i < updates; i++ {
		dyn.SetInput(keys[i%len(keys)], int64(i%7+1))
	}
	runtime.ReadMemStats(&m1)
	return float64(m1.Mallocs-m0.Mallocs) / updates
}
