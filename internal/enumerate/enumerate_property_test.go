package enumerate

import (
	"math/big"
	"math/rand"
	"testing"

	"repro/internal/circuit"
	"repro/internal/compile"
	"repro/internal/logic"
	"repro/internal/structure"
)

// randomQFFormula builds a random quantifier-free formula over E, S, = with
// the given variables, in negation normal form so that the compiled circuit
// stays small.
func randomQFFormula(r *rand.Rand, vars []string, depth int) logic.Formula {
	pick := func() string { return vars[r.Intn(len(vars))] }
	if depth <= 0 || r.Intn(3) == 0 {
		switch r.Intn(5) {
		case 0:
			return logic.R("E", pick(), pick())
		case 1:
			return logic.Neg(logic.R("E", pick(), pick()))
		case 2:
			return logic.R("S", pick())
		case 3:
			return logic.Neg(logic.R("S", pick()))
		default:
			return logic.Neg(logic.Equal(pick(), pick()))
		}
	}
	if r.Intn(2) == 0 {
		return logic.Conj(randomQFFormula(r, vars, depth-1), randomQFFormula(r, vars, depth-1))
	}
	return logic.Disj(randomQFFormula(r, vars, depth-1), randomQFFormula(r, vars, depth-1))
}

// TestEnumerateRandomFormulasMatchesNaive is the randomized counterpart of
// TestEnumerateAnswersStatic: for random quantifier-free formulas, the
// enumerated answer set equals the materialised answer set, without
// repetitions, and Count/Empty are consistent.
func TestEnumerateRandomFormulasMatchesNaive(t *testing.T) {
	r := rand.New(rand.NewSource(77))
	for round := 0; round < 30; round++ {
		a := enumerationStructure(9, 20, int64(round))
		vars := []string{"x", "y"}
		phi := randomQFFormula(r, vars, 2)
		ans, err := EnumerateAnswers(a, phi, vars, compile.Options{})
		if err != nil {
			t.Fatalf("round %d (%s): %v", round, phi, err)
		}
		checkAnswers(t, ans, a, phi, vars)
	}
}

// TestEnumeratorRejectsNonTopologicalCircuits mirrors the circuit.Dynamic
// property: a circuit whose gate ids are not topologically ordered must be
// rejected at preprocessing time, not silently enumerated in the wrong order.
func TestEnumeratorRejectsNonTopologicalCircuits(t *testing.T) {
	c := &circuit.Circuit{
		Gates: []circuit.Gate{
			{Kind: circuit.KindAdd, Children: []int{1}},
			{Kind: circuit.KindConst, N: big.NewInt(2)},
		},
		Output: 0,
	}
	defer func() {
		if recover() == nil {
			t.Errorf("New accepted a non-topological circuit")
		}
	}()
	New(c, nil)
}

// TestAnswersApplyBatch drives random batches of Gaifman-preserving updates
// through ApplyBatch and a twin enumerator applying the same changes one at
// a time, comparing both against a structure rebuilt from scratch.
func TestAnswersApplyBatch(t *testing.T) {
	r := rand.New(rand.NewSource(211))
	for round := 0; round < 8; round++ {
		a := enumerationStructure(8, 18, int64(300+round))
		vars := []string{"x", "y"}
		phi := logic.Conj(
			logic.R("E", "x", "y"),
			logic.R("S", "x"),
			logic.Neg(logic.R("S", "y")),
		)
		opts := compile.Options{DynamicRelations: []string{"S"}}
		batched, err := EnumerateAnswers(a, phi, vars, opts)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		sequential, err := EnumerateAnswers(a, phi, vars, opts)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		mirror := a.Clone()
		for step := 0; step < 8; step++ {
			batch := make([]TupleChange, r.Intn(5)+1)
			for i := range batch {
				// Repeated tuples within a batch are deliberate: the last
				// change must win.
				batch[i] = TupleChange{Rel: "S", Tuple: structure.Tuple{r.Intn(a.N)}, Present: r.Intn(2) == 0}
			}
			if err := batched.ApplyBatch(batch); err != nil {
				t.Fatalf("round %d step %d: ApplyBatch: %v", round, step, err)
			}
			for _, ch := range batch {
				if err := sequential.SetTuple(ch.Rel, ch.Tuple, ch.Present); err != nil {
					t.Fatalf("round %d step %d: SetTuple: %v", round, step, err)
				}
				setMirror(mirror, ch.Rel, ch.Tuple, ch.Present)
			}
			if batched.Count() != sequential.Count() {
				t.Fatalf("round %d step %d: batched count %d, sequential %d",
					round, step, batched.Count(), sequential.Count())
			}
			checkAnswers(t, batched, mirror, phi, vars)
		}
		// All-or-nothing: a batch with any invalid change applies nothing.
		before := batched.Count()
		bad := []TupleChange{
			{Rel: "S", Tuple: structure.Tuple{0}, Present: before == 0},
			{Rel: "E", Tuple: structure.Tuple{0, 1}, Present: true}, // E is not dynamic
		}
		if err := batched.ApplyBatch(bad); err == nil {
			t.Fatalf("round %d: invalid batch accepted", round)
		}
		if got := batched.Count(); got != before {
			t.Fatalf("round %d: invalid batch partially applied: count %d, want %d", round, got, before)
		}
	}
}

// TestEnumerateRandomDynamicUpdates interleaves random Gaifman-preserving
// updates to the unary predicate S with re-enumeration, comparing against a
// structure that is rebuilt from scratch after every update.
func TestEnumerateRandomDynamicUpdates(t *testing.T) {
	r := rand.New(rand.NewSource(101))
	for round := 0; round < 10; round++ {
		a := enumerationStructure(8, 18, int64(200+round))
		vars := []string{"x", "y"}
		phi := logic.Conj(
			logic.R("E", "x", "y"),
			logic.R("S", "x"),
			logic.Neg(logic.R("S", "y")),
		)
		ans, err := EnumerateAnswers(a, phi, vars, compile.Options{DynamicRelations: []string{"S"}})
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		// mirror tracks the intended current state of S.
		mirror := a.Clone()
		for step := 0; step < 12; step++ {
			v := r.Intn(a.N)
			present := r.Intn(2) == 0
			if err := ans.SetTuple("S", structure.Tuple{v}, present); err != nil {
				t.Fatalf("round %d step %d: %v", round, step, err)
			}
			setMirror(mirror, "S", structure.Tuple{v}, present)
			checkAnswers(t, ans, mirror, phi, vars)
		}
	}
}
