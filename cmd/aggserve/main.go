// Command aggserve is the long-lived query-serving daemon: it loads one or
// more databases at startup, compiles queries on demand through the public
// repro/agg facade into an LRU cache of compiled circuits, and serves
// concurrent clients over HTTP/JSON — semiring evaluation, point queries,
// dynamic-update sessions and constant-delay enumeration all amortise one
// compilation (Theorem 6) across many requests.  Client disconnects cancel
// the work they were waiting for.
//
// Usage:
//
//	aggserve -kind grid -n 4096 -listen :8080
//	aggserve -db traffic=roads.txt -db social=graph.txt
//	agggen -kind bounded-degree -n 10000 | aggserve -stdin
//
//	curl -X POST localhost:8080/query \
//	  -d '{"expr":"sum x, y . [E(x,y)] * w(x,y)","semiring":"natural"}'
//	curl -X POST localhost:8080/batch \
//	  -d '{"session":"s","updates":[{"weight":"w","tuple":[0,1],"value":7}]}'
//	curl localhost:8080/stats
//
// See the README for the full endpoint reference.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/agg"
	"repro/internal/server"
)

// dbFlags collects repeated -db name=path mounts.
type dbFlags []string

func (d *dbFlags) String() string { return strings.Join(*d, ",") }

func (d *dbFlags) Set(v string) error {
	if !strings.Contains(v, "=") {
		return fmt.Errorf("-db expects name=path, got %q", v)
	}
	*d = append(*d, v)
	return nil
}

func main() {
	var dbs dbFlags
	listen := flag.String("listen", ":8080", "address to serve HTTP on")
	flag.Var(&dbs, "db", "mount a database: name=path (dbio format, repeatable)")
	stdin := flag.Bool("stdin", false, "mount the database read from stdin as \"default\"")
	kind := flag.String("kind", "grid", "generated workload kind for the default database (used when no -db/-stdin)")
	n := flag.Int("n", 2000, "generated database size")
	seed := flag.Int64("seed", 1, "random seed for the generated database")
	workers := flag.Int("workers", 0, "worker goroutines per circuit evaluation (0 = GOMAXPROCS)")
	cacheSize := flag.Int("cache", 128, "maximum number of cached compiled queries")
	maxVars := flag.Int("maxvars", 0, "compiler MaxVars bound (0 = default)")
	flag.Parse()

	srv := server.New(server.Options{CacheSize: *cacheSize, Workers: *workers, MaxVars: *maxVars})

	if len(dbs) > 0 && *stdin {
		fmt.Fprintln(os.Stderr, "aggserve: -db and -stdin are mutually exclusive")
		os.Exit(2)
	}
	switch {
	case len(dbs) > 0:
		for _, spec := range dbs {
			name, path, _ := strings.Cut(spec, "=")
			db, err := agg.ReadDatabaseFile(path)
			if err != nil {
				fmt.Fprintf(os.Stderr, "aggserve: loading %s: %v\n", spec, err)
				os.Exit(1)
			}
			srv.MountDatabaseValue(name, db)
			fmt.Printf("mounted %s: n=%d tuples=%d\n", name, db.Elements(), db.TupleCount())
		}
	default:
		db, err := agg.Load(agg.Source{Stdin: *stdin, Kind: *kind, N: *n, Seed: *seed})
		if err != nil {
			fmt.Fprintf(os.Stderr, "aggserve: %v\n", err)
			os.Exit(1)
		}
		srv.MountDatabaseValue("default", db)
		fmt.Printf("mounted default: n=%d tuples=%d\n", db.Elements(), db.TupleCount())
	}

	httpSrv := &http.Server{Addr: *listen, Handler: srv.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	fmt.Printf("aggserve listening on %s (semirings: %v)\n", *listen, agg.SemiringNames())

	select {
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintf(os.Stderr, "aggserve: %v\n", err)
			os.Exit(1)
		}
	case <-ctx.Done():
		fmt.Println("aggserve: shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(shutdownCtx); err != nil {
			fmt.Fprintf(os.Stderr, "aggserve: shutdown: %v\n", err)
			os.Exit(1)
		}
	}
}
