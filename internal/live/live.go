// Package live is the push half of aggserve's materialized-view story: a
// per-session Hub that turns committed MVCC epochs into fan-out
// notifications for subscribers watching the session's aggregate value, a
// point of it, its answer count, or its answer-set delta.
//
// The design center is the writer/reader decoupling the paper's O(log n)
// update bound deserves:
//
//   - The writer's only obligation is Notify(epoch) after each commit.  With
//     zero subscribers that is one atomic load and a return — no clock read,
//     no allocation — so an unobserved session pays nothing.
//   - One evaluator goroutine per hub evaluates at most once per epoch per
//     distinct subscription key, from a snapshot the session layer pins, and
//     shares the result across every subscriber of that key.
//   - Each subscriber owns a bounded one-slot mailbox where the latest epoch
//     wins: a slow consumer coalesces intermediate epochs (deltas merge into
//     a net change, scalar kinds keep only the newest value) and can never
//     apply backpressure to the writer or to other subscribers.
package live

import (
	"context"
	"errors"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// ErrClosed terminates Sub.Next when the hub shuts down (session closed).
var ErrClosed = errors.New("live: hub closed")

// ErrSubClosed terminates Sub.Next after the subscription itself was closed.
var ErrSubClosed = errors.New("live: subscription closed")

// Kind selects what a subscription watches.
type Kind uint8

const (
	// KindValue watches the closed query's value.
	KindValue Kind = iota
	// KindPoint watches the query value at one fixed argument tuple.
	KindPoint
	// KindCount watches the answer count of an enumerable query.
	KindCount
	// KindDelta watches the answer set of an enumerable query as
	// added/removed tuples per epoch.
	KindDelta
)

// String names the kind the way the wire surface spells it.
func (k Kind) String() string {
	switch k {
	case KindValue:
		return "value"
	case KindPoint:
		return "point"
	case KindCount:
		return "count"
	case KindDelta:
		return "delta"
	}
	return "unknown"
}

// Key identifies what a subscriber watches.  Subscribers with equal keys
// share one evaluation per epoch.
type Key struct {
	Kind Kind
	// Args is the encoded point-argument tuple (EncodeArgs), empty for the
	// other kinds.
	Args string
}

// EncodeArgs canonicalises a point-argument tuple into the Key.Args form.
func EncodeArgs(args []int) string {
	if len(args) == 0 {
		return ""
	}
	b := make([]byte, 0, len(args)*4)
	for i, a := range args {
		if i > 0 {
			b = append(b, ',')
		}
		b = strconv.AppendInt(b, int64(a), 10)
	}
	return string(b)
}

// Request is one key the evaluator must evaluate this round.  Full asks for
// the complete answer set alongside the incremental delta, because at least
// one subscriber of the key needs an initial (or reset) snapshot.
type Request struct {
	Key  Key
	Full bool
}

// Result is one key's evaluation at one committed epoch.
type Result struct {
	Epoch uint64
	// Value holds the query value for KindValue/KindPoint.
	Value string
	// Count holds the answer count for KindCount.
	Count int64
	// Full marks a delta reset: Answers carries the complete answer set.
	Full    bool
	Answers [][]int
	// Added and Removed carry the net answer-set change since the previous
	// evaluated epoch for KindDelta.
	Added   [][]int
	Removed [][]int
	// Increments reports whether Added/Removed are valid relative to the
	// previous evaluated epoch.  On a key's first evaluation it is false and
	// Full must be set: every subscriber then takes the reset.
	Increments bool
	// Stamp is the wall-clock (UnixNano) of the commit notification that
	// triggered this evaluation, 0 when the evaluation was not driven by a
	// fresh commit (initial snapshots).  It feeds push-latency metrics.
	Stamp int64
	// Coalesced reports, on delivery, how many earlier evaluated results
	// were folded into this one because the subscriber lagged.
	Coalesced uint64
	// Err is a terminal per-key evaluation error.
	Err error
}

// EvalFunc evaluates every requested key at one pinned snapshot and returns
// the snapshot's epoch plus one Result per request, aligned by index.  It is
// only ever called from the hub's single evaluator goroutine.
type EvalFunc func(reqs []Request) (uint64, []Result, error)

// Hub fans committed epochs out to the subscribers of one session.
type Hub struct {
	eval EvalFunc

	mu     sync.Mutex
	subs   map[*Sub]struct{}
	closed bool

	// nsubs mirrors len(subs) for the writer's lock-free Notify fast path.
	nsubs    atomic.Int32
	initials atomic.Int32

	latest atomic.Uint64
	stamp  atomic.Int64
	wake   chan struct{}

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}

	// evaluated is the highest epoch already fanned out; evaluator
	// goroutine only.
	evaluated uint64

	pushes    atomic.Int64
	coalesced atomic.Int64
}

// NewHub starts a hub (and its evaluator goroutine) around an EvalFunc.
func NewHub(eval EvalFunc) *Hub {
	h := &Hub{
		eval: eval,
		subs: make(map[*Sub]struct{}),
		wake: make(chan struct{}, 1),
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	go h.run()
	return h
}

// Notify tells the hub that the session committed the given epoch.  With no
// subscribers it is one atomic load; it never blocks and never allocates.
func (h *Hub) Notify(epoch uint64) {
	if h.nsubs.Load() == 0 {
		return
	}
	h.stamp.Store(time.Now().UnixNano())
	for {
		cur := h.latest.Load()
		if epoch <= cur || h.latest.CompareAndSwap(cur, epoch) {
			break
		}
	}
	select {
	case h.wake <- struct{}{}:
	default:
	}
}

// Subscribe registers a subscriber for one key.  With initial true the
// subscriber is owed a snapshot of the current state even if no commit
// arrives; with initial false delivery starts at the first epoch after
// resume (the epoch the client reports having seen).
func (h *Hub) Subscribe(key Key, resume uint64, initial bool) (*Sub, error) {
	s := &Sub{
		h:       h,
		key:     key,
		signal:  make(chan struct{}, 1),
		initial: initial,
	}
	if !initial {
		s.last = resume
	}
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return nil, ErrClosed
	}
	h.subs[s] = struct{}{}
	h.nsubs.Add(1)
	h.mu.Unlock()
	if initial {
		h.initials.Add(1)
		select {
		case h.wake <- struct{}{}:
		default:
		}
	}
	return s, nil
}

// Subscribers reports the number of live subscriptions.
func (h *Hub) Subscribers() int { return int(h.nsubs.Load()) }

// Pushes reports results offered to mailboxes since the hub started.
func (h *Hub) Pushes() int64 { return h.pushes.Load() }

// Coalesced reports offers that merged into an undelivered mailbox slot.
func (h *Hub) Coalesced() int64 { return h.coalesced.Load() }

// Close terminates every subscription (their pending update, if any, is
// still delivered first, then Next returns ErrClosed) and stops the
// evaluator.  Close blocks until the evaluator goroutine has exited and is
// idempotent.
func (h *Hub) Close() {
	h.mu.Lock()
	if !h.closed {
		h.closed = true
		for s := range h.subs {
			s.terminate(ErrClosed)
		}
	}
	h.mu.Unlock()
	h.stopOnce.Do(func() { close(h.stop) })
	<-h.done
}

func (h *Hub) run() {
	defer close(h.done)
	for {
		select {
		case <-h.stop:
			return
		case <-h.wake:
		}
		for h.initials.Load() > 0 || h.latest.Load() > h.evaluated {
			if !h.evalOnce() {
				return
			}
			select {
			case <-h.stop:
				return
			default:
			}
		}
	}
}

// evalOnce evaluates all current keys at one snapshot and offers the results
// to their subscribers.  It returns false when the hub must shut down.
func (h *Hub) evalOnce() bool {
	target := h.latest.Load()
	stamp := h.stamp.Load()

	type group struct {
		req  Request
		subs []*Sub
	}
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return false
	}
	if len(h.subs) == 0 {
		if target > h.evaluated {
			h.evaluated = target
		}
		h.mu.Unlock()
		return true
	}
	byKey := make(map[Key]*group)
	var order []*group
	for s := range h.subs {
		s.mu.Lock()
		closed, init := s.closed, s.initial
		s.mu.Unlock()
		if closed {
			continue
		}
		g := byKey[s.key]
		if g == nil {
			g = &group{req: Request{Key: s.key}}
			byKey[s.key] = g
			order = append(order, g)
		}
		g.subs = append(g.subs, s)
		if init {
			g.req.Full = true
		}
	}
	h.mu.Unlock()
	if len(order) == 0 {
		if target > h.evaluated {
			h.evaluated = target
		}
		return true
	}

	reqs := make([]Request, len(order))
	for i, g := range order {
		reqs[i] = g.req
	}
	epoch, results, err := h.eval(reqs)
	if err != nil {
		h.fail(err)
		return false
	}
	// Stamp only results driven by a fresh commit; a pure initial-snapshot
	// round has no commit to measure push latency against.
	var stampOut int64
	if epoch > h.evaluated {
		stampOut = stamp
	}
	for i, g := range order {
		r := results[i]
		r.Stamp = stampOut
		if r.Err != nil {
			for _, s := range g.subs {
				s.terminate(r.Err)
			}
			continue
		}
		for _, s := range g.subs {
			s.offer(r)
		}
	}
	if epoch > h.evaluated {
		h.evaluated = epoch
	}
	return true
}

// fail terminates every subscriber with the evaluation error and closes the
// hub to new subscriptions.
func (h *Hub) fail(err error) {
	h.mu.Lock()
	h.closed = true
	for s := range h.subs {
		s.terminate(err)
	}
	h.mu.Unlock()
}

// Sub is one subscription: a one-slot mailbox where the latest epoch wins.
type Sub struct {
	h   *Hub
	key Key

	signal chan struct{}

	mu        sync.Mutex
	closed    bool
	err       error
	initial   bool
	last      uint64 // highest epoch offered
	has       bool
	coalesced uint64
	box       box
}

// box is the pending (undelivered) state of a mailbox.  Delta increments are
// kept as net tuple maps so consecutive epochs merge in O(change), and a
// pending full reset absorbs increments in place.
type box struct {
	epoch uint64
	stamp int64
	value string
	count int64
	full  bool
	set   map[string][]int
	add   map[string][]int
	rem   map[string][]int
}

func tupleKey(t []int) string {
	b := make([]byte, 0, len(t)*4)
	for i, v := range t {
		if i > 0 {
			b = append(b, ',')
		}
		b = strconv.AppendInt(b, int64(v), 10)
	}
	return string(b)
}

func tupleMap(ts [][]int) map[string][]int {
	m := make(map[string][]int, len(ts))
	for _, t := range ts {
		m[tupleKey(t)] = t
	}
	return m
}

func sortedTuples(m map[string][]int) [][]int {
	if len(m) == 0 {
		return nil
	}
	out := make([][]int, 0, len(m))
	for _, t := range m {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		for k := 0; k < len(a) && k < len(b); k++ {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return len(a) < len(b)
	})
	return out
}

// offer merges one evaluated result into the mailbox.  The evaluator is the
// only caller.
func (s *Sub) offer(r Result) {
	s.mu.Lock()
	if s.closed || s.err != nil {
		s.mu.Unlock()
		return
	}
	if !s.initial && r.Epoch <= s.last {
		s.mu.Unlock()
		return
	}
	reset := s.initial || (s.key.Kind == KindDelta && !r.Increments)
	if reset && s.key.Kind == KindDelta && !r.Full {
		// This subscriber needs the full answer set (it joined after the
		// round's requests were collected) but the result lacks one; the
		// evaluator will run another round for it (initials is still
		// non-zero).
		s.mu.Unlock()
		return
	}
	wasInitial := s.initial
	if s.has {
		s.coalesced++
		s.h.coalesced.Add(1)
	}
	s.merge(r, reset)
	s.has = true
	if r.Epoch > s.last {
		s.last = r.Epoch
	}
	if wasInitial {
		s.initial = false
		s.h.initials.Add(-1)
	}
	s.h.pushes.Add(1)
	s.mu.Unlock()
	select {
	case s.signal <- struct{}{}:
	default:
	}
}

// merge folds a result into the box; the caller holds s.mu.
func (s *Sub) merge(r Result, reset bool) {
	s.box.epoch = r.Epoch
	s.box.stamp = r.Stamp
	switch s.key.Kind {
	case KindValue, KindPoint:
		s.box.value = r.Value
	case KindCount:
		s.box.count = r.Count
	case KindDelta:
		switch {
		case reset:
			// Initial or resume-reset delivery: the full current answer set
			// replaces anything pending.
			s.box.full = true
			s.box.set = tupleMap(r.Answers)
			s.box.add, s.box.rem = nil, nil
		case s.box.full:
			// A pending reset absorbs increments in place.
			for _, t := range r.Added {
				s.box.set[tupleKey(t)] = t
			}
			for _, t := range r.Removed {
				delete(s.box.set, tupleKey(t))
			}
		default:
			if s.box.add == nil {
				s.box.add = make(map[string][]int, len(r.Added))
			}
			if s.box.rem == nil {
				s.box.rem = make(map[string][]int, len(r.Removed))
			}
			// Net-merge consecutive deltas: an add cancels a pending remove
			// and vice versa.
			for _, t := range r.Added {
				k := tupleKey(t)
				if _, ok := s.box.rem[k]; ok {
					delete(s.box.rem, k)
				} else {
					s.box.add[k] = t
				}
			}
			for _, t := range r.Removed {
				k := tupleKey(t)
				if _, ok := s.box.add[k]; ok {
					delete(s.box.add, k)
				} else {
					s.box.rem[k] = t
				}
			}
		}
	}
}

// terminate sets the subscription's terminal error; a pending update is
// still delivered before Next reports it.
func (s *Sub) terminate(err error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	if s.err == nil {
		s.err = err
	}
	if s.initial {
		s.initial = false
		s.h.initials.Add(-1)
	}
	s.mu.Unlock()
	select {
	case s.signal <- struct{}{}:
	default:
	}
}

// Next blocks for the next coalesced update.  It returns the subscription's
// terminal error (ErrClosed after hub shutdown, ErrSubClosed after Close, a
// per-key evaluation error otherwise) once no update is pending, or the
// context's error when ctx ends first.
func (s *Sub) Next(ctx context.Context) (Result, error) {
	for {
		s.mu.Lock()
		if s.has {
			r := s.take()
			s.mu.Unlock()
			return r, nil
		}
		if s.err != nil {
			err := s.err
			s.mu.Unlock()
			return Result{}, err
		}
		if s.closed {
			s.mu.Unlock()
			return Result{}, ErrSubClosed
		}
		s.mu.Unlock()
		select {
		case <-ctx.Done():
			return Result{}, ctx.Err()
		case <-s.signal:
		}
	}
}

// take materialises and clears the pending box; the caller holds s.mu.
func (s *Sub) take() Result {
	r := Result{
		Epoch:     s.box.epoch,
		Stamp:     s.box.stamp,
		Coalesced: s.coalesced,
	}
	switch s.key.Kind {
	case KindValue, KindPoint:
		r.Value = s.box.value
	case KindCount:
		r.Count = s.box.count
	case KindDelta:
		if s.box.full {
			r.Full = true
			r.Answers = sortedTuples(s.box.set)
		} else {
			r.Added = sortedTuples(s.box.add)
			r.Removed = sortedTuples(s.box.rem)
		}
	}
	s.box = box{}
	s.has = false
	s.coalesced = 0
	return r
}

// Close unsubscribes.  Idempotent; a concurrent or later Next returns
// ErrSubClosed (after delivering nothing further).
func (s *Sub) Close() {
	s.h.mu.Lock()
	if _, ok := s.h.subs[s]; ok {
		delete(s.h.subs, s)
		s.h.nsubs.Add(-1)
	}
	s.h.mu.Unlock()
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		if s.initial {
			s.initial = false
			s.h.initials.Add(-1)
		}
	}
	s.mu.Unlock()
	select {
	case s.signal <- struct{}{}:
	default:
	}
}
