// Package structure defines relational structures (databases) with
// semiring-valued weight functions, and their Gaifman graphs.
//
// A Σ(w)-structure of the paper is represented here as a Structure (the
// relational part, fixed at compile time) plus a Weights assignment (the
// semiring-valued part, which is an input of compiled circuits and may be
// updated dynamically).
package structure

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/graph"
)

// Element is a database element.  Domains are always {0, ..., n-1}.
type Element = int

// Tuple is a tuple of database elements.
type Tuple []Element

// Key encodes a tuple as a map key.
func (t Tuple) Key() string {
	var b strings.Builder
	for i, e := range t {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", e)
	}
	return b.String()
}

// Equal reports element-wise equality.
func (t Tuple) Equal(u Tuple) bool {
	if len(t) != len(u) {
		return false
	}
	for i := range t {
		if t[i] != u[i] {
			return false
		}
	}
	return true
}

// Clone returns a copy of the tuple.
func (t Tuple) Clone() Tuple { return append(Tuple(nil), t...) }

// RelSymbol declares a relation symbol.
type RelSymbol struct {
	Name  string
	Arity int
}

// WeightSymbol declares a weight symbol: a function from tuples to semiring
// elements.  Weight symbols of arity ≥ 1 may only assign non-zero weights to
// tuples that appear in some relation of matching arity (the paper's
// requirement on Σ(w)-structures); this is validated by Weights.Validate.
type WeightSymbol struct {
	Name  string
	Arity int
}

// Signature is a relational signature together with weight symbols.
//
// Function symbols are not part of the public signature; the paper notes
// that functions can always be encoded by relations (their graphs), and the
// internal compilation pipeline introduces its own unary functions when
// applying the degeneracy encoding of Lemma 37.
type Signature struct {
	Relations []RelSymbol
	Weights   []WeightSymbol

	relIndex    map[string]int
	weightIndex map[string]int
}

// NewSignature builds a signature and validates symbol names for
// uniqueness.
func NewSignature(relations []RelSymbol, weights []WeightSymbol) (*Signature, error) {
	s := &Signature{
		Relations:   relations,
		Weights:     weights,
		relIndex:    make(map[string]int),
		weightIndex: make(map[string]int),
	}
	for i, r := range relations {
		if r.Arity < 1 {
			return nil, fmt.Errorf("structure: relation %q has arity %d; arities must be ≥ 1", r.Name, r.Arity)
		}
		if _, dup := s.relIndex[r.Name]; dup {
			return nil, fmt.Errorf("structure: duplicate relation symbol %q", r.Name)
		}
		s.relIndex[r.Name] = i
	}
	for i, w := range weights {
		if w.Arity < 0 {
			return nil, fmt.Errorf("structure: weight %q has negative arity", w.Name)
		}
		if _, dup := s.weightIndex[w.Name]; dup {
			return nil, fmt.Errorf("structure: duplicate weight symbol %q", w.Name)
		}
		if _, clash := s.relIndex[w.Name]; clash {
			return nil, fmt.Errorf("structure: weight symbol %q clashes with a relation symbol", w.Name)
		}
		s.weightIndex[w.Name] = i
	}
	return s, nil
}

// MustSignature is NewSignature that panics on error; intended for tests and
// examples with literal signatures.
func MustSignature(relations []RelSymbol, weights []WeightSymbol) *Signature {
	s, err := NewSignature(relations, weights)
	if err != nil {
		panic(err)
	}
	return s
}

// Relation returns the declaration of the named relation symbol.
func (s *Signature) Relation(name string) (RelSymbol, bool) {
	i, ok := s.relIndex[name]
	if !ok {
		return RelSymbol{}, false
	}
	return s.Relations[i], true
}

// Weight returns the declaration of the named weight symbol.
func (s *Signature) Weight(name string) (WeightSymbol, bool) {
	i, ok := s.weightIndex[name]
	if !ok {
		return WeightSymbol{}, false
	}
	return s.Weights[i], true
}

// WithWeights returns a copy of the signature with additional weight
// symbols appended (used by the free-variable reduction of Theorem 8, which
// introduces fresh unary weight symbols v_1, ..., v_k).
func (s *Signature) WithWeights(extra ...WeightSymbol) (*Signature, error) {
	return NewSignature(s.Relations, append(append([]WeightSymbol(nil), s.Weights...), extra...))
}

// Structure is a finite relational structure over a signature: a domain
// {0..N-1} and, for each relation symbol, the set of tuples it contains.
type Structure struct {
	Sig *Signature
	N   int

	// tuples[rel] lists the tuples of the relation, in insertion order.
	tuples map[string][]Tuple
	// index[rel] supports O(1) membership tests.
	index map[string]map[string]bool

	gaifman *graph.Graph
}

// NewStructure returns an empty structure with the given domain size.
func NewStructure(sig *Signature, n int) *Structure {
	return &Structure{
		Sig:    sig,
		N:      n,
		tuples: make(map[string][]Tuple),
		index:  make(map[string]map[string]bool),
	}
}

// AddTuple inserts a tuple into the named relation.  Duplicate insertions
// are ignored.  Adding tuples invalidates any previously computed Gaifman
// graph.
func (a *Structure) AddTuple(rel string, tuple ...Element) error {
	decl, ok := a.Sig.Relation(rel)
	if !ok {
		return fmt.Errorf("structure: unknown relation %q", rel)
	}
	if len(tuple) != decl.Arity {
		return fmt.Errorf("structure: relation %q has arity %d, got tuple of length %d", rel, decl.Arity, len(tuple))
	}
	for _, e := range tuple {
		if e < 0 || e >= a.N {
			return fmt.Errorf("structure: element %d out of domain [0,%d)", e, a.N)
		}
	}
	t := Tuple(tuple).Clone()
	key := t.Key()
	if a.index[rel] == nil {
		a.index[rel] = make(map[string]bool)
	}
	if a.index[rel][key] {
		return nil
	}
	a.index[rel][key] = true
	a.tuples[rel] = append(a.tuples[rel], t)
	a.gaifman = nil
	return nil
}

// MustAddTuple is AddTuple that panics on error.
func (a *Structure) MustAddTuple(rel string, tuple ...Element) {
	if err := a.AddTuple(rel, tuple...); err != nil {
		panic(err)
	}
}

// RemoveTuple deletes a tuple from the named relation; removing an absent
// tuple is a no-op.  The cost is linear in the relation's size, and any
// previously computed Gaifman graph is invalidated.
func (a *Structure) RemoveTuple(rel string, tuple ...Element) error {
	decl, ok := a.Sig.Relation(rel)
	if !ok {
		return fmt.Errorf("structure: unknown relation %q", rel)
	}
	if len(tuple) != decl.Arity {
		return fmt.Errorf("structure: relation %q has arity %d, got tuple of length %d", rel, decl.Arity, len(tuple))
	}
	key := Tuple(tuple).Key()
	if a.index[rel] == nil || !a.index[rel][key] {
		return nil
	}
	delete(a.index[rel], key)
	kept := a.tuples[rel][:0]
	for _, t := range a.tuples[rel] {
		if t.Key() != key {
			kept = append(kept, t)
		}
	}
	a.tuples[rel] = kept
	a.gaifman = nil
	return nil
}

// HasTuple reports whether the named relation contains the tuple.
func (a *Structure) HasTuple(rel string, tuple ...Element) bool {
	idx := a.index[rel]
	if idx == nil {
		return false
	}
	return idx[Tuple(tuple).Key()]
}

// Tuples returns the tuples of the named relation.  The returned slice must
// not be modified.
func (a *Structure) Tuples(rel string) []Tuple { return a.tuples[rel] }

// TupleCount returns the total number of tuples over all relations, which
// for structures from a bounded-expansion class is linear in N.
func (a *Structure) TupleCount() int {
	total := 0
	for _, ts := range a.tuples {
		total += len(ts)
	}
	return total
}

// Gaifman returns the Gaifman graph of the structure: vertices are domain
// elements; two distinct elements are adjacent when they occur together in
// some tuple of some relation.  The graph is cached until the structure is
// modified.
func (a *Structure) Gaifman() *graph.Graph {
	if a.gaifman != nil {
		return a.gaifman
	}
	g := graph.New(a.N)
	for _, ts := range a.tuples {
		for _, t := range ts {
			for i := 0; i < len(t); i++ {
				for j := i + 1; j < len(t); j++ {
					g.AddEdge(t[i], t[j])
				}
			}
		}
	}
	a.gaifman = g
	return g
}

// MaxArity returns the maximum relation arity used by the signature.
func (a *Structure) MaxArity() int {
	max := 0
	for _, r := range a.Sig.Relations {
		if r.Arity > max {
			max = r.Arity
		}
	}
	return max
}

// Clone returns a deep copy of the structure (sharing the signature).
func (a *Structure) Clone() *Structure {
	b := NewStructure(a.Sig, a.N)
	for rel, ts := range a.tuples {
		for _, t := range ts {
			b.MustAddTuple(rel, t...)
		}
	}
	return b
}

// ElementsOf returns the sorted set of elements occurring in a relation.
func (a *Structure) ElementsOf(rel string) []Element {
	set := map[Element]bool{}
	for _, t := range a.tuples[rel] {
		for _, e := range t {
			set[e] = true
		}
	}
	out := make([]Element, 0, len(set))
	for e := range set {
		out = append(out, e)
	}
	sort.Ints(out)
	return out
}

// ---------------------------------------------------------------------------
// Weight assignments
// ---------------------------------------------------------------------------

// WeightKey identifies a single weight input: a weight symbol applied to a
// tuple of elements.  These are the inputs of the circuits produced by the
// compiler (the pairs (w, a) of the paper).
type WeightKey struct {
	Weight string
	Tuple  string // Tuple.Key() of the argument tuple
}

// MakeWeightKey builds the key for weight symbol w applied to tuple t.
func MakeWeightKey(w string, t Tuple) WeightKey {
	return WeightKey{Weight: w, Tuple: t.Key()}
}

// Weights assigns semiring values to weight inputs.  Missing entries are
// implicitly the semiring zero.
type Weights[T any] struct {
	vals map[WeightKey]T
}

// NewWeights returns an empty weight assignment.
func NewWeights[T any]() *Weights[T] {
	return &Weights[T]{vals: make(map[WeightKey]T)}
}

// Set assigns w(tuple) = value.
func (w *Weights[T]) Set(weight string, tuple Tuple, value T) {
	w.vals[MakeWeightKey(weight, tuple)] = value
}

// Get returns w(tuple) and whether it was explicitly set.
func (w *Weights[T]) Get(weight string, tuple Tuple) (T, bool) {
	v, ok := w.vals[MakeWeightKey(weight, tuple)]
	return v, ok
}

// GetKey returns the value for a pre-built key.
func (w *Weights[T]) GetKey(k WeightKey) (T, bool) {
	v, ok := w.vals[k]
	return v, ok
}

// Len returns the number of explicitly set weights.
func (w *Weights[T]) Len() int { return len(w.vals) }

// Clone returns an independent copy of the assignment; the values themselves
// are shared (weights are treated as immutable semiring elements).
func (w *Weights[T]) Clone() *Weights[T] {
	out := NewWeights[T]()
	for k, v := range w.vals {
		out.vals[k] = v
	}
	return out
}

// ForEach iterates over all explicitly set weights.
func (w *Weights[T]) ForEach(fn func(k WeightKey, v T)) {
	for k, v := range w.vals {
		fn(k, v)
	}
}

// Validate checks the paper's requirement that weight symbols of arity ≥ 1
// assign non-zero values only to tuples present in some relation of matching
// arity (for arity 1, to any domain element), and that arities match the
// signature.  isZero decides zero-ness of values.
func (w *Weights[T]) Validate(a *Structure, isZero func(T) bool) error {
	var err error
	w.ForEach(func(k WeightKey, v T) {
		if err != nil {
			return
		}
		decl, ok := a.Sig.Weight(k.Weight)
		if !ok {
			err = fmt.Errorf("structure: weight value set for undeclared weight symbol %q", k.Weight)
			return
		}
		t := parseTupleKey(k.Tuple)
		if len(t) != decl.Arity {
			err = fmt.Errorf("structure: weight %q has arity %d but value set for tuple of length %d", k.Weight, decl.Arity, len(t))
			return
		}
		if decl.Arity <= 1 || isZero(v) {
			return
		}
		// Must appear in some relation of matching arity.
		for _, r := range a.Sig.Relations {
			if r.Arity == decl.Arity && a.HasTuple(r.Name, t...) {
				return
			}
		}
		err = fmt.Errorf("structure: non-zero weight %s(%v) on a tuple outside every relation of arity %d",
			k.Weight, t, decl.Arity)
	})
	return err
}

func parseTupleKey(key string) Tuple {
	if key == "" {
		return Tuple{}
	}
	parts := strings.Split(key, ",")
	t := make(Tuple, len(parts))
	for i, p := range parts {
		fmt.Sscanf(p, "%d", &t[i])
	}
	return t
}

// ParseTupleKey exposes tuple-key decoding for other packages (e.g. the
// enumeration layer decodes answer tuples from free-semiring generators).
func ParseTupleKey(key string) Tuple { return parseTupleKey(key) }
