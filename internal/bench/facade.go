package bench

import (
	"context"
	"fmt"

	"repro/agg"
	"repro/internal/compile"
	"repro/internal/parser"
	"repro/internal/semiring"
	"repro/internal/workload"
)

// E15FacadeOverhead measures the public repro/agg facade against the raw
// internal engines on the same workload: Prepare versus compile.Compile
// (one-time cost) and Prepared.Eval versus compile.EvaluateParallel
// (per-evaluation cost, amortised over reps).  The claim is that the facade
// is a zero-cost abstraction on the hot path: its per-eval overhead is the
// context check plus one formatting pass.
func E15FacadeOverhead(sizes []int, reps int) *Table {
	if reps < 3 {
		reps = 3
	}
	t := &Table{
		ID:     "E15",
		Title:  "Public facade overhead: repro/agg vs the internal engines",
		Claim:  "agg.Prepare/Eval add no measurable cost over compile.Compile/EvaluateParallel — embedding through the public API is free",
		Header: []string{"n", "compile (internal)", "Prepare (agg)", "eval (internal)", "Eval (agg)", "eval overhead"},
	}
	const exprText = "sum x, y, z . [E(x,y) & E(y,z) & !(x = z)] * u(x) * u(z)"
	ctx := context.Background()

	for _, n := range sizes {
		db := workload.BoundedDegree(n, 3, 7)
		e := parser.MustParseExpr(exprText)

		// One-time costs.
		var res *compile.Result
		compileDur := timeIt(func() {
			var err error
			res, err = compile.Compile(db.A, e, compile.Options{})
			if err != nil {
				panic(fmt.Sprintf("E15: compile: %v", err))
			}
		})
		eng := agg.Open(agg.FromStructure(db.A, db.Weights()))
		var p *agg.Prepared
		prepareDur := timeIt(func() {
			var err error
			p, err = eng.Prepare(ctx, exprText)
			if err != nil {
				panic(fmt.Sprintf("E15: prepare: %v", err))
			}
		})

		// Per-evaluation costs: best-of-reps, because sub-millisecond
		// parallel evaluations are dominated by scheduler jitter and the
		// minimum is the stable statistic (same convention as E14).
		w := db.Weights()
		var internalVal int64
		internalDur := bestOf(reps, func() {
			internalVal = compile.EvaluateParallel[int64](res, semiring.Nat, w, 0)
		})
		var facadeVal agg.Value
		facadeDur := bestOf(reps, func() {
			var err error
			facadeVal, err = p.Eval(ctx)
			if err != nil {
				panic(fmt.Sprintf("E15: eval: %v", err))
			}
		})

		if fmt.Sprint(internalVal) != string(facadeVal) {
			panic(fmt.Sprintf("E15: facade value %s != internal value %d", facadeVal, internalVal))
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(n), dur(compileDur), dur(prepareDur),
			dur(internalDur), dur(facadeDur),
			fmt.Sprintf("%+.1f%%", 100*(float64(facadeDur)-float64(internalDur))/float64(internalDur)),
		})
	}
	t.Notes = append(t.Notes,
		"both paths share the frozen Program engine; the facade adds semiring lookup, option handling and one Format call",
		fmt.Sprintf("per-eval timings are the best of %d runs on the default worker pool", reps))
	return t
}
